// Geo-social reads: the ">99% read-only" workload the paper cites (TAO).
//
// A social app shards user records and timelines across five edge
// clusters. Posting updates *two* partitions atomically (the author's
// record and the recipient's timeline) through a distributed read-write
// transaction. Page loads are read-only transactions over both
// partitions and must never observe a post on a timeline without the
// matching author record — exactly the Figure-1 consistency problem.
// TransEdge's CD vectors catch the window where one partition has
// committed and the other has not, and the second round repairs it.

#include <cstdio>
#include <functional>

#include "core/system.h"
#include "workload/generator.h"
#include "workload/stats.h"

using namespace transedge;

int main() {
  core::SystemConfig config;  // 5 clusters x 7 replicas.
  config.batch_interval = sim::Millis(8);
  config.merkle_depth = 12;

  sim::EnvironmentOptions env_opts;
  env_opts.seed = 13;
  env_opts.inter_site_latency = sim::Millis(6);

  core::System system(config, env_opts);

  // Users: user<i>/record and user<i>/timeline. The hash partitioner
  // scatters them, so most post() calls cross clusters.
  const int kUsers = 40;
  auto record_key = [](int u) { return "user" + std::to_string(u) + "/rec"; };
  auto timeline_key = [](int u) {
    return "user" + std::to_string(u) + "/tl";
  };
  std::vector<std::pair<Key, Value>> initial;
  for (int u = 0; u < kUsers; ++u) {
    initial.emplace_back(record_key(u), ToBytes("post:none"));
    initial.emplace_back(timeline_key(u), ToBytes("post:none"));
  }
  system.Preload(initial);
  system.Start();

  Rng rng(5);
  core::Client* poster = system.AddClient();
  core::Client* browser = system.AddClient();

  int post_id = 0;
  uint64_t posts = 0;
  std::function<void()> post_loop = [&] {
    if (system.env().now() > sim::Seconds(4)) return;
    int author = static_cast<int>(rng.NextBounded(kUsers));
    int follower = static_cast<int>(rng.NextBounded(kUsers));
    std::string post = "post:" + std::to_string(++post_id);
    // Atomic: author's record and follower's timeline get the same post.
    poster->ExecuteReadWrite(
        {},
        {WriteOp{record_key(author), ToBytes(post)},
         WriteOp{timeline_key(follower), ToBytes(post)}},
        [&, author, follower](core::RwResult r) {
          if (r.committed) ++posts;
          post_loop();
        });
  };

  workload::LatencyStats page_latency;
  uint64_t pages = 0, two_round_pages = 0, torn_pages = 0;
  std::function<void()> browse_loop = [&] {
    if (system.env().now() > sim::Seconds(4)) return;
    // Page load: a user's record + a timeline, one key from each of the
    // (usually different) partitions.
    int u = static_cast<int>(rng.NextBounded(kUsers));
    int v = static_cast<int>(rng.NextBounded(kUsers));
    Key rk = record_key(u), tk = timeline_key(v);
    browser->ExecuteReadOnly({rk, tk}, [&, rk, tk](core::RoResult r) {
      if (r.status.ok()) {
        ++pages;
        page_latency.Record(r.latency);
        if (r.rounds > 1) ++two_round_pages;
        // The snapshot must be internally consistent — a page never
        // mixes "before the post" and "after the post" states in a way
        // the dependency check would have to repair. (We cannot assert
        // value equality here because record/timeline pairs differ per
        // post target; the serializability tests cover the invariant.)
        if (r.needed_third_round) ++torn_pages;
      }
      browse_loop();
    });
  };

  system.env().Schedule(sim::Millis(40), [&] {
    post_loop();
    browse_loop();
  });
  system.env().RunUntil(sim::Seconds(7));

  std::printf("geo-social reads, 4 simulated seconds:\n");
  std::printf("  posts committed (2-partition atomic writes): %llu\n",
              static_cast<unsigned long long>(posts));
  std::printf("  page loads served: %llu (mean %.2f ms, p99 %.2f ms)\n",
              static_cast<unsigned long long>(pages), page_latency.MeanMs(),
              page_latency.P99Ms());
  std::printf("  pages needing the dependency-repair round: %llu\n",
              static_cast<unsigned long long>(two_round_pages));
  std::printf("  pages with residual unsatisfied dependencies: %llu\n",
              static_cast<unsigned long long>(torn_pages));
  return 0;
}
