// Edge IoT ledger: the workload TransEdge's introduction motivates.
//
// Five edge sites each host a cluster holding the telemetry ledger for
// their region. Sensors write readings to their local cluster (local
// transactions — no wide-area coordination). A regional dashboard runs
// frequent cross-site *read-only* queries ("latest reading of sensor X
// in every region"), which TransEdge serves commit-free with Merkle
// proofs, so the dashboard can trust answers from single — possibly
// compromised — edge nodes.

#include <cstdio>
#include <functional>
#include <memory>

#include "core/system.h"
#include "workload/generator.h"
#include "workload/stats.h"

using namespace transedge;

namespace {

Key SensorKey(PartitionId region, int sensor) {
  return "region" + std::to_string(region) + "/sensor" +
         std::to_string(sensor);
}

}  // namespace

int main() {
  core::SystemConfig config;  // 5 regions x 7 replicas, f = 2.
  config.batch_interval = sim::Millis(10);
  config.merkle_depth = 12;

  sim::EnvironmentOptions env_opts;
  env_opts.seed = 7;
  env_opts.inter_site_latency = sim::Millis(5);  // Regions a few ms apart.

  core::System system(config, env_opts);

  // Preload: 50 sensors per region, initial reading "0".
  std::vector<std::pair<Key, Value>> initial;
  for (PartitionId region = 0; region < config.num_partitions; ++region) {
    for (int sensor = 0; sensor < 50; ++sensor) {
      initial.emplace_back(SensorKey(region, sensor), ToBytes("reading:0"));
    }
  }
  // Keys must land on their region's partition; re-map by ownership.
  // (In a deployment the partition map would be locality-aware; the
  // hash map here just assigns each key a home, so we look it up.)
  storage::PartitionMap pmap(config.num_partitions);
  system.Preload(initial);
  system.Start();

  // Sensors: one writer client per region, appending readings to its
  // own region's keys (local transactions).
  struct RegionWriter {
    core::Client* client;
    PartitionId region;
    int tick = 0;
  };
  std::vector<std::shared_ptr<RegionWriter>> writers;
  workload::LatencyStats write_latency;
  Rng rng(99);
  for (PartitionId region = 0; region < config.num_partitions; ++region) {
    auto writer = std::make_shared<RegionWriter>();
    writer->client = system.AddClient();
    writer->region = region;
    writers.push_back(writer);
  }
  uint64_t writes_committed = 0;

  std::function<void(std::shared_ptr<RegionWriter>)> write_loop =
      [&](std::shared_ptr<RegionWriter> w) {
        if (system.env().now() > sim::Seconds(4)) return;
        // Pick a sensor key actually owned by this writer's home cluster
        // (the hash partitioner decides ownership) so the txn is local.
        Key key;
        for (int attempt = 0; attempt < 256 && key.empty(); ++attempt) {
          for (PartitionId region = 0; region < 5; ++region) {
            Key candidate = SensorKey(
                region, static_cast<int>(rng.NextBounded(50)));
            if (pmap.OwnerOf(candidate) == w->region) {
              key = candidate;
              break;
            }
          }
        }
        if (key.empty()) {
          write_loop(w);
          return;
        }
        ++w->tick;
        w->client->ExecuteReadWrite(
            {}, {WriteOp{key, ToBytes("reading:" + std::to_string(w->tick))}},
            [&, w](core::RwResult r) {
              if (r.committed) {
                ++writes_committed;
                write_latency.Record(r.latency);
              }
              write_loop(w);
            });
      };

  // Dashboard: cross-region read-only queries over one sensor id from
  // every region, authenticated end to end.
  core::Client* dashboard = system.AddClient();
  workload::LatencyStats read_latency;
  uint64_t reads_ok = 0, reads_two_round = 0;
  std::function<void()> dashboard_loop = [&] {
    if (system.env().now() > sim::Seconds(4)) return;
    int sensor = static_cast<int>(rng.NextBounded(50));
    std::vector<Key> query;
    for (PartitionId region = 0; region < config.num_partitions; ++region) {
      query.push_back(SensorKey(region, sensor));
    }
    dashboard->ExecuteReadOnly(query, [&](core::RoResult r) {
      if (r.status.ok()) {
        ++reads_ok;
        read_latency.Record(r.latency);
        if (r.rounds > 1) ++reads_two_round;
      }
      dashboard_loop();
    });
  };

  system.env().Schedule(sim::Millis(40), [&] {
    for (auto& w : writers) write_loop(w);
    dashboard_loop();
  });
  system.env().RunUntil(sim::Seconds(6));

  std::printf("edge IoT ledger, 4 simulated seconds:\n");
  std::printf("  sensor writes committed : %llu (mean %.2f ms, local-only)\n",
              static_cast<unsigned long long>(writes_committed),
              write_latency.MeanMs());
  std::printf(
      "  dashboard queries       : %llu verified (mean %.2f ms, p99 %.2f "
      "ms, %llu used round 2)\n",
      static_cast<unsigned long long>(reads_ok), read_latency.MeanMs(),
      read_latency.P99Ms(), static_cast<unsigned long long>(reads_two_round));
  std::printf("  every answer carried an f+1-signed certificate and a "
              "Merkle audit path\n");
  return 0;
}
