// Quickstart: bring up a 3-cluster TransEdge deployment, commit a local
// and a distributed read-write transaction, then run an authenticated
// snapshot read-only transaction across partitions.
//
//   $ ./quickstart
//
// Everything runs inside the discrete-event simulator: latencies below
// are simulated milliseconds, deterministic for the chosen seed.

#include <cstdio>

#include "core/system.h"
#include "workload/generator.h"

using namespace transedge;

int main() {
  // 1. Configure: 3 partitions, f = 1 (4 replicas per cluster).
  core::SystemConfig config;
  config.num_partitions = 3;
  config.f = 1;
  config.batch_interval = sim::Millis(5);
  config.merkle_depth = 10;

  sim::EnvironmentOptions env_opts;
  env_opts.seed = 2024;
  env_opts.inter_site_latency = sim::Millis(2);

  core::System system(config, env_opts);

  // 2. Preload a small key space and start the clusters.
  workload::WorkloadOptions wopts;
  wopts.num_keys = 1000;
  wopts.value_size = 16;
  workload::KeySpace keys(wopts, config.num_partitions);
  system.Preload(keys.InitialData());
  system.Start();

  core::Client* client = system.AddClient();

  // Pick one key per partition.
  storage::PartitionMap pmap(config.num_partitions);
  Rng rng(7);
  Key k0, k1, k2;
  while (k0.empty() || k1.empty() || k2.empty()) {
    const Key& k = keys.RandomKey(&rng);
    PartitionId p = pmap.OwnerOf(k);
    if (p == 0 && k0.empty()) k0 = k;
    if (p == 1 && k1.empty()) k1 = k;
    if (p == 2 && k2.empty()) k2 = k;
  }

  // 3. A local transaction: read k0, write it back.
  system.env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite(
        {k0}, {WriteOp{k0, ToBytes("hello-local")}},
        [&](core::RwResult r) {
          std::printf("[%6.2f ms] local txn %s (latency %.2f ms)\n",
                      sim::ToMillis(system.env().now()),
                      r.committed ? "COMMITTED" : "ABORTED",
                      sim::ToMillis(r.latency));

          // 4. A distributed transaction across partitions 1 and 2,
          //    committed through 2PC layered over BFT consensus.
          client->ExecuteReadWrite(
              {k1, k2},
              {WriteOp{k1, ToBytes("hello-x")}, WriteOp{k2, ToBytes("hello-y")}},
              [&](core::RwResult r2) {
                std::printf(
                    "[%6.2f ms] distributed txn %s (latency %.2f ms)\n",
                    sim::ToMillis(system.env().now()),
                    r2.committed ? "COMMITTED" : "ABORTED",
                    sim::ToMillis(r2.latency));

                // 5. A snapshot read-only transaction over all three
                //    partitions: one round in the common case, Merkle-
                //    verified, commit-free.
                client->ExecuteReadOnly(
                    {k0, k1, k2}, [&](core::RoResult ro) {
                      std::printf(
                          "[%6.2f ms] read-only txn %s in %d round(s) "
                          "(latency %.2f ms)\n",
                          sim::ToMillis(system.env().now()),
                          ro.status.ok() ? "VERIFIED" : "FAILED", ro.rounds,
                          sim::ToMillis(ro.latency));
                      for (const auto& [key, value] : ro.values) {
                        std::printf("    %s = %s\n", key.c_str(),
                                    value.has_value()
                                        ? ToString(*value).c_str()
                                        : "<absent>");
                      }
                    });
              });
        });
  });

  system.env().RunUntil(sim::Seconds(3));
  std::printf("done. batches decided across all replicas: %llu\n",
              static_cast<unsigned long long>(system.TotalBatches()));
  return 0;
}
