// Tamper audit: what "untrusted edge nodes" means in practice.
//
// Scenario: an auditor queries account balances held by edge clusters.
// One cluster's leader is compromised and (a) rewrites values in its
// responses, then (b) serves an old-but-certified snapshot. The auditor
// detects (a) through Merkle verification against the f+1-signed batch
// certificate, and flags (b) through the freshness window (§4.4.2).

#include <cstdio>

#include "core/system.h"
#include "workload/generator.h"

using namespace transedge;

int main() {
  core::SystemConfig config;
  config.num_partitions = 2;
  config.f = 1;
  config.batch_interval = sim::Millis(5);
  config.merkle_depth = 10;
  config.freshness_window = sim::Millis(150);

  sim::EnvironmentOptions env_opts;
  env_opts.seed = 31;
  env_opts.inter_site_latency = sim::Millis(2);

  core::System system(config, env_opts);

  std::vector<std::pair<Key, Value>> accounts;
  for (int i = 0; i < 64; ++i) {
    accounts.emplace_back("acct" + std::to_string(i), ToBytes("balance:100"));
  }
  system.Preload(accounts);
  system.Start();

  storage::PartitionMap pmap(2);
  Key audited;
  for (const auto& [k, v] : accounts) {
    if (pmap.OwnerOf(k) == 0) {
      audited = k;
      break;
    }
  }

  core::Client* teller = system.AddClient();
  core::Client* auditor = system.AddClient();
  auditor->set_check_freshness(true);

  // Background writes keep batches flowing (so "stale" is meaningful).
  std::function<void()> churn = [&] {
    if (system.env().now() > sim::Seconds(5)) return;
    static int n = 0;
    teller->ExecuteReadWrite(
        {}, {WriteOp{audited, ToBytes("balance:" + std::to_string(100 + ++n))}},
        [&](core::RwResult) { churn(); });
  };

  system.env().Schedule(sim::Millis(30), churn);
  system.env().RunUntil(sim::Seconds(2));

  // Phase 1: honest read.
  auditor->ExecuteReadOnly({audited}, [&](core::RoResult r) {
    std::printf("[honest leader]    status=%s fresh=%s value=%s\n",
                r.status.ToString().c_str(), r.fresh ? "yes" : "no",
                r.values[audited].has_value()
                    ? ToString(*r.values[audited]).c_str()
                    : "<absent>");
  });
  system.env().RunUntil(sim::Seconds(3) / 1);

  // Phase 2: the leader starts tampering with response values.
  system.leader(0)->SetByzantineBehavior(
      core::ByzantineBehavior::kTamperReadValue);
  auditor->ExecuteReadOnly({audited}, [&](core::RoResult r) {
    std::printf("[tampering leader] status=%s  (detected=%s)\n",
                r.status.ToString().c_str(),
                r.status.IsVerificationFailed() ? "YES" : "no");
  });
  system.env().RunUntil(sim::Seconds(4));

  // Phase 3: the leader serves a stale (but internally consistent and
  // certified) snapshot instead.
  system.leader(0)->SetByzantineBehavior(
      core::ByzantineBehavior::kStaleSnapshot);
  auditor->ExecuteReadOnly({audited}, [&](core::RoResult r) {
    std::printf(
        "[stale leader]     status=%s fresh=%s  (stale snapshot flagged=%s)\n",
        r.status.ToString().c_str(), r.fresh ? "yes" : "no",
        !r.fresh ? "YES" : "no");
  });
  system.env().RunUntil(sim::Seconds(6));

  std::printf(
      "\naudit summary: verification failures observed by auditor: %llu\n",
      static_cast<unsigned long long>(
          auditor->stats().ro_verification_failures));
  return 0;
}
