#include "merkle/merkle_tree.h"

#include <algorithm>
#include <cassert>

namespace transedge::merkle {

namespace {

/// Digest of a leaf bucket: hash over the sorted entries. An empty bucket
/// at level `depth` uses the precomputed empty digest instead.
crypto::Digest BucketDigest(const std::vector<BucketEntry>& bucket) {
  Encoder enc;
  enc.PutString("leaf");
  enc.PutU32(static_cast<uint32_t>(bucket.size()));
  for (const BucketEntry& e : bucket) {
    enc.PutString(e.key);
    enc.PutRaw(e.value_digest.bytes.data(), e.value_digest.bytes.size());
    enc.PutI64(e.version);
  }
  return crypto::Sha256::Hash(enc.buffer());
}

/// Precomputes the digest of an entirely-empty subtree at each level.
/// empty[depth] is the empty-leaf digest; empty[0] the empty-root digest.
/// The empty leaf hashes as an empty *bucket* so that absence proofs
/// (whose bucket is empty) recompute the same digest.
std::vector<crypto::Digest> ComputeEmptyDigests(int depth) {
  std::vector<crypto::Digest> empty(depth + 1);
  empty[depth] = BucketDigest({});
  for (int level = depth - 1; level >= 0; --level) {
    empty[level] = crypto::HashPair(empty[level + 1], empty[level + 1]);
  }
  return empty;
}

}  // namespace

struct MerkleTree::Node {
  crypto::Digest digest;
  NodeRef left;                     // Interior nodes only.
  NodeRef right;                    // Interior nodes only.
  std::vector<BucketEntry> bucket;  // Leaves only.
  bool is_leaf = false;
};

MerkleTree::MerkleTree(int depth)
    : depth_(depth),
      root_(nullptr),
      empty_digests_(std::make_shared<const std::vector<crypto::Digest>>(
          ComputeEmptyDigests(depth))) {}

MerkleTree::~MerkleTree() = default;

uint32_t MerkleTree::LeafIndexFor(const std::string& key, int depth) {
  crypto::Digest d = crypto::Sha256::Hash(key);
  uint32_t prefix = (static_cast<uint32_t>(d.bytes[0]) << 24) |
                    (static_cast<uint32_t>(d.bytes[1]) << 16) |
                    (static_cast<uint32_t>(d.bytes[2]) << 8) |
                    static_cast<uint32_t>(d.bytes[3]);
  return prefix >> (32 - depth);
}

uint32_t MerkleTree::LeafShardOf(uint32_t leaf_index, int depth,
                                 uint32_t shard_count) {
  if (shard_count <= 1) return 0;
  // leaf_index < 2^depth, so the product stays within 64 bits and the
  // result lands in [0, shard_count).
  return static_cast<uint32_t>(
      (static_cast<uint64_t>(leaf_index) * shard_count) >> depth);
}

crypto::Digest MerkleTree::DigestOf(const NodeRef& node, int level,
                                    const std::vector<crypto::Digest>& empty) {
  return node == nullptr ? empty[level] : node->digest;
}

MerkleTree::NodeRef MerkleTree::PutRec(
    const NodeRef& node, int level, int depth, uint32_t leaf_index,
    const BucketEntry& entry, const std::vector<crypto::Digest>& empty) {
  auto next = std::make_shared<Node>();
  if (level == depth) {
    next->is_leaf = true;
    if (node != nullptr) next->bucket = node->bucket;
    auto it = std::find_if(
        next->bucket.begin(), next->bucket.end(),
        [&entry](const BucketEntry& e) { return e.key == entry.key; });
    if (it != next->bucket.end()) {
      *it = entry;
    } else {
      // Keep buckets sorted so digests are canonical.
      auto pos = std::lower_bound(
          next->bucket.begin(), next->bucket.end(), entry,
          [](const BucketEntry& a, const BucketEntry& b) {
            return a.key < b.key;
          });
      next->bucket.insert(pos, entry);
    }
    next->digest = BucketDigest(next->bucket);
    return next;
  }

  // Interior: descend left or right based on the bit at this level.
  bool go_right = (leaf_index >> (depth - 1 - level)) & 1;
  NodeRef old_left = node ? node->left : nullptr;
  NodeRef old_right = node ? node->right : nullptr;
  if (go_right) {
    next->left = old_left;
    next->right = PutRec(old_right, level + 1, depth, leaf_index, entry, empty);
  } else {
    next->left = PutRec(old_left, level + 1, depth, leaf_index, entry, empty);
    next->right = old_right;
  }
  next->digest = crypto::HashPair(DigestOf(next->left, level + 1, empty),
                                  DigestOf(next->right, level + 1, empty));
  return next;
}

MerkleTree MerkleTree::Clone() const {
  MerkleTree copy(depth_);
  copy.root_ = root_;
  copy.empty_digests_ = empty_digests_;
  return copy;
}

MerkleTree MerkleTree::FromSnapshot(const Snapshot& snapshot) {
  assert(snapshot.valid());
  MerkleTree tree(snapshot.depth_);
  tree.root_ = snapshot.root_;
  tree.empty_digests_ = snapshot.empty_digests_;
  return tree;
}

void MerkleTree::Put(const std::string& key, const Bytes& value,
                     int64_t version) {
  BucketEntry entry{key, crypto::Sha256::Hash(value), version};
  root_ = PutRec(root_, 0, depth_, LeafIndexFor(key, depth_), entry,
                 *empty_digests_);
}

crypto::Digest MerkleTree::RootDigest() const {
  return DigestOf(root_, 0, *empty_digests_);
}

MerkleTree::Snapshot MerkleTree::GetSnapshot() const {
  Snapshot snap;
  snap.depth_ = depth_;
  snap.root_ = root_;
  snap.empty_digests_ = empty_digests_;
  return snap;
}

crypto::Digest MerkleTree::Snapshot::RootDigest() const {
  if (!valid()) return crypto::Digest{};
  return MerkleTree::DigestOf(root_, 0, *empty_digests_);
}

Result<MerkleProof> MerkleTree::Prove(const std::string& key) const {
  return ProveAt(GetSnapshot(), key);
}

Result<MerkleProof> MerkleTree::ProveAt(const Snapshot& snapshot,
                                        const std::string& key) {
  if (!snapshot.valid()) {
    return Status::FailedPrecondition("null merkle snapshot");
  }
  const auto& empty = *snapshot.empty_digests_;
  int depth = snapshot.depth_;
  MerkleProof proof;
  proof.leaf_index = LeafIndexFor(key, depth);

  // Walk down collecting siblings top-down, then reverse to bottom-up.
  std::vector<crypto::Digest> top_down;
  NodeRef node = snapshot.root_;
  for (int level = 0; level < depth; ++level) {
    bool go_right = (proof.leaf_index >> (depth - 1 - level)) & 1;
    NodeRef left = node ? node->left : nullptr;
    NodeRef right = node ? node->right : nullptr;
    top_down.push_back(go_right ? DigestOf(left, level + 1, empty)
                                : DigestOf(right, level + 1, empty));
    node = go_right ? right : left;
  }
  // A null node here means the leaf bucket is empty: the proof carries an
  // empty bucket and doubles as a proof of absence.
  if (node != nullptr) proof.bucket = node->bucket;
  proof.siblings.assign(top_down.rbegin(), top_down.rend());
  return proof;
}

Status MerkleTree::VerifyAbsence(const MerkleProof& proof,
                                 const std::string& key,
                                 const crypto::Digest& root) {
  if (proof.leaf_index != LeafIndexFor(key, static_cast<int>(
                                                proof.siblings.size()))) {
    return Status::VerificationFailed("proof leaf index mismatch for key");
  }
  auto it = std::find_if(
      proof.bucket.begin(), proof.bucket.end(),
      [&key](const BucketEntry& e) { return e.key == key; });
  if (it != proof.bucket.end()) {
    return Status::VerificationFailed("key is present, not absent");
  }
  if (proof.ComputeRoot() != root) {
    return Status::VerificationFailed("computed root does not match");
  }
  return Status::OK();
}

crypto::Digest MerkleProof::ComputeRoot() const {
  crypto::Digest acc = BucketDigest(bucket);
  int depth = static_cast<int>(siblings.size());
  for (int i = 0; i < depth; ++i) {
    // siblings[i] sits at level depth-i; our position bit at that level is
    // bit i of the leaf index.
    bool node_is_right = (leaf_index >> i) & 1;
    acc = node_is_right ? crypto::HashPair(siblings[i], acc)
                        : crypto::HashPair(acc, siblings[i]);
  }
  return acc;
}

Status MerkleTree::VerifyProof(const MerkleProof& proof,
                               const std::string& key, const Bytes& value,
                               int64_t version, const crypto::Digest& root) {
  if (proof.leaf_index != LeafIndexFor(key, static_cast<int>(
                                                proof.siblings.size()))) {
    return Status::VerificationFailed("proof leaf index mismatch for key");
  }
  auto it = std::find_if(
      proof.bucket.begin(), proof.bucket.end(),
      [&key](const BucketEntry& e) { return e.key == key; });
  if (it == proof.bucket.end()) {
    return Status::VerificationFailed("key missing from proof bucket");
  }
  if (it->value_digest != crypto::Sha256::Hash(value)) {
    return Status::VerificationFailed("value digest mismatch");
  }
  if (it->version != version) {
    return Status::VerificationFailed("version mismatch");
  }
  if (proof.ComputeRoot() != root) {
    return Status::VerificationFailed("computed root does not match");
  }
  return Status::OK();
}

void MerkleProof::EncodeTo(Encoder* enc) const {
  enc->PutU32(leaf_index);
  enc->PutU32(static_cast<uint32_t>(bucket.size()));
  for (const BucketEntry& e : bucket) {
    enc->PutString(e.key);
    enc->PutRaw(e.value_digest.bytes.data(), e.value_digest.bytes.size());
    enc->PutI64(e.version);
  }
  enc->PutU32(static_cast<uint32_t>(siblings.size()));
  for (const crypto::Digest& d : siblings) {
    enc->PutRaw(d.bytes.data(), d.bytes.size());
  }
}

Result<MerkleProof> MerkleProof::DecodeFrom(Decoder* dec) {
  MerkleProof proof;
  TE_ASSIGN_OR_RETURN(proof.leaf_index, dec->GetU32());
  TE_ASSIGN_OR_RETURN(uint32_t bucket_size, dec->GetCount());
  proof.bucket.reserve(bucket_size);
  for (uint32_t i = 0; i < bucket_size; ++i) {
    BucketEntry e;
    TE_ASSIGN_OR_RETURN(e.key, dec->GetString());
    TE_ASSIGN_OR_RETURN(Bytes vd, dec->GetRaw(32));
    std::copy(vd.begin(), vd.end(), e.value_digest.bytes.begin());
    TE_ASSIGN_OR_RETURN(e.version, dec->GetI64());
    proof.bucket.push_back(std::move(e));
  }
  TE_ASSIGN_OR_RETURN(uint32_t sibling_count, dec->GetCount());
  proof.siblings.reserve(sibling_count);
  for (uint32_t i = 0; i < sibling_count; ++i) {
    TE_ASSIGN_OR_RETURN(Bytes raw, dec->GetRaw(32));
    crypto::Digest d;
    std::copy(raw.begin(), raw.end(), d.bytes.begin());
    proof.siblings.push_back(d);
  }
  return proof;
}

}  // namespace transedge::merkle
