#ifndef TRANSEDGE_MERKLE_MERKLE_TREE_H_
#define TRANSEDGE_MERKLE_MERKLE_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/sha256.h"

namespace transedge::merkle {

/// One (key, value-digest, version) record inside a leaf bucket.
///
/// Values are stored by digest: the prover ships the actual value next to
/// the proof and the verifier hashes it, so the tree stays compact while
/// responses remain fully authenticated.
struct BucketEntry {
  std::string key;
  crypto::Digest value_digest;
  int64_t version = -1;

  bool operator==(const BucketEntry& other) const {
    return key == other.key && value_digest == other.value_digest &&
           version == other.version;
  }
};

/// An audit path from a leaf bucket to the root.
///
/// The proof carries the *entire* bucket (buckets hold the few keys whose
/// hash prefix collides at this depth; with the default geometry that is
/// ~1 key) plus the sibling digests bottom-up.
struct MerkleProof {
  uint32_t leaf_index = 0;
  std::vector<BucketEntry> bucket;
  std::vector<crypto::Digest> siblings;  // bottom-up: depth-1 ... 0

  void EncodeTo(Encoder* enc) const;
  static Result<MerkleProof> DecodeFrom(Decoder* dec);

  /// Recomputes the root this proof commits to.
  crypto::Digest ComputeRoot() const;
};

/// Authenticated key-value map: a sparse Merkle tree with path-copying
/// persistence.
///
/// This is the Authenticated Data Structure of §4.1. Each TransEdge
/// replica maintains one per partition; the root of the tree after
/// applying a batch's write-sets is certified by the cluster and lets a
/// *single* node later prove the authenticity of any read response.
///
/// Persistence: `Put` copies the O(depth) path it touches, so snapshots
/// (`SnapshotRoot`) taken after each batch remain valid and proofs can be
/// generated against any retained historical root — exactly what the
/// second round of the distributed read-only protocol needs (§4.3.4).
class MerkleTree {
 public:
  /// Handle to an immutable tree version.
  class Snapshot;

  /// `depth` levels below the root, i.e. 2^depth leaf buckets.
  explicit MerkleTree(int depth = 20);
  ~MerkleTree();

  MerkleTree(const MerkleTree&) = delete;
  MerkleTree& operator=(const MerkleTree&) = delete;
  MerkleTree(MerkleTree&&) = default;
  MerkleTree& operator=(MerkleTree&&) = default;

  /// Inserts or overwrites `key` with the digest of `value` at `version`.
  void Put(const std::string& key, const Bytes& value, int64_t version);

  /// Cheap structural-sharing copy (O(1)): the clone starts at the same
  /// version and diverges copy-on-write. Used by leaders to compute the
  /// post-batch root without mutating their applied state.
  MerkleTree Clone() const;

  /// Reconstructs a tree positioned at `snapshot` (O(1), shares
  /// structure). Requires a valid snapshot.
  static MerkleTree FromSnapshot(const Snapshot& snapshot);

  /// Current root digest.
  crypto::Digest RootDigest() const;

  /// Immutable snapshot of the current version (cheap: shares structure).
  Snapshot GetSnapshot() const;

  /// Builds a proof for `key` against the current version. NotFound if
  /// the key was never written.
  Result<MerkleProof> Prove(const std::string& key) const;

  /// Builds a proof for `key` against `snapshot`.
  static Result<MerkleProof> ProveAt(const Snapshot& snapshot,
                                     const std::string& key);

  /// Checks that `proof` authenticates (`key`, `value`, `version`) under
  /// `root`. VerificationFailed on any mismatch.
  static Status VerifyProof(const MerkleProof& proof, const std::string& key,
                            const Bytes& value, int64_t version,
                            const crypto::Digest& root);

  /// Checks that `proof` authenticates the *absence* of `key` under
  /// `root` (the authenticated leaf bucket does not contain it).
  static Status VerifyAbsence(const MerkleProof& proof,
                              const std::string& key,
                              const crypto::Digest& root);

  /// Leaf index for `key` at depth `depth` (exposed for tests).
  static uint32_t LeafIndexFor(const std::string& key, int depth);

  /// Contiguous leaf-subrange shard of `leaf_index` when the 2^depth
  /// leaf space is carved into `shard_count` equal ranges — the same
  /// range carving ShardRouterKind::kRange uses on the hash-prefix
  /// space, restricted to whole leaves so each apply shard owns a
  /// complete subtree of the authenticated structure.
  static uint32_t LeafShardOf(uint32_t leaf_index, int depth,
                              uint32_t shard_count);

  int depth() const { return depth_; }

 private:
  struct Node;
  using NodeRef = std::shared_ptr<const Node>;

  static NodeRef PutRec(const NodeRef& node, int level, int depth,
                        uint32_t leaf_index, const BucketEntry& entry,
                        const std::vector<crypto::Digest>& empty);
  static crypto::Digest DigestOf(const NodeRef& node, int level,
                                 const std::vector<crypto::Digest>& empty);

  int depth_;
  NodeRef root_;
  std::shared_ptr<const std::vector<crypto::Digest>> empty_digests_;
};

/// An immutable version of the tree. Copyable; keeps the version alive.
class MerkleTree::Snapshot {
 public:
  Snapshot() = default;

  /// Root digest of this version (zero digest for a null snapshot).
  crypto::Digest RootDigest() const;

  bool valid() const { return empty_digests_ != nullptr; }

 private:
  friend class MerkleTree;

  int depth_ = 0;
  NodeRef root_;
  std::shared_ptr<const std::vector<crypto::Digest>> empty_digests_;
};

}  // namespace transedge::merkle

#endif  // TRANSEDGE_MERKLE_MERKLE_TREE_H_
