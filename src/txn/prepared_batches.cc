#include "txn/prepared_batches.h"

#include <cassert>

namespace transedge::txn {

bool PrepareGroup::Ready() const {
  for (const PendingTxn& t : txns) {
    if (t.state == PendingTxn::State::kWaiting) return false;
  }
  return true;
}

void PreparedBatches::AddGroup(BatchId batch_id, std::vector<PendingTxn> txns) {
  if (txns.empty()) return;
  assert(groups_.empty() || groups_.back().prepared_in_batch < batch_id);
  PrepareGroup group;
  group.prepared_in_batch = batch_id;
  group.txns = std::move(txns);
  groups_.push_back(std::move(group));
}

Status PreparedBatches::RecordDecision(
    TxnId txn_id, bool committed,
    std::vector<storage::PreparedInfo> participant_info) {
  for (PrepareGroup& group : groups_) {
    for (PendingTxn& pending : group.txns) {
      if (pending.txn.id != txn_id) continue;
      if (pending.state != PendingTxn::State::kWaiting) {
        return Status::AlreadyExists("decision already recorded for txn " +
                                     std::to_string(txn_id));
      }
      pending.state = committed ? PendingTxn::State::kCommitted
                                : PendingTxn::State::kAborted;
      pending.participant_info = std::move(participant_info);
      return Status::OK();
    }
  }
  return Status::NotFound("txn not pending: " + std::to_string(txn_id));
}

bool PreparedBatches::OldestReady() const {
  return !groups_.empty() && groups_.front().Ready();
}

PrepareGroup PreparedBatches::PopOldestReady() {
  assert(OldestReady());
  return PopOldest();
}

PrepareGroup PreparedBatches::PopOldest() {
  assert(!groups_.empty());
  PrepareGroup group = std::move(groups_.front());
  groups_.pop_front();
  return group;
}

Result<PrepareGroup> PreparedBatches::PopGroup(BatchId batch_id) {
  for (auto it = groups_.begin(); it != groups_.end(); ++it) {
    if (it->prepared_in_batch != batch_id) continue;
    PrepareGroup group = std::move(*it);
    groups_.erase(it);
    return group;
  }
  return Status::NotFound("no prepare group for batch " +
                          std::to_string(batch_id));
}

std::vector<BatchId> PreparedBatches::GroupIds() const {
  std::vector<BatchId> out;
  out.reserve(groups_.size());
  for (const PrepareGroup& group : groups_) {
    out.push_back(group.prepared_in_batch);
  }
  return out;
}

std::vector<const PrepareGroup*> PreparedBatches::ReadyPrefix() const {
  std::vector<const PrepareGroup*> out;
  for (const PrepareGroup& group : groups_) {
    if (!group.Ready()) break;
    out.push_back(&group);
  }
  return out;
}

void PreparedBatches::ForEachPending(
    const std::function<void(const Transaction&)>& fn) const {
  for (const PrepareGroup& group : groups_) {
    for (const PendingTxn& pending : group.txns) {
      if (pending.state == PendingTxn::State::kWaiting) {
        fn(pending.txn);
      }
    }
  }
}

std::vector<const Transaction*> PreparedBatches::PendingTransactions() const {
  std::vector<const Transaction*> out;
  for (const PrepareGroup& group : groups_) {
    for (const PendingTxn& pending : group.txns) {
      if (pending.state == PendingTxn::State::kWaiting) {
        out.push_back(&pending.txn);
      }
    }
  }
  return out;
}

const Transaction* PreparedBatches::FindTxn(TxnId txn_id) const {
  for (const PrepareGroup& group : groups_) {
    for (const PendingTxn& pending : group.txns) {
      if (pending.txn.id == txn_id) return &pending.txn;
    }
  }
  return nullptr;
}

BatchId PreparedBatches::GroupOf(TxnId txn_id) const {
  for (const PrepareGroup& group : groups_) {
    for (const PendingTxn& pending : group.txns) {
      if (pending.txn.id == txn_id) return group.prepared_in_batch;
    }
  }
  return kNoBatch;
}

bool PreparedBatches::Contains(TxnId txn_id) const {
  for (const PrepareGroup& group : groups_) {
    for (const PendingTxn& pending : group.txns) {
      if (pending.txn.id == txn_id) return true;
    }
  }
  return false;
}

size_t PreparedBatches::pending_txn_count() const {
  size_t count = 0;
  for (const PrepareGroup& group : groups_) {
    for (const PendingTxn& pending : group.txns) {
      if (pending.state == PendingTxn::State::kWaiting) ++count;
    }
  }
  return count;
}

}  // namespace transedge::txn
