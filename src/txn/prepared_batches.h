#ifndef TRANSEDGE_TXN_PREPARED_BATCHES_H_
#define TRANSEDGE_TXN_PREPARED_BATCHES_H_

#include <deque>
#include <functional>
#include <vector>

#include "common/result.h"
#include "storage/batch.h"
#include "txn/types.h"

namespace transedge::txn {

/// One distributed transaction waiting for its 2PC outcome.
struct PendingTxn {
  enum class State { kWaiting, kCommitted, kAborted };

  Transaction txn;
  State state = State::kWaiting;
  /// Prepared messages collected from all participants; carried into the
  /// commit record for CD-vector derivation (Algorithm 1).
  std::vector<storage::PreparedInfo> participant_info;
};

/// A prepare group (§4.3.3(a)): all distributed transactions whose
/// prepare records landed in the same batch. The ordering constraint
/// (Definition 4.1) forces groups to commit in prepare-batch order, which
/// is what allows a single number per partition in the CD vector.
struct PrepareGroup {
  BatchId prepared_in_batch = kNoBatch;
  std::vector<PendingTxn> txns;

  /// True when every transaction has a decision.
  bool Ready() const;
};

/// The "prepared batches" data structure of Figure 2: the leader's (and
/// every replica's) view of which prepare groups are still waiting on
/// 2PC outcomes.
class PreparedBatches {
 public:
  PreparedBatches() = default;

  /// Registers the prepare group of freshly written batch `batch_id`.
  /// Empty groups are not stored. Groups must be added in batch order.
  void AddGroup(BatchId batch_id, std::vector<PendingTxn> txns);

  /// Records the 2PC outcome of `txn_id`. NotFound if the transaction is
  /// not pending (e.g. a duplicate decision).
  Status RecordDecision(TxnId txn_id, bool committed,
                        std::vector<storage::PreparedInfo> participant_info);

  /// Whether the *oldest* group is fully decided — only then may it be
  /// moved to a committed segment (Definition 4.1).
  bool OldestReady() const;

  /// Removes and returns the oldest group; requires OldestReady().
  PrepareGroup PopOldestReady();

  /// The maximal prefix of groups (oldest first) that are fully decided
  /// — the groups the next batch's committed segment will carry, in
  /// Definition 4.1 order. Pointers are invalidated by mutations.
  std::vector<const PrepareGroup*> ReadyPrefix() const;

  /// Removes and returns the oldest group regardless of decision state.
  /// Used by replicas applying a certified batch: the batch's committed
  /// segment *is* the decision. Requires a non-empty structure.
  PrepareGroup PopOldest();

  /// Removes and returns the group prepared in `batch_id`, wherever it
  /// sits in the queue; NotFound when no such group is registered. The
  /// safe way to consume a certified batch's committed segment: popping
  /// positionally would silently apply the wrong group's writes if the
  /// queue order ever diverged from the certified commit order.
  Result<PrepareGroup> PopGroup(BatchId batch_id);

  /// The oldest group, or nullptr.
  const PrepareGroup* Oldest() const {
    return groups_.empty() ? nullptr : &groups_.front();
  }

  /// Prepare-batch ids of all registered groups, oldest first. Used by
  /// pipelined validation to find the oldest group not already committed
  /// by an in-flight batch.
  std::vector<BatchId> GroupIds() const;

  /// Invokes `fn` for every still-undecided transaction (used for
  /// conflict rule 3 of Definition 3.1).
  void ForEachPending(
      const std::function<void(const Transaction&)>& fn) const;

  /// Pointers to every still-undecided transaction.
  std::vector<const Transaction*> PendingTransactions() const;

  bool Contains(TxnId txn_id) const;

  /// The transaction object for `txn_id` regardless of decision state;
  /// nullptr when unknown. Used to resolve the write sets of commit
  /// records while applying a batch.
  const Transaction* FindTxn(TxnId txn_id) const;

  /// The batch the group holding `txn_id` was prepared in, or kNoBatch
  /// when no registered group contains it. A leader resuming an
  /// inherited prepare group uses this to fetch the prepare batch's
  /// certificate and CD vector from the log.
  BatchId GroupOf(TxnId txn_id) const;

  size_t group_count() const { return groups_.size(); }
  size_t pending_txn_count() const;

 private:
  std::deque<PrepareGroup> groups_;
};

}  // namespace transedge::txn

#endif  // TRANSEDGE_TXN_PREPARED_BATCHES_H_
