#ifndef TRANSEDGE_TXN_TYPES_H_
#define TRANSEDGE_TXN_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace transedge {

/// Database key. The paper uses 4-byte keys; we allow arbitrary strings.
using Key = std::string;

/// Database value (the paper uses 256-byte payloads).
using Value = Bytes;

/// Index of a data partition == index of the cluster that owns it.
using PartitionId = uint32_t;

/// Position of a batch in a partition's SMR log. -1 means "none yet".
using BatchId = int64_t;
inline constexpr BatchId kNoBatch = -1;

/// Globally unique transaction id: (client id << 32) | client sequence.
using TxnId = uint64_t;

inline TxnId MakeTxnId(uint32_t client_id, uint32_t seq) {
  return (static_cast<TxnId>(client_id) << 32) | seq;
}
inline uint32_t TxnClient(TxnId id) { return static_cast<uint32_t>(id >> 32); }
inline uint32_t TxnSeq(TxnId id) { return static_cast<uint32_t>(id); }

/// One entry of a transaction's read set: the key, the value observed,
/// and the version it was read at. The version is the LCE of the batch
/// the value came from (§3.2: "Responses to clients must include the LCE
/// of the batch which the key was read from"); OCC validation compares it
/// against the current committed version.
struct ReadOp {
  Key key;
  int64_t version = -1;

  void EncodeTo(Encoder* enc) const;
  static Result<ReadOp> DecodeFrom(Decoder* dec);
  bool operator==(const ReadOp&) const = default;
};

/// One entry of a transaction's write set (buffered at the client until
/// commit time).
struct WriteOp {
  Key key;
  Value value;

  void EncodeTo(Encoder* enc) const;
  static Result<WriteOp> DecodeFrom(Decoder* dec);
  bool operator==(const WriteOp&) const = default;
};

/// A read-write transaction as submitted for commitment: the read set
/// with observed versions plus the buffered write set (§2 Interface).
struct Transaction {
  TxnId id = 0;
  std::vector<ReadOp> read_set;
  std::vector<WriteOp> write_set;

  /// Partitions this transaction touches, ascending, no duplicates.
  /// Size 1 => local transaction; otherwise distributed (§3.1).
  std::vector<PartitionId> participants;

  /// Coordinator cluster chosen by the client (§3.3.1). Only meaningful
  /// for distributed transactions.
  PartitionId coordinator = 0;

  bool IsLocal() const { return participants.size() <= 1; }

  /// The read and write operations that belong to partition `p` under
  /// `owner_of(key) == p` semantics are extracted by the node; the full
  /// sets travel with the transaction as in the paper's commit request.
  void EncodeTo(Encoder* enc) const;
  static Result<Transaction> DecodeFrom(Decoder* dec);

  bool operator==(const Transaction&) const = default;
};

/// True when the write sets (or a read set vs. a write set) of `a` and
/// `b` intersect — the rw/wr/ww conflict test of §3.6 restricted to the
/// keys owned by one partition when `partition_keys_only` is used by the
/// caller.
bool Conflicts(const Transaction& a, const Transaction& b);

}  // namespace transedge

#endif  // TRANSEDGE_TXN_TYPES_H_
