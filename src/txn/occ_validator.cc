#include "txn/occ_validator.h"

namespace transedge::txn {

Status OccValidator::CheckAgainstStore(const Transaction& txn) const {
  for (const ReadOp& r : txn.read_set) {
    BatchId latest = store_->LatestVersion(r.key);
    if (latest != r.version) {
      return Status::Conflict("read of key '" + r.key + "' at version " +
                              std::to_string(r.version) +
                              " overwritten; latest is " +
                              std::to_string(latest));
    }
  }
  return Status::OK();
}

Status OccValidator::CheckAgainstTransactions(
    const Transaction& txn,
    const std::vector<const Transaction*>& others) const {
  for (const Transaction* other : others) {
    if (other->id == txn.id) continue;
    if (Conflicts(txn, *other)) {
      return Status::Conflict("conflicts with transaction " +
                              std::to_string(other->id));
    }
  }
  return Status::OK();
}

Status OccValidator::Validate(
    const Transaction& txn,
    const std::vector<const Transaction*>& in_progress,
    const std::vector<const Transaction*>& pending_prepared) const {
  TE_RETURN_IF_ERROR(CheckAgainstStore(txn));
  TE_RETURN_IF_ERROR(CheckAgainstTransactions(txn, in_progress));
  TE_RETURN_IF_ERROR(CheckAgainstTransactions(txn, pending_prepared));
  return Status::OK();
}

}  // namespace transedge::txn
