#include "txn/types.h"

#include <algorithm>

namespace transedge {

void ReadOp::EncodeTo(Encoder* enc) const {
  enc->PutString(key);
  enc->PutI64(version);
}

Result<ReadOp> ReadOp::DecodeFrom(Decoder* dec) {
  ReadOp op;
  TE_ASSIGN_OR_RETURN(op.key, dec->GetString());
  TE_ASSIGN_OR_RETURN(op.version, dec->GetI64());
  return op;
}

void WriteOp::EncodeTo(Encoder* enc) const {
  enc->PutString(key);
  enc->PutBytes(value);
}

Result<WriteOp> WriteOp::DecodeFrom(Decoder* dec) {
  WriteOp op;
  TE_ASSIGN_OR_RETURN(op.key, dec->GetString());
  TE_ASSIGN_OR_RETURN(op.value, dec->GetBytes());
  return op;
}

void Transaction::EncodeTo(Encoder* enc) const {
  enc->PutU64(id);
  enc->PutU32(static_cast<uint32_t>(read_set.size()));
  for (const ReadOp& op : read_set) op.EncodeTo(enc);
  enc->PutU32(static_cast<uint32_t>(write_set.size()));
  for (const WriteOp& op : write_set) op.EncodeTo(enc);
  enc->PutU32(static_cast<uint32_t>(participants.size()));
  for (PartitionId p : participants) enc->PutU32(p);
  enc->PutU32(coordinator);
}

Result<Transaction> Transaction::DecodeFrom(Decoder* dec) {
  Transaction txn;
  TE_ASSIGN_OR_RETURN(txn.id, dec->GetU64());
  TE_ASSIGN_OR_RETURN(uint32_t reads, dec->GetCount());
  txn.read_set.reserve(reads);
  for (uint32_t i = 0; i < reads; ++i) {
    TE_ASSIGN_OR_RETURN(ReadOp op, ReadOp::DecodeFrom(dec));
    txn.read_set.push_back(std::move(op));
  }
  TE_ASSIGN_OR_RETURN(uint32_t writes, dec->GetCount());
  txn.write_set.reserve(writes);
  for (uint32_t i = 0; i < writes; ++i) {
    TE_ASSIGN_OR_RETURN(WriteOp op, WriteOp::DecodeFrom(dec));
    txn.write_set.push_back(std::move(op));
  }
  TE_ASSIGN_OR_RETURN(uint32_t parts, dec->GetCount());
  txn.participants.reserve(parts);
  for (uint32_t i = 0; i < parts; ++i) {
    TE_ASSIGN_OR_RETURN(PartitionId p, dec->GetU32());
    txn.participants.push_back(p);
  }
  TE_ASSIGN_OR_RETURN(txn.coordinator, dec->GetU32());
  return txn;
}

bool Conflicts(const Transaction& a, const Transaction& b) {
  // Two transactions conflict when one writes a key the other reads or
  // writes. Linear scans: transaction footprints are small (the paper's
  // workloads use 5 reads + 3 writes).
  auto writes_key = [](const Transaction& t, const Key& k) {
    return std::any_of(t.write_set.begin(), t.write_set.end(),
                       [&k](const WriteOp& w) { return w.key == k; });
  };
  for (const WriteOp& w : a.write_set) {
    if (writes_key(b, w.key)) return true;  // ww
    if (std::any_of(b.read_set.begin(), b.read_set.end(),
                    [&w](const ReadOp& r) { return r.key == w.key; })) {
      return true;  // wr / rw
    }
  }
  for (const ReadOp& r : a.read_set) {
    if (writes_key(b, r.key)) return true;  // rw
  }
  return false;
}

}  // namespace transedge
