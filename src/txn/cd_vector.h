#ifndef TRANSEDGE_TXN_CD_VECTOR_H_
#define TRANSEDGE_TXN_CD_VECTOR_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "txn/types.h"

namespace transedge::txn {

/// Conflict-Dependency vector (§3.4, §4.3.3): for every partition, the
/// batch number this state depends on.
///
/// Entry semantics: `V[Y] = j` means "this batch's committed state
/// depends on the transactions of partition Y up to (and including) the
/// batch where those transactions *prepared*, b^Y_j". -1 encodes "no
/// dependency". Tracking the prepare batch rather than the commit batch
/// is what lets local transactions keep committing at arbitrary
/// frequency (challenge 2 of §4.3.2); the reader compares entries against
/// the *LCE* of the responses it holds.
class CdVector {
 public:
  CdVector() = default;

  /// A vector over `num_partitions` entries, all -1 (no dependencies).
  explicit CdVector(size_t num_partitions)
      : deps_(num_partitions, kNoBatch) {}

  size_t size() const { return deps_.size(); }
  bool empty() const { return deps_.empty(); }

  BatchId Get(PartitionId p) const { return deps_[p]; }
  void Set(PartitionId p, BatchId b) { deps_[p] = b; }

  /// Entry-wise maximum with `other` — the merge step of Algorithm 1.
  /// Both vectors must have the same size.
  void PairwiseMax(const CdVector& other);

  /// True if every entry of this vector is <= the matching entry of
  /// `other` (i.e. `other` already covers these dependencies).
  bool CoveredBy(const CdVector& other) const;

  void EncodeTo(Encoder* enc) const;
  static Result<CdVector> DecodeFrom(Decoder* dec);

  /// "[2,-1,5]" — for logs and EXPERIMENTS.md extracts.
  std::string ToString() const;

  bool operator==(const CdVector&) const = default;

 private:
  std::vector<BatchId> deps_;
};

/// What a read-only client learned from one partition's response: the CD
/// vector and LCE of the batch it was served from.
struct RoPartitionView {
  CdVector cd_vector;
  BatchId lce = kNoBatch;
};

/// Algorithm 2 (§4.3.4): checks every cross-partition dependency
/// `V_i[j]` against partition j's LCE. Returns, for each partition with
/// an unsatisfied dependency, the minimum LCE the second round must
/// obtain (the max over all demanding partitions). Empty result = the
/// snapshot is consistent.
std::map<PartitionId, BatchId> ComputeUnsatisfiedDependencies(
    const std::map<PartitionId, RoPartitionView>& views);

}  // namespace transedge::txn

#endif  // TRANSEDGE_TXN_CD_VECTOR_H_
