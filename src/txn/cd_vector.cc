#include "txn/cd_vector.h"

#include <algorithm>
#include <cassert>

namespace transedge::txn {

void CdVector::PairwiseMax(const CdVector& other) {
  assert(deps_.size() == other.deps_.size());
  for (size_t i = 0; i < deps_.size(); ++i) {
    deps_[i] = std::max(deps_[i], other.deps_[i]);
  }
}

bool CdVector::CoveredBy(const CdVector& other) const {
  assert(deps_.size() == other.deps_.size());
  for (size_t i = 0; i < deps_.size(); ++i) {
    if (deps_[i] > other.deps_[i]) return false;
  }
  return true;
}

void CdVector::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(deps_.size()));
  for (BatchId b : deps_) enc->PutI64(b);
}

Result<CdVector> CdVector::DecodeFrom(Decoder* dec) {
  CdVector v;
  TE_ASSIGN_OR_RETURN(uint32_t n, dec->GetCount());
  v.deps_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TE_ASSIGN_OR_RETURN(BatchId b, dec->GetI64());
    v.deps_.push_back(b);
  }
  return v;
}

std::map<PartitionId, BatchId> ComputeUnsatisfiedDependencies(
    const std::map<PartitionId, RoPartitionView>& views) {
  std::map<PartitionId, BatchId> needed;
  for (const auto& [pi, view_i] : views) {
    if (view_i.cd_vector.empty()) continue;
    for (const auto& [pj, view_j] : views) {
      if (pi == pj) continue;
      BatchId dep = view_i.cd_vector.Get(pj);
      if (dep > view_j.lce) {
        auto it = needed.find(pj);
        if (it == needed.end() || it->second < dep) needed[pj] = dep;
      }
    }
  }
  return needed;
}

std::string CdVector::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < deps_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(deps_[i]);
  }
  out += "]";
  return out;
}

}  // namespace transedge::txn
