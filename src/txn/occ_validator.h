#ifndef TRANSEDGE_TXN_OCC_VALIDATOR_H_
#define TRANSEDGE_TXN_OCC_VALIDATOR_H_

#include <vector>

#include "common/status.h"
#include "storage/versioned_store.h"
#include "txn/types.h"

namespace transedge::txn {

/// Implements the conflict detection rules of Definition 3.1.
///
/// A transaction may enter the in-progress batch only if it does not
/// conflict with (1) committed state in previous batches, (2) the
/// transactions already in the in-progress batch, and (3) the pending
/// prepared (not yet committed) distributed transactions. The leader runs
/// these checks when admitting a transaction, and — because the leader
/// may be byzantine — every replica re-runs them before accepting a
/// proposed batch (§3.2).
class OccValidator {
 public:
  /// `store` is the replica's committed state; borrowed, must outlive
  /// the validator.
  explicit OccValidator(const storage::VersionedStore* store)
      : store_(store) {}

  /// Rule 1: every read in `txn`'s read set (restricted by the caller to
  /// keys of this partition) still has the observed version as its latest
  /// committed version.
  Status CheckAgainstStore(const Transaction& txn) const;

  /// Rules 2 and 3: `txn` conflicts with none of `others`.
  Status CheckAgainstTransactions(
      const Transaction& txn,
      const std::vector<const Transaction*>& others) const;

  /// All three rules in one call.
  Status Validate(const Transaction& txn,
                  const std::vector<const Transaction*>& in_progress,
                  const std::vector<const Transaction*>& pending_prepared)
      const;

 private:
  const storage::VersionedStore* store_;
};

}  // namespace transedge::txn

#endif  // TRANSEDGE_TXN_OCC_VALIDATOR_H_
