#include "common/status.h"

namespace transedge {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kVerificationFailed:
      return "VerificationFailed";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace transedge
