#ifndef TRANSEDGE_COMMON_BYTES_H_
#define TRANSEDGE_COMMON_BYTES_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace transedge {

/// Owned byte string used throughout the wire layer.
using Bytes = std::vector<uint8_t>;

/// Converts a string to bytes (no copy avoidance; wire layer only).
Bytes ToBytes(std::string_view s);

/// Converts bytes to a std::string.
std::string ToString(const Bytes& b);

/// Lower-case hexadecimal rendering of `data`, for logs and test output.
std::string HexEncode(const uint8_t* data, size_t len);
std::string HexEncode(const Bytes& b);

/// Parses a hex string produced by HexEncode. Fails on odd length or
/// non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

/// Appends primitive values to a byte buffer in little-endian order.
///
/// The encoder is the single source of truth for the wire format: every
/// protocol message and every digest-input is produced through it, so
/// signatures and Merkle roots cover exactly the bytes that travel.
class Encoder {
 public:
  Encoder() = default;

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v) { PutLittleEndian(v, 2); }
  void PutU32(uint32_t v) { PutLittleEndian(v, 4); }
  void PutU64(uint64_t v) { PutLittleEndian(v, 8); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Length-prefixed (u32) byte string.
  void PutBytes(const Bytes& b);
  void PutString(std::string_view s);

  /// Raw bytes without a length prefix (for fixed-size fields such as
  /// digests).
  void PutRaw(const uint8_t* data, size_t len);
  void PutRaw(const Bytes& b) { PutRaw(b.data(), b.size()); }

  const Bytes& buffer() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void PutLittleEndian(uint64_t v, int nbytes);

  Bytes buf_;
};

/// Reads primitive values from a byte buffer written by `Encoder`.
/// All getters are checked: reading past the end yields Corruption.
class Decoder {
 public:
  explicit Decoder(const Bytes& buf) : data_(buf.data()), size_(buf.size()) {}
  Decoder(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  Result<uint8_t> GetU8();
  Result<uint16_t> GetU16();
  Result<uint32_t> GetU32();
  /// Reads an element count and validates it against the bytes left:
  /// every encoded element occupies at least one byte, so a count larger
  /// than `remaining()` is corruption. Prevents attacker-controlled
  /// counts from driving huge allocations before the decode fails.
  Result<uint32_t> GetCount();
  Result<uint64_t> GetU64();
  Result<int64_t> GetI64();
  Result<bool> GetBool();
  Result<Bytes> GetBytes();
  Result<std::string> GetString();
  /// Reads exactly `len` raw bytes.
  Result<Bytes> GetRaw(size_t len);

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  Result<uint64_t> GetLittleEndian(int nbytes);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace transedge

#endif  // TRANSEDGE_COMMON_BYTES_H_
