#ifndef TRANSEDGE_COMMON_STATUS_H_
#define TRANSEDGE_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace transedge {

/// Coarse classification of an error, modeled after the Arrow/RocksDB
/// status idiom. Library code never throws on expected failure paths;
/// instead every fallible operation returns a `Status` or a `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kCorruption,
  kFailedPrecondition,
  kAborted,
  kConflict,
  kTimeout,
  kUnavailable,
  kVerificationFailed,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "Conflict").
const char* StatusCodeToString(StatusCode code);

/// The outcome of a fallible operation: a code plus an optional message.
///
/// An OK status carries no allocation. Statuses are cheap to copy and
/// compare by code. Typical use:
///
///     Status s = store.Put(key, value);
///     if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status VerificationFailed(std::string msg) {
    return Status(StatusCode::kVerificationFailed, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsConflict() const { return code_ == StatusCode::kConflict; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsVerificationFailed() const {
    return code_ == StatusCode::kVerificationFailed;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller.
#define TE_RETURN_IF_ERROR(expr)                    \
  do {                                              \
    ::transedge::Status _te_status = (expr);        \
    if (!_te_status.ok()) return _te_status;        \
  } while (false)

}  // namespace transedge

#endif  // TRANSEDGE_COMMON_STATUS_H_
