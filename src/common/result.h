#ifndef TRANSEDGE_COMMON_RESULT_H_
#define TRANSEDGE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace transedge {

/// Either a value of type `T` or a non-OK `Status`, following the
/// Arrow `Result<T>` idiom.
///
///     Result<Batch> r = log.GetBatch(id);
///     if (!r.ok()) return r.status();
///     const Batch& batch = r.value();
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value. Intentionally implicit so that
  /// functions can `return value;`.
  Result(T value) : inner_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. Intentionally implicit so that
  /// functions can `return Status::NotFound(...)`. `status` must be non-OK.
  Result(Status status) : inner_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(inner_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(inner_); }

  /// Returns the error, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(inner_);
  }

  /// Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(inner_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(inner_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(inner_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<Status, T> inner_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its error or assigning the
/// value into `lhs`.
#define TE_ASSIGN_OR_RETURN(lhs, rexpr)              \
  TE_ASSIGN_OR_RETURN_IMPL(                          \
      TE_CONCAT_NAME(_te_result_, __LINE__), lhs, rexpr)

#define TE_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                             \
  if (!result_name.ok()) return result_name.status();     \
  lhs = std::move(result_name).value()

#define TE_CONCAT_NAME(x, y) TE_CONCAT_NAME_IMPL(x, y)
#define TE_CONCAT_NAME_IMPL(x, y) x##y

}  // namespace transedge

#endif  // TRANSEDGE_COMMON_RESULT_H_
