#ifndef TRANSEDGE_COMMON_RNG_H_
#define TRANSEDGE_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace transedge {

/// Deterministic pseudo-random generator (xoshiro256**).
///
/// All randomness in the simulator, workload generators, and tests flows
/// through explicitly seeded `Rng` instances so that every experiment is
/// reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform value in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipfian key chooser over [0, n), YCSB-style, with configurable skew
/// `theta` (theta = 0 degenerates to uniform-ish; YCSB default is 0.99).
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  /// Samples a key in [0, n) with Zipfian popularity.
  uint64_t Next(Rng* rng);

  uint64_t n() const { return n_; }

 private:
  double Zeta(uint64_t n, double theta) const;

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace transedge

#endif  // TRANSEDGE_COMMON_RNG_H_
