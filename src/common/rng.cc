#include "common/rng.h"

#include <cmath>

namespace transedge {

namespace {
// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0ULL - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  NextBounded(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  zeta2theta_ = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) const {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Rng* rng) {
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(static_cast<double>(n_) *
                                     std::pow(eta_ * u - eta_ + 1.0, alpha_));
  // Floating-point rounding can land exactly on n_; clamp into range.
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace transedge
