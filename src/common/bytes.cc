#include "common/bytes.h"

namespace transedge {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string ToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

std::string HexEncode(const uint8_t* data, size_t len) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

std::string HexEncode(const Bytes& b) { return HexEncode(b.data(), b.size()); }

namespace {
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Result<Bytes> HexDecode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

void Encoder::PutLittleEndian(uint64_t v, int nbytes) {
  for (int i = 0; i < nbytes; ++i) {
    buf_.push_back(static_cast<uint8_t>(v & 0xff));
    v >>= 8;
  }
}

void Encoder::PutBytes(const Bytes& b) {
  PutU32(static_cast<uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void Encoder::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::PutRaw(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

Result<uint64_t> Decoder::GetLittleEndian(int nbytes) {
  if (remaining() < static_cast<size_t>(nbytes)) {
    return Status::Corruption("decode past end of buffer");
  }
  uint64_t v = 0;
  for (int i = 0; i < nbytes; ++i) {
    v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += nbytes;
  return v;
}

Result<uint8_t> Decoder::GetU8() {
  TE_ASSIGN_OR_RETURN(uint64_t v, GetLittleEndian(1));
  return static_cast<uint8_t>(v);
}

Result<uint16_t> Decoder::GetU16() {
  TE_ASSIGN_OR_RETURN(uint64_t v, GetLittleEndian(2));
  return static_cast<uint16_t>(v);
}

Result<uint32_t> Decoder::GetU32() {
  TE_ASSIGN_OR_RETURN(uint64_t v, GetLittleEndian(4));
  return static_cast<uint32_t>(v);
}

Result<uint64_t> Decoder::GetU64() { return GetLittleEndian(8); }

Result<uint32_t> Decoder::GetCount() {
  TE_ASSIGN_OR_RETURN(uint32_t count, GetU32());
  if (count > remaining()) {
    return Status::Corruption("element count exceeds remaining bytes");
  }
  return count;
}

Result<int64_t> Decoder::GetI64() {
  TE_ASSIGN_OR_RETURN(uint64_t v, GetU64());
  return static_cast<int64_t>(v);
}

Result<bool> Decoder::GetBool() {
  TE_ASSIGN_OR_RETURN(uint8_t v, GetU8());
  return v != 0;
}

Result<Bytes> Decoder::GetBytes() {
  TE_ASSIGN_OR_RETURN(uint32_t len, GetU32());
  return GetRaw(len);
}

Result<std::string> Decoder::GetString() {
  TE_ASSIGN_OR_RETURN(Bytes b, GetBytes());
  return ToString(b);
}

Result<Bytes> Decoder::GetRaw(size_t len) {
  if (remaining() < len) {
    return Status::Corruption("decode past end of buffer");
  }
  Bytes out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

}  // namespace transedge
