#ifndef TRANSEDGE_CRYPTO_SIGNER_H_
#define TRANSEDGE_CRYPTO_SIGNER_H_

#include <memory>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/hmac.h"
#include "crypto/key_store.h"
#include "crypto/sha256.h"

namespace transedge::crypto {

/// A signature attributable to one node over a byte string.
struct Signature {
  NodeId signer = 0;
  Digest mac;

  void EncodeTo(Encoder* enc) const;
  static Result<Signature> DecodeFrom(Decoder* dec);

  bool operator==(const Signature& other) const {
    return signer == other.signer && mac == other.mac;
  }
};

/// Signs messages as one particular node.
///
/// Every replica and client holds exactly one Signer for its own id; the
/// byzantine behaviours in tests and fault-injection are built on top of
/// this interface and therefore cannot sign as anybody else. The default
/// implementation is HMAC-based (see DESIGN.md §1 for the substitution
/// rationale); a real asymmetric scheme would implement the same
/// interface.
class Signer {
 public:
  virtual ~Signer() = default;

  virtual NodeId id() const = 0;
  virtual Signature Sign(const Bytes& message) const = 0;
};

/// Verifies signatures from any node. Verifiers are handed out freely —
/// holding one does not grant signing capability (enforced by API
/// structure in the HMAC scheme, by mathematics in an asymmetric one).
class Verifier {
 public:
  virtual ~Verifier() = default;

  /// True iff `sig` is a valid signature by `sig.signer` over `message`.
  virtual bool Verify(const Bytes& message, const Signature& sig) const = 0;
};

/// Trusted-setup factory for the HMAC signature scheme: derives per-node
/// signing keys from a master seed and hands out Signers (one id each)
/// and a shared Verifier.
class HmacSignatureScheme {
 public:
  HmacSignatureScheme(uint32_t num_principals, uint64_t master_seed);
  ~HmacSignatureScheme();

  std::unique_ptr<Signer> MakeSigner(NodeId id) const;

  /// Shared verifier; remains valid for the lifetime of the scheme.
  const Verifier& verifier() const { return *verifier_; }

  uint32_t num_principals() const { return num_principals_; }

 private:
  uint32_t num_principals_;
  uint64_t master_seed_;
  std::unique_ptr<Verifier> verifier_;
};

/// A certificate: `quorum` signatures from distinct nodes over the same
/// message. TransEdge attaches f+1-signature certificates to every batch
/// so that a client can trust a single node's response (§4.1).
struct SignatureSet {
  std::vector<Signature> signatures;

  void Add(Signature sig) { signatures.push_back(std::move(sig)); }
  size_t size() const { return signatures.size(); }

  void EncodeTo(Encoder* enc) const;
  static Result<SignatureSet> DecodeFrom(Decoder* dec);

  /// OK iff the set holds at least `required` valid signatures over
  /// `message` from distinct signers whose ids satisfy `is_member`.
  Status VerifyQuorum(const Verifier& verifier, const Bytes& message,
                      size_t required,
                      const std::vector<NodeId>& member_ids) const;
};

}  // namespace transedge::crypto

#endif  // TRANSEDGE_CRYPTO_SIGNER_H_
