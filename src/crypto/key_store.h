#ifndef TRANSEDGE_CRYPTO_KEY_STORE_H_
#define TRANSEDGE_CRYPTO_KEY_STORE_H_

#include <cstdint>
#include <map>
#include <utility>

#include "common/bytes.h"
#include "common/result.h"

namespace transedge::crypto {

/// Globally unique node identifier. Clients also receive NodeIds from a
/// disjoint range so they can authenticate requests and responses.
using NodeId = uint32_t;

/// Holds the pairwise symmetric secrets between every pair of principals.
///
/// In a deployment each edge node would run a key-exchange with its peers
/// (or derive pairwise keys from registered public keys); here a trusted
/// setup derives each pairwise secret deterministically from a master
/// seed. The security property the protocols rely on — node `a` cannot
/// produce an authenticator that verifies under a key it does not hold —
/// is preserved because byzantine behaviours in this codebase only access
/// keys through their own `KeyStore` view (see RestrictedTo()).
class KeyStore {
 public:
  /// Trusted-setup construction: derives all pairwise keys for node ids
  /// [0, num_principals) from `master_seed`.
  KeyStore(uint32_t num_principals, uint64_t master_seed);

  /// The symmetric key shared by `a` and `b` (order-independent).
  /// Fails for unknown principals or when this view is restricted to a
  /// principal that is neither `a` nor `b`.
  Result<Bytes> PairwiseKey(NodeId a, NodeId b) const;

  /// Returns a view of this key store that can only read keys involving
  /// `owner` — what a single (possibly byzantine) node legitimately holds.
  KeyStore RestrictedTo(NodeId owner) const;

  uint32_t num_principals() const { return num_principals_; }

 private:
  KeyStore() = default;

  uint32_t num_principals_ = 0;
  uint64_t master_seed_ = 0;
  bool restricted_ = false;
  NodeId owner_ = 0;
};

}  // namespace transedge::crypto

#endif  // TRANSEDGE_CRYPTO_KEY_STORE_H_
