#include "crypto/hmac.h"

#include <cstring>

namespace transedge::crypto {

Digest HmacSha256(const Bytes& key, const uint8_t* data, size_t len) {
  constexpr size_t kBlockSize = 64;
  uint8_t key_block[kBlockSize];
  std::memset(key_block, 0, kBlockSize);

  if (key.size() > kBlockSize) {
    Digest kd = Sha256::Hash(key);
    std::memcpy(key_block, kd.bytes.data(), kd.bytes.size());
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  uint8_t ipad[kBlockSize];
  uint8_t opad[kBlockSize];
  for (size_t i = 0; i < kBlockSize; ++i) {
    ipad[i] = key_block[i] ^ 0x36;
    opad[i] = key_block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ipad, kBlockSize);
  inner.Update(data, len);
  Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(opad, kBlockSize);
  outer.Update(inner_digest.bytes.data(), inner_digest.bytes.size());
  return outer.Finish();
}

Digest HmacSha256(const Bytes& key, const Bytes& data) {
  return HmacSha256(key, data.data(), data.size());
}

bool ConstantTimeEquals(const Digest& a, const Digest& b) {
  uint8_t diff = 0;
  for (size_t i = 0; i < a.bytes.size(); ++i) {
    diff |= static_cast<uint8_t>(a.bytes[i] ^ b.bytes[i]);
  }
  return diff == 0;
}

}  // namespace transedge::crypto
