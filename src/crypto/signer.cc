#include "crypto/signer.h"

#include <algorithm>
#include <set>

namespace transedge::crypto {

namespace {

Bytes DeriveSigningKey(uint64_t master_seed, NodeId id) {
  Encoder enc;
  enc.PutString("transedge-signing-key");
  enc.PutU64(master_seed);
  enc.PutU32(id);
  Digest d = Sha256::Hash(enc.buffer());
  return Bytes(d.bytes.begin(), d.bytes.end());
}

class HmacSigner : public Signer {
 public:
  HmacSigner(NodeId id, Bytes key) : id_(id), key_(std::move(key)) {}

  NodeId id() const override { return id_; }

  Signature Sign(const Bytes& message) const override {
    return Signature{id_, HmacSha256(key_, message)};
  }

 private:
  NodeId id_;
  Bytes key_;
};

class HmacVerifier : public Verifier {
 public:
  HmacVerifier(uint32_t num_principals, uint64_t master_seed)
      : num_principals_(num_principals), master_seed_(master_seed) {}

  bool Verify(const Bytes& message, const Signature& sig) const override {
    if (sig.signer >= num_principals_) return false;
    Bytes key = DeriveSigningKey(master_seed_, sig.signer);
    Digest expected = HmacSha256(key, message);
    return ConstantTimeEquals(expected, sig.mac);
  }

 private:
  uint32_t num_principals_;
  uint64_t master_seed_;
};

}  // namespace

void Signature::EncodeTo(Encoder* enc) const {
  enc->PutU32(signer);
  enc->PutRaw(mac.bytes.data(), mac.bytes.size());
}

Result<Signature> Signature::DecodeFrom(Decoder* dec) {
  Signature sig;
  TE_ASSIGN_OR_RETURN(sig.signer, dec->GetU32());
  TE_ASSIGN_OR_RETURN(Bytes raw, dec->GetRaw(32));
  std::copy(raw.begin(), raw.end(), sig.mac.bytes.begin());
  return sig;
}

HmacSignatureScheme::HmacSignatureScheme(uint32_t num_principals,
                                         uint64_t master_seed)
    : num_principals_(num_principals),
      master_seed_(master_seed),
      verifier_(std::make_unique<HmacVerifier>(num_principals, master_seed)) {}

HmacSignatureScheme::~HmacSignatureScheme() = default;

std::unique_ptr<Signer> HmacSignatureScheme::MakeSigner(NodeId id) const {
  return std::make_unique<HmacSigner>(id, DeriveSigningKey(master_seed_, id));
}

void SignatureSet::EncodeTo(Encoder* enc) const {
  enc->PutU32(static_cast<uint32_t>(signatures.size()));
  for (const Signature& sig : signatures) {
    sig.EncodeTo(enc);
  }
}

Result<SignatureSet> SignatureSet::DecodeFrom(Decoder* dec) {
  SignatureSet set;
  TE_ASSIGN_OR_RETURN(uint32_t count, dec->GetCount());
  set.signatures.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    TE_ASSIGN_OR_RETURN(Signature sig, Signature::DecodeFrom(dec));
    set.signatures.push_back(sig);
  }
  return set;
}

Status SignatureSet::VerifyQuorum(const Verifier& verifier,
                                  const Bytes& message, size_t required,
                                  const std::vector<NodeId>& member_ids) const {
  std::set<NodeId> distinct_valid;
  for (const Signature& sig : signatures) {
    if (std::find(member_ids.begin(), member_ids.end(), sig.signer) ==
        member_ids.end()) {
      continue;  // Signer is not a member of the expected group.
    }
    if (!verifier.Verify(message, sig)) {
      return Status::VerificationFailed(
          "certificate contains an invalid signature");
    }
    distinct_valid.insert(sig.signer);
  }
  if (distinct_valid.size() < required) {
    return Status::VerificationFailed("certificate quorum too small");
  }
  return Status::OK();
}

}  // namespace transedge::crypto
