#ifndef TRANSEDGE_CRYPTO_HMAC_H_
#define TRANSEDGE_CRYPTO_HMAC_H_

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace transedge::crypto {

/// HMAC-SHA256 (RFC 2104), verified against the RFC 4231 test vectors.
///
/// TransEdge authenticates inter-node traffic with HMAC authenticator
/// vectors, the same construction PBFT uses for its common-case messages.
/// A byzantine node cannot forge another node's authenticator because it
/// does not hold the corresponding pairwise secret.
Digest HmacSha256(const Bytes& key, const uint8_t* data, size_t len);
Digest HmacSha256(const Bytes& key, const Bytes& data);

/// Constant-time digest comparison (avoids early-exit timing leaks).
bool ConstantTimeEquals(const Digest& a, const Digest& b);

}  // namespace transedge::crypto

#endif  // TRANSEDGE_CRYPTO_HMAC_H_
