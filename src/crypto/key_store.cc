#include "crypto/key_store.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace transedge::crypto {

KeyStore::KeyStore(uint32_t num_principals, uint64_t master_seed)
    : num_principals_(num_principals), master_seed_(master_seed) {}

Result<Bytes> KeyStore::PairwiseKey(NodeId a, NodeId b) const {
  if (a >= num_principals_ || b >= num_principals_) {
    return Status::InvalidArgument("unknown principal id");
  }
  if (restricted_ && a != owner_ && b != owner_) {
    return Status::FailedPrecondition(
        "restricted key store cannot read keys of other principals");
  }
  NodeId lo = std::min(a, b);
  NodeId hi = std::max(a, b);
  Encoder enc;
  enc.PutString("transedge-pairwise-key");
  enc.PutU64(master_seed_);
  enc.PutU32(lo);
  enc.PutU32(hi);
  Digest d = Sha256::Hash(enc.buffer());
  return Bytes(d.bytes.begin(), d.bytes.end());
}

KeyStore KeyStore::RestrictedTo(NodeId owner) const {
  KeyStore ks;
  ks.num_principals_ = num_principals_;
  ks.master_seed_ = master_seed_;
  ks.restricted_ = true;
  ks.owner_ = owner;
  return ks;
}

}  // namespace transedge::crypto
