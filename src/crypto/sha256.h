#ifndef TRANSEDGE_CRYPTO_SHA256_H_
#define TRANSEDGE_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"

namespace transedge::crypto {

/// A 32-byte SHA-256 digest. Used for batch digests, Merkle nodes, and
/// message authentication throughout the system.
struct Digest {
  std::array<uint8_t, 32> bytes{};

  bool operator==(const Digest& other) const { return bytes == other.bytes; }
  bool operator!=(const Digest& other) const { return !(*this == other); }
  bool operator<(const Digest& other) const { return bytes < other.bytes; }

  /// True when every byte is zero (the default-constructed sentinel).
  bool IsZero() const;

  /// Lower-case hex rendering (64 chars).
  std::string ToHex() const;

  /// First 8 hex chars, for compact log lines.
  std::string ShortHex() const;
};

/// Incremental SHA-256 (FIPS 180-4), implemented from scratch and verified
/// against the NIST test vectors in sha256_test.cc.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);
  void Update(const Bytes& b) { Update(b.data(), b.size()); }
  void Update(std::string_view s) {
    Update(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

  /// Finalizes and returns the digest. The object must not be reused
  /// afterwards without Reset().
  Digest Finish();

  /// Restores the initial state.
  void Reset();

  /// One-shot convenience.
  static Digest Hash(const uint8_t* data, size_t len);
  static Digest Hash(const Bytes& b) { return Hash(b.data(), b.size()); }
  static Digest Hash(std::string_view s) {
    return Hash(reinterpret_cast<const uint8_t*>(s.data()), s.size());
  }

 private:
  void ProcessBlock(const uint8_t block[64]);

  uint32_t state_[8];
  uint64_t bit_count_;
  uint8_t buffer_[64];
  size_t buffer_len_;
};

/// Hash of the concatenation of two digests; the Merkle tree combiner.
Digest HashPair(const Digest& left, const Digest& right);

}  // namespace transedge::crypto

#endif  // TRANSEDGE_CRYPTO_SHA256_H_
