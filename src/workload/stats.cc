#include "workload/stats.h"

#include <algorithm>
#include <cmath>

namespace transedge::workload {

void LatencyStats::EnsureSorted() const {
  if (sorted_) return;
  std::sort(samples_.begin(), samples_.end());
  sorted_ = true;
}

double LatencyStats::MeanMs() const {
  if (samples_.empty()) return 0;
  double total = 0;
  for (sim::Time t : samples_) total += static_cast<double>(t);
  return total / static_cast<double>(samples_.size()) / 1000.0;
}

double LatencyStats::PercentileMs(double p) const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - std::floor(rank);
  double value = static_cast<double>(samples_[lo]) * (1 - frac) +
                 static_cast<double>(samples_[hi]) * frac;
  return value / 1000.0;
}

double LatencyStats::MaxMs() const {
  if (samples_.empty()) return 0;
  EnsureSorted();
  return static_cast<double>(samples_.back()) / 1000.0;
}

}  // namespace transedge::workload
