#ifndef TRANSEDGE_WORKLOAD_STATS_H_
#define TRANSEDGE_WORKLOAD_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace transedge::workload {

/// Collects latency samples (simulated microseconds) and reports the
/// usual summary statistics. Sample storage is exact — bench runs are
/// small enough that reservoirs are unnecessary.
class LatencyStats {
 public:
  void Record(sim::Time latency_us) {
    samples_.push_back(latency_us);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double MeanMs() const;
  double PercentileMs(double p) const;  // p in [0, 100]
  double P50Ms() const { return PercentileMs(50); }
  double P95Ms() const { return PercentileMs(95); }
  double P99Ms() const { return PercentileMs(99); }
  double MaxMs() const;

  void Clear() { samples_.clear(); }

 private:
  // Sorted lazily by the accessors.
  mutable std::vector<sim::Time> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

}  // namespace transedge::workload

#endif  // TRANSEDGE_WORKLOAD_STATS_H_
