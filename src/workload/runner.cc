#include "workload/runner.h"

namespace transedge::workload {

ClosedLoopRunner::ClosedLoopRunner(core::System* system, int num_clients,
                                   PlanFn plan_fn, RoMode ro_mode,
                                   uint64_t seed, int concurrency)
    : system_(system),
      plan_fn_(std::move(plan_fn)),
      ro_mode_(ro_mode),
      concurrency_(concurrency) {
  loops_.reserve(static_cast<size_t>(num_clients));
  for (int i = 0; i < num_clients; ++i) {
    ClientLoop loop;
    loop.client = system_->AddClient();
    loop.rng = std::make_unique<Rng>(seed + static_cast<uint64_t>(i) * 7919);
    loops_.push_back(std::move(loop));
  }
}

void ClosedLoopRunner::Start(sim::Time warmup_end, sim::Time stop_time) {
  warmup_end_ = warmup_end;
  stop_time_ = stop_time;
  for (ClientLoop& loop : loops_) {
    ClientLoop* raw = &loop;
    for (int c = 0; c < concurrency_; ++c) {
      // Stagger starts over a few milliseconds so the first batch is not
      // one synchronized burst.
      sim::Time offset = static_cast<sim::Time>(
          loop.rng->NextBounded(static_cast<uint64_t>(sim::Millis(5))));
      system_->env().Schedule(sim::Millis(20) + offset,
                              [this, raw] { IssueNext(raw); });
    }
  }
}

void ClosedLoopRunner::RunToCompletion(sim::Time drain) {
  system_->env().RunUntil(stop_time_ + drain);
}

void ClosedLoopRunner::IssueNext(ClientLoop* loop) {
  if (system_->env().now() >= stop_time_) return;
  TxnPlan plan = plan_fn_(loop->rng.get());
  sim::Time start = system_->env().now();

  switch (plan.kind) {
    case TxnPlan::Kind::kReadOnly:
      switch (ro_mode_) {
        case RoMode::kTransEdge:
          loop->client->ExecuteReadOnly(
              plan.read_keys, [this, loop, start](core::RoResult r) {
                OnRoDone(loop, start, r);
              });
          break;
        case RoMode::kRegular2pc:
          loop->client->ExecuteReadOnlyAsRegular(
              plan.read_keys, [this, loop, start](core::RwResult r) {
                // Count the baseline's read-only txns as RO completions.
                core::RoResult ro;
                ro.status = r.committed
                                ? Status::OK()
                                : Status::Aborted(r.reason);
                ro.latency = r.latency;
                ro.round1_latency = r.latency;
                OnRoDone(loop, start, ro);
              });
          break;
        case RoMode::kAugustus:
          loop->client->ExecuteAugustusReadOnly(
              plan.read_keys, [this, loop, start](core::RoResult r) {
                OnRoDone(loop, start, r);
              });
          break;
      }
      break;
    case TxnPlan::Kind::kReadWrite:
    case TxnPlan::Kind::kWriteOnly:
      loop->client->ExecuteReadWrite(
          plan.read_keys, plan.writes,
          [this, loop, start](core::RwResult r) { OnRwDone(loop, start, r); });
      break;
  }
}

void ClosedLoopRunner::OnRwDone(ClientLoop* loop, sim::Time start,
                                const core::RwResult& r) {
  (void)start;
  sim::Time now = system_->env().now();
  if (InMeasureWindow(now)) {
    if (r.committed) {
      ++measured_completions_;
      ++stats_.rw_committed;
      stats_.rw_latency.Record(r.latency);
    } else if (r.reason == "client timeout") {
      ++stats_.timeouts;
    } else {
      ++stats_.rw_aborted;
    }
  }
  if (!r.committed) {
    // Back off after an abort (OCC retry hygiene); otherwise contended
    // loops spin at network speed.
    sim::Time backoff = sim::Millis(5) + static_cast<sim::Time>(
        loop->rng->NextBounded(static_cast<uint64_t>(sim::Millis(10))));
    system_->env().Schedule(backoff, [this, loop] { IssueNext(loop); });
    return;
  }
  IssueNext(loop);
}

void ClosedLoopRunner::OnRoDone(ClientLoop* loop, sim::Time start,
                                const core::RoResult& r) {
  (void)start;
  sim::Time now = system_->env().now();
  if (InMeasureWindow(now)) {
    if (r.status.ok()) {
      ++measured_completions_;
      ++stats_.ro_completed;
      stats_.ro_latency.Record(r.latency);
      stats_.ro_round1_latency.Record(r.round1_latency);
      if (r.rounds > 1) ++stats_.ro_two_round;
    } else {
      ++stats_.ro_failures;
    }
  }
  IssueNext(loop);
}

double ClosedLoopRunner::ThroughputTps() const {
  sim::Time window = stop_time_ - warmup_end_;
  if (window <= 0) return 0;
  return static_cast<double>(measured_completions_) / sim::ToSeconds(window);
}

double ClosedLoopRunner::AbortRatePct() const {
  uint64_t attempts = stats_.rw_committed + stats_.rw_aborted;
  if (attempts == 0) return 0;
  return 100.0 * static_cast<double>(stats_.rw_aborted) /
         static_cast<double>(attempts);
}

}  // namespace transedge::workload
