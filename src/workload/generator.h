#ifndef TRANSEDGE_WORKLOAD_GENERATOR_H_
#define TRANSEDGE_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "storage/partition_map.h"
#include "txn/types.h"

namespace transedge::workload {

/// Workload parameters, following §5.1's data model: keys hashed
/// uniformly across clusters, fixed-size values. The paper uses 1M keys
/// and 256-byte values; the defaults here are scaled down so the full
/// bench suite runs quickly — the protocols never branch on key-space
/// size or payload bytes, so shapes are unaffected (see EXPERIMENTS.md).
struct WorkloadOptions {
  uint64_t num_keys = 20000;
  size_t value_size = 32;
  /// 0 = uniform key popularity; >0 = YCSB-style zipfian skew.
  double zipf_theta = 0.0;
  uint64_t seed = 42;
};

/// Pre-materialized key universe, indexed by owning partition so that
/// transaction plans can target an exact number of clusters.
class KeySpace {
 public:
  KeySpace(const WorkloadOptions& options, uint32_t num_partitions);

  /// All keys paired with deterministic initial values, for preloading.
  std::vector<std::pair<Key, Value>> InitialData() const;

  const Key& RandomKey(Rng* rng) const;
  const Key& RandomKeyIn(PartitionId p, Rng* rng) const;
  /// Zipfian-popular key (uses uniform choice when theta == 0).
  const Key& PopularKey(Rng* rng);

  Value RandomValue(Rng* rng) const;

  uint64_t size() const { return keys_.size(); }
  uint32_t num_partitions() const {
    return static_cast<uint32_t>(by_partition_.size());
  }

 private:
  WorkloadOptions options_;
  std::vector<Key> keys_;
  std::vector<std::vector<uint32_t>> by_partition_;
  ZipfianGenerator zipf_;
};

/// One planned client operation.
struct TxnPlan {
  enum class Kind { kReadOnly, kReadWrite, kWriteOnly };
  Kind kind = Kind::kReadWrite;
  std::vector<Key> read_keys;
  std::vector<WriteOp> writes;
};

/// Builds transaction plans matching the paper's workload shapes.
class PlanGenerator {
 public:
  PlanGenerator(KeySpace* keys, uint32_t num_partitions)
      : keys_(keys), num_partitions_(num_partitions) {}

  /// `reads` read ops + `writes` write ops spread over `clusters`
  /// distinct clusters (§5.1: default 5 reads, 3 writes, 5 clusters).
  TxnPlan MakeReadWrite(int reads, int writes, int clusters, Rng* rng) const;

  /// The Figure 10/11 skew shape: one write per cluster on `writes`
  /// distinct clusters, with the reads co-located on those clusters —
  /// so "R=5,W=1" degenerates to a local transaction and "R=1,W=5"
  /// coordinates across all five, exactly as §5.2 describes.
  TxnPlan MakeSkewedReadWrite(int reads, int writes, Rng* rng) const;

  /// All operations on a single random cluster.
  TxnPlan MakeLocalReadWrite(int reads, int writes, Rng* rng) const;
  TxnPlan MakeWriteOnly(int writes, Rng* rng) const;

  /// `total_keys` unique keys spread over `clusters` distinct clusters
  /// (paper default: 5 keys, 1 per cluster).
  TxnPlan MakeReadOnly(int total_keys, int clusters, Rng* rng) const;

 private:
  std::vector<PartitionId> PickClusters(int clusters, Rng* rng) const;

  KeySpace* keys_;
  uint32_t num_partitions_;
};

}  // namespace transedge::workload

#endif  // TRANSEDGE_WORKLOAD_GENERATOR_H_
