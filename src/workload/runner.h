#ifndef TRANSEDGE_WORKLOAD_RUNNER_H_
#define TRANSEDGE_WORKLOAD_RUNNER_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/system.h"
#include "workload/generator.h"
#include "workload/stats.h"

namespace transedge::workload {

/// How read-only plans are executed — TransEdge's snapshot protocol or
/// one of the two baselines from the paper's evaluation.
enum class RoMode {
  kTransEdge,   // §4: commit-free, ≤2 rounds.
  kRegular2pc,  // 2PC/BFT baseline: RO as a regular transaction (§3.5).
  kAugustus,    // Locking + replica voting baseline.
};

/// Aggregate results of one closed-loop run.
struct RunnerStats {
  LatencyStats rw_latency;          // Committed read-write transactions.
  LatencyStats ro_latency;          // Completed read-only transactions.
  LatencyStats ro_round1_latency;   // Round-1 portion of RO latency.
  uint64_t rw_committed = 0;
  uint64_t rw_aborted = 0;
  uint64_t ro_completed = 0;
  uint64_t ro_two_round = 0;
  uint64_t ro_failures = 0;
  uint64_t timeouts = 0;

  uint64_t total_completed() const { return rw_committed + rw_aborted +
                                            ro_completed + ro_failures; }
};

/// Drives a System with `num_clients` closed-loop clients: each client
/// executes one plan at a time and immediately issues the next when it
/// completes, until `stop_time`. Samples completing before `warmup_end`
/// are discarded. Throughput is (measured completions) / window.
class ClosedLoopRunner {
 public:
  using PlanFn = std::function<TxnPlan(Rng*)>;

  /// `concurrency` = independent closed loops per client actor (an
  /// emulation of the paper's multi-threaded clients; total in-flight
  /// transactions = num_clients * concurrency).
  ClosedLoopRunner(core::System* system, int num_clients, PlanFn plan_fn,
                   RoMode ro_mode, uint64_t seed, int concurrency = 1);

  /// Starts all client loops. Call before running the environment.
  void Start(sim::Time warmup_end, sim::Time stop_time);

  /// Runs the environment until stop_time plus a drain margin.
  void RunToCompletion(sim::Time drain = sim::Seconds(3));

  const RunnerStats& stats() const { return stats_; }

  /// Successfully completed (committed / verified) operations per second
  /// of simulated time.
  double ThroughputTps() const;

  /// Fraction of read-write attempts that aborted, in percent.
  double AbortRatePct() const;

 private:
  struct ClientLoop {
    core::Client* client = nullptr;
    std::unique_ptr<Rng> rng;
  };

  void IssueNext(ClientLoop* loop);
  void OnRwDone(ClientLoop* loop, sim::Time start, const core::RwResult& r);
  void OnRoDone(ClientLoop* loop, sim::Time start, const core::RoResult& r);
  bool InMeasureWindow(sim::Time now) const {
    return now >= warmup_end_ && now <= stop_time_;
  }

  core::System* system_;
  PlanFn plan_fn_;
  RoMode ro_mode_;
  int concurrency_;
  std::vector<ClientLoop> loops_;
  sim::Time warmup_end_ = 0;
  sim::Time stop_time_ = 0;
  uint64_t measured_completions_ = 0;
  RunnerStats stats_;
};

}  // namespace transedge::workload

#endif  // TRANSEDGE_WORKLOAD_RUNNER_H_
