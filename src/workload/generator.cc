#include "workload/generator.h"

#include <algorithm>
#include <cstdio>
#include <set>

namespace transedge::workload {

KeySpace::KeySpace(const WorkloadOptions& options, uint32_t num_partitions)
    : options_(options),
      by_partition_(num_partitions),
      zipf_(options.num_keys, options.zipf_theta > 0 ? options.zipf_theta
                                                     : 0.99) {
  storage::PartitionMap pmap(num_partitions);
  keys_.reserve(options.num_keys);
  for (uint64_t i = 0; i < options.num_keys; ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "k%010llu",
                  static_cast<unsigned long long>(i));
    keys_.emplace_back(buf);
    by_partition_[pmap.OwnerOf(keys_.back())].push_back(
        static_cast<uint32_t>(i));
  }
}

std::vector<std::pair<Key, Value>> KeySpace::InitialData() const {
  Rng rng(options_.seed ^ 0x1217ULL);
  std::vector<std::pair<Key, Value>> data;
  data.reserve(keys_.size());
  for (const Key& key : keys_) {
    Value value(options_.value_size);
    for (uint8_t& b : value) b = static_cast<uint8_t>(rng.Next());
    data.emplace_back(key, std::move(value));
  }
  return data;
}

const Key& KeySpace::RandomKey(Rng* rng) const {
  return keys_[rng->NextBounded(keys_.size())];
}

const Key& KeySpace::RandomKeyIn(PartitionId p, Rng* rng) const {
  const auto& bucket = by_partition_[p];
  return keys_[bucket[rng->NextBounded(bucket.size())]];
}

const Key& KeySpace::PopularKey(Rng* rng) {
  if (options_.zipf_theta <= 0) return RandomKey(rng);
  return keys_[zipf_.Next(rng)];
}

Value KeySpace::RandomValue(Rng* rng) const {
  Value value(options_.value_size);
  for (uint8_t& b : value) b = static_cast<uint8_t>(rng->Next());
  return value;
}

std::vector<PartitionId> PlanGenerator::PickClusters(int clusters,
                                                     Rng* rng) const {
  int want = std::min<int>(clusters, static_cast<int>(num_partitions_));
  std::vector<PartitionId> all(num_partitions_);
  for (uint32_t i = 0; i < num_partitions_; ++i) all[i] = i;
  rng->Shuffle(&all);
  all.resize(static_cast<size_t>(want));
  return all;
}

TxnPlan PlanGenerator::MakeReadWrite(int reads, int writes, int clusters,
                                     Rng* rng) const {
  TxnPlan plan;
  plan.kind = TxnPlan::Kind::kReadWrite;
  std::vector<PartitionId> parts = PickClusters(clusters, rng);
  std::set<Key> used;
  size_t cursor = 0;
  auto next_key = [&](PartitionId p) {
    // Unique keys within the transaction.
    for (int attempt = 0; attempt < 32; ++attempt) {
      const Key& k = keys_->RandomKeyIn(p, rng);
      if (used.insert(k).second) return k;
    }
    return keys_->RandomKeyIn(p, rng);
  };
  for (int i = 0; i < reads; ++i) {
    PartitionId p = parts[cursor++ % parts.size()];
    plan.read_keys.push_back(next_key(p));
  }
  for (int i = 0; i < writes; ++i) {
    PartitionId p = parts[cursor++ % parts.size()];
    plan.writes.push_back(WriteOp{next_key(p), keys_->RandomValue(rng)});
  }
  return plan;
}

TxnPlan PlanGenerator::MakeSkewedReadWrite(int reads, int writes,
                                           Rng* rng) const {
  TxnPlan plan;
  plan.kind = TxnPlan::Kind::kReadWrite;
  std::vector<PartitionId> parts = PickClusters(writes, rng);
  std::set<Key> used;
  auto next_key = [&](PartitionId p) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const Key& k = keys_->RandomKeyIn(p, rng);
      if (used.insert(k).second) return k;
    }
    return keys_->RandomKeyIn(p, rng);
  };
  for (int i = 0; i < writes; ++i) {
    PartitionId p = parts[static_cast<size_t>(i) % parts.size()];
    plan.writes.push_back(WriteOp{next_key(p), keys_->RandomValue(rng)});
  }
  for (int i = 0; i < reads; ++i) {
    PartitionId p = parts[static_cast<size_t>(i) % parts.size()];
    plan.read_keys.push_back(next_key(p));
  }
  return plan;
}

TxnPlan PlanGenerator::MakeLocalReadWrite(int reads, int writes,
                                          Rng* rng) const {
  TxnPlan plan = MakeReadWrite(reads, writes, 1, rng);
  plan.kind = TxnPlan::Kind::kReadWrite;
  return plan;
}

TxnPlan PlanGenerator::MakeWriteOnly(int writes, Rng* rng) const {
  TxnPlan plan;
  plan.kind = TxnPlan::Kind::kWriteOnly;
  PartitionId p = PickClusters(1, rng)[0];
  std::set<Key> used;
  for (int i = 0; i < writes; ++i) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const Key& k = keys_->RandomKeyIn(p, rng);
      if (used.insert(k).second) {
        plan.writes.push_back(WriteOp{k, keys_->RandomValue(rng)});
        break;
      }
    }
  }
  return plan;
}

TxnPlan PlanGenerator::MakeReadOnly(int total_keys, int clusters,
                                    Rng* rng) const {
  TxnPlan plan;
  plan.kind = TxnPlan::Kind::kReadOnly;
  std::vector<PartitionId> parts = PickClusters(clusters, rng);
  std::set<Key> used;
  for (int i = 0; i < total_keys; ++i) {
    PartitionId p = parts[static_cast<size_t>(i) % parts.size()];
    for (int attempt = 0; attempt < 32; ++attempt) {
      const Key& k = keys_->RandomKeyIn(p, rng);
      if (used.insert(k).second) {
        plan.read_keys.push_back(k);
        break;
      }
    }
  }
  return plan;
}

}  // namespace transedge::workload
