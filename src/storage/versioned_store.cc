#include "storage/versioned_store.h"

#include <algorithm>
#include <cassert>

namespace transedge::storage {

void VersionedStore::Put(const Key& key, Value value, BatchId version) {
  Chain& chain = chains_[key];
  assert(chain.empty() || chain.back().version <= version);
  if (!chain.empty() && chain.back().version == version) {
    // Same-batch overwrite (two txns in one batch never conflict, but a
    // batch may legitimately carry blind writes to one key across
    // non-conflicting txn sets is excluded by OCC; keep last-write-wins
    // for robustness).
    chain.back().value = std::move(value);
    return;
  }
  chain.push_back(VersionedValue{std::move(value), version});
  ++total_versions_;
}

Result<VersionedValue> VersionedStore::Get(const Key& key) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) {
    return Status::NotFound("key not found: " + key);
  }
  return it->second.back();
}

Result<VersionedValue> VersionedStore::GetAsOf(const Key& key,
                                               BatchId as_of) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) {
    return Status::NotFound("key not found: " + key);
  }
  const Chain& chain = it->second;
  // Last element with version <= as_of.
  auto pos = std::upper_bound(
      chain.begin(), chain.end(), as_of,
      [](BatchId v, const VersionedValue& vv) { return v < vv.version; });
  if (pos == chain.begin()) {
    return Status::NotFound("key has no version at or before requested batch");
  }
  return *(pos - 1);
}

BatchId VersionedStore::LatestVersion(const Key& key) const {
  auto it = chains_.find(key);
  if (it == chains_.end() || it->second.empty()) return kNoBatch;
  return it->second.back().version;
}

void VersionedStore::ForEachLatest(
    const std::function<void(const Key&, const Value&, BatchId)>& fn) const {
  for (const auto& [key, chain] : chains_) {
    if (chain.empty()) continue;
    fn(key, chain.back().value, chain.back().version);
  }
}

size_t VersionedStore::TruncateHistory(BatchId horizon) {
  size_t dropped = 0;
  for (auto& [key, chain] : chains_) {
    // Find the last version <= horizon; everything before it can go.
    auto pos = std::upper_bound(
        chain.begin(), chain.end(), horizon,
        [](BatchId v, const VersionedValue& vv) { return v < vv.version; });
    if (pos == chain.begin()) continue;
    size_t keep_from = static_cast<size_t>((pos - 1) - chain.begin());
    if (keep_from == 0) continue;
    chain.erase(chain.begin(), chain.begin() + keep_from);
    dropped += keep_from;
  }
  total_versions_ -= dropped;
  return dropped;
}

}  // namespace transedge::storage
