#ifndef TRANSEDGE_STORAGE_STORAGE_BACKEND_H_
#define TRANSEDGE_STORAGE_STORAGE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "storage/smr_log.h"
#include "storage/storage_kind.h"
#include "storage/versioned_store.h"

namespace transedge::storage {

namespace paged {
class SimDisk;
}  // namespace paged

/// Cumulative I/O counters a backend reports. The node charges simulated
/// time from the *deltas* between hook calls (mirroring how the apply
/// queue charges `apply_cpu_`), so the backend itself stays a pure data
/// structure with no notion of time. The in-memory backend leaves every
/// counter at zero — zero counters, zero charges, bit-identical runs.
struct StorageIoStats {
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_syncs = 0;
  uint64_t pages_written = 0;
  uint64_t page_bytes_written = 0;
  uint64_t pages_read = 0;
  uint64_t file_syncs = 0;  // Page-file sync barriers (checkpoint flush).
  uint64_t checkpoints = 0;
  uint64_t wal_records_replayed = 0;  // Recovery only.
};

/// Certificate checking during recovery. With a null verifier the replay
/// trusts the on-disk CRCs alone (unit tests); a restarted replica passes
/// its cluster's verifier so a tampered-but-recrc'd log entry cannot
/// resurrect.
struct RecoverOptions {
  const crypto::Verifier* verifier = nullptr;
  std::vector<crypto::NodeId> member_ids;
  size_t required_signatures = 0;
};

/// What `Recover` re-established. `checkpoint_applied`/`checkpoint_root`
/// describe the durable checkpoint; entries beyond it were re-applied
/// from WAL records + certificates, so the post-recovery watermark is
/// `log().LastBatchId()` (the durable WAL tail — possibly *ahead* of the
/// crashed replica's applied watermark, never behind the checkpoint).
struct RecoveredState {
  BatchId checkpoint_applied = kNoBatch;
  crypto::Digest checkpoint_root;
};

/// The seam under the replica's storage stack. The node owns exactly one
/// backend and reaches the store/log only through it; durability hooks
/// (`OnDecided`, `OnApplied`, `TruncateHistory`) are called at the same
/// points the monolithic code mutated the in-memory structures, so an
/// engine can persist without the node knowing how.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  virtual StorageKind kind() const = 0;

  virtual VersionedStore& store() = 0;
  virtual const VersionedStore& store() const = 0;
  virtual SmrLog& log() = 0;
  virtual const SmrLog& log() const = 0;

  /// Installs the pre-replicated initial state (before the sim starts).
  /// `root` is the Merkle root over that state; durable engines persist
  /// both as checkpoint generation 0.
  virtual void Preload(const VersionedStore& store,
                       const crypto::Digest& root) = 0;

  /// Called right after consensus appended `log().back()`. Durable
  /// engines append the entry to the WAL (fsync per the group-commit
  /// tuning) — this is the decision-critical-path durability cost.
  virtual void OnDecided() {}

  /// Called after batch `last_applied`'s writes reached the store with
  /// `root` the applied Merkle root. Durable engines mark dirty buckets
  /// and periodically checkpoint (copy-on-write page flush + meta flip).
  virtual void OnApplied(BatchId last_applied, const crypto::Digest& root) {
    (void)last_applied;
    (void)root;
  }

  /// The one authoritative history horizon (the node passes its snapshot
  /// base): key versions strictly older than the latest one at or below
  /// `horizon` are dropped AND log entries below `horizon` become
  /// unavailable, under every engine. Catch-up and the read-only
  /// out-of-window rejection are bounded by the same number.
  virtual void TruncateHistory(BatchId horizon) = 0;

  /// Rebuilds store + log from durable state (checkpoint + WAL replay).
  /// Entries beyond the checkpoint re-apply their writes from the log
  /// entry itself. Only meaningful on a freshly constructed backend.
  virtual Result<RecoveredState> Recover(const RecoverOptions& opts) = 0;

  virtual const StorageIoStats& io_stats() const = 0;
};

/// The default engine: exactly the structures the node used to own.
class InMemoryBackend : public StorageBackend {
 public:
  InMemoryBackend() = default;

  StorageKind kind() const override { return StorageKind::kInMemory; }
  VersionedStore& store() override { return store_; }
  const VersionedStore& store() const override { return store_; }
  SmrLog& log() override { return log_; }
  const SmrLog& log() const override { return log_; }

  void Preload(const VersionedStore& store,
               const crypto::Digest& root) override;
  void TruncateHistory(BatchId horizon) override;
  Result<RecoveredState> Recover(const RecoverOptions& opts) override;
  const StorageIoStats& io_stats() const override { return stats_; }

 private:
  VersionedStore store_;
  SmrLog log_;
  StorageIoStats stats_;  // Always zero: no I/O, no simulated time.
};

/// Factory, `MakeConsensus`-style. `disk` is borrowed and must outlive
/// the backend; it is ignored (may be null) for the in-memory engine and
/// required for the paged one.
std::unique_ptr<StorageBackend> MakeStorageBackend(StorageKind kind,
                                                   const StorageTuning& tuning,
                                                   paged::SimDisk* disk);

}  // namespace transedge::storage

#endif  // TRANSEDGE_STORAGE_STORAGE_BACKEND_H_
