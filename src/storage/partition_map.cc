#include "storage/partition_map.h"

#include <algorithm>
#include <set>

namespace transedge::storage {

PartitionId PartitionMap::OwnerOf(const Key& key) const {
  crypto::Digest d = crypto::Sha256::Hash(key);
  // Use the last 4 bytes so partition choice is independent from the
  // Merkle leaf index (which uses the first 4).
  uint32_t h = (static_cast<uint32_t>(d.bytes[28]) << 24) |
               (static_cast<uint32_t>(d.bytes[29]) << 16) |
               (static_cast<uint32_t>(d.bytes[30]) << 8) |
               static_cast<uint32_t>(d.bytes[31]);
  return h % num_partitions_;
}

std::vector<PartitionId> PartitionMap::ParticipantsOf(
    const std::vector<ReadOp>& read_set,
    const std::vector<WriteOp>& write_set) const {
  std::set<PartitionId> parts;
  for (const ReadOp& r : read_set) parts.insert(OwnerOf(r.key));
  for (const WriteOp& w : write_set) parts.insert(OwnerOf(w.key));
  return std::vector<PartitionId>(parts.begin(), parts.end());
}

std::vector<ReadOp> PartitionMap::ReadsFor(const Transaction& txn,
                                           PartitionId p) const {
  std::vector<ReadOp> out;
  for (const ReadOp& r : txn.read_set) {
    if (OwnerOf(r.key) == p) out.push_back(r);
  }
  return out;
}

std::vector<WriteOp> PartitionMap::WritesFor(const Transaction& txn,
                                             PartitionId p) const {
  std::vector<WriteOp> out;
  for (const WriteOp& w : txn.write_set) {
    if (OwnerOf(w.key) == p) out.push_back(w);
  }
  return out;
}

}  // namespace transedge::storage
