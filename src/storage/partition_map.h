#ifndef TRANSEDGE_STORAGE_PARTITION_MAP_H_
#define TRANSEDGE_STORAGE_PARTITION_MAP_H_

#include <vector>

#include "crypto/sha256.h"
#include "txn/types.h"

namespace transedge::storage {

/// Hash-partitions the key space across `num_partitions` clusters
/// (§5.1: "Keys are uniformly distributed across the clusters using
/// hashing"). Clients and replicas share the same map, so ownership is a
/// pure function of the key.
class PartitionMap {
 public:
  explicit PartitionMap(uint32_t num_partitions)
      : num_partitions_(num_partitions) {}

  PartitionId OwnerOf(const Key& key) const;

  uint32_t num_partitions() const { return num_partitions_; }

  /// The distinct partitions touched by `txn`'s read and write sets,
  /// ascending.
  std::vector<PartitionId> ParticipantsOf(
      const std::vector<ReadOp>& read_set,
      const std::vector<WriteOp>& write_set) const;

  /// The subset of `txn`'s operations owned by partition `p`.
  std::vector<ReadOp> ReadsFor(const Transaction& txn, PartitionId p) const;
  std::vector<WriteOp> WritesFor(const Transaction& txn, PartitionId p) const;

 private:
  uint32_t num_partitions_;
};

}  // namespace transedge::storage

#endif  // TRANSEDGE_STORAGE_PARTITION_MAP_H_
