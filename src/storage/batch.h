#ifndef TRANSEDGE_STORAGE_BATCH_H_
#define TRANSEDGE_STORAGE_BATCH_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "txn/cd_vector.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"
#include "txn/types.h"

namespace transedge::storage {

/// What one participant reported in its 2PC `prepared` message for a
/// distributed transaction: its vote, the batch its prepare record landed
/// in, and — crucially for Algorithm 1 — the CD vector of that batch,
/// which carries the participant's direct and transitive dependencies
/// (§4.3.3(c)).
struct PreparedInfo {
  PartitionId partition = 0;
  BatchId prepared_in_batch = kNoBatch;
  bool vote = false;
  txn::CdVector cd_vector;

  void EncodeTo(Encoder* enc) const;
  static Result<PreparedInfo> DecodeFrom(Decoder* dec);
  bool operator==(const PreparedInfo&) const = default;
};

/// A commit record in the committed segment: the coordinator's decision
/// for a distributed transaction together with the collected prepared
/// messages (§3.3.4).
struct CommitRecord {
  TxnId txn_id = 0;
  bool committed = false;  // false = aborted by the coordinator
  /// Batch at *this* partition whose prepared segment holds the txn.
  BatchId prepared_in_batch = kNoBatch;
  std::vector<PreparedInfo> participant_info;
  /// Partition that coordinated the decision. Only its leader fans the
  /// record out to participants; everyone else just applies it.
  PartitionId coordinator = 0;

  void EncodeTo(Encoder* enc) const;
  static Result<CommitRecord> DecodeFrom(Decoder* dec);
  bool operator==(const CommitRecord&) const = default;
};

/// The read-only segment of a batch (Figure 2, segment 4): everything a
/// snapshot read-only transaction needs — the CD vector, the LCE, the
/// Merkle root certifying the post-batch state, and a freshness
/// timestamp (§4.4.2).
struct ReadOnlySegment {
  txn::CdVector cd_vector;
  BatchId lce = kNoBatch;
  crypto::Digest merkle_root;
  /// Leader-claimed wall-clock (simulated) microseconds; replicas reject
  /// batches whose timestamp falls outside the configured window.
  int64_t timestamp_us = 0;

  void EncodeTo(Encoder* enc) const;
  static Result<ReadOnlySegment> DecodeFrom(Decoder* dec);
  bool operator==(const ReadOnlySegment&) const = default;

  /// Digest over the serialized segment. Covered by batch certificates
  /// so that a read-only client can authenticate the CD vector, LCE, and
  /// timestamp it receives from a single (possibly lying) node.
  crypto::Digest ComputeDigest() const;
};

/// One batch of the SMR log (Figure 2): local transactions, newly
/// prepared distributed transactions, commit records of a ready prepare
/// group, and the read-only segment.
struct Batch {
  PartitionId partition = 0;
  BatchId id = kNoBatch;
  std::vector<Transaction> local;
  std::vector<Transaction> prepared;
  std::vector<CommitRecord> committed;
  ReadOnlySegment ro;

  void EncodeTo(Encoder* enc) const;
  static Result<Batch> DecodeFrom(Decoder* dec);
  bool operator==(const Batch&) const = default;

  /// Canonical digest over the serialized batch; this is what the
  /// intra-cluster consensus agrees on and what certificates sign.
  crypto::Digest ComputeDigest() const;

  size_t TotalTransactions() const {
    return local.size() + prepared.size() + committed.size();
  }
};

/// Proof that a cluster certified a batch: f+1 replica signatures over
/// (partition, batch id, batch digest, merkle root). A single node can
/// attach this to a read-only response and the client can trust it
/// without contacting the other replicas (§4.1, §4.2).
struct BatchCertificate {
  PartitionId partition = 0;
  BatchId batch_id = kNoBatch;
  crypto::Digest batch_digest;
  crypto::Digest merkle_root;
  /// Digest of the batch's read-only segment (CD vector, LCE, timestamp).
  crypto::Digest ro_digest;
  crypto::SignatureSet signatures;

  /// The exact bytes each replica signs.
  Bytes SignedPayload() const;

  /// OK iff at least `required` valid distinct member signatures cover
  /// the payload.
  Status Verify(const crypto::Verifier& verifier, size_t required,
                const std::vector<crypto::NodeId>& member_ids) const;

  void EncodeTo(Encoder* enc) const;
  static Result<BatchCertificate> DecodeFrom(Decoder* dec);
};

}  // namespace transedge::storage

#endif  // TRANSEDGE_STORAGE_BATCH_H_
