#include "storage/batch.h"

namespace transedge::storage {

void PreparedInfo::EncodeTo(Encoder* enc) const {
  enc->PutU32(partition);
  enc->PutI64(prepared_in_batch);
  enc->PutBool(vote);
  cd_vector.EncodeTo(enc);
}

Result<PreparedInfo> PreparedInfo::DecodeFrom(Decoder* dec) {
  PreparedInfo info;
  TE_ASSIGN_OR_RETURN(info.partition, dec->GetU32());
  TE_ASSIGN_OR_RETURN(info.prepared_in_batch, dec->GetI64());
  TE_ASSIGN_OR_RETURN(info.vote, dec->GetBool());
  TE_ASSIGN_OR_RETURN(info.cd_vector, txn::CdVector::DecodeFrom(dec));
  return info;
}

void CommitRecord::EncodeTo(Encoder* enc) const {
  enc->PutU64(txn_id);
  enc->PutBool(committed);
  enc->PutI64(prepared_in_batch);
  enc->PutU32(static_cast<uint32_t>(participant_info.size()));
  for (const PreparedInfo& info : participant_info) info.EncodeTo(enc);
  enc->PutU32(coordinator);
}

Result<CommitRecord> CommitRecord::DecodeFrom(Decoder* dec) {
  CommitRecord rec;
  TE_ASSIGN_OR_RETURN(rec.txn_id, dec->GetU64());
  TE_ASSIGN_OR_RETURN(rec.committed, dec->GetBool());
  TE_ASSIGN_OR_RETURN(rec.prepared_in_batch, dec->GetI64());
  TE_ASSIGN_OR_RETURN(uint32_t n, dec->GetCount());
  rec.participant_info.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TE_ASSIGN_OR_RETURN(PreparedInfo info, PreparedInfo::DecodeFrom(dec));
    rec.participant_info.push_back(std::move(info));
  }
  TE_ASSIGN_OR_RETURN(rec.coordinator, dec->GetU32());
  return rec;
}

void ReadOnlySegment::EncodeTo(Encoder* enc) const {
  cd_vector.EncodeTo(enc);
  enc->PutI64(lce);
  enc->PutRaw(merkle_root.bytes.data(), merkle_root.bytes.size());
  enc->PutI64(timestamp_us);
}

Result<ReadOnlySegment> ReadOnlySegment::DecodeFrom(Decoder* dec) {
  ReadOnlySegment seg;
  TE_ASSIGN_OR_RETURN(seg.cd_vector, txn::CdVector::DecodeFrom(dec));
  TE_ASSIGN_OR_RETURN(seg.lce, dec->GetI64());
  TE_ASSIGN_OR_RETURN(Bytes raw, dec->GetRaw(32));
  std::copy(raw.begin(), raw.end(), seg.merkle_root.bytes.begin());
  TE_ASSIGN_OR_RETURN(seg.timestamp_us, dec->GetI64());
  return seg;
}

void Batch::EncodeTo(Encoder* enc) const {
  enc->PutU32(partition);
  enc->PutI64(id);
  enc->PutU32(static_cast<uint32_t>(local.size()));
  for (const Transaction& t : local) t.EncodeTo(enc);
  enc->PutU32(static_cast<uint32_t>(prepared.size()));
  for (const Transaction& t : prepared) t.EncodeTo(enc);
  enc->PutU32(static_cast<uint32_t>(committed.size()));
  for (const CommitRecord& r : committed) r.EncodeTo(enc);
  ro.EncodeTo(enc);
}

Result<Batch> Batch::DecodeFrom(Decoder* dec) {
  Batch b;
  TE_ASSIGN_OR_RETURN(b.partition, dec->GetU32());
  TE_ASSIGN_OR_RETURN(b.id, dec->GetI64());
  TE_ASSIGN_OR_RETURN(uint32_t nlocal, dec->GetCount());
  b.local.reserve(nlocal);
  for (uint32_t i = 0; i < nlocal; ++i) {
    TE_ASSIGN_OR_RETURN(Transaction t, Transaction::DecodeFrom(dec));
    b.local.push_back(std::move(t));
  }
  TE_ASSIGN_OR_RETURN(uint32_t nprep, dec->GetCount());
  b.prepared.reserve(nprep);
  for (uint32_t i = 0; i < nprep; ++i) {
    TE_ASSIGN_OR_RETURN(Transaction t, Transaction::DecodeFrom(dec));
    b.prepared.push_back(std::move(t));
  }
  TE_ASSIGN_OR_RETURN(uint32_t ncommit, dec->GetCount());
  b.committed.reserve(ncommit);
  for (uint32_t i = 0; i < ncommit; ++i) {
    TE_ASSIGN_OR_RETURN(CommitRecord r, CommitRecord::DecodeFrom(dec));
    b.committed.push_back(std::move(r));
  }
  TE_ASSIGN_OR_RETURN(b.ro, ReadOnlySegment::DecodeFrom(dec));
  return b;
}

crypto::Digest Batch::ComputeDigest() const {
  Encoder enc;
  EncodeTo(&enc);
  return crypto::Sha256::Hash(enc.buffer());
}

crypto::Digest ReadOnlySegment::ComputeDigest() const {
  Encoder enc;
  EncodeTo(&enc);
  return crypto::Sha256::Hash(enc.buffer());
}

Bytes BatchCertificate::SignedPayload() const {
  Encoder enc;
  enc.PutString("transedge-batch-cert");
  enc.PutU32(partition);
  enc.PutI64(batch_id);
  enc.PutRaw(batch_digest.bytes.data(), batch_digest.bytes.size());
  enc.PutRaw(merkle_root.bytes.data(), merkle_root.bytes.size());
  enc.PutRaw(ro_digest.bytes.data(), ro_digest.bytes.size());
  return enc.Take();
}

Status BatchCertificate::Verify(
    const crypto::Verifier& verifier, size_t required,
    const std::vector<crypto::NodeId>& member_ids) const {
  return signatures.VerifyQuorum(verifier, SignedPayload(), required,
                                 member_ids);
}

void BatchCertificate::EncodeTo(Encoder* enc) const {
  enc->PutU32(partition);
  enc->PutI64(batch_id);
  enc->PutRaw(batch_digest.bytes.data(), batch_digest.bytes.size());
  enc->PutRaw(merkle_root.bytes.data(), merkle_root.bytes.size());
  enc->PutRaw(ro_digest.bytes.data(), ro_digest.bytes.size());
  signatures.EncodeTo(enc);
}

Result<BatchCertificate> BatchCertificate::DecodeFrom(Decoder* dec) {
  BatchCertificate cert;
  TE_ASSIGN_OR_RETURN(cert.partition, dec->GetU32());
  TE_ASSIGN_OR_RETURN(cert.batch_id, dec->GetI64());
  TE_ASSIGN_OR_RETURN(Bytes bd, dec->GetRaw(32));
  std::copy(bd.begin(), bd.end(), cert.batch_digest.bytes.begin());
  TE_ASSIGN_OR_RETURN(Bytes mr, dec->GetRaw(32));
  std::copy(mr.begin(), mr.end(), cert.merkle_root.bytes.begin());
  TE_ASSIGN_OR_RETURN(Bytes rd, dec->GetRaw(32));
  std::copy(rd.begin(), rd.end(), cert.ro_digest.bytes.begin());
  TE_ASSIGN_OR_RETURN(cert.signatures, crypto::SignatureSet::DecodeFrom(dec));
  return cert;
}

}  // namespace transedge::storage
