#include "storage/paged/paged_backend.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace transedge::storage::paged {

Status ForEachAppliedWrite(
    const SmrLog& log, const Batch& batch, const PartitionMap& pmap,
    PartitionId self,
    const std::function<void(const Key&, const Value&)>& fn) {
  for (const Transaction& t : batch.local) {
    for (const WriteOp& w : pmap.WritesFor(t, self)) fn(w.key, w.value);
  }
  for (const CommitRecord& rec : batch.committed) {
    if (!rec.committed) continue;
    Result<const LogEntry*> prepared = log.Get(rec.prepared_in_batch);
    if (!prepared.ok()) {
      return Status::Corruption(
          "commit record for txn " + std::to_string(rec.txn_id) +
          " references truncated batch " +
          std::to_string(rec.prepared_in_batch));
    }
    const std::vector<Transaction>& txns = prepared.value()->batch.prepared;
    auto it = std::find_if(txns.begin(), txns.end(), [&](const Transaction& t) {
      return t.id == rec.txn_id;
    });
    if (it == txns.end()) {
      return Status::Corruption("commit record for txn " +
                                std::to_string(rec.txn_id) +
                                " has no prepared txn in batch " +
                                std::to_string(rec.prepared_in_batch));
    }
    for (const WriteOp& w : pmap.WritesFor(*it, self)) fn(w.key, w.value);
  }
  return Status::OK();
}

uint32_t PagedBackend::BucketOf(const Key& key, uint32_t num_buckets) {
  // FNV-1a, 64-bit.
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<uint32_t>(h % num_buckets);
}

PagedBackend::PagedBackend(const StorageTuning& tuning, SimDisk* disk)
    : tuning_(tuning),
      disk_(disk),
      pages_(disk, tuning.page_size, &stats_),
      wal_(disk, tuning.wal_group_commit, &stats_),
      pmap_(tuning.num_partitions),
      bucket_heads_(tuning.num_buckets, kNoPage),
      bucket_pages_(tuning.num_buckets) {
  assert(disk_ != nullptr);
  assert(tuning_.num_buckets > 0);
}

Bytes PagedBackend::SerializeBucket(
    const std::vector<std::pair<Key, VersionedValue>>& entries) const {
  Encoder enc;
  enc.PutU32(static_cast<uint32_t>(entries.size()));
  for (const auto& [key, vv] : entries) {
    enc.PutString(key);
    enc.PutBytes(vv.value);
    enc.PutI64(vv.version);
  }
  return enc.Take();
}

void PagedBackend::Preload(const VersionedStore& store,
                           const crypto::Digest& root) {
  store_ = store;
  pages_.InitEmpty();
  for (uint32_t b = 0; b < tuning_.num_buckets; ++b) dirty_buckets_.insert(b);
  Status st = DoCheckpoint(kNoBatch, root);
  assert(st.ok());
  (void)st;
  // The preload handoff happens before the sim starts; it must not show
  // up on the I/O meter.
  stats_ = StorageIoStats{};
}

void PagedBackend::OnDecided() {
  assert(!log_.empty());
  const LogEntry& entry = log_.back();
  Encoder enc;
  entry.batch.EncodeTo(&enc);
  entry.certificate.EncodeTo(&enc);
  uint64_t offset = wal_.Append(static_cast<uint64_t>(entry.batch.id),
                                enc.buffer());
  wal_offset_of_[entry.batch.id] = offset;
}

void PagedBackend::OnApplied(BatchId last_applied,
                             const crypto::Digest& root) {
  last_applied_ = last_applied;
  last_applied_root_ = root;
  Result<const LogEntry*> entry = log_.Get(last_applied);
  assert(entry.ok());
  Status st = ForEachAppliedWrite(
      log_, entry.value()->batch, pmap_, tuning_.partition,
      [&](const Key& key, const Value& value) {
        (void)value;
        dirty_buckets_.insert(BucketOf(key, tuning_.num_buckets));
      });
  assert(st.ok());
  (void)st;
  if (++applies_since_checkpoint_ >= tuning_.checkpoint_interval) {
    Status cp = DoCheckpoint(last_applied, root);
    assert(cp.ok());
    (void)cp;
  }
}

void PagedBackend::TruncateHistory(BatchId horizon) {
  store_.TruncateHistory(horizon);
  log_.TruncateTo(horizon);
  // WAL offsets below the retained range only matter until the next
  // checkpoint publishes the new wal_start_offset.
  wal_offset_of_.erase(wal_offset_of_.begin(),
                       wal_offset_of_.lower_bound(log_.FirstBatchId()));
}

Status PagedBackend::Checkpoint() {
  if (last_applied_ == checkpoint_applied_ && dirty_buckets_.empty()) {
    return Status::OK();
  }
  return DoCheckpoint(last_applied_, last_applied_root_);
}

Status PagedBackend::DoCheckpoint(BatchId last_applied,
                                  const crypto::Digest& root) {
  // One store pass collects the latest version of every key in a dirty
  // bucket (sorted key order — the format is canonical across replicas).
  std::map<uint32_t, std::vector<std::pair<Key, VersionedValue>>> rewrite;
  for (uint32_t b : dirty_buckets_) rewrite[b];
  store_.ForEachLatest([&](const Key& key, const Value& value,
                           BatchId version) {
    auto it = rewrite.find(BucketOf(key, tuning_.num_buckets));
    if (it == rewrite.end()) return;
    it->second.emplace_back(key, VersionedValue{value, version});
  });

  // Copy-on-write: new chains go to pages the previous checkpoint does
  // not reference; the old pages are freed only after the meta flip is
  // durable, so a crash anywhere in between leaves the old checkpoint
  // fully intact.
  std::vector<uint32_t> old_pages;
  for (auto& [b, entries] : rewrite) {
    old_pages.insert(old_pages.end(), bucket_pages_[b].begin(),
                     bucket_pages_[b].end());
    if (entries.empty()) {
      bucket_heads_[b] = kNoPage;
      bucket_pages_[b].clear();
      continue;
    }
    Bytes payload = SerializeBucket(entries);
    std::vector<uint32_t> chain;
    TE_ASSIGN_OR_RETURN(
        bucket_heads_[b],
        pages_.WriteChain(static_cast<uint64_t>(last_applied + 1), payload,
                          &chain));
    bucket_pages_[b] = std::move(chain);
  }
  pages_.Sync();  // Data barrier: chains are durable before the flip.

  MetaSlot meta;
  meta.generation = generation_ + 1;
  meta.page_size = tuning_.page_size;
  meta.num_buckets = tuning_.num_buckets;
  meta.num_pages = pages_.num_pages();
  meta.last_applied = last_applied;
  meta.root = root;
  meta.log_start = log_.FirstBatchId();
  auto first_live = wal_offset_of_.lower_bound(meta.log_start);
  meta.wal_start_offset =
      first_live != wal_offset_of_.end() ? first_live->second
                                         : wal_.end_offset();
  meta.bucket_heads = bucket_heads_;
  TE_RETURN_IF_ERROR(pages_.WriteMeta(meta));
  pages_.Sync();  // Meta barrier: the new checkpoint is now the truth.

  pages_.FreePages(old_pages);
  ++generation_;
  checkpoint_applied_ = last_applied;
  checkpoint_root_ = root;
  dirty_buckets_.clear();
  applies_since_checkpoint_ = 0;
  ++stats_.checkpoints;
  return Status::OK();
}

Result<RecoveredState> PagedBackend::Recover(const RecoverOptions& opts) {
  if (generation_ > 0 || !log_.empty() || store_.key_count() > 0) {
    return Status::FailedPrecondition(
        "Recover on a backend that already holds state");
  }
  TE_ASSIGN_OR_RETURN(MetaSlot meta, pages_.ReadBestMeta());
  if (meta.page_size != tuning_.page_size ||
      meta.num_buckets != tuning_.num_buckets) {
    return Status::Corruption(
        "storage geometry mismatch: disk has page_size " +
        std::to_string(meta.page_size) + " / " +
        std::to_string(meta.num_buckets) + " buckets");
  }
  if (meta.bucket_heads.size() != tuning_.num_buckets) {
    return Status::Corruption("meta bucket_heads count mismatch");
  }

  // Load the checkpointed store, bucket by bucket.
  pages_.SetFrontier(meta.num_pages);
  bucket_heads_ = meta.bucket_heads;
  for (uint32_t b = 0; b < tuning_.num_buckets; ++b) {
    bucket_pages_[b].clear();
    if (bucket_heads_[b] == kNoPage) continue;
    TE_ASSIGN_OR_RETURN(Bytes payload,
                        pages_.ReadChain(bucket_heads_[b], &bucket_pages_[b]));
    for (uint32_t p : bucket_pages_[b]) pages_.MarkUsed(p);
    Decoder dec(payload);
    TE_ASSIGN_OR_RETURN(uint32_t n, dec.GetCount());
    for (uint32_t i = 0; i < n; ++i) {
      TE_ASSIGN_OR_RETURN(Key key, dec.GetString());
      TE_ASSIGN_OR_RETURN(Value value, dec.GetBytes());
      TE_ASSIGN_OR_RETURN(BatchId version, dec.GetI64());
      store_.Put(key, std::move(value), version);
    }
    if (!dec.exhausted()) {
      return Status::Corruption("trailing bytes in bucket " +
                                std::to_string(b));
    }
  }
  pages_.DeriveFreeList();

  TE_RETURN_IF_ERROR(log_.SetBase(meta.log_start));
  generation_ = meta.generation;
  checkpoint_applied_ = meta.last_applied;
  checkpoint_root_ = meta.root;
  last_applied_ = meta.last_applied;
  last_applied_root_ = meta.root;

  // Replay the WAL: every surviving record rebuilds the log; records
  // beyond the checkpoint also re-apply their writes, re-derived from
  // the log itself (prepared segments named by the commit records).
  TE_ASSIGN_OR_RETURN(std::vector<WalFile::ReplayRecord> records,
                      wal_.Replay(meta.wal_start_offset));
  for (WalFile::ReplayRecord& rec : records) {
    Decoder dec(rec.payload);
    TE_ASSIGN_OR_RETURN(Batch batch, Batch::DecodeFrom(&dec));
    TE_ASSIGN_OR_RETURN(BatchCertificate cert,
                        BatchCertificate::DecodeFrom(&dec));
    if (!dec.exhausted()) {
      return Status::Corruption("trailing bytes in WAL record for batch " +
                                std::to_string(batch.id));
    }
    if (static_cast<uint64_t>(batch.id) != rec.lsn) {
      return Status::Corruption("WAL record lsn does not match its batch");
    }
    BatchId expected = log_.LastBatchId() + 1;
    if (batch.id != expected) {
      return Status::Corruption("WAL not contiguous: got batch " +
                                std::to_string(batch.id) + ", expected " +
                                std::to_string(expected));
    }
    if (opts.verifier != nullptr) {
      TE_RETURN_IF_ERROR(cert.Verify(*opts.verifier, opts.required_signatures,
                                     opts.member_ids));
    }
    crypto::Digest batch_root = cert.merkle_root;
    wal_offset_of_[batch.id] = rec.start_offset;
    TE_RETURN_IF_ERROR(log_.Append({std::move(batch), std::move(cert)}));
    const Batch& appended = log_.back().batch;
    if (appended.id > meta.last_applied) {
      TE_RETURN_IF_ERROR(ForEachAppliedWrite(
          log_, appended, pmap_, tuning_.partition,
          [&](const Key& key, const Value& value) {
            store_.Put(key, value, appended.id);
            dirty_buckets_.insert(BucketOf(key, tuning_.num_buckets));
          }));
      ++applies_since_checkpoint_;
      last_applied_ = appended.id;
      last_applied_root_ = batch_root;
    }
  }

  RecoveredState out;
  out.checkpoint_applied = meta.last_applied;
  out.checkpoint_root = meta.root;
  return out;
}

}  // namespace transedge::storage::paged
