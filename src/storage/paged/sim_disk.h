#ifndef TRANSEDGE_STORAGE_PAGED_SIM_DISK_H_
#define TRANSEDGE_STORAGE_PAGED_SIM_DISK_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"

namespace transedge::storage::paged {

/// File ids of a replica's disk. Fixed small integers keep the disk a
/// trivially cloneable value type.
inline constexpr int kPagesFileId = 0;
inline constexpr int kWalFileId = 1;

/// A deterministic disk model: a set of sparse byte files, each with a
/// *durable* image and an ordered cache of not-yet-synced writes. This is
/// a pure data structure — it never touches clocks, randomness, or host
/// I/O; simulated I/O *time* is charged by the node from the backend's
/// `StorageIoStats` deltas, which keeps the sim layering intact and
/// recovery scenarios replica-deterministic.
///
/// Fault injection: `Crash(k, mode)` discards the write cache like a
/// power loss, optionally surviving a prefix of the cached writes (the
/// OS flushed some of them on its own) and optionally tearing the write
/// at the boundary in half (a partial sector write). `CorruptByte` flips
/// a durable byte for CRC-rejection tests.
class SimDisk {
 public:
  enum class CrashMode {
    kNone,    // No unsynced write survives.
    kPrefix,  // Cached writes with op index < keep_ops survive.
    kTorn,    // kPrefix, plus the first half of op keep_ops's bytes.
  };

  SimDisk() = default;

  /// Buffers a write (visible to reads immediately, durable after Sync).
  /// Every write gets the next global op index, shared across files, so
  /// a crash point is a single number even when the WAL and the page
  /// file interleave.
  void WriteAt(int file, uint64_t offset, const uint8_t* data, size_t len);
  void WriteAt(int file, uint64_t offset, const Bytes& data) {
    WriteAt(file, offset, data.data(), data.size());
  }

  /// Makes every cached write of `file` durable (fsync).
  void Sync(int file);
  void SyncAll();

  /// Reads `len` bytes of the *visible* image (durable + cached); bytes
  /// never written read as zero (sparse-file semantics).
  Bytes ReadAt(int file, uint64_t offset, size_t len) const;

  /// Visible / durable end-of-file offsets.
  uint64_t Size(int file) const;
  uint64_t DurableSize(int file) const;

  /// Total write ops ever buffered; the crash-point sweep iterates
  /// `keep_ops` over [0, op_count()].
  uint64_t op_count() const { return next_op_; }
  size_t unsynced_ops() const { return cache_.size(); }

  /// Power loss: cached writes are discarded except the survivors `mode`
  /// selects (see CrashMode). The visible image collapses onto the new
  /// durable image. Deterministic for a given (keep_ops, mode).
  void Crash(uint64_t keep_ops, CrashMode mode);

  /// Flips one durable byte (and the visible copy) — media corruption.
  void CorruptByte(int file, uint64_t offset);

  /// Deep copy, including the unsynced cache — the sweep crashes clones
  /// so one recorded run yields every crash point.
  SimDisk Clone() const { return *this; }

 private:
  struct PendingWrite {
    uint64_t op = 0;
    int file = 0;
    uint64_t offset = 0;
    Bytes data;
  };
  struct File {
    Bytes durable;
    Bytes visible;
  };

  static void Overlay(Bytes* image, uint64_t offset, const uint8_t* data,
                      size_t len);

  std::map<int, File> files_;
  std::vector<PendingWrite> cache_;  // Ordered by op.
  uint64_t next_op_ = 0;
};

}  // namespace transedge::storage::paged

#endif  // TRANSEDGE_STORAGE_PAGED_SIM_DISK_H_
