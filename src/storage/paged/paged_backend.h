#ifndef TRANSEDGE_STORAGE_PAGED_PAGED_BACKEND_H_
#define TRANSEDGE_STORAGE_PAGED_PAGED_BACKEND_H_

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "storage/paged/page_file.h"
#include "storage/paged/sim_disk.h"
#include "storage/paged/wal_file.h"
#include "storage/partition_map.h"
#include "storage/smr_log.h"
#include "storage/storage_backend.h"

namespace transedge::storage::paged {

/// Iterates every write the replica applied for `batch`, in apply order:
/// local transactions first, then committed distributed transactions
/// resolved through `log` (the commit record names the batch whose
/// prepared segment holds the transaction). This is the storage-layer
/// mirror of the node's apply loop — the backend re-derives write sets
/// from its own log so checkpoint dirtying and recovery replay need no
/// upcall. Fails when a commit record references a truncated batch.
Status ForEachAppliedWrite(
    const SmrLog& log, const Batch& batch, const PartitionMap& pmap,
    PartitionId self,
    const std::function<void(const Key&, const Value&)>& fn);

/// Durable engine: WAL on decide, bucket-paged copy-on-write checkpoint
/// on apply cadence, ping-pong meta flip, recovery = best meta + chain
/// loads + WAL replay (entries beyond the checkpoint re-apply their
/// writes). See ARCHITECTURE.md §Storage backends for the format.
class PagedBackend : public StorageBackend {
 public:
  PagedBackend(const StorageTuning& tuning, SimDisk* disk);

  StorageKind kind() const override { return StorageKind::kPaged; }
  VersionedStore& store() override { return store_; }
  const VersionedStore& store() const override { return store_; }
  SmrLog& log() override { return log_; }
  const SmrLog& log() const override { return log_; }

  /// Persists the preloaded state as checkpoint generation 0 (the
  /// pre-sim handoff, so it is excluded from the I/O meter: stats are
  /// zeroed afterwards).
  void Preload(const VersionedStore& store,
               const crypto::Digest& root) override;

  void OnDecided() override;
  void OnApplied(BatchId last_applied, const crypto::Digest& root) override;
  void TruncateHistory(BatchId horizon) override;
  Result<RecoveredState> Recover(const RecoverOptions& opts) override;
  const StorageIoStats& io_stats() const override { return stats_; }

  /// Bucket of a key: FNV-1a over the key bytes mod num_buckets. Part of
  /// the on-disk contract (recovery loads buckets wholesale, so the
  /// mapping itself never needs to be stored).
  static uint32_t BucketOf(const Key& key, uint32_t num_buckets);

  /// Forces a checkpoint now (tests and orderly shutdown).
  Status Checkpoint();

  uint64_t checkpoint_generation() const { return generation_; }

 private:
  Status DoCheckpoint(BatchId last_applied, const crypto::Digest& root);
  Bytes SerializeBucket(
      const std::vector<std::pair<Key, VersionedValue>>& entries) const;

  StorageTuning tuning_;
  SimDisk* disk_;
  StorageIoStats stats_;
  PageFile pages_;
  WalFile wal_;
  VersionedStore store_;
  SmrLog log_;
  PartitionMap pmap_;

  // Mirror of the durable checkpoint, updated on every meta flip.
  uint64_t generation_ = 0;
  BatchId checkpoint_applied_ = kNoBatch;
  crypto::Digest checkpoint_root_;
  std::vector<uint32_t> bucket_heads_;
  std::vector<std::vector<uint32_t>> bucket_pages_;

  std::set<uint32_t> dirty_buckets_;
  std::map<BatchId, uint64_t> wal_offset_of_;  // lsn -> record start.
  uint64_t applies_since_checkpoint_ = 0;
  crypto::Digest last_applied_root_;
  BatchId last_applied_ = kNoBatch;
};

}  // namespace transedge::storage::paged

#endif  // TRANSEDGE_STORAGE_PAGED_PAGED_BACKEND_H_
