#ifndef TRANSEDGE_STORAGE_PAGED_FORMAT_H_
#define TRANSEDGE_STORAGE_PAGED_FORMAT_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "crypto/sha256.h"
#include "txn/types.h"

namespace transedge::storage::paged {

/// On-disk format of the paged backend, version 1.
///
/// Page file layout (`kPagesFileId`):
///   page 0, page 1   ping-pong MetaSlot copies (slot = generation % 2)
///   page 2..         data pages, each a PageHeader + payload; bucket
///                    payloads chain across pages via `next_page`
///
/// WAL layout (`kWalFileId`): a flat sequence of
/// `WalRecordHeader + payload` records; `MetaSlot::wal_start_offset`
/// logically truncates the prefix superseded by the checkpoint.
///
/// Every struct here is covered by tools/check's page-format parity
/// rule: each field must appear in both EncodeTo and DecodeFrom so the
/// format cannot silently drift.

inline constexpr uint32_t kPageMagic = 0x47504554;  // "TEPG"
inline constexpr uint32_t kMetaMagic = 0x544D4554;  // "TEMT"
inline constexpr uint32_t kWalMagic = 0x4C574554;   // "TEWL"
inline constexpr uint16_t kFormatVersion = 1;

/// Page id 0 holds meta, so 0 doubles as the null chain terminator.
inline constexpr uint32_t kNoPage = 0;
inline constexpr uint32_t kFirstDataPage = 2;

inline constexpr size_t kPageHeaderSize = 32;
inline constexpr size_t kWalRecordHeaderSize = 24;

/// CRC-32 (reflected, polynomial 0xEDB88320). `seed` chains incremental
/// updates: Crc32(b, Crc32(a)) == Crc32(a+b).
uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed = 0);
inline uint32_t Crc32(const Bytes& b, uint32_t seed = 0) {
  return Crc32(b.data(), b.size(), seed);
}

/// Header of every data page. `crc` covers the serialized header with
/// the crc field zeroed, chained over the payload bytes.
struct PageHeader {
  uint32_t magic = kPageMagic;
  uint16_t version = kFormatVersion;
  uint32_t page_id = kNoPage;
  uint64_t lsn = 0;  // Batch id (+1) that wrote the page, for debugging.
  uint32_t payload_len = 0;
  uint32_t next_page = kNoPage;  // Chain link; kNoPage terminates.
  uint32_t crc = 0;

  void EncodeTo(Encoder* enc) const;
  static Result<PageHeader> DecodeFrom(Decoder* dec);
  bool operator==(const PageHeader&) const = default;
};

/// Checkpoint manifest, written to page `generation % 2` after every
/// checkpoint (ping-pong: a torn meta write leaves the previous slot
/// intact; recovery picks the valid slot with the highest generation).
/// `crc` covers the serialized slot with the crc field zeroed.
struct MetaSlot {
  uint32_t magic = kMetaMagic;
  uint16_t version = kFormatVersion;
  uint64_t generation = 0;
  uint32_t page_size = 0;
  uint32_t num_buckets = 0;
  uint32_t num_pages = 0;  // Allocation frontier; free pages re-derived.
  BatchId last_applied = kNoBatch;  // Batch the checkpoint covers.
  crypto::Digest root;              // Merkle root at last_applied.
  BatchId log_start = 0;            // Snapshot horizon: first retained id.
  uint64_t wal_start_offset = 0;    // WAL bytes below this are dead.
  std::vector<uint32_t> bucket_heads;  // Chain head per bucket; kNoPage=empty.
  uint32_t crc = 0;

  void EncodeTo(Encoder* enc) const;
  static Result<MetaSlot> DecodeFrom(Decoder* dec);
  bool operator==(const MetaSlot&) const = default;
};

enum class WalRecordType : uint8_t {
  kLogEntry = 1,  // Payload: serialized LogEntry (batch + certificate).
};

/// Header of every WAL record. `crc` covers the serialized header with
/// the crc field zeroed, chained over the payload bytes — a torn append
/// fails the crc and replay stops at the record before it.
struct WalRecordHeader {
  uint32_t magic = kWalMagic;
  uint8_t type = 0;
  uint64_t lsn = 0;  // Batch id of the entry.
  uint32_t payload_len = 0;
  uint32_t crc = 0;

  void EncodeTo(Encoder* enc) const;
  static Result<WalRecordHeader> DecodeFrom(Decoder* dec);
  bool operator==(const WalRecordHeader&) const = default;
};

}  // namespace transedge::storage::paged

#endif  // TRANSEDGE_STORAGE_PAGED_FORMAT_H_
