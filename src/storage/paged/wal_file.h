#ifndef TRANSEDGE_STORAGE_PAGED_WAL_FILE_H_
#define TRANSEDGE_STORAGE_PAGED_WAL_FILE_H_

#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/paged/format.h"
#include "storage/paged/sim_disk.h"
#include "storage/storage_backend.h"

namespace transedge::storage::paged {

/// Append-only write-ahead log with group commit and torn-write
/// detection. Records are `WalRecordHeader + payload`; the file is never
/// physically truncated — `MetaSlot::wal_start_offset` retires the
/// prefix a checkpoint superseded.
class WalFile {
 public:
  WalFile(SimDisk* disk, uint32_t group_commit, StorageIoStats* stats);

  /// One record decoded by Replay.
  struct ReplayRecord {
    uint64_t lsn = 0;
    Bytes payload;
    uint64_t start_offset = 0;
  };

  /// Appends one kLogEntry record and syncs every `group_commit`
  /// appends. Returns the record's start offset.
  uint64_t Append(uint64_t lsn, const Bytes& payload);

  /// Forces the group-commit barrier now.
  void Sync();

  /// Scans records from `from` to the end of the durable image. A
  /// corrupt record at the tail (torn final append) ends the scan
  /// benignly; a corrupt record *followed by a valid one* is a hole in
  /// the middle of the log and fails with Corruption ("WAL gap").
  /// Positions the append offset at the end of the last valid record.
  Result<std::vector<ReplayRecord>> Replay(uint64_t from);

  uint64_t end_offset() const { return end_; }

 private:
  SimDisk* disk_;
  uint32_t group_commit_;
  StorageIoStats* stats_;
  uint64_t end_ = 0;
  uint32_t pending_appends_ = 0;
};

}  // namespace transedge::storage::paged

#endif  // TRANSEDGE_STORAGE_PAGED_WAL_FILE_H_
