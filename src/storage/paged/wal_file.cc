#include "storage/paged/wal_file.h"

#include <algorithm>

namespace transedge::storage::paged {

namespace {

uint32_t RecordCrc(WalRecordHeader header, const uint8_t* payload,
                   size_t len) {
  header.crc = 0;
  Encoder enc;
  header.EncodeTo(&enc);
  return Crc32(payload, len, Crc32(enc.buffer()));
}

/// Decodes the record starting at `off` inside `buf`. Returns false when
/// the bytes there do not form a complete, CRC-valid record.
bool DecodeRecordAt(const Bytes& buf, size_t off, WalRecordHeader* header,
                    size_t* payload_off) {
  if (off + kWalRecordHeaderSize > buf.size()) return false;
  Decoder dec(buf.data() + off, kWalRecordHeaderSize);
  Result<WalRecordHeader> h = WalRecordHeader::DecodeFrom(&dec);
  if (!h.ok()) return false;
  if (h.value().magic != kWalMagic ||
      h.value().type != static_cast<uint8_t>(WalRecordType::kLogEntry)) {
    return false;
  }
  size_t pstart = off + kWalRecordHeaderSize;
  if (pstart + h.value().payload_len > buf.size()) return false;
  if (h.value().crc !=
      RecordCrc(h.value(), buf.data() + pstart, h.value().payload_len)) {
    return false;
  }
  *header = h.value();
  *payload_off = pstart;
  return true;
}

/// True when any complete valid record starts in `buf` at or after
/// `from` — distinguishes a benign torn tail from a mid-log hole.
bool AnyValidRecordAfter(const Bytes& buf, size_t from) {
  if (buf.size() < kWalRecordHeaderSize) return false;
  for (size_t p = from; p + kWalRecordHeaderSize <= buf.size(); ++p) {
    WalRecordHeader h;
    size_t payload_off = 0;
    if (DecodeRecordAt(buf, p, &h, &payload_off)) return true;
  }
  return false;
}

}  // namespace

WalFile::WalFile(SimDisk* disk, uint32_t group_commit, StorageIoStats* stats)
    : disk_(disk),
      group_commit_(group_commit == 0 ? 1 : group_commit),
      stats_(stats) {}

uint64_t WalFile::Append(uint64_t lsn, const Bytes& payload) {
  WalRecordHeader h;
  h.type = static_cast<uint8_t>(WalRecordType::kLogEntry);
  h.lsn = lsn;
  h.payload_len = static_cast<uint32_t>(payload.size());
  h.crc = RecordCrc(h, payload.data(), payload.size());
  Encoder enc;
  h.EncodeTo(&enc);
  Bytes buf = enc.Take();
  buf.insert(buf.end(), payload.begin(), payload.end());
  uint64_t start = end_;
  // One disk op per record: header and payload tear together.
  disk_->WriteAt(kWalFileId, start, buf);
  end_ += buf.size();
  ++stats_->wal_appends;
  stats_->wal_bytes += buf.size();
  if (++pending_appends_ >= group_commit_) Sync();
  return start;
}

void WalFile::Sync() {
  disk_->Sync(kWalFileId);
  pending_appends_ = 0;
  ++stats_->wal_syncs;
}

Result<std::vector<WalFile::ReplayRecord>> WalFile::Replay(uint64_t from) {
  std::vector<ReplayRecord> records;
  uint64_t size = disk_->Size(kWalFileId);
  end_ = from;
  pending_appends_ = 0;
  if (from >= size) return records;
  // Pull the whole tail once; the scan is in-memory from here.
  Bytes buf = disk_->ReadAt(kWalFileId, from, size - from);
  size_t off = 0;
  while (off + kWalRecordHeaderSize <= buf.size()) {
    WalRecordHeader h;
    size_t payload_off = 0;
    if (!DecodeRecordAt(buf, off, &h, &payload_off)) {
      if (AnyValidRecordAfter(buf, off + 1)) {
        return Status::Corruption(
            "WAL gap: corrupt record at offset " +
            std::to_string(from + off) +
            " is followed by a valid one (hole in the log)");
      }
      break;  // Benign torn tail: the final append did not survive.
    }
    ReplayRecord rec;
    rec.lsn = h.lsn;
    rec.payload.assign(buf.begin() + static_cast<ptrdiff_t>(payload_off),
                       buf.begin() + static_cast<ptrdiff_t>(payload_off) +
                           h.payload_len);
    rec.start_offset = from + off;
    records.push_back(std::move(rec));
    off = payload_off + h.payload_len;
    end_ = from + off;
    ++stats_->wal_records_replayed;
  }
  return records;
}

}  // namespace transedge::storage::paged
