#include "storage/paged/sim_disk.h"

#include <algorithm>

namespace transedge::storage::paged {

void SimDisk::Overlay(Bytes* image, uint64_t offset, const uint8_t* data,
                      size_t len) {
  if (len == 0) return;
  size_t end = static_cast<size_t>(offset) + len;
  if (image->size() < end) image->resize(end, 0);
  std::copy(data, data + len, image->begin() + static_cast<size_t>(offset));
}

void SimDisk::WriteAt(int file, uint64_t offset, const uint8_t* data,
                      size_t len) {
  File& f = files_[file];
  Overlay(&f.visible, offset, data, len);
  PendingWrite w;
  w.op = next_op_++;
  w.file = file;
  w.offset = offset;
  w.data.assign(data, data + len);
  cache_.push_back(std::move(w));
}

void SimDisk::Sync(int file) {
  auto keep = cache_.begin();
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->file == file) {
      Overlay(&files_[file].durable, it->offset, it->data.data(),
              it->data.size());
    } else {
      if (keep != it) *keep = std::move(*it);
      ++keep;
    }
  }
  cache_.erase(keep, cache_.end());
}

void SimDisk::SyncAll() {
  for (const PendingWrite& w : cache_) {
    Overlay(&files_[w.file].durable, w.offset, w.data.data(), w.data.size());
  }
  cache_.clear();
}

Bytes SimDisk::ReadAt(int file, uint64_t offset, size_t len) const {
  Bytes out(len, 0);
  auto it = files_.find(file);
  if (it == files_.end()) return out;
  const Bytes& img = it->second.visible;
  if (offset < img.size()) {
    size_t n = std::min<size_t>(len, img.size() - static_cast<size_t>(offset));
    std::copy(img.begin() + static_cast<size_t>(offset),
              img.begin() + static_cast<size_t>(offset) + n, out.begin());
  }
  return out;
}

uint64_t SimDisk::Size(int file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.visible.size();
}

uint64_t SimDisk::DurableSize(int file) const {
  auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.durable.size();
}

void SimDisk::Crash(uint64_t keep_ops, CrashMode mode) {
  for (const PendingWrite& w : cache_) {
    size_t survive = 0;
    if (mode != CrashMode::kNone) {
      if (w.op < keep_ops) {
        survive = w.data.size();
      } else if (w.op == keep_ops && mode == CrashMode::kTorn) {
        survive = w.data.size() / 2;
      }
    }
    if (survive > 0) {
      Overlay(&files_[w.file].durable, w.offset, w.data.data(), survive);
    }
  }
  cache_.clear();
  for (auto& [id, f] : files_) f.visible = f.durable;
}

void SimDisk::CorruptByte(int file, uint64_t offset) {
  auto it = files_.find(file);
  if (it == files_.end()) return;
  File& f = it->second;
  if (offset < f.durable.size()) {
    f.durable[static_cast<size_t>(offset)] ^= 0xFF;
  }
  if (offset < f.visible.size()) {
    f.visible[static_cast<size_t>(offset)] ^= 0xFF;
  }
}

}  // namespace transedge::storage::paged
