#include "storage/paged/format.h"

#include <algorithm>
#include <array>

namespace transedge::storage::paged {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = kTable[(c ^ data[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void PageHeader::EncodeTo(Encoder* enc) const {
  enc->PutU32(magic);
  enc->PutU16(version);
  enc->PutU16(0);  // Reserved; keeps the header at kPageHeaderSize.
  enc->PutU32(page_id);
  enc->PutU64(lsn);
  enc->PutU32(payload_len);
  enc->PutU32(next_page);
  enc->PutU32(crc);
}

Result<PageHeader> PageHeader::DecodeFrom(Decoder* dec) {
  PageHeader h;
  TE_ASSIGN_OR_RETURN(h.magic, dec->GetU32());
  TE_ASSIGN_OR_RETURN(h.version, dec->GetU16());
  TE_ASSIGN_OR_RETURN(uint16_t reserved, dec->GetU16());
  (void)reserved;
  TE_ASSIGN_OR_RETURN(h.page_id, dec->GetU32());
  TE_ASSIGN_OR_RETURN(h.lsn, dec->GetU64());
  TE_ASSIGN_OR_RETURN(h.payload_len, dec->GetU32());
  TE_ASSIGN_OR_RETURN(h.next_page, dec->GetU32());
  TE_ASSIGN_OR_RETURN(h.crc, dec->GetU32());
  return h;
}

void MetaSlot::EncodeTo(Encoder* enc) const {
  enc->PutU32(magic);
  enc->PutU16(version);
  enc->PutU64(generation);
  enc->PutU32(page_size);
  enc->PutU32(num_buckets);
  enc->PutU32(num_pages);
  enc->PutI64(last_applied);
  enc->PutRaw(root.bytes.data(), root.bytes.size());
  enc->PutI64(log_start);
  enc->PutU64(wal_start_offset);
  enc->PutU32(static_cast<uint32_t>(bucket_heads.size()));
  for (uint32_t head : bucket_heads) enc->PutU32(head);
  enc->PutU32(crc);
}

Result<MetaSlot> MetaSlot::DecodeFrom(Decoder* dec) {
  MetaSlot m;
  TE_ASSIGN_OR_RETURN(m.magic, dec->GetU32());
  TE_ASSIGN_OR_RETURN(m.version, dec->GetU16());
  TE_ASSIGN_OR_RETURN(m.generation, dec->GetU64());
  TE_ASSIGN_OR_RETURN(m.page_size, dec->GetU32());
  TE_ASSIGN_OR_RETURN(m.num_buckets, dec->GetU32());
  TE_ASSIGN_OR_RETURN(m.num_pages, dec->GetU32());
  TE_ASSIGN_OR_RETURN(m.last_applied, dec->GetI64());
  TE_ASSIGN_OR_RETURN(Bytes raw, dec->GetRaw(32));
  std::copy(raw.begin(), raw.end(), m.root.bytes.begin());
  TE_ASSIGN_OR_RETURN(m.log_start, dec->GetI64());
  TE_ASSIGN_OR_RETURN(m.wal_start_offset, dec->GetU64());
  TE_ASSIGN_OR_RETURN(uint32_t n, dec->GetCount());
  m.bucket_heads.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TE_ASSIGN_OR_RETURN(uint32_t head, dec->GetU32());
    m.bucket_heads.push_back(head);
  }
  TE_ASSIGN_OR_RETURN(m.crc, dec->GetU32());
  return m;
}

void WalRecordHeader::EncodeTo(Encoder* enc) const {
  enc->PutU32(magic);
  enc->PutU8(type);
  enc->PutU8(0);   // Reserved.
  enc->PutU16(0);  // Reserved; keeps the header at kWalRecordHeaderSize.
  enc->PutU64(lsn);
  enc->PutU32(payload_len);
  enc->PutU32(crc);
}

Result<WalRecordHeader> WalRecordHeader::DecodeFrom(Decoder* dec) {
  WalRecordHeader h;
  TE_ASSIGN_OR_RETURN(h.magic, dec->GetU32());
  TE_ASSIGN_OR_RETURN(h.type, dec->GetU8());
  TE_ASSIGN_OR_RETURN(uint8_t reserved8, dec->GetU8());
  (void)reserved8;
  TE_ASSIGN_OR_RETURN(uint16_t reserved16, dec->GetU16());
  (void)reserved16;
  TE_ASSIGN_OR_RETURN(h.lsn, dec->GetU64());
  TE_ASSIGN_OR_RETURN(h.payload_len, dec->GetU32());
  TE_ASSIGN_OR_RETURN(h.crc, dec->GetU32());
  return h;
}

}  // namespace transedge::storage::paged
