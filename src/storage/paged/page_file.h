#ifndef TRANSEDGE_STORAGE_PAGED_PAGE_FILE_H_
#define TRANSEDGE_STORAGE_PAGED_PAGE_FILE_H_

#include <set>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "storage/paged/format.h"
#include "storage/paged/sim_disk.h"
#include "storage/storage_backend.h"

namespace transedge::storage::paged {

/// Page-granular access to the pages file: allocation (lowest free page
/// first, so layouts are replica-deterministic), CRC'd page reads and
/// writes, payload chains spanning pages, and the ping-pong meta slots.
/// Pure data-structure I/O against the SimDisk; the owning backend
/// aggregates `stats` deltas into simulated time at the node layer.
class PageFile {
 public:
  PageFile(SimDisk* disk, uint32_t page_size, StorageIoStats* stats);

  /// Fresh file: no data pages yet, allocation starts at kFirstDataPage.
  void InitEmpty();

  /// After ReadBestMeta: restore the allocation frontier; pages visited
  /// by chain reads are registered via MarkUsed, then DeriveFreeList
  /// computes the free set as frontier-range minus used.
  void SetFrontier(uint32_t num_pages);
  void MarkUsed(uint32_t page_id);
  void DeriveFreeList();

  /// Writes `payload` as a chain of pages (each PageHeader + chunk),
  /// allocating lowest-free-first. Returns the head page id and fills
  /// `pages_out` with every page of the chain, in order. `payload` must
  /// be non-empty.
  Result<uint32_t> WriteChain(uint64_t lsn, const Bytes& payload,
                              std::vector<uint32_t>* pages_out);

  /// Follows a chain from `head`, validating every page's CRC, returning
  /// the concatenated payload; fills `pages_out` with the pages visited.
  Result<Bytes> ReadChain(uint32_t head, std::vector<uint32_t>* pages_out);

  /// Returns the pages of a chain to the free list.
  void FreePages(const std::vector<uint32_t>& pages);

  /// Writes `meta` (crc computed here) into slot `generation % 2`. The
  /// caller is responsible for the surrounding Sync barriers.
  Status WriteMeta(MetaSlot meta);

  /// Decodes both meta slots and returns the valid one with the highest
  /// generation; NotFound when neither is valid (fresh or wrecked disk).
  Result<MetaSlot> ReadBestMeta() const;

  /// fsync of the pages file (checkpoint ordering barrier).
  void Sync();

  uint32_t num_pages() const { return frontier_; }
  size_t free_count() const { return free_.size(); }

 private:
  uint32_t AllocatePage();
  Result<Bytes> ReadPage(uint32_t page_id, PageHeader* header_out);
  void WritePage(const PageHeader& header, const uint8_t* payload);

  SimDisk* disk_;
  uint32_t page_size_;
  StorageIoStats* stats_;
  uint32_t frontier_ = kFirstDataPage;  // Pages [kFirstDataPage, frontier_)
                                        // have been allocated at least once.
  std::set<uint32_t> free_;             // Allocate *begin() first.
  std::set<uint32_t> used_;             // Recovery scratch for DeriveFreeList.
};

}  // namespace transedge::storage::paged

#endif  // TRANSEDGE_STORAGE_PAGED_PAGE_FILE_H_
