#include "storage/paged/page_file.h"

#include <algorithm>
#include <cassert>

namespace transedge::storage::paged {

namespace {

/// CRC of a header struct (crc field zeroed) chained over the payload —
/// the one formula every checksummed structure in the format uses.
template <typename H>
uint32_t HeaderPayloadCrc(H header, const uint8_t* payload, size_t len) {
  header.crc = 0;
  Encoder enc;
  header.EncodeTo(&enc);
  return Crc32(payload, len, Crc32(enc.buffer()));
}

}  // namespace

PageFile::PageFile(SimDisk* disk, uint32_t page_size, StorageIoStats* stats)
    : disk_(disk), page_size_(page_size), stats_(stats) {
  assert(page_size_ > kPageHeaderSize);
}

void PageFile::InitEmpty() {
  frontier_ = kFirstDataPage;
  free_.clear();
  used_.clear();
}

void PageFile::SetFrontier(uint32_t num_pages) {
  frontier_ = std::max(num_pages, kFirstDataPage);
  free_.clear();
  used_.clear();
}

void PageFile::MarkUsed(uint32_t page_id) { used_.insert(page_id); }

void PageFile::DeriveFreeList() {
  free_.clear();
  for (uint32_t p = kFirstDataPage; p < frontier_; ++p) {
    if (used_.count(p) == 0) free_.insert(p);
  }
  used_.clear();
}

uint32_t PageFile::AllocatePage() {
  if (!free_.empty()) {
    uint32_t p = *free_.begin();
    free_.erase(free_.begin());
    return p;
  }
  return frontier_++;
}

void PageFile::FreePages(const std::vector<uint32_t>& pages) {
  for (uint32_t p : pages) {
    assert(p >= kFirstDataPage && p < frontier_);
    free_.insert(p);
  }
}

void PageFile::WritePage(const PageHeader& header, const uint8_t* payload) {
  Encoder enc;
  header.EncodeTo(&enc);
  Bytes buf = enc.Take();
  buf.insert(buf.end(), payload, payload + header.payload_len);
  // One disk op per page: header + payload land (or tear) together.
  disk_->WriteAt(kPagesFileId,
                 static_cast<uint64_t>(header.page_id) * page_size_, buf);
  ++stats_->pages_written;
  stats_->page_bytes_written += buf.size();
}

Result<uint32_t> PageFile::WriteChain(uint64_t lsn, const Bytes& payload,
                                      std::vector<uint32_t>* pages_out) {
  if (payload.empty()) {
    return Status::InvalidArgument("empty chain payload");
  }
  const size_t chunk = page_size_ - kPageHeaderSize;
  const size_t n = (payload.size() + chunk - 1) / chunk;
  // Allocate the whole chain first so every header knows its successor.
  std::vector<uint32_t> pages(n);
  for (size_t i = 0; i < n; ++i) pages[i] = AllocatePage();
  for (size_t i = 0; i < n; ++i) {
    size_t off = i * chunk;
    size_t len = std::min(chunk, payload.size() - off);
    PageHeader h;
    h.page_id = pages[i];
    h.lsn = lsn;
    h.payload_len = static_cast<uint32_t>(len);
    h.next_page = (i + 1 < n) ? pages[i + 1] : kNoPage;
    h.crc = HeaderPayloadCrc(h, payload.data() + off, len);
    WritePage(h, payload.data() + off);
  }
  if (pages_out != nullptr) *pages_out = pages;
  return pages[0];
}

Result<Bytes> PageFile::ReadPage(uint32_t page_id, PageHeader* header_out) {
  Bytes raw = disk_->ReadAt(
      kPagesFileId, static_cast<uint64_t>(page_id) * page_size_, page_size_);
  ++stats_->pages_read;
  Decoder dec(raw.data(), kPageHeaderSize);
  TE_ASSIGN_OR_RETURN(PageHeader h, PageHeader::DecodeFrom(&dec));
  if (h.magic != kPageMagic || h.version != kFormatVersion) {
    return Status::Corruption("bad page magic/version at page " +
                              std::to_string(page_id));
  }
  if (h.page_id != page_id) {
    return Status::Corruption("page id mismatch: header says " +
                              std::to_string(h.page_id) + " at page " +
                              std::to_string(page_id));
  }
  if (h.payload_len > page_size_ - kPageHeaderSize) {
    return Status::Corruption("page payload overruns page size");
  }
  if (h.crc != HeaderPayloadCrc(h, raw.data() + kPageHeaderSize,
                                h.payload_len)) {
    return Status::Corruption("page CRC mismatch at page " +
                              std::to_string(page_id));
  }
  *header_out = h;
  return Bytes(raw.begin() + kPageHeaderSize,
               raw.begin() + kPageHeaderSize + h.payload_len);
}

Result<Bytes> PageFile::ReadChain(uint32_t head,
                                  std::vector<uint32_t>* pages_out) {
  Bytes payload;
  std::vector<uint32_t> pages;
  uint32_t p = head;
  while (p != kNoPage) {
    if (pages.size() > frontier_) {
      return Status::Corruption("page chain cycle from head " +
                                std::to_string(head));
    }
    PageHeader h;
    TE_ASSIGN_OR_RETURN(Bytes chunk, ReadPage(p, &h));
    payload.insert(payload.end(), chunk.begin(), chunk.end());
    pages.push_back(p);
    p = h.next_page;
  }
  if (pages_out != nullptr) *pages_out = std::move(pages);
  return payload;
}

Status PageFile::WriteMeta(MetaSlot meta) {
  meta.crc = 0;
  Encoder enc;
  meta.EncodeTo(&enc);
  Bytes buf = enc.Take();
  if (buf.size() > page_size_) {
    return Status::InvalidArgument(
        "meta slot does not fit in a page: " + std::to_string(buf.size()) +
        " > " + std::to_string(page_size_) + " (too many buckets?)");
  }
  uint32_t crc = Crc32(buf);
  // The crc is the final u32 of the encoding; patch it in place.
  for (int i = 0; i < 4; ++i) {
    buf[buf.size() - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  uint64_t slot = meta.generation % 2;
  disk_->WriteAt(kPagesFileId, slot * page_size_, buf);
  ++stats_->pages_written;
  stats_->page_bytes_written += buf.size();
  return Status::OK();
}

Result<MetaSlot> PageFile::ReadBestMeta() const {
  Result<MetaSlot> best = Status::NotFound("no valid meta slot");
  for (uint64_t slot = 0; slot < 2; ++slot) {
    Bytes raw = disk_->ReadAt(kPagesFileId, slot * page_size_, page_size_);
    ++stats_->pages_read;
    Decoder dec(raw);
    Result<MetaSlot> m = MetaSlot::DecodeFrom(&dec);
    if (!m.ok()) continue;
    if (m.value().magic != kMetaMagic ||
        m.value().version != kFormatVersion) {
      continue;
    }
    MetaSlot zeroed = m.value();
    zeroed.crc = 0;
    Encoder enc;
    zeroed.EncodeTo(&enc);
    if (Crc32(enc.buffer()) != m.value().crc) continue;
    if (!best.ok() || m.value().generation > best.value().generation) {
      best = std::move(m);
    }
  }
  return best;
}

void PageFile::Sync() {
  disk_->Sync(kPagesFileId);
  ++stats_->file_syncs;
}

}  // namespace transedge::storage::paged
