#include "storage/storage_backend.h"

#include <cassert>

#include "storage/paged/paged_backend.h"

namespace transedge::storage {

const char* StorageKindName(StorageKind kind) {
  switch (kind) {
    case StorageKind::kInMemory:
      return "in_memory";
    case StorageKind::kPaged:
      return "paged";
  }
  return "unknown";
}

void InMemoryBackend::Preload(const VersionedStore& store,
                              const crypto::Digest& root) {
  (void)root;  // Nothing durable to anchor it to.
  store_ = store;
}

void InMemoryBackend::TruncateHistory(BatchId horizon) {
  store_.TruncateHistory(horizon);
  log_.TruncateTo(horizon);
}

Result<RecoveredState> InMemoryBackend::Recover(const RecoverOptions& opts) {
  (void)opts;
  return Status::FailedPrecondition(
      "in-memory backend has no durable state to recover");
}

std::unique_ptr<StorageBackend> MakeStorageBackend(StorageKind kind,
                                                   const StorageTuning& tuning,
                                                   paged::SimDisk* disk) {
  switch (kind) {
    case StorageKind::kInMemory:
      return std::make_unique<InMemoryBackend>();
    case StorageKind::kPaged:
      assert(disk != nullptr);
      return std::make_unique<paged::PagedBackend>(tuning, disk);
  }
  return nullptr;
}

}  // namespace transedge::storage
