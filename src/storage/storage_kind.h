#ifndef TRANSEDGE_STORAGE_STORAGE_KIND_H_
#define TRANSEDGE_STORAGE_STORAGE_KIND_H_

#include <cstdint>

namespace transedge::storage {

/// Which storage engine backs a replica's `VersionedStore`/`SmrLog` —
/// same playbook as `core::ConsensusKind`: every engine exposes the same
/// seam (`StorageBackend`), the default is bit-identical to the
/// pre-seam behavior, and `SystemConfig::storage_kind` selects.
enum class StorageKind : uint8_t {
  /// Everything lives in memory; restart loses all state. Charges no
  /// simulated I/O time — byte-for-byte identical to the pre-seam code.
  kInMemory,
  /// Page-oriented checksummed file layout plus a write-ahead log on a
  /// deterministic simulated disk: decided batches append to the WAL
  /// (group commit), applied state checkpoints into CRC'd bucket pages,
  /// and a restarted replica recovers checkpoint + WAL replay.
  kPaged,
};

/// Human-readable engine name ("in_memory" / "paged") for benches/logs.
const char* StorageKindName(StorageKind kind);

/// Durability knobs of the paged backend (ignored by the in-memory one).
/// These are the tuning axes bench_durability sweeps.
struct StorageTuning {
  /// On-disk page size in bytes; bucket payloads chain across pages.
  uint32_t page_size = 4096;

  /// Number of key buckets the checkpointed store is hashed over. Each
  /// bucket serializes into its own page chain, so this bounds the
  /// write amplification of a checkpoint to the dirty buckets.
  uint32_t num_buckets = 128;

  /// WAL appends per fsync barrier (group commit). 1 syncs every decided
  /// batch onto the decision critical path; larger values amortize the
  /// fsync across a group at the cost of a longer torn tail after a
  /// crash.
  uint32_t wal_group_commit = 1;

  /// Applied batches between checkpoints (dirty-bucket flush + meta
  /// flip). Bounds both recovery replay length and WAL growth.
  uint32_t checkpoint_interval = 64;

  /// Partition count of the deployment and this replica's partition;
  /// the backend needs them to re-derive a batch's local write set
  /// (checkpoint dirtying, recovery replay). Set by the node, not knobs.
  uint32_t num_partitions = 1;
  uint32_t partition = 0;
};

}  // namespace transedge::storage

#endif  // TRANSEDGE_STORAGE_STORAGE_KIND_H_
