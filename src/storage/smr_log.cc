#include "storage/smr_log.h"

namespace transedge::storage {

Status SmrLog::Append(LogEntry entry) {
  BatchId expected = static_cast<BatchId>(entries_.size());
  if (entry.batch.id != expected) {
    return Status::FailedPrecondition(
        "SMR log append out of order: got batch " +
        std::to_string(entry.batch.id) + ", expected " +
        std::to_string(expected));
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Result<const LogEntry*> SmrLog::Get(BatchId id) const {
  if (id < 0 || static_cast<size_t>(id) >= entries_.size()) {
    return Status::NotFound("no batch with id " + std::to_string(id));
  }
  return &entries_[static_cast<size_t>(id)];
}

}  // namespace transedge::storage
