#include "storage/smr_log.h"

namespace transedge::storage {

Status SmrLog::Append(LogEntry entry) {
  BatchId expected = base_ + static_cast<BatchId>(entries_.size());
  if (entry.batch.id != expected) {
    return Status::FailedPrecondition(
        "SMR log append out of order: got batch " +
        std::to_string(entry.batch.id) + ", expected " +
        std::to_string(expected));
  }
  entries_.push_back(std::move(entry));
  return Status::OK();
}

Result<const LogEntry*> SmrLog::Get(BatchId id) const {
  if (id < base_ || static_cast<size_t>(id - base_) >= entries_.size()) {
    return Status::NotFound("no batch with id " + std::to_string(id));
  }
  return &entries_[static_cast<size_t>(id - base_)];
}

size_t SmrLog::TruncateTo(BatchId horizon) {
  if (horizon <= base_) return 0;
  size_t drop = std::min(static_cast<size_t>(horizon - base_), entries_.size());
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<ptrdiff_t>(drop));
  base_ += static_cast<BatchId>(drop);
  return drop;
}

Status SmrLog::SetBase(BatchId base) {
  if (!entries_.empty()) {
    return Status::FailedPrecondition("SetBase on a non-empty log");
  }
  if (base < 0) {
    return Status::InvalidArgument("negative log base");
  }
  base_ = base;
  return Status::OK();
}

}  // namespace transedge::storage
