#ifndef TRANSEDGE_STORAGE_SMR_LOG_H_
#define TRANSEDGE_STORAGE_SMR_LOG_H_

#include <vector>

#include "common/result.h"
#include "storage/batch.h"

namespace transedge::storage {

/// One decided entry of the replicated log: the batch plus the f+1
/// signature certificate produced by consensus.
struct LogEntry {
  Batch batch;
  BatchCertificate certificate;
};

/// The per-partition state-machine-replication log (§3.1): an append-only
/// sequence of certified batches, written one-by-one by the leader.
///
/// The log holds a contiguous *suffix* of history: entries below
/// `FirstBatchId()` have been truncated against the snapshot horizon
/// (they are still reflected in the store and the Merkle tree, just no
/// longer individually retrievable). A freshly constructed log starts at
/// base 0 with full history.
class SmrLog {
 public:
  SmrLog() = default;

  /// Appends the next batch. Fails unless `entry.batch.id` is exactly
  /// the next index (batches are written one-by-one, §3.1).
  Status Append(LogEntry entry);

  /// The batch with id `id`. NotFound below `FirstBatchId()` (truncated)
  /// and above `LastBatchId()`.
  Result<const LogEntry*> Get(BatchId id) const;

  /// Id of the oldest retained batch (== the next expected id when the
  /// log is empty).
  BatchId FirstBatchId() const { return base_; }

  /// Id of the most recently written batch; kNoBatch when nothing was
  /// ever appended, `base_ - 1` when everything retained was truncated.
  BatchId LastBatchId() const {
    return base_ + static_cast<BatchId>(entries_.size()) - 1;
  }

  /// Drops retained entries with id < `horizon`. A horizon at or below
  /// `FirstBatchId()` is a no-op; one beyond `LastBatchId()` clamps (the
  /// log never truncates entries it does not hold). Returns the number
  /// of entries dropped.
  size_t TruncateTo(BatchId horizon);

  /// Re-bases an *empty* log so the next append expects `base` — used by
  /// recovery to seed the log at the durable checkpoint's horizon.
  Status SetBase(BatchId base);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const LogEntry& back() const { return entries_.back(); }

 private:
  std::vector<LogEntry> entries_;
  BatchId base_ = 0;  // Id of entries_[0].
};

}  // namespace transedge::storage

#endif  // TRANSEDGE_STORAGE_SMR_LOG_H_
