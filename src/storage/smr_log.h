#ifndef TRANSEDGE_STORAGE_SMR_LOG_H_
#define TRANSEDGE_STORAGE_SMR_LOG_H_

#include <vector>

#include "common/result.h"
#include "storage/batch.h"

namespace transedge::storage {

/// One decided entry of the replicated log: the batch plus the f+1
/// signature certificate produced by consensus.
struct LogEntry {
  Batch batch;
  BatchCertificate certificate;
};

/// The per-partition state-machine-replication log (§3.1): an append-only
/// sequence of certified batches, written one-by-one by the leader.
class SmrLog {
 public:
  SmrLog() = default;

  /// Appends the next batch. Fails unless `entry.batch.id` is exactly
  /// the next index (batches are written one-by-one, §3.1).
  Status Append(LogEntry entry);

  /// The batch with id `id`.
  Result<const LogEntry*> Get(BatchId id) const;

  /// Id of the most recently written batch; kNoBatch when empty.
  BatchId LastBatchId() const {
    return entries_.empty() ? kNoBatch
                            : static_cast<BatchId>(entries_.size()) - 1;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  const LogEntry& back() const { return entries_.back(); }

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace transedge::storage

#endif  // TRANSEDGE_STORAGE_SMR_LOG_H_
