#ifndef TRANSEDGE_STORAGE_VERSIONED_STORE_H_
#define TRANSEDGE_STORAGE_VERSIONED_STORE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "txn/types.h"

namespace transedge::storage {

/// A value together with the batch id (version) at which it was written.
struct VersionedValue {
  Value value;
  BatchId version = kNoBatch;

  bool operator==(const VersionedValue&) const = default;
};

/// Multi-version key-value store backing one partition replica.
///
/// Every write is tagged with the id of the batch that applied it; the
/// version history is retained so that the second round of the
/// distributed read-only protocol can serve "the state as of batch i"
/// (§4.3.4), and so OCC validation can compare observed versions against
/// the latest committed ones (Definition 3.1, rule 1).
class VersionedStore {
 public:
  VersionedStore() = default;

  /// Writes `value` at `version`. Versions for one key must be applied
  /// in non-decreasing order (batches are applied in log order).
  void Put(const Key& key, Value value, BatchId version);

  /// Latest version of `key`.
  Result<VersionedValue> Get(const Key& key) const;

  /// Latest version of `key` with version <= `as_of`. NotFound when the
  /// key did not exist at that point.
  Result<VersionedValue> GetAsOf(const Key& key, BatchId as_of) const;

  /// Version of the latest write to `key`; kNoBatch when absent.
  BatchId LatestVersion(const Key& key) const;

  /// Drops versions strictly older than the latest one with
  /// version <= `horizon`, bounding history growth. Returns the number
  /// of versions dropped.
  size_t TruncateHistory(BatchId horizon);

  /// Visits the latest version of every key, in sorted key order (so the
  /// traversal is canonical across replicas). Used by durable backends
  /// to checkpoint and by recovery to rebuild the Merkle tree.
  void ForEachLatest(
      const std::function<void(const Key&, const Value&, BatchId)>& fn) const;

  size_t key_count() const { return chains_.size(); }
  size_t total_versions() const { return total_versions_; }

 private:
  /// Sorted by version ascending.
  using Chain = std::vector<VersionedValue>;
  std::map<Key, Chain> chains_;
  size_t total_versions_ = 0;
};

}  // namespace transedge::storage

#endif  // TRANSEDGE_STORAGE_VERSIONED_STORE_H_
