#ifndef TRANSEDGE_SIM_EVENT_QUEUE_H_
#define TRANSEDGE_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace transedge::sim {

/// Deterministic future-event list.
///
/// Events fire in (time, insertion-sequence) order, so two events at the
/// same instant run in the order they were scheduled — no dependence on
/// container iteration order, which keeps whole-system runs reproducible.
class EventQueue {
 public:
  EventQueue() = default;

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `fn` at absolute time `when` (must be >= now()).
  void ScheduleAt(Time when, std::function<void()> fn);

  /// Runs the next event, advancing the clock. False when empty.
  bool RunNext();

  /// Runs events until the clock would pass `deadline` or the queue
  /// drains. Returns the number of events executed.
  uint64_t RunUntil(Time deadline);

  /// Drains the queue completely (bounded by `max_events` as a runaway
  /// guard). Returns the number of events executed.
  uint64_t RunUntilIdle(uint64_t max_events = UINT64_MAX);

  Time now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  uint64_t events_executed() const { return events_executed_; }

 private:
  struct Event {
    Time when;
    uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  Time now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
};

}  // namespace transedge::sim

#endif  // TRANSEDGE_SIM_EVENT_QUEUE_H_
