#include "sim/network.h"

#include <cassert>

namespace transedge::sim {

namespace {
uint64_t SitePairKey(SiteId a, SiteId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}
}  // namespace

void LatencyModel::SetSitePairLatency(SiteId a, SiteId b, Time latency) {
  overrides_[SitePairKey(a, b)] = latency;
}

Time LatencyModel::Sample(SiteId from, SiteId to, Rng* rng) const {
  Time base;
  auto it = overrides_.find(SitePairKey(from, to));
  if (it != overrides_.end()) {
    base = it->second;
  } else {
    base = (from == to) ? intra_site_ : inter_site_;
  }
  Time jitter = jitter_ > 0 ? static_cast<Time>(rng->NextBounded(
                                  static_cast<uint64_t>(jitter_) + 1))
                            : 0;
  return base + jitter;
}

Network::Network(EventQueue* queue, const LatencyModel& latency, uint64_t seed)
    : queue_(queue), latency_(latency), rng_(seed) {}

void Network::Register(ActorId id, SiteId site, Actor* actor) {
  actors_[id] = Registration{site, actor};
}

SiteId Network::site_of(ActorId id) const {
  auto it = actors_.find(id);
  assert(it != actors_.end());
  return it->second.site;
}

void Network::Send(ActorId from, ActorId to, MessagePtr msg) {
  SendAt(queue_->now(), from, to, std::move(msg));
}

void Network::SendAt(Time depart_at, ActorId from, ActorId to,
                     MessagePtr msg) {
  auto from_it = actors_.find(from);
  auto to_it = actors_.find(to);
  assert(from_it != actors_.end());
  if (to_it == actors_.end()) {
    ++messages_dropped_;
    return;
  }
  auto dfrom = disconnected_.find(from);
  auto dto = disconnected_.find(to);
  if ((dfrom != disconnected_.end() && dfrom->second) ||
      (dto != disconnected_.end() && dto->second)) {
    ++messages_dropped_;
    return;
  }
  if (filter_ && !filter_(from, to, msg)) {
    ++messages_dropped_;
    return;
  }
  Time latency =
      latency_.Sample(from_it->second.site, to_it->second.site, &rng_);
  Actor* target = to_it->second.actor;
  ++messages_sent_;
  queue_->ScheduleAt(depart_at + latency,
                     [target, from, msg = std::move(msg)]() {
                       target->OnMessage(from, msg);
                     });
}

}  // namespace transedge::sim
