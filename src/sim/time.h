#ifndef TRANSEDGE_SIM_TIME_H_
#define TRANSEDGE_SIM_TIME_H_

#include <cstdint>

namespace transedge::sim {

/// Simulated time in microseconds since simulation start.
///
/// The whole system runs on virtual time: protocol latencies and
/// throughputs reported by the benches are functions of message rounds,
/// link latencies, and the CPU cost model — fully deterministic and
/// independent of the host machine.
using Time = int64_t;

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000000;

constexpr Time Micros(int64_t n) { return n * kMicrosecond; }
constexpr Time Millis(int64_t n) { return n * kMillisecond; }
constexpr Time Seconds(int64_t n) { return n * kSecond; }

/// Converts simulated time to floating-point milliseconds for reporting.
constexpr double ToMillis(Time t) { return static_cast<double>(t) / 1000.0; }
constexpr double ToSeconds(Time t) {
  return static_cast<double>(t) / 1000000.0;
}

/// Models a single-threaded server core: work is serialized, so a burst
/// of messages queues behind the busy CPU. `Charge` books `cost` units of
/// work arriving at `now` and returns the completion time.
class CpuMeter {
 public:
  Time Charge(Time now, Time cost) {
    busy_until_ = (busy_until_ > now ? busy_until_ : now) + cost;
    return busy_until_;
  }

  /// Completion time of all booked work.
  Time busy_until() const { return busy_until_; }

 private:
  Time busy_until_ = 0;
};

}  // namespace transedge::sim

#endif  // TRANSEDGE_SIM_TIME_H_
