#ifndef TRANSEDGE_SIM_ENVIRONMENT_H_
#define TRANSEDGE_SIM_ENVIRONMENT_H_

#include <memory>

#include "common/rng.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/time.h"

namespace transedge::sim {

/// Configuration of the simulated world.
struct EnvironmentOptions {
  /// Master seed; everything stochastic derives from it.
  uint64_t seed = 1;

  /// One-way latency between replicas in the same cluster/site.
  Time intra_site_latency = Micros(300);

  /// One-way latency between different sites (clusters, clients).
  /// Several experiments sweep this (Figures 8, 12, 13).
  Time inter_site_latency = Millis(10);

  /// Uniform jitter added on top of every link sample.
  Time latency_jitter = Micros(100);
};

/// Owns the event queue and network and hands out scheduling primitives.
/// One Environment = one deterministic simulated run.
class Environment {
 public:
  explicit Environment(const EnvironmentOptions& options);

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  Time now() const { return queue_.now(); }

  /// Schedules `fn` after `delay`.
  void Schedule(Time delay, std::function<void()> fn) {
    queue_.ScheduleAt(queue_.now() + delay, std::move(fn));
  }
  void ScheduleAt(Time when, std::function<void()> fn) {
    queue_.ScheduleAt(when, std::move(fn));
  }

  /// Runs the simulation up to `deadline` (inclusive).
  void RunUntil(Time deadline) { queue_.RunUntil(deadline); }

  /// Runs until no events remain.
  void RunUntilIdle() { queue_.RunUntilIdle(); }

  EventQueue& queue() { return queue_; }
  Network& network() { return network_; }
  Rng& rng() { return rng_; }
  const EnvironmentOptions& options() const { return options_; }

 private:
  EnvironmentOptions options_;
  EventQueue queue_;
  Rng rng_;
  Network network_;
};

}  // namespace transedge::sim

#endif  // TRANSEDGE_SIM_ENVIRONMENT_H_
