#ifndef TRANSEDGE_SIM_NETWORK_H_
#define TRANSEDGE_SIM_NETWORK_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/actor.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace transedge::sim {

/// Identifier of a site (a cluster's location, or a client's location).
using SiteId = uint32_t;

/// Pairwise link-latency model.
///
/// Latency between two actors = base latency of their site pair + jitter.
/// This reproduces the paper's topology: replicas of one cluster are
/// co-located (sub-millisecond links) while clusters are separated by a
/// configurable wide-area latency that several experiments sweep
/// (Figures 8, 12, 13).
class LatencyModel {
 public:
  LatencyModel(Time intra_site, Time inter_site, Time jitter)
      : intra_site_(intra_site), inter_site_(inter_site), jitter_(jitter) {}

  /// Overrides the latency between one specific site pair (symmetric).
  void SetSitePairLatency(SiteId a, SiteId b, Time latency);

  /// Sampled one-way latency between two sites.
  Time Sample(SiteId from, SiteId to, Rng* rng) const;

  Time intra_site() const { return intra_site_; }
  Time inter_site() const { return inter_site_; }

 private:
  Time intra_site_;
  Time inter_site_;
  Time jitter_;
  std::unordered_map<uint64_t, Time> overrides_;
};

/// The simulated message fabric.
///
/// Owns the actor registry and delivers messages through the event queue
/// with sampled latencies. Supports fault injection: per-link drop
/// filters and full partitions, used by the byzantine and liveness tests.
class Network {
 public:
  Network(EventQueue* queue, const LatencyModel& latency, uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers `actor` under `id` at site `site`. Actors are borrowed,
  /// not owned; they must outlive the network.
  void Register(ActorId id, SiteId site, Actor* actor);

  /// Sends `msg` from `from` to `to`, delivered after sampled latency.
  void Send(ActorId from, ActorId to, MessagePtr msg);

  /// Sends with departure deferred until `depart_at` (models a busy CPU
  /// finishing serialization before the packet leaves).
  void SendAt(Time depart_at, ActorId from, ActorId to, MessagePtr msg);

  /// Installs a predicate consulted for every send; returning false drops
  /// the message silently. Pass nullptr to clear.
  using LinkFilter = std::function<bool(ActorId from, ActorId to,
                                        const MessagePtr& msg)>;
  void SetLinkFilter(LinkFilter filter) { filter_ = std::move(filter); }

  /// Disconnects `id` entirely (both directions) — crash-stop simulation.
  void Disconnect(ActorId id) { disconnected_[id] = true; }
  void Reconnect(ActorId id) { disconnected_[id] = false; }

  SiteId site_of(ActorId id) const;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  struct Registration {
    SiteId site = 0;
    Actor* actor = nullptr;
  };

  EventQueue* queue_;
  LatencyModel latency_;
  Rng rng_;
  std::unordered_map<ActorId, Registration> actors_;
  std::unordered_map<ActorId, bool> disconnected_;
  LinkFilter filter_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
};

}  // namespace transedge::sim

#endif  // TRANSEDGE_SIM_NETWORK_H_
