#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace transedge::sim {

void EventQueue::ScheduleAt(Time when, std::function<void()> fn) {
  assert(when >= now_);
  heap_.push(Event{when, next_seq_++, std::move(fn)});
}

bool EventQueue::RunNext() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the function object (events are small).
  Event ev = heap_.top();
  heap_.pop();
  now_ = ev.when;
  ++events_executed_;
  ev.fn();
  return true;
}

uint64_t EventQueue::RunUntil(Time deadline) {
  uint64_t count = 0;
  while (!heap_.empty() && heap_.top().when <= deadline) {
    RunNext();
    ++count;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

uint64_t EventQueue::RunUntilIdle(uint64_t max_events) {
  uint64_t count = 0;
  while (count < max_events && RunNext()) {
    ++count;
  }
  return count;
}

}  // namespace transedge::sim
