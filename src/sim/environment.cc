#include "sim/environment.h"

namespace transedge::sim {

Environment::Environment(const EnvironmentOptions& options)
    : options_(options),
      rng_(options.seed),
      network_(&queue_,
               LatencyModel(options.intra_site_latency,
                            options.inter_site_latency,
                            options.latency_jitter),
               options.seed ^ 0x6e657477ULL /* "netw" */) {}

}  // namespace transedge::sim
