#ifndef TRANSEDGE_SIM_ACTOR_H_
#define TRANSEDGE_SIM_ACTOR_H_

#include <cstdint>
#include <memory>

namespace transedge::sim {

/// Identifier of a simulated process (replica or client). Matches
/// crypto::NodeId numerically; redeclared here so the sim layer stays
/// independent of the crypto layer.
using ActorId = uint32_t;

/// Base class for anything deliverable through the simulated network.
/// Protocol messages in src/wire derive from this.
struct Message {
  virtual ~Message() = default;

  /// Discriminator; values are defined by the wire layer.
  virtual uint32_t type() const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

/// A simulated process: receives messages and timer callbacks.
///
/// Actors never share state; everything flows through the network, which
/// is what lets the fault injectors (drops, partitions, byzantine
/// wrappers) interpose on all communication.
class Actor {
 public:
  virtual ~Actor() = default;

  /// Called once when the simulation starts.
  virtual void OnStart() {}

  /// Delivery of a message sent by `from`.
  virtual void OnMessage(ActorId from, const MessagePtr& msg) = 0;
};

}  // namespace transedge::sim

#endif  // TRANSEDGE_SIM_ACTOR_H_
