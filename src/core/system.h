#ifndef TRANSEDGE_CORE_SYSTEM_H_
#define TRANSEDGE_CORE_SYSTEM_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/client.h"
#include "core/config.h"
#include "core/node.h"
#include "core/watch_client.h"
#include "crypto/signer.h"
#include "sim/environment.h"
#include "storage/paged/sim_disk.h"

namespace transedge::core {

/// Builds and owns a whole simulated TransEdge deployment: the event
/// queue and network, the signature scheme, `num_partitions` clusters of
/// `3f+1` replicas each, and any number of clients.
///
///     SystemConfig config;                 // 5 clusters x 7 replicas
///     sim::EnvironmentOptions env_opts;
///     System system(config, env_opts);
///     system.Preload(data);                // identical state everywhere
///     system.Start();                      // genesis batches certify it
///     Client* client = system.AddClient();
///     client->ExecuteReadOnly(keys, [&](RoResult r) { ... });
///     system.env().RunUntil(sim::Seconds(10));
class System {
 public:
  System(const SystemConfig& config, const sim::EnvironmentOptions& env_opts);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Pre-built initial state, one (store, tree) per partition. Building
  /// it is the expensive part of Preload; benches cache it across runs.
  struct PreloadState {
    std::vector<storage::VersionedStore> stores;
    std::vector<merkle::MerkleTree> trees;
  };

  static PreloadState BuildPreloadState(
      uint32_t num_partitions, int merkle_depth,
      const std::vector<std::pair<Key, Value>>& data);

  /// Installs `data` as the initial database state on every replica.
  /// Must be called before Start().
  void Preload(const std::vector<std::pair<Key, Value>>& data);

  /// Same, from a pre-built (possibly cached) state. The state's
  /// geometry must match this system's configuration.
  void Preload(const PreloadState& state);

  /// Starts all replica actors (leaders immediately certify a genesis
  /// batch covering the preloaded state).
  void Start();

  /// Creates a client co-located with cluster `home % num_partitions`.
  Client* AddClient();

  /// Creates a watch client (subscription-tier subscriber). Watch
  /// clients share the regular clients' node-id space.
  WatchClient* AddWatchClient();

  TransEdgeNode* node(PartitionId p, uint32_t replica_index) {
    return nodes_[config_.ReplicaNode(p, replica_index)].get();
  }
  const TransEdgeNode* node(PartitionId p, uint32_t replica_index) const {
    return nodes_[config_.ReplicaNode(p, replica_index)].get();
  }

  /// The replica currently acting as leader of partition `p` (by its own
  /// view); never null.
  TransEdgeNode* leader(PartitionId p);

  sim::Environment& env() { return env_; }
  const SystemConfig& config() const { return config_; }
  const crypto::Verifier& verifier() const { return scheme_.verifier(); }

  /// Replica `id`'s simulated disk (null under the in-memory backend).
  /// Tests drive fault injection on it directly (Crash modes, CorruptByte)
  /// before calling RestartReplica.
  storage::paged::SimDisk* disk(crypto::NodeId id) {
    return id < disks_.size() ? disks_[id].get() : nullptr;
  }

  /// Crash-stops replica `id`: the node is halted (drops messages, all
  /// of its timers become no-ops) and cut from the network. Its disk is
  /// left exactly as-is — tests choose what the power loss does to the
  /// unsynced write cache via disk(id)->Crash(...).
  void CrashReplica(crypto::NodeId id);

  /// Replaces a crashed replica with a fresh node recovering from the
  /// same disk (checkpoint + WAL replay, certificate-verified). The old
  /// node object is parked in a graveyard (sim closures may still hold
  /// it); the successor takes over the actor id and reconnects. Returns
  /// the recovery status — on failure the replica stays down.
  Status RestartReplica(crypto::NodeId id);

  /// The RecoverOptions a replica of this deployment recovers with
  /// (cluster verifier + membership + certificate quorum).
  storage::RecoverOptions RecoverOptionsFor(crypto::NodeId id) const;

  // Aggregate statistics across all nodes (for benches).
  uint64_t TotalLocalCommitted() const;
  uint64_t TotalDistCommitted() const;
  uint64_t TotalAborted() const;
  uint64_t TotalRwAbortedByRoLocks() const;
  uint64_t TotalBatches() const;

 private:
  SystemConfig config_;
  sim::Environment env_;
  crypto::HmacSignatureScheme scheme_;
  /// One disk per replica under StorageKind::kPaged (indexed by node
  /// id; empty under the in-memory backend). Owned here so a disk
  /// outlives crash-restart cycles of the node using it.
  std::vector<std::unique_ptr<storage::paged::SimDisk>> disks_;
  std::vector<std::unique_ptr<TransEdgeNode>> nodes_;
  /// Halted predecessors of restarted replicas: already-scheduled sim
  /// closures may still reference them, so they must live as long as
  /// the environment.
  std::vector<std::unique_ptr<TransEdgeNode>> graveyard_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<WatchClient>> watch_clients_;
  /// Clients and watch clients share one id space (both key server-side
  /// state by globally-unique ids derived from the node id).
  uint32_t next_client_index_ = 0;
  bool started_ = false;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_SYSTEM_H_
