#ifndef TRANSEDGE_CORE_SYSTEM_H_
#define TRANSEDGE_CORE_SYSTEM_H_

#include <memory>
#include <utility>
#include <vector>

#include "core/client.h"
#include "core/config.h"
#include "core/node.h"
#include "crypto/signer.h"
#include "sim/environment.h"

namespace transedge::core {

/// Builds and owns a whole simulated TransEdge deployment: the event
/// queue and network, the signature scheme, `num_partitions` clusters of
/// `3f+1` replicas each, and any number of clients.
///
///     SystemConfig config;                 // 5 clusters x 7 replicas
///     sim::EnvironmentOptions env_opts;
///     System system(config, env_opts);
///     system.Preload(data);                // identical state everywhere
///     system.Start();                      // genesis batches certify it
///     Client* client = system.AddClient();
///     client->ExecuteReadOnly(keys, [&](RoResult r) { ... });
///     system.env().RunUntil(sim::Seconds(10));
class System {
 public:
  System(const SystemConfig& config, const sim::EnvironmentOptions& env_opts);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Pre-built initial state, one (store, tree) per partition. Building
  /// it is the expensive part of Preload; benches cache it across runs.
  struct PreloadState {
    std::vector<storage::VersionedStore> stores;
    std::vector<merkle::MerkleTree> trees;
  };

  static PreloadState BuildPreloadState(
      uint32_t num_partitions, int merkle_depth,
      const std::vector<std::pair<Key, Value>>& data);

  /// Installs `data` as the initial database state on every replica.
  /// Must be called before Start().
  void Preload(const std::vector<std::pair<Key, Value>>& data);

  /// Same, from a pre-built (possibly cached) state. The state's
  /// geometry must match this system's configuration.
  void Preload(const PreloadState& state);

  /// Starts all replica actors (leaders immediately certify a genesis
  /// batch covering the preloaded state).
  void Start();

  /// Creates a client co-located with cluster `home % num_partitions`.
  Client* AddClient();

  TransEdgeNode* node(PartitionId p, uint32_t replica_index) {
    return nodes_[config_.ReplicaNode(p, replica_index)].get();
  }
  const TransEdgeNode* node(PartitionId p, uint32_t replica_index) const {
    return nodes_[config_.ReplicaNode(p, replica_index)].get();
  }

  /// The replica currently acting as leader of partition `p` (by its own
  /// view); never null.
  TransEdgeNode* leader(PartitionId p);

  sim::Environment& env() { return env_; }
  const SystemConfig& config() const { return config_; }
  const crypto::Verifier& verifier() const { return scheme_.verifier(); }

  // Aggregate statistics across all nodes (for benches).
  uint64_t TotalLocalCommitted() const;
  uint64_t TotalDistCommitted() const;
  uint64_t TotalAborted() const;
  uint64_t TotalRwAbortedByRoLocks() const;
  uint64_t TotalBatches() const;

 private:
  SystemConfig config_;
  sim::Environment env_;
  crypto::HmacSignatureScheme scheme_;
  std::vector<std::unique_ptr<TransEdgeNode>> nodes_;
  std::vector<std::unique_ptr<Client>> clients_;
  bool started_ = false;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_SYSTEM_H_
