#include "core/footprint_index.h"

namespace transedge::core {

void FootprintIndex::Add(const Transaction& txn) {
  for (const ReadOp& r : txn.read_set) ++readers_[r.key];
  for (const WriteOp& w : txn.write_set) ++writers_[w.key];
}

void FootprintIndex::Remove(const Transaction& txn) {
  for (const ReadOp& r : txn.read_set) {
    auto it = readers_.find(r.key);
    if (it != readers_.end() && --it->second <= 0) readers_.erase(it);
  }
  for (const WriteOp& w : txn.write_set) {
    auto it = writers_.find(w.key);
    if (it != writers_.end() && --it->second <= 0) writers_.erase(it);
  }
}

bool FootprintIndex::ConflictsWith(const Transaction& txn) const {
  for (const WriteOp& w : txn.write_set) {
    if (writers_.count(w.key) > 0 || readers_.count(w.key) > 0) return true;
  }
  for (const ReadOp& r : txn.read_set) {
    if (writers_.count(r.key) > 0) return true;
  }
  return false;
}

}  // namespace transedge::core
