#include "core/consensus_engine.h"

#include <utility>

#include "core/batch_apply.h"

namespace transedge::core {

namespace {

/// Bytes signed by the leader over a proposed batch.
Bytes DigestSignPayload(const crypto::Digest& digest) {
  Encoder enc;
  enc.PutString("transedge-batch-proposal");
  enc.PutRaw(digest.bytes.data(), digest.bytes.size());
  return enc.Take();
}

size_t CountMatching(const std::map<crypto::NodeId, crypto::Digest>& votes,
                     const crypto::Digest& digest) {
  size_t n = 0;
  for (const auto& [node, d] : votes) {
    if (d == digest) ++n;
  }
  return n;
}

}  // namespace

ConsensusEngine::ConsensusEngine(NodeContext* ctx, Hooks hooks)
    : ctx_(ctx), hooks_(std::move(hooks)) {}

void ConsensusEngine::Propose(storage::Batch batch,
                              merkle::MerkleTree post_tree) {
  const SystemConfig& config = ctx_->config();
  auto [it, inserted] = instances_.try_emplace(batch.id, config.merkle_depth);
  ConsensusInstance& inst = it->second;
  inst.has_batch = true;
  inst.post_tree = std::move(post_tree);
  inst.digest = batch.ComputeDigest();
  inst.batch = batch;
  inst.validated = true;

  // Leader's own certificate share doubles as its prepare vote.
  storage::BatchCertificate payload;
  payload.partition = ctx_->partition();
  payload.batch_id = batch.id;
  payload.batch_digest = inst.digest;
  payload.merkle_root = batch.ro.merkle_root;
  payload.ro_digest = batch.ro.ComputeDigest();
  crypto::Signature share = ctx_->Sign(payload.SignedPayload());
  inst.prepare_votes[ctx_->id()] = inst.digest;
  inst.cert_shares[ctx_->id()] = share;
  inst.sent_prepare = true;

  wire::PrePrepareMsg msg;
  msg.view = view_;
  msg.batch = std::move(batch);
  msg.leader_signature = ctx_->Sign(DigestSignPayload(inst.digest));
  msg.leader_cert_share = share;

  if (config.simulate_shared_merkle) {
    msg.post_snapshot = inst.post_tree.GetSnapshot();
  }

  sim::Time done = ctx_->busy_until();
  if (ctx_->byzantine() == ByzantineBehavior::kEquivocate) {
    // Send a conflicting variant to half the cluster: same transactions,
    // different timestamp => different digest. Neither variant can gather
    // a quorum of matching votes.
    wire::PrePrepareMsg alt = msg;
    alt.batch.ro.timestamp_us += 1;
    crypto::Digest alt_digest = alt.batch.ComputeDigest();
    alt.leader_signature = ctx_->Sign(DigestSignPayload(alt_digest));
    storage::BatchCertificate alt_payload = payload;
    alt_payload.batch_digest = alt_digest;
    alt_payload.ro_digest = alt.batch.ro.ComputeDigest();
    alt.leader_cert_share = ctx_->Sign(alt_payload.SignedPayload());
    auto shared_main = ShareMsg(std::move(msg));
    auto shared_alt = ShareMsg(std::move(alt));
    bool flip = false;
    for (crypto::NodeId member : ctx_->cluster_members()) {
      if (member == ctx_->id()) continue;
      ctx_->Send(member, flip ? shared_alt : shared_main, done);
      flip = !flip;
    }
    return;
  }

  ctx_->BroadcastToCluster(ShareMsg(std::move(msg)), done);
  StartViewChangeTimer(inst.batch.id);
}

void ConsensusEngine::HandlePrePrepare(sim::ActorId from,
                                       const wire::PrePrepareMsg& msg) {
  if (msg.view != view_) return;
  if (from != ctx_->config().LeaderOf(ctx_->partition(), view_)) return;
  BatchId id = msg.batch.id;
  if (id <= ctx_->mutable_log().LastBatchId()) return;  // Already decided.

  auto [it, inserted] = instances_.try_emplace(id, ctx_->config().merkle_depth);
  ConsensusInstance& inst = it->second;
  if (inst.has_batch) return;  // First proposal wins; duplicates ignored.

  crypto::Digest digest = msg.batch.ComputeDigest();
  if (!ctx_->verifier().Verify(DigestSignPayload(digest),
                               msg.leader_signature) ||
      msg.leader_signature.signer != from) {
    return;  // Forged or corrupted proposal.
  }
  inst.has_batch = true;
  inst.batch = msg.batch;
  inst.digest = digest;
  inst.adopted_snapshot = msg.post_snapshot;
  inst.prepare_votes[from] = digest;
  inst.cert_shares[from] = msg.leader_cert_share;

  StartViewChangeTimer(id);
  AdvanceConsensus();
}

void ConsensusEngine::HandlePrepare(sim::ActorId from,
                                    const wire::PrepareMsg& msg) {
  if (msg.view != view_) return;
  if (msg.batch_id <= ctx_->mutable_log().LastBatchId()) return;
  auto [it, inserted] =
      instances_.try_emplace(msg.batch_id, ctx_->config().merkle_depth);
  it->second.prepare_votes[from] = msg.batch_digest;
  it->second.cert_shares[from] = msg.cert_share;
  AdvanceConsensus();
}

void ConsensusEngine::HandleCommit(sim::ActorId from,
                                   const wire::CommitMsg& msg) {
  if (msg.view != view_) return;
  if (msg.batch_id <= ctx_->mutable_log().LastBatchId()) return;
  auto [it, inserted] =
      instances_.try_emplace(msg.batch_id, ctx_->config().merkle_depth);
  it->second.commit_votes[from] = msg.batch_digest;
  AdvanceConsensus();
}

void ConsensusEngine::AdvanceConsensus() {
  const SystemConfig& config = ctx_->config();
  BatchId next = ctx_->mutable_log().LastBatchId() + 1;
  auto it = instances_.find(next);
  if (it == instances_.end()) return;
  ConsensusInstance& inst = it->second;
  if (!inst.has_batch) return;

  if (!inst.validated && !inst.validation_failed) {
    Status s = ValidateProposedBatch(&inst);
    if (!s.ok()) {
      // A correct replica stays silent on an invalid proposal; the
      // progress timer will trigger a view change.
      inst.validation_failed = true;
      return;
    }
    inst.validated = true;
  }
  if (inst.validation_failed) return;

  if (!inst.sent_prepare) {
    storage::BatchCertificate payload;
    payload.partition = ctx_->partition();
    payload.batch_id = inst.batch.id;
    payload.batch_digest = inst.digest;
    payload.merkle_root = inst.batch.ro.merkle_root;
    payload.ro_digest = inst.batch.ro.ComputeDigest();
    crypto::Signature share = ctx_->Sign(payload.SignedPayload());
    inst.prepare_votes[ctx_->id()] = inst.digest;
    inst.cert_shares[ctx_->id()] = share;
    inst.sent_prepare = true;

    wire::PrepareMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.batch_digest = inst.digest;
    msg.cert_share = share;
    ctx_->BroadcastToCluster(ShareMsg(std::move(msg)),
                             ctx_->Charge(config.cost.signature_op));
  }

  if (inst.sent_prepare && !inst.sent_commit &&
      CountMatching(inst.prepare_votes, inst.digest) >= config.quorum_size()) {
    inst.commit_votes[ctx_->id()] = inst.digest;
    inst.sent_commit = true;
    wire::CommitMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.batch_digest = inst.digest;
    ctx_->BroadcastToCluster(ShareMsg(std::move(msg)), ctx_->busy_until());
  }

  if (inst.sent_commit && !inst.decided &&
      CountMatching(inst.commit_votes, inst.digest) >= config.quorum_size()) {
    inst.decided = true;
    storage::BatchCertificate cert = AssembleCertificate(inst);
    Decided decided{std::move(inst.batch), std::move(cert),
                    std::move(inst.post_tree)};
    instances_.erase(it);
    ++stats_.batches_decided;
    // The hook applies the batch, drives 2PC / read-only follow-ups, and
    // re-enters AdvanceConsensus for the next queued instance.
    hooks_.on_decided(std::move(decided));
  }
}

storage::BatchCertificate ConsensusEngine::AssembleCertificate(
    const ConsensusInstance& inst) const {
  storage::BatchCertificate cert;
  cert.partition = ctx_->partition();
  cert.batch_id = inst.batch.id;
  cert.batch_digest = inst.digest;
  cert.merkle_root = inst.batch.ro.merkle_root;
  cert.ro_digest = inst.batch.ro.ComputeDigest();
  Bytes payload = cert.SignedPayload();
  for (const auto& [node, vote_digest] : inst.prepare_votes) {
    if (cert.signatures.size() >= ctx_->config().certificate_size()) break;
    if (!(vote_digest == inst.digest)) continue;
    auto share = inst.cert_shares.find(node);
    if (share == inst.cert_shares.end()) continue;
    if (ctx_->verifier().Verify(payload, share->second)) {
      cert.signatures.Add(share->second);
    }
  }
  return cert;
}

Status ConsensusEngine::ValidateProposedBatch(ConsensusInstance* inst) {
  const storage::Batch& batch = inst->batch;
  const SystemConfig& config = ctx_->config();
  storage::SmrLog& log = ctx_->mutable_log();
  txn::PreparedBatches& prepared = ctx_->prepared_batches();
  if (batch.partition != ctx_->partition()) {
    return Status::InvalidArgument("batch for wrong partition");
  }
  if (batch.id != log.LastBatchId() + 1) {
    return Status::FailedPrecondition("batch id not next in log");
  }

  // Freshness window (§4.4.2): a malicious leader cannot timestamp a
  // batch far from real time.
  int64_t skew = batch.ro.timestamp_us - ctx_->now();
  if (skew < -config.freshness_window || skew > config.freshness_window) {
    return Status::VerificationFailed("batch timestamp outside window");
  }

  const uint32_t shards = config.pipeline_shards == 0 ? 1
                                                      : config.pipeline_shards;
  if (shards > 1) {
    // Re-validation partitions its conflict index the same way the
    // sharded leader's admission did, so the superlinear churn term is
    // paid per shard (balanced-router estimate; the routers are uniform).
    size_t n = batch.TotalTransactions();
    std::vector<size_t> sizes(shards, n / shards);
    for (size_t i = 0; i < n % shards; ++i) ++sizes[i];
    ctx_->Charge(
        ctx_->ShardedBatchComputeCost(sizes, config.cost.validate_per_txn));
  } else {
    ctx_->Charge(ctx_->BatchComputeCost(batch.TotalTransactions(),
                                        config.cost.validate_per_txn));
  }

  // Re-run Definition 3.1 on every transaction the leader admitted.
  FootprintIndex batch_index;
  auto check = [&](const Transaction& t) -> Status {
    Transaction restricted = ctx_->RestrictToPartition(t);
    TE_RETURN_IF_ERROR(ctx_->validator().CheckAgainstStore(restricted));
    if (batch_index.ConflictsWith(t)) {
      return Status::Conflict("conflict inside proposed batch");
    }
    if (ctx_->pending_footprint().ConflictsWith(t)) {
      return Status::Conflict("conflict with prepared transaction");
    }
    batch_index.Add(t);
    return Status::OK();
  };
  for (const Transaction& t : batch.local) TE_RETURN_IF_ERROR(check(t));
  for (const Transaction& t : batch.prepared) TE_RETURN_IF_ERROR(check(t));

  // The committed segment must be exactly a ready prefix of our prepare
  // groups, in Definition 4.1 order.
  {
    std::vector<BatchId> group_ids;
    for (const storage::CommitRecord& rec : batch.committed) {
      if (group_ids.empty() || group_ids.back() != rec.prepared_in_batch) {
        group_ids.push_back(rec.prepared_in_batch);
      }
      if (prepared.FindTxn(rec.txn_id) == nullptr) {
        return Status::VerificationFailed(
            "commit record references unknown transaction");
      }
    }
    for (size_t i = 1; i < group_ids.size(); ++i) {
      if (group_ids[i - 1] >= group_ids[i]) {
        return Status::VerificationFailed(
            "commit records violate prepare-group order");
      }
    }
    if (!group_ids.empty()) {
      const txn::PrepareGroup* oldest = prepared.Oldest();
      if (oldest == nullptr || oldest->prepared_in_batch != group_ids.front()) {
        return Status::VerificationFailed(
            "committed segment does not start at the oldest prepare group");
      }
    }
  }

  // LCE: must be the prepare-batch id of the last committed group, or
  // carried forward.
  BatchId expected_lce = log.empty() ? kNoBatch : log.back().batch.ro.lce;
  if (!batch.committed.empty()) {
    expected_lce = batch.committed.back().prepared_in_batch;
  }
  if (batch.ro.lce != expected_lce) {
    return Status::VerificationFailed("LCE mismatch");
  }

  // CD vector: re-run Algorithm 1 and compare.
  CdVector cd = log.empty() ? CdVector(config.num_partitions)
                            : log.back().batch.ro.cd_vector;
  if (cd.empty()) cd = CdVector(config.num_partitions);
  for (const storage::CommitRecord& rec : batch.committed) {
    if (!rec.committed) continue;
    for (const storage::PreparedInfo& info : rec.participant_info) {
      if (info.cd_vector.size() == cd.size()) cd.PairwiseMax(info.cd_vector);
    }
  }
  cd.Set(ctx_->partition(), batch.id);
  if (!(cd == batch.ro.cd_vector)) {
    return Status::VerificationFailed("CD vector mismatch");
  }

  // Merkle root: replay the writes on a clone and compare roots. Under
  // the shared-merkle simulation shortcut, adopt the leader's persistent
  // tree instead of re-hashing identical updates (host-CPU optimization
  // only; simulated validation cost was charged above).
  if (config.simulate_shared_merkle && inst->adopted_snapshot.valid()) {
    if (inst->adopted_snapshot.RootDigest() != batch.ro.merkle_root) {
      return Status::VerificationFailed("shared merkle root mismatch");
    }
    inst->post_tree = merkle::MerkleTree::FromSnapshot(inst->adopted_snapshot);
  } else {
    inst->post_tree = ctx_->mutable_tree().Clone();
    ApplyBatchWritesToTree(&inst->post_tree, ctx_->partition_map(),
                           ctx_->partition(), batch, prepared);
    if (inst->post_tree.RootDigest() != batch.ro.merkle_root) {
      return Status::VerificationFailed("merkle root mismatch");
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// View changes
// ---------------------------------------------------------------------------

void ConsensusEngine::StartViewChangeTimer(BatchId batch_id) {
  uint64_t view_at_start = view_;
  ctx_->Schedule(ctx_->config().view_change_timeout,
                 [this, batch_id, view_at_start] {
                   if (view_ != view_at_start) return;
                   if (ctx_->mutable_log().LastBatchId() >= batch_id) {
                     return;  // Decided in time.
                   }
                   InitiateViewChange(view_ + 1);
                 });
}

void ConsensusEngine::InitiateViewChange(uint64_t new_view) {
  if (new_view <= view_) return;
  auto& votes = view_change_votes_[new_view];
  if (votes.count(ctx_->id()) > 0) return;  // Already voted for this view.
  votes.insert(ctx_->id());

  wire::ViewChangeMsg msg;
  msg.new_view = new_view;
  msg.last_committed = ctx_->mutable_log().LastBatchId();
  Encoder enc;
  enc.PutString("transedge-view-change");
  enc.PutU64(new_view);
  msg.signature = ctx_->Sign(enc.buffer());
  ctx_->BroadcastToCluster(ShareMsg(std::move(msg)),
                           ctx_->Charge(ctx_->config().cost.signature_op));
  MaybeAdoptView(new_view);
}

void ConsensusEngine::MaybeAdoptView(uint64_t target) {
  if (target <= view_) return;
  auto it = view_change_votes_.find(target);
  if (it == view_change_votes_.end() ||
      it->second.size() < ctx_->config().quorum_size()) {
    return;
  }
  view_ = target;
  ++stats_.view_changes;
  // Undecided proposals from the old view are abandoned; clients will
  // retry against the new leader.
  instances_.clear();
  view_change_votes_.erase(target);
  hooks_.on_view_adopted();
}

void ConsensusEngine::HandleViewChange(sim::ActorId from,
                                       const wire::ViewChangeMsg& msg) {
  uint64_t target = msg.new_view;
  if (target <= view_) return;
  auto& votes = view_change_votes_[target];
  votes.insert(from);

  // Join the view change once f+1 replicas demand it (at least one of
  // them is honest), adopt once 2f+1 do.
  if (votes.count(ctx_->id()) == 0 && votes.size() > ctx_->config().f) {
    InitiateViewChange(target);
    return;
  }
  MaybeAdoptView(target);
}

}  // namespace transedge::core
