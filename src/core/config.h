#ifndef TRANSEDGE_CORE_CONFIG_H_
#define TRANSEDGE_CORE_CONFIG_H_

#include <cstdint>
#include <vector>

#include "crypto/key_store.h"
#include "sim/time.h"
#include "storage/storage_kind.h"
#include "txn/types.h"

namespace transedge::core {

/// Simulated CPU costs of the operations a replica performs. The values
/// are calibrated so that the *shapes* of the paper's curves (batching
/// sweet spots, consensus overheads, proof-serving costs) emerge from the
/// same mechanics; see EXPERIMENTS.md for the calibration notes.
struct CostModel {
  /// Leader-side admission: conflict detection for one transaction
  /// (Definition 3.1) against the store and indexes.
  sim::Time admit_per_txn = sim::Micros(12);

  /// Replica-side re-validation of one transaction in a proposed batch.
  sim::Time validate_per_txn = sim::Micros(10);

  /// Applying one transaction's writes (store + Merkle tree).
  sim::Time apply_per_txn = sim::Micros(6);

  /// Fixed per-batch consensus work (digesting, certificate assembly).
  sim::Time batch_overhead = sim::Micros(200);

  /// Superlinear pressure of large batches (bigger conflict indexes,
  /// deeper Merkle churn, larger serialization): nanoseconds charged per
  /// (batch size)^2. This is what bends the throughput curve back down
  /// past the paper's 2000–2500-transaction sweet spot (Figure 9).
  double batch_quadratic_ns = 4.0;

  /// Handling any protocol message.
  sim::Time message_handling = sim::Micros(4);

  /// Serving one key of a read-only request (lookup + audit path).
  sim::Time ro_serve_per_key = sim::Micros(8);

  /// One signature creation or verification.
  sim::Time signature_op = sim::Micros(25);

  /// Recombining one apply shard's Merkle subtree root into the batch
  /// root (only charged when SystemConfig::apply_shards > 1): the merge
  /// of independently applied leaf-index subranges is a per-shard hash
  /// up the shared spine.
  sim::Time apply_shard_recombine = sim::Micros(15);

  // Durable-storage costs (charged only under StorageKind::kPaged, from
  // the backend's StorageIoStats deltas; the in-memory backend reports
  // zero I/O and therefore charges nothing).

  /// Building + buffering one WAL record (decision critical path).
  sim::Time wal_append = sim::Micros(4);

  /// Decoding + re-applying one WAL record during crash recovery.
  sim::Time wal_read = sim::Micros(4);

  /// One fsync barrier (WAL group commit or page-file checkpoint sync).
  sim::Time disk_fsync = sim::Micros(120);

  /// Writing one page (checkpoint flush; charged on the I/O meter).
  sim::Time page_write = sim::Micros(30);

  /// Reading one page (recovery; charged on the I/O meter).
  sim::Time page_read = sim::Micros(25);
};

/// Which intra-cluster consensus engine certifies batches. Every engine
/// produces the same `storage::BatchCertificate` (f+1 replica signatures
/// over the batch/Merkle-root payload), so clients, 2PC proofs, and the
/// read-only verification path are engine-agnostic.
enum class ConsensusKind : uint8_t {
  /// PBFT-style all-to-all voting (§3.2): PrePrepare broadcast, then
  /// every replica broadcasts Prepare and Commit — O(n²) messages per
  /// decided batch.
  kPbft,
  /// HotStuff-style linear voting: the leader broadcasts the proposal,
  /// replicas vote *to the leader*, and the leader broadcasts quorum
  /// certificates for the prepare and commit phases — O(n) messages per
  /// phase.
  kLinearVote,
};

/// Human-readable engine name ("pbft" / "linear_vote") for benches/logs.
const char* ConsensusKindName(ConsensusKind kind);

/// How the leader's sharded batch pipeline routes keys to admission
/// shards (only meaningful when SystemConfig::pipeline_shards > 1).
enum class ShardRouterKind : uint8_t {
  /// Uniform hashing of the key (independent from partition choice and
  /// from the Merkle leaf index).
  kHash,
  /// Contiguous ranges of the Merkle leaf-index space, so a shard's
  /// conflict index covers a contiguous slice of the authenticated tree.
  kRange,
};

/// Static system topology and protocol parameters. Shared by every node,
/// client, and bench harness; node ids are a pure function of
/// (partition, replica index).
struct SystemConfig {
  /// Number of partitions == number of clusters (paper default: 5).
  uint32_t num_partitions = 5;

  /// Number of admission shards the leader's batch pipeline runs over
  /// disjoint key ranges. 1 (default) keeps the single-pipeline leader
  /// byte-for-byte identical to the pre-sharding behavior; >1 admits
  /// through per-shard conflict indexes and merges the shard segments
  /// into one proposed batch, so consensus, 2PC, and the read-only path
  /// are untouched.
  uint32_t pipeline_shards = 1;

  /// Key -> shard routing policy of the sharded pipeline.
  ShardRouterKind pipeline_shard_router = ShardRouterKind::kHash;

  /// Intra-cluster consensus engine (see ConsensusKind). The default
  /// keeps the PBFT-style engine byte-for-byte identical to the
  /// pre-interface behavior.
  ConsensusKind consensus_kind = ConsensusKind::kPbft;

  /// Maximum consensus instances in flight at once (chained pipelining):
  /// with depth k the leader may propose batch n+k-1 while batch n's
  /// commit QC is still collecting. 1 (default) keeps the strictly
  /// sequential decide-then-propose behavior byte-for-byte identical to
  /// the pre-pipelining code. Engines cap this at their own
  /// Consensus::MaxPipelineDepth (the PBFT engine pins 1).
  uint32_t pipeline_depth = 1;

  /// Decouple *applying* a decided batch (store writes, Merkle snapshot
  /// publication, client fan-out) from *deciding* it: decided batches
  /// land in an ordered apply queue drained by a separate sim-scheduled
  /// apply worker, so consensus advances on the decided watermark while
  /// the storage stack catches up. false (default) applies synchronously
  /// inside the decision, byte-for-byte identical to the pre-queue code.
  bool async_apply = false;

  /// Which storage engine backs each replica's store + log (see
  /// storage::StorageKind). The default keeps the in-memory stack
  /// byte-for-byte identical to the pre-seam behavior; kPaged adds a
  /// WAL + checkpoint on a per-replica simulated disk and survives
  /// crash-restart.
  storage::StorageKind storage_kind = storage::StorageKind::kInMemory;

  /// Durability knobs of the paged backend (page size, bucket count,
  /// group commit, checkpoint cadence). `num_partitions`/`partition`
  /// are overwritten per node; the rest are honored as configured.
  storage::StorageTuning durability;

  /// Number of leaf-index subranges the apply work is carved into
  /// (ShardRouterKind::kRange carving). Each shard applies its subtree
  /// independently; the simulated cost charges the *slowest* shard plus
  /// a per-shard recombine term instead of the serial sum. 1 (default)
  /// charges the exact pre-sharding serial cost.
  uint32_t apply_shards = 1;

  /// Tolerated byzantine failures per cluster (paper default: 2, i.e.
  /// 7 replicas per cluster).
  uint32_t f = 2;

  /// Leader writes a batch at least this often when there is work.
  sim::Time batch_interval = sim::Millis(10);

  /// Size trigger: the leader proposes early once the in-progress batch
  /// holds this many transactions.
  size_t max_batch_size = 2000;

  /// Merkle tree depth (2^depth leaf buckets).
  int merkle_depth = 13;

  /// Freshness window for batch timestamps (§4.4.2).
  sim::Time freshness_window = sim::Seconds(30);

  /// Replica progress timeout before initiating a view change.
  sim::Time view_change_timeout = sim::Millis(300);

  /// Client request timeout before retrying against the next replica.
  sim::Time client_timeout = sim::Seconds(2);

  /// Read-only round policy. The paper's protocol terminates after the
  /// second round (Theorem 4.6). Our reproduction found a corner the
  /// theorem's transitivity argument does not cover: the batch serving a
  /// second-round request may *collaterally* commit additional prepare
  /// groups whose dependencies no first-round CD vector reported (see
  /// DESIGN.md §4). With `strict_ro_rounds` the client keeps issuing
  /// targeted rounds until the dependency check passes (observed to
  /// settle within 3-4 rounds); without it the client behaves exactly as
  /// the paper specifies and counts the residual cases in
  /// `ClientStats::ro_third_round_would_be_needed`.
  bool strict_ro_rounds = false;
  int max_ro_rounds = 8;

  /// Number of per-batch Merkle snapshots (and key-version history) a
  /// replica retains for historical (second-round) reads. Dependencies
  /// are always recent, so a bounded window suffices; it also bounds
  /// memory in long runs.
  size_t snapshot_history = 512;

  /// Simulation-performance shortcut for the bench harness (host CPU
  /// only — simulated time is charged identically): honest followers
  /// adopt the leader's persistent post-batch tree snapshot instead of
  /// re-hashing the identical updates themselves. Validation still
  /// recomputes conflict checks, CD vectors, and LCE; only the Merkle
  /// *recomputation* is deduplicated. Tests run with this off so the
  /// byzantine root-mismatch path stays exercised.
  bool simulate_shared_merkle = false;

  CostModel cost;

  uint32_t replicas_per_cluster() const { return 3 * f + 1; }
  uint32_t quorum_size() const { return 2 * f + 1; }
  uint32_t certificate_size() const { return f + 1; }
  uint32_t total_replicas() const {
    return num_partitions * replicas_per_cluster();
  }

  /// Node id of replica `index` of partition `p`.
  crypto::NodeId ReplicaNode(PartitionId p, uint32_t index) const {
    return p * replicas_per_cluster() + index;
  }
  PartitionId PartitionOfNode(crypto::NodeId id) const {
    return id / replicas_per_cluster();
  }
  uint32_t ReplicaIndexOf(crypto::NodeId id) const {
    return id % replicas_per_cluster();
  }
  bool IsReplicaNode(crypto::NodeId id) const {
    return id < total_replicas();
  }

  /// Leader of partition `p` in `view` (round-robin rotation).
  crypto::NodeId LeaderOf(PartitionId p, uint64_t view) const {
    return ReplicaNode(p, static_cast<uint32_t>(view % replicas_per_cluster()));
  }

  std::vector<crypto::NodeId> ClusterMembers(PartitionId p) const {
    std::vector<crypto::NodeId> members;
    members.reserve(replicas_per_cluster());
    for (uint32_t i = 0; i < replicas_per_cluster(); ++i) {
      members.push_back(ReplicaNode(p, i));
    }
    return members;
  }

  /// Client ids start above all replica ids.
  crypto::NodeId ClientNode(uint32_t client_index) const {
    return total_replicas() + client_index;
  }
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_CONFIG_H_
