#include "core/ro_lock_table.h"

namespace transedge::core {

void RoLockTable::Lock(uint64_t request_id, const std::vector<Key>& keys) {
  // A re-lock under the same request id (client retry / duplicate
  // delivery) replaces the old entry; releasing it first keeps the
  // shared counts balanced — overwriting `by_request_` would leak the
  // first call's counts and block writers on those keys forever.
  Release(request_id);
  for (const Key& k : keys) ++shared_[k];
  by_request_[request_id] = keys;
}

void RoLockTable::Release(uint64_t request_id) {
  auto it = by_request_.find(request_id);
  if (it == by_request_.end()) return;
  for (const Key& k : it->second) {
    auto sit = shared_.find(k);
    if (sit != shared_.end() && --sit->second <= 0) shared_.erase(sit);
  }
  by_request_.erase(it);
}

bool RoLockTable::BlocksWriter(const Transaction& txn) const {
  if (shared_.empty()) return false;
  for (const WriteOp& w : txn.write_set) {
    if (shared_.count(w.key) > 0) return true;
  }
  return false;
}

}  // namespace transedge::core
