#ifndef TRANSEDGE_CORE_WATCH_CLIENT_H_
#define TRANSEDGE_CORE_WATCH_CLIENT_H_

#include <map>
#include <optional>
#include <vector>

#include "core/config.h"
#include "crypto/signer.h"
#include "sim/environment.h"
#include "storage/partition_map.h"
#include "wire/message.h"

namespace transedge::core {

/// Client side of the watch/subscription push tier: registers one key
/// range on every partition's leader and maintains a read-through edge
/// cache of certified `(value, proof, batch_id)` entries, updated by the
/// pushed delta stream. Every seed and delta is verified exactly like a
/// round-1 read-only reply (certificate quorum + per-key Merkle proof
/// against the certified root) before it touches the cache, so the cache
/// never holds a value the cluster did not certify.
///
/// Stream integrity is client-enforced:
///   - each delta must chain on the previous one (`prev_batch_id` equals
///     the last batch seen); a discontinuity counts as a gap and triggers
///     a resume from the last verified position;
///   - deltas at or below the last seen batch are dropped as duplicates
///     (cache already reflects them);
///   - deltas from a stale watch epoch (pre-view-change stream) are
///     dropped outright;
///   - an explicit WatchResubscribeRequired, or sustained silence from
///     the leader (crash, demotion), rotates the view hint and
///     resubscribes — resuming when the server still retains the replay
///     window, reseeding from scratch when it does not.
class WatchClient : public sim::Actor {
 public:
  /// One certified cache entry: the value (or certified absence) as of
  /// `batch_id`, which carried the proof that admitted it.
  struct CachedRead {
    bool found = false;
    Value value;
    BatchId version = kNoBatch;
    BatchId batch_id = kNoBatch;
  };

  struct Stats {
    uint64_t seeds_applied = 0;
    uint64_t deltas_applied = 0;
    uint64_t keys_updated = 0;
    uint64_t duplicates_dropped = 0;
    uint64_t gaps_detected = 0;
    uint64_t stale_epoch_dropped = 0;
    uint64_t resubscribes = 0;
    uint64_t verification_failures = 0;
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
  };

  WatchClient(const SystemConfig& config, crypto::NodeId id,
              sim::Environment* env, const crypto::Verifier* verifier);

  void OnStart() override {}
  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override;

  /// Subscribes to `[lo, hi]` on every partition's leader. One range per
  /// client; calling again replaces the previous range.
  void Watch(Key lo, Key hi);

  /// Unsubscribes everywhere and stops the idle-resubscribe timers. The
  /// cache is kept (it stays valid as-of its batch ids, just no longer
  /// maintained).
  void Unwatch();

  /// Read-through lookup: null on a miss (key never pushed, or outside
  /// the watched range). Counts hits/misses for the bench harness.
  const CachedRead* Lookup(const Key& key);

  /// True once every partition's subscription is live.
  bool AllSubscribed() const;

  crypto::NodeId id() const { return id_; }
  const Stats& stats() const { return stats_; }
  const std::map<Key, CachedRead>& cache() const { return cache_; }

 private:
  /// Per-partition subscription state.
  struct Sub {
    uint64_t watch_id = 0;
    uint64_t epoch = 0;          // Server watch epoch of the live stream.
    BatchId last_seen = kNoBatch;  // Chain position (verified).
    bool active = false;         // Seeded/resumed and not since flushed.
    uint64_t timer_epoch = 0;    // Invalidates stale idle-timer closures.
  };

  void Subscribe(PartitionId p, BatchId resume_from);
  void HandleSubscribeReply(const wire::WatchSubscribeReply& msg);
  void HandleDelta(const wire::WatchDeltaMsg& msg);
  void HandleResubscribeRequired(const wire::WatchResubscribeRequired& msg);

  /// Certificate + per-key proof verification, mirroring the round-1
  /// read-only check (§4.2) minus the ro-segment digest (watch payloads
  /// carry no CD vector).
  Status VerifyCertifiedEntries(
      PartitionId partition, BatchId batch_id,
      const std::vector<wire::AuthenticatedRead>& entries,
      const storage::BatchCertificate& certificate) const;

  void ApplyEntries(BatchId batch_id,
                    const std::vector<wire::AuthenticatedRead>& entries);

  /// Arms (or re-arms) the silence detector for partition `p`: if no
  /// watch traffic arrives within client_timeout, resubscribe — to the
  /// same leader first, rotating the view hint once that too stays
  /// silent.
  void ArmIdleTimer(PartitionId p);

  crypto::NodeId LeaderOf(PartitionId p) const {
    return config_.LeaderOf(p, view_hint_[p]);
  }

  SystemConfig config_;
  crypto::NodeId id_;
  sim::Environment* env_;
  const crypto::Verifier* verifier_;
  storage::PartitionMap partition_map_;
  std::vector<uint64_t> view_hint_;

  bool watching_ = false;
  Key lo_;
  Key hi_;
  std::vector<Sub> subs_;  // Indexed by partition.
  std::map<Key, CachedRead> cache_;
  uint64_t next_watch_id_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_WATCH_CLIENT_H_
