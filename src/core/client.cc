#include "core/client.h"

#include <algorithm>
#include <cassert>

#include "merkle/merkle_tree.h"

namespace transedge::core {

namespace {
template <typename T>
std::shared_ptr<const T> Share(T msg) {
  return std::make_shared<const T>(std::move(msg));
}
}  // namespace

Client::Client(const SystemConfig& config, crypto::NodeId id,
               sim::Environment* env, const crypto::Verifier* verifier)
    : config_(config),
      id_(id),
      env_(env),
      verifier_(verifier),
      partition_map_(config.num_partitions),
      view_hint_(config.num_partitions, 0),
      // Request ids are globally unique (client id in the high bits):
      // nodes key per-request state (Augustus locks, parked reads) by
      // them, so two clients must never collide.
      next_request_id_((static_cast<uint64_t>(id) << 32) | 1) {}

void Client::OnMessage(sim::ActorId from, const sim::MessagePtr& msg) {
  (void)from;
  using wire::MessageType;
  switch (static_cast<MessageType>(msg->type())) {
    case MessageType::kClientReadReply:
      HandleClientReadReply(static_cast<const wire::ClientReadReply&>(*msg));
      break;
    case MessageType::kCommitReply:
      HandleCommitReply(static_cast<const wire::CommitReply&>(*msg));
      break;
    case MessageType::kRoReply:
      HandleRoReply(static_cast<const wire::RoReply&>(*msg));
      break;
    case MessageType::kAugustusRoReply:
      HandleAugustusRoReply(static_cast<const wire::AugustusRoReply&>(*msg));
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Read-write transactions
// ---------------------------------------------------------------------------

void Client::ExecuteReadWrite(std::vector<Key> read_keys,
                              std::vector<WriteOp> writes, RwCallback done) {
  uint64_t op_id = next_request_id_++;
  RwOp& op = rw_ops_[op_id];
  op.read_keys = std::move(read_keys);
  op.writes = std::move(writes);
  op.done = std::move(done);
  op.start = env_->now();
  op.txn_id = MakeTxnId(id_, next_txn_seq_++);
  txn_op_[op.txn_id] = op_id;

  if (op.read_keys.empty()) {
    SendCommit(&op);
    ArmRwTimeout(op_id);
    return;
  }
  for (const Key& key : op.read_keys) {
    uint64_t req = next_request_id_++;
    request_op_[req] = op_id;
    op.read_request_keys[req] = key;
    ++op.reads_outstanding;
    wire::ClientReadRequest msg;
    msg.request_id = req;
    msg.reply_to = id_;
    msg.key = key;
    env_->network().Send(id_, LeaderOf(partition_map_.OwnerOf(key)),
                         Share(std::move(msg)));
  }
  ArmRwTimeout(op_id);
}

void Client::ExecuteReadOnlyAsRegular(std::vector<Key> keys, RwCallback done) {
  // The 2PC/BFT baseline (§3.5): the same reads, committed as a regular
  // transaction with an empty write set through BFT consensus + 2PC.
  ExecuteReadWrite(std::move(keys), {}, std::move(done));
}

void Client::HandleClientReadReply(const wire::ClientReadReply& msg) {
  auto req_it = request_op_.find(msg.request_id);
  if (req_it == request_op_.end()) return;
  uint64_t op_id = req_it->second;
  request_op_.erase(req_it);
  auto op_it = rw_ops_.find(op_id);
  if (op_it == rw_ops_.end()) return;
  RwOp& op = op_it->second;

  op.reads[msg.key] = {msg.found ? std::optional<Value>(msg.value)
                                 : std::nullopt,
                       msg.version};
  if (--op.reads_outstanding == 0 && !op.commit_sent) {
    SendCommit(&op);
  }
}

void Client::SendCommit(RwOp* op) {
  op->commit_sent = true;
  Transaction txn;
  txn.id = op->txn_id;
  for (const Key& key : op->read_keys) {
    auto it = op->reads.find(key);
    BatchId version = it != op->reads.end() ? it->second.second : kNoBatch;
    txn.read_set.push_back(ReadOp{key, version});
  }
  txn.write_set = op->writes;
  txn.participants =
      partition_map_.ParticipantsOf(txn.read_set, txn.write_set);
  // The client picks one accessed cluster as coordinator (§3.3.1);
  // spread the choice deterministically across participants.
  txn.coordinator =
      txn.participants[op->txn_id % txn.participants.size()];

  auto msg = std::make_shared<const wire::CommitRequest>([&] {
    wire::CommitRequest m;
    m.reply_to = id_;
    m.txn = txn;
    return m;
  }());
  if (op->retries_left < 3) {
    // Retry path: the leader may be faulty. Send to every replica of the
    // coordinator cluster (§3.3.1's f+1 fan-out, widened so that 2f+1
    // honest replicas arm progress timers); followers forward to their
    // leader and the leader deduplicates.
    for (crypto::NodeId member : config_.ClusterMembers(txn.coordinator)) {
      env_->network().Send(id_, member, msg);
    }
  } else {
    env_->network().Send(id_, LeaderOf(txn.coordinator), msg);
  }
}

void Client::HandleCommitReply(const wire::CommitReply& msg) {
  auto txn_it = txn_op_.find(msg.txn_id);
  if (txn_it == txn_op_.end()) return;
  uint64_t op_id = txn_it->second;
  auto op_it = rw_ops_.find(op_id);
  if (op_it == rw_ops_.end()) return;
  RwOp& op = op_it->second;

  if (!msg.committed && msg.retryable) {
    // A view change abandoned the admission; the transaction was never
    // decided, so re-issue it against the new leader instead of
    // surfacing an abort. A reply can only answer a sent commit: if this
    // attempt has not sent one yet (a timeout already re-issued and the
    // old leader's abort arrived late), the abort belongs to a
    // superseded attempt — drop it and let the live attempt proceed.
    if (!op.commit_sent) return;
    if (RetryRw(op_id)) return;
    // Retries exhausted. The abort may still be stale (a delayed reply
    // to an earlier attempt while the live one is deciding), and a
    // retryable abort never carries a final decision — never surface it
    // as one. The live attempt's own reply or the timeout resolves the
    // op.
    return;
  }

  RwResult result;
  result.txn_id = msg.txn_id;
  result.committed = msg.committed;
  result.reason = msg.reason;
  result.latency = env_->now() - op.start;
  for (const auto& [key, read] : op.reads) result.reads[key] = read.first;
  FinishRw(op_id, std::move(result));
}

void Client::FinishRw(uint64_t op_id, RwResult result) {
  auto op_it = rw_ops_.find(op_id);
  if (op_it == rw_ops_.end()) return;
  RwOp op = std::move(op_it->second);
  rw_ops_.erase(op_it);
  txn_op_.erase(op.txn_id);
  // check:allow(unordered-iter): only erases point entries from
  // request_op_; no externally visible effect depends on iteration order.
  for (const auto& [req, key] : op.read_request_keys) request_op_.erase(req);
  if (result.committed) {
    ++stats_.rw_committed;
  } else {
    ++stats_.rw_aborted;
  }
  if (op.done) op.done(std::move(result));
}

bool Client::RetryRw(uint64_t op_id) {
  auto it = rw_ops_.find(op_id);
  if (it == rw_ops_.end()) return false;
  RwOp& op = it->second;
  if (op.retries_left-- <= 0) return false;
  // Rotate the leader hint for every touched partition and retry.
  for (uint64_t& hint : view_hint_) ++hint;
  op.commit_sent = false;
  op.reads.clear();
  op.reads_outstanding = 0;
  // check:allow(unordered-iter): only erases point entries from
  // request_op_; no externally visible effect depends on iteration order.
  for (const auto& [req, key] : op.read_request_keys) {
    request_op_.erase(req);
  }
  op.read_request_keys.clear();
  std::vector<Key> read_keys = op.read_keys;
  std::vector<WriteOp> writes = op.writes;
  RwCallback done = std::move(op.done);
  TxnId txn_id = op.txn_id;
  sim::Time start = op.start;
  int retries = op.retries_left;
  rw_ops_.erase(it);
  txn_op_.erase(txn_id);
  // Re-issue with the same transaction id (the new leader has not
  // seen it; dedup protects against the old one).
  uint64_t new_op = next_request_id_++;
  RwOp& fresh = rw_ops_[new_op];
  fresh.read_keys = std::move(read_keys);
  fresh.writes = std::move(writes);
  fresh.done = std::move(done);
  fresh.start = start;
  fresh.txn_id = txn_id;
  fresh.retries_left = retries;
  txn_op_[txn_id] = new_op;
  if (fresh.read_keys.empty()) {
    SendCommit(&fresh);
  } else {
    for (const Key& key : fresh.read_keys) {
      uint64_t req = next_request_id_++;
      request_op_[req] = new_op;
      fresh.read_request_keys[req] = key;
      ++fresh.reads_outstanding;
      wire::ClientReadRequest msg;
      msg.request_id = req;
      msg.reply_to = id_;
      msg.key = key;
      env_->network().Send(id_, LeaderOf(partition_map_.OwnerOf(key)),
                           Share(std::move(msg)));
    }
  }
  ArmRwTimeout(new_op);
  return true;
}

void Client::ArmRwTimeout(uint64_t op_id) {
  auto op_it = rw_ops_.find(op_id);
  if (op_it == rw_ops_.end()) return;
  uint64_t epoch = ++op_it->second.epoch;
  env_->Schedule(config_.client_timeout, [this, op_id, epoch] {
    auto it = rw_ops_.find(op_id);
    if (it == rw_ops_.end() || it->second.epoch != epoch) return;
    if (RetryRw(op_id)) return;
    ++stats_.timeouts;
    RwOp& op = rw_ops_.find(op_id)->second;
    RwResult result;
    result.txn_id = op.txn_id;
    result.committed = false;
    result.reason = "client timeout";
    result.latency = env_->now() - op.start;
    FinishRw(op_id, std::move(result));
  });
}

// ---------------------------------------------------------------------------
// Read-only transactions (TransEdge protocol)
// ---------------------------------------------------------------------------

void Client::ExecuteReadOnly(std::vector<Key> keys, RoCallback done) {
  uint64_t op_id = next_request_id_++;
  RoOp& op = ro_ops_[op_id];
  op.keys = std::move(keys);
  op.done = std::move(done);
  op.start = env_->now();
  for (const Key& key : op.keys) {
    op.by_partition[partition_map_.OwnerOf(key)].push_back(key);
  }
  for (const auto& [partition, part_keys] : op.by_partition) {
    uint64_t req = next_request_id_++;
    request_op_[req] = op_id;
    ++op.outstanding;
    wire::RoRequest msg;
    msg.request_id = req;
    msg.reply_to = id_;
    msg.keys = part_keys;
    env_->network().Send(id_, LeaderOf(partition), Share(std::move(msg)));
  }
  ArmRoTimeout(op_id);
}

Status Client::VerifyRoReply(const wire::RoReply& reply) {
  // 1. Certificate: f+1 distinct replica signatures over
  //    (partition, batch, digest, root, ro-segment digest).
  if (reply.certificate.partition != reply.partition ||
      reply.certificate.batch_id != reply.batch_id) {
    return Status::VerificationFailed("certificate does not match reply");
  }
  TE_RETURN_IF_ERROR(reply.certificate.Verify(
      *verifier_, config_.certificate_size(),
      config_.ClusterMembers(reply.partition)));

  // 2. Read-only segment authenticity: CD vector, LCE, and timestamp
  //    must hash to the digest covered by the certificate.
  storage::ReadOnlySegment segment;
  segment.cd_vector = reply.cd_vector;
  segment.lce = reply.lce;
  segment.merkle_root = reply.certificate.merkle_root;
  segment.timestamp_us = reply.timestamp_us;
  if (segment.ComputeDigest() != reply.certificate.ro_digest) {
    return Status::VerificationFailed("read-only segment tampered");
  }

  // 3. Every value against the Merkle root (§4.2).
  for (const wire::AuthenticatedRead& read : reply.entries) {
    if (read.found) {
      TE_RETURN_IF_ERROR(merkle::MerkleTree::VerifyProof(
          read.proof, read.key, read.value, read.version,
          reply.certificate.merkle_root));
    } else {
      TE_RETURN_IF_ERROR(merkle::MerkleTree::VerifyAbsence(
          read.proof, read.key, reply.certificate.merkle_root));
    }
  }
  return Status::OK();
}

std::map<PartitionId, BatchId> Client::VerifyDependencies(
    const std::map<PartitionId, wire::RoReply>& replies) const {
  // Algorithm 2: for every pair of accessed partitions (i, j), the
  // dependency V_i[j] must be covered by partition j's LCE.
  std::map<PartitionId, txn::RoPartitionView> views;
  for (const auto& [partition, reply] : replies) {
    views[partition] = txn::RoPartitionView{reply.cd_vector, reply.lce};
  }
  return txn::ComputeUnsatisfiedDependencies(views);
}

void Client::HandleRoReply(const wire::RoReply& msg) {
  auto req_it = request_op_.find(msg.request_id);
  if (req_it == request_op_.end()) return;
  uint64_t op_id = req_it->second;
  request_op_.erase(req_it);
  auto op_it = ro_ops_.find(op_id);
  if (op_it == ro_ops_.end()) return;
  RoOp& op = op_it->second;

  if (msg.batch_id == kNoBatch) {
    // Partition has no certified batch yet; retry shortly.
    env_->Schedule(sim::Millis(5), [this, op_id, partition = msg.partition] {
      auto it = ro_ops_.find(op_id);
      if (it == ro_ops_.end()) return;
      uint64_t req = next_request_id_++;
      request_op_[req] = op_id;
      wire::RoRequest retry;
      retry.request_id = req;
      retry.reply_to = id_;
      retry.keys = it->second.by_partition[partition];
      env_->network().Send(id_, LeaderOf(partition), Share(std::move(retry)));
    });
    return;
  }

  Status verified = VerifyRoReply(msg);
  if (!verified.ok()) {
    ++stats_.ro_verification_failures;
    RoResult result;
    result.status = verified;
    result.latency = env_->now() - op.start;
    result.rounds = op.rounds;
    FinishRo(op_id, std::move(result));
    return;
  }

  if (check_freshness_) {
    int64_t age = env_->now() - msg.timestamp_us;
    if (age > config_.freshness_window || age < -config_.freshness_window) {
      op.fresh = false;
    }
  }

  op.replies[msg.partition] = msg;
  if (--op.outstanding > 0) return;

  if (op.rounds == 1) op.round1_done = env_->now();
  std::map<PartitionId, BatchId> needed;
  if (verify_dependencies_) needed = VerifyDependencies(op.replies);
  if (!needed.empty()) {
    // The paper's protocol runs exactly one corrective round (Theorem
    // 4.6); strict mode keeps iterating until the check passes — see
    // SystemConfig::strict_ro_rounds for why the corner exists.
    bool may_continue =
        op.rounds < 2 ||
        (config_.strict_ro_rounds && op.rounds < config_.max_ro_rounds);
    if (may_continue) {
      StartRoRound2(op_id, needed);
      return;
    }
  }

  // Assemble the final snapshot.
  RoResult result;
  result.status = Status::OK();
  result.rounds = op.rounds;
  result.latency = env_->now() - op.start;
  result.round1_latency =
      (op.round1_done != 0 ? op.round1_done : env_->now()) - op.start;
  result.fresh = op.fresh;
  for (const auto& [partition, reply] : op.replies) {
    for (const wire::AuthenticatedRead& read : reply.entries) {
      result.values[read.key] =
          read.found ? std::optional<Value>(read.value) : std::nullopt;
    }
  }
  if (!needed.empty()) {
    // Residual unsatisfied dependency after the paper's two rounds — the
    // diagnostic Theorem 4.6 claims is impossible (see DESIGN.md §4).
    result.needed_third_round = true;
    ++stats_.ro_third_round_would_be_needed;
  }
  FinishRo(op_id, std::move(result));
}

void Client::StartRoRound2(uint64_t op_id,
                           const std::map<PartitionId, BatchId>& needed) {
  auto op_it = ro_ops_.find(op_id);
  if (op_it == ro_ops_.end()) return;
  RoOp& op = op_it->second;
  op.second_round = true;
  ++op.rounds;
  for (const auto& [partition, min_lce] : needed) {
    uint64_t req = next_request_id_++;
    request_op_[req] = op_id;
    ++op.outstanding;
    wire::RoBatchRequest msg;
    msg.request_id = req;
    msg.reply_to = id_;
    msg.keys = op.by_partition[partition];
    msg.min_lce = min_lce;
    env_->network().Send(id_, LeaderOf(partition), Share(std::move(msg)));
  }
}

void Client::FinishRo(uint64_t op_id, RoResult result) {
  auto op_it = ro_ops_.find(op_id);
  if (op_it == ro_ops_.end()) return;
  RoOp op = std::move(op_it->second);
  ro_ops_.erase(op_it);
  if (result.status.ok()) {
    ++stats_.ro_completed;
    if (result.rounds > 1) ++stats_.ro_two_round;
  }
  if (op.done) op.done(std::move(result));
}

void Client::ArmRoTimeout(uint64_t op_id) {
  auto op_it = ro_ops_.find(op_id);
  if (op_it == ro_ops_.end()) return;
  uint64_t epoch = ++op_it->second.epoch;
  env_->Schedule(config_.client_timeout, [this, op_id, epoch] {
    auto it = ro_ops_.find(op_id);
    if (it == ro_ops_.end() || it->second.epoch != epoch) return;
    ++stats_.timeouts;
    RoResult result;
    result.status = Status::Timeout("read-only transaction timed out");
    result.latency = env_->now() - it->second.start;
    result.rounds = it->second.rounds;
    FinishRo(op_id, std::move(result));
  });
}

// ---------------------------------------------------------------------------
// Augustus baseline
// ---------------------------------------------------------------------------

void Client::ExecuteAugustusReadOnly(std::vector<Key> keys, RoCallback done) {
  uint64_t op_id = next_request_id_++;
  RoOp& op = ro_ops_[op_id];
  op.keys = std::move(keys);
  op.done = std::move(done);
  op.start = env_->now();
  op.augustus = true;
  for (const Key& key : op.keys) {
    op.by_partition[partition_map_.OwnerOf(key)].push_back(key);
  }
  for (const auto& [partition, part_keys] : op.by_partition) {
    uint64_t req = next_request_id_++;
    request_op_[req] = op_id;
    op.augustus_request_ids[partition] = req;
    ++op.outstanding;
    wire::AugustusRoRequest msg;
    msg.request_id = req;
    msg.reply_to = id_;
    msg.keys = part_keys;
    env_->network().Send(id_, LeaderOf(partition), Share(std::move(msg)));
  }
  ArmRoTimeout(op_id);
}

void Client::HandleAugustusRoReply(const wire::AugustusRoReply& msg) {
  auto req_it = request_op_.find(msg.request_id);
  if (req_it == request_op_.end()) return;
  uint64_t op_id = req_it->second;
  uint64_t request_id = msg.request_id;
  request_op_.erase(req_it);
  auto op_it = ro_ops_.find(op_id);
  if (op_it == ro_ops_.end()) return;
  RoOp& op = op_it->second;

  (void)request_id;
  op.augustus_replies[msg.partition] = msg;
  if (--op.outstanding > 0) return;

  // Locks are held until the whole transaction finishes — that is what
  // makes Augustus read-only transactions interfere with writers. Only
  // now release every partition's shared locks.
  for (const auto& [partition, req] : op.augustus_request_ids) {
    wire::AugustusRelease release;
    release.request_id = req;
    env_->network().Send(id_, LeaderOf(partition), Share(std::move(release)));
  }

  RoResult result;
  result.status = Status::OK();
  result.rounds = 1;
  result.latency = env_->now() - op.start;
  result.round1_latency = result.latency;
  for (const auto& [partition, reply] : op.augustus_replies) {
    for (const wire::AuthenticatedRead& read : reply.entries) {
      result.values[read.key] =
          read.found ? std::optional<Value>(read.value) : std::nullopt;
    }
  }
  FinishRo(op_id, std::move(result));
}

}  // namespace transedge::core
