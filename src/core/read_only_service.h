#ifndef TRANSEDGE_CORE_READ_ONLY_SERVICE_H_
#define TRANSEDGE_CORE_READ_ONLY_SERVICE_H_

#include <vector>

#include "core/node_context.h"
#include "wire/message.h"

namespace transedge::core {

/// Server side of the paper's read-only protocol (§4.2–4.4): round-1
/// serving from the latest certified batch, round-2 (historical) serving
/// from the earliest batch whose LCE satisfies the client's dependency,
/// parking of round-2 requests whose dependency has not committed yet,
/// and plain single-key client reads.
class ReadOnlyService {
 public:
  struct Stats {
    uint64_t ro_round1_served = 0;
    uint64_t ro_round2_served = 0;
    uint64_t ro_round2_parked = 0;
    /// Round-2 requests answered unserviceable because the dependency
    /// lies beyond any batch this cluster could have certified.
    uint64_t ro_round2_rejected = 0;
    /// Parked round-2 requests flushed with a retryable reply because a
    /// view change or history truncation stranded them.
    uint64_t ro_round2_aborted = 0;
  };

  explicit ReadOnlyService(NodeContext* ctx);

  /// Single-key read while a client assembles a read-write transaction.
  void HandleClientRead(sim::ActorId from, const wire::ClientReadRequest& msg);

  void HandleRoRequest(sim::ActorId from, const wire::RoRequest& msg);
  void HandleRoBatchRequest(sim::ActorId from, const wire::RoBatchRequest& msg);

  /// Re-examines parked round-2 requests after the log advanced.
  void ServeParkedRequests();

  /// View adoption: the cluster elected a new leader, so requests parked
  /// on this (possibly demoted) replica would strand — their clients
  /// have rotated away. Flush each with a retryable unserviceable reply.
  void OnViewChange();

  /// History truncated up to `horizon`: a request parked before the
  /// entire retained window rotated past it has waited snapshot_history
  /// batches without its dependency committing — no honest dependency
  /// does that (round-1 dependencies sit near the log head). Flush it
  /// with a retryable reply instead of leaking it.
  void OnHistoryTruncated(BatchId horizon);

  const Stats& stats() const { return stats_; }

 private:
  /// Builds an authenticated response from log position `batch_id`.
  /// Fails when the batch (or its snapshot) is outside the retained
  /// window; callers reply unserviceable instead of dereferencing an
  /// error Result.
  Result<wire::RoReply> BuildRoReply(uint64_t request_id,
                                     const std::vector<Key>& keys,
                                     BatchId batch_id, bool second_round);
  /// "No certified state can serve this" reply (batch_id == kNoBatch).
  wire::RoReply UnserviceableReply(uint64_t request_id) const;
  /// Earliest batch whose LCE satisfies `min_lce`; kNoBatch when none.
  BatchId FindBatchWithLce(BatchId min_lce) const;

  NodeContext* ctx_;

  // Parked second-round read-only requests (waiting for an LCE).
  struct ParkedRo {
    sim::ActorId client = 0;
    wire::RoBatchRequest request;
    /// Log tail when the request parked; OnHistoryTruncated bounds the
    /// wait against the retained window with it.
    BatchId parked_tail = kNoBatch;
  };
  std::vector<ParkedRo> parked_ro_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_READ_ONLY_SERVICE_H_
