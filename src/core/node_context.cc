#include "core/node_context.h"

#include <algorithm>

#include "wire/message.h"

namespace transedge::core {

Transaction NodeContext::RestrictToPartition(const Transaction& txn) const {
  Transaction out;
  out.id = txn.id;
  out.participants = txn.participants;
  out.coordinator = txn.coordinator;
  out.read_set = partition_map().ReadsFor(txn, partition());
  out.write_set = partition_map().WritesFor(txn, partition());
  return out;
}

sim::Time NodeContext::BatchComputeCost(size_t batch_size,
                                        sim::Time per_txn) const {
  double quad = config().cost.batch_quadratic_ns *
                static_cast<double>(batch_size) *
                static_cast<double>(batch_size) / 1000.0;
  return config().cost.batch_overhead +
         per_txn * static_cast<sim::Time>(batch_size) +
         static_cast<sim::Time>(quad);
}

sim::Time NodeContext::ShardedBatchComputeCost(
    const std::vector<size_t>& shard_sizes, sim::Time per_txn) const {
  size_t total = 0;
  double quad = 0.0;
  for (size_t n : shard_sizes) {
    total += n;
    quad += config().cost.batch_quadratic_ns * static_cast<double>(n) *
            static_cast<double>(n) / 1000.0;
  }
  return config().cost.batch_overhead +
         per_txn * static_cast<sim::Time>(total) +
         static_cast<sim::Time>(quad);
}

Status NodeContext::CheckReadVersions(const Transaction& txn) const {
  for (const ReadOp& r : txn.read_set) {
    BatchId latest = LatestDecidedVersion(r.key);
    if (latest != r.version) {
      return Status::Conflict("read of key '" + r.key + "' at version " +
                              std::to_string(r.version) +
                              " overwritten; latest is " +
                              std::to_string(latest));
    }
  }
  return Status::OK();
}

sim::Time NodeContext::ShardedApplyCost(
    size_t batch_size, const std::vector<size_t>& shard_write_loads) const {
  const CostModel& cost = config().cost;
  size_t shards = shard_write_loads.size();
  if (shards <= 1) {
    return BatchComputeCost(batch_size, cost.apply_per_txn);
  }
  size_t total_writes = 0;
  size_t max_writes = 0;
  for (size_t w : shard_write_loads) {
    total_writes += w;
    max_writes = std::max(max_writes, w);
  }
  double quad = config().cost.batch_quadratic_ns *
                static_cast<double>(batch_size) *
                static_cast<double>(batch_size) / 1000.0;
  sim::Time variable_serial =
      cost.apply_per_txn * static_cast<sim::Time>(batch_size) +
      static_cast<sim::Time>(quad);
  // Wall-clock of the parallel section is the slowest shard; a batch
  // with no writes still pays the serial variable term divided evenly.
  sim::Time parallel =
      total_writes == 0
          ? variable_serial / static_cast<sim::Time>(shards)
          : static_cast<sim::Time>(
                static_cast<double>(variable_serial) *
                static_cast<double>(max_writes) /
                static_cast<double>(total_writes));
  return cost.batch_overhead + parallel +
         cost.apply_shard_recombine * static_cast<sim::Time>(shards);
}

void NodeContext::ReplyCommit(sim::ActorId client, TxnId txn_id,
                              bool committed, const std::string& reason,
                              sim::Time at, bool retryable) {
  wire::CommitReply reply;
  reply.txn_id = txn_id;
  reply.committed = committed;
  reply.reason = reason;
  reply.retryable = retryable;
  Send(client, ShareMsg(std::move(reply)), at);
}

}  // namespace transedge::core
