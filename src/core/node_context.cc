#include "core/node_context.h"

#include "wire/message.h"

namespace transedge::core {

Transaction NodeContext::RestrictToPartition(const Transaction& txn) const {
  Transaction out;
  out.id = txn.id;
  out.participants = txn.participants;
  out.coordinator = txn.coordinator;
  out.read_set = partition_map().ReadsFor(txn, partition());
  out.write_set = partition_map().WritesFor(txn, partition());
  return out;
}

sim::Time NodeContext::BatchComputeCost(size_t batch_size,
                                        sim::Time per_txn) const {
  double quad = config().cost.batch_quadratic_ns *
                static_cast<double>(batch_size) *
                static_cast<double>(batch_size) / 1000.0;
  return config().cost.batch_overhead +
         per_txn * static_cast<sim::Time>(batch_size) +
         static_cast<sim::Time>(quad);
}

sim::Time NodeContext::ShardedBatchComputeCost(
    const std::vector<size_t>& shard_sizes, sim::Time per_txn) const {
  size_t total = 0;
  double quad = 0.0;
  for (size_t n : shard_sizes) {
    total += n;
    quad += config().cost.batch_quadratic_ns * static_cast<double>(n) *
            static_cast<double>(n) / 1000.0;
  }
  return config().cost.batch_overhead +
         per_txn * static_cast<sim::Time>(total) +
         static_cast<sim::Time>(quad);
}

void NodeContext::ReplyCommit(sim::ActorId client, TxnId txn_id,
                              bool committed, const std::string& reason,
                              sim::Time at, bool retryable) {
  wire::CommitReply reply;
  reply.txn_id = txn_id;
  reply.committed = committed;
  reply.reason = reason;
  reply.retryable = retryable;
  Send(client, ShareMsg(std::move(reply)), at);
}

}  // namespace transedge::core
