#include "core/system.h"

#include <cassert>

#include "storage/partition_map.h"

namespace transedge::core {

namespace {
/// Principal-id space: replicas first, then up to this many clients.
constexpr uint32_t kMaxClients = 4096;
}  // namespace

System::System(const SystemConfig& config,
               const sim::EnvironmentOptions& env_opts)
    : config_(config),
      env_(env_opts),
      scheme_(config.total_replicas() + kMaxClients, env_opts.seed ^ 0x5ed) {
  const bool paged = config_.storage_kind == storage::StorageKind::kPaged;
  if (paged) disks_.resize(config_.total_replicas());
  nodes_.reserve(config_.total_replicas());
  for (uint32_t id = 0; id < config_.total_replicas(); ++id) {
    if (paged) disks_[id] = std::make_unique<storage::paged::SimDisk>();
    auto node = std::make_unique<TransEdgeNode>(
        config_, id, &env_, scheme_.MakeSigner(id), &scheme_.verifier(),
        paged ? disks_[id].get() : nullptr);
    // Replicas of partition p are co-located at site p.
    env_.network().Register(id, config_.PartitionOfNode(id), node.get());
    nodes_.push_back(std::move(node));
  }
}

System::PreloadState System::BuildPreloadState(
    uint32_t num_partitions, int merkle_depth,
    const std::vector<std::pair<Key, Value>>& data) {
  storage::PartitionMap pmap(num_partitions);
  PreloadState state;
  state.stores.resize(num_partitions);
  state.trees.reserve(num_partitions);
  for (PartitionId p = 0; p < num_partitions; ++p) {
    state.trees.emplace_back(merkle_depth);
  }
  for (const auto& [key, value] : data) {
    PartitionId p = pmap.OwnerOf(key);
    state.stores[p].Put(key, value, 0);
    state.trees[p].Put(key, value, 0);
  }
  return state;
}

void System::Preload(const std::vector<std::pair<Key, Value>>& data) {
  Preload(BuildPreloadState(config_.num_partitions, config_.merkle_depth,
                            data));
}

void System::Preload(const PreloadState& state) {
  assert(!started_);
  assert(state.stores.size() == config_.num_partitions);
  // Share the per-partition state with every replica of that cluster:
  // the replicas would arrive at identical state anyway, and the Merkle
  // tree is persistent, so structural sharing is safe.
  for (PartitionId p = 0; p < config_.num_partitions; ++p) {
    for (uint32_t i = 0; i < config_.replicas_per_cluster(); ++i) {
      nodes_[config_.ReplicaNode(p, i)]->Preload(state.stores[p],
                                                 state.trees[p]);
    }
  }
}

void System::Start() {
  assert(!started_);
  started_ = true;
  for (auto& node : nodes_) {
    TransEdgeNode* raw = node.get();
    env_.ScheduleAt(0, [raw] { raw->OnStart(); });
  }
}

Client* System::AddClient() {
  uint32_t index = next_client_index_++;
  assert(index < kMaxClients);
  crypto::NodeId id = config_.ClientNode(index);
  auto client =
      std::make_unique<Client>(config_, id, &env_, &scheme_.verifier());
  // Clients are co-located with a home cluster, round-robin — the
  // paper's clients sit at the edge next to their nearest cluster.
  env_.network().Register(id, index % config_.num_partitions, client.get());
  clients_.push_back(std::move(client));
  return clients_.back().get();
}

WatchClient* System::AddWatchClient() {
  uint32_t index = next_client_index_++;
  assert(index < kMaxClients);
  crypto::NodeId id = config_.ClientNode(index);
  auto client =
      std::make_unique<WatchClient>(config_, id, &env_, &scheme_.verifier());
  env_.network().Register(id, index % config_.num_partitions, client.get());
  watch_clients_.push_back(std::move(client));
  return watch_clients_.back().get();
}

void System::CrashReplica(crypto::NodeId id) {
  assert(id < nodes_.size());
  nodes_[id]->Halt();
  env_.network().Disconnect(id);
}

storage::RecoverOptions System::RecoverOptionsFor(crypto::NodeId id) const {
  storage::RecoverOptions opts;
  opts.verifier = &scheme_.verifier();
  opts.member_ids = config_.ClusterMembers(config_.PartitionOfNode(id));
  opts.required_signatures = config_.certificate_size();
  return opts;
}

Status System::RestartReplica(crypto::NodeId id) {
  assert(id < nodes_.size());
  if (config_.storage_kind != storage::StorageKind::kPaged) {
    return Status::FailedPrecondition(
        "RestartReplica requires a durable storage backend");
  }
  // Make sure the predecessor is fully out of the way even if the test
  // skipped CrashReplica.
  nodes_[id]->Halt();

  auto fresh = std::make_unique<TransEdgeNode>(
      config_, id, &env_, scheme_.MakeSigner(id), &scheme_.verifier(),
      disks_[id].get());
  Status recovered = fresh->RecoverFromStorage(RecoverOptionsFor(id));
  if (!recovered.ok()) return recovered;

  // Successor takes over the actor id (Register overwrites) and rejoins
  // the network; the halted predecessor is parked, not destroyed, since
  // scheduled closures may still capture it.
  graveyard_.push_back(std::move(nodes_[id]));
  env_.network().Register(id, config_.PartitionOfNode(id), fresh.get());
  env_.network().Reconnect(id);
  nodes_[id] = std::move(fresh);
  TransEdgeNode* raw = nodes_[id].get();
  env_.ScheduleAt(env_.now(), [raw] { raw->OnStart(); });
  return Status::OK();
}

TransEdgeNode* System::leader(PartitionId p) {
  for (uint32_t i = 0; i < config_.replicas_per_cluster(); ++i) {
    TransEdgeNode* n = node(p, i);
    if (n->IsLeader()) return n;
  }
  return node(p, 0);
}

uint64_t System::TotalLocalCommitted() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->stats().local_committed;
  return total;
}

uint64_t System::TotalDistCommitted() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->stats().dist_committed;
  return total;
}

uint64_t System::TotalAborted() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->stats().local_aborted + node->stats().dist_aborted;
  }
  return total;
}

uint64_t System::TotalRwAbortedByRoLocks() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) {
    total += node->stats().rw_aborted_by_ro_locks;
  }
  return total;
}

uint64_t System::TotalBatches() const {
  uint64_t total = 0;
  for (const auto& node : nodes_) total += node->stats().batches_decided;
  return total;
}

}  // namespace transedge::core
