#ifndef TRANSEDGE_CORE_CLIENT_H_
#define TRANSEDGE_CORE_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "txn/cd_vector.h"
#include "core/config.h"
#include "crypto/signer.h"
#include "sim/environment.h"
#include "storage/partition_map.h"
#include "wire/message.h"

namespace transedge::core {

/// Outcome of a read-write transaction (or of a read-only transaction
/// executed as a regular transaction — the 2PC/BFT baseline).
struct RwResult {
  TxnId txn_id = 0;
  bool committed = false;
  std::string reason;
  sim::Time latency = 0;
  /// Values observed during the read phase.
  std::map<Key, std::optional<Value>> reads;
};

/// Outcome of a snapshot read-only transaction (TransEdge's protocol or
/// the Augustus baseline).
struct RoResult {
  Status status;  // Non-OK on authentication failure or timeout.
  int rounds = 1;
  sim::Time latency = 0;
  sim::Time round1_latency = 0;  // Time until round-1 replies verified.
  std::map<Key, std::optional<Value>> values;
  /// Theorem 4.6: must always be false. Counted, never acted on.
  bool needed_third_round = false;
  /// §4.4.2: all replies within the freshness window.
  bool fresh = true;
};

/// Client stats for the bench harness.
struct ClientStats {
  uint64_t rw_committed = 0;
  uint64_t rw_aborted = 0;
  uint64_t ro_completed = 0;
  uint64_t ro_two_round = 0;
  uint64_t ro_verification_failures = 0;
  uint64_t ro_third_round_would_be_needed = 0;  // Must stay 0.
  uint64_t timeouts = 0;
};

/// TransEdge client: builds transactions, talks to cluster leaders, and
/// runs the client side of the read-only protocol — Merkle/certificate
/// verification (§4.2) and the dependency check of Algorithm 2 with the
/// targeted second round (§4.3.4).
class Client : public sim::Actor {
 public:
  Client(const SystemConfig& config, crypto::NodeId id,
         sim::Environment* env, const crypto::Verifier* verifier);

  void OnStart() override {}
  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override;

  using RwCallback = std::function<void(RwResult)>;
  using RoCallback = std::function<void(RoResult)>;

  /// Executes a read-write transaction: reads `read_keys` (from the
  /// leaders of the owning partitions), buffers `writes`, then commits
  /// through the coordinator cluster (§3.3.1).
  void ExecuteReadWrite(std::vector<Key> read_keys, std::vector<WriteOp> writes,
                        RwCallback done);

  /// Executes a snapshot read-only transaction over `keys` using the
  /// TransEdge protocol: one authenticated round, plus a targeted second
  /// round when Algorithm 2 detects unsatisfied dependencies.
  void ExecuteReadOnly(std::vector<Key> keys, RoCallback done);

  /// Baseline: runs the same read-only workload as a regular transaction
  /// through 2PC + BFT (the paper's 2PC/BFT comparator, §3.5).
  void ExecuteReadOnlyAsRegular(std::vector<Key> keys, RwCallback done);

  /// Baseline: Augustus-style locking read-only transaction.
  void ExecuteAugustusReadOnly(std::vector<Key> keys, RoCallback done);

  crypto::NodeId id() const { return id_; }
  const ClientStats& stats() const { return stats_; }

  /// When true (default), round-trip verification failures fail the
  /// transaction; tests toggle freshness checking.
  void set_check_freshness(bool on) { check_freshness_ = on; }

  /// Ablation knob: disables Algorithm 2 entirely (Merkle verification
  /// only, no cross-partition dependency check, never a second round).
  /// Used by bench_ablation_dependency to show the torn snapshots the
  /// paper's Figure 1 warns about.
  void set_verify_dependencies(bool on) { verify_dependencies_ = on; }

 private:
  struct RwOp {
    std::vector<Key> read_keys;
    std::vector<WriteOp> writes;
    RwCallback done;
    sim::Time start = 0;
    TxnId txn_id = 0;
    std::map<Key, std::pair<std::optional<Value>, BatchId>> reads;
    size_t reads_outstanding = 0;
    std::unordered_map<uint64_t, Key> read_request_keys;
    bool commit_sent = false;
    int retries_left = 3;
    uint64_t epoch = 0;  // Invalidates stale timeout callbacks.
  };

  struct RoOp {
    std::vector<Key> keys;
    RoCallback done;
    sim::Time start = 0;
    int rounds = 1;
    bool augustus = false;
    /// partition -> keys of that partition.
    std::map<PartitionId, std::vector<Key>> by_partition;
    /// Verified replies, round 1 then overwritten by round 2.
    std::map<PartitionId, wire::RoReply> replies;
    std::map<PartitionId, wire::AugustusRoReply> augustus_replies;
    std::map<PartitionId, uint64_t> augustus_request_ids;
    size_t outstanding = 0;
    bool second_round = false;
    sim::Time round1_done = 0;
    bool fresh = true;
    int retries_left = 3;
    uint64_t epoch = 0;
  };

  void HandleClientReadReply(const wire::ClientReadReply& msg);
  void HandleCommitReply(const wire::CommitReply& msg);
  void HandleRoReply(const wire::RoReply& msg);
  void HandleAugustusRoReply(const wire::AugustusRoReply& msg);

  void SendCommit(RwOp* op);
  void FinishRw(uint64_t op_id, RwResult result);
  void FinishRo(uint64_t op_id, RoResult result);

  /// Re-issues a read-write op against the next leader (same transaction
  /// id) if it has retries left; used by the timeout path and by
  /// retryable aborts (view changes). False when retries are exhausted.
  bool RetryRw(uint64_t op_id);

  /// Certificate + Merkle verification of one read-only reply (§4.2).
  Status VerifyRoReply(const wire::RoReply& reply);

  /// Algorithm 2 over `replies`; returns partition -> required LCE for
  /// each unsatisfied dependency (empty when consistent).
  std::map<PartitionId, BatchId> VerifyDependencies(
      const std::map<PartitionId, wire::RoReply>& replies) const;

  void StartRoRound2(uint64_t op_id,
                     const std::map<PartitionId, BatchId>& needed);

  crypto::NodeId LeaderOf(PartitionId p) const {
    return config_.LeaderOf(p, view_hint_[p]);
  }
  void ArmRwTimeout(uint64_t op_id);
  void ArmRoTimeout(uint64_t op_id);

  SystemConfig config_;
  crypto::NodeId id_;
  sim::Environment* env_;
  const crypto::Verifier* verifier_;
  storage::PartitionMap partition_map_;
  mutable std::vector<uint64_t> view_hint_;

  uint64_t next_request_id_;
  uint32_t next_txn_seq_ = 1;
  std::unordered_map<uint64_t, RwOp> rw_ops_;         // by op id
  std::unordered_map<uint64_t, RoOp> ro_ops_;         // by op id
  std::unordered_map<uint64_t, uint64_t> request_op_;  // request id -> op id
  std::unordered_map<TxnId, uint64_t> txn_op_;         // txn id -> op id

  bool check_freshness_ = false;
  bool verify_dependencies_ = true;
  ClientStats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_CLIENT_H_
