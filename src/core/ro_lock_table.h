#ifndef TRANSEDGE_CORE_RO_LOCK_TABLE_H_
#define TRANSEDGE_CORE_RO_LOCK_TABLE_H_

#include <unordered_map>
#include <vector>

#include "txn/types.h"

namespace transedge::core {

/// Tracks the shared read locks of Augustus-style read-only transactions
/// (baseline for Figures 5–7 and Table 1). TransEdge itself never locks.
class RoLockTable {
 public:
  void Lock(uint64_t request_id, const std::vector<Key>& keys);
  void Release(uint64_t request_id);

  /// True if any key in `txn`'s write set is share-locked.
  bool BlocksWriter(const Transaction& txn) const;

  size_t locked_key_count() const { return shared_.size(); }

 private:
  std::unordered_map<Key, int> shared_;
  std::unordered_map<uint64_t, std::vector<Key>> by_request_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_RO_LOCK_TABLE_H_
