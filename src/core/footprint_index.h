#ifndef TRANSEDGE_CORE_FOOTPRINT_INDEX_H_
#define TRANSEDGE_CORE_FOOTPRINT_INDEX_H_

#include <unordered_map>

#include "txn/types.h"

namespace transedge::core {

/// Key-indexed footprint of a set of in-flight transactions, used for
/// rules 2 and 3 of Definition 3.1 without quadratic scans.
class FootprintIndex {
 public:
  void Add(const Transaction& txn);
  void Remove(const Transaction& txn);

  /// True if `txn` has a rw/wr/ww conflict with any indexed transaction.
  bool ConflictsWith(const Transaction& txn) const;

  size_t indexed_reads() const { return readers_.size(); }
  size_t indexed_writes() const { return writers_.size(); }

 private:
  std::unordered_map<Key, int> readers_;
  std::unordered_map<Key, int> writers_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_FOOTPRINT_INDEX_H_
