#include "core/augustus_baseline.h"

#include <utility>

namespace transedge::core {

AugustusBaseline::AugustusBaseline(NodeContext* ctx) : ctx_(ctx) {}

void AugustusBaseline::HandleRoRequest(sim::ActorId from,
                                       const wire::AugustusRoRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  lock_table_.Lock(msg.request_id, msg.keys);

  Pending pending;
  pending.client = client;
  pending.keys = msg.keys;
  pending.votes = 1;  // Our own.
  pending_[msg.request_id] = std::move(pending);

  wire::AugustusVoteRequest vote;
  vote.request_id = msg.request_id;
  vote.keys = msg.keys;
  vote.snapshot_batch = ctx_->mutable_log().LastBatchId();
  ctx_->BroadcastToCluster(
      ShareMsg(std::move(vote)),
      ctx_->Charge(ctx_->config().cost.ro_serve_per_key *
                   static_cast<sim::Time>(msg.keys.size())));
}

void AugustusBaseline::HandleVoteRequest(sim::ActorId from,
                                         const wire::AugustusVoteRequest& msg) {
  wire::AugustusVoteReply reply;
  reply.request_id = msg.request_id;
  reply.vote = true;
  Encoder enc;
  enc.PutString("augustus-vote");
  enc.PutU64(msg.request_id);
  reply.signature = ctx_->Sign(enc.buffer());
  ctx_->Send(from, ShareMsg(std::move(reply)),
             ctx_->Charge(ctx_->config().cost.signature_op));
}

void AugustusBaseline::HandleVoteReply(sim::ActorId from,
                                       const wire::AugustusVoteReply& msg) {
  (void)from;
  auto it = pending_.find(msg.request_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  if (msg.vote) ++pending.votes;
  if (pending.replied || pending.votes < ctx_->config().quorum_size()) return;
  pending.replied = true;

  wire::AugustusRoReply reply;
  reply.request_id = msg.request_id;
  reply.partition = ctx_->partition();
  reply.votes = pending.votes;
  for (const Key& key : pending.keys) {
    wire::AuthenticatedRead read;
    read.key = key;
    Result<storage::VersionedValue> value = ctx_->mutable_store().Get(key);
    if (value.ok()) {
      read.found = true;
      read.value = value->value;
      read.version = value->version;
    }
    reply.entries.push_back(std::move(read));
  }
  ++stats_.augustus_ro_served;
  ctx_->Send(pending.client, ShareMsg(std::move(reply)),
             ctx_->Charge(ctx_->config().cost.ro_serve_per_key *
                          static_cast<sim::Time>(pending.keys.size())));
}

void AugustusBaseline::HandleRelease(sim::ActorId from,
                                     const wire::AugustusRelease& msg) {
  (void)from;
  lock_table_.Release(msg.request_id);
  pending_.erase(msg.request_id);
}

}  // namespace transedge::core
