#ifndef TRANSEDGE_CORE_NODE_H_
#define TRANSEDGE_CORE_NODE_H_

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/node_context.h"
#include "crypto/signer.h"
#include "merkle/merkle_tree.h"
#include "sim/environment.h"
#include "storage/partition_map.h"
#include "storage/smr_log.h"
#include "storage/storage_backend.h"
#include "storage/versioned_store.h"
#include "txn/occ_validator.h"
#include "txn/prepared_batches.h"
#include "wire/message.h"

namespace transedge::core {

class AugustusBaseline;
class Consensus;
class ReadOnlyService;
class ShardedPipeline;
class TwoPcCoordinator;
class WatchService;

/// Counters exposed for tests and the bench harness. Aggregated from the
/// per-engine counters on access.
struct NodeStats {
  uint64_t local_committed = 0;
  uint64_t local_aborted = 0;
  uint64_t dist_committed = 0;
  uint64_t dist_aborted = 0;
  uint64_t batches_decided = 0;
  /// Batches whose writes reached the store/tree; trails batches_decided
  /// while the asynchronous apply queue drains.
  uint64_t batches_applied = 0;
  uint64_t ro_round1_served = 0;
  uint64_t ro_round2_served = 0;
  uint64_t ro_round2_parked = 0;
  uint64_t ro_round2_rejected = 0;
  uint64_t rw_aborted_by_ro_locks = 0;  // Augustus interference (Table 1).
  uint64_t view_changes = 0;
  uint64_t augustus_ro_served = 0;
  /// Parked round-2 requests flushed retryable (view change/truncation).
  uint64_t ro_round2_aborted = 0;
  // Watch/subscription push tier.
  uint64_t watch_subscribes = 0;
  uint64_t watch_deltas_pushed = 0;
  uint64_t watch_keys_pushed = 0;
  uint64_t watch_resubscribe_errors = 0;
  /// Protocol messages the consensus engine sent; divided by
  /// batches_decided this is the engines' message-complexity axis
  /// (bench_consensus_compare).
  uint64_t consensus_msgs_sent = 0;
};

/// One TransEdge replica (one edge node).
///
/// The replica is a thin message router over six focused subsystem
/// engines plus the storage stack it owns (versioned store + Merkle tree
/// + snapshot window + SMR log):
///
///   - Consensus:        intra-cluster consensus on batches (§3.2),
///                       selected by SystemConfig::consensus_kind
///                       (PbftConsensus or LinearVoteConsensus)
///   - ShardedPipeline:  leader admission and batch building (Figure 2),
///                       optionally sharded over disjoint key ranges
///                       (SystemConfig::pipeline_shards)
///   - TwoPcCoordinator: cross-cluster 2PC (§3.3)
///   - ReadOnlyService:  authenticated read-only serving (§4.2–4.4)
///   - AugustusBaseline: locking read-only baseline (Figures 5–7)
///   - WatchService:     certified key-range delta push (read tier
///                       inverted from pull to poll-free subscriptions)
///
/// Engines reach the node only through the NodeContext interface
/// (clock/send/sign/storage) and through hooks wired here; they never
/// include each other.
class TransEdgeNode : public sim::Actor, private NodeContext {
 public:
  /// `disk` is this replica's simulated disk; required (and borrowed,
  /// must outlive the node) under StorageKind::kPaged, ignored otherwise.
  TransEdgeNode(const SystemConfig& config, crypto::NodeId id,
                sim::Environment* env, std::unique_ptr<crypto::Signer> signer,
                const crypto::Verifier* verifier,
                storage::paged::SimDisk* disk = nullptr);
  ~TransEdgeNode() override;

  /// Installs the pre-replicated initial state (identical across the
  /// cluster). Must be called before the simulation starts.
  void Preload(const storage::VersionedStore& store,
               const merkle::MerkleTree& tree);

  void OnStart() override;
  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override;

  // Introspection for tests and benches.
  crypto::NodeId id() const override { return id_; }
  PartitionId partition() const override { return partition_; }
  BatchId last_applied() const override { return last_applied_; }
  uint64_t view() const;
  bool IsLeader() const override;
  bool ReproposalPending() const override;
  const storage::SmrLog& log() const { return backend_->log(); }
  const storage::VersionedStore& store() const { return backend_->store(); }
  const storage::StorageBackend& backend() const { return *backend_; }
  const merkle::MerkleTree& tree() const { return tree_; }
  const NodeStats& stats() const;
  size_t in_progress_size() const;
  /// Key-range watches currently registered on this replica.
  size_t active_watches() const;
  /// 2PC-dedup entries the admission pipeline currently holds (drains as
  /// batches apply; bounded by in-flight work).
  size_t seen_txn_count() const;

  void SetByzantineBehavior(ByzantineBehavior behavior) {
    byzantine_ = behavior;
  }
  ByzantineBehavior byzantine_behavior() const { return byzantine_; }

  /// Permanently silences this replica (crash or replacement-by-restart):
  /// messages are dropped and every engine timer becomes a no-op, so a
  /// parked node can coexist with a successor registered under its id.
  void Halt() { halted_ = true; }
  bool halted() const { return halted_; }

  /// Rebuilds the replica's state from its durable backend: backend
  /// recovery (checkpoint + WAL replay), Merkle tree reconstruction from
  /// the recovered store, root verification against the log tail's
  /// certificate (or the checkpoint root when the log is empty), and
  /// re-seeding of the snapshot window + applied watermark. Must run
  /// before the node processes any message. Only meaningful for durable
  /// backends on a freshly constructed node.
  Status RecoverFromStorage(const storage::RecoverOptions& opts);

 private:
  // --- NodeContext implementation (the engines' window on the node) -------
  const SystemConfig& config() const override { return config_; }
  const std::vector<crypto::NodeId>& cluster_members() const override {
    return cluster_members_;
  }
  ByzantineBehavior byzantine() const override { return byzantine_; }
  sim::Time now() const override { return env_->now(); }
  sim::Time Charge(sim::Time cost) override {
    return cpu_.Charge(env_->now(), cost);
  }
  sim::Time busy_until() const override { return cpu_.busy_until(); }
  void Schedule(sim::Time delay, std::function<void()> fn) override {
    // Every engine timer routes through here; the halt gate turns them
    // all into no-ops so a parked replica never acts again even though
    // its already-scheduled closures still fire.
    env_->Schedule(delay, [this, fn = std::move(fn)] {
      if (!halted_) fn();
    });
  }
  void Send(crypto::NodeId to, const sim::MessagePtr& msg,
            sim::Time at) override;
  void BroadcastToCluster(const sim::MessagePtr& msg, sim::Time at) override;
  void SendToCluster(PartitionId p, const sim::MessagePtr& msg,
                     sim::Time at) override;
  crypto::Signature Sign(const Bytes& payload) override {
    return signer_->Sign(payload);
  }
  const crypto::Verifier& verifier() const override { return *verifier_; }
  storage::VersionedStore& mutable_store() override {
    return backend_->store();
  }
  merkle::MerkleTree& mutable_tree() override { return tree_; }
  storage::SmrLog& mutable_log() override { return backend_->log(); }
  txn::OccValidator& validator() override { return validator_; }
  txn::PreparedBatches& prepared_batches() override {
    return prepared_batches_;
  }
  const storage::PartitionMap& partition_map() const override {
    return partition_map_;
  }
  FootprintIndex& pending_footprint() override { return pending_index_; }
  BatchId snapshot_base() const override { return snapshot_base_; }
  const merkle::MerkleTree::Snapshot& SnapshotAt(
      BatchId batch_id) const override;
  const merkle::MerkleTree& decided_tree() override { return decided_tree_; }
  size_t ConsensusInFlight() const override;
  uint32_t EffectivePipelineDepth() const override;
  ProposalChain proposal_chain() override;
  BatchId LatestDecidedVersion(const Key& key) const override;

  /// A decided batch waiting for its storage apply: the post-state tree
  /// consensus certified and the prepare groups its committed segment
  /// consumed (popped at decide time, before any later decide can touch
  /// the queue). The batch itself lives in the log.
  struct PendingApply {
    BatchId id = kNoBatch;
    merkle::MerkleTree post_tree;
    std::vector<txn::PrepareGroup> groups;
  };

  /// Consensus `on_decided` hook. Runs the decide-time metadata
  /// transitions (prepare-group pops, pending-footprint updates, group
  /// registration, log append, decided tree/version advance), enqueues
  /// the storage apply, drains it — inline on the replica CPU when
  /// `async_apply` is off (the pre-queue behavior), else on the apply
  /// worker — and finally advances consensus and the batch pipeline.
  void OnDecided(storage::Batch batch, storage::BatchCertificate certificate,
                 merkle::MerkleTree post_tree);

  /// Simulated cost of the storage apply for `entry`: serial batch cost
  /// for one apply shard, slowest-shard + recombine for several.
  sim::Time ApplyCostFor(const PendingApply& entry) const;

  /// Installs a decided batch into the storage stack (store writes, tree
  /// + snapshot window, applied watermark) and fans the follow-up work
  /// out to the engines.
  void InstallApply(PendingApply entry);

  /// Async mode: books the head-of-queue apply on the apply worker's CPU
  /// and schedules its completion; re-arms itself until the queue drains.
  void ScheduleApplyDrain();

  /// Converts the backend's StorageIoStats growth since the last call
  /// into simulated time (CostModel wal_append/wal_read/disk_fsync/
  /// page_write/page_read). `on_protocol_cpu` charges the replica CPU (WAL on the
  /// decision critical path, recovery); otherwise the I/O meter (the
  /// checkpoint flusher running beside the protocol). Zero deltas —
  /// the in-memory backend always — charge nothing.
  void ChargeStorageIo(bool on_protocol_cpu);

  SystemConfig config_;
  crypto::NodeId id_;
  PartitionId partition_;
  sim::Environment* env_;
  std::unique_ptr<crypto::Signer> signer_;
  const crypto::Verifier* verifier_;
  storage::PartitionMap partition_map_;
  std::vector<crypto::NodeId> cluster_members_;

  sim::CpuMeter cpu_;
  ByzantineBehavior byzantine_ = ByzantineBehavior::kNone;
  bool halted_ = false;

  // Storage stack, behind the engine seam selected by
  // SystemConfig::storage_kind (must precede validator_, which borrows
  // the store).
  std::unique_ptr<storage::StorageBackend> backend_;
  /// What the node has already converted from the backend's cumulative
  /// I/O counters into simulated time (see ChargeStorageIo).
  storage::StorageIoStats charged_io_;
  /// The storage device's own meter: checkpoint flushes charge here, in
  /// parallel with the protocol CPU (mirrors apply_cpu_).
  sim::CpuMeter io_cpu_;
  merkle::MerkleTree tree_;
  /// Sliding window of per-batch snapshots: snapshots_[i] is the state
  /// after batch (snapshot_base_ + i). Bounded by
  /// SystemConfig::snapshot_history.
  std::deque<merkle::MerkleTree::Snapshot> snapshots_;
  BatchId snapshot_base_ = 0;

  // Decided-vs-applied decoupling. `tree_` above is the *applied* tree
  // (read-only serving); `decided_tree_` tracks the newest certified
  // post-state (validation, proposal sealing, catch-up).
  merkle::MerkleTree decided_tree_;
  /// key -> id of the newest decided-but-unapplied batch writing it;
  /// entries drain as the apply queue does (always empty under
  /// synchronous apply).
  std::unordered_map<Key, BatchId> decided_versions_;
  BatchId last_applied_ = kNoBatch;
  uint64_t batches_applied_ = 0;
  std::deque<PendingApply> apply_queue_;
  bool apply_inflight_ = false;
  /// The apply worker's CPU: asynchronous apply charges here, modeling a
  /// storage thread running beside the consensus/protocol CPU.
  sim::CpuMeter apply_cpu_;

  txn::OccValidator validator_;
  txn::PreparedBatches prepared_batches_;
  FootprintIndex pending_index_;  // Prepared-but-undecided distributed txns.

  // Subsystem engines (wired in the constructor).
  std::unique_ptr<Consensus> consensus_;
  std::unique_ptr<ShardedPipeline> pipeline_;
  std::unique_ptr<TwoPcCoordinator> two_pc_;
  std::unique_ptr<ReadOnlyService> read_only_;
  std::unique_ptr<AugustusBaseline> augustus_;
  std::unique_ptr<WatchService> watch_;

  mutable NodeStats aggregated_stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_NODE_H_
