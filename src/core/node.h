#ifndef TRANSEDGE_CORE_NODE_H_
#define TRANSEDGE_CORE_NODE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/cd_vector.h"
#include "core/config.h"
#include "crypto/signer.h"
#include "merkle/merkle_tree.h"
#include "sim/environment.h"
#include "storage/partition_map.h"
#include "storage/smr_log.h"
#include "storage/versioned_store.h"
#include "txn/occ_validator.h"
#include "txn/prepared_batches.h"
#include "wire/message.h"

namespace transedge::core {

/// Fault-injection behaviours for byzantine tests. All of them operate
/// strictly with the node's own signing capability — a byzantine node can
/// lie about content but cannot forge other nodes' signatures.
enum class ByzantineBehavior {
  kNone,
  /// Leader tampers with the value bytes of read-only responses; clients
  /// must detect this through Merkle verification.
  kTamperReadValue,
  /// Leader serves read-only responses from an old (but certified)
  /// snapshot; detectable only through the freshness window (§4.4.2).
  kStaleSnapshot,
  /// Leader proposes different batches to different halves of the
  /// cluster; consensus must not certify either.
  kEquivocate,
  /// Crash-stop: the node ignores all input.
  kCrash,
};

/// Counters exposed for tests and the bench harness.
struct NodeStats {
  uint64_t local_committed = 0;
  uint64_t local_aborted = 0;
  uint64_t dist_committed = 0;
  uint64_t dist_aborted = 0;
  uint64_t batches_decided = 0;
  uint64_t ro_round1_served = 0;
  uint64_t ro_round2_served = 0;
  uint64_t ro_round2_parked = 0;
  uint64_t rw_aborted_by_ro_locks = 0;  // Augustus interference (Table 1).
  uint64_t view_changes = 0;
  uint64_t augustus_ro_served = 0;
};

/// Tracks the shared read locks of Augustus-style read-only transactions
/// (baseline for Figures 5–7 and Table 1). TransEdge itself never locks.
class RoLockTable {
 public:
  void Lock(uint64_t request_id, const std::vector<Key>& keys);
  void Release(uint64_t request_id);

  /// True if any key in `txn`'s write set is share-locked.
  bool BlocksWriter(const Transaction& txn) const;

  size_t locked_key_count() const { return shared_.size(); }

 private:
  std::unordered_map<Key, int> shared_;
  std::unordered_map<uint64_t, std::vector<Key>> by_request_;
};

/// Key-indexed footprint of a set of in-flight transactions, used for
/// rules 2 and 3 of Definition 3.1 without quadratic scans.
class FootprintIndex {
 public:
  void Add(const Transaction& txn);
  void Remove(const Transaction& txn);

  /// True if `txn` has a rw/wr/ww conflict with any indexed transaction.
  bool ConflictsWith(const Transaction& txn) const;

  size_t indexed_reads() const { return readers_.size(); }
  size_t indexed_writes() const { return writers_.size(); }

 private:
  std::unordered_map<Key, int> readers_;
  std::unordered_map<Key, int> writers_;
};

/// One TransEdge replica (one edge node).
///
/// Every replica runs: the intra-cluster consensus on batches (§3.2), the
/// storage stack (versioned store + Merkle tree + SMR log), and the
/// read-only serving paths (§4.2–4.3). The replica whose index matches
/// the current view additionally acts as leader: it admits transactions,
/// builds batches (Figure 2), and drives the 2PC steps of distributed
/// transactions (§3.3).
class TransEdgeNode : public sim::Actor {
 public:
  TransEdgeNode(const SystemConfig& config, crypto::NodeId id,
                sim::Environment* env, std::unique_ptr<crypto::Signer> signer,
                const crypto::Verifier* verifier);

  /// Installs the pre-replicated initial state (identical across the
  /// cluster). Must be called before the simulation starts.
  void Preload(const storage::VersionedStore& store,
               const merkle::MerkleTree& tree);

  void OnStart() override;
  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override;

  // Introspection for tests and benches.
  crypto::NodeId id() const { return id_; }
  PartitionId partition() const { return partition_; }
  uint64_t view() const { return view_; }
  bool IsLeader() const { return config_.LeaderOf(partition_, view_) == id_; }
  const storage::SmrLog& log() const { return log_; }
  const storage::VersionedStore& store() const { return store_; }
  const merkle::MerkleTree& tree() const { return tree_; }
  const NodeStats& stats() const { return stats_; }
  size_t in_progress_size() const {
    return inprog_local_.size() + inprog_prepared_.size();
  }

  void SetByzantineBehavior(ByzantineBehavior behavior) {
    byzantine_ = behavior;
  }
  ByzantineBehavior byzantine_behavior() const { return byzantine_; }

 private:
  // --- Consensus ----------------------------------------------------------
  struct ConsensusInstance {
    bool has_batch = false;
    storage::Batch batch;
    crypto::Digest digest;
    bool validated = false;
    bool validation_failed = false;
    merkle::MerkleTree post_tree;  // Tree with the batch's writes applied.
    /// Leader-shared tree (SystemConfig::simulate_shared_merkle).
    merkle::MerkleTree::Snapshot adopted_snapshot;
    /// Votes carry the digest the voter saw, so an equivocating leader's
    /// two batch variants split the vote and neither reaches quorum.
    std::map<crypto::NodeId, crypto::Digest> prepare_votes;
    std::map<crypto::NodeId, crypto::Digest> commit_votes;
    std::map<crypto::NodeId, crypto::Signature> cert_shares;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool decided = false;

    explicit ConsensusInstance(int merkle_depth) : post_tree(merkle_depth) {}
  };

  void HandlePrePrepare(sim::ActorId from, const wire::PrePrepareMsg& msg);
  void HandlePrepare(sim::ActorId from, const wire::PrepareMsg& msg);
  void HandleCommit(sim::ActorId from, const wire::CommitMsg& msg);
  void HandleViewChange(sim::ActorId from, const wire::ViewChangeMsg& msg);

  /// Re-evaluates the instance for the next undecided batch id: validates
  /// a pending pre-prepare, emits our votes, and decides when quorums are
  /// reached.
  void AdvanceConsensus();

  /// Definition 3.1 re-validation plus read-only-segment recomputation
  /// for a proposed batch. On success fills `instance->post_tree` and
  /// marks it validated.
  Status ValidateProposedBatch(ConsensusInstance* instance);

  /// Appends the decided batch to the log and applies it (§3.4 updates
  /// happen during BuildBatch; apply makes them durable and triggers the
  /// 2PC follow-ups and parked read-only work).
  void ApplyDecidedBatch(ConsensusInstance instance);

  void StartViewChangeTimer(BatchId batch_id);
  void InitiateViewChange(uint64_t new_view);
  void MaybeAdoptView(uint64_t target);

  // --- Leader: batching and admission -------------------------------------
  void OnBatchTimer();
  bool ShouldPropose() const;
  void ProposeBatch();
  storage::Batch BuildBatch();

  /// Definition 3.1 admission check for a transaction whose operations
  /// have been restricted to this partition.
  Status AdmitCheck(const Transaction& restricted);

  /// Restricts `txn`'s read/write sets to keys owned by this partition.
  Transaction RestrictToPartition(const Transaction& txn) const;

  // --- Client transactions -------------------------------------------------
  void HandleClientRead(sim::ActorId from, const wire::ClientReadRequest& msg);
  void HandleCommitRequest(sim::ActorId from, const wire::CommitRequest& msg);
  void ReplyCommit(sim::ActorId client, TxnId txn_id, bool committed,
                   const std::string& reason, sim::Time at);

  // --- 2PC -----------------------------------------------------------------
  struct CoordinatorTxn {
    Transaction txn;
    sim::ActorId client = 0;
    std::map<PartitionId, storage::PreparedInfo> collected;
    bool decided = false;
    bool decision = false;
  };

  void HandleCoordPrepare(sim::ActorId from, const wire::CoordPrepareMsg& msg);
  void HandlePrepared(sim::ActorId from, const wire::PreparedMsg& msg);
  void HandleCommitRecord(sim::ActorId from,
                          const wire::CommitRecordMsg& msg);
  void MaybeDecide2pc(TxnId txn_id);

  /// Sends `msg` to f+1 replicas of cluster `p` (the paper's redundancy
  /// against a malicious receiver dropping 2PC traffic, §3.3.1).
  void SendToCluster(PartitionId p, const sim::MessagePtr& msg, sim::Time at);

  // --- Read-only protocol --------------------------------------------------
  void HandleRoRequest(sim::ActorId from, const wire::RoRequest& msg);
  void HandleRoBatchRequest(sim::ActorId from,
                            const wire::RoBatchRequest& msg);
  /// Builds an authenticated response from log position `batch_id`.
  wire::RoReply BuildRoReply(uint64_t request_id,
                             const std::vector<Key>& keys, BatchId batch_id,
                             bool second_round);
  void ServeParkedRoRequests();
  /// Earliest batch whose LCE satisfies `min_lce`; kNoBatch when none.
  BatchId FindBatchWithLce(BatchId min_lce) const;

  // --- Augustus baseline ---------------------------------------------------
  struct AugustusPending {
    sim::ActorId client = 0;
    std::vector<Key> keys;
    uint32_t votes = 0;
    bool replied = false;
  };
  void HandleAugustusRoRequest(sim::ActorId from,
                               const wire::AugustusRoRequest& msg);
  void HandleAugustusVoteRequest(sim::ActorId from,
                                 const wire::AugustusVoteRequest& msg);
  void HandleAugustusVoteReply(sim::ActorId from,
                               const wire::AugustusVoteReply& msg);
  void HandleAugustusRelease(sim::ActorId from,
                             const wire::AugustusRelease& msg);

  // --- Helpers -------------------------------------------------------------
  sim::Time Charge(sim::Time cost) { return cpu_.Charge(env_->now(), cost); }
  void Send(crypto::NodeId to, const sim::MessagePtr& msg, sim::Time at);
  void BroadcastToCluster(const sim::MessagePtr& msg, sim::Time at);
  sim::Time BatchComputeCost(size_t batch_size, sim::Time per_txn) const;

  SystemConfig config_;
  crypto::NodeId id_;
  PartitionId partition_;
  sim::Environment* env_;
  std::unique_ptr<crypto::Signer> signer_;
  const crypto::Verifier* verifier_;
  storage::PartitionMap partition_map_;
  std::vector<crypto::NodeId> cluster_members_;

  uint64_t view_ = 0;
  sim::CpuMeter cpu_;
  ByzantineBehavior byzantine_ = ByzantineBehavior::kNone;

  // Storage stack.
  storage::VersionedStore store_;
  merkle::MerkleTree tree_;
  /// Sliding window of per-batch snapshots: snapshots_[i] is the state
  /// after batch (snapshot_base_ + i). Bounded by
  /// SystemConfig::snapshot_history.
  std::deque<merkle::MerkleTree::Snapshot> snapshots_;
  BatchId snapshot_base_ = 0;
  storage::SmrLog log_;
  txn::OccValidator validator_;
  txn::PreparedBatches prepared_batches_;

  // Leader state.
  std::vector<Transaction> inprog_local_;
  std::vector<Transaction> inprog_prepared_;
  FootprintIndex inprog_index_;    // In-progress + in-flight batches.
  FootprintIndex pending_index_;   // Prepared-but-undecided distributed txns.
  std::unordered_map<TxnId, sim::ActorId> local_waiting_clients_;
  std::unordered_map<TxnId, CoordinatorTxn> coord_txns_;
  std::unordered_set<TxnId> participant_pending_;  // We prepared, not coord.
  std::unordered_set<TxnId> seen_txns_;            // 2PC dedup.

  // Consensus state.
  std::map<BatchId, ConsensusInstance> instances_;
  bool proposing_ = false;
  std::map<uint64_t, std::set<crypto::NodeId>> view_change_votes_;

  // Parked second-round read-only requests (waiting for an LCE).
  struct ParkedRo {
    sim::ActorId client = 0;
    wire::RoBatchRequest request;
  };
  std::vector<ParkedRo> parked_ro_;

  // Augustus baseline state.
  RoLockTable ro_locks_;
  std::unordered_map<uint64_t, AugustusPending> augustus_pending_;

  NodeStats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_NODE_H_
