#include "core/watch_client.h"

#include <utility>

#include "merkle/merkle_tree.h"

namespace transedge::core {

namespace {
template <typename T>
std::shared_ptr<const T> Share(T msg) {
  return std::make_shared<const T>(std::move(msg));
}
}  // namespace

WatchClient::WatchClient(const SystemConfig& config, crypto::NodeId id,
                         sim::Environment* env,
                         const crypto::Verifier* verifier)
    : config_(config),
      id_(id),
      env_(env),
      verifier_(verifier),
      partition_map_(config.num_partitions),
      view_hint_(config.num_partitions, 0),
      subs_(config.num_partitions),
      // Watch ids share the clients' globally-unique id scheme (client
      // id in the high bits): the server keys watches by (client, id).
      next_watch_id_((static_cast<uint64_t>(id) << 32) | 1) {}

void WatchClient::OnMessage(sim::ActorId from, const sim::MessagePtr& msg) {
  (void)from;
  using wire::MessageType;
  switch (static_cast<MessageType>(msg->type())) {
    case MessageType::kWatchSubscribeReply:
      HandleSubscribeReply(
          static_cast<const wire::WatchSubscribeReply&>(*msg));
      break;
    case MessageType::kWatchDelta:
      HandleDelta(static_cast<const wire::WatchDeltaMsg&>(*msg));
      break;
    case MessageType::kWatchResubscribe:
      HandleResubscribeRequired(
          static_cast<const wire::WatchResubscribeRequired&>(*msg));
      break;
    default:
      break;
  }
}

void WatchClient::Watch(Key lo, Key hi) {
  watching_ = true;
  lo_ = std::move(lo);
  hi_ = std::move(hi);
  for (PartitionId p = 0; p < config_.num_partitions; ++p) {
    subs_[p] = Sub{};
    subs_[p].watch_id = next_watch_id_++;
    Subscribe(p, kNoBatch);
  }
}

void WatchClient::Unwatch() {
  if (!watching_) return;
  watching_ = false;
  for (PartitionId p = 0; p < config_.num_partitions; ++p) {
    ++subs_[p].timer_epoch;  // Kill the pending idle timer.
    subs_[p].active = false;
    wire::WatchUnsubscribe msg;
    msg.watch_id = subs_[p].watch_id;
    msg.reply_to = id_;
    env_->network().Send(id_, LeaderOf(p), Share(std::move(msg)));
  }
}

const WatchClient::CachedRead* WatchClient::Lookup(const Key& key) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++stats_.cache_misses;
    return nullptr;
  }
  ++stats_.cache_hits;
  return &it->second;
}

bool WatchClient::AllSubscribed() const {
  if (!watching_) return false;
  for (const Sub& sub : subs_) {
    if (!sub.active) return false;
  }
  return true;
}

void WatchClient::Subscribe(PartitionId p, BatchId resume_from) {
  Sub& sub = subs_[p];
  sub.active = false;
  wire::WatchSubscribeRequest msg;
  msg.watch_id = sub.watch_id;
  msg.reply_to = id_;
  msg.range_lo = lo_;
  msg.range_hi = hi_;
  msg.resume_from = resume_from;
  env_->network().Send(id_, LeaderOf(p), Share(std::move(msg)));
  ArmIdleTimer(p);
}

Status WatchClient::VerifyCertifiedEntries(
    PartitionId partition, BatchId batch_id,
    const std::vector<wire::AuthenticatedRead>& entries,
    const storage::BatchCertificate& certificate) const {
  if (certificate.partition != partition || certificate.batch_id != batch_id) {
    return Status::VerificationFailed("certificate does not match payload");
  }
  TE_RETURN_IF_ERROR(certificate.Verify(*verifier_,
                                        config_.certificate_size(),
                                        config_.ClusterMembers(partition)));
  for (const wire::AuthenticatedRead& read : entries) {
    if (read.found) {
      TE_RETURN_IF_ERROR(merkle::MerkleTree::VerifyProof(
          read.proof, read.key, read.value, read.version,
          certificate.merkle_root));
    } else {
      TE_RETURN_IF_ERROR(merkle::MerkleTree::VerifyAbsence(
          read.proof, read.key, certificate.merkle_root));
    }
  }
  return Status::OK();
}

void WatchClient::ApplyEntries(
    BatchId batch_id, const std::vector<wire::AuthenticatedRead>& entries) {
  for (const wire::AuthenticatedRead& read : entries) {
    if (read.found) {
      cache_[read.key] =
          CachedRead{true, read.value, read.version, batch_id};
    } else {
      // Certified absence: the key has no value as of this batch.
      cache_.erase(read.key);
    }
  }
  stats_.keys_updated += entries.size();
}

void WatchClient::HandleSubscribeReply(const wire::WatchSubscribeReply& msg) {
  if (msg.partition >= subs_.size()) return;
  Sub& sub = subs_[msg.partition];
  if (!watching_ || msg.watch_id != sub.watch_id) return;
  if (msg.resumed) {
    // Continuation acknowledged: the stream chains from our last
    // verified position; missed deltas follow as ordinary pushes.
    sub.epoch = msg.epoch;
    sub.active = true;
    ArmIdleTimer(msg.partition);
    return;
  }
  Status verified = VerifyCertifiedEntries(msg.partition, msg.batch_id,
                                           msg.entries, msg.certificate);
  if (!verified.ok()) {
    ++stats_.verification_failures;
    return;
  }
  // Fresh seed: certified ground truth for the whole range replaces any
  // stale leftovers from a previous subscription.
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (partition_map_.OwnerOf(it->first) == msg.partition) {
      it = cache_.erase(it);
    } else {
      ++it;
    }
  }
  ApplyEntries(msg.batch_id, msg.entries);
  sub.epoch = msg.epoch;
  sub.last_seen = msg.batch_id;
  sub.active = true;
  ++stats_.seeds_applied;
  ArmIdleTimer(msg.partition);
}

void WatchClient::HandleDelta(const wire::WatchDeltaMsg& msg) {
  if (msg.partition >= subs_.size()) return;
  Sub& sub = subs_[msg.partition];
  if (!watching_ || msg.watch_id != sub.watch_id) return;
  if (msg.epoch != sub.epoch) {
    // A push from a stream that a view change already killed; the
    // resubscribed stream covers (or will cover) this batch.
    ++stats_.stale_epoch_dropped;
    return;
  }
  if (sub.last_seen != kNoBatch && msg.batch_id <= sub.last_seen) {
    ++stats_.duplicates_dropped;
    return;
  }
  if (msg.prev_batch_id != sub.last_seen) {
    // Chain discontinuity: a delta between last_seen and this one was
    // lost. Do not apply (the cache would silently skip writes); resume
    // from the last verified position instead.
    ++stats_.gaps_detected;
    ++stats_.resubscribes;
    Subscribe(msg.partition, sub.last_seen);
    return;
  }
  Status verified = VerifyCertifiedEntries(msg.partition, msg.batch_id,
                                           msg.entries, msg.certificate);
  if (!verified.ok()) {
    ++stats_.verification_failures;
    return;
  }
  ApplyEntries(msg.batch_id, msg.entries);
  sub.last_seen = msg.batch_id;
  ++stats_.deltas_applied;
  ArmIdleTimer(msg.partition);
}

void WatchClient::HandleResubscribeRequired(
    const wire::WatchResubscribeRequired& msg) {
  if (msg.partition >= subs_.size()) return;
  Sub& sub = subs_[msg.partition];
  if (!watching_ || msg.watch_id != sub.watch_id) return;
  sub.active = false;
  ++stats_.resubscribes;
  // The sender just told us it cannot (or will no longer) serve this
  // stream; try the next replica in rotation.
  ++view_hint_[msg.partition];
  if (sub.last_seen != kNoBatch && msg.horizon != kNoBatch &&
      sub.last_seen >= msg.horizon) {
    Subscribe(msg.partition, sub.last_seen);
  } else {
    // The replay window rotated past our position (or we never seeded):
    // only a fresh certified seed can restore gap-free coverage.
    Subscribe(msg.partition, kNoBatch);
  }
}

void WatchClient::ArmIdleTimer(PartitionId p) {
  Sub& sub = subs_[p];
  uint64_t epoch = ++sub.timer_epoch;
  env_->Schedule(config_.client_timeout, [this, p, epoch] {
    if (!watching_) return;
    Sub& sub = subs_[p];
    if (sub.timer_epoch != epoch) return;
    ++stats_.resubscribes;
    if (!sub.active) {
      // The previous subscribe itself went unanswered — that replica is
      // down or partitioned away; rotate before retrying.
      ++view_hint_[p];
    }
    Subscribe(p, sub.last_seen);
  });
}

}  // namespace transedge::core
