#ifndef TRANSEDGE_CORE_NODE_CONTEXT_H_
#define TRANSEDGE_CORE_NODE_CONTEXT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/footprint_index.h"
#include "crypto/signer.h"
#include "merkle/merkle_tree.h"
#include "sim/actor.h"
#include "sim/time.h"
#include "storage/partition_map.h"
#include "storage/smr_log.h"
#include "storage/versioned_store.h"
#include "txn/occ_validator.h"
#include "txn/prepared_batches.h"

namespace transedge::core {

/// Fault-injection behaviours for byzantine tests. All of them operate
/// strictly with the node's own signing capability — a byzantine node can
/// lie about content but cannot forge other nodes' signatures.
enum class ByzantineBehavior {
  kNone,
  /// Leader tampers with the value bytes of read-only responses; clients
  /// must detect this through Merkle verification.
  kTamperReadValue,
  /// Leader serves read-only responses from an old (but certified)
  /// snapshot; detectable only through the freshness window (§4.4.2).
  kStaleSnapshot,
  /// Leader proposes different batches to different halves of the
  /// cluster; consensus must not certify either.
  kEquivocate,
  /// Crash-stop: the node ignores all input.
  kCrash,
  /// During view changes the replica reports its prepare-QC lock with an
  /// inflated view number, trying to make the new leader prefer its
  /// (possibly stale) batch over a genuinely newer lock. Defeated by the
  /// view signatures embedded in prepare QCs.
  kInflateLockView,
};

/// The leader's view of the proposal chain while consensus instances are
/// pipelined: the id the next proposal must take, the proposed-but-not-
/// yet-decided batches in log order, and the Merkle tree positioned
/// after the last of them (the decided tree when none are in flight).
/// Pointers borrow from the consensus engine and are only valid for the
/// duration of the call that obtained them.
struct ProposalChain {
  BatchId next_id = 0;
  std::vector<const storage::Batch*> pending;
  const merkle::MerkleTree* head_tree = nullptr;
};

/// The narrow seam between the replica's subsystem engines and the node
/// that hosts them: identity, simulated clock/CPU, network primitives,
/// signing, and the shared storage stack. Engines (consensus, batching,
/// 2PC, read-only serving, baselines) talk only to this interface and to
/// hooks the node wires at construction — never to each other.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  // --- Identity & topology -----------------------------------------------
  virtual const SystemConfig& config() const = 0;
  virtual crypto::NodeId id() const = 0;
  virtual PartitionId partition() const = 0;
  virtual const std::vector<crypto::NodeId>& cluster_members() const = 0;
  /// Leader status under the node's current view (owned by consensus).
  virtual bool IsLeader() const = 0;
  /// True while the consensus engine holds a view-change re-proposal for
  /// the next log position (Consensus::HasPendingReproposal); the batch
  /// pipeline must not build a competing batch for that slot.
  virtual bool ReproposalPending() const { return false; }
  virtual ByzantineBehavior byzantine() const = 0;

  // --- Simulated clock & CPU ---------------------------------------------
  virtual sim::Time now() const = 0;
  /// Books `cost` on the replica's single CPU; returns completion time.
  virtual sim::Time Charge(sim::Time cost) = 0;
  virtual sim::Time busy_until() const = 0;
  virtual void Schedule(sim::Time delay, std::function<void()> fn) = 0;

  // --- Network -------------------------------------------------------------
  virtual void Send(crypto::NodeId to, const sim::MessagePtr& msg,
                    sim::Time at) = 0;
  virtual void BroadcastToCluster(const sim::MessagePtr& msg,
                                  sim::Time at) = 0;
  /// Sends `msg` to f+1 replicas of cluster `p` (the paper's redundancy
  /// against a malicious receiver dropping 2PC traffic, §3.3.1).
  virtual void SendToCluster(PartitionId p, const sim::MessagePtr& msg,
                             sim::Time at) = 0;

  // --- Crypto ---------------------------------------------------------------
  virtual crypto::Signature Sign(const Bytes& payload) = 0;
  virtual const crypto::Verifier& verifier() const = 0;

  // --- Shared storage stack (owned by the node) ----------------------------
  virtual storage::VersionedStore& mutable_store() = 0;
  virtual merkle::MerkleTree& mutable_tree() = 0;
  virtual storage::SmrLog& mutable_log() = 0;
  virtual txn::OccValidator& validator() = 0;
  virtual txn::PreparedBatches& prepared_batches() = 0;
  virtual const storage::PartitionMap& partition_map() const = 0;
  /// Footprint of prepared-but-undecided distributed transactions (rule 3
  /// of Definition 3.1); shared by admission and batch re-validation.
  virtual FootprintIndex& pending_footprint() = 0;

  /// Sliding window of per-batch Merkle snapshots for historical
  /// (second-round) reads. `SnapshotAt` requires
  /// `batch_id >= snapshot_base()`.
  virtual BatchId snapshot_base() const = 0;
  virtual const merkle::MerkleTree::Snapshot& SnapshotAt(
      BatchId batch_id) const = 0;

  /// The ONE authoritative history horizon: Merkle snapshots, key-version
  /// history, and log-entry retention are all bounded below by this id
  /// (StorageBackend::TruncateHistory is driven with it), so historical
  /// serving — including the RO service's out-of-window floor — must
  /// floor here, never at a structure-specific notion of "oldest". Equals
  /// the snapshot window base under every backend.
  virtual BatchId history_horizon() const { return snapshot_base(); }

  // --- Decided vs. applied watermarks --------------------------------------
  /// Highest batch id whose writes have reached the store and tree
  /// (`mutable_tree()` is positioned here); kNoBatch before the first
  /// apply. Trails `mutable_log().LastBatchId()` — the *decided*
  /// watermark — while the apply queue drains.
  virtual BatchId last_applied() const = 0;

  /// The Merkle tree positioned after the newest *decided* batch.
  /// Validation, proposal sealing, and catch-up chain from this tree;
  /// read-only serving stays on `mutable_tree()` (the applied tree).
  virtual const merkle::MerkleTree& decided_tree() = 0;

  /// Number of proposed-but-undecided consensus instances in flight.
  virtual size_t ConsensusInFlight() const { return 0; }

  /// min(config().pipeline_depth, engine's MaxPipelineDepth).
  virtual uint32_t EffectivePipelineDepth() const { return 1; }

  /// Chain state for building the next proposal on top of in-flight
  /// instances; degenerates to (log tail + 1, {}, decided tree) when
  /// nothing is in flight.
  virtual ProposalChain proposal_chain() = 0;

  /// Latest version of `key` in the *decided* log prefix: the applied
  /// store overlaid with the writes of decided-but-unapplied batches.
  /// A pure function of the log, so identical on every replica — unlike
  /// the applied store, whose watermark is timing-dependent once apply
  /// is asynchronous. Read-version checks (admission and batch
  /// re-validation) must resolve through this so all replicas reach the
  /// same verdict on a proposal.
  virtual BatchId LatestDecidedVersion(const Key& key) const = 0;

  /// True when apply is off the decision critical path — either the
  /// apply queue drains asynchronously or consensus runs more than one
  /// instance deep. False is the bit-identical legacy mode.
  bool DecoupledApply() const {
    return config().async_apply || EffectivePipelineDepth() > 1;
  }

  // --- Shared helpers (implemented on top of the virtuals) -----------------
  /// Restricts `txn`'s read/write sets to keys owned by this partition.
  Transaction RestrictToPartition(const Transaction& txn) const;

  /// Simulated cost of per-batch work with a superlinear pressure term.
  sim::Time BatchComputeCost(size_t batch_size, sim::Time per_txn) const;

  /// Sharded variant: the fixed and linear terms are paid once, but the
  /// superlinear pressure term (conflict-index churn, Definition 3.1
  /// re-checks) is paid per admission shard — Σᵢ quad(nᵢ) instead of
  /// quad(Σᵢ nᵢ). Equals BatchComputeCost for a single shard.
  sim::Time ShardedBatchComputeCost(const std::vector<size_t>& shard_sizes,
                                    sim::Time per_txn) const;

  /// Simulated cost of applying a decided batch of `batch_size` write
  /// transactions when the write set is carved into `shard_write_loads`
  /// (write ops per apply shard, MerkleTree::LeafShardOf carving). One
  /// shard returns exactly BatchComputeCost(batch_size, apply_per_txn);
  /// k shards pay the fixed overhead, the variable term scaled by the
  /// slowest shard's share of the write ops, and a per-shard recombine
  /// charge for hashing the shared spine back together.
  sim::Time ShardedApplyCost(size_t batch_size,
                             const std::vector<size_t>& shard_write_loads)
      const;

  /// OccValidator::CheckAgainstStore with versions resolved through
  /// `LatestDecidedVersion` instead of the applied store. Synchronous
  /// apply keeps the two identical; asynchronous apply makes this the
  /// only replica-consistent check.
  Status CheckReadVersions(const Transaction& txn) const;

  /// Sends a CommitReply to `client`. `retryable` marks aborts the client
  /// should transparently re-issue against the next leader (e.g. a view
  /// change abandoning undecided admissions) rather than surface.
  void ReplyCommit(sim::ActorId client, TxnId txn_id, bool committed,
                   const std::string& reason, sim::Time at,
                   bool retryable = false);
};

/// Wraps a wire message for the simulated network.
template <typename T>
std::shared_ptr<const T> ShareMsg(T msg) {
  return std::make_shared<const T>(std::move(msg));
}

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_NODE_CONTEXT_H_
