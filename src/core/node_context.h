#ifndef TRANSEDGE_CORE_NODE_CONTEXT_H_
#define TRANSEDGE_CORE_NODE_CONTEXT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/footprint_index.h"
#include "crypto/signer.h"
#include "merkle/merkle_tree.h"
#include "sim/actor.h"
#include "sim/time.h"
#include "storage/partition_map.h"
#include "storage/smr_log.h"
#include "storage/versioned_store.h"
#include "txn/occ_validator.h"
#include "txn/prepared_batches.h"

namespace transedge::core {

/// Fault-injection behaviours for byzantine tests. All of them operate
/// strictly with the node's own signing capability — a byzantine node can
/// lie about content but cannot forge other nodes' signatures.
enum class ByzantineBehavior {
  kNone,
  /// Leader tampers with the value bytes of read-only responses; clients
  /// must detect this through Merkle verification.
  kTamperReadValue,
  /// Leader serves read-only responses from an old (but certified)
  /// snapshot; detectable only through the freshness window (§4.4.2).
  kStaleSnapshot,
  /// Leader proposes different batches to different halves of the
  /// cluster; consensus must not certify either.
  kEquivocate,
  /// Crash-stop: the node ignores all input.
  kCrash,
};

/// The narrow seam between the replica's subsystem engines and the node
/// that hosts them: identity, simulated clock/CPU, network primitives,
/// signing, and the shared storage stack. Engines (consensus, batching,
/// 2PC, read-only serving, baselines) talk only to this interface and to
/// hooks the node wires at construction — never to each other.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  // --- Identity & topology -----------------------------------------------
  virtual const SystemConfig& config() const = 0;
  virtual crypto::NodeId id() const = 0;
  virtual PartitionId partition() const = 0;
  virtual const std::vector<crypto::NodeId>& cluster_members() const = 0;
  /// Leader status under the node's current view (owned by consensus).
  virtual bool IsLeader() const = 0;
  /// True while the consensus engine holds a view-change re-proposal for
  /// the next log position (Consensus::HasPendingReproposal); the batch
  /// pipeline must not build a competing batch for that slot.
  virtual bool ReproposalPending() const { return false; }
  virtual ByzantineBehavior byzantine() const = 0;

  // --- Simulated clock & CPU ---------------------------------------------
  virtual sim::Time now() const = 0;
  /// Books `cost` on the replica's single CPU; returns completion time.
  virtual sim::Time Charge(sim::Time cost) = 0;
  virtual sim::Time busy_until() const = 0;
  virtual void Schedule(sim::Time delay, std::function<void()> fn) = 0;

  // --- Network -------------------------------------------------------------
  virtual void Send(crypto::NodeId to, const sim::MessagePtr& msg,
                    sim::Time at) = 0;
  virtual void BroadcastToCluster(const sim::MessagePtr& msg,
                                  sim::Time at) = 0;
  /// Sends `msg` to f+1 replicas of cluster `p` (the paper's redundancy
  /// against a malicious receiver dropping 2PC traffic, §3.3.1).
  virtual void SendToCluster(PartitionId p, const sim::MessagePtr& msg,
                             sim::Time at) = 0;

  // --- Crypto ---------------------------------------------------------------
  virtual crypto::Signature Sign(const Bytes& payload) = 0;
  virtual const crypto::Verifier& verifier() const = 0;

  // --- Shared storage stack (owned by the node) ----------------------------
  virtual storage::VersionedStore& mutable_store() = 0;
  virtual merkle::MerkleTree& mutable_tree() = 0;
  virtual storage::SmrLog& mutable_log() = 0;
  virtual txn::OccValidator& validator() = 0;
  virtual txn::PreparedBatches& prepared_batches() = 0;
  virtual const storage::PartitionMap& partition_map() const = 0;
  /// Footprint of prepared-but-undecided distributed transactions (rule 3
  /// of Definition 3.1); shared by admission and batch re-validation.
  virtual FootprintIndex& pending_footprint() = 0;

  /// Sliding window of per-batch Merkle snapshots for historical
  /// (second-round) reads. `SnapshotAt` requires
  /// `batch_id >= snapshot_base()`.
  virtual BatchId snapshot_base() const = 0;
  virtual const merkle::MerkleTree::Snapshot& SnapshotAt(
      BatchId batch_id) const = 0;

  // --- Shared helpers (implemented on top of the virtuals) -----------------
  /// Restricts `txn`'s read/write sets to keys owned by this partition.
  Transaction RestrictToPartition(const Transaction& txn) const;

  /// Simulated cost of per-batch work with a superlinear pressure term.
  sim::Time BatchComputeCost(size_t batch_size, sim::Time per_txn) const;

  /// Sharded variant: the fixed and linear terms are paid once, but the
  /// superlinear pressure term (conflict-index churn, Definition 3.1
  /// re-checks) is paid per admission shard — Σᵢ quad(nᵢ) instead of
  /// quad(Σᵢ nᵢ). Equals BatchComputeCost for a single shard.
  sim::Time ShardedBatchComputeCost(const std::vector<size_t>& shard_sizes,
                                    sim::Time per_txn) const;

  /// Sends a CommitReply to `client`. `retryable` marks aborts the client
  /// should transparently re-issue against the next leader (e.g. a view
  /// change abandoning undecided admissions) rather than surface.
  void ReplyCommit(sim::ActorId client, TxnId txn_id, bool committed,
                   const std::string& reason, sim::Time at,
                   bool retryable = false);
};

/// Wraps a wire message for the simulated network.
template <typename T>
std::shared_ptr<const T> ShareMsg(T msg) {
  return std::make_shared<const T>(std::move(msg));
}

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_NODE_CONTEXT_H_
