#ifndef TRANSEDGE_CORE_TWO_PC_COORDINATOR_H_
#define TRANSEDGE_CORE_TWO_PC_COORDINATOR_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/node_context.h"
#include "storage/batch.h"
#include "wire/message.h"

namespace transedge::core {

/// Cross-cluster 2PC for distributed transactions (§3.3): coordinator
/// state (collected prepared messages, decisions) and participant state
/// (transactions we prepared for a remote coordinator). Every message
/// leg uses the f+1 `SendToCluster` redundancy and is backed by a batch
/// certificate from the sender's cluster.
///
/// Admission of participant transactions is delegated to the batch
/// pipeline through hooks; decisions are recorded into the shared
/// prepared-batches structure and reach the log via the next batch's
/// committed segment.
class TwoPcCoordinator {
 public:
  struct Stats {
    uint64_t dist_committed = 0;
    uint64_t dist_aborted = 0;
  };

  struct Hooks {
    /// 2PC dedup owned by admission (covers client retries too).
    std::function<bool(TxnId)> already_seen;
    /// Participant-side admission: marks seen and enqueues on success.
    std::function<Status(const Transaction&)> admit_prepared;
    /// Size-triggered proposal check after enqueueing a participant txn.
    std::function<void()> maybe_propose;
    /// True while the id's footprint is still held by admission: admitted
    /// here and neither applied nor abandoned. Distinguishes an in-flight
    /// prepare (report follows its batch) from a final no-vote when a
    /// resuming coordinator re-asks for our vote.
    std::function<bool(TxnId)> in_flight;
  };

  TwoPcCoordinator(NodeContext* ctx, Hooks hooks);

  /// Starts coordinating `txn` for `client` (admission already passed).
  void BeginCoordination(const Transaction& txn, sim::ActorId client);

  void HandleCoordPrepare(sim::ActorId from, const wire::CoordPrepareMsg& msg);
  void HandlePrepared(sim::ActorId from, const wire::PreparedMsg& msg);
  void HandleCommitRecord(sim::ActorId from, const wire::CommitRecordMsg& msg);

  /// Leader-side 2PC follow-ups after a decided batch was applied and
  /// logged: coordinator prepares (step 3), participant prepared reports
  /// (step 5), and commit-record fan-out + client replies (steps 7–8).
  void OnBatchApplied(const storage::Batch& logged,
                      const storage::BatchCertificate& cert);

  /// A new view was adopted. Two cleanups keep distributed transactions
  /// from stranding across the leader handover (ROADMAP's stranded-2PC
  /// item, resume variant):
  ///
  ///   - A *demoted* coordinator drops every coordinator entry it still
  ///     holds: it can drive none of them any further — votes route to
  ///     the new leader, and even an already-collected decision only
  ///     reaches clients and participants through the leader-only
  ///     OnBatchApplied path. Entries whose prepare already reached the
  ///     replicated prepared-batches structure are dropped *silently*
  ///     (the new leader resumes them and the client's timeout retry
  ///     reattaches, so the transaction can still commit); only
  ///     never-logged admissions — wiped from the pipeline's queues by
  ///     the view change, never decidable — are abort-replied
  ///     (retryable). A (re-elected) leader keeps everything it can
  ///     still drive.
  ///   - The *new* leader *resumes* undecided prepare groups coordinated
  ///     by this partition that it holds no coordination state for (they
  ///     were driven by the demoted leader): it rebuilds the coordinator
  ///     entry from the logged prepare batch — own yes-vote, CD vector,
  ///     and certificate all come from the log entry — and re-sends the
  ///     coordinator-prepares with the `resend` flag so participants
  ///     re-report their votes from replicated state. Only when the
  ///     prepare batch has fallen below the history horizon (no
  ///     certificate left to re-prove with) does it fall back to a
  ///     unilateral abort.
  void OnViewChange();

  /// A client retry landed for a transaction this coordinator owns but
  /// has no (or an orphaned) client for — the demoted leader took the
  /// client identity down with it. Attaches `client` to the live
  /// coordination entry, or answers immediately when the resumed
  /// transaction already decided and applied. False when the id is not
  /// ours — the caller proceeds with ordinary admission/dedup.
  bool ReattachClient(TxnId txn_id, sim::ActorId client);

  const Stats& stats() const { return stats_; }

 private:
  struct CoordinatorTxn {
    Transaction txn;
    sim::ActorId client = 0;
    std::map<PartitionId, storage::PreparedInfo> collected;
    bool decided = false;
    bool decision = false;
  };

  void MaybeDecide2pc(TxnId txn_id);

  /// New-leader side of the handover: rebuilds a coordinator entry for
  /// an inherited pending transaction and re-solicits the participant
  /// votes (resume), or records a unilateral abort when the prepare
  /// batch is no longer in the log.
  void ResumeCoordination(const Transaction& txn, sim::Time at);

  NodeContext* ctx_;
  Hooks hooks_;

  /// Ordered by TxnId: OnViewChange drains this map emitting client
  /// abort replies, so iteration order must be deterministic.
  std::map<TxnId, CoordinatorTxn> coord_txns_;
  std::unordered_set<TxnId> participant_pending_;  // We prepared, not coord.
  /// Outcomes of resumed transactions that decided while orphaned (no
  /// client attached): the client's timeout retry is answered from here.
  std::unordered_map<TxnId, bool> orphan_outcomes_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_TWO_PC_COORDINATOR_H_
