#ifndef TRANSEDGE_CORE_TWO_PC_COORDINATOR_H_
#define TRANSEDGE_CORE_TWO_PC_COORDINATOR_H_

#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/node_context.h"
#include "storage/batch.h"
#include "wire/message.h"

namespace transedge::core {

/// Cross-cluster 2PC for distributed transactions (§3.3): coordinator
/// state (collected prepared messages, decisions) and participant state
/// (transactions we prepared for a remote coordinator). Every message
/// leg uses the f+1 `SendToCluster` redundancy and is backed by a batch
/// certificate from the sender's cluster.
///
/// Admission of participant transactions is delegated to the batch
/// pipeline through hooks; decisions are recorded into the shared
/// prepared-batches structure and reach the log via the next batch's
/// committed segment.
class TwoPcCoordinator {
 public:
  struct Stats {
    uint64_t dist_committed = 0;
    uint64_t dist_aborted = 0;
  };

  struct Hooks {
    /// 2PC dedup owned by admission (covers client retries too).
    std::function<bool(TxnId)> already_seen;
    /// Participant-side admission: marks seen and enqueues on success.
    std::function<Status(const Transaction&)> admit_prepared;
    /// Size-triggered proposal check after enqueueing a participant txn.
    std::function<void()> maybe_propose;
  };

  TwoPcCoordinator(NodeContext* ctx, Hooks hooks);

  /// Starts coordinating `txn` for `client` (admission already passed).
  void BeginCoordination(const Transaction& txn, sim::ActorId client);

  void HandleCoordPrepare(sim::ActorId from, const wire::CoordPrepareMsg& msg);
  void HandlePrepared(sim::ActorId from, const wire::PreparedMsg& msg);
  void HandleCommitRecord(sim::ActorId from, const wire::CommitRecordMsg& msg);

  /// Leader-side 2PC follow-ups after a decided batch was applied and
  /// logged: coordinator prepares (step 3), participant prepared reports
  /// (step 5), and commit-record fan-out + client replies (steps 7–8).
  void OnBatchApplied(const storage::Batch& logged,
                      const storage::BatchCertificate& cert);

  /// A new view was adopted. Two cleanups keep distributed transactions
  /// from stranding across the leader handover (ROADMAP's stranded-2PC
  /// item, simple variant):
  ///
  ///   - A *demoted* coordinator drops every coordinator entry it still
  ///     holds and abort-replies the waiting clients (retryable): it can
  ///     drive none of them any further — votes route to the new leader,
  ///     and even an already-collected decision only reaches clients and
  ///     participants through the leader-only OnBatchApplied path. A
  ///     (re-elected) leader drops only undecided admissions the view
  ///     change wiped from the pipeline's queues (never logged, never
  ///     decidable), mirroring the pipeline's handling of local waiting
  ///     clients.
  ///   - The *new* leader unilaterally aborts undecided prepare groups
  ///     coordinated by this partition that it holds no coordination
  ///     state for (they were driven by the demoted leader): it records
  ///     an abort decision so the group drains through the next batch's
  ///     committed segment, and fans the abort to the participants when
  ///     that batch applies.
  void OnViewChange();

  const Stats& stats() const { return stats_; }

 private:
  struct CoordinatorTxn {
    Transaction txn;
    sim::ActorId client = 0;
    std::map<PartitionId, storage::PreparedInfo> collected;
    bool decided = false;
    bool decision = false;
  };

  void MaybeDecide2pc(TxnId txn_id);

  NodeContext* ctx_;
  Hooks hooks_;

  /// Ordered by TxnId: OnViewChange drains this map emitting client
  /// abort replies, so iteration order must be deterministic.
  std::map<TxnId, CoordinatorTxn> coord_txns_;
  std::unordered_set<TxnId> participant_pending_;  // We prepared, not coord.
  /// Transactions this (new) leader unilaterally aborted on view
  /// adoption, kept so the abort's commit record can still be fanned out
  /// to the participants (there is no CoordinatorTxn entry to consult).
  std::unordered_map<TxnId, Transaction> unilateral_aborts_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_TWO_PC_COORDINATOR_H_
