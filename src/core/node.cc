#include "core/node.h"

#include <algorithm>
#include <cassert>

namespace transedge::core {

namespace {

/// Bytes signed by the leader over a proposed batch.
Bytes DigestSignPayload(const crypto::Digest& digest) {
  Encoder enc;
  enc.PutString("transedge-batch-proposal");
  enc.PutRaw(digest.bytes.data(), digest.bytes.size());
  return enc.Take();
}

template <typename T>
std::shared_ptr<const T> Share(T msg) {
  return std::make_shared<const T>(std::move(msg));
}

}  // namespace

// ---------------------------------------------------------------------------
// RoLockTable / FootprintIndex
// ---------------------------------------------------------------------------

void RoLockTable::Lock(uint64_t request_id, const std::vector<Key>& keys) {
  for (const Key& k : keys) ++shared_[k];
  by_request_[request_id] = keys;
}

void RoLockTable::Release(uint64_t request_id) {
  auto it = by_request_.find(request_id);
  if (it == by_request_.end()) return;
  for (const Key& k : it->second) {
    auto sit = shared_.find(k);
    if (sit != shared_.end() && --sit->second <= 0) shared_.erase(sit);
  }
  by_request_.erase(it);
}

bool RoLockTable::BlocksWriter(const Transaction& txn) const {
  if (shared_.empty()) return false;
  for (const WriteOp& w : txn.write_set) {
    if (shared_.count(w.key) > 0) return true;
  }
  return false;
}

void FootprintIndex::Add(const Transaction& txn) {
  for (const ReadOp& r : txn.read_set) ++readers_[r.key];
  for (const WriteOp& w : txn.write_set) ++writers_[w.key];
}

void FootprintIndex::Remove(const Transaction& txn) {
  for (const ReadOp& r : txn.read_set) {
    auto it = readers_.find(r.key);
    if (it != readers_.end() && --it->second <= 0) readers_.erase(it);
  }
  for (const WriteOp& w : txn.write_set) {
    auto it = writers_.find(w.key);
    if (it != writers_.end() && --it->second <= 0) writers_.erase(it);
  }
}

bool FootprintIndex::ConflictsWith(const Transaction& txn) const {
  for (const WriteOp& w : txn.write_set) {
    if (writers_.count(w.key) > 0 || readers_.count(w.key) > 0) return true;
  }
  for (const ReadOp& r : txn.read_set) {
    if (writers_.count(r.key) > 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Construction / startup
// ---------------------------------------------------------------------------

TransEdgeNode::TransEdgeNode(const SystemConfig& config, crypto::NodeId id,
                             sim::Environment* env,
                             std::unique_ptr<crypto::Signer> signer,
                             const crypto::Verifier* verifier)
    : config_(config),
      id_(id),
      partition_(config.PartitionOfNode(id)),
      env_(env),
      signer_(std::move(signer)),
      verifier_(verifier),
      partition_map_(config.num_partitions),
      cluster_members_(config.ClusterMembers(partition_)),
      tree_(config.merkle_depth),
      validator_(&store_) {}

void TransEdgeNode::Preload(const storage::VersionedStore& store,
                            const merkle::MerkleTree& tree) {
  store_ = store;
  tree_ = tree.Clone();
}

void TransEdgeNode::OnStart() {
  // Every replica runs the batch timer; only the current leader acts on
  // it. That way a freshly elected leader starts batching immediately.
  env_->Schedule(config_.batch_interval, [this] { OnBatchTimer(); });
  // The genesis batch certifies the preloaded state right away so that
  // read-only transactions have a certificate to verify against.
  if (byzantine_ != ByzantineBehavior::kCrash && ShouldPropose()) {
    ProposeBatch();
  }
}

void TransEdgeNode::OnBatchTimer() {
  if (byzantine_ != ByzantineBehavior::kCrash) {
    if (ShouldPropose()) ProposeBatch();
  }
  env_->Schedule(config_.batch_interval, [this] { OnBatchTimer(); });
}

bool TransEdgeNode::ShouldPropose() const {
  if (!IsLeader() || proposing_) return false;
  if (log_.empty()) return true;  // Genesis batch, certifies preload state.
  if (!inprog_local_.empty() || !inprog_prepared_.empty()) return true;
  if (prepared_batches_.OldestReady()) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Message dispatch
// ---------------------------------------------------------------------------

void TransEdgeNode::OnMessage(sim::ActorId from, const sim::MessagePtr& msg) {
  if (byzantine_ == ByzantineBehavior::kCrash) return;
  Charge(config_.cost.message_handling);

  using wire::MessageType;
  auto type = static_cast<MessageType>(msg->type());

  // Leader-bound traffic arriving at a follower (stale view at the
  // sender) is forwarded to the follower's current leader.
  const bool leader_bound =
      type == MessageType::kCommitRequest ||
      type == MessageType::kCoordPrepare || type == MessageType::kPrepared ||
      type == MessageType::kCommitRecord || type == MessageType::kRoRequest ||
      type == MessageType::kRoBatchRequest ||
      type == MessageType::kAugustusRoRequest ||
      type == MessageType::kAugustusRelease;
  if (leader_bound && !IsLeader()) {
    Send(config_.LeaderOf(partition_, view_), msg, cpu_.busy_until());
    // Expect the leader to make progress on the forwarded work; if the
    // log does not advance, demand a view change (PBFT-style liveness).
    StartViewChangeTimer(log_.LastBatchId() + 1);
    return;
  }

  switch (type) {
    case MessageType::kClientRead:
      HandleClientRead(from, static_cast<const wire::ClientReadRequest&>(*msg));
      break;
    case MessageType::kCommitRequest:
      HandleCommitRequest(from, static_cast<const wire::CommitRequest&>(*msg));
      break;
    case MessageType::kRoRequest:
      HandleRoRequest(from, static_cast<const wire::RoRequest&>(*msg));
      break;
    case MessageType::kRoBatchRequest:
      HandleRoBatchRequest(from,
                           static_cast<const wire::RoBatchRequest&>(*msg));
      break;
    case MessageType::kPrePrepare:
      HandlePrePrepare(from, static_cast<const wire::PrePrepareMsg&>(*msg));
      break;
    case MessageType::kPrepare:
      HandlePrepare(from, static_cast<const wire::PrepareMsg&>(*msg));
      break;
    case MessageType::kCommit:
      HandleCommit(from, static_cast<const wire::CommitMsg&>(*msg));
      break;
    case MessageType::kViewChange:
      HandleViewChange(from, static_cast<const wire::ViewChangeMsg&>(*msg));
      break;
    case MessageType::kCoordPrepare:
      HandleCoordPrepare(from, static_cast<const wire::CoordPrepareMsg&>(*msg));
      break;
    case MessageType::kPrepared:
      HandlePrepared(from, static_cast<const wire::PreparedMsg&>(*msg));
      break;
    case MessageType::kCommitRecord:
      HandleCommitRecord(from,
                         static_cast<const wire::CommitRecordMsg&>(*msg));
      break;
    case MessageType::kAugustusRoRequest:
      HandleAugustusRoRequest(
          from, static_cast<const wire::AugustusRoRequest&>(*msg));
      break;
    case MessageType::kAugustusVoteRequest:
      HandleAugustusVoteRequest(
          from, static_cast<const wire::AugustusVoteRequest&>(*msg));
      break;
    case MessageType::kAugustusVoteReply:
      HandleAugustusVoteReply(
          from, static_cast<const wire::AugustusVoteReply&>(*msg));
      break;
    case MessageType::kAugustusRelease:
      HandleAugustusRelease(from,
                            static_cast<const wire::AugustusRelease&>(*msg));
      break;
    default:
      break;  // Unknown or client-side message types are ignored.
  }
}

void TransEdgeNode::Send(crypto::NodeId to, const sim::MessagePtr& msg,
                         sim::Time at) {
  env_->network().SendAt(at, id_, to, msg);
}

void TransEdgeNode::BroadcastToCluster(const sim::MessagePtr& msg,
                                       sim::Time at) {
  for (crypto::NodeId member : cluster_members_) {
    if (member != id_) Send(member, msg, at);
  }
}

void TransEdgeNode::SendToCluster(PartitionId p, const sim::MessagePtr& msg,
                                  sim::Time at) {
  // f+1 receivers: at least one is honest and will get the message to the
  // cluster's leader (§3.3.1).
  for (uint32_t i = 0; i <= config_.f; ++i) {
    Send(config_.ReplicaNode(p, i), msg, at);
  }
}

sim::Time TransEdgeNode::BatchComputeCost(size_t batch_size,
                                          sim::Time per_txn) const {
  double quad = config_.cost.batch_quadratic_ns *
                static_cast<double>(batch_size) *
                static_cast<double>(batch_size) / 1000.0;
  return config_.cost.batch_overhead +
         per_txn * static_cast<sim::Time>(batch_size) +
         static_cast<sim::Time>(quad);
}

// ---------------------------------------------------------------------------
// Admission (leader)
// ---------------------------------------------------------------------------

Transaction TransEdgeNode::RestrictToPartition(const Transaction& txn) const {
  Transaction out;
  out.id = txn.id;
  out.participants = txn.participants;
  out.coordinator = txn.coordinator;
  out.read_set = partition_map_.ReadsFor(txn, partition_);
  out.write_set = partition_map_.WritesFor(txn, partition_);
  return out;
}

Status TransEdgeNode::AdmitCheck(const Transaction& txn) {
  // Rule 1 of Definition 3.1 applies to the keys this partition owns.
  Transaction restricted = RestrictToPartition(txn);
  TE_RETURN_IF_ERROR(validator_.CheckAgainstStore(restricted));
  // Rules 2 and 3 use the full footprint: a conflict on a remote key is a
  // conflict the remote partition would reject anyway; catching it here
  // aborts earlier and keeps prepare groups conflict-free.
  if (inprog_index_.ConflictsWith(txn)) {
    return Status::Conflict("conflicts with in-progress batch");
  }
  if (pending_index_.ConflictsWith(txn)) {
    return Status::Conflict("conflicts with a prepared transaction");
  }
  // Augustus baseline: shared read locks block writers (Table 1's
  // interference). TransEdge's own read-only path never takes locks.
  if (!txn.write_set.empty() && ro_locks_.BlocksWriter(restricted)) {
    ++stats_.rw_aborted_by_ro_locks;
    return Status::Conflict("write key is read-locked (Augustus baseline)");
  }
  return Status::OK();
}

void TransEdgeNode::HandleClientRead(sim::ActorId from,
                                     const wire::ClientReadRequest& msg) {
  wire::ClientReadReply reply;
  reply.request_id = msg.request_id;
  reply.key = msg.key;
  Result<storage::VersionedValue> value = store_.Get(msg.key);
  if (value.ok()) {
    reply.found = true;
    reply.value = value->value;
    reply.version = value->version;
  }
  sim::Time done = Charge(config_.cost.ro_serve_per_key);
  Send(msg.reply_to != 0 ? msg.reply_to : from, Share(std::move(reply)), done);
}

void TransEdgeNode::ReplyCommit(sim::ActorId client, TxnId txn_id,
                                bool committed, const std::string& reason,
                                sim::Time at) {
  wire::CommitReply reply;
  reply.txn_id = txn_id;
  reply.committed = committed;
  reply.reason = reason;
  Send(client, Share(std::move(reply)), at);
}

void TransEdgeNode::HandleCommitRequest(sim::ActorId from,
                                        const wire::CommitRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  const Transaction& txn = msg.txn;
  if (seen_txns_.count(txn.id) > 0) return;  // Duplicate / retry.

  sim::Time done = Charge(config_.cost.admit_per_txn);
  Status admit = AdmitCheck(txn);

  if (txn.IsLocal()) {
    if (!admit.ok()) {
      ++stats_.local_aborted;
      ReplyCommit(client, txn.id, false, admit.message(), done);
      return;
    }
    seen_txns_.insert(txn.id);
    inprog_local_.push_back(txn);
    inprog_index_.Add(txn);
    local_waiting_clients_[txn.id] = client;
  } else {
    if (txn.coordinator != partition_) {
      ReplyCommit(client, txn.id, false, "wrong coordinator cluster", done);
      return;
    }
    if (!admit.ok()) {
      ++stats_.dist_aborted;
      ReplyCommit(client, txn.id, false, admit.message(), done);
      return;
    }
    seen_txns_.insert(txn.id);
    inprog_prepared_.push_back(txn);
    inprog_index_.Add(txn);
    CoordinatorTxn coord;
    coord.txn = txn;
    coord.client = client;
    coord_txns_[txn.id] = std::move(coord);
  }

  if (inprog_local_.size() + inprog_prepared_.size() >=
          config_.max_batch_size &&
      !proposing_) {
    ProposeBatch();
  }
}

// ---------------------------------------------------------------------------
// Batch building and consensus
// ---------------------------------------------------------------------------

storage::Batch TransEdgeNode::BuildBatch() {
  storage::Batch batch;
  batch.partition = partition_;
  batch.id = log_.LastBatchId() + 1;
  batch.local = std::move(inprog_local_);
  batch.prepared = std::move(inprog_prepared_);
  inprog_local_.clear();
  inprog_prepared_.clear();

  // Committed segment: the ready prefix of prepare groups, in prepare
  // order (Definition 4.1).
  BatchId lce = log_.empty() ? kNoBatch : log_.back().batch.ro.lce;
  CdVector cd = log_.empty() ? CdVector(config_.num_partitions)
                             : log_.back().batch.ro.cd_vector;
  if (cd.empty()) cd = CdVector(config_.num_partitions);

  for (const txn::PrepareGroup* group : prepared_batches_.ReadyPrefix()) {
    for (const txn::PendingTxn& pending : group->txns) {
      storage::CommitRecord rec;
      rec.txn_id = pending.txn.id;
      rec.committed = pending.state == txn::PendingTxn::State::kCommitted;
      rec.prepared_in_batch = group->prepared_in_batch;
      rec.participant_info = pending.participant_info;
      batch.committed.push_back(std::move(rec));
    }
    lce = group->prepared_in_batch;
  }

  // Algorithm 1: derive the CD vector from the previous batch's vector
  // and the CD vectors reported in the prepared messages of every commit
  // record in the committed segment.
  for (const storage::CommitRecord& rec : batch.committed) {
    if (!rec.committed) continue;  // Aborts introduce no dependencies.
    for (const storage::PreparedInfo& info : rec.participant_info) {
      if (info.cd_vector.size() == cd.size()) cd.PairwiseMax(info.cd_vector);
    }
  }
  cd.Set(partition_, batch.id);

  batch.ro.cd_vector = std::move(cd);
  batch.ro.lce = lce;
  batch.ro.timestamp_us = env_->now();
  return batch;
}

namespace {

/// Applies the writes a batch commits (local transactions + committed
/// distributed transactions) to `tree`, restricted to this partition's
/// keys. `resolve` maps a commit record to its transaction.
template <typename Resolver>
void ApplyWritesToTree(merkle::MerkleTree* tree,
                       const storage::PartitionMap& pmap, PartitionId self,
                       const storage::Batch& batch, Resolver resolve) {
  for (const Transaction& t : batch.local) {
    for (const WriteOp& w : pmap.WritesFor(t, self)) {
      tree->Put(w.key, w.value, batch.id);
    }
  }
  for (const storage::CommitRecord& rec : batch.committed) {
    if (!rec.committed) continue;
    const Transaction* t = resolve(rec.txn_id);
    if (t == nullptr) continue;
    for (const WriteOp& w : pmap.WritesFor(*t, self)) {
      tree->Put(w.key, w.value, batch.id);
    }
  }
}

}  // namespace

void TransEdgeNode::ProposeBatch() {
  proposing_ = true;
  storage::Batch batch = BuildBatch();
  size_t batch_size = batch.TotalTransactions();
  sim::Time done = Charge(
      BatchComputeCost(batch_size, config_.cost.admit_per_txn / 4) +
      config_.cost.signature_op);

  auto [it, inserted] =
      instances_.try_emplace(batch.id, config_.merkle_depth);
  ConsensusInstance& inst = it->second;
  inst.has_batch = true;

  // Compute the post-state Merkle root on a structural-sharing clone.
  inst.post_tree = tree_.Clone();
  ApplyWritesToTree(&inst.post_tree, partition_map_, partition_, batch,
                    [this](TxnId id) { return prepared_batches_.FindTxn(id); });
  batch.ro.merkle_root = inst.post_tree.RootDigest();

  inst.batch = batch;
  inst.digest = batch.ComputeDigest();
  inst.validated = true;

  // Leader's own certificate share doubles as its prepare vote.
  storage::BatchCertificate payload;
  payload.partition = partition_;
  payload.batch_id = batch.id;
  payload.batch_digest = inst.digest;
  payload.merkle_root = batch.ro.merkle_root;
  payload.ro_digest = batch.ro.ComputeDigest();
  crypto::Signature share = signer_->Sign(payload.SignedPayload());
  inst.prepare_votes[id_] = inst.digest;
  inst.cert_shares[id_] = share;
  inst.sent_prepare = true;

  wire::PrePrepareMsg msg;
  msg.view = view_;
  msg.batch = std::move(batch);
  msg.leader_signature = signer_->Sign(DigestSignPayload(inst.digest));
  msg.leader_cert_share = share;

  if (config_.simulate_shared_merkle) {
    msg.post_snapshot = inst.post_tree.GetSnapshot();
  }

  if (byzantine_ == ByzantineBehavior::kEquivocate) {
    // Send a conflicting variant to half the cluster: same transactions,
    // different timestamp => different digest. Neither variant can gather
    // a quorum of matching votes.
    wire::PrePrepareMsg alt = msg;
    alt.batch.ro.timestamp_us += 1;
    crypto::Digest alt_digest = alt.batch.ComputeDigest();
    alt.leader_signature = signer_->Sign(DigestSignPayload(alt_digest));
    storage::BatchCertificate alt_payload = payload;
    alt_payload.batch_digest = alt_digest;
    alt_payload.ro_digest = alt.batch.ro.ComputeDigest();
    alt.leader_cert_share = signer_->Sign(alt_payload.SignedPayload());
    auto shared_main = Share(std::move(msg));
    auto shared_alt = Share(std::move(alt));
    bool flip = false;
    for (crypto::NodeId member : cluster_members_) {
      if (member == id_) continue;
      Send(member, flip ? shared_alt : shared_main, done);
      flip = !flip;
    }
    return;
  }

  BroadcastToCluster(Share(std::move(msg)), done);
  StartViewChangeTimer(inst.batch.id);
}

void TransEdgeNode::HandlePrePrepare(sim::ActorId from,
                                     const wire::PrePrepareMsg& msg) {
  if (msg.view != view_) return;
  if (from != config_.LeaderOf(partition_, view_)) return;
  BatchId id = msg.batch.id;
  if (id <= log_.LastBatchId()) return;  // Already decided.

  auto [it, inserted] = instances_.try_emplace(id, config_.merkle_depth);
  ConsensusInstance& inst = it->second;
  if (inst.has_batch) return;  // First proposal wins; duplicates ignored.

  crypto::Digest digest = msg.batch.ComputeDigest();
  if (!verifier_->Verify(DigestSignPayload(digest), msg.leader_signature) ||
      msg.leader_signature.signer != from) {
    return;  // Forged or corrupted proposal.
  }
  inst.has_batch = true;
  inst.batch = msg.batch;
  inst.digest = digest;
  inst.adopted_snapshot = msg.post_snapshot;
  inst.prepare_votes[from] = digest;
  inst.cert_shares[from] = msg.leader_cert_share;

  StartViewChangeTimer(id);
  AdvanceConsensus();
}

void TransEdgeNode::HandlePrepare(sim::ActorId from,
                                  const wire::PrepareMsg& msg) {
  if (msg.view != view_) return;
  if (msg.batch_id <= log_.LastBatchId()) return;
  auto [it, inserted] =
      instances_.try_emplace(msg.batch_id, config_.merkle_depth);
  it->second.prepare_votes[from] = msg.batch_digest;
  it->second.cert_shares[from] = msg.cert_share;
  AdvanceConsensus();
}

void TransEdgeNode::HandleCommit(sim::ActorId from,
                                 const wire::CommitMsg& msg) {
  if (msg.view != view_) return;
  if (msg.batch_id <= log_.LastBatchId()) return;
  auto [it, inserted] =
      instances_.try_emplace(msg.batch_id, config_.merkle_depth);
  it->second.commit_votes[from] = msg.batch_digest;
  AdvanceConsensus();
}

namespace {
size_t CountMatching(const std::map<crypto::NodeId, crypto::Digest>& votes,
                     const crypto::Digest& digest) {
  size_t n = 0;
  for (const auto& [node, d] : votes) {
    if (d == digest) ++n;
  }
  return n;
}
}  // namespace

void TransEdgeNode::AdvanceConsensus() {
  BatchId next = log_.LastBatchId() + 1;
  auto it = instances_.find(next);
  if (it == instances_.end()) return;
  ConsensusInstance& inst = it->second;
  if (!inst.has_batch) return;

  if (!inst.validated && !inst.validation_failed) {
    Status s = ValidateProposedBatch(&inst);
    if (!s.ok()) {
      // A correct replica stays silent on an invalid proposal; the
      // progress timer will trigger a view change.
      inst.validation_failed = true;
      return;
    }
    inst.validated = true;
  }
  if (inst.validation_failed) return;

  if (!inst.sent_prepare) {
    storage::BatchCertificate payload;
    payload.partition = partition_;
    payload.batch_id = inst.batch.id;
    payload.batch_digest = inst.digest;
    payload.merkle_root = inst.batch.ro.merkle_root;
    payload.ro_digest = inst.batch.ro.ComputeDigest();
    crypto::Signature share = signer_->Sign(payload.SignedPayload());
    inst.prepare_votes[id_] = inst.digest;
    inst.cert_shares[id_] = share;
    inst.sent_prepare = true;

    wire::PrepareMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.batch_digest = inst.digest;
    msg.cert_share = share;
    BroadcastToCluster(Share(std::move(msg)),
                       Charge(config_.cost.signature_op));
  }

  if (inst.sent_prepare && !inst.sent_commit &&
      CountMatching(inst.prepare_votes, inst.digest) >=
          config_.quorum_size()) {
    inst.commit_votes[id_] = inst.digest;
    inst.sent_commit = true;
    wire::CommitMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.batch_digest = inst.digest;
    BroadcastToCluster(Share(std::move(msg)), cpu_.busy_until());
  }

  if (inst.sent_commit && !inst.decided &&
      CountMatching(inst.commit_votes, inst.digest) >=
          config_.quorum_size()) {
    inst.decided = true;
    ConsensusInstance decided = std::move(inst);
    instances_.erase(it);
    ApplyDecidedBatch(std::move(decided));
  }
}

Status TransEdgeNode::ValidateProposedBatch(ConsensusInstance* inst) {
  const storage::Batch& batch = *&inst->batch;
  if (batch.partition != partition_) {
    return Status::InvalidArgument("batch for wrong partition");
  }
  if (batch.id != log_.LastBatchId() + 1) {
    return Status::FailedPrecondition("batch id not next in log");
  }

  // Freshness window (§4.4.2): a malicious leader cannot timestamp a
  // batch far from real time.
  int64_t skew = batch.ro.timestamp_us - env_->now();
  if (skew < -config_.freshness_window || skew > config_.freshness_window) {
    return Status::VerificationFailed("batch timestamp outside window");
  }

  Charge(BatchComputeCost(batch.TotalTransactions(),
                          config_.cost.validate_per_txn));

  // Re-run Definition 3.1 on every transaction the leader admitted.
  FootprintIndex batch_index;
  auto check = [&](const Transaction& t) -> Status {
    Transaction restricted = RestrictToPartition(t);
    TE_RETURN_IF_ERROR(validator_.CheckAgainstStore(restricted));
    if (batch_index.ConflictsWith(t)) {
      return Status::Conflict("conflict inside proposed batch");
    }
    if (pending_index_.ConflictsWith(t)) {
      return Status::Conflict("conflict with prepared transaction");
    }
    batch_index.Add(t);
    return Status::OK();
  };
  for (const Transaction& t : batch.local) TE_RETURN_IF_ERROR(check(t));
  for (const Transaction& t : batch.prepared) TE_RETURN_IF_ERROR(check(t));

  // The committed segment must be exactly a ready prefix of our prepare
  // groups, in Definition 4.1 order.
  {
    std::vector<BatchId> group_ids;
    for (const storage::CommitRecord& rec : batch.committed) {
      if (group_ids.empty() || group_ids.back() != rec.prepared_in_batch) {
        group_ids.push_back(rec.prepared_in_batch);
      }
      if (prepared_batches_.FindTxn(rec.txn_id) == nullptr) {
        return Status::VerificationFailed(
            "commit record references unknown transaction");
      }
    }
    for (size_t i = 1; i < group_ids.size(); ++i) {
      if (group_ids[i - 1] >= group_ids[i]) {
        return Status::VerificationFailed(
            "commit records violate prepare-group order");
      }
    }
    if (!group_ids.empty()) {
      const txn::PrepareGroup* oldest = prepared_batches_.Oldest();
      if (oldest == nullptr ||
          oldest->prepared_in_batch != group_ids.front()) {
        return Status::VerificationFailed(
            "committed segment does not start at the oldest prepare group");
      }
    }
  }

  // LCE: must be the prepare-batch id of the last committed group, or
  // carried forward.
  BatchId expected_lce = log_.empty() ? kNoBatch : log_.back().batch.ro.lce;
  if (!batch.committed.empty()) {
    expected_lce = batch.committed.back().prepared_in_batch;
  }
  if (batch.ro.lce != expected_lce) {
    return Status::VerificationFailed("LCE mismatch");
  }

  // CD vector: re-run Algorithm 1 and compare.
  CdVector cd = log_.empty() ? CdVector(config_.num_partitions)
                             : log_.back().batch.ro.cd_vector;
  if (cd.empty()) cd = CdVector(config_.num_partitions);
  for (const storage::CommitRecord& rec : batch.committed) {
    if (!rec.committed) continue;
    for (const storage::PreparedInfo& info : rec.participant_info) {
      if (info.cd_vector.size() == cd.size()) cd.PairwiseMax(info.cd_vector);
    }
  }
  cd.Set(partition_, batch.id);
  if (!(cd == batch.ro.cd_vector)) {
    return Status::VerificationFailed("CD vector mismatch");
  }

  // Merkle root: replay the writes on a clone and compare roots. Under
  // the shared-merkle simulation shortcut, adopt the leader's persistent
  // tree instead of re-hashing identical updates (host-CPU optimization
  // only; simulated validation cost was charged above).
  if (config_.simulate_shared_merkle && inst->adopted_snapshot.valid()) {
    if (inst->adopted_snapshot.RootDigest() != batch.ro.merkle_root) {
      return Status::VerificationFailed("shared merkle root mismatch");
    }
    inst->post_tree = merkle::MerkleTree::FromSnapshot(
        inst->adopted_snapshot);
  } else {
    inst->post_tree = tree_.Clone();
    ApplyWritesToTree(&inst->post_tree, partition_map_, partition_, batch,
                      [this](TxnId id) {
                        return prepared_batches_.FindTxn(id);
                      });
    if (inst->post_tree.RootDigest() != batch.ro.merkle_root) {
      return Status::VerificationFailed("merkle root mismatch");
    }
  }
  return Status::OK();
}

void TransEdgeNode::ApplyDecidedBatch(ConsensusInstance inst) {
  storage::Batch& batch = inst.batch;
  Charge(BatchComputeCost(batch.TotalTransactions(),
                          config_.cost.apply_per_txn));

  // Assemble the f+1 certificate from matching shares.
  storage::BatchCertificate cert;
  cert.partition = partition_;
  cert.batch_id = batch.id;
  cert.batch_digest = inst.digest;
  cert.merkle_root = batch.ro.merkle_root;
  cert.ro_digest = batch.ro.ComputeDigest();
  Bytes payload = cert.SignedPayload();
  for (const auto& [node, vote_digest] : inst.prepare_votes) {
    if (cert.signatures.size() >= config_.certificate_size()) break;
    if (!(vote_digest == inst.digest)) continue;
    auto share = inst.cert_shares.find(node);
    if (share == inst.cert_shares.end()) continue;
    if (verifier_->Verify(payload, share->second)) {
      cert.signatures.Add(share->second);
    }
  }

  // Apply local writes to the store (the tree was updated during
  // validation / proposal).
  for (const Transaction& t : batch.local) {
    for (const WriteOp& w : partition_map_.WritesFor(t, partition_)) {
      store_.Put(w.key, w.value, batch.id);
    }
  }

  // Pop the committed prepare groups and apply their writes.
  std::vector<BatchId> group_ids;
  for (const storage::CommitRecord& rec : batch.committed) {
    if (group_ids.empty() || group_ids.back() != rec.prepared_in_batch) {
      group_ids.push_back(rec.prepared_in_batch);
    }
  }
  for (BatchId gid : group_ids) {
    txn::PrepareGroup group = prepared_batches_.PopOldest();
    assert(group.prepared_in_batch == gid);
    (void)gid;
    for (txn::PendingTxn& pending : group.txns) {
      auto rec_it = std::find_if(
          batch.committed.begin(), batch.committed.end(),
          [&](const storage::CommitRecord& r) {
            return r.txn_id == pending.txn.id;
          });
      pending_index_.Remove(pending.txn);
      if (rec_it != batch.committed.end() && rec_it->committed) {
        for (const WriteOp& w :
             partition_map_.WritesFor(pending.txn, partition_)) {
          store_.Put(w.key, w.value, batch.id);
        }
      }
    }
  }

  tree_ = std::move(inst.post_tree);
  snapshots_.push_back(tree_.GetSnapshot());
  assert(snapshot_base_ + static_cast<BatchId>(snapshots_.size()) ==
         batch.id + 1);
  if (snapshots_.size() > config_.snapshot_history) {
    snapshots_.pop_front();
    ++snapshot_base_;
    // Bound version-history growth along with the snapshots (amortized:
    // a full sweep of the store every 64 batches).
    if (snapshot_base_ % 64 == 0) store_.TruncateHistory(snapshot_base_);
  }

  // Register the new prepare group and transition indexes.
  if (IsLeader()) {
    for (const Transaction& t : batch.local) inprog_index_.Remove(t);
    for (const Transaction& t : batch.prepared) inprog_index_.Remove(t);
  }
  if (!batch.prepared.empty()) {
    std::vector<txn::PendingTxn> pendings;
    pendings.reserve(batch.prepared.size());
    for (const Transaction& t : batch.prepared) {
      txn::PendingTxn p;
      p.txn = t;
      pendings.push_back(std::move(p));
      pending_index_.Add(t);
    }
    prepared_batches_.AddGroup(batch.id, std::move(pendings));
  }

  ++stats_.batches_decided;

  storage::BatchCertificate cert_copy = cert;
  Status append = log_.Append({std::move(batch), std::move(cert)});
  assert(append.ok());
  (void)append;
  const storage::Batch& logged = log_.back().batch;

  // Leader-side follow-ups.
  if (IsLeader()) {
    proposing_ = false;
    sim::Time at = cpu_.busy_until();

    // Local transactions are now committed — answer clients.
    for (const Transaction& t : logged.local) {
      auto it = local_waiting_clients_.find(t.id);
      if (it != local_waiting_clients_.end()) {
        ++stats_.local_committed;
        ReplyCommit(it->second, t.id, true, "", at);
        local_waiting_clients_.erase(it);
      }
    }

    // Freshly prepared distributed transactions: drive 2PC.
    for (const Transaction& t : logged.prepared) {
      auto coord_it = coord_txns_.find(t.id);
      if (coord_it != coord_txns_.end()) {
        // We are the coordinator: record our own prepared info and send
        // coordinator-prepares to the other participants (step 3).
        storage::PreparedInfo own;
        own.partition = partition_;
        own.prepared_in_batch = logged.id;
        own.vote = true;
        own.cd_vector = logged.ro.cd_vector;
        coord_it->second.collected[partition_] = own;
        for (PartitionId p : t.participants) {
          if (p == partition_) continue;
          wire::CoordPrepareMsg msg;
          msg.txn = t;
          msg.coordinator = partition_;
          msg.proof = cert_copy;
          SendToCluster(p, Share(std::move(msg)), at);
        }
        MaybeDecide2pc(t.id);
      } else if (participant_pending_.count(t.id) > 0) {
        // We are a participant: report prepared to the coordinator
        // (step 5), piggybacking this batch's CD vector.
        participant_pending_.erase(t.id);
        wire::PreparedMsg msg;
        msg.txn_id = t.id;
        msg.info.partition = partition_;
        msg.info.prepared_in_batch = logged.id;
        msg.info.vote = true;
        msg.info.cd_vector = logged.ro.cd_vector;
        msg.proof = cert_copy;
        SendToCluster(t.coordinator, Share(std::move(msg)), at);
      }
    }

    // Commit records just written: notify participants and clients
    // (steps 7 and 8).
    for (const storage::CommitRecord& rec : logged.committed) {
      auto coord_it = coord_txns_.find(rec.txn_id);
      if (coord_it == coord_txns_.end()) continue;
      const Transaction& t = coord_it->second.txn;
      for (PartitionId p : t.participants) {
        if (p == partition_) continue;
        wire::CommitRecordMsg msg;
        msg.txn_id = rec.txn_id;
        msg.commit = rec.committed;
        msg.participant_info = rec.participant_info;
        msg.proof = cert_copy;
        SendToCluster(p, Share(std::move(msg)), at);
      }
      if (rec.committed) {
        ++stats_.dist_committed;
      } else {
        ++stats_.dist_aborted;
      }
      ReplyCommit(coord_it->second.client, rec.txn_id, rec.committed,
                  rec.committed ? "" : "aborted by 2PC", at);
      coord_txns_.erase(coord_it);
    }
  }

  ServeParkedRoRequests();
  AdvanceConsensus();

  if (IsLeader() && !proposing_ &&
      inprog_local_.size() + inprog_prepared_.size() >=
          config_.max_batch_size) {
    ProposeBatch();
  }
}

// ---------------------------------------------------------------------------
// View changes
// ---------------------------------------------------------------------------

void TransEdgeNode::StartViewChangeTimer(BatchId batch_id) {
  uint64_t view_at_start = view_;
  env_->Schedule(config_.view_change_timeout, [this, batch_id,
                                               view_at_start] {
    if (view_ != view_at_start) return;
    if (log_.LastBatchId() >= batch_id) return;  // Decided in time.
    InitiateViewChange(view_ + 1);
  });
}

void TransEdgeNode::InitiateViewChange(uint64_t new_view) {
  if (new_view <= view_) return;
  auto& votes = view_change_votes_[new_view];
  if (votes.count(id_) > 0) return;  // Already voted for this view.
  votes.insert(id_);

  wire::ViewChangeMsg msg;
  msg.new_view = new_view;
  msg.last_committed = log_.LastBatchId();
  Encoder enc;
  enc.PutString("transedge-view-change");
  enc.PutU64(new_view);
  msg.signature = signer_->Sign(enc.buffer());
  BroadcastToCluster(Share(std::move(msg)),
                     Charge(config_.cost.signature_op));
  MaybeAdoptView(new_view);
}

void TransEdgeNode::MaybeAdoptView(uint64_t target) {
  if (target <= view_) return;
  auto it = view_change_votes_.find(target);
  if (it == view_change_votes_.end() ||
      it->second.size() < config_.quorum_size()) {
    return;
  }
  view_ = target;
  ++stats_.view_changes;
  // Undecided proposals from the old view are abandoned; clients will
  // retry against the new leader.
  instances_.clear();
  proposing_ = false;
  inprog_local_.clear();
  inprog_prepared_.clear();
  inprog_index_ = FootprintIndex();
  view_change_votes_.erase(target);
}

void TransEdgeNode::HandleViewChange(sim::ActorId from,
                                     const wire::ViewChangeMsg& msg) {
  uint64_t target = msg.new_view;
  if (target <= view_) return;
  auto& votes = view_change_votes_[target];
  votes.insert(from);

  // Join the view change once f+1 replicas demand it (at least one of
  // them is honest), adopt once 2f+1 do.
  if (votes.count(id_) == 0 && votes.size() > config_.f) {
    InitiateViewChange(target);
    return;
  }
  MaybeAdoptView(target);
}

// ---------------------------------------------------------------------------
// 2PC handlers
// ---------------------------------------------------------------------------

void TransEdgeNode::HandleCoordPrepare(sim::ActorId from,
                                       const wire::CoordPrepareMsg& msg) {
  (void)from;
  const Transaction& txn = msg.txn;
  if (seen_txns_.count(txn.id) > 0) return;  // Duplicate (f+1 fan-out).

  sim::Time done = Charge(config_.cost.signature_op);  // Verify the proof.
  Status proof_ok =
      msg.proof.Verify(*verifier_, config_.certificate_size(),
                       config_.ClusterMembers(msg.coordinator));
  if (!proof_ok.ok()) return;  // Unauthenticated prepare; drop.

  seen_txns_.insert(txn.id);
  done = Charge(config_.cost.admit_per_txn);
  Status admit = AdmitCheck(txn);
  if (!admit.ok()) {
    // Vote no immediately: we never prepared, so there is nothing to
    // clean up locally (§3.3.3).
    wire::PreparedMsg reply;
    reply.txn_id = txn.id;
    reply.info.partition = partition_;
    reply.info.prepared_in_batch = kNoBatch;
    reply.info.vote = false;
    reply.info.cd_vector = CdVector(config_.num_partitions);
    SendToCluster(msg.coordinator, Share(std::move(reply)), done);
    return;
  }

  inprog_prepared_.push_back(txn);
  inprog_index_.Add(txn);
  participant_pending_.insert(txn.id);
  if (inprog_local_.size() + inprog_prepared_.size() >=
          config_.max_batch_size &&
      !proposing_) {
    ProposeBatch();
  }
}

void TransEdgeNode::HandlePrepared(sim::ActorId from,
                                   const wire::PreparedMsg& msg) {
  (void)from;
  auto it = coord_txns_.find(msg.txn_id);
  if (it == coord_txns_.end()) return;
  CoordinatorTxn& coord = it->second;
  if (coord.collected.count(msg.info.partition) > 0) return;  // Duplicate.

  if (msg.info.vote) {
    Charge(config_.cost.signature_op);
    Status proof_ok =
        msg.proof.Verify(*verifier_, config_.certificate_size(),
                         config_.ClusterMembers(msg.info.partition));
    if (!proof_ok.ok()) return;
  }
  coord.collected[msg.info.partition] = msg.info;
  MaybeDecide2pc(msg.txn_id);
}

void TransEdgeNode::MaybeDecide2pc(TxnId txn_id) {
  auto it = coord_txns_.find(txn_id);
  if (it == coord_txns_.end()) return;
  CoordinatorTxn& coord = it->second;
  if (coord.decided) return;
  if (coord.collected.size() < coord.txn.participants.size()) return;

  bool decision = true;
  std::vector<storage::PreparedInfo> infos;
  infos.reserve(coord.collected.size());
  for (const auto& [partition, info] : coord.collected) {
    decision = decision && info.vote;
    infos.push_back(info);
  }
  coord.decided = true;
  coord.decision = decision;
  // The decision enters the prepared-batches structure; the transaction
  // reaches the committed segment when its prepare group is the oldest
  // (Definition 4.1) and the next batch is built.
  Status s = prepared_batches_.RecordDecision(txn_id, decision, infos);
  (void)s;  // NotFound is impossible: we prepared it ourselves.
}

void TransEdgeNode::HandleCommitRecord(sim::ActorId from,
                                       const wire::CommitRecordMsg& msg) {
  (void)from;
  Charge(config_.cost.signature_op);
  Status proof_ok =
      msg.proof.Verify(*verifier_, config_.certificate_size(),
                       config_.ClusterMembers(msg.proof.partition));
  if (!proof_ok.ok()) return;
  // AlreadyExists (duplicate fan-out) and NotFound (we voted no and never
  // prepared) are both benign.
  Status s = prepared_batches_.RecordDecision(msg.txn_id, msg.commit,
                                              msg.participant_info);
  (void)s;
}

// ---------------------------------------------------------------------------
// Read-only protocol (the paper's contribution, server side)
// ---------------------------------------------------------------------------

wire::RoReply TransEdgeNode::BuildRoReply(uint64_t request_id,
                                          const std::vector<Key>& keys,
                                          BatchId batch_id,
                                          bool second_round) {
  const storage::LogEntry* entry = log_.Get(batch_id).value();
  wire::RoReply reply;
  reply.request_id = request_id;
  reply.partition = partition_;
  reply.batch_id = batch_id;
  reply.certificate = entry->certificate;
  reply.cd_vector = entry->batch.ro.cd_vector;
  reply.lce = entry->batch.ro.lce;
  reply.timestamp_us = entry->batch.ro.timestamp_us;
  reply.second_round = second_round;

  assert(batch_id >= snapshot_base_);
  const merkle::MerkleTree::Snapshot& snap =
      snapshots_[static_cast<size_t>(batch_id - snapshot_base_)];
  for (const Key& key : keys) {
    wire::AuthenticatedRead read;
    read.key = key;
    Result<storage::VersionedValue> value = store_.GetAsOf(key, batch_id);
    if (value.ok()) {
      read.found = true;
      read.value = value->value;
      read.version = value->version;
    }
    Result<merkle::MerkleProof> proof = merkle::MerkleTree::ProveAt(snap, key);
    if (proof.ok()) read.proof = std::move(proof).value();
    reply.entries.push_back(std::move(read));
  }

  if (byzantine_ == ByzantineBehavior::kTamperReadValue) {
    for (wire::AuthenticatedRead& read : reply.entries) {
      if (read.found && !read.value.empty()) {
        read.value[0] ^= 0xff;  // Client-side Merkle check must catch this.
        break;
      }
    }
  }
  return reply;
}

void TransEdgeNode::HandleRoRequest(sim::ActorId from,
                                    const wire::RoRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  sim::Time done =
      Charge(config_.cost.ro_serve_per_key *
                 static_cast<sim::Time>(msg.keys.size()) +
             config_.cost.signature_op);
  if (log_.empty()) {
    // No certified state yet; reply unserviceable, the client retries.
    wire::RoReply reply;
    reply.request_id = msg.request_id;
    reply.partition = partition_;
    reply.batch_id = kNoBatch;
    Send(client, Share(std::move(reply)), done);
    return;
  }
  BatchId batch_id = log_.LastBatchId();
  if (byzantine_ == ByzantineBehavior::kStaleSnapshot && batch_id > 0) {
    // Old but certified (bounded by the retained snapshot window).
    batch_id = std::max<BatchId>(snapshot_base_, batch_id - 64);
  }
  ++stats_.ro_round1_served;
  Send(client, Share(BuildRoReply(msg.request_id, msg.keys, batch_id, false)),
       done);
}

BatchId TransEdgeNode::FindBatchWithLce(BatchId min_lce) const {
  if (log_.empty()) return kNoBatch;
  // LCE is non-decreasing across batches: binary search for the earliest
  // batch satisfying the dependency. Snapshots older than the retained
  // window cannot be served, so the search floor is the window base.
  BatchId lo = snapshot_base_;
  BatchId hi = log_.LastBatchId();
  if (log_.Get(hi).value()->batch.ro.lce < min_lce) return kNoBatch;
  while (lo < hi) {
    BatchId mid = lo + (hi - lo) / 2;
    if (log_.Get(mid).value()->batch.ro.lce >= min_lce) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void TransEdgeNode::HandleRoBatchRequest(sim::ActorId from,
                                         const wire::RoBatchRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  BatchId batch_id = FindBatchWithLce(msg.min_lce);
  if (batch_id == kNoBatch) {
    // The dependency has prepared here but not yet committed; park the
    // request until a batch with a sufficient LCE is written.
    ++stats_.ro_round2_parked;
    ParkedRo parked;
    parked.client = client;
    parked.request = msg;
    parked_ro_.push_back(std::move(parked));
    return;
  }
  sim::Time done =
      Charge(config_.cost.ro_serve_per_key *
                 static_cast<sim::Time>(msg.keys.size()) +
             config_.cost.signature_op);
  ++stats_.ro_round2_served;
  Send(client, Share(BuildRoReply(msg.request_id, msg.keys, batch_id, true)),
       done);
}

void TransEdgeNode::ServeParkedRoRequests() {
  if (parked_ro_.empty()) return;
  std::vector<ParkedRo> still_parked;
  for (ParkedRo& parked : parked_ro_) {
    BatchId batch_id = FindBatchWithLce(parked.request.min_lce);
    if (batch_id == kNoBatch) {
      still_parked.push_back(std::move(parked));
      continue;
    }
    sim::Time done =
        Charge(config_.cost.ro_serve_per_key *
                   static_cast<sim::Time>(parked.request.keys.size()) +
               config_.cost.signature_op);
    ++stats_.ro_round2_served;
    Send(parked.client,
         Share(BuildRoReply(parked.request.request_id, parked.request.keys,
                            batch_id, true)),
         done);
  }
  parked_ro_ = std::move(still_parked);
}

// ---------------------------------------------------------------------------
// Augustus baseline (locking read-only transactions)
// ---------------------------------------------------------------------------

void TransEdgeNode::HandleAugustusRoRequest(
    sim::ActorId from, const wire::AugustusRoRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  ro_locks_.Lock(msg.request_id, msg.keys);

  AugustusPending pending;
  pending.client = client;
  pending.keys = msg.keys;
  pending.votes = 1;  // Our own.
  augustus_pending_[msg.request_id] = std::move(pending);

  wire::AugustusVoteRequest vote;
  vote.request_id = msg.request_id;
  vote.keys = msg.keys;
  vote.snapshot_batch = log_.LastBatchId();
  BroadcastToCluster(Share(std::move(vote)),
                     Charge(config_.cost.ro_serve_per_key *
                            static_cast<sim::Time>(msg.keys.size())));
}

void TransEdgeNode::HandleAugustusVoteRequest(
    sim::ActorId from, const wire::AugustusVoteRequest& msg) {
  wire::AugustusVoteReply reply;
  reply.request_id = msg.request_id;
  reply.vote = true;
  Encoder enc;
  enc.PutString("augustus-vote");
  enc.PutU64(msg.request_id);
  reply.signature = signer_->Sign(enc.buffer());
  Send(from, Share(std::move(reply)), Charge(config_.cost.signature_op));
}

void TransEdgeNode::HandleAugustusVoteReply(
    sim::ActorId from, const wire::AugustusVoteReply& msg) {
  (void)from;
  auto it = augustus_pending_.find(msg.request_id);
  if (it == augustus_pending_.end()) return;
  AugustusPending& pending = it->second;
  if (msg.vote) ++pending.votes;
  if (pending.replied || pending.votes < config_.quorum_size()) return;
  pending.replied = true;

  wire::AugustusRoReply reply;
  reply.request_id = msg.request_id;
  reply.partition = partition_;
  reply.votes = pending.votes;
  for (const Key& key : pending.keys) {
    wire::AuthenticatedRead read;
    read.key = key;
    Result<storage::VersionedValue> value = store_.Get(key);
    if (value.ok()) {
      read.found = true;
      read.value = value->value;
      read.version = value->version;
    }
    reply.entries.push_back(std::move(read));
  }
  ++stats_.augustus_ro_served;
  Send(pending.client, Share(std::move(reply)),
       Charge(config_.cost.ro_serve_per_key *
              static_cast<sim::Time>(pending.keys.size())));
}

void TransEdgeNode::HandleAugustusRelease(sim::ActorId from,
                                          const wire::AugustusRelease& msg) {
  (void)from;
  ro_locks_.Release(msg.request_id);
  augustus_pending_.erase(msg.request_id);
}

}  // namespace transedge::core
