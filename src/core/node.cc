#include "core/node.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/augustus_baseline.h"
#include "core/consensus/consensus.h"
#include "core/read_only_service.h"
#include "core/sharded_pipeline.h"
#include "core/two_pc_coordinator.h"
#include "core/watch_service.h"

namespace transedge::core {

namespace {

/// The backend needs the deployment geometry to re-derive write sets;
/// everything else in the tuning block is honored as configured.
storage::StorageTuning BackendTuningFor(const SystemConfig& config,
                                        PartitionId partition) {
  storage::StorageTuning tuning = config.durability;
  tuning.num_partitions = config.num_partitions;
  tuning.partition = partition;
  return tuning;
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction: wire the engines together through hooks.
// ---------------------------------------------------------------------------

TransEdgeNode::TransEdgeNode(const SystemConfig& config, crypto::NodeId id,
                             sim::Environment* env,
                             std::unique_ptr<crypto::Signer> signer,
                             const crypto::Verifier* verifier,
                             storage::paged::SimDisk* disk)
    : config_(config),
      id_(id),
      partition_(config.PartitionOfNode(id)),
      env_(env),
      signer_(std::move(signer)),
      verifier_(verifier),
      partition_map_(config.num_partitions),
      cluster_members_(config.ClusterMembers(partition_)),
      backend_(storage::MakeStorageBackend(
          config.storage_kind, BackendTuningFor(config, partition_), disk)),
      tree_(config.merkle_depth),
      decided_tree_(config.merkle_depth),
      validator_(&backend_->store()) {
  // The private-base conversion must happen in this class's scope.
  NodeContext* ctx = this;

  Consensus::Hooks consensus_hooks;
  consensus_hooks.on_decided = [this](Consensus::Decided d) {
    OnDecided(std::move(d.batch), std::move(d.certificate),
              std::move(d.post_tree));
  };
  consensus_hooks.on_view_adopted = [this] {
    pipeline_->OnViewChange();
    two_pc_->OnViewChange();
    // Read-path services: flush parked round-2 requests retryable and
    // kill the watch streams of the old view (epoch bump + explicit
    // resubscribe errors) — nothing may strand silently across views.
    read_only_->OnViewChange();
    watch_->OnViewChange();
  };
  consensus_ = MakeConsensus(ctx, std::move(consensus_hooks));

  ShardedPipeline::Hooks pipeline_hooks;
  pipeline_hooks.propose = [this](storage::Batch batch,
                                  merkle::MerkleTree post_tree) {
    consensus_->Propose(std::move(batch), std::move(post_tree));
  };
  pipeline_hooks.begin_coordination = [this](const Transaction& txn,
                                             sim::ActorId client) {
    two_pc_->BeginCoordination(txn, client);
  };
  pipeline_hooks.reattach_client = [this](TxnId txn_id, sim::ActorId client) {
    return two_pc_->ReattachClient(txn_id, client);
  };
  pipeline_hooks.ro_locks_block_writer = [this](const Transaction& txn) {
    return augustus_->BlocksWriter(txn);
  };
  pipeline_ =
      std::make_unique<ShardedPipeline>(ctx, std::move(pipeline_hooks));

  TwoPcCoordinator::Hooks two_pc_hooks;
  two_pc_hooks.already_seen = [this](TxnId txn_id) {
    return pipeline_->AlreadySeen(txn_id);
  };
  two_pc_hooks.admit_prepared = [this](const Transaction& txn) {
    return pipeline_->AdmitPrepared(txn);
  };
  two_pc_hooks.maybe_propose = [this] { pipeline_->MaybeProposeOnSize(); };
  two_pc_hooks.in_flight = [this](TxnId txn_id) {
    return pipeline_->HasIndexed(txn_id);
  };
  two_pc_ =
      std::make_unique<TwoPcCoordinator>(ctx, std::move(two_pc_hooks));

  read_only_ = std::make_unique<ReadOnlyService>(ctx);
  augustus_ = std::make_unique<AugustusBaseline>(ctx);
  watch_ = std::make_unique<WatchService>(ctx);
}

TransEdgeNode::~TransEdgeNode() = default;

void TransEdgeNode::Preload(const storage::VersionedStore& store,
                            const merkle::MerkleTree& tree) {
  backend_->Preload(store, tree.RootDigest());
  tree_ = tree.Clone();
  decided_tree_ = tree.Clone();
}

Status TransEdgeNode::RecoverFromStorage(const storage::RecoverOptions& opts) {
  TE_ASSIGN_OR_RETURN(storage::RecoveredState recovered,
                      backend_->Recover(opts));

  // Rebuild the authenticated structure from the recovered store and
  // refuse to come up unless it hashes to a root some quorum certified:
  // the log tail's certificate, or the checkpoint's recorded root when
  // the WAL held nothing beyond it. Buckets keep keys sorted, so the
  // rebuilt tree is canonical and must hash-equal the incremental one.
  merkle::MerkleTree rebuilt(config_.merkle_depth);
  backend_->store().ForEachLatest(
      [&](const Key& key, const Value& value, BatchId version) {
        rebuilt.Put(key, value, version);
      });
  const storage::SmrLog& log = backend_->log();
  const crypto::Digest expected = log.empty()
                                      ? recovered.checkpoint_root
                                      : log.back().certificate.merkle_root;
  if (!(rebuilt.RootDigest() == expected)) {
    return Status::VerificationFailed(
        "recovered store does not hash to the certified Merkle root");
  }

  tree_ = std::move(rebuilt);
  decided_tree_ = tree_.Clone();
  last_applied_ = log.empty() ? recovered.checkpoint_applied
                              : log.LastBatchId();
  snapshots_.clear();
  if (last_applied_ == kNoBatch) {
    snapshot_base_ = 0;  // Fresh preloaded state: same as a new node.
  } else {
    snapshot_base_ = last_applied_;
    snapshots_.push_back(tree_.GetSnapshot());
  }
  // Recovery I/O occupies the replica CPU: the node is busy replaying
  // before it can process its first message.
  ChargeStorageIo(/*on_protocol_cpu=*/true);
  return Status::OK();
}

void TransEdgeNode::OnStart() { pipeline_->OnStart(); }

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

uint64_t TransEdgeNode::view() const { return consensus_->view(); }

bool TransEdgeNode::IsLeader() const {
  return config_.LeaderOf(partition_, consensus_->view()) == id_;
}

bool TransEdgeNode::ReproposalPending() const {
  return consensus_->HasPendingReproposal();
}

size_t TransEdgeNode::in_progress_size() const {
  return pipeline_->in_progress_size();
}

size_t TransEdgeNode::seen_txn_count() const {
  return pipeline_->seen_txn_count();
}

const NodeStats& TransEdgeNode::stats() const {
  NodeStats& s = aggregated_stats_;
  const ShardedPipeline::Stats pipeline_stats = pipeline_->stats();
  s.local_committed = pipeline_stats.local_committed;
  s.local_aborted = pipeline_stats.local_aborted;
  s.dist_committed = two_pc_->stats().dist_committed;
  s.dist_aborted = pipeline_stats.dist_aborted + two_pc_->stats().dist_aborted;
  s.batches_decided = consensus_->stats().batches_decided;
  s.batches_applied = batches_applied_;
  s.ro_round1_served = read_only_->stats().ro_round1_served;
  s.ro_round2_served = read_only_->stats().ro_round2_served;
  s.ro_round2_parked = read_only_->stats().ro_round2_parked;
  s.ro_round2_rejected = read_only_->stats().ro_round2_rejected;
  s.rw_aborted_by_ro_locks = pipeline_stats.rw_aborted_by_ro_locks;
  s.ro_round2_aborted = read_only_->stats().ro_round2_aborted;
  s.view_changes = consensus_->stats().view_changes;
  s.augustus_ro_served = augustus_->stats().augustus_ro_served;
  s.consensus_msgs_sent = consensus_->stats().messages_sent;
  s.watch_subscribes = watch_->stats().watch_subscribes;
  s.watch_deltas_pushed = watch_->stats().watch_deltas_pushed;
  s.watch_keys_pushed = watch_->stats().watch_keys_pushed;
  s.watch_resubscribe_errors = watch_->stats().watch_resubscribe_errors;
  return s;
}

size_t TransEdgeNode::active_watches() const {
  return watch_->active_watches();
}

const merkle::MerkleTree::Snapshot& TransEdgeNode::SnapshotAt(
    BatchId batch_id) const {
  assert(batch_id >= snapshot_base_);
  return snapshots_[static_cast<size_t>(batch_id - snapshot_base_)];
}

size_t TransEdgeNode::ConsensusInFlight() const {
  return consensus_->InFlight();
}

uint32_t TransEdgeNode::EffectivePipelineDepth() const {
  uint32_t depth = config_.pipeline_depth == 0 ? 1 : config_.pipeline_depth;
  return std::min(depth, consensus_->MaxPipelineDepth());
}

ProposalChain TransEdgeNode::proposal_chain() {
  ProposalChain chain = consensus_->Chain();
  if (chain.head_tree == nullptr) {
    chain.next_id = backend_->log().LastBatchId() + 1;
    chain.head_tree = &decided_tree_;
  }
  return chain;
}

BatchId TransEdgeNode::LatestDecidedVersion(const Key& key) const {
  auto it = decided_versions_.find(key);
  if (it != decided_versions_.end()) return it->second;
  return backend_->store().LatestVersion(key);
}

// ---------------------------------------------------------------------------
// Network primitives
// ---------------------------------------------------------------------------

void TransEdgeNode::Send(crypto::NodeId to, const sim::MessagePtr& msg,
                         sim::Time at) {
  env_->network().SendAt(at, id_, to, msg);
}

void TransEdgeNode::BroadcastToCluster(const sim::MessagePtr& msg,
                                       sim::Time at) {
  for (crypto::NodeId member : cluster_members_) {
    if (member != id_) Send(member, msg, at);
  }
}

void TransEdgeNode::SendToCluster(PartitionId p, const sim::MessagePtr& msg,
                                  sim::Time at) {
  // f+1 receivers: at least one is honest and will get the message to the
  // cluster's leader (§3.3.1).
  for (uint32_t i = 0; i <= config_.f; ++i) {
    Send(config_.ReplicaNode(p, i), msg, at);
  }
}

// ---------------------------------------------------------------------------
// Message routing
// ---------------------------------------------------------------------------

void TransEdgeNode::OnMessage(sim::ActorId from, const sim::MessagePtr& msg) {
  if (halted_) return;
  if (byzantine_ == ByzantineBehavior::kCrash) return;
  Charge(config_.cost.message_handling);

  using wire::MessageType;
  auto type = static_cast<MessageType>(msg->type());

  // Leader-bound traffic arriving at a follower (stale view at the
  // sender) is forwarded to the follower's current leader.
  const bool leader_bound =
      type == MessageType::kCommitRequest ||
      type == MessageType::kCoordPrepare || type == MessageType::kPrepared ||
      type == MessageType::kCommitRecord || type == MessageType::kRoRequest ||
      type == MessageType::kRoBatchRequest ||
      type == MessageType::kAugustusRoRequest ||
      type == MessageType::kAugustusRelease ||
      type == MessageType::kWatchSubscribe ||
      type == MessageType::kWatchUnsubscribe;
  if (leader_bound && !IsLeader()) {
    Send(config_.LeaderOf(partition_, consensus_->view()), msg,
         cpu_.busy_until());
    // Expect the leader to make progress on the forwarded work; if the
    // log does not advance, demand a view change (PBFT-style liveness).
    consensus_->StartViewChangeTimer(backend_->log().LastBatchId() + 1);
    return;
  }

  switch (type) {
    case MessageType::kClientRead:
      read_only_->HandleClientRead(
          from, static_cast<const wire::ClientReadRequest&>(*msg));
      break;
    case MessageType::kCommitRequest:
      pipeline_->HandleCommitRequest(
          from, static_cast<const wire::CommitRequest&>(*msg));
      break;
    case MessageType::kRoRequest:
      read_only_->HandleRoRequest(from,
                                  static_cast<const wire::RoRequest&>(*msg));
      break;
    case MessageType::kRoBatchRequest:
      read_only_->HandleRoBatchRequest(
          from, static_cast<const wire::RoBatchRequest&>(*msg));
      break;
    case MessageType::kCoordPrepare:
      two_pc_->HandleCoordPrepare(
          from, static_cast<const wire::CoordPrepareMsg&>(*msg));
      break;
    case MessageType::kPrepared:
      two_pc_->HandlePrepared(from,
                              static_cast<const wire::PreparedMsg&>(*msg));
      break;
    case MessageType::kCommitRecord:
      two_pc_->HandleCommitRecord(
          from, static_cast<const wire::CommitRecordMsg&>(*msg));
      break;
    case MessageType::kAugustusRoRequest:
      augustus_->HandleRoRequest(
          from, static_cast<const wire::AugustusRoRequest&>(*msg));
      break;
    case MessageType::kAugustusVoteRequest:
      augustus_->HandleVoteRequest(
          from, static_cast<const wire::AugustusVoteRequest&>(*msg));
      break;
    case MessageType::kAugustusVoteReply:
      augustus_->HandleVoteReply(
          from, static_cast<const wire::AugustusVoteReply&>(*msg));
      break;
    case MessageType::kAugustusRelease:
      augustus_->HandleRelease(
          from, static_cast<const wire::AugustusRelease&>(*msg));
      break;
    case MessageType::kWatchSubscribe:
      watch_->HandleSubscribe(
          from, static_cast<const wire::WatchSubscribeRequest&>(*msg));
      break;
    case MessageType::kWatchUnsubscribe:
      watch_->HandleUnsubscribe(
          from, static_cast<const wire::WatchUnsubscribe&>(*msg));
      break;
    default:
      // The consensus engine's wire surface is private to the engine:
      // anything the node does not route itself is offered to it.
      // Unknown or client-side message types are ignored.
      consensus_->OnMessage(from, *msg);
      break;
  }
}

// ---------------------------------------------------------------------------
// Decided batches: decide-time metadata, then queued storage apply
// ---------------------------------------------------------------------------

void TransEdgeNode::OnDecided(storage::Batch batch,
                              storage::BatchCertificate certificate,
                              merkle::MerkleTree post_tree) {
  PendingApply entry;
  entry.id = batch.id;

  // Pop the committed prepare groups — by id, not position: the
  // certified commit order is authoritative, and popping positionally
  // would silently consume the wrong group if local queue order ever
  // diverged from it. The groups travel with the apply entry; their
  // pending-footprint share is released now, since admission and
  // validation key off the decided state.
  std::vector<BatchId> group_ids;
  for (const storage::CommitRecord& rec : batch.committed) {
    if (group_ids.empty() || group_ids.back() != rec.prepared_in_batch) {
      group_ids.push_back(rec.prepared_in_batch);
    }
  }
  for (BatchId gid : group_ids) {
    Result<txn::PrepareGroup> popped = prepared_batches_.PopGroup(gid);
    assert(popped.ok());
    if (!popped.ok()) continue;
    txn::PrepareGroup group = std::move(popped).value();
    for (txn::PendingTxn& pending : group.txns) {
      pending_index_.Remove(pending.txn);
    }
    entry.groups.push_back(std::move(group));
  }

  // Register the new prepare group so the read-only segment of a later
  // batch can commit it (Definition 4.1).
  if (!batch.prepared.empty()) {
    std::vector<txn::PendingTxn> pendings;
    pendings.reserve(batch.prepared.size());
    for (const Transaction& t : batch.prepared) {
      txn::PendingTxn p;
      p.txn = t;
      pendings.push_back(std::move(p));
      pending_index_.Add(t);
    }
    prepared_batches_.AddGroup(batch.id, std::move(pendings));
  }

  // Advance the decided watermark: version overlay, decided tree, log.
  auto record_decided_write = [&](const Transaction& t) {
    for (const WriteOp& w : partition_map_.WritesFor(t, partition_)) {
      decided_versions_[w.key] = batch.id;
    }
  };
  for (const Transaction& t : batch.local) record_decided_write(t);
  for (const txn::PrepareGroup& group : entry.groups) {
    for (const txn::PendingTxn& pending : group.txns) {
      auto rec_it = std::find_if(batch.committed.begin(), batch.committed.end(),
                                 [&](const storage::CommitRecord& r) {
                                   return r.txn_id == pending.txn.id;
                                 });
      if (rec_it != batch.committed.end() && rec_it->committed) {
        record_decided_write(pending.txn);
      }
    }
  }
  decided_tree_ = post_tree.Clone();
  entry.post_tree = std::move(post_tree);

  Status append =
      backend_->log().Append({std::move(batch), std::move(certificate)});
  assert(append.ok());
  (void)append;
  // Durability point: the WAL covers the decision before anything acts
  // on it. Its cost lands on the protocol CPU (group-commit fsync is the
  // decision critical path); zero under the in-memory backend.
  backend_->OnDecided();
  ChargeStorageIo(/*on_protocol_cpu=*/true);

  apply_queue_.push_back(std::move(entry));
  if (!config_.async_apply) {
    // Synchronous apply: drain inline on the replica's CPU, exactly the
    // pre-queue behavior (the queue never holds more than this entry).
    while (!apply_queue_.empty()) {
      PendingApply next = std::move(apply_queue_.front());
      apply_queue_.pop_front();
      Charge(ApplyCostFor(next));
      InstallApply(std::move(next));
    }
  } else {
    ScheduleApplyDrain();
  }

  consensus_->AdvanceConsensus();
  pipeline_->MaybeProposeOnSize();
}

sim::Time TransEdgeNode::ApplyCostFor(const PendingApply& entry) const {
  Result<const storage::LogEntry*> logged = backend_->log().Get(entry.id);
  assert(logged.ok());
  const storage::Batch& batch = logged.value()->batch;
  const size_t n = batch.TotalTransactions();
  const uint32_t shards = config_.apply_shards == 0 ? 1 : config_.apply_shards;
  if (shards <= 1) {
    return BatchComputeCost(n, config_.cost.apply_per_txn);
  }
  // Carve the write ops over leaf-index subranges (each shard owns a
  // whole subtree of the authenticated structure) and pay for the
  // slowest shard plus the spine recombine.
  std::vector<size_t> loads(shards, 0);
  auto count = [&](const Transaction& t) {
    for (const WriteOp& w : partition_map_.WritesFor(t, partition_)) {
      uint32_t leaf =
          merkle::MerkleTree::LeafIndexFor(w.key, config_.merkle_depth);
      ++loads[merkle::MerkleTree::LeafShardOf(leaf, config_.merkle_depth,
                                              shards)];
    }
  };
  for (const Transaction& t : batch.local) count(t);
  for (const txn::PrepareGroup& group : entry.groups) {
    for (const txn::PendingTxn& pending : group.txns) {
      auto rec_it = std::find_if(batch.committed.begin(), batch.committed.end(),
                                 [&](const storage::CommitRecord& r) {
                                   return r.txn_id == pending.txn.id;
                                 });
      if (rec_it != batch.committed.end() && rec_it->committed) {
        count(pending.txn);
      }
    }
  }
  return ShardedApplyCost(n, loads);
}

void TransEdgeNode::InstallApply(PendingApply entry) {
  Result<const storage::LogEntry*> logged_or = backend_->log().Get(entry.id);
  assert(logged_or.ok());
  const storage::LogEntry& logged = *logged_or.value();
  const storage::Batch& batch = logged.batch;

  std::vector<Key> written;
  auto apply_write = [&](const WriteOp& w) {
    backend_->store().Put(w.key, w.value, batch.id);
    written.push_back(w.key);
    // Drain the decided-version overlay once the store has caught up.
    auto it = decided_versions_.find(w.key);
    if (it != decided_versions_.end() && it->second == batch.id) {
      decided_versions_.erase(it);
    }
  };
  for (const Transaction& t : batch.local) {
    for (const WriteOp& w : partition_map_.WritesFor(t, partition_)) {
      apply_write(w);
    }
  }
  for (txn::PrepareGroup& group : entry.groups) {
    for (txn::PendingTxn& pending : group.txns) {
      auto rec_it = std::find_if(batch.committed.begin(), batch.committed.end(),
                                 [&](const storage::CommitRecord& r) {
                                   return r.txn_id == pending.txn.id;
                                 });
      if (rec_it != batch.committed.end() && rec_it->committed) {
        for (const WriteOp& w :
             partition_map_.WritesFor(pending.txn, partition_)) {
          apply_write(w);
        }
      }
    }
  }

  tree_ = std::move(entry.post_tree);
  snapshots_.push_back(tree_.GetSnapshot());
  assert(snapshot_base_ + static_cast<BatchId>(snapshots_.size()) ==
         batch.id + 1);
  bool truncate_due = false;
  if (snapshots_.size() > config_.snapshot_history) {
    snapshots_.pop_front();
    ++snapshot_base_;
    // Bound history growth along with the snapshots (amortized: a full
    // sweep every 64 batches). The actual truncation is deferred past
    // the engine follow-ups below: truncating the log moves its base
    // and would invalidate `logged`.
    if (snapshot_base_ % 64 == 0) truncate_due = true;
  }

  last_applied_ = batch.id;
  ++batches_applied_;

  // Durable engines mark dirty buckets / checkpoint here; the cost goes
  // on the storage device's own meter, beside the protocol CPU.
  backend_->OnApplied(batch.id, logged.certificate.merkle_root);
  ChargeStorageIo(/*on_protocol_cpu=*/false);

  // Engine follow-ups, in the same order the monolithic replica used:
  // leader bookkeeping + local client replies, 2PC legs, parked
  // read-only work.
  pipeline_->OnBatchApplied(logged.batch);
  two_pc_->OnBatchApplied(logged.batch, logged.certificate);
  read_only_->ServeParkedRequests();
  // Canonical write-key order so every replica pushes identical deltas.
  std::sort(written.begin(), written.end());
  written.erase(std::unique(written.begin(), written.end()), written.end());
  watch_->OnBatchApplied(logged, written);

  if (truncate_due) {
    // One authoritative horizon for every engine: key-version history,
    // log availability, and the RO out-of-window rejection all move
    // together (`logged` is dead past this point).
    backend_->TruncateHistory(snapshot_base_);
    read_only_->OnHistoryTruncated(snapshot_base_);
    ChargeStorageIo(/*on_protocol_cpu=*/false);
  }
}

void TransEdgeNode::ChargeStorageIo(bool on_protocol_cpu) {
  const storage::StorageIoStats& s = backend_->io_stats();
  const auto delta = [](uint64_t cur, uint64_t prev) {
    return static_cast<sim::Time>(cur - prev);
  };
  const CostModel& c = config_.cost;
  sim::Time cost =
      delta(s.wal_appends, charged_io_.wal_appends) * c.wal_append +
      (delta(s.wal_syncs, charged_io_.wal_syncs) +
       delta(s.file_syncs, charged_io_.file_syncs)) *
          c.disk_fsync +
      delta(s.pages_written, charged_io_.pages_written) * c.page_write +
      delta(s.pages_read, charged_io_.pages_read) * c.page_read +
      delta(s.wal_records_replayed, charged_io_.wal_records_replayed) *
          c.wal_read;
  charged_io_ = s;
  if (cost == 0) return;  // In-memory backend: never any I/O to charge.
  if (on_protocol_cpu) {
    cpu_.Charge(env_->now(), cost);
  } else {
    io_cpu_.Charge(env_->now(), cost);
  }
}

void TransEdgeNode::ScheduleApplyDrain() {
  if (apply_inflight_ || apply_queue_.empty()) return;
  apply_inflight_ = true;
  sim::Time done =
      apply_cpu_.Charge(env_->now(), ApplyCostFor(apply_queue_.front()));
  // Route through the halt-gated Schedule so a parked replica's pending
  // apply never fires into a successor's world.
  Schedule(done - env_->now(), [this] {
    PendingApply entry = std::move(apply_queue_.front());
    apply_queue_.pop_front();
    apply_inflight_ = false;
    // Pin the protocol CPU to now so follow-up sends (client replies,
    // 2PC legs) are never stamped in the past.
    cpu_.Charge(env_->now(), 0);
    InstallApply(std::move(entry));
    consensus_->AdvanceConsensus();
    pipeline_->MaybeProposeOnSize();
    ScheduleApplyDrain();
  });
}

}  // namespace transedge::core
