#include "core/batch_pipeline.h"

#include <algorithm>
#include <set>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/batch_apply.h"
#include "txn/cd_vector.h"

namespace transedge::core {

namespace {

/// Prepare-group ids already committed by an in-flight (decided-pending or
/// proposed-undecided) predecessor batch. Groups in this set are spoken
/// for: a new proposal must not commit them again, and their readiness
/// must not trigger a new (otherwise empty) batch.
std::set<BatchId> WindowCommittedGroups(const ProposalChain& chain) {
  std::set<BatchId> committed;
  for (const storage::Batch* p : chain.pending) {
    for (const storage::CommitRecord& rec : p->committed) {
      committed.insert(rec.prepared_in_batch);
    }
  }
  return committed;
}

/// True when some ready prepare group is not yet committed by an in-flight
/// batch — i.e. a new proposal would carry at least one commit record.
bool HasUncommittedReadyGroup(NodeContext* ctx, const ProposalChain& chain) {
  std::set<BatchId> window_committed = WindowCommittedGroups(chain);
  for (const txn::PrepareGroup* group :
       ctx->prepared_batches().ReadyPrefix()) {
    if (window_committed.count(group->prepared_in_batch) == 0) return true;
  }
  return false;
}

}  // namespace

BatchPipeline::BatchPipeline(NodeContext* ctx, Hooks hooks)
    : ctx_(ctx), hooks_(std::move(hooks)) {}

void StartBatchTimerLoop(NodeContext* ctx, std::function<void()> try_propose) {
  ctx->Schedule(ctx->config().batch_interval,
                [ctx, try_propose = std::move(try_propose)]() mutable {
                  if (ctx->byzantine() != ByzantineBehavior::kCrash) {
                    try_propose();
                  }
                  StartBatchTimerLoop(ctx, std::move(try_propose));
                });
}

bool ShouldProposeNow(NodeContext* ctx, bool proposing, size_t in_progress) {
  if (!ctx->IsLeader() || ctx->ReproposalPending()) return false;
  const bool decoupled = ctx->DecoupledApply();
  if (decoupled) {
    // Pipelined gate: up to EffectivePipelineDepth consensus instances may
    // run concurrently. `proposing_` (cleared only when a batch *applies*)
    // would re-serialize proposals on the storage stack.
    if (ctx->ConsensusInFlight() >= ctx->EffectivePipelineDepth()) {
      return false;
    }
  } else if (proposing) {
    return false;
  }
  if (ctx->mutable_log().empty()) {
    // Genesis batch, certifies preload state — once; with decoupled
    // proposals the genesis instance may already be in flight.
    return !decoupled || ctx->ConsensusInFlight() == 0;
  }
  if (in_progress > 0) return true;
  // A ready prepare group justifies a batch only if no in-flight
  // predecessor already committed it (else the batch would be empty).
  if (HasUncommittedReadyGroup(ctx, ctx->proposal_chain())) return true;
  return false;
}

void BatchPipeline::OnStart() {
  StartBatchTimerLoop(ctx_, [this] {
    if (ShouldPropose()) ProposeBatch();
  });
  // The genesis batch certifies the preloaded state right away so that
  // read-only transactions have a certificate to verify against.
  if (ctx_->byzantine() != ByzantineBehavior::kCrash && ShouldPropose()) {
    ProposeBatch();
  }
}

bool BatchPipeline::ShouldPropose() const {
  return ShouldProposeNow(ctx_, proposing_, in_progress_size());
}

void BatchPipeline::MaybeProposeOnSize() {
  if (hooks_.propose_on_size) {
    // Shard mode: the coordinator watches the total in-progress size
    // across all shards and proposes the merged batch.
    hooks_.propose_on_size();
    return;
  }
  bool slot_free =
      ctx_->DecoupledApply()
          ? ctx_->ConsensusInFlight() < ctx_->EffectivePipelineDepth()
          : !proposing_;
  if (ctx_->IsLeader() && slot_free && !ctx_->ReproposalPending() &&
      in_progress_size() >= ctx_->config().max_batch_size) {
    ProposeBatch();
  }
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

Status BatchPipeline::AdmitCheck(const Transaction& txn) {
  // Rule 1 of Definition 3.1 applies to the keys this partition owns.
  Transaction restricted = ctx_->RestrictToPartition(txn);
  TE_RETURN_IF_ERROR(ctx_->CheckReadVersions(restricted));
  // Rules 2 and 3 use the full footprint: a conflict on a remote key is a
  // conflict the remote partition would reject anyway; catching it here
  // aborts earlier and keeps prepare groups conflict-free.
  if (inprog_index_.ConflictsWith(txn)) {
    return Status::Conflict("conflicts with in-progress batch");
  }
  if (hooks_.peer_admit) {
    // Shard mode: rule 2 continues across the other shards this
    // transaction's footprint touches.
    TE_RETURN_IF_ERROR(hooks_.peer_admit(txn));
  }
  if (ctx_->pending_footprint().ConflictsWith(txn)) {
    return Status::Conflict("conflicts with a prepared transaction");
  }
  // Augustus baseline: shared read locks block writers (Table 1's
  // interference). TransEdge's own read-only path never takes locks.
  if (!txn.write_set.empty() && hooks_.ro_locks_block_writer(restricted)) {
    ++stats_.rw_aborted_by_ro_locks;
    return Status::Conflict("write key is read-locked (Augustus baseline)");
  }
  return Status::OK();
}

void BatchPipeline::RecordAdmitted(const Transaction& txn) {
  inprog_index_.Add(txn);
  indexed_.insert(txn.id);
  if (hooks_.on_admitted) hooks_.on_admitted(txn);
}

void BatchPipeline::HandleCommitRequest(sim::ActorId from,
                                        const wire::CommitRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  const Transaction& txn = msg.txn;
  // A retry of a transaction a (possibly handover-resumed) coordination
  // entry already owns: hand the client back to 2PC instead of dedup-
  // swallowing or — worse — re-admitting it against its own pending
  // footprint.
  if (hooks_.reattach_client && hooks_.reattach_client(txn.id, client)) return;
  if (seen_txns_.count(txn.id) > 0) return;  // Duplicate / retry.

  sim::Time done = ctx_->Charge(ctx_->config().cost.admit_per_txn);
  Status admit = AdmitCheck(txn);

  if (txn.IsLocal()) {
    if (!admit.ok()) {
      ++stats_.local_aborted;
      ctx_->ReplyCommit(client, txn.id, false, admit.message(), done);
      return;
    }
    seen_txns_.insert(txn.id);
    inprog_local_.push_back(txn);
    RecordAdmitted(txn);
    local_waiting_clients_[txn.id] = client;
  } else {
    if (txn.coordinator != ctx_->partition()) {
      ctx_->ReplyCommit(client, txn.id, false, "wrong coordinator cluster",
                        done);
      return;
    }
    if (!admit.ok()) {
      ++stats_.dist_aborted;
      ctx_->ReplyCommit(client, txn.id, false, admit.message(), done);
      return;
    }
    seen_txns_.insert(txn.id);
    inprog_prepared_.push_back(txn);
    RecordAdmitted(txn);
    hooks_.begin_coordination(txn, client);
  }

  MaybeProposeOnSize();
}

Status BatchPipeline::AdmitPrepared(const Transaction& txn) {
  if (seen_txns_.count(txn.id) > 0) {
    return Status::AlreadyExists("duplicate coordinator prepare");
  }
  // Marked seen even when the check below rejects: the no-vote we sent
  // is final for this transaction, and the id must keep absorbing the
  // f+1 fan-out duplicates (and byzantine replays of the proof-carrying
  // prepare) — a replayed prepare admitted after the coordinator already
  // decided abort would sit undecided in its prepare group forever.
  // Rejected ids are never in `indexed_`, so the footprint release
  // stays exact.
  seen_txns_.insert(txn.id);
  ctx_->Charge(ctx_->config().cost.admit_per_txn);
  TE_RETURN_IF_ERROR(AdmitCheck(txn));
  inprog_prepared_.push_back(txn);
  RecordAdmitted(txn);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Batch building
// ---------------------------------------------------------------------------

storage::Batch BuildBatchFromSegments(NodeContext* ctx,
                                      std::vector<Transaction> local,
                                      std::vector<Transaction> prepared) {
  const storage::SmrLog& log = ctx->mutable_log();
  ProposalChain chain = ctx->proposal_chain();
  storage::Batch batch;
  batch.partition = ctx->partition();
  batch.id = chain.next_id;
  batch.local = std::move(local);
  batch.prepared = std::move(prepared);

  // Committed segment: the ready prefix of prepare groups, in prepare
  // order (Definition 4.1). With predecessors in flight the LCE/CD chain
  // continues from the newest pending batch, and groups it already
  // committed are excluded.
  BatchId lce;
  txn::CdVector cd;
  if (!chain.pending.empty()) {
    lce = chain.pending.back()->ro.lce;
    cd = chain.pending.back()->ro.cd_vector;
  } else {
    lce = log.empty() ? kNoBatch : log.back().batch.ro.lce;
    cd = log.empty() ? txn::CdVector(ctx->config().num_partitions)
                     : log.back().batch.ro.cd_vector;
  }
  if (cd.empty()) cd = txn::CdVector(ctx->config().num_partitions);

  std::set<BatchId> window_committed = WindowCommittedGroups(chain);
  for (const txn::PrepareGroup* group :
       ctx->prepared_batches().ReadyPrefix()) {
    if (window_committed.count(group->prepared_in_batch) > 0) continue;
    for (const txn::PendingTxn& pending : group->txns) {
      storage::CommitRecord rec;
      rec.txn_id = pending.txn.id;
      rec.committed = pending.state == txn::PendingTxn::State::kCommitted;
      rec.prepared_in_batch = group->prepared_in_batch;
      rec.participant_info = pending.participant_info;
      rec.coordinator = pending.txn.coordinator;
      batch.committed.push_back(std::move(rec));
    }
    lce = group->prepared_in_batch;
  }

  // Algorithm 1: derive the CD vector from the previous batch's vector
  // and the CD vectors reported in the prepared messages of every commit
  // record in the committed segment.
  for (const storage::CommitRecord& rec : batch.committed) {
    if (!rec.committed) continue;  // Aborts introduce no dependencies.
    for (const storage::PreparedInfo& info : rec.participant_info) {
      if (info.cd_vector.size() == cd.size()) cd.PairwiseMax(info.cd_vector);
    }
  }
  cd.Set(ctx->partition(), batch.id);

  batch.ro.cd_vector = std::move(cd);
  batch.ro.lce = lce;
  batch.ro.timestamp_us = ctx->now();
  return batch;
}

void SealAndProposeBatch(
    NodeContext* ctx, storage::Batch batch, sim::Time compute_cost,
    const std::function<void(storage::Batch, merkle::MerkleTree)>& propose) {
  ctx->Charge(compute_cost + ctx->config().cost.signature_op);

  // Compute the post-state Merkle root on a structural-sharing clone of
  // the chain head: the newest in-flight post-state when pipelining, the
  // decided tree otherwise (identical to the applied tree under
  // synchronous apply).
  ProposalChain chain = ctx->proposal_chain();
  merkle::MerkleTree post_tree = chain.head_tree->Clone();
  ApplyBatchWritesToTree(&post_tree, ctx->partition_map(), ctx->partition(),
                         batch, ctx->prepared_batches());
  batch.ro.merkle_root = post_tree.RootDigest();

  propose(std::move(batch), std::move(post_tree));
}

storage::Batch BatchPipeline::BuildBatch() {
  std::vector<Transaction> local;
  std::vector<Transaction> prepared;
  DrainSegments(&local, &prepared);
  return BuildBatchFromSegments(ctx_, std::move(local), std::move(prepared));
}

void BatchPipeline::ProposeBatch() {
  proposing_ = true;
  storage::Batch batch = BuildBatch();
  sim::Time cost = ctx_->BatchComputeCost(
      batch.TotalTransactions(), ctx_->config().cost.admit_per_txn / 4);
  SealAndProposeBatch(ctx_, std::move(batch), cost, hooks_.propose);
}

void BatchPipeline::DrainSegments(std::vector<Transaction>* local,
                                  std::vector<Transaction>* prepared) {
  for (const Transaction& t : inprog_local_) proposed_inflight_.push_back(t.id);
  for (const Transaction& t : inprog_prepared_) {
    proposed_inflight_.push_back(t.id);
  }
  local->insert(local->end(), std::make_move_iterator(inprog_local_.begin()),
                std::make_move_iterator(inprog_local_.end()));
  prepared->insert(prepared->end(),
                   std::make_move_iterator(inprog_prepared_.begin()),
                   std::make_move_iterator(inprog_prepared_.end()));
  inprog_local_.clear();
  inprog_prepared_.clear();
}

// ---------------------------------------------------------------------------
// Post-apply / view-change bookkeeping
// ---------------------------------------------------------------------------

void BatchPipeline::OnBatchApplied(const storage::Batch& logged) {
  // Footprint release and dedup drain run on every replica, not just the
  // current leader: a demoted leader would otherwise keep stale
  // footprints for its in-flight batches, and seen_txns_ would grow
  // unboundedly with every transaction a replica ever admitted. The
  // release is keyed on `indexed_`, the exact record of what this
  // pipeline added (removing a foreign transaction could decrement
  // counts another in-flight admission still owns). Dedup lifetimes
  // differ by kind: a local id drains when its batch applies (the commit
  // reply goes out here), but a distributed id must keep absorbing
  // client retries and prepare-fan-out duplicates until its 2PC decision
  // is applied — i.e. until its commit record lands — or a retry during
  // the pending window would be re-admitted and abort against the
  // transaction's own pending footprint.
  for (const Transaction& t : logged.local) {
    if (indexed_.erase(t.id) > 0) inprog_index_.Remove(t);
    seen_txns_.erase(t.id);
  }
  for (const Transaction& t : logged.prepared) {
    if (indexed_.erase(t.id) > 0) inprog_index_.Remove(t);
  }
  for (const storage::CommitRecord& rec : logged.committed) {
    seen_txns_.erase(rec.txn_id);
  }
  // Release only the applied batch's ids from the proposed-in-flight set:
  // with pipelined proposals, later batches are still undecided and their
  // ids must survive a view change (OnViewChange un-dedups them).
  if (!proposed_inflight_.empty()) {
    std::unordered_set<TxnId> applied_ids;
    for (const Transaction& t : logged.local) applied_ids.insert(t.id);
    for (const Transaction& t : logged.prepared) applied_ids.insert(t.id);
    proposed_inflight_.erase(
        std::remove_if(proposed_inflight_.begin(), proposed_inflight_.end(),
                       [&](TxnId id) { return applied_ids.count(id) > 0; }),
        proposed_inflight_.end());
  }
  proposing_ = false;

  // Local transactions are now committed — answer clients.
  sim::Time at = ctx_->busy_until();
  for (const Transaction& t : logged.local) {
    auto it = local_waiting_clients_.find(t.id);
    if (it != local_waiting_clients_.end()) {
      ++stats_.local_committed;
      ctx_->ReplyCommit(it->second, t.id, true, "", at);
      local_waiting_clients_.erase(it);
    }
  }
}

void BatchPipeline::OnViewChange() {
  proposing_ = false;
  // Undecided admissions are abandoned — answer the waiting local clients
  // with a retryable abort (they re-issue against the new leader with the
  // same transaction id) instead of leaving them to hang.
  sim::Time at = ctx_->busy_until();
  // Drain in TxnId order: local_waiting_clients_ is an unordered_map, and
  // the abort replies are externally visible messages — iterating the map
  // directly would make reply order (and thus the whole downstream event
  // schedule) depend on the hash implementation.
  std::vector<std::pair<TxnId, sim::ActorId>> waiting(
      local_waiting_clients_.begin(), local_waiting_clients_.end());
  std::sort(waiting.begin(), waiting.end());
  for (const auto& [txn_id, client] : waiting) {
    ctx_->ReplyCommit(client, txn_id, false, "view change", at,
                      /*retryable=*/true);
  }
  local_waiting_clients_.clear();
  // Forget the abandoned ids — queued local *and* prepared, plus the
  // proposed-but-undecided batch — so a retry that lands back here after
  // a re-election is not swallowed by dedup. (Rejected prepares are NOT
  // forgotten: their no-vote is final.)
  for (const Transaction& t : inprog_local_) seen_txns_.erase(t.id);
  for (const Transaction& t : inprog_prepared_) seen_txns_.erase(t.id);
  for (TxnId id : proposed_inflight_) seen_txns_.erase(id);
  proposed_inflight_.clear();
  inprog_local_.clear();
  inprog_prepared_.clear();
  indexed_.clear();
  inprog_index_ = FootprintIndex();
}

}  // namespace transedge::core
