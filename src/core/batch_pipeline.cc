#include "core/batch_pipeline.h"

#include <utility>

#include "core/batch_apply.h"
#include "core/cd_vector.h"

namespace transedge::core {

BatchPipeline::BatchPipeline(NodeContext* ctx, Hooks hooks)
    : ctx_(ctx), hooks_(std::move(hooks)) {}

void BatchPipeline::OnStart() {
  // Every replica runs the batch timer; only the current leader acts on
  // it. That way a freshly elected leader starts batching immediately.
  ctx_->Schedule(ctx_->config().batch_interval, [this] { OnBatchTimer(); });
  // The genesis batch certifies the preloaded state right away so that
  // read-only transactions have a certificate to verify against.
  if (ctx_->byzantine() != ByzantineBehavior::kCrash && ShouldPropose()) {
    ProposeBatch();
  }
}

void BatchPipeline::OnBatchTimer() {
  if (ctx_->byzantine() != ByzantineBehavior::kCrash) {
    if (ShouldPropose()) ProposeBatch();
  }
  ctx_->Schedule(ctx_->config().batch_interval, [this] { OnBatchTimer(); });
}

bool BatchPipeline::ShouldPropose() const {
  if (!ctx_->IsLeader() || proposing_) return false;
  if (ctx_->mutable_log().empty()) {
    return true;  // Genesis batch, certifies preload state.
  }
  if (!inprog_local_.empty() || !inprog_prepared_.empty()) return true;
  if (ctx_->prepared_batches().OldestReady()) return true;
  return false;
}

void BatchPipeline::MaybeProposeOnSize() {
  if (ctx_->IsLeader() && !proposing_ &&
      in_progress_size() >= ctx_->config().max_batch_size) {
    ProposeBatch();
  }
}

// ---------------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------------

Status BatchPipeline::AdmitCheck(const Transaction& txn) {
  // Rule 1 of Definition 3.1 applies to the keys this partition owns.
  Transaction restricted = ctx_->RestrictToPartition(txn);
  TE_RETURN_IF_ERROR(ctx_->validator().CheckAgainstStore(restricted));
  // Rules 2 and 3 use the full footprint: a conflict on a remote key is a
  // conflict the remote partition would reject anyway; catching it here
  // aborts earlier and keeps prepare groups conflict-free.
  if (inprog_index_.ConflictsWith(txn)) {
    return Status::Conflict("conflicts with in-progress batch");
  }
  if (ctx_->pending_footprint().ConflictsWith(txn)) {
    return Status::Conflict("conflicts with a prepared transaction");
  }
  // Augustus baseline: shared read locks block writers (Table 1's
  // interference). TransEdge's own read-only path never takes locks.
  if (!txn.write_set.empty() && hooks_.ro_locks_block_writer(restricted)) {
    ++stats_.rw_aborted_by_ro_locks;
    return Status::Conflict("write key is read-locked (Augustus baseline)");
  }
  return Status::OK();
}

void BatchPipeline::HandleCommitRequest(sim::ActorId from,
                                        const wire::CommitRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  const Transaction& txn = msg.txn;
  if (seen_txns_.count(txn.id) > 0) return;  // Duplicate / retry.

  sim::Time done = ctx_->Charge(ctx_->config().cost.admit_per_txn);
  Status admit = AdmitCheck(txn);

  if (txn.IsLocal()) {
    if (!admit.ok()) {
      ++stats_.local_aborted;
      ctx_->ReplyCommit(client, txn.id, false, admit.message(), done);
      return;
    }
    seen_txns_.insert(txn.id);
    inprog_local_.push_back(txn);
    inprog_index_.Add(txn);
    local_waiting_clients_[txn.id] = client;
  } else {
    if (txn.coordinator != ctx_->partition()) {
      ctx_->ReplyCommit(client, txn.id, false, "wrong coordinator cluster",
                        done);
      return;
    }
    if (!admit.ok()) {
      ++stats_.dist_aborted;
      ctx_->ReplyCommit(client, txn.id, false, admit.message(), done);
      return;
    }
    seen_txns_.insert(txn.id);
    inprog_prepared_.push_back(txn);
    inprog_index_.Add(txn);
    hooks_.begin_coordination(txn, client);
  }

  MaybeProposeOnSize();
}

Status BatchPipeline::AdmitPrepared(const Transaction& txn) {
  if (seen_txns_.count(txn.id) > 0) {
    return Status::AlreadyExists("duplicate coordinator prepare");
  }
  seen_txns_.insert(txn.id);
  ctx_->Charge(ctx_->config().cost.admit_per_txn);
  TE_RETURN_IF_ERROR(AdmitCheck(txn));
  inprog_prepared_.push_back(txn);
  inprog_index_.Add(txn);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Batch building
// ---------------------------------------------------------------------------

storage::Batch BatchPipeline::BuildBatch() {
  const storage::SmrLog& log = ctx_->mutable_log();
  storage::Batch batch;
  batch.partition = ctx_->partition();
  batch.id = log.LastBatchId() + 1;
  batch.local = std::move(inprog_local_);
  batch.prepared = std::move(inprog_prepared_);
  inprog_local_.clear();
  inprog_prepared_.clear();

  // Committed segment: the ready prefix of prepare groups, in prepare
  // order (Definition 4.1).
  BatchId lce = log.empty() ? kNoBatch : log.back().batch.ro.lce;
  CdVector cd = log.empty() ? CdVector(ctx_->config().num_partitions)
                            : log.back().batch.ro.cd_vector;
  if (cd.empty()) cd = CdVector(ctx_->config().num_partitions);

  for (const txn::PrepareGroup* group :
       ctx_->prepared_batches().ReadyPrefix()) {
    for (const txn::PendingTxn& pending : group->txns) {
      storage::CommitRecord rec;
      rec.txn_id = pending.txn.id;
      rec.committed = pending.state == txn::PendingTxn::State::kCommitted;
      rec.prepared_in_batch = group->prepared_in_batch;
      rec.participant_info = pending.participant_info;
      batch.committed.push_back(std::move(rec));
    }
    lce = group->prepared_in_batch;
  }

  // Algorithm 1: derive the CD vector from the previous batch's vector
  // and the CD vectors reported in the prepared messages of every commit
  // record in the committed segment.
  for (const storage::CommitRecord& rec : batch.committed) {
    if (!rec.committed) continue;  // Aborts introduce no dependencies.
    for (const storage::PreparedInfo& info : rec.participant_info) {
      if (info.cd_vector.size() == cd.size()) cd.PairwiseMax(info.cd_vector);
    }
  }
  cd.Set(ctx_->partition(), batch.id);

  batch.ro.cd_vector = std::move(cd);
  batch.ro.lce = lce;
  batch.ro.timestamp_us = ctx_->now();
  return batch;
}

void BatchPipeline::ProposeBatch() {
  proposing_ = true;
  storage::Batch batch = BuildBatch();
  size_t batch_size = batch.TotalTransactions();
  ctx_->Charge(
      ctx_->BatchComputeCost(batch_size, ctx_->config().cost.admit_per_txn / 4) +
      ctx_->config().cost.signature_op);

  // Compute the post-state Merkle root on a structural-sharing clone.
  merkle::MerkleTree post_tree = ctx_->mutable_tree().Clone();
  ApplyBatchWritesToTree(&post_tree, ctx_->partition_map(), ctx_->partition(),
                         batch, ctx_->prepared_batches());
  batch.ro.merkle_root = post_tree.RootDigest();

  hooks_.propose(std::move(batch), std::move(post_tree));
}

// ---------------------------------------------------------------------------
// Post-apply / view-change bookkeeping
// ---------------------------------------------------------------------------

void BatchPipeline::OnBatchApplied(const storage::Batch& logged) {
  if (!ctx_->IsLeader()) return;
  for (const Transaction& t : logged.local) inprog_index_.Remove(t);
  for (const Transaction& t : logged.prepared) inprog_index_.Remove(t);
  proposing_ = false;

  // Local transactions are now committed — answer clients.
  sim::Time at = ctx_->busy_until();
  for (const Transaction& t : logged.local) {
    auto it = local_waiting_clients_.find(t.id);
    if (it != local_waiting_clients_.end()) {
      ++stats_.local_committed;
      ctx_->ReplyCommit(it->second, t.id, true, "", at);
      local_waiting_clients_.erase(it);
    }
  }
}

void BatchPipeline::OnViewChange() {
  proposing_ = false;
  inprog_local_.clear();
  inprog_prepared_.clear();
  inprog_index_ = FootprintIndex();
}

}  // namespace transedge::core
