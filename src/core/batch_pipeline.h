#ifndef TRANSEDGE_CORE_BATCH_PIPELINE_H_
#define TRANSEDGE_CORE_BATCH_PIPELINE_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/node_context.h"
#include "storage/batch.h"
#include "wire/message.h"

namespace transedge::core {

/// Leader-side admission and batching (Definition 3.1, Figure 2): the
/// in-progress transaction queues, the conflict footprint of everything
/// in flight, batch construction (including the committed segment, LCE,
/// and CD vector of the read-only segment), and the timer/size proposal
/// triggers.
///
/// The pipeline never talks to consensus or 2PC directly: a built batch
/// leaves through the `propose` hook, and distributed transactions that
/// pass admission are handed to `begin_coordination`.
///
/// When SystemConfig::pipeline_shards > 1 a ShardedPipeline hosts one
/// BatchPipeline per key-range shard: each instance then runs admission
/// only (the shard hooks below route cross-shard footprint checks), and
/// the hosting coordinator owns the timer, the size trigger, and the
/// merged proposal.
class BatchPipeline {
 public:
  struct Stats {
    uint64_t local_committed = 0;
    uint64_t local_aborted = 0;
    uint64_t dist_aborted = 0;
    uint64_t rw_aborted_by_ro_locks = 0;  // Augustus interference (Table 1).
  };

  struct Hooks {
    /// Hands a freshly built batch (and its post-state tree) to consensus.
    std::function<void(storage::Batch, merkle::MerkleTree)> propose;
    /// A distributed transaction passed admission with us as coordinator.
    std::function<void(const Transaction&, sim::ActorId)> begin_coordination;
    /// Consulted before dedup/admission of a commit request: true when a
    /// live (possibly handover-resumed) coordination already owns the
    /// transaction id — the 2PC layer attached the retrying client or
    /// answered it, and the request must not be re-admitted.
    std::function<bool(TxnId, sim::ActorId)> reattach_client;
    /// Augustus-baseline interference: true if a shared read lock blocks
    /// this (partition-restricted) writer.
    std::function<bool(const Transaction&)> ro_locks_block_writer;

    // --- Shard hooks (set only by ShardedPipeline, shards > 1) ----------
    /// Definition 3.1 rule-2 check against the in-progress indexes of the
    /// other shards a cross-shard transaction touches.
    std::function<Status(const Transaction&)> peer_admit;
    /// A transaction passed admission here: record its footprint slices
    /// in the other touched shards.
    std::function<void(const Transaction&)> on_admitted;
    /// Size trigger delegated to the coordinator, which watches the total
    /// in-progress size across shards and proposes the merged batch.
    std::function<void()> propose_on_size;
  };

  BatchPipeline(NodeContext* ctx, Hooks hooks);

  /// Arms the batch timer and proposes the genesis batch when leader.
  void OnStart();

  /// Client commit request (leader only; the node routes).
  void HandleCommitRequest(sim::ActorId from, const wire::CommitRequest& msg);

  /// 2PC participant path: admission for a transaction another cluster
  /// coordinates. Marks the transaction seen and, on success, enqueues it
  /// for the next batch. AlreadyExists for duplicates.
  Status AdmitPrepared(const Transaction& txn);

  /// 2PC dedup across commit requests and coordinator prepares.
  bool AlreadySeen(TxnId txn_id) const { return seen_txns_.count(txn_id) > 0; }

  /// True while `txn_id`'s footprint is held in this pipeline's
  /// in-progress index (admitted here and not yet applied or abandoned).
  bool HasIndexed(TxnId txn_id) const { return indexed_.count(txn_id) > 0; }

  /// Proposes when the in-progress batch reached the size trigger (or
  /// defers to the coordinator's trigger in shard mode).
  void MaybeProposeOnSize();

  /// Post-apply bookkeeping for a decided batch `logged`: releases the
  /// footprints and dedup entries of transactions this pipeline admitted
  /// (on every replica — a demoted leader must not keep stale state) and
  /// answers local clients when leader.
  void OnBatchApplied(const storage::Batch& logged);

  /// A new view was adopted: abandon undecided admissions and abort-reply
  /// the local clients waiting on them (retryable — the client re-issues
  /// against the new leader).
  void OnViewChange();

  // --- Shard-mode API (used by ShardedPipeline when shards > 1) ----------
  /// Definition 3.1 rule-2 check of `txn` against this shard's index.
  bool FootprintConflicts(const Transaction& txn) const {
    return inprog_index_.ConflictsWith(txn);
  }
  /// Records / releases the slice of a cross-shard transaction's
  /// footprint that falls in this shard's key range. The slice must be
  /// released with exactly the keys it was recorded with.
  void RecordPeerFootprint(const Transaction& slice) {
    inprog_index_.Add(slice);
  }
  void ReleasePeerFootprint(const Transaction& slice) {
    inprog_index_.Remove(slice);
  }
  /// Moves this shard's admitted segments onto the merged batch (the
  /// footprints stay indexed until the decided batch applies).
  void DrainSegments(std::vector<Transaction>* local,
                     std::vector<Transaction>* prepared);
  /// Drains a decided distributed id from the dedup set (the sharded
  /// coordinator fans an applied batch's commit records to every shard).
  void ForgetSeen(TxnId txn_id) { seen_txns_.erase(txn_id); }

  size_t in_progress_size() const {
    return inprog_local_.size() + inprog_prepared_.size();
  }
  /// Dedup entries currently held. Applied and view-change-abandoned
  /// admissions drain out (tests assert it); only rejected coordinator
  /// prepares are retained, as the permanent no-vote record for the f+1
  /// fan-out.
  size_t seen_txn_count() const { return seen_txns_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  bool ShouldPropose() const;
  void ProposeBatch();
  storage::Batch BuildBatch();

  /// Definition 3.1 admission check for `txn` (full footprint; store
  /// checks restricted to this partition's keys).
  Status AdmitCheck(const Transaction& txn);

  /// Indexes an admitted transaction's footprint (and fans the slices
  /// out to peer shards in shard mode).
  void RecordAdmitted(const Transaction& txn);

  NodeContext* ctx_;
  Hooks hooks_;

  std::vector<Transaction> inprog_local_;
  std::vector<Transaction> inprog_prepared_;
  FootprintIndex inprog_index_;  // In-progress + in-flight batches.
  std::unordered_map<TxnId, sim::ActorId> local_waiting_clients_;
  std::unordered_set<TxnId> seen_txns_;  // 2PC dedup.
  /// Ids whose footprints are currently in `inprog_index_` — admitted
  /// here, neither applied nor abandoned. Kept apart from the dedup set
  /// (rejected prepares are seen but never indexed; dedup survives
  /// longer than the footprint) so the post-apply release removes
  /// exactly what this pipeline added.
  std::unordered_set<TxnId> indexed_;
  /// Ids drained out of the queues into a proposed-but-undecided batch;
  /// their footprints are still indexed, so a view change must forget
  /// them from `seen_txns_` together with the queued ids.
  std::vector<TxnId> proposed_inflight_;
  bool proposing_ = false;
  Stats stats_;
};

/// Builds the next batch from already-admitted segments: assigns the next
/// log position, attaches the committed segment (the ready prefix of
/// prepare groups, Definition 4.1), and computes the LCE and CD vector
/// (Algorithm 1). Shared by the single pipeline and the sharded merge.
storage::Batch BuildBatchFromSegments(NodeContext* ctx,
                                      std::vector<Transaction> local,
                                      std::vector<Transaction> prepared);

/// Seals a built batch — post-state Merkle root on a structural-sharing
/// clone — and hands it to `propose`. `compute_cost` is the simulated
/// cost of constructing the batch (sharded leaders pay the superlinear
/// term per shard).
void SealAndProposeBatch(
    NodeContext* ctx, storage::Batch batch, sim::Time compute_cost,
    const std::function<void(storage::Batch, merkle::MerkleTree)>& propose);

/// The when-to-propose policy both pipeline flavors share: leader, not
/// already proposing, and (empty log => genesis) | queued admissions |
/// a ready prepare group.
bool ShouldProposeNow(NodeContext* ctx, bool proposing, size_t in_progress);

/// Arms the recurring batch timer on every replica (only the current
/// leader's `try_propose` does anything, so a freshly elected leader
/// starts batching immediately); skipped while crash-stopped.
void StartBatchTimerLoop(NodeContext* ctx, std::function<void()> try_propose);

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_BATCH_PIPELINE_H_
