#ifndef TRANSEDGE_CORE_BATCH_PIPELINE_H_
#define TRANSEDGE_CORE_BATCH_PIPELINE_H_

#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/node_context.h"
#include "storage/batch.h"
#include "wire/message.h"

namespace transedge::core {

/// Leader-side admission and batching (Definition 3.1, Figure 2): the
/// in-progress transaction queues, the conflict footprint of everything
/// in flight, batch construction (including the committed segment, LCE,
/// and CD vector of the read-only segment), and the timer/size proposal
/// triggers.
///
/// The pipeline never talks to consensus or 2PC directly: a built batch
/// leaves through the `propose` hook, and distributed transactions that
/// pass admission are handed to `begin_coordination`.
class BatchPipeline {
 public:
  struct Stats {
    uint64_t local_committed = 0;
    uint64_t local_aborted = 0;
    uint64_t dist_aborted = 0;
    uint64_t rw_aborted_by_ro_locks = 0;  // Augustus interference (Table 1).
  };

  struct Hooks {
    /// Hands a freshly built batch (and its post-state tree) to consensus.
    std::function<void(storage::Batch, merkle::MerkleTree)> propose;
    /// A distributed transaction passed admission with us as coordinator.
    std::function<void(const Transaction&, sim::ActorId)> begin_coordination;
    /// Augustus-baseline interference: true if a shared read lock blocks
    /// this (partition-restricted) writer.
    std::function<bool(const Transaction&)> ro_locks_block_writer;
  };

  BatchPipeline(NodeContext* ctx, Hooks hooks);

  /// Arms the batch timer and proposes the genesis batch when leader.
  void OnStart();

  /// Client commit request (leader only; the node routes).
  void HandleCommitRequest(sim::ActorId from, const wire::CommitRequest& msg);

  /// 2PC participant path: admission for a transaction another cluster
  /// coordinates. Marks the transaction seen and, on success, enqueues it
  /// for the next batch. AlreadyExists for duplicates.
  Status AdmitPrepared(const Transaction& txn);

  /// 2PC dedup across commit requests and coordinator prepares.
  bool AlreadySeen(TxnId txn_id) const { return seen_txns_.count(txn_id) > 0; }

  /// Proposes when the in-progress batch reached the size trigger.
  void MaybeProposeOnSize();

  /// Post-apply bookkeeping for a decided batch `logged` (leader only):
  /// releases footprints, answers local clients, re-arms proposing.
  void OnBatchApplied(const storage::Batch& logged);

  /// A new view was adopted: abandon undecided admissions.
  void OnViewChange();

  size_t in_progress_size() const {
    return inprog_local_.size() + inprog_prepared_.size();
  }
  const Stats& stats() const { return stats_; }

 private:
  void OnBatchTimer();
  bool ShouldPropose() const;
  void ProposeBatch();
  storage::Batch BuildBatch();

  /// Definition 3.1 admission check for `txn` (full footprint; store
  /// checks restricted to this partition's keys).
  Status AdmitCheck(const Transaction& txn);

  NodeContext* ctx_;
  Hooks hooks_;

  std::vector<Transaction> inprog_local_;
  std::vector<Transaction> inprog_prepared_;
  FootprintIndex inprog_index_;  // In-progress + in-flight batches.
  std::unordered_map<TxnId, sim::ActorId> local_waiting_clients_;
  std::unordered_set<TxnId> seen_txns_;  // 2PC dedup.
  bool proposing_ = false;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_BATCH_PIPELINE_H_
