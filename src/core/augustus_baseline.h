#ifndef TRANSEDGE_CORE_AUGUSTUS_BASELINE_H_
#define TRANSEDGE_CORE_AUGUSTUS_BASELINE_H_

#include <unordered_map>
#include <vector>

#include "core/node_context.h"
#include "core/ro_lock_table.h"
#include "wire/message.h"

namespace transedge::core {

/// Augustus-style locking read-only baseline (Figures 5–7, Table 1):
/// shared read locks plus replica voting. The lock table interferes with
/// read-write admission through a hook the batch pipeline queries;
/// TransEdge's own read-only path never takes locks.
class AugustusBaseline {
 public:
  struct Stats {
    uint64_t augustus_ro_served = 0;
  };

  explicit AugustusBaseline(NodeContext* ctx);

  void HandleRoRequest(sim::ActorId from, const wire::AugustusRoRequest& msg);
  void HandleVoteRequest(sim::ActorId from,
                         const wire::AugustusVoteRequest& msg);
  void HandleVoteReply(sim::ActorId from, const wire::AugustusVoteReply& msg);
  void HandleRelease(sim::ActorId from, const wire::AugustusRelease& msg);

  /// True if any key in `txn`'s write set is share-locked (Table 1's
  /// interference with read-write admission).
  bool BlocksWriter(const Transaction& txn) const {
    return lock_table_.BlocksWriter(txn);
  }

  const RoLockTable& lock_table() const { return lock_table_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    sim::ActorId client = 0;
    std::vector<Key> keys;
    uint32_t votes = 0;
    bool replied = false;
  };

  NodeContext* ctx_;
  RoLockTable lock_table_;
  std::unordered_map<uint64_t, Pending> pending_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_AUGUSTUS_BASELINE_H_
