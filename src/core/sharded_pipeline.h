#ifndef TRANSEDGE_CORE_SHARDED_PIPELINE_H_
#define TRANSEDGE_CORE_SHARDED_PIPELINE_H_

#include <memory>
#include <vector>

#include "core/batch_pipeline.h"
#include "core/node_context.h"

namespace transedge::core {

/// Routes keys to admission shards (SystemConfig::pipeline_shards). Both
/// policies hash the key once with SHA-256 and carve the digest so that
/// shard choice is independent from partition ownership (digest bytes
/// 28–31) and, for kHash, from the Merkle leaf index (bytes 0–3):
///
///   kHash   — bytes 24–27 modulo the shard count (uniform spray).
///   kRange  — bytes 0–3 (the Merkle leaf-index space) split into
///             contiguous equal ranges, so one shard's conflict index
///             covers a contiguous slice of the authenticated tree.
class ShardKeyRouter {
 public:
  ShardKeyRouter(uint32_t shard_count, ShardRouterKind kind)
      : shard_count_(shard_count == 0 ? 1 : shard_count), kind_(kind) {}

  uint32_t shard_count() const { return shard_count_; }
  uint32_t ShardOf(const Key& key) const;

 private:
  uint32_t shard_count_;
  ShardRouterKind kind_;
};

/// The leader's sharded admission path (ROADMAP "sharded batching"): N
/// BatchPipeline instances over disjoint key ranges, one merged proposal.
///
/// With pipeline_shards == 1 every call passes straight through to the
/// single BatchPipeline — byte-for-byte the pre-sharding behavior. With
/// N > 1 each shard owns the admission queues, conflict index, waiting
/// clients, and dedup set for the transactions homed to it (home = the
/// lowest shard its footprint touches):
///
///   - admission routes a commit request / coordinator prepare to its
///     home shard; Definition 3.1's rule 2 continues across the other
///     touched shards through the peer_admit hook, and the footprint
///     slices of a cross-shard transaction are recorded in every shard
///     they fall in, so two shards can never admit conflicting work;
///   - the coordinator owns the batch timer, the size trigger (total
///     in-progress size across shards), and the merged proposal: shard
///     segments are concatenated deterministically (by shard index, then
///     admission order within the shard) and BuildBatchFromSegments
///     computes one committed segment / LCE / CD vector / Merkle root,
///     so consensus, 2PC, and the read-only path see a perfectly
///     ordinary batch;
///   - the superlinear batch-construction pressure term is paid per
///     shard (NodeContext::ShardedBatchComputeCost), which is what lifts
///     the single-conflict-index admission bottleneck at high client
///     counts.
class ShardedPipeline {
 public:
  using Hooks = BatchPipeline::Hooks;
  using Stats = BatchPipeline::Stats;

  /// `hooks` carries the node-level hooks (propose, begin_coordination,
  /// ro_locks_block_writer); the shard hooks are wired internally.
  ShardedPipeline(NodeContext* ctx, Hooks hooks);

  void OnStart();
  void HandleCommitRequest(sim::ActorId from, const wire::CommitRequest& msg);
  Status AdmitPrepared(const Transaction& txn);
  bool AlreadySeen(TxnId txn_id) const;
  /// True while some shard still holds the id's footprint (admitted,
  /// neither applied nor abandoned).
  bool HasIndexed(TxnId txn_id) const;
  void MaybeProposeOnSize();
  void OnBatchApplied(const storage::Batch& logged);
  void OnViewChange();

  size_t in_progress_size() const;
  size_t seen_txn_count() const;
  /// Aggregated over the shards.
  Stats stats() const;

  uint32_t shard_count() const { return router_.shard_count(); }
  const ShardKeyRouter& router() const { return router_; }
  /// Introspection for tests: one shard's in-progress queue depth.
  size_t shard_in_progress(uint32_t shard) const {
    return shards_[shard]->in_progress_size();
  }

 private:
  bool single() const { return shards_.size() == 1; }

  /// One transaction's routing, computed with a single hash per key:
  /// per-key shard choices (parallel to the read/write sets) plus the
  /// distinct touched shards, ascending ({0} for an empty footprint —
  /// the home shard is touched.front()).
  struct ShardPlan {
    TxnId txn_id = 0;
    bool valid = false;
    std::vector<uint32_t> read_shards;
    std::vector<uint32_t> write_shards;
    std::vector<uint32_t> touched;
  };
  /// Memoized per transaction id: admission and apply each query the
  /// routing of the same transaction several times (home, peer checks,
  /// slices) in direct succession, and footprints are immutable per id.
  const ShardPlan& PlanFor(const Transaction& txn) const;

  uint32_t HomeShardOf(const Transaction& txn) const {
    return PlanFor(txn).touched.front();
  }
  /// The subset of `txn`'s footprint routed to `shard`.
  Transaction SliceToShard(const Transaction& txn, uint32_t shard) const;

  bool ShouldPropose() const;
  void ProposeMerged();

  NodeContext* ctx_;
  Hooks hooks_;
  ShardKeyRouter router_;
  std::vector<std::unique_ptr<BatchPipeline>> shards_;
  mutable ShardPlan plan_;  // Last-transaction routing memo.
  bool proposing_ = false;  // Merged-proposal flag (shards > 1 only).
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_SHARDED_PIPELINE_H_
