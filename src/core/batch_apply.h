#ifndef TRANSEDGE_CORE_BATCH_APPLY_H_
#define TRANSEDGE_CORE_BATCH_APPLY_H_

#include "merkle/merkle_tree.h"
#include "storage/batch.h"
#include "storage/partition_map.h"
#include "txn/prepared_batches.h"

namespace transedge::core {

/// Applies the writes a batch commits (local transactions + committed
/// distributed transactions) to `tree`, restricted to partition `self`'s
/// keys. Write sets of commit records are resolved through `pending`.
/// Shared by the leader's proposal path and replica re-validation.
void ApplyBatchWritesToTree(merkle::MerkleTree* tree,
                            const storage::PartitionMap& pmap,
                            PartitionId self, const storage::Batch& batch,
                            const txn::PreparedBatches& pending);

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_BATCH_APPLY_H_
