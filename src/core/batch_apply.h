#ifndef TRANSEDGE_CORE_BATCH_APPLY_H_
#define TRANSEDGE_CORE_BATCH_APPLY_H_

#include <functional>

#include "merkle/merkle_tree.h"
#include "storage/batch.h"
#include "storage/partition_map.h"
#include "txn/prepared_batches.h"

namespace transedge::core {

/// Resolves the transaction object behind a commit record's id; nullptr
/// when unknown (the record's writes are then skipped). The plain
/// overload below resolves through `PreparedBatches`; pipelined
/// validation overlays the prepare segments of in-flight predecessor
/// batches whose groups are not registered yet.
using TxnResolver = std::function<const Transaction*(TxnId)>;

/// Applies the writes a batch commits (local transactions + committed
/// distributed transactions) to `tree`, restricted to partition `self`'s
/// keys. Write sets of commit records are resolved through `resolve`.
/// Shared by the leader's proposal path and replica re-validation.
void ApplyBatchWritesToTree(merkle::MerkleTree* tree,
                            const storage::PartitionMap& pmap,
                            PartitionId self, const storage::Batch& batch,
                            const TxnResolver& resolve);

/// Convenience overload resolving commit records through `pending`.
void ApplyBatchWritesToTree(merkle::MerkleTree* tree,
                            const storage::PartitionMap& pmap,
                            PartitionId self, const storage::Batch& batch,
                            const txn::PreparedBatches& pending);

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_BATCH_APPLY_H_
