#ifndef TRANSEDGE_CORE_CONSENSUS_ENGINE_H_
#define TRANSEDGE_CORE_CONSENSUS_ENGINE_H_

#include <functional>
#include <map>
#include <set>

#include "core/node_context.h"
#include "storage/batch.h"
#include "wire/message.h"

namespace transedge::core {

/// Intra-cluster consensus on batches (§3.2): PBFT-style PrePrepare /
/// Prepare / Commit voting on one batch at a time, batch re-validation
/// against Definition 3.1 and the read-only segment rules, certificate
/// assembly, and view changes.
///
/// The engine owns the view number and all in-flight consensus
/// instances. It never applies state itself: when an instance reaches a
/// commit quorum it hands the decided batch (plus the assembled f+1
/// certificate and the post-state Merkle tree) to the `on_decided` hook,
/// which the hosting node wires to the storage stack and the other
/// engines.
class ConsensusEngine {
 public:
  struct Stats {
    uint64_t batches_decided = 0;
    uint64_t view_changes = 0;
  };

  /// A batch that reached a commit quorum, ready to be applied.
  struct Decided {
    storage::Batch batch;
    storage::BatchCertificate certificate;
    merkle::MerkleTree post_tree;
  };

  struct Hooks {
    /// Fired exactly once per decided batch, in log order. The handler
    /// applies the batch and drives all follow-up work (2PC, parked
    /// read-only requests, re-proposals).
    std::function<void(Decided)> on_decided;
    /// Fired after the engine adopts a higher view; the handler resets
    /// leader-side batching state.
    std::function<void()> on_view_adopted;
  };

  ConsensusEngine(NodeContext* ctx, Hooks hooks);

  uint64_t view() const { return view_; }

  /// Leader path: signs and broadcasts `batch` as the next proposal and
  /// seeds the local instance with the leader's own vote. `post_tree` is
  /// the batch's post-state tree computed by the batch pipeline.
  void Propose(storage::Batch batch, merkle::MerkleTree post_tree);

  void HandlePrePrepare(sim::ActorId from, const wire::PrePrepareMsg& msg);
  void HandlePrepare(sim::ActorId from, const wire::PrepareMsg& msg);
  void HandleCommit(sim::ActorId from, const wire::CommitMsg& msg);
  void HandleViewChange(sim::ActorId from, const wire::ViewChangeMsg& msg);

  /// Re-evaluates the instance for the next undecided batch id: validates
  /// a pending pre-prepare, emits our votes, and decides when quorums are
  /// reached.
  void AdvanceConsensus();

  /// Demands progress on `batch_id`: if the log has not reached it when
  /// the timer fires (in the same view), a view change is initiated.
  void StartViewChangeTimer(BatchId batch_id);

  const Stats& stats() const { return stats_; }

 private:
  struct ConsensusInstance {
    bool has_batch = false;
    storage::Batch batch;
    crypto::Digest digest;
    bool validated = false;
    bool validation_failed = false;
    merkle::MerkleTree post_tree;  // Tree with the batch's writes applied.
    /// Leader-shared tree (SystemConfig::simulate_shared_merkle).
    merkle::MerkleTree::Snapshot adopted_snapshot;
    /// Votes carry the digest the voter saw, so an equivocating leader's
    /// two batch variants split the vote and neither reaches quorum.
    std::map<crypto::NodeId, crypto::Digest> prepare_votes;
    std::map<crypto::NodeId, crypto::Digest> commit_votes;
    std::map<crypto::NodeId, crypto::Signature> cert_shares;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool decided = false;

    explicit ConsensusInstance(int merkle_depth) : post_tree(merkle_depth) {}
  };

  /// Definition 3.1 re-validation plus read-only-segment recomputation
  /// for a proposed batch. On success fills `instance->post_tree` and
  /// marks it validated.
  Status ValidateProposedBatch(ConsensusInstance* instance);

  /// Assembles the f+1 certificate from matching vote shares.
  storage::BatchCertificate AssembleCertificate(
      const ConsensusInstance& inst) const;

  void InitiateViewChange(uint64_t new_view);
  void MaybeAdoptView(uint64_t target);

  NodeContext* ctx_;
  Hooks hooks_;

  uint64_t view_ = 0;
  std::map<BatchId, ConsensusInstance> instances_;
  std::map<uint64_t, std::set<crypto::NodeId>> view_change_votes_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_CONSENSUS_ENGINE_H_
