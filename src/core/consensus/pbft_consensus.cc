#include "core/consensus/pbft_consensus.h"

#include <utility>

#include "core/consensus/batch_validation.h"

namespace transedge::core {

PbftConsensus::PbftConsensus(NodeContext* ctx, Hooks hooks)
    : ctx_(ctx), hooks_(std::move(hooks)) {}

void PbftConsensus::SendCounted(crypto::NodeId to, const sim::MessagePtr& msg,
                                sim::Time at) {
  ++stats_.messages_sent;
  ctx_->Send(to, msg, at);
}

void PbftConsensus::BroadcastCounted(const sim::MessagePtr& msg,
                                     sim::Time at) {
  stats_.messages_sent += ctx_->cluster_members().size() - 1;
  ctx_->BroadcastToCluster(msg, at);
}

size_t PbftConsensus::InFlight() const {
  BatchId tail = ctx_->mutable_log().LastBatchId();
  size_t n = 0;
  for (const auto& [id, inst] : instances_) {
    if (inst.has_batch && !inst.decided && id > tail) ++n;
  }
  return n;
}

bool PbftConsensus::OnMessage(sim::ActorId from, const sim::Message& msg) {
  switch (static_cast<wire::MessageType>(msg.type())) {
    case wire::MessageType::kPrePrepare:
      HandlePrePrepare(from, static_cast<const wire::PrePrepareMsg&>(msg));
      return true;
    case wire::MessageType::kPrepare:
      HandlePrepare(from, static_cast<const wire::PrepareMsg&>(msg));
      return true;
    case wire::MessageType::kCommit:
      HandleCommit(from, static_cast<const wire::CommitMsg&>(msg));
      return true;
    case wire::MessageType::kViewChange:
      HandleViewChange(from, static_cast<const wire::ViewChangeMsg&>(msg));
      return true;
    default:
      return false;
  }
}

void PbftConsensus::Propose(storage::Batch batch,
                            merkle::MerkleTree post_tree) {
  const SystemConfig& config = ctx_->config();
  auto [it, inserted] = instances_.try_emplace(batch.id, config.merkle_depth);
  ConsensusInstance& inst = it->second;
  inst.has_batch = true;
  inst.post_tree = std::move(post_tree);
  inst.digest = batch.ComputeDigest();
  inst.batch = batch;
  inst.validated = true;

  // Leader's own certificate share doubles as its prepare vote.
  storage::BatchCertificate payload =
      CertificatePayloadFor(ctx_->partition(), batch, inst.digest);
  crypto::Signature share = ctx_->Sign(payload.SignedPayload());
  inst.prepare_votes[ctx_->id()] = inst.digest;
  inst.cert_shares[ctx_->id()] = share;
  inst.sent_prepare = true;

  wire::PrePrepareMsg msg;
  msg.view = view_;
  msg.batch = std::move(batch);
  msg.leader_signature = ctx_->Sign(ProposalSignPayload(inst.digest));
  msg.leader_cert_share = share;

  if (config.simulate_shared_merkle) {
    msg.post_snapshot = inst.post_tree.GetSnapshot();
  }

  sim::Time done = ctx_->busy_until();
  if (ctx_->byzantine() == ByzantineBehavior::kEquivocate) {
    // Conflicting variant for half the cluster: same transactions,
    // different timestamp => different digest.
    wire::PrePrepareMsg alt = msg;
    alt.batch.ro.timestamp_us += 1;
    crypto::Digest alt_digest = alt.batch.ComputeDigest();
    alt.leader_signature = ctx_->Sign(ProposalSignPayload(alt_digest));
    storage::BatchCertificate alt_payload = payload;
    alt_payload.batch_digest = alt_digest;
    alt_payload.ro_digest = alt.batch.ro.ComputeDigest();
    alt.leader_cert_share = ctx_->Sign(alt_payload.SignedPayload());
    stats_.messages_sent += SendEquivocatingVariants(
        ctx_, ShareMsg(std::move(msg)), ShareMsg(std::move(alt)), done);
    return;
  }

  BroadcastCounted(ShareMsg(std::move(msg)), done);
  StartViewChangeTimer(inst.batch.id);
}

void PbftConsensus::HandlePrePrepare(sim::ActorId from,
                                     const wire::PrePrepareMsg& msg) {
  if (msg.view != view_) return;
  if (from != ctx_->config().LeaderOf(ctx_->partition(), view_)) return;
  BatchId id = msg.batch.id;
  if (id <= ctx_->mutable_log().LastBatchId()) return;  // Already decided.

  auto [it, inserted] = instances_.try_emplace(id, ctx_->config().merkle_depth);
  ConsensusInstance& inst = it->second;
  if (inst.has_batch) return;  // First proposal wins; duplicates ignored.

  crypto::Digest digest = msg.batch.ComputeDigest();
  if (!ctx_->verifier().Verify(ProposalSignPayload(digest),
                               msg.leader_signature) ||
      msg.leader_signature.signer != from) {
    return;  // Forged or corrupted proposal.
  }
  inst.has_batch = true;
  inst.batch = msg.batch;
  inst.digest = digest;
  inst.adopted_snapshot = msg.post_snapshot;
  inst.prepare_votes[from] = digest;
  inst.cert_shares[from] = msg.leader_cert_share;

  StartViewChangeTimer(id);
  AdvanceConsensus();
}

void PbftConsensus::HandlePrepare(sim::ActorId from,
                                  const wire::PrepareMsg& msg) {
  if (msg.view != view_) return;
  if (msg.batch_id <= ctx_->mutable_log().LastBatchId()) return;
  auto [it, inserted] =
      instances_.try_emplace(msg.batch_id, ctx_->config().merkle_depth);
  it->second.prepare_votes[from] = msg.batch_digest;
  it->second.cert_shares[from] = msg.cert_share;
  AdvanceConsensus();
}

void PbftConsensus::HandleCommit(sim::ActorId from,
                                 const wire::CommitMsg& msg) {
  if (msg.view != view_) return;
  if (msg.batch_id <= ctx_->mutable_log().LastBatchId()) return;
  auto [it, inserted] =
      instances_.try_emplace(msg.batch_id, ctx_->config().merkle_depth);
  it->second.commit_votes[from] = msg.batch_digest;
  AdvanceConsensus();
}

void PbftConsensus::AdvanceConsensus() {
  const SystemConfig& config = ctx_->config();
  BatchId next = ctx_->mutable_log().LastBatchId() + 1;
  auto it = instances_.find(next);
  if (it == instances_.end()) return;
  ConsensusInstance& inst = it->second;
  if (!inst.has_batch) return;

  if (!inst.validated && !inst.validation_failed) {
    Status s = ValidateProposedBatch(ctx_, inst.batch, inst.adopted_snapshot,
                                     &inst.post_tree);
    if (!s.ok()) {
      // A correct replica stays silent on an invalid proposal; the
      // progress timer will trigger a view change.
      inst.validation_failed = true;
      return;
    }
    inst.validated = true;
  }
  if (inst.validation_failed) return;

  if (!inst.sent_prepare) {
    storage::BatchCertificate payload =
        CertificatePayloadFor(ctx_->partition(), inst.batch, inst.digest);
    crypto::Signature share = ctx_->Sign(payload.SignedPayload());
    inst.prepare_votes[ctx_->id()] = inst.digest;
    inst.cert_shares[ctx_->id()] = share;
    inst.sent_prepare = true;

    wire::PrepareMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.batch_digest = inst.digest;
    msg.cert_share = share;
    BroadcastCounted(ShareMsg(std::move(msg)),
                     ctx_->Charge(config.cost.signature_op));
  }

  if (inst.sent_prepare && !inst.sent_commit &&
      CountMatchingVotes(inst.prepare_votes, inst.digest) >= config.quorum_size()) {
    inst.commit_votes[ctx_->id()] = inst.digest;
    inst.sent_commit = true;
    wire::CommitMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.batch_digest = inst.digest;
    BroadcastCounted(ShareMsg(std::move(msg)), ctx_->busy_until());
  }

  if (inst.sent_commit && !inst.decided &&
      CountMatchingVotes(inst.commit_votes, inst.digest) >= config.quorum_size()) {
    inst.decided = true;
    storage::BatchCertificate cert = AssembleCertificateFromShares(
        ctx_, inst.batch, inst.digest, inst.prepare_votes, inst.cert_shares,
        config.certificate_size());
    Decided decided{std::move(inst.batch), std::move(cert),
                    std::move(inst.post_tree)};
    instances_.erase(it);
    ++stats_.batches_decided;
    // The hook applies the batch, drives 2PC / read-only follow-ups, and
    // re-enters AdvanceConsensus for the next queued instance.
    hooks_.on_decided(std::move(decided));
  }
}

// ---------------------------------------------------------------------------
// View changes
// ---------------------------------------------------------------------------

void PbftConsensus::StartViewChangeTimer(BatchId batch_id) {
  uint64_t view_at_start = view_;
  ctx_->Schedule(ctx_->config().view_change_timeout,
                 [this, batch_id, view_at_start] {
                   if (view_ != view_at_start) return;
                   if (ctx_->mutable_log().LastBatchId() >= batch_id) {
                     return;  // Decided in time.
                   }
                   InitiateViewChange(view_ + 1);
                 });
}

void PbftConsensus::InitiateViewChange(uint64_t new_view) {
  if (new_view <= view_) return;
  auto& votes = view_change_votes_[new_view];
  if (votes.count(ctx_->id()) > 0) return;  // Already voted for this view.
  votes.insert(ctx_->id());

  wire::ViewChangeMsg msg;
  msg.new_view = new_view;
  msg.last_committed = ctx_->mutable_log().LastBatchId();
  Encoder enc;
  enc.PutString("transedge-view-change");
  enc.PutU64(new_view);
  msg.signature = ctx_->Sign(enc.buffer());
  BroadcastCounted(ShareMsg(std::move(msg)),
                   ctx_->Charge(ctx_->config().cost.signature_op));
  MaybeAdoptView(new_view);
}

void PbftConsensus::MaybeAdoptView(uint64_t target) {
  if (target <= view_) return;
  auto it = view_change_votes_.find(target);
  if (it == view_change_votes_.end() ||
      it->second.size() < ctx_->config().quorum_size()) {
    return;
  }
  view_ = target;
  ++stats_.view_changes;
  // Undecided proposals from the old view are abandoned; clients will
  // retry against the new leader.
  instances_.clear();
  view_change_votes_.erase(target);
  hooks_.on_view_adopted();
}

void PbftConsensus::HandleViewChange(sim::ActorId from,
                                     const wire::ViewChangeMsg& msg) {
  uint64_t target = msg.new_view;
  if (target <= view_) return;
  auto& votes = view_change_votes_[target];
  votes.insert(from);

  // Join the view change once f+1 replicas demand it (at least one of
  // them is honest), adopt once 2f+1 do.
  if (votes.count(ctx_->id()) == 0 && votes.size() > ctx_->config().f) {
    InitiateViewChange(target);
    return;
  }
  MaybeAdoptView(target);
}

}  // namespace transedge::core
