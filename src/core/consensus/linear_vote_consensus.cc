#include "core/consensus/linear_vote_consensus.h"

#include <utility>

#include "core/consensus/batch_validation.h"

namespace transedge::core {

LinearVoteConsensus::LinearVoteConsensus(NodeContext* ctx, Hooks hooks)
    : ctx_(ctx), hooks_(std::move(hooks)) {}

void LinearVoteConsensus::SendCounted(crypto::NodeId to,
                                      const sim::MessagePtr& msg,
                                      sim::Time at) {
  ++stats_.messages_sent;
  ctx_->Send(to, msg, at);
}

void LinearVoteConsensus::BroadcastCounted(const sim::MessagePtr& msg,
                                           sim::Time at) {
  stats_.messages_sent += ctx_->cluster_members().size() - 1;
  ctx_->BroadcastToCluster(msg, at);
}

bool LinearVoteConsensus::OnMessage(sim::ActorId from,
                                    const sim::Message& msg) {
  switch (static_cast<wire::MessageType>(msg.type())) {
    case wire::MessageType::kLinearPropose:
      HandlePropose(from, static_cast<const wire::LinearProposeMsg&>(msg));
      return true;
    case wire::MessageType::kLinearVote:
      HandleVote(from, static_cast<const wire::LinearVoteMsg&>(msg));
      return true;
    case wire::MessageType::kLinearQc:
      HandleQc(from, static_cast<const wire::LinearQcMsg&>(msg));
      return true;
    case wire::MessageType::kLinearViewChange:
      HandleViewChange(from,
                       static_cast<const wire::LinearViewChangeMsg&>(msg));
      return true;
    case wire::MessageType::kLinearNewView:
      HandleNewView(from, static_cast<const wire::LinearNewViewMsg&>(msg));
      return true;
    default:
      return false;
  }
}

Bytes LinearVoteConsensus::CommitVotePayload(
    BatchId batch_id, const crypto::Digest& digest) const {
  Encoder enc;
  enc.PutString("transedge-linear-commit");
  enc.PutU32(ctx_->partition());
  enc.PutI64(batch_id);
  enc.PutRaw(digest.bytes.data(), digest.bytes.size());
  return enc.Take();
}

Bytes LinearVoteConsensus::ViewChangePayload(uint64_t new_view) const {
  Encoder enc;
  enc.PutString("transedge-linear-view-change");
  enc.PutU32(ctx_->partition());
  enc.PutU64(new_view);
  return enc.Take();
}

// ---------------------------------------------------------------------------
// Proposal and voting
// ---------------------------------------------------------------------------

void LinearVoteConsensus::Propose(storage::Batch batch,
                                  merkle::MerkleTree post_tree) {
  const SystemConfig& config = ctx_->config();
  auto [it, inserted] = instances_.try_emplace(batch.id, config.merkle_depth);
  Instance& inst = it->second;
  inst.has_batch = true;
  inst.post_tree = std::move(post_tree);
  inst.digest = batch.ComputeDigest();
  inst.batch = batch;
  inst.validated = true;

  // The leader's own certificate share doubles as its prepare vote.
  storage::BatchCertificate payload =
      CertificatePayloadFor(ctx_->partition(), batch, inst.digest);
  crypto::Signature share = ctx_->Sign(payload.SignedPayload());
  inst.prepare_votes[ctx_->id()] = inst.digest;
  inst.prepare_shares[ctx_->id()] = share;
  inst.sent_prepare_vote = true;

  wire::LinearProposeMsg msg;
  msg.view = view_;
  msg.batch = std::move(batch);
  msg.leader_signature = ctx_->Sign(ProposalSignPayload(inst.digest));
  if (config.simulate_shared_merkle) {
    msg.post_snapshot = inst.post_tree.GetSnapshot();
  }

  sim::Time done = ctx_->busy_until();
  if (ctx_->byzantine() == ByzantineBehavior::kEquivocate) {
    // Conflicting variants to the two halves of the cluster. Votes carry
    // the digest the voter saw, so neither variant can aggregate a
    // quorum of matching prepare shares at the (leader's own) collector.
    wire::LinearProposeMsg alt = msg;
    alt.batch.ro.timestamp_us += 1;
    crypto::Digest alt_digest = alt.batch.ComputeDigest();
    alt.leader_signature = ctx_->Sign(ProposalSignPayload(alt_digest));
    stats_.messages_sent += SendEquivocatingVariants(
        ctx_, ShareMsg(std::move(msg)), ShareMsg(std::move(alt)), done);
    return;
  }

  BroadcastCounted(ShareMsg(std::move(msg)), done);
  StartViewChangeTimer(inst.batch.id);
  AdvanceConsensus();
}

void LinearVoteConsensus::HandlePropose(sim::ActorId from,
                                        const wire::LinearProposeMsg& msg) {
  if (msg.view != view_) return;
  if (from != ctx_->config().LeaderOf(ctx_->partition(), view_)) return;
  BatchId id = msg.batch.id;
  if (id <= ctx_->mutable_log().LastBatchId()) return;  // Already decided.

  auto [it, inserted] = instances_.try_emplace(id, ctx_->config().merkle_depth);
  Instance& inst = it->second;
  if (inst.has_batch) return;  // First proposal wins; duplicates ignored.

  crypto::Digest digest = msg.batch.ComputeDigest();
  if (!ctx_->verifier().Verify(ProposalSignPayload(digest),
                               msg.leader_signature) ||
      msg.leader_signature.signer != from) {
    return;  // Forged or corrupted proposal.
  }
  inst.has_batch = true;
  inst.batch = msg.batch;
  inst.digest = digest;
  inst.adopted_snapshot = msg.post_snapshot;

  StartViewChangeTimer(id);
  AdvanceConsensus();
}

void LinearVoteConsensus::HandleVote(sim::ActorId from,
                                     const wire::LinearVoteMsg& msg) {
  if (msg.view != view_) return;
  if (!IsLeaderSelf()) return;  // Votes aggregate at the leader only.
  if (msg.batch_id <= ctx_->mutable_log().LastBatchId()) return;
  auto [it, inserted] =
      instances_.try_emplace(msg.batch_id, ctx_->config().merkle_depth);
  Instance& inst = it->second;
  if (msg.phase == wire::kLinearPhasePrepare) {
    inst.prepare_votes[from] = msg.batch_digest;
    inst.prepare_shares[from] = msg.share;
  } else {
    inst.commit_votes[from] = msg.batch_digest;
    inst.commit_shares[from] = msg.share;
  }
  AdvanceConsensus();
}

void LinearVoteConsensus::HandleQc(sim::ActorId from,
                                   const wire::LinearQcMsg& msg) {
  (void)from;  // QCs are self-certifying: quorums of signatures.
  if (msg.view != view_) return;
  BatchId id = msg.cert.batch_id;
  if (id <= ctx_->mutable_log().LastBatchId()) return;
  // QCs are self-contained, so verify on receipt — a forged QC must be
  // dropped here, never stashed, or it would displace the genuine one
  // (the leader does not resend). At most one digest per batch id can
  // gather a quorum, so a verified QC is the decision of its phase.
  const SystemConfig& config = ctx_->config();
  if (msg.phase == wire::kLinearPhasePrepare) {
    if (!msg.cert
             .Verify(ctx_->verifier(), config.quorum_size(),
                     ctx_->cluster_members())
             .ok()) {
      return;
    }
  } else {
    if (!msg.cert
             .Verify(ctx_->verifier(), config.certificate_size(),
                     ctx_->cluster_members())
             .ok() ||
        !msg.commit_sigs
             .VerifyQuorum(ctx_->verifier(),
                           CommitVotePayload(id, msg.cert.batch_digest),
                           config.quorum_size(), ctx_->cluster_members())
             .ok()) {
      return;
    }
  }
  auto [it, inserted] = instances_.try_emplace(id, config.merkle_depth);
  Instance& inst = it->second;
  if (msg.phase == wire::kLinearPhasePrepare) {
    inst.have_prepare_qc = true;
    inst.certificate = msg.cert;
  } else {
    inst.have_commit_qc = true;
    inst.certificate = msg.cert;
    inst.commit_qc_sigs = msg.commit_sigs;
  }
  AdvanceConsensus();
}

// ---------------------------------------------------------------------------
// Phase progression
// ---------------------------------------------------------------------------

void LinearVoteConsensus::AdvanceConsensus() {
  const SystemConfig& config = ctx_->config();
  BatchId next = ctx_->mutable_log().LastBatchId() + 1;
  auto it = instances_.find(next);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  if (!inst.has_batch) return;

  if (!inst.validated && !inst.validation_failed) {
    Status s = ValidateProposedBatch(ctx_, inst.batch, inst.adopted_snapshot,
                                     &inst.post_tree);
    if (!s.ok()) {
      // A correct replica stays silent on an invalid proposal; the
      // progress timer will trigger a view change.
      inst.validation_failed = true;
      return;
    }
    inst.validated = true;
  }
  if (inst.validation_failed) return;

  const crypto::NodeId leader =
      config.LeaderOf(ctx_->partition(), view_);

  // Replica: prepare vote to the leader.
  if (!inst.sent_prepare_vote) {
    storage::BatchCertificate payload =
        CertificatePayloadFor(ctx_->partition(), inst.batch, inst.digest);
    crypto::Signature share = ctx_->Sign(payload.SignedPayload());
    inst.sent_prepare_vote = true;
    wire::LinearVoteMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.phase = wire::kLinearPhasePrepare;
    msg.batch_digest = inst.digest;
    msg.share = share;
    SendCounted(leader, ShareMsg(std::move(msg)),
                ctx_->Charge(config.cost.signature_op));
  }

  // Replica: prepare QC (verified on receipt) => commit vote to the
  // leader. A digest mismatch means we hold an equivocation variant the
  // quorum did not certify: stay silent and let the timer force a view
  // change.
  if (inst.have_prepare_qc && !inst.sent_commit_vote &&
      inst.certificate.batch_digest == inst.digest) {
    crypto::Signature share =
        ctx_->Sign(CommitVotePayload(inst.batch.id, inst.digest));
    inst.sent_commit_vote = true;
    wire::LinearVoteMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.phase = wire::kLinearPhaseCommit;
    msg.batch_digest = inst.digest;
    msg.share = share;
    SendCounted(leader, ShareMsg(std::move(msg)),
                ctx_->Charge(config.cost.signature_op));
  }

  // Replica: commit QC (verified on receipt) => decide.
  if (inst.have_commit_qc && !inst.decided &&
      inst.certificate.batch_digest == inst.digest) {
    Decide(next);
    return;
  }

  if (leader == ctx_->id()) LeaderAdvance(next, inst);
}

void LinearVoteConsensus::LeaderAdvance(BatchId batch_id, Instance& inst) {
  const SystemConfig& config = ctx_->config();

  if (!inst.prepare_qc_sent &&
      CountMatchingVotes(inst.prepare_votes, inst.digest) >= config.quorum_size()) {
    // Aggregate the prepare QC: a batch certificate carrying a quorum of
    // shares (any f+1 subset is the client-facing certificate).
    inst.certificate = AssembleCertificateFromShares(
        ctx_, inst.batch, inst.digest, inst.prepare_votes, inst.prepare_shares,
        config.quorum_size());
    if (inst.certificate.signatures.size() < config.quorum_size()) {
      return;  // A share failed verification; wait for more votes.
    }
    inst.prepare_qc_sent = true;

    // The leader's own commit vote.
    inst.commit_votes[ctx_->id()] = inst.digest;
    inst.commit_shares[ctx_->id()] =
        ctx_->Sign(CommitVotePayload(batch_id, inst.digest));
    inst.sent_commit_vote = true;

    wire::LinearQcMsg msg;
    msg.view = view_;
    msg.phase = wire::kLinearPhasePrepare;
    msg.cert = inst.certificate;
    BroadcastCounted(ShareMsg(std::move(msg)),
                     ctx_->Charge(config.cost.signature_op));
  }

  if (inst.prepare_qc_sent && !inst.commit_qc_sent &&
      CountMatchingVotes(inst.commit_votes, inst.digest) >= config.quorum_size()) {
    Bytes payload = CommitVotePayload(batch_id, inst.digest);
    crypto::SignatureSet commit_sigs;
    for (const auto& [node, vote_digest] : inst.commit_votes) {
      if (commit_sigs.size() >= config.quorum_size()) break;
      if (!(vote_digest == inst.digest)) continue;
      auto share = inst.commit_shares.find(node);
      if (share == inst.commit_shares.end()) continue;
      if (ctx_->verifier().Verify(payload, share->second)) {
        commit_sigs.Add(share->second);
      }
    }
    if (commit_sigs.size() < config.quorum_size()) return;
    inst.commit_qc_sent = true;

    wire::LinearQcMsg msg;
    msg.view = view_;
    msg.phase = wire::kLinearPhaseCommit;
    msg.cert = inst.certificate;
    msg.commit_sigs = std::move(commit_sigs);
    BroadcastCounted(ShareMsg(std::move(msg)), ctx_->busy_until());
    Decide(batch_id);
  }
}

void LinearVoteConsensus::Decide(BatchId batch_id) {
  auto it = instances_.find(batch_id);
  if (it == instances_.end() || it->second.decided) return;
  Instance& inst = it->second;
  inst.decided = true;
  Decided decided{std::move(inst.batch), std::move(inst.certificate),
                  std::move(inst.post_tree)};
  instances_.erase(it);
  ++stats_.batches_decided;
  // The hook applies the batch, drives 2PC / read-only follow-ups, and
  // re-enters AdvanceConsensus for the next queued instance.
  hooks_.on_decided(std::move(decided));
}

// ---------------------------------------------------------------------------
// View changes (linear: requests to the prospective leader, QC broadcast)
// ---------------------------------------------------------------------------

void LinearVoteConsensus::StartViewChangeTimer(BatchId batch_id) {
  uint64_t view_at_start = view_;
  ctx_->Schedule(ctx_->config().view_change_timeout,
                 [this, batch_id, view_at_start] {
                   if (view_ != view_at_start) return;
                   if (ctx_->mutable_log().LastBatchId() >= batch_id) {
                     return;  // Decided in time.
                   }
                   RequestViewChange(view_ + 1);
                 });
}

void LinearVoteConsensus::RequestViewChange(uint64_t target) {
  if (target <= view_) return;
  crypto::Signature sig = ctx_->Sign(ViewChangePayload(target));
  crypto::NodeId prospective =
      ctx_->config().LeaderOf(ctx_->partition(), target);
  if (prospective == ctx_->id()) {
    auto& votes = view_change_votes_[target];
    votes[ctx_->id()] = sig;
    if (votes.size() >= ctx_->config().quorum_size()) {
      // Quorum already collected from earlier requests; announce.
      wire::LinearNewViewMsg msg;
      msg.new_view = target;
      for (const auto& [node, s] : votes) msg.proof.Add(s);
      BroadcastCounted(ShareMsg(std::move(msg)), ctx_->busy_until());
      AdoptView(target);
      return;
    }
  } else {
    wire::LinearViewChangeMsg msg;
    msg.new_view = target;
    msg.last_committed = ctx_->mutable_log().LastBatchId();
    msg.signature = sig;
    SendCounted(prospective, ShareMsg(std::move(msg)),
                ctx_->Charge(ctx_->config().cost.signature_op));
  }
  // If the prospective leader is faulty too, escalate past it after
  // another timeout (stop as soon as any view change lands).
  uint64_t view_at_request = view_;
  ctx_->Schedule(ctx_->config().view_change_timeout,
                 [this, target, view_at_request] {
                   if (view_ != view_at_request) return;
                   RequestViewChange(target + 1);
                 });
}

void LinearVoteConsensus::HandleViewChange(
    sim::ActorId from, const wire::LinearViewChangeMsg& msg) {
  uint64_t target = msg.new_view;
  if (target <= view_) return;
  if (ctx_->config().LeaderOf(ctx_->partition(), target) != ctx_->id()) {
    return;  // Misrouted; only the prospective leader aggregates.
  }
  if (!ctx_->verifier().Verify(ViewChangePayload(target), msg.signature) ||
      msg.signature.signer != from) {
    return;  // Forged request.
  }
  auto& votes = view_change_votes_[target];
  votes[from] = msg.signature;
  // Join once f+1 distinct replicas demand the change (at least one of
  // them is honest); our own signature completes or advances the quorum.
  if (votes.count(ctx_->id()) == 0 && votes.size() > ctx_->config().f) {
    votes[ctx_->id()] = ctx_->Sign(ViewChangePayload(target));
  }
  if (votes.size() < ctx_->config().quorum_size()) return;

  wire::LinearNewViewMsg announce;
  announce.new_view = target;
  for (const auto& [node, s] : votes) announce.proof.Add(s);
  BroadcastCounted(ShareMsg(std::move(announce)),
                   ctx_->Charge(ctx_->config().cost.signature_op));
  AdoptView(target);
}

void LinearVoteConsensus::HandleNewView(sim::ActorId from,
                                        const wire::LinearNewViewMsg& msg) {
  (void)from;  // The proof quorum, not the sender, legitimises the change.
  if (msg.new_view <= view_) return;
  Status quorum = msg.proof.VerifyQuorum(
      ctx_->verifier(), ViewChangePayload(msg.new_view),
      ctx_->config().quorum_size(), ctx_->cluster_members());
  if (!quorum.ok()) return;
  AdoptView(msg.new_view);
}

void LinearVoteConsensus::AdoptView(uint64_t target) {
  if (target <= view_) return;
  view_ = target;
  ++stats_.view_changes;
  // Undecided proposals from the old view are abandoned; clients will
  // retry against the new leader.
  instances_.clear();
  view_change_votes_.erase(view_change_votes_.begin(),
                           view_change_votes_.upper_bound(target));
  hooks_.on_view_adopted();
}

}  // namespace transedge::core
