#include "core/consensus/linear_vote_consensus.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/batch_apply.h"
#include "core/consensus/batch_validation.h"

namespace transedge::core {

LinearVoteConsensus::LinearVoteConsensus(NodeContext* ctx, Hooks hooks)
    : ctx_(ctx), hooks_(std::move(hooks)) {}

void LinearVoteConsensus::SendCounted(crypto::NodeId to,
                                      const sim::MessagePtr& msg,
                                      sim::Time at) {
  ++stats_.messages_sent;
  ctx_->Send(to, msg, at);
}

void LinearVoteConsensus::BroadcastCounted(const sim::MessagePtr& msg,
                                           sim::Time at) {
  stats_.messages_sent += ctx_->cluster_members().size() - 1;
  ctx_->BroadcastToCluster(msg, at);
}

bool LinearVoteConsensus::OnMessage(sim::ActorId from,
                                    const sim::Message& msg) {
  switch (static_cast<wire::MessageType>(msg.type())) {
    case wire::MessageType::kLinearPropose:
      HandlePropose(from, static_cast<const wire::LinearProposeMsg&>(msg));
      return true;
    case wire::MessageType::kLinearVote:
      HandleVote(from, static_cast<const wire::LinearVoteMsg&>(msg));
      return true;
    case wire::MessageType::kLinearQc:
      HandleQc(from, static_cast<const wire::LinearQcMsg&>(msg));
      return true;
    case wire::MessageType::kLinearViewChange:
      HandleViewChange(from,
                       static_cast<const wire::LinearViewChangeMsg&>(msg));
      return true;
    case wire::MessageType::kLinearNewView:
      HandleNewView(from, static_cast<const wire::LinearNewViewMsg&>(msg));
      return true;
    case wire::MessageType::kLinearCatchUp:
      HandleCatchUp(from, static_cast<const wire::LinearCatchUpMsg&>(msg));
      return true;
    default:
      return false;
  }
}

bool LinearVoteConsensus::IsClusterMember(crypto::NodeId id) const {
  const auto& members = ctx_->cluster_members();
  return std::find(members.begin(), members.end(), id) != members.end();
}

void LinearVoteConsensus::PruneStaleLocks() {
  locks_.erase(locks_.begin(),
               locks_.upper_bound(ctx_->mutable_log().LastBatchId()));
}

void LinearVoteConsensus::MaybeLockOn(uint64_t view, const Instance& inst) {
  Lock& lock = locks_[inst.batch.id];
  if (lock.valid && lock.view > view) return;
  lock.valid = true;
  lock.view = view;
  lock.batch = inst.batch;
  lock.digest = inst.digest;
  lock.cert = inst.certificate;
  lock.view_sigs = inst.qc_view_sigs;
  lock.snapshot = inst.validated && ctx_->config().simulate_shared_merkle
                      ? inst.post_tree.GetSnapshot()
                      : inst.adopted_snapshot;
}

bool LinearVoteConsensus::LockBlocksVote(const Instance& inst) const {
  auto it = locks_.find(inst.batch.id);
  if (it == locks_.end() || !it->second.valid) return false;
  if (it->second.digest == inst.digest) return false;
  return !(inst.has_justify && inst.justify_view >= it->second.view);
}

bool LinearVoteConsensus::HasPendingReproposal() const {
  return reproposed_id_ != kNoBatch &&
         reproposed_id_ > ctx_->mutable_log().LastBatchId();
}

Bytes LinearVoteConsensus::CommitVotePayload(
    BatchId batch_id, const crypto::Digest& digest) const {
  Encoder enc;
  enc.PutString("transedge-linear-commit");
  enc.PutU32(ctx_->partition());
  enc.PutI64(batch_id);
  enc.PutRaw(digest.bytes.data(), digest.bytes.size());
  return enc.Take();
}

Bytes LinearVoteConsensus::ViewBindPayload(BatchId batch_id,
                                           const crypto::Digest& digest,
                                           uint64_t view) const {
  Encoder enc;
  enc.PutString("transedge-linear-qc-view");
  enc.PutU32(ctx_->partition());
  enc.PutI64(batch_id);
  enc.PutRaw(digest.bytes.data(), digest.bytes.size());
  enc.PutU64(view);
  return enc.Take();
}

Bytes LinearVoteConsensus::ViewChangePayload(uint64_t new_view) const {
  Encoder enc;
  enc.PutString("transedge-linear-view-change");
  enc.PutU32(ctx_->partition());
  enc.PutU64(new_view);
  return enc.Take();
}

// ---------------------------------------------------------------------------
// Pipelining introspection (NodeContext window)
// ---------------------------------------------------------------------------

size_t LinearVoteConsensus::InFlight() const {
  BatchId tail = ctx_->mutable_log().LastBatchId();
  size_t n = 0;
  for (const auto& [id, inst] : instances_) {
    if (inst.has_batch && !inst.decided && id > tail) ++n;
  }
  return n;
}

uint32_t LinearVoteConsensus::MaxPipelineDepth() const {
  // The chained-instance machinery has no inherent window bound; the
  // node clamps to SystemConfig::pipeline_depth.
  return std::numeric_limits<uint32_t>::max();
}

ProposalChain LinearVoteConsensus::ChainUpTo(BatchId id) {
  ProposalChain chain;
  chain.next_id = id;
  for (BatchId p = ctx_->mutable_log().LastBatchId() + 1; p < id; ++p) {
    auto it = instances_.find(p);
    if (it == instances_.end() || !it->second.has_batch ||
        !it->second.validated) {
      // Broken chain below `id`; callers only ask about slots whose
      // predecessors are all live and validated.
      chain.pending.clear();
      chain.head_tree = nullptr;
      return chain;
    }
    chain.pending.push_back(&it->second.batch);
    chain.head_tree = &it->second.post_tree;
  }
  return chain;
}

ProposalChain LinearVoteConsensus::Chain() {
  BatchId id = ctx_->mutable_log().LastBatchId() + 1;
  while (true) {
    auto it = instances_.find(id);
    if (it == instances_.end() || !it->second.has_batch ||
        !it->second.validated) {
      break;
    }
    ++id;
  }
  return ChainUpTo(id);
}

// ---------------------------------------------------------------------------
// Proposal and voting
// ---------------------------------------------------------------------------

void LinearVoteConsensus::Propose(storage::Batch batch,
                                  merkle::MerkleTree post_tree) {
  const SystemConfig& config = ctx_->config();
  // A slot we hold a conflicting lock on belongs to the locked batch —
  // it may already be decided on another replica. Re-propose it instead
  // of the fresh batch (covers locks adopted past a gap, which AdoptView
  // could not re-propose when the gap was still open).
  PruneStaleLocks();
  auto lk = locks_.find(batch.id);
  if (lk != locks_.end() && lk->second.valid &&
      !(lk->second.digest == batch.ComputeDigest())) {
    ReproposeLocked();
    return;
  }
  // Defensive: the pipeline is gated off a slot held by a view-change
  // re-proposal (NodeContext::ReproposalPending), but a competing batch
  // must never displace it — the locked batch may already be decided on
  // another replica. First proposal wins.
  auto existing = instances_.find(batch.id);
  if (existing != instances_.end() && existing->second.has_batch &&
      !(existing->second.digest == batch.ComputeDigest())) {
    return;
  }
  auto [it, inserted] = instances_.try_emplace(batch.id, config.merkle_depth);
  Instance& inst = it->second;
  inst.has_batch = true;
  inst.post_tree = std::move(post_tree);
  inst.digest = batch.ComputeDigest();
  inst.batch = batch;
  inst.validated = true;

  // The leader's own certificate share doubles as its prepare vote; the
  // view-bind share rides along (one batched signing pass, no extra
  // signature_op charged).
  storage::BatchCertificate payload =
      CertificatePayloadFor(ctx_->partition(), batch, inst.digest);
  crypto::Signature share = ctx_->Sign(payload.SignedPayload());
  inst.prepare_votes[ctx_->id()] = inst.digest;
  inst.prepare_shares[ctx_->id()] = share;
  inst.view_shares[ctx_->id()] =
      ctx_->Sign(ViewBindPayload(batch.id, inst.digest, view_));
  inst.sent_prepare_vote = true;

  wire::LinearProposeMsg msg;
  msg.view = view_;
  msg.batch = std::move(batch);
  msg.leader_signature = ctx_->Sign(ProposalSignPayload(inst.digest));
  if (config.simulate_shared_merkle) {
    msg.post_snapshot = inst.post_tree.GetSnapshot();
  }

  sim::Time done = ctx_->busy_until();
  if (ctx_->byzantine() == ByzantineBehavior::kEquivocate) {
    // Conflicting variants to the two halves of the cluster. Votes carry
    // the digest the voter saw, so neither variant can aggregate a
    // quorum of matching prepare shares at the (leader's own) collector.
    wire::LinearProposeMsg alt = msg;
    alt.batch.ro.timestamp_us += 1;
    crypto::Digest alt_digest = alt.batch.ComputeDigest();
    alt.leader_signature = ctx_->Sign(ProposalSignPayload(alt_digest));
    stats_.messages_sent += SendEquivocatingVariants(
        ctx_, ShareMsg(std::move(msg)), ShareMsg(std::move(alt)), done);
    return;
  }

  BroadcastCounted(ShareMsg(std::move(msg)), done);
  StartViewChangeTimer(inst.batch.id);
  AdvanceConsensus();
}

void LinearVoteConsensus::HandlePropose(sim::ActorId from,
                                        const wire::LinearProposeMsg& msg) {
  if (msg.view != view_) return;
  if (from != ctx_->config().LeaderOf(ctx_->partition(), view_)) return;
  BatchId id = msg.batch.id;
  if (id <= ctx_->mutable_log().LastBatchId()) return;  // Already decided.

  auto [it, inserted] = instances_.try_emplace(id, ctx_->config().merkle_depth);
  Instance& inst = it->second;
  if (inst.has_batch) return;  // First proposal wins; duplicates ignored.

  crypto::Digest digest = msg.batch.ComputeDigest();
  if (!ctx_->verifier().Verify(ProposalSignPayload(digest),
                               msg.leader_signature) ||
      msg.leader_signature.signer != from) {
    return;  // Forged or corrupted proposal.
  }
  inst.has_batch = true;
  inst.batch = msg.batch;
  inst.digest = digest;
  inst.adopted_snapshot = msg.post_snapshot;

  // A re-proposal's justification (a prepare QC for this very batch from
  // an earlier view) unlocks replicas whose lock is older; an invalid
  // justification is simply ignored and the lock rule stands. The
  // claimed `justify_view` must be certified by the QC's view-bind
  // quorum — a leader cannot inflate it to defeat a newer honest lock.
  if (msg.has_justify && msg.justify_cert.batch_id == id &&
      msg.justify_cert.batch_digest == digest &&
      msg.justify_cert
          .Verify(ctx_->verifier(), ctx_->config().quorum_size(),
                  ctx_->cluster_members())
          .ok() &&
      msg.justify_view_sigs
          .VerifyQuorum(ctx_->verifier(),
                        ViewBindPayload(id, digest, msg.justify_view),
                        ctx_->config().quorum_size(), ctx_->cluster_members())
          .ok()) {
    inst.has_justify = true;
    inst.justify_view = msg.justify_view;
  }

  StartViewChangeTimer(id);
  AdvanceConsensus();
}

void LinearVoteConsensus::HandleVote(sim::ActorId from,
                                     const wire::LinearVoteMsg& msg) {
  if (msg.view != view_) return;
  if (!IsLeaderSelf()) return;  // Votes aggregate at the leader only.
  if (msg.batch_id <= ctx_->mutable_log().LastBatchId()) return;
  // A vote only counts from a cluster member speaking for itself, about
  // a proposal we actually made: anything else would occupy a vote slot
  // without ever surviving share verification, letting the quorum count
  // overshoot the verifiable shares.
  if (msg.share.signer != from || !IsClusterMember(from)) return;
  auto it = instances_.find(msg.batch_id);
  if (it == instances_.end() || !it->second.has_batch) return;
  Instance& inst = it->second;
  // Verify the share on receipt when it claims our digest, so
  // CountMatchingVotes only ever counts shares that certificate/QC
  // assembly will accept. Votes for a different digest cannot be checked
  // (their payload derives from a batch variant we do not hold); they
  // are kept as evidence of a split but never reach our quorum count.
  if (msg.phase == wire::kLinearPhasePrepare) {
    if (msg.batch_digest == inst.digest &&
        !ctx_->verifier().Verify(
            CertificatePayloadFor(ctx_->partition(), inst.batch, inst.digest)
                .SignedPayload(),
            msg.share)) {
      return;
    }
    inst.prepare_votes[from] = msg.batch_digest;
    inst.prepare_shares[from] = msg.share;
    // The view-bind share is verified at QC assembly (CollectVerified-
    // Shares); a bad one just keeps the voter out of the view quorum.
    inst.view_shares[from] = msg.view_share;
  } else {
    if (msg.batch_digest == inst.digest &&
        !ctx_->verifier().Verify(CommitVotePayload(msg.batch_id, inst.digest),
                                 msg.share)) {
      return;
    }
    inst.commit_votes[from] = msg.batch_digest;
    inst.commit_shares[from] = msg.share;
  }
  AdvanceConsensus();
}

void LinearVoteConsensus::HandleQc(sim::ActorId from,
                                   const wire::LinearQcMsg& msg) {
  (void)from;  // QCs are self-certifying: quorums of signatures.
  if (msg.view != view_) return;
  BatchId id = msg.cert.batch_id;
  if (id <= ctx_->mutable_log().LastBatchId()) return;
  // QCs are self-contained, so verify on receipt — a forged QC must be
  // dropped here, never stashed, or it would displace the genuine one
  // (the leader does not resend). At most one digest per batch id can
  // gather a quorum, so a verified QC is the decision of its phase.
  const SystemConfig& config = ctx_->config();
  if (msg.phase == wire::kLinearPhasePrepare) {
    // Certificate quorum AND view-bind quorum: a prepare QC whose view
    // claim is not certified never locks anyone.
    if (!msg.cert
             .Verify(ctx_->verifier(), config.quorum_size(),
                     ctx_->cluster_members())
             .ok() ||
        !msg.view_sigs
             .VerifyQuorum(ctx_->verifier(),
                           ViewBindPayload(id, msg.cert.batch_digest, msg.view),
                           config.quorum_size(), ctx_->cluster_members())
             .ok()) {
      return;
    }
  } else {
    // The commit QC's embedded certificate gets logged and later serves
    // catch-up, which re-verifies it at quorum_size — so demand the full
    // 2f+1 here too (the leader always assembles that many); accepting a
    // thinner-but-valid one would wedge every future catch-up of this
    // entry.
    if (!msg.cert
             .Verify(ctx_->verifier(), config.quorum_size(),
                     ctx_->cluster_members())
             .ok() ||
        !msg.commit_sigs
             .VerifyQuorum(ctx_->verifier(),
                           CommitVotePayload(id, msg.cert.batch_digest),
                           config.quorum_size(), ctx_->cluster_members())
             .ok()) {
      return;
    }
  }
  auto [it, inserted] = instances_.try_emplace(id, config.merkle_depth);
  Instance& inst = it->second;
  if (msg.phase == wire::kLinearPhasePrepare) {
    inst.have_prepare_qc = true;
    inst.certificate = msg.cert;
    inst.qc_view_sigs = msg.view_sigs;
  } else {
    inst.have_commit_qc = true;
    inst.certificate = msg.cert;
    inst.commit_qc_sigs = msg.commit_sigs;
  }
  AdvanceConsensus();
}

// ---------------------------------------------------------------------------
// Phase progression
// ---------------------------------------------------------------------------

void LinearVoteConsensus::AdvanceConsensus() {
  // A usable lock at the first slot past the live instance chain (from
  // an adopted view-change report, possibly landed after a gap filled)
  // is re-proposed before fresh pipeline proposals claim the slot.
  if (IsLeaderSelf()) {
    PruneStaleLocks();
    BatchId free_slot = ctx_->mutable_log().LastBatchId() + 1;
    while (true) {
      auto it = instances_.find(free_slot);
      if (it == instances_.end() || !it->second.has_batch) break;
      ++free_slot;
    }
    auto lk = locks_.find(free_slot);
    if (lk != locks_.end() && lk->second.valid) {
      ReproposeLocked();  // Creates the instance; re-enters this function.
      return;
    }
  }

  // Walk the in-flight window in log order. Each slot validates against
  // the chain of validated predecessors; only the head slot (the log
  // tail + 1) may decide. Deciding re-enters this function through the
  // on_decided hook, so the walk stops right after a decide — the nested
  // call already finished the rest of the window.
  BatchId tail = ctx_->mutable_log().LastBatchId();
  for (BatchId id = tail + 1;; ++id) {
    auto it = instances_.find(id);
    if (it == instances_.end() || !it->second.has_batch) return;
    if (!AdvanceSlot(id, it->second)) return;
  }
}

bool LinearVoteConsensus::AdvanceSlot(BatchId id, Instance& inst) {
  const SystemConfig& config = ctx_->config();

  if (!inst.validated && !inst.validation_failed) {
    ProposalChain chain = ChainUpTo(id);
    Status s = ValidateProposedBatch(ctx_, inst.batch, inst.adopted_snapshot,
                                     &inst.post_tree, &chain);
    if (!s.ok()) {
      // A correct replica stays silent on an invalid proposal; the
      // progress timer will trigger a view change.
      inst.validation_failed = true;
      return false;
    }
    inst.validated = true;
  }
  // Successors chain off this slot's post-state; an unvalidated slot
  // stops the walk.
  if (inst.validation_failed) return false;

  const crypto::NodeId leader = config.LeaderOf(ctx_->partition(), view_);

  // Replica: prepare vote to the leader — unless a lock on a conflicting
  // batch at this id forbids it and the proposal carries no adequate
  // justification. Stay silent: the progress timer carries the lock into
  // the next view change. (Successors extend the conflicting batch, so
  // the walk stops with it.)
  if (!inst.sent_prepare_vote && LockBlocksVote(inst)) return false;
  if (!inst.sent_prepare_vote) {
    storage::BatchCertificate payload =
        CertificatePayloadFor(ctx_->partition(), inst.batch, inst.digest);
    crypto::Signature share = ctx_->Sign(payload.SignedPayload());
    inst.sent_prepare_vote = true;
    wire::LinearVoteMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.phase = wire::kLinearPhasePrepare;
    msg.batch_digest = inst.digest;
    msg.share = share;
    // The view-bind share rides on the same vote (batched signing; no
    // extra signature_op).
    msg.view_share = ctx_->Sign(ViewBindPayload(id, inst.digest, view_));
    SendCounted(leader, ShareMsg(std::move(msg)),
                ctx_->Charge(config.cost.signature_op));
  }

  // Replica: prepare QC (verified on receipt) => commit vote to the
  // leader. A digest mismatch means we hold an equivocation variant the
  // quorum did not certify: stay silent and let the timer force a view
  // change.
  if (inst.have_prepare_qc && !inst.sent_commit_vote &&
      inst.certificate.batch_digest == inst.digest) {
    // Lock before voting commit: the lock survives view adoption, and a
    // commit quorum therefore implies 2f+1 replicas whose view-change
    // messages will force the next leader to re-propose this batch.
    MaybeLockOn(view_, inst);
    crypto::Signature share =
        ctx_->Sign(CommitVotePayload(inst.batch.id, inst.digest));
    inst.sent_commit_vote = true;
    wire::LinearVoteMsg msg;
    msg.view = view_;
    msg.batch_id = inst.batch.id;
    msg.phase = wire::kLinearPhaseCommit;
    msg.batch_digest = inst.digest;
    msg.share = share;
    SendCounted(leader, ShareMsg(std::move(msg)),
                ctx_->Charge(config.cost.signature_op));
  }

  // Replica: commit QC (verified on receipt) => decide — head slot only.
  // A later slot's commit QC buffers in the instance until every
  // predecessor decided (decides are strictly in log order).
  if (inst.have_commit_qc && !inst.decided &&
      inst.certificate.batch_digest == inst.digest &&
      id == ctx_->mutable_log().LastBatchId() + 1) {
    Decide(id);
    return false;
  }

  if (leader == ctx_->id() && LeaderAdvance(id, inst)) return false;
  return true;
}

bool LinearVoteConsensus::LeaderAdvance(BatchId batch_id, Instance& inst) {
  const SystemConfig& config = ctx_->config();

  if (!inst.prepare_qc_sent &&
      CountMatchingVotes(inst.prepare_votes, inst.digest) >= config.quorum_size()) {
    // Aggregate the prepare QC: a batch certificate carrying a quorum of
    // shares (any f+1 subset is the client-facing certificate), plus the
    // view-bind quorum certifying the view it formed in.
    inst.certificate = AssembleCertificateFromShares(
        ctx_, inst.batch, inst.digest, inst.prepare_votes, inst.prepare_shares,
        config.quorum_size());
    if (inst.certificate.signatures.size() < config.quorum_size()) {
      return false;  // A share failed verification; wait for more votes.
    }
    crypto::SignatureSet view_sigs = CollectVerifiedShares(
        ctx_, ViewBindPayload(batch_id, inst.digest, view_),
        inst.prepare_votes, inst.view_shares, inst.digest,
        config.quorum_size());
    if (view_sigs.size() < config.quorum_size()) {
      return false;  // A view-bind share failed; wait for more votes.
    }
    inst.qc_view_sigs = std::move(view_sigs);
    inst.prepare_qc_sent = true;

    // The leader's own commit vote, locking like any other commit voter.
    MaybeLockOn(view_, inst);
    inst.commit_votes[ctx_->id()] = inst.digest;
    inst.commit_shares[ctx_->id()] =
        ctx_->Sign(CommitVotePayload(batch_id, inst.digest));
    inst.sent_commit_vote = true;

    wire::LinearQcMsg msg;
    msg.view = view_;
    msg.phase = wire::kLinearPhasePrepare;
    msg.cert = inst.certificate;
    msg.view_sigs = inst.qc_view_sigs;
    BroadcastCounted(ShareMsg(std::move(msg)),
                     ctx_->Charge(config.cost.signature_op));
  }

  if (inst.prepare_qc_sent && !inst.commit_qc_sent &&
      CountMatchingVotes(inst.commit_votes, inst.digest) >= config.quorum_size()) {
    crypto::SignatureSet commit_sigs = CollectVerifiedShares(
        ctx_, CommitVotePayload(batch_id, inst.digest), inst.commit_votes,
        inst.commit_shares, inst.digest, config.quorum_size());
    if (commit_sigs.size() < config.quorum_size()) return false;
    inst.commit_qc_sent = true;

    wire::LinearQcMsg msg;
    msg.view = view_;
    msg.phase = wire::kLinearPhaseCommit;
    msg.cert = inst.certificate;
    msg.commit_sigs = std::move(commit_sigs);
    // Aggregating the commit QC is crypto work like the prepare QC; an
    // uncharged broadcast would skew the engine-comparison bench.
    BroadcastCounted(ShareMsg(std::move(msg)),
                     ctx_->Charge(config.cost.signature_op));
    if (batch_id == ctx_->mutable_log().LastBatchId() + 1) {
      Decide(batch_id);
      return true;
    }
    // Out-of-order commit quorum: buffer; the slot decides when its
    // predecessors do.
    inst.have_commit_qc = true;
  }
  return false;
}

void LinearVoteConsensus::Decide(BatchId batch_id) {
  auto it = instances_.find(batch_id);
  if (it == instances_.end() || it->second.decided) return;
  Instance& inst = it->second;
  inst.decided = true;
  Decided decided{std::move(inst.batch), std::move(inst.certificate),
                  std::move(inst.post_tree)};
  instances_.erase(it);
  ++stats_.batches_decided;
  // The hook applies the batch, drives 2PC / read-only follow-ups, and
  // re-enters AdvanceConsensus for the next queued instance.
  hooks_.on_decided(std::move(decided));
}

// ---------------------------------------------------------------------------
// View changes (linear: requests to the prospective leader, QC broadcast)
// ---------------------------------------------------------------------------

void LinearVoteConsensus::StartViewChangeTimer(BatchId batch_id) {
  uint64_t view_at_start = view_;
  ctx_->Schedule(ctx_->config().view_change_timeout,
                 [this, batch_id, view_at_start] {
                   if (view_ != view_at_start) return;
                   if (ctx_->mutable_log().LastBatchId() >= batch_id) {
                     return;  // Decided in time.
                   }
                   RequestViewChange(view_ + 1, batch_id);
                 });
}

void LinearVoteConsensus::RequestViewChange(uint64_t target,
                                            BatchId demanded) {
  if (target <= view_) return;
  crypto::Signature sig = ctx_->Sign(ViewChangePayload(target));
  crypto::NodeId prospective =
      ctx_->config().LeaderOf(ctx_->partition(), target);
  if (prospective == ctx_->id()) {
    auto& votes = view_change_votes_[target];
    votes[ctx_->id()] = sig;
    if (votes.size() >= ctx_->config().quorum_size()) {
      // Quorum already collected from earlier requests; announce.
      wire::LinearNewViewMsg msg;
      msg.new_view = target;
      for (const auto& [node, s] : votes) msg.proof.Add(s);
      RecordNewViewProof(target, msg.proof);
      BroadcastCounted(ShareMsg(std::move(msg)),
                       ctx_->Charge(ctx_->config().cost.signature_op));
      AdoptView(target);
      return;
    }
  } else {
    wire::LinearViewChangeMsg msg;
    msg.new_view = target;
    msg.last_committed = ctx_->mutable_log().LastBatchId();
    msg.signature = sig;
    // Report every live lock so the prospective leader re-proposes
    // batches that may already be decided elsewhere (safety across the
    // view change) — one report per in-flight slot when pipelining.
    PruneStaleLocks();
    for (const auto& [id, lock] : locks_) {
      if (!lock.valid) continue;
      wire::LinearLockReport report;
      report.view = lock.view;
      report.batch = lock.batch;
      report.cert = lock.cert;
      report.view_sigs = lock.view_sigs;
      if (ctx_->byzantine() == ByzantineBehavior::kInflateLockView) {
        // Claim the lock formed in a much later view, trying to make the
        // new leader prefer it over a genuinely newer honest lock. The
        // view-bind quorum certifies the real view, so honest leaders
        // drop the report.
        report.view += 16;
      }
      msg.locks.push_back(std::move(report));
    }
    SendCounted(prospective, ShareMsg(std::move(msg)),
                ctx_->Charge(ctx_->config().cost.signature_op));
  }
  // If the prospective leader is faulty too, escalate past it after
  // another timeout. Stop as soon as any view change lands or the
  // demanded position decides (e.g. catch-up filled the gap).
  uint64_t view_at_request = view_;
  ctx_->Schedule(ctx_->config().view_change_timeout,
                 [this, target, demanded, view_at_request] {
                   if (view_ != view_at_request) return;
                   if (ctx_->mutable_log().LastBatchId() >= demanded) return;
                   RequestViewChange(target + 1, demanded);
                 });
}

void LinearVoteConsensus::HandleViewChange(
    sim::ActorId from, const wire::LinearViewChangeMsg& msg) {
  uint64_t target = msg.new_view;
  if (ctx_->config().LeaderOf(ctx_->partition(), target) != ctx_->id()) {
    return;  // Misrouted; only the prospective leader aggregates.
  }
  if (!IsClusterMember(from) ||
      !ctx_->verifier().Verify(ViewChangePayload(target), msg.signature) ||
      msg.signature.signer != from) {
    return;  // Forged request or outsider.
  }
  // State transfer for a lagging requester — even when its demanded view
  // is stale: a replica that merely missed decided batches goes quiet
  // once the log (and our latest new-view proof) reach it, with no view
  // change at all.
  ServeCatchUp(from, msg.last_committed);
  if (target <= view_) return;

  // Adopt reported locks that supersede ours, slot by slot. Each
  // certificate must be a genuine prepare QC for the reported batch, and
  // the claimed lock view must be certified by the QC's view-bind quorum
  // — a kInflateLockView replica's exaggerated claim dies here. The
  // re-proposal in AdoptView then carries, per slot, the highest lock
  // seen across the 2f+1 view-change messages.
  PruneStaleLocks();
  for (const wire::LinearLockReport& report : msg.locks) {
    BatchId id = report.batch.id;
    if (id <= ctx_->mutable_log().LastBatchId()) continue;
    auto lk = locks_.find(id);
    if (lk != locks_.end() && lk->second.valid && report.view < lk->second.view) {
      continue;
    }
    crypto::Digest digest = report.batch.ComputeDigest();
    if (report.cert.batch_id != id || !(report.cert.batch_digest == digest) ||
        !report.cert
             .Verify(ctx_->verifier(), ctx_->config().quorum_size(),
                     ctx_->cluster_members())
             .ok() ||
        !report.view_sigs
             .VerifyQuorum(ctx_->verifier(),
                           ViewBindPayload(id, digest, report.view),
                           ctx_->config().quorum_size(),
                           ctx_->cluster_members())
             .ok()) {
      continue;
    }
    Lock& lock = locks_[id];
    lock.valid = true;
    lock.view = report.view;
    lock.batch = report.batch;
    lock.digest = digest;
    lock.cert = report.cert;
    lock.view_sigs = report.view_sigs;
    lock.snapshot = merkle::MerkleTree::Snapshot();
  }

  auto& votes = view_change_votes_[target];
  votes[from] = msg.signature;
  // Join once f+1 distinct replicas demand the change (at least one of
  // them is honest); our own signature completes or advances the quorum.
  if (votes.count(ctx_->id()) == 0 && votes.size() > ctx_->config().f) {
    votes[ctx_->id()] = ctx_->Sign(ViewChangePayload(target));
  }
  if (votes.size() < ctx_->config().quorum_size()) return;

  wire::LinearNewViewMsg announce;
  announce.new_view = target;
  for (const auto& [node, s] : votes) announce.proof.Add(s);
  RecordNewViewProof(target, announce.proof);
  BroadcastCounted(ShareMsg(std::move(announce)),
                   ctx_->Charge(ctx_->config().cost.signature_op));
  AdoptView(target);
}

void LinearVoteConsensus::HandleNewView(sim::ActorId from,
                                        const wire::LinearNewViewMsg& msg) {
  (void)from;  // The proof quorum, not the sender, legitimises the change.
  if (msg.new_view <= view_) return;
  Status quorum = msg.proof.VerifyQuorum(
      ctx_->verifier(), ViewChangePayload(msg.new_view),
      ctx_->config().quorum_size(), ctx_->cluster_members());
  if (!quorum.ok()) return;
  RecordNewViewProof(msg.new_view, msg.proof);
  AdoptView(msg.new_view);
}

void LinearVoteConsensus::RecordNewViewProof(
    uint64_t new_view, const crypto::SignatureSet& proof) {
  if (new_view <= proven_view_) return;
  proven_view_ = new_view;
  view_proof_ = proof;
}

void LinearVoteConsensus::AdoptView(uint64_t target) {
  if (target <= view_) return;
  view_ = target;
  ++stats_.view_changes;
  reproposed_id_ = kNoBatch;
  // Undecided proposals from the old view are abandoned (clients retry
  // against the new leader), but the prepare-QC lock survives: it is
  // what lets a batch the old leader may already have decided win again
  // in this view.
  instances_.clear();
  view_change_votes_.erase(view_change_votes_.begin(),
                           view_change_votes_.upper_bound(target));
  hooks_.on_view_adopted();
  if (IsLeaderSelf()) ReproposeLocked();
}

void LinearVoteConsensus::ReproposeLocked() {
  const SystemConfig& config = ctx_->config();
  PruneStaleLocks();

  // Re-propose the contiguous locked prefix from the first undecided
  // slot, skipping slots a live validated instance already owns (e.g. a
  // re-proposal in flight). Stop at the first slot with neither: a lock
  // past a gap stays adopted but waits — the Propose() conflicting-lock
  // guard re-proposes it when the chain reaches its slot. (Safe: a slot
  // decided anywhere implies a commit quorum — hence 2f+1 locks — on it
  // and its decided predecessors, so no gap sits below a decided slot.)
  bool proposed_any = false;
  BatchId last = kNoBatch;
  for (BatchId id = ctx_->mutable_log().LastBatchId() + 1;; ++id) {
    auto it = instances_.find(id);
    if (it != instances_.end() && it->second.has_batch) {
      if (!it->second.validated) break;
      last = id;
      continue;  // Slot already owned; keep walking the prefix.
    }
    auto lk = locks_.find(id);
    if (lk == locks_.end() || !lk->second.valid) break;
    const Lock& lock = lk->second;

    auto [slot, inserted] = instances_.try_emplace(id, config.merkle_depth);
    Instance& inst = slot->second;
    inst.has_batch = true;
    inst.batch = lock.batch;
    inst.digest = lock.digest;
    inst.adopted_snapshot = lock.snapshot;
    ProposalChain chain = ChainUpTo(id);
    Status s = ValidateProposedBatch(ctx_, inst.batch, inst.adopted_snapshot,
                                     &inst.post_tree, &chain);
    if (!s.ok()) {
      // Deterministic re-validation of a quorum-certified batch against
      // the same log prefix cannot fail; treat it like any other invalid
      // proposal (silence + timer) if it somehow does.
      inst.validation_failed = true;
      break;
    }
    inst.validated = true;

    // The leader's own certificate share doubles as its prepare vote;
    // the view-bind share rides along.
    storage::BatchCertificate payload =
        CertificatePayloadFor(ctx_->partition(), inst.batch, inst.digest);
    inst.prepare_votes[ctx_->id()] = inst.digest;
    inst.prepare_shares[ctx_->id()] = ctx_->Sign(payload.SignedPayload());
    inst.view_shares[ctx_->id()] =
        ctx_->Sign(ViewBindPayload(id, inst.digest, view_));
    inst.sent_prepare_vote = true;

    wire::LinearProposeMsg msg;
    msg.view = view_;
    msg.batch = inst.batch;
    msg.leader_signature = ctx_->Sign(ProposalSignPayload(inst.digest));
    msg.has_justify = true;
    msg.justify_view = lock.view;
    msg.justify_cert = lock.cert;
    msg.justify_view_sigs = lock.view_sigs;
    if (config.simulate_shared_merkle) {
      msg.post_snapshot = inst.post_tree.GetSnapshot();
    }
    BroadcastCounted(ShareMsg(std::move(msg)),
                     ctx_->Charge(config.cost.signature_op));
    proposed_any = true;
    last = id;
  }
  if (!proposed_any) return;
  // Gate the pipeline until the whole re-proposed prefix decides.
  if (reproposed_id_ == kNoBatch || last > reproposed_id_) {
    reproposed_id_ = last;
  }
  StartViewChangeTimer(last);
  AdvanceConsensus();
}

// ---------------------------------------------------------------------------
// Catch-up (decided-batch state transfer to lagging replicas)
// ---------------------------------------------------------------------------

void LinearVoteConsensus::ServeCatchUp(crypto::NodeId to, BatchId peer_last) {
  const storage::SmrLog& log = ctx_->mutable_log();
  if (to == ctx_->id() || peer_last >= log.LastBatchId()) return;
  sim::Time at = ctx_->busy_until();
  // The log only reaches back to the history horizon (TruncateHistory
  // drops entries below the snapshot base): serve the retained suffix
  // and stamp every message with the floor, so a peer lagging below it
  // learns the gap is unfillable by transfer and must recover from
  // durable storage.
  BatchId start = std::max(peer_last + 1, log.FirstBatchId());
  for (BatchId id = start; id <= log.LastBatchId(); ++id) {
    auto entry = log.Get(id);
    if (!entry.ok()) return;
    wire::LinearCatchUpMsg msg;
    msg.batch = entry.value()->batch;
    msg.cert = entry.value()->certificate;
    msg.view = proven_view_;
    msg.view_proof = view_proof_;
    msg.first_retained = log.FirstBatchId();
    SendCounted(to, ShareMsg(std::move(msg)), at);
  }
}

bool LinearVoteConsensus::ApplyCatchUpEntry(
    const storage::Batch& batch, const storage::BatchCertificate& cert) {
  const SystemConfig& config = ctx_->config();
  crypto::Digest digest = batch.ComputeDigest();
  if (cert.batch_id != batch.id || !(cert.batch_digest == digest) ||
      !cert.Verify(ctx_->verifier(), config.quorum_size(),
                   ctx_->cluster_members())
           .ok()) {
    return false;
  }
  // Quorum certification replaces the Definition 3.1 re-checks (and the
  // freshness window, which old batches legitimately fail by now), but
  // the Merkle root must still reproduce from our own state.
  ctx_->Charge(config.cost.signature_op +
               ctx_->BatchComputeCost(batch.TotalTransactions(),
                                      config.cost.validate_per_txn));
  // Replay against the decided tree, not the applied one: under async
  // apply the log tail is ahead of storage, and this entry chains off
  // the last *decided* batch's post-state.
  merkle::MerkleTree post_tree = ctx_->decided_tree().Clone();
  ApplyBatchWritesToTree(&post_tree, ctx_->partition_map(), ctx_->partition(),
                         batch, ctx_->prepared_batches());
  if (post_tree.RootDigest() != batch.ro.merkle_root) return false;

  auto [it, inserted] = instances_.try_emplace(batch.id, config.merkle_depth);
  Instance& inst = it->second;
  inst.has_batch = true;
  inst.batch = batch;
  inst.digest = digest;
  inst.certificate = cert;
  inst.post_tree = std::move(post_tree);
  inst.validated = true;
  Decide(batch.id);
  return true;
}

void LinearVoteConsensus::HandleCatchUp(sim::ActorId from,
                                        const wire::LinearCatchUpMsg& msg) {
  (void)from;  // The certificate, not the sender, carries the authority.
  // Adopt the sender's view first when its proof checks out, so voting
  // resumes in the view the cluster actually runs.
  if (msg.view > view_ &&
      msg.view_proof
          .VerifyQuorum(ctx_->verifier(), ViewChangePayload(msg.view),
                        ctx_->config().quorum_size(), ctx_->cluster_members())
          .ok()) {
    RecordNewViewProof(msg.view, msg.view_proof);
    AdoptView(msg.view);
  }
  BatchId next = ctx_->mutable_log().LastBatchId() + 1;
  if (msg.batch.id > next) {
    if (msg.first_retained > next) {
      // The sender truncated below our gap: no transfer can ever fill
      // it, so parking this entry would leak it forever. Recovery from
      // durable storage (System::RestartReplica) is the only way back.
      return;
    }
    // Jitter reordered the transfer; hold until predecessors arrive.
    pending_catchup_.emplace(msg.batch.id,
                             std::make_pair(msg.batch, msg.cert));
    return;
  }
  if (msg.batch.id < next) return;  // Already decided.
  if (!ApplyCatchUpEntry(msg.batch, msg.cert)) return;
  for (auto it = pending_catchup_.begin(); it != pending_catchup_.end();) {
    BatchId want = ctx_->mutable_log().LastBatchId() + 1;
    if (it->first < want) {
      it = pending_catchup_.erase(it);
    } else if (it->first == want &&
               ApplyCatchUpEntry(it->second.first, it->second.second)) {
      it = pending_catchup_.erase(it);
    } else {
      break;
    }
  }
  // Proposal instances the transfer overtook are settled; drop them.
  instances_.erase(instances_.begin(),
                   instances_.upper_bound(ctx_->mutable_log().LastBatchId()));
  AdvanceConsensus();
}

}  // namespace transedge::core
