#ifndef TRANSEDGE_CORE_CONSENSUS_CONSENSUS_H_
#define TRANSEDGE_CORE_CONSENSUS_CONSENSUS_H_

#include <functional>
#include <memory>

#include "core/node_context.h"
#include "merkle/merkle_tree.h"
#include "storage/batch.h"

namespace transedge::core {

/// Abstract intra-cluster consensus on batches (§3.2).
///
/// TransEdge's contribution — commit-free authenticated read-only
/// transactions — only needs *a* certified batch log: every engine must
/// (a) decide batches in log order, exactly once per position, and
/// (b) hand each decided batch to `Hooks::on_decided` together with a
/// `storage::BatchCertificate` carrying at least f+1 replica signatures
/// over the standard certificate payload (partition, batch id, batch
/// digest, Merkle root, read-only-segment digest). Clients, 2PC proofs,
/// and the read-only verification path consume only that certificate,
/// so engines are interchangeable underneath them.
///
/// The engine owns the view number: leadership
/// (`SystemConfig::LeaderOf`) is a pure function of (partition, view),
/// and the hosting node consults the engine's view for routing. The
/// engine never applies state itself — the `on_decided` hook wires it to
/// the storage stack and the other subsystem engines.
///
/// Engines are selected by `SystemConfig::consensus_kind` through
/// `MakeConsensus`. Implementations:
///
///   - `PbftConsensus` (pbft_consensus.h): PBFT-style all-to-all voting,
///     O(n²) messages per decided batch.
///   - `LinearVoteConsensus` (linear_vote_consensus.h): HotStuff-style
///     leader-aggregated two-phase voting with broadcast quorum
///     certificates, O(n) messages per phase.
class Consensus {
 public:
  struct Stats {
    uint64_t batches_decided = 0;
    uint64_t view_changes = 0;
    /// Protocol messages this engine handed to the network (proposals,
    /// votes, quorum certificates, view changes). The bench harness
    /// divides by `batches_decided` to compare message complexity
    /// across engines.
    uint64_t messages_sent = 0;
  };

  /// A batch that reached a decision quorum, ready to be applied.
  struct Decided {
    storage::Batch batch;
    storage::BatchCertificate certificate;
    merkle::MerkleTree post_tree;
  };

  struct Hooks {
    /// Fired exactly once per decided batch, in log order. The handler
    /// applies the batch and drives all follow-up work (2PC, parked
    /// read-only requests, re-proposals).
    std::function<void(Decided)> on_decided;
    /// Fired after the engine adopts a higher view; the handler resets
    /// leader-side batching and coordination state.
    std::function<void()> on_view_adopted;
  };

  virtual ~Consensus() = default;

  /// The engine's current view; leadership follows from it.
  virtual uint64_t view() const = 0;

  /// Leader path: signs and broadcasts `batch` as the next proposal and
  /// seeds the local instance with the leader's own vote. `post_tree` is
  /// the batch's post-state tree computed by the batch pipeline.
  virtual void Propose(storage::Batch batch, merkle::MerkleTree post_tree) = 0;

  /// Typed message dispatch: consumes `msg` when it is one of this
  /// engine's protocol messages and returns true; returns false (without
  /// side effects) otherwise. The hosting node routes every message it
  /// does not handle itself through this seam, so an engine's wire
  /// surface is private to the engine.
  virtual bool OnMessage(sim::ActorId from, const sim::Message& msg) = 0;

  /// Re-evaluates the instance for the next undecided batch id:
  /// validates a pending proposal, emits our votes, and decides when
  /// quorums are reached. Also called by the node after each applied
  /// batch to advance the next queued instance.
  virtual void AdvanceConsensus() = 0;

  /// Demands progress on `batch_id`: if the log has not reached it when
  /// the timer fires (in the same view), a view change is initiated.
  virtual void StartViewChangeTimer(BatchId batch_id) = 0;

  /// True while the engine itself occupies the next log position with a
  /// view-change re-proposal (a batch carried over from the previous
  /// view for safety). The batch pipeline must not build a competing
  /// proposal for that id; it resumes once the re-proposal decides.
  virtual bool HasPendingReproposal() const { return false; }

  /// Number of proposed-but-undecided instances currently in flight
  /// (ids above the log tail that carry a proposal). The batch pipeline
  /// gates new proposals on `InFlight() < EffectivePipelineDepth()`.
  virtual size_t InFlight() const { return 0; }

  /// Deepest proposal pipeline the engine supports. Engines without
  /// chained safety machinery pin this to 1 regardless of
  /// `SystemConfig::pipeline_depth`.
  virtual uint32_t MaxPipelineDepth() const { return 1; }

  /// In-flight proposals in log order plus the Merkle tree positioned
  /// after the last of them, for chaining the next proposal. Engines
  /// that pin MaxPipelineDepth() to 1 keep the default (empty chain:
  /// the node fills in log tail + 1 and the decided tree). Borrowed
  /// pointers — valid only until the engine next mutates its instances.
  virtual ProposalChain Chain() { return ProposalChain{}; }

  virtual const Stats& stats() const = 0;
};

/// Builds the engine selected by `ctx->config().consensus_kind`.
std::unique_ptr<Consensus> MakeConsensus(NodeContext* ctx,
                                         Consensus::Hooks hooks);

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_CONSENSUS_CONSENSUS_H_
