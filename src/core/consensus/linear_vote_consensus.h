#ifndef TRANSEDGE_CORE_CONSENSUS_LINEAR_VOTE_CONSENSUS_H_
#define TRANSEDGE_CORE_CONSENSUS_LINEAR_VOTE_CONSENSUS_H_

#include <map>
#include <utility>

#include "core/consensus/consensus.h"
#include "wire/message.h"

namespace transedge::core {

/// HotStuff-style leader-aggregated consensus (ConsensusKind::kLinearVote):
/// two voting phases with O(n) messages each instead of PBFT's O(n²)
/// all-to-all broadcasts.
///
///   1. The leader broadcasts LinearProposeMsg (the batch).
///   2. Replicas re-validate (Definition 3.1, same checks as the PBFT
///      engine) and send a prepare vote *to the leader*. The vote's
///      share signs `BatchCertificate::SignedPayload()`, so the
///      aggregated quorum certificate is byte-compatible with the f+1
///      client certificate every other subsystem consumes.
///   3. On 2f+1 matching prepare shares the leader broadcasts the
///      prepare QC (a BatchCertificate carrying the quorum of shares).
///   4. Replicas verify the QC and send a commit vote to the leader
///      (share over the commit-vote payload).
///   5. On 2f+1 matching commit shares the leader broadcasts the commit
///      QC and decides; replicas decide on receipt. The commit QC
///      repeats the prepare certificate, so deciding does not depend on
///      having seen step 3.
///
/// View changes are linear too: a replica whose progress timer fires
/// sends a signed LinearViewChangeMsg to the *prospective* leader of the
/// next view; that leader aggregates 2f+1 signatures and broadcasts a
/// LinearNewViewMsg carrying the quorum of view-change signatures, which
/// every replica adopts on verification. If the prospective leader is
/// itself faulty, the initiator escalates to the following view after
/// another timeout (and stops once the demanded log position decides).
///
/// Safety across view changes (the lock rule): a replica *locks* on the
/// prepare QC before casting a commit vote, and the lock survives view
/// adoption. View-change messages report the lock (batch + QC + the
/// view it formed in); the new leader adopts the highest-view lock among
/// its 2f+1 view-change messages and re-proposes that batch — with the
/// QC as justification — before accepting pipeline proposals for the
/// position. A locked replica refuses to prepare-vote a conflicting
/// batch at the locked id unless the proposal is justified by a QC from
/// a view >= its lock view. A commit QC implies 2f+1 locked replicas,
/// so every view-change quorum overlaps an honest lock report and a
/// batch that may have been decided anywhere is the only batch a later
/// view can decide at that position.
///
/// Catch-up: a LinearViewChangeMsg whose `last_committed` trails the
/// recipient's log is answered with LinearCatchUpMsg per missing entry
/// (decided batch + quorum certificate + the sender's new-view proof),
/// so a replica that missed commit QCs or whole views rejoins without
/// forcing a view change.
///
/// Pipelining (chained instances): the engine runs up to
/// `SystemConfig::pipeline_depth` consensus instances concurrently.
/// Slot k+1 validates against the chain of in-flight post-states (the
/// predecessors' batches count as part of the batch window, their
/// post-trees are the Merkle base), collects prepare votes while slot
/// k's commit QC is still in flight, and *decides strictly in log
/// order*: a commit QC for a later slot buffers in its instance until
/// every predecessor has decided. Each slot locks independently
/// (`locks_` is per-slot), and view-change messages report every usable
/// lock so the new leader re-proposes the contiguous locked prefix from
/// the first undecided slot. Locks past a gap in that prefix are kept
/// but not re-proposed (safe: a slot decided anywhere implies a commit
/// quorum — hence 2f+1 locks — on it *and* its decided predecessors, so
/// no gap can sit below a decided slot); their slots are re-filled when
/// the chain reaches them.
///
/// View-bound QCs: prepare votes carry a second signature over the
/// view-bind payload (partition, batch id, digest, view), and the
/// prepare QC carries the aggregated quorum. The view a lock formed in
/// is therefore certified: a byzantine replica inflating its reported
/// lock view (ByzantineBehavior::kInflateLockView), or a byzantine
/// leader inflating a re-proposal justification, fails the view-bind
/// quorum check and the claim is dropped.
class LinearVoteConsensus : public Consensus {
 public:
  LinearVoteConsensus(NodeContext* ctx, Hooks hooks);

  uint64_t view() const override { return view_; }
  void Propose(storage::Batch batch, merkle::MerkleTree post_tree) override;
  bool OnMessage(sim::ActorId from, const sim::Message& msg) override;
  void AdvanceConsensus() override;
  void StartViewChangeTimer(BatchId batch_id) override;
  bool HasPendingReproposal() const override;
  size_t InFlight() const override;
  uint32_t MaxPipelineDepth() const override;
  ProposalChain Chain() override;
  const Stats& stats() const override { return stats_; }

 private:
  struct Instance {
    bool has_batch = false;
    storage::Batch batch;
    crypto::Digest digest;
    bool validated = false;
    bool validation_failed = false;
    merkle::MerkleTree post_tree;  // Tree with the batch's writes applied.
    /// Leader-shared tree (SystemConfig::simulate_shared_merkle).
    merkle::MerkleTree::Snapshot adopted_snapshot;

    // Leader-side aggregation. Votes carry the digest the voter saw, so
    // an equivocating leader's two variants split the vote.
    std::map<crypto::NodeId, crypto::Digest> prepare_votes;
    std::map<crypto::NodeId, crypto::Signature> prepare_shares;
    /// View-bind shares riding on the prepare votes (view-signed QCs).
    std::map<crypto::NodeId, crypto::Signature> view_shares;
    std::map<crypto::NodeId, crypto::Digest> commit_votes;
    std::map<crypto::NodeId, crypto::Signature> commit_shares;
    bool prepare_qc_sent = false;
    bool commit_qc_sent = false;

    // Replica-side phase progress.
    bool sent_prepare_vote = false;
    bool sent_commit_vote = false;
    bool have_prepare_qc = false;
    /// Verified re-proposal justification (prepare QC for this batch
    /// from `justify_view`); unlocks conflicting-lock replicas.
    bool has_justify = false;
    uint64_t justify_view = 0;
    /// Commit QC received before the batch finished validating; replayed
    /// by AdvanceConsensus.
    bool have_commit_qc = false;
    /// Commit-QC signature set awaiting verification.
    crypto::SignatureSet commit_qc_sigs;
    /// Client-facing certificate (from own aggregation or a received QC).
    storage::BatchCertificate certificate;
    /// Verified view-bind quorum of the prepare QC (own aggregation or
    /// received); copied into the lock so view claims stay provable.
    crypto::SignatureSet qc_view_sigs;
    bool decided = false;

    explicit Instance(int merkle_depth) : post_tree(merkle_depth) {}
  };

  /// A prepare-QC lock: set before any commit vote is cast, kept across
  /// view adoptions (unlike `instances_`), superseded only by a
  /// higher-view QC for the same slot. One lock per in-flight slot when
  /// pipelining. `snapshot` is the shared-merkle shortcut snapshot when
  /// the locking instance had one (invalid otherwise); `view_sigs` is
  /// the QC's view-bind quorum, proving `view` to third parties.
  struct Lock {
    bool valid = false;
    uint64_t view = 0;
    storage::Batch batch;
    crypto::Digest digest;
    storage::BatchCertificate cert;
    crypto::SignatureSet view_sigs;
    merkle::MerkleTree::Snapshot snapshot;
  };

  void HandlePropose(sim::ActorId from, const wire::LinearProposeMsg& msg);
  void HandleVote(sim::ActorId from, const wire::LinearVoteMsg& msg);
  void HandleQc(sim::ActorId from, const wire::LinearQcMsg& msg);
  void HandleViewChange(sim::ActorId from,
                        const wire::LinearViewChangeMsg& msg);
  void HandleNewView(sim::ActorId from, const wire::LinearNewViewMsg& msg);
  void HandleCatchUp(sim::ActorId from, const wire::LinearCatchUpMsg& msg);

  bool IsLeaderSelf() const {
    return ctx_->config().LeaderOf(ctx_->partition(), view_) == ctx_->id();
  }
  bool IsClusterMember(crypto::NodeId id) const;

  /// Drops locks for slots the log has already decided.
  void PruneStaleLocks();
  /// Adopts (view, inst) as the slot's lock when it is at least as
  /// recent as the current one.
  void MaybeLockOn(uint64_t view, const Instance& inst);
  /// True when a conflicting lock forbids prepare-voting `inst` and the
  /// proposal carries no adequate justification.
  bool LockBlocksVote(const Instance& inst) const;
  /// Leader: re-proposes (with each lock's QC as justification) the
  /// locked slots reachable from the first undecided position — skipping
  /// slots already owned by a live instance, stopping at the first slot
  /// with neither. No-op when the head slot has neither.
  void ReproposeLocked();
  /// Chain context for validating/building slot `id`: the validated
  /// in-flight predecessors in (tail, id) and the newest post-tree.
  ProposalChain ChainUpTo(BatchId id);
  /// Drives one slot's phases (validate, prepare vote, commit vote,
  /// leader aggregation); returns false when the walk over later slots
  /// must stop (validation failed/lock-blocked/slot decided).
  bool AdvanceSlot(BatchId id, Instance& inst);

  /// Sends the log entries past `peer_last` (plus our new-view proof) to
  /// a lagging replica.
  void ServeCatchUp(crypto::NodeId to, BatchId peer_last);
  /// Verifies and decides one transferred log entry; returns false when
  /// the certificate or the replayed Merkle root does not check out.
  bool ApplyCatchUpEntry(const storage::Batch& batch,
                         const storage::BatchCertificate& cert);
  /// Remembers the most recent verified new-view proof for catch-up.
  void RecordNewViewProof(uint64_t new_view,
                          const crypto::SignatureSet& proof);

  /// Bytes a commit-phase vote signs.
  Bytes CommitVotePayload(BatchId batch_id, const crypto::Digest& digest) const;
  /// Bytes a view-bind share signs: ties a prepare QC to the view it
  /// formed in.
  Bytes ViewBindPayload(BatchId batch_id, const crypto::Digest& digest,
                        uint64_t view) const;
  /// Bytes a view-change vote signs.
  Bytes ViewChangePayload(uint64_t new_view) const;

  /// Leader: aggregate prepare/commit quorums and broadcast QCs; decide
  /// on the commit quorum when the slot is the log head (later slots
  /// buffer their commit QC until predecessors decide). Returns true
  /// when the slot decided.
  bool LeaderAdvance(BatchId batch_id, Instance& inst);
  /// Hands the decided batch to the node (exactly once, in log order).
  void Decide(BatchId batch_id);

  /// `demanded` is the log position whose lack of progress triggered the
  /// request; escalation past a faulty prospective leader stops once the
  /// log reaches it.
  void RequestViewChange(uint64_t target, BatchId demanded);
  void AdoptView(uint64_t target);

  void SendCounted(crypto::NodeId to, const sim::MessagePtr& msg,
                   sim::Time at);
  void BroadcastCounted(const sim::MessagePtr& msg, sim::Time at);

  NodeContext* ctx_;
  Hooks hooks_;

  uint64_t view_ = 0;
  std::map<BatchId, Instance> instances_;
  /// Prospective-leader aggregation of view-change signatures.
  std::map<uint64_t, std::map<crypto::NodeId, crypto::Signature>>
      view_change_votes_;
  /// Per-slot prepare-QC locks (slot id -> lock).
  std::map<BatchId, Lock> locks_;
  /// Newest position of an in-flight view-change re-proposal; the
  /// pipeline is gated off new proposals until the whole re-proposed
  /// prefix decides (NodeContext::ReproposalPending).
  BatchId reproposed_id_ = kNoBatch;
  /// Most recent verified new-view proof, piggybacked on catch-up so a
  /// replica that missed the announcement can adopt the view.
  uint64_t proven_view_ = 0;
  crypto::SignatureSet view_proof_;
  /// Out-of-order catch-up entries awaiting their predecessors.
  std::map<BatchId, std::pair<storage::Batch, storage::BatchCertificate>>
      pending_catchup_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_CONSENSUS_LINEAR_VOTE_CONSENSUS_H_
