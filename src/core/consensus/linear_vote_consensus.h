#ifndef TRANSEDGE_CORE_CONSENSUS_LINEAR_VOTE_CONSENSUS_H_
#define TRANSEDGE_CORE_CONSENSUS_LINEAR_VOTE_CONSENSUS_H_

#include <map>

#include "core/consensus/consensus.h"
#include "wire/message.h"

namespace transedge::core {

/// HotStuff-style leader-aggregated consensus (ConsensusKind::kLinearVote):
/// two voting phases with O(n) messages each instead of PBFT's O(n²)
/// all-to-all broadcasts.
///
///   1. The leader broadcasts LinearProposeMsg (the batch).
///   2. Replicas re-validate (Definition 3.1, same checks as the PBFT
///      engine) and send a prepare vote *to the leader*. The vote's
///      share signs `BatchCertificate::SignedPayload()`, so the
///      aggregated quorum certificate is byte-compatible with the f+1
///      client certificate every other subsystem consumes.
///   3. On 2f+1 matching prepare shares the leader broadcasts the
///      prepare QC (a BatchCertificate carrying the quorum of shares).
///   4. Replicas verify the QC and send a commit vote to the leader
///      (share over the commit-vote payload).
///   5. On 2f+1 matching commit shares the leader broadcasts the commit
///      QC and decides; replicas decide on receipt. The commit QC
///      repeats the prepare certificate, so deciding does not depend on
///      having seen step 3.
///
/// View changes are linear too: a replica whose progress timer fires
/// sends a signed LinearViewChangeMsg to the *prospective* leader of the
/// next view; that leader aggregates 2f+1 signatures and broadcasts a
/// QC-carrying LinearNewViewMsg which every replica adopts on
/// verification. If the prospective leader is itself faulty, the
/// initiator escalates to the following view after another timeout.
class LinearVoteConsensus : public Consensus {
 public:
  LinearVoteConsensus(NodeContext* ctx, Hooks hooks);

  uint64_t view() const override { return view_; }
  void Propose(storage::Batch batch, merkle::MerkleTree post_tree) override;
  bool OnMessage(sim::ActorId from, const sim::Message& msg) override;
  void AdvanceConsensus() override;
  void StartViewChangeTimer(BatchId batch_id) override;
  const Stats& stats() const override { return stats_; }

 private:
  struct Instance {
    bool has_batch = false;
    storage::Batch batch;
    crypto::Digest digest;
    bool validated = false;
    bool validation_failed = false;
    merkle::MerkleTree post_tree;  // Tree with the batch's writes applied.
    /// Leader-shared tree (SystemConfig::simulate_shared_merkle).
    merkle::MerkleTree::Snapshot adopted_snapshot;

    // Leader-side aggregation. Votes carry the digest the voter saw, so
    // an equivocating leader's two variants split the vote.
    std::map<crypto::NodeId, crypto::Digest> prepare_votes;
    std::map<crypto::NodeId, crypto::Signature> prepare_shares;
    std::map<crypto::NodeId, crypto::Digest> commit_votes;
    std::map<crypto::NodeId, crypto::Signature> commit_shares;
    bool prepare_qc_sent = false;
    bool commit_qc_sent = false;

    // Replica-side phase progress.
    bool sent_prepare_vote = false;
    bool sent_commit_vote = false;
    bool have_prepare_qc = false;
    /// Commit QC received before the batch finished validating; replayed
    /// by AdvanceConsensus.
    bool have_commit_qc = false;
    /// Commit-QC signature set awaiting verification.
    crypto::SignatureSet commit_qc_sigs;
    /// Client-facing certificate (from own aggregation or a received QC).
    storage::BatchCertificate certificate;
    bool decided = false;

    explicit Instance(int merkle_depth) : post_tree(merkle_depth) {}
  };

  void HandlePropose(sim::ActorId from, const wire::LinearProposeMsg& msg);
  void HandleVote(sim::ActorId from, const wire::LinearVoteMsg& msg);
  void HandleQc(sim::ActorId from, const wire::LinearQcMsg& msg);
  void HandleViewChange(sim::ActorId from,
                        const wire::LinearViewChangeMsg& msg);
  void HandleNewView(sim::ActorId from, const wire::LinearNewViewMsg& msg);

  bool IsLeaderSelf() const {
    return ctx_->config().LeaderOf(ctx_->partition(), view_) == ctx_->id();
  }

  /// Bytes a commit-phase vote signs.
  Bytes CommitVotePayload(BatchId batch_id, const crypto::Digest& digest) const;
  /// Bytes a view-change vote signs.
  Bytes ViewChangePayload(uint64_t new_view) const;

  /// Leader: aggregate prepare/commit quorums and broadcast QCs; decide
  /// on the commit quorum.
  void LeaderAdvance(BatchId batch_id, Instance& inst);
  /// Hands the decided batch to the node (exactly once, in log order).
  void Decide(BatchId batch_id);

  void RequestViewChange(uint64_t target);
  void AdoptView(uint64_t target);

  void SendCounted(crypto::NodeId to, const sim::MessagePtr& msg,
                   sim::Time at);
  void BroadcastCounted(const sim::MessagePtr& msg, sim::Time at);

  NodeContext* ctx_;
  Hooks hooks_;

  uint64_t view_ = 0;
  std::map<BatchId, Instance> instances_;
  /// Prospective-leader aggregation of view-change signatures.
  std::map<uint64_t, std::map<crypto::NodeId, crypto::Signature>>
      view_change_votes_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_CONSENSUS_LINEAR_VOTE_CONSENSUS_H_
