#ifndef TRANSEDGE_CORE_CONSENSUS_PBFT_CONSENSUS_H_
#define TRANSEDGE_CORE_CONSENSUS_PBFT_CONSENSUS_H_

#include <map>
#include <set>

#include "core/consensus/consensus.h"
#include "wire/message.h"

namespace transedge::core {

/// PBFT-style intra-cluster consensus on batches (§3.2) — the paper's
/// protocol and the default `ConsensusKind::kPbft` engine: PrePrepare /
/// Prepare / Commit voting on one batch at a time with all-to-all vote
/// broadcasts (O(n²) messages per decided batch), batch re-validation
/// against Definition 3.1 and the read-only segment rules, certificate
/// assembly from the prepare-phase shares, and symmetric broadcast view
/// changes.
class PbftConsensus : public Consensus {
 public:
  PbftConsensus(NodeContext* ctx, Hooks hooks);

  uint64_t view() const override { return view_; }
  void Propose(storage::Batch batch, merkle::MerkleTree post_tree) override;
  bool OnMessage(sim::ActorId from, const sim::Message& msg) override;
  void AdvanceConsensus() override;
  void StartViewChangeTimer(BatchId batch_id) override;
  const Stats& stats() const override { return stats_; }
  /// Undecided proposals past the log tail. PBFT keeps the Consensus
  /// default MaxPipelineDepth() == 1 (one batch at a time), so this is
  /// 0 or 1 outside of queued out-of-order proposals.
  size_t InFlight() const override;

 private:
  struct ConsensusInstance {
    bool has_batch = false;
    storage::Batch batch;
    crypto::Digest digest;
    bool validated = false;
    bool validation_failed = false;
    merkle::MerkleTree post_tree;  // Tree with the batch's writes applied.
    /// Leader-shared tree (SystemConfig::simulate_shared_merkle).
    merkle::MerkleTree::Snapshot adopted_snapshot;
    /// Votes carry the digest the voter saw, so an equivocating leader's
    /// two batch variants split the vote and neither reaches quorum.
    std::map<crypto::NodeId, crypto::Digest> prepare_votes;
    std::map<crypto::NodeId, crypto::Digest> commit_votes;
    std::map<crypto::NodeId, crypto::Signature> cert_shares;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool decided = false;

    explicit ConsensusInstance(int merkle_depth) : post_tree(merkle_depth) {}
  };

  void HandlePrePrepare(sim::ActorId from, const wire::PrePrepareMsg& msg);
  void HandlePrepare(sim::ActorId from, const wire::PrepareMsg& msg);
  void HandleCommit(sim::ActorId from, const wire::CommitMsg& msg);
  void HandleViewChange(sim::ActorId from, const wire::ViewChangeMsg& msg);

  void InitiateViewChange(uint64_t new_view);
  void MaybeAdoptView(uint64_t target);

  /// Network sends with the engine's message counter maintained.
  void SendCounted(crypto::NodeId to, const sim::MessagePtr& msg,
                   sim::Time at);
  void BroadcastCounted(const sim::MessagePtr& msg, sim::Time at);

  NodeContext* ctx_;
  Hooks hooks_;

  uint64_t view_ = 0;
  std::map<BatchId, ConsensusInstance> instances_;
  std::map<uint64_t, std::set<crypto::NodeId>> view_change_votes_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_CONSENSUS_PBFT_CONSENSUS_H_
