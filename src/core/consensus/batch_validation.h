#ifndef TRANSEDGE_CORE_CONSENSUS_BATCH_VALIDATION_H_
#define TRANSEDGE_CORE_CONSENSUS_BATCH_VALIDATION_H_

#include <map>

#include "core/node_context.h"
#include "merkle/merkle_tree.h"
#include "storage/batch.h"

namespace transedge::core {

/// Engine-independent pieces of batch certification, shared by every
/// `Consensus` implementation: what a proposal signature covers, what a
/// certificate share covers, and the full Definition 3.1 re-validation a
/// replica runs before voting on a proposed batch.

/// Bytes signed by the leader over a proposed batch digest.
Bytes ProposalSignPayload(const crypto::Digest& digest);

/// The certificate fields (no signatures) every replica's share commits
/// to for `batch`: partition, batch id, batch digest, Merkle root, and
/// the read-only-segment digest.
storage::BatchCertificate CertificatePayloadFor(PartitionId partition,
                                                const storage::Batch& batch,
                                                const crypto::Digest& digest);

/// Definition 3.1 re-validation plus read-only-segment recomputation for
/// a proposed batch: partition/log-position checks, the freshness window
/// (§4.4.2), per-transaction conflict re-checks, committed-segment order
/// (Definition 4.1), LCE, CD vector (Algorithm 1), and the Merkle root.
/// Charges the simulated validation cost. On success fills `post_tree`
/// with the batch's post-state tree. `adopted_snapshot` is the leader's
/// shared tree under `SystemConfig::simulate_shared_merkle` (invalid
/// otherwise).
///
/// `chain` carries pipelining context when the batch extends
/// proposed-but-undecided predecessors: the expected id, the in-flight
/// batches (whose admitted footprints, committed groups, LCE, and CD
/// vector the new batch must chain on), and the Merkle tree positioned
/// after the last of them. nullptr validates against the decided state
/// directly — the depth-1 behavior.
Status ValidateProposedBatch(NodeContext* ctx, const storage::Batch& batch,
                             const merkle::MerkleTree::Snapshot&
                                 adopted_snapshot,
                             merkle::MerkleTree* post_tree,
                             const ProposalChain* chain = nullptr);

/// Number of collected votes matching `digest`. Votes carry the digest
/// the voter saw, so an equivocating leader's variants split the count.
size_t CountMatchingVotes(const std::map<crypto::NodeId, crypto::Digest>& votes,
                          const crypto::Digest& digest);

/// The ByzantineBehavior::kEquivocate fault, shared by every engine's
/// proposal path: sends `main` and `alt` alternately to every other
/// cluster member, so the two halves of the cluster see conflicting
/// variants and neither can gather a quorum of matching votes. Returns
/// the number of messages sent (for the engine's stats counter).
size_t SendEquivocatingVariants(NodeContext* ctx, const sim::MessagePtr& main,
                                const sim::MessagePtr& alt, sim::Time at);

/// Collects up to `max_signatures` shares that verify over `payload`,
/// taken from voters whose reported digest matches `digest`. The
/// verify-before-count rule every quorum object (certificate, commit QC)
/// is built on lives here.
crypto::SignatureSet CollectVerifiedShares(
    NodeContext* ctx, const Bytes& payload,
    const std::map<crypto::NodeId, crypto::Digest>& votes,
    const std::map<crypto::NodeId, crypto::Signature>& shares,
    const crypto::Digest& digest, size_t max_signatures);

/// Assembles the f+1 client-facing certificate from vote shares whose
/// digest matches `digest`, verifying each share over the certificate
/// payload. `max_signatures` bounds the set (certificate_size for the
/// client certificate; quorum_size when the same object doubles as a
/// linear-vote quorum certificate).
storage::BatchCertificate AssembleCertificateFromShares(
    NodeContext* ctx, const storage::Batch& batch,
    const crypto::Digest& digest,
    const std::map<crypto::NodeId, crypto::Digest>& votes,
    const std::map<crypto::NodeId, crypto::Signature>& shares,
    size_t max_signatures);

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_CONSENSUS_BATCH_VALIDATION_H_
