#include "core/consensus/batch_validation.h"

#include <set>
#include <vector>

#include "core/batch_apply.h"
#include "txn/cd_vector.h"
#include "core/footprint_index.h"
#include "txn/prepared_batches.h"

namespace transedge::core {

Bytes ProposalSignPayload(const crypto::Digest& digest) {
  Encoder enc;
  enc.PutString("transedge-batch-proposal");
  enc.PutRaw(digest.bytes.data(), digest.bytes.size());
  return enc.Take();
}

storage::BatchCertificate CertificatePayloadFor(PartitionId partition,
                                                const storage::Batch& batch,
                                                const crypto::Digest& digest) {
  storage::BatchCertificate payload;
  payload.partition = partition;
  payload.batch_id = batch.id;
  payload.batch_digest = digest;
  payload.merkle_root = batch.ro.merkle_root;
  payload.ro_digest = batch.ro.ComputeDigest();
  return payload;
}

Status ValidateProposedBatch(NodeContext* ctx, const storage::Batch& batch,
                             const merkle::MerkleTree::Snapshot&
                                 adopted_snapshot,
                             merkle::MerkleTree* post_tree,
                             const ProposalChain* chain) {
  const SystemConfig& config = ctx->config();
  storage::SmrLog& log = ctx->mutable_log();
  txn::PreparedBatches& prepared = ctx->prepared_batches();
  static const std::vector<const storage::Batch*> kNoPending;
  const std::vector<const storage::Batch*>& pending =
      chain != nullptr ? chain->pending : kNoPending;
  if (batch.partition != ctx->partition()) {
    return Status::InvalidArgument("batch for wrong partition");
  }
  BatchId expected_id =
      chain != nullptr ? chain->next_id : log.LastBatchId() + 1;
  if (batch.id != expected_id) {
    return Status::FailedPrecondition("batch id not next in log");
  }

  // Freshness window (§4.4.2): a malicious leader cannot timestamp a
  // batch far from real time.
  int64_t skew = batch.ro.timestamp_us - ctx->now();
  if (skew < -config.freshness_window || skew > config.freshness_window) {
    return Status::VerificationFailed("batch timestamp outside window");
  }

  const uint32_t shards = config.pipeline_shards == 0 ? 1
                                                      : config.pipeline_shards;
  if (shards > 1) {
    // Re-validation partitions its conflict index the same way the
    // sharded leader's admission did, so the superlinear churn term is
    // paid per shard (balanced-router estimate; the routers are uniform).
    size_t n = batch.TotalTransactions();
    std::vector<size_t> sizes(shards, n / shards);
    for (size_t i = 0; i < n % shards; ++i) ++sizes[i];
    ctx->Charge(
        ctx->ShardedBatchComputeCost(sizes, config.cost.validate_per_txn));
  } else {
    ctx->Charge(ctx->BatchComputeCost(batch.TotalTransactions(),
                                      config.cost.validate_per_txn));
  }

  // Re-run Definition 3.1 on every transaction the leader admitted. With
  // predecessors in flight, their admitted transactions count as part of
  // the batch window: the new batch must not conflict with them either.
  FootprintIndex batch_index;
  for (const storage::Batch* p : pending) {
    for (const Transaction& t : p->local) batch_index.Add(t);
    for (const Transaction& t : p->prepared) batch_index.Add(t);
  }
  auto check = [&](const Transaction& t) -> Status {
    Transaction restricted = ctx->RestrictToPartition(t);
    TE_RETURN_IF_ERROR(ctx->CheckReadVersions(restricted));
    if (batch_index.ConflictsWith(t)) {
      return Status::Conflict("conflict inside proposed batch");
    }
    if (ctx->pending_footprint().ConflictsWith(t)) {
      return Status::Conflict("conflict with prepared transaction");
    }
    batch_index.Add(t);
    return Status::OK();
  };
  for (const Transaction& t : batch.local) TE_RETURN_IF_ERROR(check(t));
  for (const Transaction& t : batch.prepared) TE_RETURN_IF_ERROR(check(t));

  // The committed segment must be exactly a ready prefix of our prepare
  // groups, in Definition 4.1 order. Groups already committed by an
  // in-flight predecessor are excluded from the effective queue.
  auto find_txn = [&](TxnId id) -> const Transaction* {
    if (const Transaction* t = prepared.FindTxn(id)) return t;
    for (const storage::Batch* p : pending) {
      for (const Transaction& t : p->prepared) {
        if (t.id == id) return &t;
      }
    }
    return nullptr;
  };
  {
    std::set<BatchId> window_committed;
    for (const storage::Batch* p : pending) {
      for (const storage::CommitRecord& rec : p->committed) {
        window_committed.insert(rec.prepared_in_batch);
      }
    }
    std::vector<BatchId> group_ids;
    for (const storage::CommitRecord& rec : batch.committed) {
      if (group_ids.empty() || group_ids.back() != rec.prepared_in_batch) {
        group_ids.push_back(rec.prepared_in_batch);
      }
      if (find_txn(rec.txn_id) == nullptr) {
        return Status::VerificationFailed(
            "commit record references unknown transaction");
      }
    }
    for (size_t i = 1; i < group_ids.size(); ++i) {
      if (group_ids[i - 1] >= group_ids[i]) {
        return Status::VerificationFailed(
            "commit records violate prepare-group order");
      }
    }
    if (!group_ids.empty()) {
      for (BatchId gid : group_ids) {
        if (window_committed.count(gid) > 0) {
          return Status::VerificationFailed(
              "prepare group already committed by an in-flight batch");
        }
      }
      // The effective queue: registered groups not committed in flight,
      // followed by groups prepared by in-flight batches (those cannot
      // be ready yet — 2PC outcomes need the prepare applied — so their
      // presence here only anchors the order check).
      BatchId effective_head = kNoBatch;
      bool have_head = false;
      for (BatchId gid : prepared.GroupIds()) {
        if (window_committed.count(gid) > 0) continue;
        effective_head = gid;
        have_head = true;
        break;
      }
      if (!have_head) {
        for (const storage::Batch* p : pending) {
          if (p->prepared.empty()) continue;
          if (window_committed.count(p->id) > 0) continue;
          effective_head = p->id;
          have_head = true;
          break;
        }
      }
      if (!have_head || effective_head != group_ids.front()) {
        return Status::VerificationFailed(
            "committed segment does not start at the oldest prepare group");
      }
    }
  }

  // LCE: must be the prepare-batch id of the last committed group, or
  // carried forward (from the last in-flight predecessor when chaining).
  BatchId expected_lce;
  if (!pending.empty()) {
    expected_lce = pending.back()->ro.lce;
  } else {
    expected_lce = log.empty() ? kNoBatch : log.back().batch.ro.lce;
  }
  if (!batch.committed.empty()) {
    expected_lce = batch.committed.back().prepared_in_batch;
  }
  if (batch.ro.lce != expected_lce) {
    return Status::VerificationFailed("LCE mismatch");
  }

  // CD vector: re-run Algorithm 1 and compare.
  txn::CdVector cd;
  if (!pending.empty()) {
    cd = pending.back()->ro.cd_vector;
  } else {
    cd = log.empty() ? txn::CdVector(config.num_partitions)
                     : log.back().batch.ro.cd_vector;
  }
  if (cd.empty()) cd = txn::CdVector(config.num_partitions);
  for (const storage::CommitRecord& rec : batch.committed) {
    if (!rec.committed) continue;
    for (const storage::PreparedInfo& info : rec.participant_info) {
      if (info.cd_vector.size() == cd.size()) cd.PairwiseMax(info.cd_vector);
    }
  }
  cd.Set(ctx->partition(), batch.id);
  if (!(cd == batch.ro.cd_vector)) {
    return Status::VerificationFailed("CD vector mismatch");
  }

  // Merkle root: replay the writes on a clone and compare roots. Under
  // the shared-merkle simulation shortcut, adopt the leader's persistent
  // tree instead of re-hashing identical updates (host-CPU optimization
  // only; simulated validation cost was charged above).
  if (config.simulate_shared_merkle && adopted_snapshot.valid()) {
    if (adopted_snapshot.RootDigest() != batch.ro.merkle_root) {
      return Status::VerificationFailed("shared merkle root mismatch");
    }
    *post_tree = merkle::MerkleTree::FromSnapshot(adopted_snapshot);
  } else {
    const merkle::MerkleTree& base =
        (chain != nullptr && chain->head_tree != nullptr)
            ? *chain->head_tree
            : ctx->decided_tree();
    *post_tree = base.Clone();
    ApplyBatchWritesToTree(post_tree, ctx->partition_map(), ctx->partition(),
                           batch, find_txn);
    if (post_tree->RootDigest() != batch.ro.merkle_root) {
      return Status::VerificationFailed("merkle root mismatch");
    }
  }
  return Status::OK();
}

size_t CountMatchingVotes(const std::map<crypto::NodeId, crypto::Digest>& votes,
                          const crypto::Digest& digest) {
  size_t n = 0;
  for (const auto& [node, d] : votes) {
    if (d == digest) ++n;
  }
  return n;
}

size_t SendEquivocatingVariants(NodeContext* ctx, const sim::MessagePtr& main,
                                const sim::MessagePtr& alt, sim::Time at) {
  size_t sent = 0;
  bool flip = false;
  for (crypto::NodeId member : ctx->cluster_members()) {
    if (member == ctx->id()) continue;
    ctx->Send(member, flip ? alt : main, at);
    flip = !flip;
    ++sent;
  }
  return sent;
}

crypto::SignatureSet CollectVerifiedShares(
    NodeContext* ctx, const Bytes& payload,
    const std::map<crypto::NodeId, crypto::Digest>& votes,
    const std::map<crypto::NodeId, crypto::Signature>& shares,
    const crypto::Digest& digest, size_t max_signatures) {
  crypto::SignatureSet set;
  for (const auto& [node, vote_digest] : votes) {
    if (set.size() >= max_signatures) break;
    if (!(vote_digest == digest)) continue;
    auto share = shares.find(node);
    if (share == shares.end()) continue;
    if (ctx->verifier().Verify(payload, share->second)) {
      set.Add(share->second);
    }
  }
  return set;
}

storage::BatchCertificate AssembleCertificateFromShares(
    NodeContext* ctx, const storage::Batch& batch,
    const crypto::Digest& digest,
    const std::map<crypto::NodeId, crypto::Digest>& votes,
    const std::map<crypto::NodeId, crypto::Signature>& shares,
    size_t max_signatures) {
  storage::BatchCertificate cert =
      CertificatePayloadFor(ctx->partition(), batch, digest);
  cert.signatures = CollectVerifiedShares(ctx, cert.SignedPayload(), votes,
                                          shares, digest, max_signatures);
  return cert;
}

}  // namespace transedge::core
