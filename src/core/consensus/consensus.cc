#include "core/consensus/consensus.h"

#include <utility>

#include "core/consensus/linear_vote_consensus.h"
#include "core/consensus/pbft_consensus.h"

namespace transedge::core {

const char* ConsensusKindName(ConsensusKind kind) {
  switch (kind) {
    case ConsensusKind::kPbft:
      return "pbft";
    case ConsensusKind::kLinearVote:
      return "linear_vote";
  }
  return "unknown";
}

std::unique_ptr<Consensus> MakeConsensus(NodeContext* ctx,
                                         Consensus::Hooks hooks) {
  switch (ctx->config().consensus_kind) {
    case ConsensusKind::kLinearVote:
      return std::make_unique<LinearVoteConsensus>(ctx, std::move(hooks));
    case ConsensusKind::kPbft:
      break;
  }
  return std::make_unique<PbftConsensus>(ctx, std::move(hooks));
}

}  // namespace transedge::core
