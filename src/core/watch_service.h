#ifndef TRANSEDGE_CORE_WATCH_SERVICE_H_
#define TRANSEDGE_CORE_WATCH_SERVICE_H_

#include <deque>
#include <vector>

#include "core/node_context.h"
#include "wire/message.h"

namespace transedge::core {

/// Server side of the watch/subscription push tier: clients register
/// key-range watches on the leader, and every applied batch pushes the
/// in-range writes as a delta annotated with the batch certificate and
/// per-key Merkle proofs against the certified root — the commit-free
/// certified read, inverted from pull to push, so N watchers of a hot
/// range cost one proof construction per batch instead of N round-1
/// polls.
///
/// Staleness is explicit, never silent:
///   - every delta names the previous batch pushed to that watch
///     (`prev_batch_id`), so a watcher detects a lost delta by chain
///     discontinuity without trusting the server;
///   - a view change bumps the watch epoch and flushes every watch with
///     a retryable WatchResubscribeRequired (the demoted replica's
///     stream dies loudly, watchers rotate to the new leader);
///   - a resume below the retained replay window (TruncateHistory moved
///     past it) is rejected with the same retryable error instead of
///     being seeded with a gap.
class WatchService {
 public:
  struct Stats {
    /// Fresh subscriptions seeded with a certified snapshot.
    uint64_t watch_subscribes = 0;
    /// Resumed subscriptions (missed deltas replayed from the window).
    uint64_t watch_resumes = 0;
    /// WatchResubscribeRequired replies sent (view-change flushes and
    /// out-of-window resumes).
    uint64_t watch_resubscribe_errors = 0;
    uint64_t watch_deltas_pushed = 0;
    uint64_t watch_keys_pushed = 0;
  };

  explicit WatchService(NodeContext* ctx);

  void HandleSubscribe(sim::ActorId from, const wire::WatchSubscribeRequest&);
  void HandleUnsubscribe(sim::ActorId from, const wire::WatchUnsubscribe&);

  /// Apply-path hook (next to the other engines' OnBatchApplied):
  /// records the batch's write keys for resume replay and pushes one
  /// delta per watch whose range the batch touched. `written` is the
  /// batch's applied write set restricted to this partition, sorted and
  /// deduplicated by the node.
  void OnBatchApplied(const storage::LogEntry& logged,
                      const std::vector<Key>& written);

  /// View adoption: watches are leader-local, so the stream this replica
  /// was serving is dead. Bump the epoch and flush every watch with a
  /// retryable resubscribe error.
  void OnViewChange();

  size_t active_watches() const { return watches_.size(); }
  const Stats& stats() const { return stats_; }

 private:
  struct Watch {
    uint64_t watch_id = 0;
    sim::ActorId client = 0;
    Key lo;
    Key hi;
    /// Last batch id this watch was brought current through (the seed's
    /// batch id, then the id of each pushed delta); the next delta's
    /// `prev_batch_id`.
    BatchId last_sent = kNoBatch;
  };

  bool InRange(const Watch& w, const Key& key) const {
    return key >= w.lo && key <= w.hi;
  }

  /// Oldest batch id a resume can chain from: everything in
  /// (`floor`, last_applied] is replayable from `recent_writes_`.
  BatchId ReplayFloor() const;

  /// Certified (value, proof) entries for `keys` as of `batch_id`,
  /// provable against that batch's certificate root.
  std::vector<wire::AuthenticatedRead> BuildEntries(
      BatchId batch_id, const std::vector<Key>& keys);

  /// Builds and sends the delta for `watch` at applied batch `batch_id`
  /// (certificate from the log, proofs from the batch's snapshot) and
  /// advances the watch's chain position.
  void PushDelta(Watch& watch, BatchId batch_id,
                 const std::vector<Key>& matched);

  void SendResubscribeRequired(sim::ActorId client, uint64_t watch_id);

  NodeContext* ctx_;
  uint64_t epoch_ = 1;
  std::vector<Watch> watches_;
  /// Write keys of each applied batch, in batch order, trimmed to the
  /// snapshot window — the resume replay source. Covers the contiguous
  /// id range (ReplayFloor(), last_applied].
  std::deque<std::pair<BatchId, std::vector<Key>>> recent_writes_;
  Stats stats_;
};

}  // namespace transedge::core

#endif  // TRANSEDGE_CORE_WATCH_SERVICE_H_
