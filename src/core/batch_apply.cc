#include "core/batch_apply.h"

namespace transedge::core {

void ApplyBatchWritesToTree(merkle::MerkleTree* tree,
                            const storage::PartitionMap& pmap,
                            PartitionId self, const storage::Batch& batch,
                            const TxnResolver& resolve) {
  for (const Transaction& t : batch.local) {
    for (const WriteOp& w : pmap.WritesFor(t, self)) {
      tree->Put(w.key, w.value, batch.id);
    }
  }
  for (const storage::CommitRecord& rec : batch.committed) {
    if (!rec.committed) continue;
    const Transaction* t = resolve(rec.txn_id);
    if (t == nullptr) continue;
    for (const WriteOp& w : pmap.WritesFor(*t, self)) {
      tree->Put(w.key, w.value, batch.id);
    }
  }
}

void ApplyBatchWritesToTree(merkle::MerkleTree* tree,
                            const storage::PartitionMap& pmap,
                            PartitionId self, const storage::Batch& batch,
                            const txn::PreparedBatches& pending) {
  ApplyBatchWritesToTree(
      tree, pmap, self, batch,
      [&pending](TxnId id) { return pending.FindTxn(id); });
}

}  // namespace transedge::core
