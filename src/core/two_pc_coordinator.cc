#include "core/two_pc_coordinator.h"

#include <utility>
#include <vector>

namespace transedge::core {

TwoPcCoordinator::TwoPcCoordinator(NodeContext* ctx, Hooks hooks)
    : ctx_(ctx), hooks_(std::move(hooks)) {}

void TwoPcCoordinator::BeginCoordination(const Transaction& txn,
                                         sim::ActorId client) {
  CoordinatorTxn coord;
  coord.txn = txn;
  coord.client = client;
  coord_txns_[txn.id] = std::move(coord);
}

void TwoPcCoordinator::HandleCoordPrepare(sim::ActorId from,
                                          const wire::CoordPrepareMsg& msg) {
  (void)from;
  const Transaction& txn = msg.txn;
  if (!msg.resend && hooks_.already_seen(txn.id)) {
    return;  // Duplicate (f+1 fan-out).
  }

  ctx_->Charge(ctx_->config().cost.signature_op);  // Verify the proof.
  Status proof_ok =
      msg.proof.Verify(ctx_->verifier(), ctx_->config().certificate_size(),
                       ctx_->config().ClusterMembers(msg.coordinator));
  if (!proof_ok.ok()) return;  // Unauthenticated prepare; drop.

  if (msg.resend) {
    // A resuming coordinator re-collects the votes its predecessor held.
    // Re-report from replicated state, three ways:
    //   1. prepare already logged here -> re-vote yes with the logged
    //      batch's CD vector and certificate (the original Prepared may
    //      have been addressed to the demoted coordinator and lost);
    //   2. prepare admitted but still in flight -> stay silent, the
    //      regular report goes out when its batch applies;
    //   3. seen but holding no trace -> our admission no-vote is the
    //      permanent record for this id; repeat it.
    // A replica with no memory of the id at all falls through to the
    // ordinary admission path below — for it the resend *is* the first
    // coordinator-prepare.
    if (ctx_->prepared_batches().FindTxn(txn.id) != nullptr) {
      BatchId prepared_in = ctx_->prepared_batches().GroupOf(txn.id);
      Result<const storage::LogEntry*> entry =
          ctx_->mutable_log().Get(prepared_in);
      if (!entry.ok()) return;  // Below the history horizon; cannot re-prove.
      wire::PreparedMsg reply;
      reply.txn_id = txn.id;
      reply.info.partition = ctx_->partition();
      reply.info.prepared_in_batch = prepared_in;
      reply.info.vote = true;
      reply.info.cd_vector = entry.value()->batch.ro.cd_vector;
      reply.proof = entry.value()->certificate;
      ctx_->SendToCluster(msg.coordinator, ShareMsg(std::move(reply)),
                          ctx_->busy_until());
      return;
    }
    if (hooks_.in_flight && hooks_.in_flight(txn.id)) return;
    if (hooks_.already_seen(txn.id)) {
      wire::PreparedMsg reply;
      reply.txn_id = txn.id;
      reply.info.partition = ctx_->partition();
      reply.info.prepared_in_batch = kNoBatch;
      reply.info.vote = false;
      reply.info.cd_vector = txn::CdVector(ctx_->config().num_partitions);
      ctx_->SendToCluster(msg.coordinator, ShareMsg(std::move(reply)),
                          ctx_->busy_until());
      return;
    }
  }

  Status admit = hooks_.admit_prepared(txn);
  if (!admit.ok()) {
    // Vote no immediately: we never prepared, so there is nothing to
    // clean up locally (§3.3.3).
    wire::PreparedMsg reply;
    reply.txn_id = txn.id;
    reply.info.partition = ctx_->partition();
    reply.info.prepared_in_batch = kNoBatch;
    reply.info.vote = false;
    reply.info.cd_vector = txn::CdVector(ctx_->config().num_partitions);
    ctx_->SendToCluster(msg.coordinator, ShareMsg(std::move(reply)),
                        ctx_->busy_until());
    return;
  }

  participant_pending_.insert(txn.id);
  hooks_.maybe_propose();
}

void TwoPcCoordinator::HandlePrepared(sim::ActorId from,
                                      const wire::PreparedMsg& msg) {
  (void)from;
  auto it = coord_txns_.find(msg.txn_id);
  if (it == coord_txns_.end()) return;
  CoordinatorTxn& coord = it->second;
  if (coord.collected.count(msg.info.partition) > 0) return;  // Duplicate.

  if (msg.info.vote) {
    ctx_->Charge(ctx_->config().cost.signature_op);
    Status proof_ok = msg.proof.Verify(
        ctx_->verifier(), ctx_->config().certificate_size(),
        ctx_->config().ClusterMembers(msg.info.partition));
    if (!proof_ok.ok()) return;
  }
  coord.collected[msg.info.partition] = msg.info;
  MaybeDecide2pc(msg.txn_id);
}

void TwoPcCoordinator::MaybeDecide2pc(TxnId txn_id) {
  auto it = coord_txns_.find(txn_id);
  if (it == coord_txns_.end()) return;
  CoordinatorTxn& coord = it->second;
  if (coord.decided) return;
  if (coord.collected.size() < coord.txn.participants.size()) return;

  bool decision = true;
  std::vector<storage::PreparedInfo> infos;
  infos.reserve(coord.collected.size());
  for (const auto& [partition, info] : coord.collected) {
    decision = decision && info.vote;
    infos.push_back(info);
  }
  coord.decided = true;
  coord.decision = decision;
  // The decision enters the prepared-batches structure; the transaction
  // reaches the committed segment when its prepare group is the oldest
  // (Definition 4.1) and the next batch is built.
  Status s = ctx_->prepared_batches().RecordDecision(txn_id, decision, infos);
  (void)s;  // NotFound is impossible: we prepared it ourselves.
}

void TwoPcCoordinator::HandleCommitRecord(sim::ActorId from,
                                          const wire::CommitRecordMsg& msg) {
  (void)from;
  ctx_->Charge(ctx_->config().cost.signature_op);
  Status proof_ok =
      msg.proof.Verify(ctx_->verifier(), ctx_->config().certificate_size(),
                       ctx_->config().ClusterMembers(msg.proof.partition));
  if (!proof_ok.ok()) return;
  // AlreadyExists (duplicate fan-out) and NotFound (we voted no and never
  // prepared) are both benign.
  Status s = ctx_->prepared_batches().RecordDecision(msg.txn_id, msg.commit,
                                                     msg.participant_info);
  (void)s;
}

void TwoPcCoordinator::OnViewChange() {
  sim::Time at = ctx_->busy_until();
  const bool leader = ctx_->IsLeader();  // Under the freshly adopted view.
  for (auto it = coord_txns_.begin(); it != coord_txns_.end();) {
    const CoordinatorTxn& coord = it->second;
    // A still-present entry has not been client-replied (OnBatchApplied
    // erases on reply). A demoted coordinator can drive none of them any
    // further — votes route to the new leader, and client replies and
    // commit-record fan-out only happen on the leader. But the ones
    // whose prepare reached the replicated prepared-batches structure
    // are not lost: the new leader resumes them, so dropping silently
    // (the client's timeout retry reattaches over there) preserves a
    // commit that is already in flight. Only never-logged admissions —
    // wiped by the view change, never decidable — get the retryable
    // abort reply. A (re-elected) leader keeps everything it can still
    // drive.
    const bool logged =
        ctx_->prepared_batches().FindTxn(it->first) != nullptr;
    if (leader && (coord.decided || logged)) {
      ++it;
      continue;
    }
    if (!leader && logged) {
      it = coord_txns_.erase(it);  // Resumable by the new leader.
      continue;
    }
    ctx_->ReplyCommit(coord.client, it->first, false, "view change", at,
                      /*retryable=*/true);
    it = coord_txns_.erase(it);
  }

  if (!leader) return;
  // New-leader side of the handover: undecided prepare groups this
  // partition coordinates but nobody is driving any more (the demoted
  // leader held the coordination state) would strand every participant
  // cluster's committed segment behind them. Resume them: the prepare
  // batch's log entry supplies our own yes-vote, CD vector, and the
  // certificate to re-prove the prepare with. Re-deciding is safe —
  // votes are monotone (a prepared participant re-votes yes, a rejected
  // one re-votes no) and no commit record for the group can have been
  // certified, since only the demoted coordinator could have decided
  // and its decision never reached a batch.
  std::vector<const Transaction*> pending =
      ctx_->prepared_batches().PendingTransactions();
  for (const Transaction* txn : pending) {
    if (txn->coordinator != ctx_->partition()) continue;
    if (coord_txns_.count(txn->id) > 0) continue;  // Still driven here.
    ResumeCoordination(*txn, at);
  }
}

void TwoPcCoordinator::ResumeCoordination(const Transaction& txn,
                                          sim::Time at) {
  BatchId prepared_in = ctx_->prepared_batches().GroupOf(txn.id);
  Result<const storage::LogEntry*> entry = ctx_->mutable_log().Get(prepared_in);
  if (!entry.ok()) {
    // The prepare batch fell below the history horizon: no certificate
    // left to re-prove the prepare with. Unilateral abort — fanned out
    // through the record's participant slots when the batch carrying it
    // applies (there is no coordinator entry to consult by then).
    std::vector<storage::PreparedInfo> infos;
    infos.reserve(txn.participants.size());
    for (PartitionId p : txn.participants) {
      storage::PreparedInfo info;
      info.partition = p;
      info.prepared_in_batch = kNoBatch;
      info.vote = false;
      info.cd_vector = txn::CdVector(ctx_->config().num_partitions);
      infos.push_back(std::move(info));
    }
    Status s =
        ctx_->prepared_batches().RecordDecision(txn.id, false, std::move(infos));
    (void)s;  // The transaction is pending by construction.
    return;
  }

  CoordinatorTxn coord;
  coord.txn = txn;
  coord.client = 0;  // Orphaned: only the demoted leader knew the client.
  storage::PreparedInfo own;
  own.partition = ctx_->partition();
  own.prepared_in_batch = prepared_in;
  own.vote = true;
  own.cd_vector = entry.value()->batch.ro.cd_vector;
  coord.collected[ctx_->partition()] = std::move(own);
  coord_txns_[txn.id] = std::move(coord);

  for (PartitionId p : txn.participants) {
    if (p == ctx_->partition()) continue;
    wire::CoordPrepareMsg msg;
    msg.txn = txn;
    msg.coordinator = ctx_->partition();
    msg.proof = entry.value()->certificate;
    msg.resend = true;
    ctx_->SendToCluster(p, ShareMsg(std::move(msg)), at);
  }
  MaybeDecide2pc(txn.id);
}

bool TwoPcCoordinator::ReattachClient(TxnId txn_id, sim::ActorId client) {
  auto done = orphan_outcomes_.find(txn_id);
  if (done != orphan_outcomes_.end()) {
    // Decided and applied while orphaned; stats were counted when the
    // record applied. Answer the retry with the final outcome.
    ctx_->ReplyCommit(client, txn_id, done->second,
                      done->second ? "" : "aborted by 2PC",
                      ctx_->busy_until());
    orphan_outcomes_.erase(done);
    return true;
  }
  auto it = coord_txns_.find(txn_id);
  if (it == coord_txns_.end()) return false;
  it->second.client = client;
  return true;
}

void TwoPcCoordinator::OnBatchApplied(const storage::Batch& logged,
                                      const storage::BatchCertificate& cert) {
  if (!ctx_->IsLeader()) return;
  sim::Time at = ctx_->busy_until();

  // Freshly prepared distributed transactions: drive 2PC.
  for (const Transaction& t : logged.prepared) {
    auto coord_it = coord_txns_.find(t.id);
    if (coord_it != coord_txns_.end()) {
      // We are the coordinator: record our own prepared info and send
      // coordinator-prepares to the other participants (step 3).
      storage::PreparedInfo own;
      own.partition = ctx_->partition();
      own.prepared_in_batch = logged.id;
      own.vote = true;
      own.cd_vector = logged.ro.cd_vector;
      coord_it->second.collected[ctx_->partition()] = own;
      for (PartitionId p : t.participants) {
        if (p == ctx_->partition()) continue;
        wire::CoordPrepareMsg msg;
        msg.txn = t;
        msg.coordinator = ctx_->partition();
        msg.proof = cert;
        ctx_->SendToCluster(p, ShareMsg(std::move(msg)), at);
      }
      MaybeDecide2pc(t.id);
    } else if (participant_pending_.count(t.id) > 0) {
      // We are a participant: report prepared to the coordinator
      // (step 5), piggybacking this batch's CD vector.
      participant_pending_.erase(t.id);
      wire::PreparedMsg msg;
      msg.txn_id = t.id;
      msg.info.partition = ctx_->partition();
      msg.info.prepared_in_batch = logged.id;
      msg.info.vote = true;
      msg.info.cd_vector = logged.ro.cd_vector;
      msg.proof = cert;
      ctx_->SendToCluster(t.coordinator, ShareMsg(std::move(msg)), at);
    }
  }

  // Commit records just written: notify participants and clients
  // (steps 7 and 8).
  for (const storage::CommitRecord& rec : logged.committed) {
    auto coord_it = coord_txns_.find(rec.txn_id);
    if (coord_it == coord_txns_.end()) {
      // No coordinator entry. On a participant partition that is the
      // normal case — the coordinator already fanned the record out and
      // this copy only releases the local prepare group. Fanning out
      // again from every participant leader would flood the cluster
      // with duplicate records (and double-count the stats).
      if (rec.coordinator != ctx_->partition()) continue;
      // On the coordinating partition itself, a missing entry means the
      // decision was formed by an earlier leader (resume decided
      // elsewhere, or a horizon-loss unilateral abort) and the record
      // reached the log under this one. The fan-out duty still lands
      // here — the record's participant slots name every involved
      // partition, so the entry is not needed.
      for (const storage::PreparedInfo& info : rec.participant_info) {
        if (info.partition == ctx_->partition()) continue;
        wire::CommitRecordMsg msg;
        msg.txn_id = rec.txn_id;
        msg.commit = rec.committed;
        msg.participant_info = rec.participant_info;
        msg.proof = cert;
        ctx_->SendToCluster(info.partition, ShareMsg(std::move(msg)), at);
      }
      if (rec.committed) {
        ++stats_.dist_committed;
      } else {
        ++stats_.dist_aborted;
      }
      continue;
    }
    const Transaction& t = coord_it->second.txn;
    for (PartitionId p : t.participants) {
      if (p == ctx_->partition()) continue;
      wire::CommitRecordMsg msg;
      msg.txn_id = rec.txn_id;
      msg.commit = rec.committed;
      msg.participant_info = rec.participant_info;
      msg.proof = cert;
      ctx_->SendToCluster(p, ShareMsg(std::move(msg)), at);
    }
    if (rec.committed) {
      ++stats_.dist_committed;
    } else {
      ++stats_.dist_aborted;
    }
    if (coord_it->second.client != 0) {
      ctx_->ReplyCommit(coord_it->second.client, rec.txn_id, rec.committed,
                        rec.committed ? "" : "aborted by 2PC", at);
    } else {
      // Resumed while orphaned — nobody knows the client until its
      // timeout retry arrives; ReattachClient answers it from here.
      orphan_outcomes_[rec.txn_id] = rec.committed;
    }
    coord_txns_.erase(coord_it);
  }
}

}  // namespace transedge::core
