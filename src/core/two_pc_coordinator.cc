#include "core/two_pc_coordinator.h"

#include <utility>
#include <vector>

namespace transedge::core {

TwoPcCoordinator::TwoPcCoordinator(NodeContext* ctx, Hooks hooks)
    : ctx_(ctx), hooks_(std::move(hooks)) {}

void TwoPcCoordinator::BeginCoordination(const Transaction& txn,
                                         sim::ActorId client) {
  CoordinatorTxn coord;
  coord.txn = txn;
  coord.client = client;
  coord_txns_[txn.id] = std::move(coord);
}

void TwoPcCoordinator::HandleCoordPrepare(sim::ActorId from,
                                          const wire::CoordPrepareMsg& msg) {
  (void)from;
  const Transaction& txn = msg.txn;
  if (hooks_.already_seen(txn.id)) return;  // Duplicate (f+1 fan-out).

  ctx_->Charge(ctx_->config().cost.signature_op);  // Verify the proof.
  Status proof_ok =
      msg.proof.Verify(ctx_->verifier(), ctx_->config().certificate_size(),
                       ctx_->config().ClusterMembers(msg.coordinator));
  if (!proof_ok.ok()) return;  // Unauthenticated prepare; drop.

  Status admit = hooks_.admit_prepared(txn);
  if (!admit.ok()) {
    // Vote no immediately: we never prepared, so there is nothing to
    // clean up locally (§3.3.3).
    wire::PreparedMsg reply;
    reply.txn_id = txn.id;
    reply.info.partition = ctx_->partition();
    reply.info.prepared_in_batch = kNoBatch;
    reply.info.vote = false;
    reply.info.cd_vector = txn::CdVector(ctx_->config().num_partitions);
    ctx_->SendToCluster(msg.coordinator, ShareMsg(std::move(reply)),
                        ctx_->busy_until());
    return;
  }

  participant_pending_.insert(txn.id);
  hooks_.maybe_propose();
}

void TwoPcCoordinator::HandlePrepared(sim::ActorId from,
                                      const wire::PreparedMsg& msg) {
  (void)from;
  auto it = coord_txns_.find(msg.txn_id);
  if (it == coord_txns_.end()) return;
  CoordinatorTxn& coord = it->second;
  if (coord.collected.count(msg.info.partition) > 0) return;  // Duplicate.

  if (msg.info.vote) {
    ctx_->Charge(ctx_->config().cost.signature_op);
    Status proof_ok = msg.proof.Verify(
        ctx_->verifier(), ctx_->config().certificate_size(),
        ctx_->config().ClusterMembers(msg.info.partition));
    if (!proof_ok.ok()) return;
  }
  coord.collected[msg.info.partition] = msg.info;
  MaybeDecide2pc(msg.txn_id);
}

void TwoPcCoordinator::MaybeDecide2pc(TxnId txn_id) {
  auto it = coord_txns_.find(txn_id);
  if (it == coord_txns_.end()) return;
  CoordinatorTxn& coord = it->second;
  if (coord.decided) return;
  if (coord.collected.size() < coord.txn.participants.size()) return;

  bool decision = true;
  std::vector<storage::PreparedInfo> infos;
  infos.reserve(coord.collected.size());
  for (const auto& [partition, info] : coord.collected) {
    decision = decision && info.vote;
    infos.push_back(info);
  }
  coord.decided = true;
  coord.decision = decision;
  // The decision enters the prepared-batches structure; the transaction
  // reaches the committed segment when its prepare group is the oldest
  // (Definition 4.1) and the next batch is built.
  Status s = ctx_->prepared_batches().RecordDecision(txn_id, decision, infos);
  (void)s;  // NotFound is impossible: we prepared it ourselves.
}

void TwoPcCoordinator::HandleCommitRecord(sim::ActorId from,
                                          const wire::CommitRecordMsg& msg) {
  (void)from;
  ctx_->Charge(ctx_->config().cost.signature_op);
  Status proof_ok =
      msg.proof.Verify(ctx_->verifier(), ctx_->config().certificate_size(),
                       ctx_->config().ClusterMembers(msg.proof.partition));
  if (!proof_ok.ok()) return;
  // AlreadyExists (duplicate fan-out) and NotFound (we voted no and never
  // prepared) are both benign.
  Status s = ctx_->prepared_batches().RecordDecision(msg.txn_id, msg.commit,
                                                     msg.participant_info);
  (void)s;
}

void TwoPcCoordinator::OnViewChange() {
  sim::Time at = ctx_->busy_until();
  const bool leader = ctx_->IsLeader();  // Under the freshly adopted view.
  for (auto it = coord_txns_.begin(); it != coord_txns_.end();) {
    const CoordinatorTxn& coord = it->second;
    // A still-present entry has not been client-replied (OnBatchApplied
    // erases on reply). A demoted coordinator can drive none of them any
    // further — not even decided ones, whose client reply and commit-
    // record fan-out only happen on the leader — so it answers every
    // waiting client with a retryable abort and drops the entry; the new
    // leader unilaterally aborts the groups it inherits no state for. A
    // (re-elected) leader keeps everything it can still drive and only
    // drops undecided admissions the view change wiped from the
    // pipeline's queues (never logged, never decidable).
    const bool droppable =
        !leader ||
        (!coord.decided &&
         ctx_->prepared_batches().FindTxn(it->first) == nullptr);
    if (droppable) {
      ctx_->ReplyCommit(coord.client, it->first, false, "view change", at,
                        /*retryable=*/true);
      it = coord_txns_.erase(it);
    } else {
      ++it;
    }
  }

  if (!leader) {
    // Demotion also surrenders the unilateral-abort fan-out duty: the
    // next leader re-derives the same aborts from the shared prepared-
    // batches structure, and a stale entry here would duplicate its
    // CommitRecordMsg fan-out (and double-count dist_aborted) if this
    // replica ever led again when the abort's record applied.
    unilateral_aborts_.clear();
    return;
  }
  // New-leader side of the handover: undecided prepare groups this
  // partition coordinates but nobody is driving any more (the demoted
  // leader held the coordination state) would strand every participant
  // cluster's committed segment behind them. Unilaterally abort them;
  // the abort is safe because no commit record for the group can have
  // been certified — the coordinator decides, and the only replica that
  // could have decided never got its decision into a batch.
  std::vector<const Transaction*> pending =
      ctx_->prepared_batches().PendingTransactions();
  for (const Transaction* txn : pending) {
    if (txn->coordinator != ctx_->partition()) continue;
    if (coord_txns_.count(txn->id) > 0) continue;  // Still driven here.
    unilateral_aborts_.emplace(txn->id, *txn);
    Status s = ctx_->prepared_batches().RecordDecision(txn->id, false, {});
    (void)s;  // The transaction is pending by construction.
  }
}

void TwoPcCoordinator::OnBatchApplied(const storage::Batch& logged,
                                      const storage::BatchCertificate& cert) {
  if (!ctx_->IsLeader()) return;
  sim::Time at = ctx_->busy_until();

  // Freshly prepared distributed transactions: drive 2PC.
  for (const Transaction& t : logged.prepared) {
    auto coord_it = coord_txns_.find(t.id);
    if (coord_it != coord_txns_.end()) {
      // We are the coordinator: record our own prepared info and send
      // coordinator-prepares to the other participants (step 3).
      storage::PreparedInfo own;
      own.partition = ctx_->partition();
      own.prepared_in_batch = logged.id;
      own.vote = true;
      own.cd_vector = logged.ro.cd_vector;
      coord_it->second.collected[ctx_->partition()] = own;
      for (PartitionId p : t.participants) {
        if (p == ctx_->partition()) continue;
        wire::CoordPrepareMsg msg;
        msg.txn = t;
        msg.coordinator = ctx_->partition();
        msg.proof = cert;
        ctx_->SendToCluster(p, ShareMsg(std::move(msg)), at);
      }
      MaybeDecide2pc(t.id);
    } else if (participant_pending_.count(t.id) > 0) {
      // We are a participant: report prepared to the coordinator
      // (step 5), piggybacking this batch's CD vector.
      participant_pending_.erase(t.id);
      wire::PreparedMsg msg;
      msg.txn_id = t.id;
      msg.info.partition = ctx_->partition();
      msg.info.prepared_in_batch = logged.id;
      msg.info.vote = true;
      msg.info.cd_vector = logged.ro.cd_vector;
      msg.proof = cert;
      ctx_->SendToCluster(t.coordinator, ShareMsg(std::move(msg)), at);
    }
  }

  // Commit records just written: notify participants and clients
  // (steps 7 and 8).
  for (const storage::CommitRecord& rec : logged.committed) {
    auto coord_it = coord_txns_.find(rec.txn_id);
    if (coord_it == coord_txns_.end()) {
      // Unilateral abort from a leader handover: fan the decision to the
      // participants so their prepare groups unblock. There is no client
      // to answer — the demoted coordinator already abort-replied it.
      auto ua_it = unilateral_aborts_.find(rec.txn_id);
      if (ua_it == unilateral_aborts_.end()) continue;
      for (PartitionId p : ua_it->second.participants) {
        if (p == ctx_->partition()) continue;
        wire::CommitRecordMsg msg;
        msg.txn_id = rec.txn_id;
        msg.commit = rec.committed;
        msg.participant_info = rec.participant_info;
        msg.proof = cert;
        ctx_->SendToCluster(p, ShareMsg(std::move(msg)), at);
      }
      ++stats_.dist_aborted;
      unilateral_aborts_.erase(ua_it);
      continue;
    }
    const Transaction& t = coord_it->second.txn;
    for (PartitionId p : t.participants) {
      if (p == ctx_->partition()) continue;
      wire::CommitRecordMsg msg;
      msg.txn_id = rec.txn_id;
      msg.commit = rec.committed;
      msg.participant_info = rec.participant_info;
      msg.proof = cert;
      ctx_->SendToCluster(p, ShareMsg(std::move(msg)), at);
    }
    if (rec.committed) {
      ++stats_.dist_committed;
    } else {
      ++stats_.dist_aborted;
    }
    ctx_->ReplyCommit(coord_it->second.client, rec.txn_id, rec.committed,
                      rec.committed ? "" : "aborted by 2PC", at);
    coord_txns_.erase(coord_it);
  }
}

}  // namespace transedge::core
