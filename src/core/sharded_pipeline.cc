#include "core/sharded_pipeline.h"

#include <algorithm>
#include <utility>

#include "crypto/sha256.h"

namespace transedge::core {

uint32_t ShardKeyRouter::ShardOf(const Key& key) const {
  if (shard_count_ == 1) return 0;
  crypto::Digest d = crypto::Sha256::Hash(key);
  if (kind_ == ShardRouterKind::kRange) {
    // Merkle leaf-index space (digest bytes 0-3), contiguous ranges.
    uint64_t h = (static_cast<uint64_t>(d.bytes[0]) << 24) |
                 (static_cast<uint64_t>(d.bytes[1]) << 16) |
                 (static_cast<uint64_t>(d.bytes[2]) << 8) |
                 static_cast<uint64_t>(d.bytes[3]);
    return static_cast<uint32_t>((h * shard_count_) >> 32);
  }
  // kHash: bytes 24-27, between the Merkle prefix and the partition
  // suffix, so all three placements are independent.
  uint32_t h = (static_cast<uint32_t>(d.bytes[24]) << 24) |
               (static_cast<uint32_t>(d.bytes[25]) << 16) |
               (static_cast<uint32_t>(d.bytes[26]) << 8) |
               static_cast<uint32_t>(d.bytes[27]);
  return h % shard_count_;
}

ShardedPipeline::ShardedPipeline(NodeContext* ctx, Hooks hooks)
    : ctx_(ctx),
      hooks_(std::move(hooks)),
      router_(ctx->config().pipeline_shards,
              ctx->config().pipeline_shard_router) {
  uint32_t n = router_.shard_count();
  shards_.reserve(n);
  for (uint32_t s = 0; s < n; ++s) {
    Hooks shard_hooks = hooks_;
    if (n > 1) {
      shard_hooks.peer_admit = [this, s](const Transaction& txn) -> Status {
        for (uint32_t t : PlanFor(txn).touched) {
          if (t != s && shards_[t]->FootprintConflicts(txn)) {
            return Status::Conflict("conflicts with in-progress batch");
          }
        }
        return Status::OK();
      };
      shard_hooks.on_admitted = [this, s](const Transaction& txn) {
        for (uint32_t t : PlanFor(txn).touched) {
          if (t != s) shards_[t]->RecordPeerFootprint(SliceToShard(txn, t));
        }
      };
      shard_hooks.propose_on_size = [this] { MaybeProposeOnSize(); };
    }
    shards_.push_back(
        std::make_unique<BatchPipeline>(ctx_, std::move(shard_hooks)));
  }
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

const ShardedPipeline::ShardPlan& ShardedPipeline::PlanFor(
    const Transaction& txn) const {
  if (plan_.valid && plan_.txn_id == txn.id) return plan_;
  plan_.txn_id = txn.id;
  plan_.read_shards.clear();
  plan_.write_shards.clear();
  plan_.touched.clear();
  auto add = [&](const Key& key, std::vector<uint32_t>* out) {
    uint32_t s = router_.ShardOf(key);
    out->push_back(s);
    if (std::find(plan_.touched.begin(), plan_.touched.end(), s) ==
        plan_.touched.end()) {
      plan_.touched.push_back(s);
    }
  };
  for (const ReadOp& r : txn.read_set) add(r.key, &plan_.read_shards);
  for (const WriteOp& w : txn.write_set) add(w.key, &plan_.write_shards);
  if (plan_.touched.empty()) plan_.touched.push_back(0);
  std::sort(plan_.touched.begin(), plan_.touched.end());
  plan_.valid = true;
  return plan_;
}

Transaction ShardedPipeline::SliceToShard(const Transaction& txn,
                                          uint32_t shard) const {
  const ShardPlan& plan = PlanFor(txn);
  Transaction out;
  out.id = txn.id;
  for (size_t i = 0; i < txn.read_set.size(); ++i) {
    if (plan.read_shards[i] == shard) out.read_set.push_back(txn.read_set[i]);
  }
  for (size_t i = 0; i < txn.write_set.size(); ++i) {
    if (plan.write_shards[i] == shard) {
      out.write_set.push_back(txn.write_set[i]);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Admission entry points
// ---------------------------------------------------------------------------

void ShardedPipeline::HandleCommitRequest(sim::ActorId from,
                                          const wire::CommitRequest& msg) {
  if (single()) {
    shards_[0]->HandleCommitRequest(from, msg);
    return;
  }
  shards_[HomeShardOf(msg.txn)]->HandleCommitRequest(from, msg);
}

Status ShardedPipeline::AdmitPrepared(const Transaction& txn) {
  return shards_[single() ? 0 : HomeShardOf(txn)]->AdmitPrepared(txn);
}

bool ShardedPipeline::AlreadySeen(TxnId txn_id) const {
  for (const auto& shard : shards_) {
    if (shard->AlreadySeen(txn_id)) return true;
  }
  return false;
}

bool ShardedPipeline::HasIndexed(TxnId txn_id) const {
  for (const auto& shard : shards_) {
    if (shard->HasIndexed(txn_id)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Proposal loop (merged batch; shards > 1)
// ---------------------------------------------------------------------------

void ShardedPipeline::OnStart() {
  if (single()) {
    shards_[0]->OnStart();
    return;
  }
  StartBatchTimerLoop(ctx_, [this] {
    if (ShouldPropose()) ProposeMerged();
  });
  if (ctx_->byzantine() != ByzantineBehavior::kCrash && ShouldPropose()) {
    ProposeMerged();
  }
}

bool ShardedPipeline::ShouldPropose() const {
  return ShouldProposeNow(ctx_, proposing_, in_progress_size());
}

void ShardedPipeline::MaybeProposeOnSize() {
  if (single()) {
    shards_[0]->MaybeProposeOnSize();
    return;
  }
  bool slot_free =
      ctx_->DecoupledApply()
          ? ctx_->ConsensusInFlight() < ctx_->EffectivePipelineDepth()
          : !proposing_;
  if (ctx_->IsLeader() && slot_free && !ctx_->ReproposalPending() &&
      in_progress_size() >= ctx_->config().max_batch_size) {
    ProposeMerged();
  }
}

void ShardedPipeline::ProposeMerged() {
  proposing_ = true;
  // Deterministic merge: by shard index, then admission order within the
  // shard (DrainSegments preserves queue order).
  std::vector<Transaction> local;
  std::vector<Transaction> prepared;
  std::vector<size_t> shard_sizes;
  shard_sizes.reserve(shards_.size() + 1);
  for (const auto& shard : shards_) {
    shard_sizes.push_back(shard->in_progress_size());
    shard->DrainSegments(&local, &prepared);
  }
  storage::Batch batch =
      BuildBatchFromSegments(ctx_, std::move(local), std::move(prepared));
  // The committed segment is assembled once by the merge step; its
  // superlinear pressure is its own term next to the per-shard terms.
  shard_sizes.push_back(batch.committed.size());
  sim::Time cost = ctx_->ShardedBatchComputeCost(
      shard_sizes, ctx_->config().cost.admit_per_txn / 4);
  SealAndProposeBatch(ctx_, std::move(batch), cost, hooks_.propose);
}

// ---------------------------------------------------------------------------
// Post-apply / view-change fan-out
// ---------------------------------------------------------------------------

void ShardedPipeline::OnBatchApplied(const storage::Batch& logged) {
  if (single()) {
    shards_[0]->OnBatchApplied(logged);
    return;
  }
  proposing_ = false;
  // Pure followers (and demoted leaders after their view change) hold no
  // admission state at all — skip the per-key routing of the whole batch
  // instead of computing a no-op split on every replica.
  bool any_state = false;
  for (const auto& shard : shards_) {
    if (shard->seen_txn_count() > 0 || shard->in_progress_size() > 0) {
      any_state = true;
      break;
    }
  }
  if (!any_state) return;
  // Split the applied batch into per-home-shard sub-batches so each
  // shard's own bookkeeping (footprint release, dedup drain, client
  // replies) sees exactly the transactions it admitted, and release the
  // footprint slices recorded in the other touched shards — exactly when
  // the home shard indexed the transaction (a follower applying the
  // leader's batch recorded no slices).
  std::vector<storage::Batch> sub(shards_.size());
  auto route = [&](const Transaction& t, bool is_local) {
    uint32_t home = HomeShardOf(t);
    if (shards_[home]->HasIndexed(t.id)) {
      for (uint32_t s : PlanFor(t).touched) {
        if (s != home) shards_[s]->ReleasePeerFootprint(SliceToShard(t, s));
      }
    }
    if (is_local) {
      sub[home].local.push_back(t);
    } else {
      sub[home].prepared.push_back(t);
    }
  };
  for (const Transaction& t : logged.local) route(t, /*is_local=*/true);
  for (const Transaction& t : logged.prepared) route(t, /*is_local=*/false);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    sub[s].partition = logged.partition;
    sub[s].id = logged.id;
    shards_[s]->OnBatchApplied(sub[s]);
  }
  // Commit records carry only ids (no footprint to route): drain the
  // decided distributed transactions from every shard's dedup set.
  for (const storage::CommitRecord& rec : logged.committed) {
    for (const auto& shard : shards_) shard->ForgetSeen(rec.txn_id);
  }
}

void ShardedPipeline::OnViewChange() {
  proposing_ = false;
  for (const auto& shard : shards_) shard->OnViewChange();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

size_t ShardedPipeline::in_progress_size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->in_progress_size();
  return total;
}

size_t ShardedPipeline::seen_txn_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->seen_txn_count();
  return total;
}

ShardedPipeline::Stats ShardedPipeline::stats() const {
  Stats total;
  for (const auto& shard : shards_) {
    const Stats& s = shard->stats();
    total.local_committed += s.local_committed;
    total.local_aborted += s.local_aborted;
    total.dist_aborted += s.dist_aborted;
    total.rw_aborted_by_ro_locks += s.rw_aborted_by_ro_locks;
  }
  return total;
}

}  // namespace transedge::core
