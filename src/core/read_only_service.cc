#include "core/read_only_service.h"

#include <algorithm>
#include <utility>

namespace transedge::core {

ReadOnlyService::ReadOnlyService(NodeContext* ctx) : ctx_(ctx) {}

void ReadOnlyService::HandleClientRead(sim::ActorId from,
                                       const wire::ClientReadRequest& msg) {
  wire::ClientReadReply reply;
  reply.request_id = msg.request_id;
  reply.key = msg.key;
  Result<storage::VersionedValue> value = ctx_->mutable_store().Get(msg.key);
  if (value.ok()) {
    reply.found = true;
    reply.value = value->value;
    reply.version = value->version;
  }
  sim::Time done = ctx_->Charge(ctx_->config().cost.ro_serve_per_key);
  ctx_->Send(msg.reply_to != 0 ? msg.reply_to : from, ShareMsg(std::move(reply)),
             done);
}

wire::RoReply ReadOnlyService::UnserviceableReply(uint64_t request_id) const {
  // batch_id == kNoBatch tells the client no certified state can serve
  // the request right now; it retries (possibly against a fresher view).
  wire::RoReply reply;
  reply.request_id = request_id;
  reply.partition = ctx_->partition();
  reply.batch_id = kNoBatch;
  return reply;
}

Result<wire::RoReply> ReadOnlyService::BuildRoReply(
    uint64_t request_id, const std::vector<Key>& keys, BatchId batch_id,
    bool second_round) {
  // Both lookups can fail for a batch outside the retained window (the
  // snapshot window trails the log head); dereferencing the error Result
  // unchecked would be UB, so the caller replies unserviceable instead.
  // The floor is the authoritative history horizon — the same bound the
  // storage backend truncates version history and log entries against.
  if (batch_id < ctx_->history_horizon()) {
    return Status::NotFound("snapshot for batch no longer retained");
  }
  Result<const storage::LogEntry*> entry_or = ctx_->mutable_log().Get(batch_id);
  TE_RETURN_IF_ERROR(entry_or.status());
  const storage::LogEntry* entry = entry_or.value();

  wire::RoReply reply;
  reply.request_id = request_id;
  reply.partition = ctx_->partition();
  reply.batch_id = batch_id;
  reply.certificate = entry->certificate;
  reply.cd_vector = entry->batch.ro.cd_vector;
  reply.lce = entry->batch.ro.lce;
  reply.timestamp_us = entry->batch.ro.timestamp_us;
  reply.second_round = second_round;

  const merkle::MerkleTree::Snapshot& snap = ctx_->SnapshotAt(batch_id);
  for (const Key& key : keys) {
    wire::AuthenticatedRead read;
    read.key = key;
    Result<storage::VersionedValue> value =
        ctx_->mutable_store().GetAsOf(key, batch_id);
    if (value.ok()) {
      read.found = true;
      read.value = value->value;
      read.version = value->version;
    }
    Result<merkle::MerkleProof> proof = merkle::MerkleTree::ProveAt(snap, key);
    if (proof.ok()) read.proof = std::move(proof).value();
    reply.entries.push_back(std::move(read));
  }

  if (ctx_->byzantine() == ByzantineBehavior::kTamperReadValue) {
    for (wire::AuthenticatedRead& read : reply.entries) {
      if (read.found && !read.value.empty()) {
        read.value[0] ^= 0xff;  // Client-side Merkle check must catch this.
        break;
      }
    }
  }
  return reply;
}

void ReadOnlyService::HandleRoRequest(sim::ActorId from,
                                      const wire::RoRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  sim::Time done =
      ctx_->Charge(ctx_->config().cost.ro_serve_per_key *
                       static_cast<sim::Time>(msg.keys.size()) +
                   ctx_->config().cost.signature_op);
  if (ctx_->last_applied() == kNoBatch) {
    // No *applied* certified state yet (the log may already hold decided
    // batches whose storage apply is still queued); reply unserviceable,
    // the client retries.
    ctx_->Send(client, ShareMsg(UnserviceableReply(msg.request_id)), done);
    return;
  }
  // Serve from the applied snapshot window: the newest batch whose writes
  // (and Merkle snapshot) have actually reached the storage stack. Under
  // asynchronous apply this trails the decided log head.
  BatchId batch_id = ctx_->last_applied();
  if (ctx_->byzantine() == ByzantineBehavior::kStaleSnapshot && batch_id > 0) {
    // Old but certified: lag by one standard truncation period, capped to
    // the *configured* snapshot window — a hardcoded 64 would pin the
    // batch below a smaller window and bounce off the NotFound path in
    // BuildRoReply instead of serving a stale-but-verifiable reply.
    const BatchId lag = std::min<BatchId>(
        64, static_cast<BatchId>(ctx_->config().snapshot_history) - 1);
    batch_id = std::max<BatchId>(ctx_->history_horizon(), batch_id - lag);
  }
  Result<wire::RoReply> reply =
      BuildRoReply(msg.request_id, msg.keys, batch_id, false);
  if (!reply.ok()) {
    ctx_->Send(client, ShareMsg(UnserviceableReply(msg.request_id)), done);
    return;
  }
  ++stats_.ro_round1_served;
  ctx_->Send(client, ShareMsg(std::move(reply).value()), done);
}

BatchId ReadOnlyService::FindBatchWithLce(BatchId min_lce) const {
  const storage::SmrLog& log = ctx_->mutable_log();
  if (ctx_->last_applied() == kNoBatch) return kNoBatch;
  // LCE is non-decreasing across batches: binary search for the earliest
  // batch satisfying the dependency. History older than the authoritative
  // horizon cannot be served (snapshots and log entries are truncated
  // together there), so the search floor is that horizon; the ceiling is
  // the *applied* head — later batches are decided but have no snapshot
  // yet.
  BatchId lo = ctx_->history_horizon();
  BatchId hi = ctx_->last_applied();
  Result<const storage::LogEntry*> last = log.Get(hi);
  if (!last.ok() || last.value()->batch.ro.lce < min_lce) return kNoBatch;
  while (lo < hi) {
    BatchId mid = lo + (hi - lo) / 2;
    Result<const storage::LogEntry*> entry = log.Get(mid);
    if (!entry.ok()) return kNoBatch;  // Below the first retained entry.
    if (entry.value()->batch.ro.lce >= min_lce) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void ReadOnlyService::HandleRoBatchRequest(sim::ActorId from,
                                           const wire::RoBatchRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  const storage::SmrLog& log = ctx_->mutable_log();
  // A dependency further ahead of the log than the whole retained window
  // cannot come from an honest round-1 reply (dependencies are batch ids
  // this cluster already certified): answer unserviceable instead of
  // parking the request — and its client — forever.
  BatchId horizon = log.LastBatchId() +
                    static_cast<BatchId>(ctx_->config().snapshot_history);
  if (msg.min_lce > horizon) {
    sim::Time done = ctx_->Charge(ctx_->config().cost.message_handling);
    ++stats_.ro_round2_rejected;
    ctx_->Send(client, ShareMsg(UnserviceableReply(msg.request_id)), done);
    return;
  }
  BatchId batch_id = FindBatchWithLce(msg.min_lce);
  if (batch_id == kNoBatch) {
    // The dependency has prepared here but not yet committed; park the
    // request until a batch with a sufficient LCE is written.
    ++stats_.ro_round2_parked;
    ParkedRo parked;
    parked.client = client;
    parked.request = msg;
    parked.parked_tail = log.LastBatchId();
    parked_ro_.push_back(std::move(parked));
    return;
  }
  sim::Time done =
      ctx_->Charge(ctx_->config().cost.ro_serve_per_key *
                       static_cast<sim::Time>(msg.keys.size()) +
                   ctx_->config().cost.signature_op);
  Result<wire::RoReply> reply =
      BuildRoReply(msg.request_id, msg.keys, batch_id, true);
  if (!reply.ok()) {
    ctx_->Send(client, ShareMsg(UnserviceableReply(msg.request_id)), done);
    return;
  }
  ++stats_.ro_round2_served;
  ctx_->Send(client, ShareMsg(std::move(reply).value()), done);
}

void ReadOnlyService::ServeParkedRequests() {
  if (parked_ro_.empty()) return;
  std::vector<ParkedRo> still_parked;
  for (ParkedRo& parked : parked_ro_) {
    BatchId batch_id = FindBatchWithLce(parked.request.min_lce);
    if (batch_id == kNoBatch) {
      still_parked.push_back(std::move(parked));
      continue;
    }
    sim::Time done =
        ctx_->Charge(ctx_->config().cost.ro_serve_per_key *
                         static_cast<sim::Time>(parked.request.keys.size()) +
                     ctx_->config().cost.signature_op);
    Result<wire::RoReply> reply = BuildRoReply(
        parked.request.request_id, parked.request.keys, batch_id, true);
    if (!reply.ok()) {
      ctx_->Send(parked.client,
                 ShareMsg(UnserviceableReply(parked.request.request_id)), done);
      continue;
    }
    ++stats_.ro_round2_served;
    ctx_->Send(parked.client, ShareMsg(std::move(reply).value()), done);
  }
  parked_ro_ = std::move(still_parked);
}

void ReadOnlyService::OnViewChange() {
  // The new leader's log — not this replica's — will carry the batch
  // that satisfies each parked dependency, and the clients have already
  // rotated their requests there. Anything still parked here would leak.
  if (parked_ro_.empty()) return;
  for (ParkedRo& parked : parked_ro_) {
    sim::Time done = ctx_->Charge(ctx_->config().cost.message_handling);
    ++stats_.ro_round2_aborted;
    ctx_->Send(parked.client,
               ShareMsg(UnserviceableReply(parked.request.request_id)), done);
  }
  parked_ro_.clear();
}

void ReadOnlyService::OnHistoryTruncated(BatchId horizon) {
  if (parked_ro_.empty()) return;
  std::vector<ParkedRo> still_parked;
  for (ParkedRo& parked : parked_ro_) {
    // A full snapshot window has been applied *and truncated* past the
    // park point without the LCE catching up: the dependency must have
    // aborted (or its client given up). Stop waiting, tell the client.
    if (parked.parked_tail >= horizon) {
      still_parked.push_back(std::move(parked));
      continue;
    }
    sim::Time done = ctx_->Charge(ctx_->config().cost.message_handling);
    ++stats_.ro_round2_aborted;
    ctx_->Send(parked.client,
               ShareMsg(UnserviceableReply(parked.request.request_id)), done);
  }
  parked_ro_ = std::move(still_parked);
}

}  // namespace transedge::core
