#include "core/watch_service.h"

#include <map>
#include <utility>

namespace transedge::core {

WatchService::WatchService(NodeContext* ctx) : ctx_(ctx) {}

BatchId WatchService::ReplayFloor() const {
  if (ctx_->last_applied() == kNoBatch) return kNoBatch;
  // `recent_writes_` covers (floor, last_applied] contiguously; a fresh
  // (or freshly recovered) service has recorded nothing, so only a
  // resume exactly at the applied head can chain without a gap.
  if (recent_writes_.empty()) return ctx_->last_applied();
  return recent_writes_.front().first - 1;
}

std::vector<wire::AuthenticatedRead> WatchService::BuildEntries(
    BatchId batch_id, const std::vector<Key>& keys) {
  std::vector<wire::AuthenticatedRead> entries;
  entries.reserve(keys.size());
  const merkle::MerkleTree::Snapshot& snap = ctx_->SnapshotAt(batch_id);
  for (const Key& key : keys) {
    wire::AuthenticatedRead read;
    read.key = key;
    Result<storage::VersionedValue> value =
        ctx_->mutable_store().GetAsOf(key, batch_id);
    if (value.ok()) {
      read.found = true;
      read.value = value->value;
      read.version = value->version;
    }
    Result<merkle::MerkleProof> proof = merkle::MerkleTree::ProveAt(snap, key);
    if (proof.ok()) read.proof = std::move(proof).value();
    entries.push_back(std::move(read));
  }
  return entries;
}

void WatchService::SendResubscribeRequired(sim::ActorId client,
                                           uint64_t watch_id) {
  wire::WatchResubscribeRequired err;
  err.watch_id = watch_id;
  err.partition = ctx_->partition();
  err.epoch = epoch_;
  err.horizon = ReplayFloor();
  ++stats_.watch_resubscribe_errors;
  sim::Time done = ctx_->Charge(ctx_->config().cost.message_handling);
  ctx_->Send(client, ShareMsg(std::move(err)), done);
}

void WatchService::HandleSubscribe(sim::ActorId from,
                                   const wire::WatchSubscribeRequest& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  // One watch per (client, range): a resubscribe replaces its
  // predecessor instead of doubling the stream.
  for (auto it = watches_.begin(); it != watches_.end();) {
    if (it->client == client && it->lo == msg.range_lo &&
        it->hi == msg.range_hi) {
      it = watches_.erase(it);
    } else {
      ++it;
    }
  }

  const BatchId head = ctx_->last_applied();
  if (head == kNoBatch) {
    // No applied certified state to seed from or chain to yet.
    SendResubscribeRequired(client, msg.watch_id);
    return;
  }

  if (msg.resume_from != kNoBatch) {
    if (msg.resume_from < ReplayFloor() || msg.resume_from > head) {
      // The replay window rotated past the resume point (TruncateHistory)
      // or the claim is ahead of this replica: an honest continuation is
      // impossible, so demand an explicit fresh subscribe rather than
      // seeding a stream with a silent gap.
      SendResubscribeRequired(client, msg.watch_id);
      return;
    }
    Watch watch;
    watch.watch_id = msg.watch_id;
    watch.client = client;
    watch.lo = msg.range_lo;
    watch.hi = msg.range_hi;
    watch.last_sent = msg.resume_from;

    wire::WatchSubscribeReply reply;
    reply.watch_id = msg.watch_id;
    reply.partition = ctx_->partition();
    reply.epoch = epoch_;
    reply.batch_id = msg.resume_from;
    reply.resumed = true;
    ++stats_.watch_resumes;
    sim::Time done = ctx_->Charge(ctx_->config().cost.message_handling);
    ctx_->Send(client, ShareMsg(std::move(reply)), done);

    // Replay the missed in-range deltas from the retained window; each
    // chains on the previous one exactly as a live push would have.
    for (const auto& [id, keys] : recent_writes_) {
      if (id <= msg.resume_from) continue;
      std::vector<Key> matched;
      for (const Key& k : keys) {
        if (InRange(watch, k)) matched.push_back(k);
      }
      if (matched.empty()) continue;
      ctx_->Charge(ctx_->config().cost.ro_serve_per_key *
                   static_cast<sim::Time>(matched.size()));
      PushDelta(watch, id, matched);
    }
    watches_.push_back(std::move(watch));
    return;
  }

  // Fresh subscribe: seed every in-range key's certified (value, proof)
  // at the applied head.
  Result<const storage::LogEntry*> entry_or = ctx_->mutable_log().Get(head);
  if (!entry_or.ok()) {
    SendResubscribeRequired(client, msg.watch_id);
    return;
  }
  std::vector<Key> in_range;
  ctx_->mutable_store().ForEachLatest(
      [&](const Key& k, const Value& value, BatchId version) {
        (void)value;
        (void)version;
        if (k >= msg.range_lo && k <= msg.range_hi) in_range.push_back(k);
      });
  sim::Time done =
      ctx_->Charge(ctx_->config().cost.ro_serve_per_key *
                       static_cast<sim::Time>(in_range.size()) +
                   ctx_->config().cost.signature_op);
  wire::WatchSubscribeReply reply;
  reply.watch_id = msg.watch_id;
  reply.partition = ctx_->partition();
  reply.epoch = epoch_;
  reply.batch_id = head;
  reply.resumed = false;
  reply.entries = BuildEntries(head, in_range);
  reply.certificate = entry_or.value()->certificate;
  ++stats_.watch_subscribes;

  Watch watch;
  watch.watch_id = msg.watch_id;
  watch.client = client;
  watch.lo = msg.range_lo;
  watch.hi = msg.range_hi;
  watch.last_sent = head;
  watches_.push_back(std::move(watch));
  ctx_->Send(client, ShareMsg(std::move(reply)), done);
}

void WatchService::HandleUnsubscribe(sim::ActorId from,
                                     const wire::WatchUnsubscribe& msg) {
  sim::ActorId client = msg.reply_to != 0 ? msg.reply_to : from;
  for (auto it = watches_.begin(); it != watches_.end();) {
    if (it->client == client && it->watch_id == msg.watch_id) {
      it = watches_.erase(it);
    } else {
      ++it;
    }
  }
}

void WatchService::PushDelta(Watch& watch, BatchId batch_id,
                             const std::vector<Key>& matched) {
  Result<const storage::LogEntry*> entry_or =
      ctx_->mutable_log().Get(batch_id);
  if (!entry_or.ok()) return;  // Outside the retained log; cannot certify.
  wire::WatchDeltaMsg delta;
  delta.watch_id = watch.watch_id;
  delta.partition = ctx_->partition();
  delta.epoch = epoch_;
  delta.batch_id = batch_id;
  delta.prev_batch_id = watch.last_sent;
  delta.entries = BuildEntries(batch_id, matched);
  delta.certificate = entry_or.value()->certificate;
  watch.last_sent = batch_id;
  ++stats_.watch_deltas_pushed;
  stats_.watch_keys_pushed += matched.size();
  // Per-receiver cost is serialization only — the proofs above were
  // built (and charged) once per range, not once per watcher.
  sim::Time done = ctx_->Charge(ctx_->config().cost.message_handling);
  ctx_->Send(watch.client, ShareMsg(std::move(delta)), done);
}

void WatchService::OnBatchApplied(const storage::LogEntry& logged,
                                  const std::vector<Key>& written) {
  const BatchId id = logged.batch.id;
  recent_writes_.emplace_back(id, written);
  while (recent_writes_.size() >
         static_cast<size_t>(ctx_->config().snapshot_history)) {
    recent_writes_.pop_front();
  }
  if (watches_.empty() || written.empty()) return;

  // Group watches by range so N watchers of one hot range pay one proof
  // construction, then N per-receiver sends — the fan-out economics the
  // tier exists for.
  std::map<std::pair<Key, Key>, std::vector<size_t>> by_range;
  for (size_t i = 0; i < watches_.size(); ++i) {
    by_range[{watches_[i].lo, watches_[i].hi}].push_back(i);
  }
  for (const auto& [range, members] : by_range) {
    std::vector<Key> matched;
    for (const Key& k : written) {
      if (k >= range.first && k <= range.second) matched.push_back(k);
    }
    if (matched.empty()) continue;
    ctx_->Charge(ctx_->config().cost.ro_serve_per_key *
                 static_cast<sim::Time>(matched.size()));
    for (size_t i : members) {
      PushDelta(watches_[i], id, matched);
    }
  }
}

void WatchService::OnViewChange() {
  // Watches are leader-local: whatever this replica was streaming (as
  // leader, or believed-leader) dies with the old view. The epoch bump
  // invalidates in-flight deltas at the watcher; the explicit error
  // makes the death loud instead of silently stale.
  ++epoch_;
  if (watches_.empty()) return;
  for (const Watch& watch : watches_) {
    SendResubscribeRequired(watch.client, watch.watch_id);
  }
  watches_.clear();
}

}  // namespace transedge::core
