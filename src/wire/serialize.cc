#include "wire/serialize.h"

namespace transedge::wire {

namespace {

void PutDigest(Encoder* enc, const crypto::Digest& d) {
  enc->PutRaw(d.bytes.data(), d.bytes.size());
}

Result<crypto::Digest> GetDigest(Decoder* dec) {
  TE_ASSIGN_OR_RETURN(Bytes raw, dec->GetRaw(32));
  crypto::Digest d;
  std::copy(raw.begin(), raw.end(), d.bytes.begin());
  return d;
}

void PutAuthenticatedRead(Encoder* enc, const AuthenticatedRead& read) {
  enc->PutString(read.key);
  enc->PutBool(read.found);
  enc->PutBytes(read.value);
  enc->PutI64(read.version);
  read.proof.EncodeTo(enc);
}

Result<AuthenticatedRead> GetAuthenticatedRead(Decoder* dec) {
  AuthenticatedRead read;
  TE_ASSIGN_OR_RETURN(read.key, dec->GetString());
  TE_ASSIGN_OR_RETURN(read.found, dec->GetBool());
  TE_ASSIGN_OR_RETURN(read.value, dec->GetBytes());
  TE_ASSIGN_OR_RETURN(read.version, dec->GetI64());
  TE_ASSIGN_OR_RETURN(read.proof, merkle::MerkleProof::DecodeFrom(dec));
  return read;
}

void PutKeys(Encoder* enc, const std::vector<Key>& keys) {
  enc->PutU32(static_cast<uint32_t>(keys.size()));
  for (const Key& k : keys) enc->PutString(k);
}

Result<std::vector<Key>> GetKeys(Decoder* dec) {
  TE_ASSIGN_OR_RETURN(uint32_t n, dec->GetCount());
  std::vector<Key> keys;
  keys.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TE_ASSIGN_OR_RETURN(Key k, dec->GetString());
    keys.push_back(std::move(k));
  }
  return keys;
}

void PutInfos(Encoder* enc, const std::vector<storage::PreparedInfo>& infos) {
  enc->PutU32(static_cast<uint32_t>(infos.size()));
  for (const storage::PreparedInfo& info : infos) info.EncodeTo(enc);
}

Result<std::vector<storage::PreparedInfo>> GetInfos(Decoder* dec) {
  TE_ASSIGN_OR_RETURN(uint32_t n, dec->GetCount());
  std::vector<storage::PreparedInfo> infos;
  infos.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    TE_ASSIGN_OR_RETURN(storage::PreparedInfo info,
                        storage::PreparedInfo::DecodeFrom(dec));
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace

void EncodeBody(const ClientReadRequest& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
  enc->PutU32(msg.reply_to);
  enc->PutString(msg.key);
}

void EncodeBody(const ClientReadReply& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
  enc->PutString(msg.key);
  enc->PutBool(msg.found);
  enc->PutBytes(msg.value);
  enc->PutI64(msg.version);
}

void EncodeBody(const CommitRequest& msg, Encoder* enc) {
  enc->PutU32(msg.reply_to);
  msg.txn.EncodeTo(enc);
}

void EncodeBody(const CommitReply& msg, Encoder* enc) {
  enc->PutU64(msg.txn_id);
  enc->PutBool(msg.committed);
  enc->PutString(msg.reason);
  enc->PutBool(msg.retryable);
}

void EncodeBody(const RoRequest& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
  enc->PutU32(msg.reply_to);
  PutKeys(enc, msg.keys);
}

void EncodeBody(const RoReply& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
  enc->PutU32(msg.partition);
  enc->PutI64(msg.batch_id);
  enc->PutU32(static_cast<uint32_t>(msg.entries.size()));
  for (const AuthenticatedRead& read : msg.entries) {
    PutAuthenticatedRead(enc, read);
  }
  msg.certificate.EncodeTo(enc);
  msg.cd_vector.EncodeTo(enc);
  enc->PutI64(msg.lce);
  enc->PutI64(msg.timestamp_us);
  enc->PutBool(msg.second_round);
}

void EncodeBody(const RoBatchRequest& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
  enc->PutU32(msg.reply_to);
  PutKeys(enc, msg.keys);
  enc->PutI64(msg.min_lce);
}

void EncodeBody(const PrePrepareMsg& msg, Encoder* enc) {
  enc->PutU64(msg.view);
  msg.batch.EncodeTo(enc);
  msg.leader_signature.EncodeTo(enc);
  msg.leader_cert_share.EncodeTo(enc);
  // post_snapshot intentionally not serialized (simulation shortcut).
}

void EncodeBody(const PrepareMsg& msg, Encoder* enc) {
  enc->PutU64(msg.view);
  enc->PutI64(msg.batch_id);
  PutDigest(enc, msg.batch_digest);
  msg.cert_share.EncodeTo(enc);
}

void EncodeBody(const CommitMsg& msg, Encoder* enc) {
  enc->PutU64(msg.view);
  enc->PutI64(msg.batch_id);
  PutDigest(enc, msg.batch_digest);
}

void EncodeBody(const ViewChangeMsg& msg, Encoder* enc) {
  enc->PutU64(msg.new_view);
  enc->PutI64(msg.last_committed);
  msg.signature.EncodeTo(enc);
}

void EncodeBody(const LinearProposeMsg& msg, Encoder* enc) {
  enc->PutU64(msg.view);
  msg.batch.EncodeTo(enc);
  msg.leader_signature.EncodeTo(enc);
  enc->PutBool(msg.has_justify);
  if (msg.has_justify) {
    enc->PutU64(msg.justify_view);
    msg.justify_cert.EncodeTo(enc);
    msg.justify_view_sigs.EncodeTo(enc);
  }
  // post_snapshot intentionally not serialized (simulation shortcut).
}

void EncodeBody(const LinearVoteMsg& msg, Encoder* enc) {
  enc->PutU64(msg.view);
  enc->PutI64(msg.batch_id);
  enc->PutU32(msg.phase);
  PutDigest(enc, msg.batch_digest);
  msg.share.EncodeTo(enc);
  msg.view_share.EncodeTo(enc);
}

void EncodeBody(const LinearQcMsg& msg, Encoder* enc) {
  enc->PutU64(msg.view);
  enc->PutU32(msg.phase);
  msg.cert.EncodeTo(enc);
  msg.commit_sigs.EncodeTo(enc);
  msg.view_sigs.EncodeTo(enc);
}

void EncodeBody(const LinearViewChangeMsg& msg, Encoder* enc) {
  enc->PutU64(msg.new_view);
  enc->PutI64(msg.last_committed);
  msg.signature.EncodeTo(enc);
  enc->PutU32(static_cast<uint32_t>(msg.locks.size()));
  for (const LinearLockReport& lock : msg.locks) {
    enc->PutU64(lock.view);
    lock.batch.EncodeTo(enc);
    lock.cert.EncodeTo(enc);
    lock.view_sigs.EncodeTo(enc);
  }
}

void EncodeBody(const LinearNewViewMsg& msg, Encoder* enc) {
  enc->PutU64(msg.new_view);
  msg.proof.EncodeTo(enc);
}

void EncodeBody(const LinearCatchUpMsg& msg, Encoder* enc) {
  msg.batch.EncodeTo(enc);
  msg.cert.EncodeTo(enc);
  enc->PutU64(msg.view);
  msg.view_proof.EncodeTo(enc);
  enc->PutI64(msg.first_retained);
}

void EncodeBody(const CoordPrepareMsg& msg, Encoder* enc) {
  msg.txn.EncodeTo(enc);
  enc->PutU32(msg.coordinator);
  msg.proof.EncodeTo(enc);
  enc->PutBool(msg.resend);
}

void EncodeBody(const PreparedMsg& msg, Encoder* enc) {
  enc->PutU64(msg.txn_id);
  msg.info.EncodeTo(enc);
  msg.proof.EncodeTo(enc);
}

void EncodeBody(const CommitRecordMsg& msg, Encoder* enc) {
  enc->PutU64(msg.txn_id);
  enc->PutBool(msg.commit);
  PutInfos(enc, msg.participant_info);
  msg.proof.EncodeTo(enc);
}

void EncodeBody(const AugustusRoRequest& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
  enc->PutU32(msg.reply_to);
  PutKeys(enc, msg.keys);
}

void EncodeBody(const AugustusVoteRequest& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
  PutKeys(enc, msg.keys);
  enc->PutI64(msg.snapshot_batch);
}

void EncodeBody(const AugustusVoteReply& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
  enc->PutBool(msg.vote);
  msg.signature.EncodeTo(enc);
}

void EncodeBody(const AugustusRoReply& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
  enc->PutU32(msg.partition);
  enc->PutU32(static_cast<uint32_t>(msg.entries.size()));
  for (const AuthenticatedRead& read : msg.entries) {
    PutAuthenticatedRead(enc, read);
  }
  enc->PutU32(msg.votes);
}

void EncodeBody(const AugustusRelease& msg, Encoder* enc) {
  enc->PutU64(msg.request_id);
}

void EncodeBody(const WatchSubscribeRequest& msg, Encoder* enc) {
  enc->PutU64(msg.watch_id);
  enc->PutU32(msg.reply_to);
  enc->PutString(msg.range_lo);
  enc->PutString(msg.range_hi);
  enc->PutI64(msg.resume_from);
}

void EncodeBody(const WatchSubscribeReply& msg, Encoder* enc) {
  enc->PutU64(msg.watch_id);
  enc->PutU32(msg.partition);
  enc->PutU64(msg.epoch);
  enc->PutI64(msg.batch_id);
  enc->PutBool(msg.resumed);
  enc->PutU32(static_cast<uint32_t>(msg.entries.size()));
  for (const AuthenticatedRead& read : msg.entries) {
    PutAuthenticatedRead(enc, read);
  }
  msg.certificate.EncodeTo(enc);
}

void EncodeBody(const WatchDeltaMsg& msg, Encoder* enc) {
  enc->PutU64(msg.watch_id);
  enc->PutU32(msg.partition);
  enc->PutU64(msg.epoch);
  enc->PutI64(msg.batch_id);
  enc->PutI64(msg.prev_batch_id);
  enc->PutU32(static_cast<uint32_t>(msg.entries.size()));
  for (const AuthenticatedRead& read : msg.entries) {
    PutAuthenticatedRead(enc, read);
  }
  msg.certificate.EncodeTo(enc);
}

void EncodeBody(const WatchUnsubscribe& msg, Encoder* enc) {
  enc->PutU64(msg.watch_id);
  enc->PutU32(msg.reply_to);
}

void EncodeBody(const WatchResubscribeRequired& msg, Encoder* enc) {
  enc->PutU64(msg.watch_id);
  enc->PutU32(msg.partition);
  enc->PutU64(msg.epoch);
  enc->PutI64(msg.horizon);
}

Bytes EncodeMessage(const sim::Message& msg) {
  Encoder enc;
  enc.PutU32(msg.type());
  switch (static_cast<MessageType>(msg.type())) {
    case MessageType::kClientRead:
      EncodeBody(static_cast<const ClientReadRequest&>(msg), &enc);
      break;
    case MessageType::kClientReadReply:
      EncodeBody(static_cast<const ClientReadReply&>(msg), &enc);
      break;
    case MessageType::kCommitRequest:
      EncodeBody(static_cast<const CommitRequest&>(msg), &enc);
      break;
    case MessageType::kCommitReply:
      EncodeBody(static_cast<const CommitReply&>(msg), &enc);
      break;
    case MessageType::kRoRequest:
      EncodeBody(static_cast<const RoRequest&>(msg), &enc);
      break;
    case MessageType::kRoReply:
      EncodeBody(static_cast<const RoReply&>(msg), &enc);
      break;
    case MessageType::kRoBatchRequest:
      EncodeBody(static_cast<const RoBatchRequest&>(msg), &enc);
      break;
    case MessageType::kPrePrepare:
      EncodeBody(static_cast<const PrePrepareMsg&>(msg), &enc);
      break;
    case MessageType::kPrepare:
      EncodeBody(static_cast<const PrepareMsg&>(msg), &enc);
      break;
    case MessageType::kCommit:
      EncodeBody(static_cast<const CommitMsg&>(msg), &enc);
      break;
    case MessageType::kViewChange:
      EncodeBody(static_cast<const ViewChangeMsg&>(msg), &enc);
      break;
    case MessageType::kNewView:
      break;  // NewView carries only its proof set; unused on the wire.
    case MessageType::kLinearPropose:
      EncodeBody(static_cast<const LinearProposeMsg&>(msg), &enc);
      break;
    case MessageType::kLinearVote:
      EncodeBody(static_cast<const LinearVoteMsg&>(msg), &enc);
      break;
    case MessageType::kLinearQc:
      EncodeBody(static_cast<const LinearQcMsg&>(msg), &enc);
      break;
    case MessageType::kLinearViewChange:
      EncodeBody(static_cast<const LinearViewChangeMsg&>(msg), &enc);
      break;
    case MessageType::kLinearNewView:
      EncodeBody(static_cast<const LinearNewViewMsg&>(msg), &enc);
      break;
    case MessageType::kLinearCatchUp:
      EncodeBody(static_cast<const LinearCatchUpMsg&>(msg), &enc);
      break;
    case MessageType::kCoordPrepare:
      EncodeBody(static_cast<const CoordPrepareMsg&>(msg), &enc);
      break;
    case MessageType::kPrepared:
      EncodeBody(static_cast<const PreparedMsg&>(msg), &enc);
      break;
    case MessageType::kCommitRecord:
      EncodeBody(static_cast<const CommitRecordMsg&>(msg), &enc);
      break;
    case MessageType::kAugustusRoRequest:
      EncodeBody(static_cast<const AugustusRoRequest&>(msg), &enc);
      break;
    case MessageType::kAugustusVoteRequest:
      EncodeBody(static_cast<const AugustusVoteRequest&>(msg), &enc);
      break;
    case MessageType::kAugustusVoteReply:
      EncodeBody(static_cast<const AugustusVoteReply&>(msg), &enc);
      break;
    case MessageType::kAugustusRoReply:
      EncodeBody(static_cast<const AugustusRoReply&>(msg), &enc);
      break;
    case MessageType::kAugustusRelease:
      EncodeBody(static_cast<const AugustusRelease&>(msg), &enc);
      break;
    case MessageType::kWatchSubscribe:
      EncodeBody(static_cast<const WatchSubscribeRequest&>(msg), &enc);
      break;
    case MessageType::kWatchSubscribeReply:
      EncodeBody(static_cast<const WatchSubscribeReply&>(msg), &enc);
      break;
    case MessageType::kWatchDelta:
      EncodeBody(static_cast<const WatchDeltaMsg&>(msg), &enc);
      break;
    case MessageType::kWatchUnsubscribe:
      EncodeBody(static_cast<const WatchUnsubscribe&>(msg), &enc);
      break;
    case MessageType::kWatchResubscribe:
      EncodeBody(static_cast<const WatchResubscribeRequired&>(msg), &enc);
      break;
  }
  return enc.Take();
}

namespace {

template <typename T, typename Fill>
Result<sim::MessagePtr> Decode(Decoder* dec, Fill fill) {
  auto msg = std::make_shared<T>();
  TE_RETURN_IF_ERROR(fill(msg.get(), dec));
  if (!dec->exhausted()) {
    return Status::Corruption("trailing bytes after message body");
  }
  return sim::MessagePtr(std::move(msg));
}

}  // namespace

Result<sim::MessagePtr> DecodeMessage(const Bytes& buffer) {
  Decoder dec(buffer);
  TE_ASSIGN_OR_RETURN(uint32_t raw_type, dec.GetU32());
  switch (static_cast<MessageType>(raw_type)) {
    case MessageType::kClientRead:
      return Decode<ClientReadRequest>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->reply_to, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->key, d->GetString());
        return Status::OK();
      });
    case MessageType::kClientReadReply:
      return Decode<ClientReadReply>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->key, d->GetString());
        TE_ASSIGN_OR_RETURN(m->found, d->GetBool());
        TE_ASSIGN_OR_RETURN(m->value, d->GetBytes());
        TE_ASSIGN_OR_RETURN(m->version, d->GetI64());
        return Status::OK();
      });
    case MessageType::kCommitRequest:
      return Decode<CommitRequest>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->reply_to, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->txn, Transaction::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kCommitReply:
      return Decode<CommitReply>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->txn_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->committed, d->GetBool());
        TE_ASSIGN_OR_RETURN(m->reason, d->GetString());
        TE_ASSIGN_OR_RETURN(m->retryable, d->GetBool());
        return Status::OK();
      });
    case MessageType::kRoRequest:
      return Decode<RoRequest>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->reply_to, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->keys, GetKeys(d));
        return Status::OK();
      });
    case MessageType::kRoReply:
      return Decode<RoReply>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->partition, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->batch_id, d->GetI64());
        TE_ASSIGN_OR_RETURN(uint32_t n, d->GetCount());
        for (uint32_t i = 0; i < n; ++i) {
          TE_ASSIGN_OR_RETURN(AuthenticatedRead read,
                              GetAuthenticatedRead(d));
          m->entries.push_back(std::move(read));
        }
        TE_ASSIGN_OR_RETURN(m->certificate,
                            storage::BatchCertificate::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->cd_vector, txn::CdVector::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->lce, d->GetI64());
        TE_ASSIGN_OR_RETURN(m->timestamp_us, d->GetI64());
        TE_ASSIGN_OR_RETURN(m->second_round, d->GetBool());
        return Status::OK();
      });
    case MessageType::kRoBatchRequest:
      return Decode<RoBatchRequest>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->reply_to, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->keys, GetKeys(d));
        TE_ASSIGN_OR_RETURN(m->min_lce, d->GetI64());
        return Status::OK();
      });
    case MessageType::kPrePrepare:
      return Decode<PrePrepareMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->batch, storage::Batch::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->leader_signature,
                            crypto::Signature::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->leader_cert_share,
                            crypto::Signature::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kPrepare:
      return Decode<PrepareMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->batch_id, d->GetI64());
        TE_ASSIGN_OR_RETURN(m->batch_digest, GetDigest(d));
        TE_ASSIGN_OR_RETURN(m->cert_share, crypto::Signature::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kCommit:
      return Decode<CommitMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->batch_id, d->GetI64());
        TE_ASSIGN_OR_RETURN(m->batch_digest, GetDigest(d));
        return Status::OK();
      });
    case MessageType::kViewChange:
      return Decode<ViewChangeMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->new_view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->last_committed, d->GetI64());
        TE_ASSIGN_OR_RETURN(m->signature, crypto::Signature::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kLinearPropose:
      return Decode<LinearProposeMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->batch, storage::Batch::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->leader_signature,
                            crypto::Signature::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->has_justify, d->GetBool());
        if (m->has_justify) {
          TE_ASSIGN_OR_RETURN(m->justify_view, d->GetU64());
          TE_ASSIGN_OR_RETURN(m->justify_cert,
                              storage::BatchCertificate::DecodeFrom(d));
          TE_ASSIGN_OR_RETURN(m->justify_view_sigs,
                              crypto::SignatureSet::DecodeFrom(d));
        }
        return Status::OK();
      });
    case MessageType::kLinearVote:
      return Decode<LinearVoteMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->batch_id, d->GetI64());
        TE_ASSIGN_OR_RETURN(m->phase, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->batch_digest, GetDigest(d));
        TE_ASSIGN_OR_RETURN(m->share, crypto::Signature::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->view_share, crypto::Signature::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kLinearQc:
      return Decode<LinearQcMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->phase, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->cert,
                            storage::BatchCertificate::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->commit_sigs,
                            crypto::SignatureSet::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->view_sigs,
                            crypto::SignatureSet::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kLinearViewChange:
      return Decode<LinearViewChangeMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->new_view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->last_committed, d->GetI64());
        TE_ASSIGN_OR_RETURN(m->signature, crypto::Signature::DecodeFrom(d));
        uint32_t lock_count = 0;
        TE_ASSIGN_OR_RETURN(lock_count, d->GetU32());
        for (uint32_t i = 0; i < lock_count; ++i) {
          LinearLockReport lock;
          TE_ASSIGN_OR_RETURN(lock.view, d->GetU64());
          TE_ASSIGN_OR_RETURN(lock.batch, storage::Batch::DecodeFrom(d));
          TE_ASSIGN_OR_RETURN(lock.cert,
                              storage::BatchCertificate::DecodeFrom(d));
          TE_ASSIGN_OR_RETURN(lock.view_sigs,
                              crypto::SignatureSet::DecodeFrom(d));
          m->locks.push_back(std::move(lock));
        }
        return Status::OK();
      });
    case MessageType::kLinearNewView:
      return Decode<LinearNewViewMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->new_view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->proof, crypto::SignatureSet::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kLinearCatchUp:
      return Decode<LinearCatchUpMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->batch, storage::Batch::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->cert,
                            storage::BatchCertificate::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->view, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->view_proof,
                            crypto::SignatureSet::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->first_retained, d->GetI64());
        return Status::OK();
      });
    case MessageType::kCoordPrepare:
      return Decode<CoordPrepareMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->txn, Transaction::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->coordinator, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->proof,
                            storage::BatchCertificate::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->resend, d->GetBool());
        return Status::OK();
      });
    case MessageType::kPrepared:
      return Decode<PreparedMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->txn_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->info, storage::PreparedInfo::DecodeFrom(d));
        TE_ASSIGN_OR_RETURN(m->proof,
                            storage::BatchCertificate::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kCommitRecord:
      return Decode<CommitRecordMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->txn_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->commit, d->GetBool());
        TE_ASSIGN_OR_RETURN(m->participant_info, GetInfos(d));
        TE_ASSIGN_OR_RETURN(m->proof,
                            storage::BatchCertificate::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kAugustusRoRequest:
      return Decode<AugustusRoRequest>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->reply_to, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->keys, GetKeys(d));
        return Status::OK();
      });
    case MessageType::kAugustusVoteRequest:
      return Decode<AugustusVoteRequest>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->keys, GetKeys(d));
        TE_ASSIGN_OR_RETURN(m->snapshot_batch, d->GetI64());
        return Status::OK();
      });
    case MessageType::kAugustusVoteReply:
      return Decode<AugustusVoteReply>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->vote, d->GetBool());
        TE_ASSIGN_OR_RETURN(m->signature, crypto::Signature::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kAugustusRoReply:
      return Decode<AugustusRoReply>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->partition, d->GetU32());
        TE_ASSIGN_OR_RETURN(uint32_t n, d->GetCount());
        for (uint32_t i = 0; i < n; ++i) {
          TE_ASSIGN_OR_RETURN(AuthenticatedRead read,
                              GetAuthenticatedRead(d));
          m->entries.push_back(std::move(read));
        }
        TE_ASSIGN_OR_RETURN(m->votes, d->GetU32());
        return Status::OK();
      });
    case MessageType::kAugustusRelease:
      return Decode<AugustusRelease>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->request_id, d->GetU64());
        return Status::OK();
      });
    case MessageType::kWatchSubscribe:
      return Decode<WatchSubscribeRequest>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->watch_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->reply_to, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->range_lo, d->GetString());
        TE_ASSIGN_OR_RETURN(m->range_hi, d->GetString());
        TE_ASSIGN_OR_RETURN(m->resume_from, d->GetI64());
        return Status::OK();
      });
    case MessageType::kWatchSubscribeReply:
      return Decode<WatchSubscribeReply>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->watch_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->partition, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->epoch, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->batch_id, d->GetI64());
        TE_ASSIGN_OR_RETURN(m->resumed, d->GetBool());
        TE_ASSIGN_OR_RETURN(uint32_t n, d->GetCount());
        for (uint32_t i = 0; i < n; ++i) {
          TE_ASSIGN_OR_RETURN(AuthenticatedRead read,
                              GetAuthenticatedRead(d));
          m->entries.push_back(std::move(read));
        }
        TE_ASSIGN_OR_RETURN(m->certificate,
                            storage::BatchCertificate::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kWatchDelta:
      return Decode<WatchDeltaMsg>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->watch_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->partition, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->epoch, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->batch_id, d->GetI64());
        TE_ASSIGN_OR_RETURN(m->prev_batch_id, d->GetI64());
        TE_ASSIGN_OR_RETURN(uint32_t n, d->GetCount());
        for (uint32_t i = 0; i < n; ++i) {
          TE_ASSIGN_OR_RETURN(AuthenticatedRead read,
                              GetAuthenticatedRead(d));
          m->entries.push_back(std::move(read));
        }
        TE_ASSIGN_OR_RETURN(m->certificate,
                            storage::BatchCertificate::DecodeFrom(d));
        return Status::OK();
      });
    case MessageType::kWatchUnsubscribe:
      return Decode<WatchUnsubscribe>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->watch_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->reply_to, d->GetU32());
        return Status::OK();
      });
    case MessageType::kWatchResubscribe:
      return Decode<WatchResubscribeRequired>(&dec, [](auto* m, Decoder* d) {
        TE_ASSIGN_OR_RETURN(m->watch_id, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->partition, d->GetU32());
        TE_ASSIGN_OR_RETURN(m->epoch, d->GetU64());
        TE_ASSIGN_OR_RETURN(m->horizon, d->GetI64());
        return Status::OK();
      });
    default:
      return Status::Corruption("unknown message type " +
                                std::to_string(raw_type));
  }
}

}  // namespace transedge::wire
