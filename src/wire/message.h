#ifndef TRANSEDGE_WIRE_MESSAGE_H_
#define TRANSEDGE_WIRE_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "txn/cd_vector.h"
#include "crypto/signer.h"
#include "merkle/merkle_tree.h"
#include "sim/actor.h"
#include "storage/batch.h"
#include "txn/types.h"

namespace transedge::wire {

/// Discriminators for every message that crosses the simulated network.
enum class MessageType : uint32_t {
  // Client <-> cluster.
  kClientRead = 1,
  kClientReadReply = 2,
  kCommitRequest = 3,
  kCommitReply = 4,
  kRoRequest = 5,
  kRoReply = 6,
  kRoBatchRequest = 7,  // Second round of the read-only protocol.

  // Intra-cluster consensus (PBFT-style engine).
  kPrePrepare = 20,
  kPrepare = 21,
  kCommit = 22,
  kViewChange = 23,
  kNewView = 24,

  // Intra-cluster consensus (HotStuff-style linear-vote engine).
  kLinearPropose = 25,
  kLinearVote = 26,
  kLinearQc = 27,
  kLinearViewChange = 28,
  kLinearNewView = 29,
  kLinearCatchUp = 30,

  // Inter-cluster 2PC (leader-to-leader, each step backed by a batch
  // certificate from the sender's cluster).
  kCoordPrepare = 40,
  kPrepared = 41,
  kCommitRecord = 42,

  // Augustus baseline (locking read-only transactions).
  kAugustusRoRequest = 60,
  kAugustusVoteRequest = 61,
  kAugustusVoteReply = 62,
  kAugustusRoReply = 63,
  kAugustusRelease = 64,

  // Watch / subscription push tier (certified delta streaming).
  kWatchSubscribe = 70,
  kWatchSubscribeReply = 71,
  kWatchDelta = 72,
  kWatchUnsubscribe = 73,
  kWatchResubscribe = 74,
};

/// Human-readable message-type name for logs.
const char* MessageTypeName(MessageType type);

/// Convenience base carrying the discriminator.
template <MessageType kType>
struct TypedMessage : sim::Message {
  uint32_t type() const override { return static_cast<uint32_t>(kType); }
  static constexpr MessageType kMessageType = kType;
};

// ---------------------------------------------------------------------------
// Client <-> cluster
// ---------------------------------------------------------------------------

/// Single-key read issued while a client assembles a read-write
/// transaction (§3.2). Served by any replica from committed state.
struct ClientReadRequest : TypedMessage<MessageType::kClientRead> {
  uint64_t request_id = 0;
  sim::ActorId reply_to = 0;
  Key key;
};

struct ClientReadReply : TypedMessage<MessageType::kClientReadReply> {
  uint64_t request_id = 0;
  Key key;
  bool found = false;
  Value value;
  /// Version (batch id) the value was read at — becomes the read set's
  /// observed version for OCC validation.
  BatchId version = kNoBatch;
};

/// Commit request carrying the full read and write sets (§3.3.1).
struct CommitRequest : TypedMessage<MessageType::kCommitRequest> {
  sim::ActorId reply_to = 0;
  Transaction txn;
};

struct CommitReply : TypedMessage<MessageType::kCommitReply> {
  TxnId txn_id = 0;
  bool committed = false;
  std::string reason;
  /// Abort the client should transparently re-issue against the next
  /// leader (same transaction id; admission dedup protects the old one),
  /// e.g. a view change abandoning an undecided admission.
  bool retryable = false;
};

/// One authenticated key result inside a read-only response.
struct AuthenticatedRead {
  Key key;
  bool found = false;
  Value value;
  BatchId version = kNoBatch;
  merkle::MerkleProof proof;
};

/// Round-1 read-only request: all keys of one accessed partition
/// (§4.3.4). `commit-rot` in the paper's interface.
struct RoRequest : TypedMessage<MessageType::kRoRequest> {
  uint64_t request_id = 0;
  sim::ActorId reply_to = 0;
  std::vector<Key> keys;
};

/// Response from a single node: values + Merkle proofs, the batch
/// certificate (f+1 signatures over the root), and the read-only segment
/// metadata the dependency check needs.
struct RoReply : TypedMessage<MessageType::kRoReply> {
  uint64_t request_id = 0;
  PartitionId partition = 0;
  BatchId batch_id = kNoBatch;
  std::vector<AuthenticatedRead> entries;
  storage::BatchCertificate certificate;
  txn::CdVector cd_vector;
  BatchId lce = kNoBatch;
  int64_t timestamp_us = 0;
  /// True when this reply answers a second-round (historical) request.
  bool second_round = false;
};

/// Round-2 request: "serve me your state at the earliest batch whose LCE
/// is >= `min_lce`" — the explicit ask for a missing dependency. The
/// node parks the request until such a batch exists.
struct RoBatchRequest : TypedMessage<MessageType::kRoBatchRequest> {
  uint64_t request_id = 0;
  sim::ActorId reply_to = 0;
  std::vector<Key> keys;
  BatchId min_lce = kNoBatch;
};

// ---------------------------------------------------------------------------
// Intra-cluster consensus
// ---------------------------------------------------------------------------

/// Leader's proposal of the next batch.
struct PrePrepareMsg : TypedMessage<MessageType::kPrePrepare> {
  uint64_t view = 0;
  storage::Batch batch;
  crypto::Signature leader_signature;  // over the batch digest
  /// Leader's certificate share (counts as the leader's prepare vote).
  crypto::Signature leader_cert_share;
  /// Simulation shortcut (SystemConfig::simulate_shared_merkle): the
  /// leader's post-batch tree, shared structurally so honest followers
  /// skip re-hashing identical updates. Invalid when the shortcut is
  /// disabled.
  // check:allow(wire-parity): simulation-only shortcut, never serialized.
  merkle::MerkleTree::Snapshot post_snapshot;
};

/// Replica vote after re-validating the proposed batch. Carries the
/// replica's certificate-share signature so the cluster can assemble the
/// f+1 batch certificate.
struct PrepareMsg : TypedMessage<MessageType::kPrepare> {
  uint64_t view = 0;
  BatchId batch_id = kNoBatch;
  crypto::Digest batch_digest;
  crypto::Signature cert_share;  // over BatchCertificate::SignedPayload()
};

struct CommitMsg : TypedMessage<MessageType::kCommit> {
  uint64_t view = 0;
  BatchId batch_id = kNoBatch;
  crypto::Digest batch_digest;
};

/// Sent when a replica's progress timer fires without a decision.
struct ViewChangeMsg : TypedMessage<MessageType::kViewChange> {
  uint64_t new_view = 0;
  BatchId last_committed = kNoBatch;
  crypto::Signature signature;
};

/// New leader's announcement; re-proposals follow as ordinary
/// pre-prepares in the new view.
// check:allow(wire-parity): intra-simulation only — never serialized
// (EncodeMessage emits the bare discriminator, DecodeMessage rejects it).
struct NewViewMsg : TypedMessage<MessageType::kNewView> {
  uint64_t new_view = 0;
  std::vector<ViewChangeMsg> proof;  // 2f+1 view-change votes
};

// ---------------------------------------------------------------------------
// Intra-cluster consensus: linear-vote engine (ConsensusKind::kLinearVote)
// ---------------------------------------------------------------------------

/// Leader's proposal of the next batch (linear-vote engine). Identical
/// role to PrePrepareMsg; replicas answer with votes *to the leader*
/// instead of broadcasting, so (unlike PrePrepareMsg) no leader
/// certificate share travels — the leader seeds its own share into its
/// aggregation state locally.
struct LinearProposeMsg : TypedMessage<MessageType::kLinearPropose> {
  uint64_t view = 0;
  storage::Batch batch;
  crypto::Signature leader_signature;  // over the batch digest
  /// View-change re-proposal justification: a prepare QC for this very
  /// batch, formed in `justify_view`. A replica locked on a conflicting
  /// batch at the same id accepts the proposal only when
  /// `justify_view >= ` its lock view (two-phase HotStuff unlock rule);
  /// fresh proposals carry no justification.
  bool has_justify = false;
  uint64_t justify_view = 0;
  storage::BatchCertificate justify_cert;
  /// >= 2f+1 signatures binding the justifying QC to `justify_view`
  /// (over the view-bind payload); a leader cannot claim a newer view
  /// for the QC than the one it actually formed in.
  crypto::SignatureSet justify_view_sigs;
  /// Simulation shortcut (SystemConfig::simulate_shared_merkle); see
  /// PrePrepareMsg::post_snapshot. Not serialized.
  // check:allow(wire-parity): simulation-only shortcut, never serialized.
  merkle::MerkleTree::Snapshot post_snapshot;
};

/// Voting phases of the linear-vote engine.
inline constexpr uint32_t kLinearPhasePrepare = 0;
inline constexpr uint32_t kLinearPhaseCommit = 1;

/// Replica -> leader vote. The prepare-phase share signs
/// `BatchCertificate::SignedPayload()` — the same bytes as a PBFT
/// certificate share, so the aggregated quorum certificate doubles as
/// the client-facing batch certificate. The commit-phase share signs the
/// engine's commit-vote payload over (partition, batch id, digest).
struct LinearVoteMsg : TypedMessage<MessageType::kLinearVote> {
  uint64_t view = 0;
  BatchId batch_id = kNoBatch;
  uint32_t phase = kLinearPhasePrepare;
  crypto::Digest batch_digest;
  crypto::Signature share;
  /// Prepare phase only: signature over the view-bind payload
  /// (partition, batch id, digest, view). The leader aggregates a quorum
  /// of these into the prepare QC so the view a QC formed in is itself
  /// certified — a byzantine replica cannot inflate its lock view during
  /// a view change, and a byzantine leader cannot inflate a re-proposal
  /// justification.
  crypto::Signature view_share;
};

/// Leader -> replicas quorum certificate broadcast. `cert` is the batch
/// certificate assembled from prepare shares: the prepare QC carries
/// >= 2f+1 of them (any f+1 subset is a valid client certificate); the
/// commit QC repeats it, alongside `commit_sigs`, so a replica that
/// missed the prepare QC can still decide.
struct LinearQcMsg : TypedMessage<MessageType::kLinearQc> {
  uint64_t view = 0;
  uint32_t phase = kLinearPhasePrepare;
  storage::BatchCertificate cert;
  /// Commit phase only: >= 2f+1 signatures over the commit-vote payload.
  crypto::SignatureSet commit_sigs;
  /// Prepare phase only: >= 2f+1 signatures over the view-bind payload,
  /// certifying the view this QC formed in (see LinearVoteMsg::view_share).
  crypto::SignatureSet view_sigs;
};

/// One prepare-QC lock carried inside a view-change message: the locked
/// batch, the QC that locked it, the view the QC formed in, and the
/// quorum of view-bind signatures proving that view claim. With
/// pipelined consensus a replica may hold one lock per in-flight slot.
struct LinearLockReport {
  uint64_t view = 0;
  storage::Batch batch;
  storage::BatchCertificate cert;
  crypto::SignatureSet view_sigs;
};

/// Replica -> prospective leader of `new_view` when the progress timer
/// fires: O(n) per view change instead of PBFT's broadcast.
struct LinearViewChangeMsg : TypedMessage<MessageType::kLinearViewChange> {
  uint64_t new_view = 0;
  BatchId last_committed = kNoBatch;
  crypto::Signature signature;
  /// Lock reports for every undecided slot the sender holds a prepare QC
  /// for, in slot order. The prospective leader must re-propose, per
  /// slot, the batch of the highest-view lock among its 2f+1 view-change
  /// messages — a commit quorum in an earlier view implies 2f+1 locked
  /// replicas, so every view-change quorum contains at least one honest
  /// report of that lock and a batch decided anywhere survives the view
  /// change. The reported view must be backed by `view_sigs`; an
  /// inflated claim is dropped.
  std::vector<LinearLockReport> locks;
};

/// New leader's QC-carrying announcement: 2f+1 view-change signatures
/// prove the view change is legitimate, and every replica adopts on
/// receipt.
struct LinearNewViewMsg : TypedMessage<MessageType::kLinearNewView> {
  uint64_t new_view = 0;
  crypto::SignatureSet proof;
};

/// Decided-batch state transfer to a lagging replica. Sent by the
/// replica that receives a LinearViewChangeMsg whose `last_committed`
/// trails its own log: one message per missing log entry, carrying the
/// batch and the quorum certificate that decided it. `view`/`view_proof`
/// piggyback the sender's current view and its 2f+1 new-view proof
/// (empty at view 0) so a replica that also missed view changes can
/// adopt the current view and resume voting.
struct LinearCatchUpMsg : TypedMessage<MessageType::kLinearCatchUp> {
  storage::Batch batch;
  storage::BatchCertificate cert;
  uint64_t view = 0;
  crypto::SignatureSet view_proof;
  /// Oldest batch id the sender's log still retains (history below the
  /// snapshot horizon is truncated): a peer lagging below this cannot be
  /// caught up entry-by-entry and must recover from durable storage
  /// instead of parking on an unfillable gap.
  BatchId first_retained = 0;
};

// ---------------------------------------------------------------------------
// Inter-cluster 2PC
// ---------------------------------------------------------------------------

/// Coordinator-prepare (§3.3.2, step 3): the coordinator cluster proved
/// it prepared `txn` (certificate of the batch holding the prepare
/// record) and asks the participant to prepare too.
struct CoordPrepareMsg : TypedMessage<MessageType::kCoordPrepare> {
  Transaction txn;
  PartitionId coordinator = 0;
  storage::BatchCertificate proof;
  /// Set only by a leader resuming an inherited prepare group after a
  /// view change: participants re-report their vote from replicated
  /// state instead of treating the message as a duplicate.
  bool resend = false;
};

/// Participant's prepared message (§3.3.3, step 5): its vote, the batch
/// where its prepare record landed, the piggybacked CD vector of that
/// batch (§4.3.3(c)), and the batch certificate as proof.
struct PreparedMsg : TypedMessage<MessageType::kPrepared> {
  TxnId txn_id = 0;
  storage::PreparedInfo info;
  storage::BatchCertificate proof;
};

/// Coordinator's decision (§3.3.4, step 7), including all collected
/// prepared messages so participants can derive CD vectors.
struct CommitRecordMsg : TypedMessage<MessageType::kCommitRecord> {
  TxnId txn_id = 0;
  bool commit = false;
  std::vector<storage::PreparedInfo> participant_info;
  storage::BatchCertificate proof;
};

// ---------------------------------------------------------------------------
// Augustus baseline
// ---------------------------------------------------------------------------

/// Client -> leader: execute a locking read-only transaction on this
/// partition's keys (Augustus-style, shared locks + replica voting).
struct AugustusRoRequest : TypedMessage<MessageType::kAugustusRoRequest> {
  uint64_t request_id = 0;
  sim::ActorId reply_to = 0;
  std::vector<Key> keys;
};

/// Leader -> replicas: vote on the read snapshot.
struct AugustusVoteRequest : TypedMessage<MessageType::kAugustusVoteRequest> {
  uint64_t request_id = 0;
  std::vector<Key> keys;
  BatchId snapshot_batch = kNoBatch;
};

struct AugustusVoteReply : TypedMessage<MessageType::kAugustusVoteReply> {
  uint64_t request_id = 0;
  bool vote = true;
  crypto::Signature signature;
};

/// Leader -> client: values + 2f+1 votes.
struct AugustusRoReply : TypedMessage<MessageType::kAugustusRoReply> {
  uint64_t request_id = 0;
  PartitionId partition = 0;
  std::vector<AuthenticatedRead> entries;
  uint32_t votes = 0;
};

/// Client -> leader: release the shared locks.
struct AugustusRelease : TypedMessage<MessageType::kAugustusRelease> {
  uint64_t request_id = 0;
};

// ---------------------------------------------------------------------------
// Watch / subscription push tier
// ---------------------------------------------------------------------------

/// Client -> leader: register a key-range watch on this partition.
/// The range is lexicographic and inclusive on both ends. A fresh watch
/// (`resume_from == kNoBatch`) is answered with a certified seed of the
/// in-range keys; a resume names the last batch the watcher is current
/// through, and the leader replays the missed in-range deltas from its
/// retained window (or demands a fresh subscribe if the window rotated).
struct WatchSubscribeRequest : TypedMessage<MessageType::kWatchSubscribe> {
  uint64_t watch_id = 0;
  sim::ActorId reply_to = 0;
  Key range_lo;
  Key range_hi;
  BatchId resume_from = kNoBatch;
};

/// Leader -> watcher: subscription accepted at `batch_id` (the applied
/// head) in watch epoch `epoch`. A fresh subscribe carries `entries`:
/// every in-range key's (value, proof) at `batch_id`, verifiable against
/// `certificate.merkle_root` — the watcher's cache seed. A resume
/// (`resumed`) carries no seed; the missed deltas follow as ordinary
/// WatchDeltaMsg pushes chained from `resume_from`.
struct WatchSubscribeReply : TypedMessage<MessageType::kWatchSubscribeReply> {
  uint64_t watch_id = 0;
  PartitionId partition = 0;
  uint64_t epoch = 0;
  BatchId batch_id = kNoBatch;
  bool resumed = false;
  std::vector<AuthenticatedRead> entries;
  storage::BatchCertificate certificate;
};

/// Leader -> watcher: the writes of applied batch `batch_id` restricted
/// to the watch range, each with a Merkle proof against that batch's
/// certified root. `prev_batch_id` chains the stream — it names the last
/// batch this watch was sent (the subscribe reply's `batch_id` for the
/// first delta) — so a watcher detects gaps without trusting the server.
struct WatchDeltaMsg : TypedMessage<MessageType::kWatchDelta> {
  uint64_t watch_id = 0;
  PartitionId partition = 0;
  uint64_t epoch = 0;
  BatchId batch_id = kNoBatch;
  BatchId prev_batch_id = kNoBatch;
  std::vector<AuthenticatedRead> entries;
  storage::BatchCertificate certificate;
};

/// Client -> leader: drop the watch. No reply.
struct WatchUnsubscribe : TypedMessage<MessageType::kWatchUnsubscribe> {
  uint64_t watch_id = 0;
  sim::ActorId reply_to = 0;
};

/// Replica -> watcher: the subscription is dead — a view change rotated
/// the watch epoch, or the replay window a resume needed was truncated.
/// Explicitly retryable: resubscribe (fresh, or resuming from a batch
/// >= `horizon`) against the current leader.
struct WatchResubscribeRequired : TypedMessage<MessageType::kWatchResubscribe> {
  uint64_t watch_id = 0;
  PartitionId partition = 0;
  uint64_t epoch = 0;          // Epoch now current at the sender.
  BatchId horizon = kNoBatch;  // Oldest batch a resume could replay from.
};

}  // namespace transedge::wire

#endif  // TRANSEDGE_WIRE_MESSAGE_H_
