#include "wire/message.h"

namespace transedge::wire {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kClientRead:
      return "ClientRead";
    case MessageType::kClientReadReply:
      return "ClientReadReply";
    case MessageType::kCommitRequest:
      return "CommitRequest";
    case MessageType::kCommitReply:
      return "CommitReply";
    case MessageType::kRoRequest:
      return "RoRequest";
    case MessageType::kRoReply:
      return "RoReply";
    case MessageType::kRoBatchRequest:
      return "RoBatchRequest";
    case MessageType::kPrePrepare:
      return "PrePrepare";
    case MessageType::kPrepare:
      return "Prepare";
    case MessageType::kCommit:
      return "Commit";
    case MessageType::kViewChange:
      return "ViewChange";
    case MessageType::kNewView:
      return "NewView";
    case MessageType::kLinearPropose:
      return "LinearPropose";
    case MessageType::kLinearVote:
      return "LinearVote";
    case MessageType::kLinearQc:
      return "LinearQc";
    case MessageType::kLinearViewChange:
      return "LinearViewChange";
    case MessageType::kLinearNewView:
      return "LinearNewView";
    case MessageType::kLinearCatchUp:
      return "LinearCatchUp";
    case MessageType::kCoordPrepare:
      return "CoordPrepare";
    case MessageType::kPrepared:
      return "Prepared";
    case MessageType::kCommitRecord:
      return "CommitRecord";
    case MessageType::kAugustusRoRequest:
      return "AugustusRoRequest";
    case MessageType::kAugustusVoteRequest:
      return "AugustusVoteRequest";
    case MessageType::kAugustusVoteReply:
      return "AugustusVoteReply";
    case MessageType::kAugustusRoReply:
      return "AugustusRoReply";
    case MessageType::kAugustusRelease:
      return "AugustusRelease";
    case MessageType::kWatchSubscribe:
      return "WatchSubscribe";
    case MessageType::kWatchSubscribeReply:
      return "WatchSubscribeReply";
    case MessageType::kWatchDelta:
      return "WatchDelta";
    case MessageType::kWatchUnsubscribe:
      return "WatchUnsubscribe";
    case MessageType::kWatchResubscribe:
      return "WatchResubscribeRequired";
  }
  return "Unknown";
}

}  // namespace transedge::wire
