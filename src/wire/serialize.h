#ifndef TRANSEDGE_WIRE_SERIALIZE_H_
#define TRANSEDGE_WIRE_SERIALIZE_H_

#include "wire/message.h"

namespace transedge::wire {

/// Binary serialization for every protocol message.
///
/// The simulator delivers typed message objects (no marshalling cost on
/// the host), but the wire format is fully defined so that (a) the
/// crypto layer signs exactly the bytes that would travel, (b) a socket
/// transport can be swapped in behind `sim::Network`, and (c) fuzz tests
/// can hammer the decoders. Each message encodes as:
///
///     u32 message-type | body
///
/// `EncodeMessage` dispatches on the runtime type; `DecodeMessage`
/// reconstructs the typed object. PrePrepareMsg's `post_snapshot` is a
/// simulation-only shortcut and deliberately does not serialize (a real
/// deployment recomputes the tree, which is the default code path).
Bytes EncodeMessage(const sim::Message& msg);

/// Decodes a message produced by EncodeMessage. Corruption on any
/// truncated or malformed input, never undefined behaviour.
Result<sim::MessagePtr> DecodeMessage(const Bytes& buffer);

// Per-type body codecs (exposed for targeted tests).
void EncodeBody(const ClientReadRequest& msg, Encoder* enc);
void EncodeBody(const ClientReadReply& msg, Encoder* enc);
void EncodeBody(const CommitRequest& msg, Encoder* enc);
void EncodeBody(const CommitReply& msg, Encoder* enc);
void EncodeBody(const RoRequest& msg, Encoder* enc);
void EncodeBody(const RoReply& msg, Encoder* enc);
void EncodeBody(const RoBatchRequest& msg, Encoder* enc);
void EncodeBody(const PrePrepareMsg& msg, Encoder* enc);
void EncodeBody(const PrepareMsg& msg, Encoder* enc);
void EncodeBody(const CommitMsg& msg, Encoder* enc);
void EncodeBody(const ViewChangeMsg& msg, Encoder* enc);
void EncodeBody(const LinearProposeMsg& msg, Encoder* enc);
void EncodeBody(const LinearVoteMsg& msg, Encoder* enc);
void EncodeBody(const LinearQcMsg& msg, Encoder* enc);
void EncodeBody(const LinearViewChangeMsg& msg, Encoder* enc);
void EncodeBody(const LinearNewViewMsg& msg, Encoder* enc);
void EncodeBody(const LinearCatchUpMsg& msg, Encoder* enc);
void EncodeBody(const CoordPrepareMsg& msg, Encoder* enc);
void EncodeBody(const PreparedMsg& msg, Encoder* enc);
void EncodeBody(const CommitRecordMsg& msg, Encoder* enc);
void EncodeBody(const AugustusRoRequest& msg, Encoder* enc);
void EncodeBody(const AugustusVoteRequest& msg, Encoder* enc);
void EncodeBody(const AugustusVoteReply& msg, Encoder* enc);
void EncodeBody(const AugustusRoReply& msg, Encoder* enc);
void EncodeBody(const AugustusRelease& msg, Encoder* enc);
void EncodeBody(const WatchSubscribeRequest& msg, Encoder* enc);
void EncodeBody(const WatchSubscribeReply& msg, Encoder* enc);
void EncodeBody(const WatchDeltaMsg& msg, Encoder* enc);
void EncodeBody(const WatchUnsubscribe& msg, Encoder* enc);
void EncodeBody(const WatchResubscribeRequired& msg, Encoder* enc);

}  // namespace transedge::wire

#endif  // TRANSEDGE_WIRE_SERIALIZE_H_
