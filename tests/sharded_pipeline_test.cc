// Sharded batch pipeline: the shard router, cross-shard conflict
// detection, and the headline invariant — the committed store state is
// identical for every shard count (the sharded leader merges per-shard
// admission segments into ordinary batches, so sharding must never
// change what commits).

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/sharded_pipeline.h"
#include "core/system.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using core::RwResult;
using core::ShardKeyRouter;
using core::ShardRouterKind;
using core::System;
using core::SystemConfig;

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

TEST(ShardKeyRouterTest, SingleShardRoutesEverythingToZero) {
  ShardKeyRouter router(1, ShardRouterKind::kHash);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(router.ShardOf("key-" + std::to_string(i)), 0u);
  }
}

TEST(ShardKeyRouterTest, BothPoliciesAreDeterministicAndInRange) {
  for (ShardRouterKind kind :
       {ShardRouterKind::kHash, ShardRouterKind::kRange}) {
    ShardKeyRouter router(4, kind);
    for (int i = 0; i < 500; ++i) {
      Key key = "k" + std::to_string(i);
      uint32_t shard = router.ShardOf(key);
      EXPECT_LT(shard, 4u);
      EXPECT_EQ(router.ShardOf(key), shard);  // Stable.
    }
  }
}

TEST(ShardKeyRouterTest, BothPoliciesSpreadKeysAcrossAllShards) {
  for (ShardRouterKind kind :
       {ShardRouterKind::kHash, ShardRouterKind::kRange}) {
    ShardKeyRouter router(8, kind);
    std::set<uint32_t> hit;
    for (int i = 0; i < 2000; ++i) {
      hit.insert(router.ShardOf("k" + std::to_string(i)));
    }
    EXPECT_EQ(hit.size(), 8u) << "router kind " << static_cast<int>(kind);
  }
}

// ---------------------------------------------------------------------------
// Shard-count invariance of the committed state
// ---------------------------------------------------------------------------

SystemConfig SmallConfig(uint32_t shards, ShardRouterKind kind) {
  SystemConfig config;
  config.num_partitions = 2;
  config.f = 1;
  config.batch_interval = sim::Millis(5);
  config.merkle_depth = 10;
  config.pipeline_shards = shards;
  config.pipeline_shard_router = kind;
  return config;
}

sim::EnvironmentOptions FastEnv() {
  sim::EnvironmentOptions opts;
  opts.seed = 11;
  opts.inter_site_latency = sim::Millis(2);
  return opts;
}

std::vector<std::pair<Key, Value>> TestData(uint32_t partitions) {
  workload::WorkloadOptions wopts;
  wopts.num_keys = 400;
  wopts.value_size = 16;
  return workload::KeySpace(wopts, partitions).InitialData();
}

/// Drives one deterministic mixed workload — concurrent disjoint local
/// writers, a sequential read-modify-write chain on one contended key,
/// and distributed cross-partition writers — and returns the final
/// committed value of every key the workload touched, read directly from
/// every replica's store (asserting the replicas of a cluster agree).
std::map<Key, std::string> RunWorkload(uint32_t shards,
                                       ShardRouterKind kind) {
  SystemConfig config = SmallConfig(shards, kind);
  System system(config, FastEnv());
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();

  storage::PartitionMap pmap(config.num_partitions);
  std::vector<Key> part0_keys, part1_keys;
  for (const auto& [key, value] : data) {
    (pmap.OwnerOf(key) == 0 ? part0_keys : part1_keys).push_back(key);
  }
  // The workload below needs 3 concurrent writers x 4 keys, one
  // contended key, and 3 distributed pairs per partition.
  if (part0_keys.size() < 16 || part1_keys.size() < 16) {
    ADD_FAILURE() << "key space too small for the workload";
    return {};
  }
  std::vector<Key> touched;

  int pending = 0;
  auto done = [&](RwResult r) {
    EXPECT_TRUE(r.committed) << r.reason;
    --pending;
  };

  // (a) Concurrent disjoint local writers on partition 0.
  for (int c = 0; c < 3; ++c) {
    Client* client = system.AddClient();
    system.env().Schedule(sim::Millis(20), [&, client, c] {
      for (int i = 0; i < 4; ++i) {
        Key key = part0_keys[static_cast<size_t>(c * 4 + i)];
        touched.push_back(key);
        ++pending;
        client->ExecuteReadWrite(
            {}, {WriteOp{key, ToBytes("w" + std::to_string(c * 4 + i))}},
            done);
      }
    });
  }

  // (b) Sequential read-modify-write chain on one contended key. The
  // chain closure must outlive the whole run (commit callbacks re-enter
  // it), so it lives at function scope, not in the scheduling block.
  auto chain = std::make_shared<std::function<void(int)>>();
  {
    Client* client = system.AddClient();
    Key hot = part0_keys[12];
    touched.push_back(hot);
    auto* chain_fn = chain.get();
    *chain = [&, client, hot, chain_fn](int step) {
      if (step >= 5) return;
      ++pending;
      client->ExecuteReadWrite(
          {hot}, {WriteOp{hot, ToBytes("chain" + std::to_string(step))}},
          [&, chain_fn, step](RwResult r) {
            EXPECT_TRUE(r.committed) << r.reason;
            --pending;
            (*chain_fn)(step + 1);
          });
    };
    system.env().Schedule(sim::Millis(20), [chain] { (*chain)(0); });
  }

  // (c) Distributed writers over disjoint cross-partition pairs.
  for (int c = 0; c < 3; ++c) {
    Client* client = system.AddClient();
    Key a = part0_keys[static_cast<size_t>(13 + c)];
    Key b = part1_keys[static_cast<size_t>(c)];
    touched.push_back(a);
    touched.push_back(b);
    system.env().Schedule(sim::Millis(25), [&, client, a, b, c] {
      ++pending;
      client->ExecuteReadWrite(
          {}, {WriteOp{a, ToBytes("d" + std::to_string(c))},
               WriteOp{b, ToBytes("d" + std::to_string(c))}},
          done);
    });
  }

  system.env().RunUntil(sim::Seconds(5));
  EXPECT_EQ(pending, 0) << "workload did not drain at " << shards
                        << " shard(s)";

  // Collect the final committed state and check replica agreement.
  std::map<Key, std::string> state;
  for (const Key& key : touched) {
    PartitionId p = pmap.OwnerOf(key);
    auto value = system.node(p, 0)->store().Get(key);
    EXPECT_TRUE(value.ok()) << key;
    if (!value.ok()) continue;
    state[key] = ToString(value->value);
    for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
      auto other = system.node(p, i)->store().Get(key);
      EXPECT_TRUE(other.ok()) << key;
      if (!other.ok()) continue;
      EXPECT_EQ(ToString(other->value), state[key])
          << "replica " << i << " diverges on " << key;
    }
  }
  return state;
}

class ShardInvarianceTest
    : public ::testing::TestWithParam<ShardRouterKind> {};

TEST_P(ShardInvarianceTest, CommittedStateIsIdenticalForEveryShardCount) {
  std::map<Key, std::string> reference = RunWorkload(1, GetParam());
  ASSERT_FALSE(reference.empty());
  for (uint32_t shards : {2u, 3u, 4u, 8u}) {
    std::map<Key, std::string> state = RunWorkload(shards, GetParam());
    EXPECT_EQ(state, reference) << "state diverged at " << shards
                                << " shards";
  }
}

INSTANTIATE_TEST_SUITE_P(Routers, ShardInvarianceTest,
                         ::testing::Values(ShardRouterKind::kHash,
                                           ShardRouterKind::kRange));

// ---------------------------------------------------------------------------
// Cross-shard conflict detection
// ---------------------------------------------------------------------------

// Two transactions whose footprints overlap on one key but are homed on
// different shards must still conflict: the second admission footprint-
// checks every shard its keys route to, not just its home shard.
TEST(ShardedPipelineTest, CrossShardConflictsAreDetected) {
  SystemConfig config = SmallConfig(4, ShardRouterKind::kHash);
  System system(config, FastEnv());
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();

  // Find partition-0 keys on three distinct shards: the contended key k,
  // plus fillers a and b homed below and above k's shard respectively.
  ShardKeyRouter router(config.pipeline_shards, config.pipeline_shard_router);
  storage::PartitionMap pmap(config.num_partitions);
  std::map<uint32_t, std::vector<Key>> by_shard;
  for (const auto& [key, value] : data) {
    if (pmap.OwnerOf(key) == 0) by_shard[router.ShardOf(key)].push_back(key);
  }
  ASSERT_GE(by_shard.size(), 3u);
  auto it = by_shard.begin();
  Key a = it->second.front();          // Lowest shard -> txn1's home.
  Key k = (++it)->second.front();      // Middle shard -> the conflict key.
  Key b = (++it)->second.front();      // Higher shard -> txn2 homed at k's
                                       // shard, txn1 at a's.
  std::optional<RwResult> r1, r2;
  Client* c1 = system.AddClient();
  Client* c2 = system.AddClient();
  system.env().Schedule(sim::Millis(20), [&] {
    c1->ExecuteReadWrite({}, {WriteOp{a, ToBytes("t1")},
                              WriteOp{k, ToBytes("t1")}},
                         [&](RwResult r) { r1 = std::move(r); });
    c2->ExecuteReadWrite({}, {WriteOp{k, ToBytes("t2")},
                              WriteOp{b, ToBytes("t2")}},
                         [&](RwResult r) { r2 = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(2));

  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  // Issued back-to-back into the same in-progress batch: exactly one
  // passes admission, the other conflicts on k across shard boundaries.
  EXPECT_NE(r1->committed, r2->committed)
      << "r1: " << r1->reason << ", r2: " << r2->reason;
  const RwResult& aborted = r1->committed ? *r2 : *r1;
  EXPECT_NE(aborted.reason.find("conflict"), std::string::npos)
      << aborted.reason;
}

// After the conflicting batch applies, the footprints of both the home
// slice and the peer slices must drain so the key becomes writable again.
TEST(ShardedPipelineTest, CrossShardFootprintsDrainAfterApply) {
  SystemConfig config = SmallConfig(4, ShardRouterKind::kHash);
  System system(config, FastEnv());
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();

  storage::PartitionMap pmap(config.num_partitions);
  std::vector<Key> keys;
  for (const auto& [key, value] : data) {
    if (pmap.OwnerOf(key) == 0) keys.push_back(key);
    if (keys.size() == 4) break;
  }
  ASSERT_EQ(keys.size(), 4u);

  Client* client = system.AddClient();
  std::optional<RwResult> first, second;
  system.env().Schedule(sim::Millis(20), [&] {
    // A multi-key write whose footprint spans several shards...
    client->ExecuteReadWrite({}, {WriteOp{keys[0], ToBytes("v1")},
                                  WriteOp{keys[1], ToBytes("v1")},
                                  WriteOp{keys[2], ToBytes("v1")},
                                  WriteOp{keys[3], ToBytes("v1")}},
                             [&](RwResult r) {
                               first = std::move(r);
                               // ...then, after it applied, the exact
                               // same footprint again.
                               client->ExecuteReadWrite(
                                   {}, {WriteOp{keys[0], ToBytes("v2")},
                                        WriteOp{keys[1], ToBytes("v2")},
                                        WriteOp{keys[2], ToBytes("v2")},
                                        WriteOp{keys[3], ToBytes("v2")}},
                                   [&](RwResult r2) {
                                     second = std::move(r2);
                                   });
                             });
  });
  system.env().RunUntil(sim::Seconds(2));

  ASSERT_TRUE(first.has_value());
  EXPECT_TRUE(first->committed) << first->reason;
  ASSERT_TRUE(second.has_value());
  EXPECT_TRUE(second->committed) << second->reason;
  EXPECT_EQ(ToString(system.node(0, 0)->store().Get(keys[0])->value), "v2");
  // Nothing in progress and the dedup set fully drained on the leader.
  EXPECT_EQ(system.leader(0)->in_progress_size(), 0u);
  EXPECT_EQ(system.leader(0)->seen_txn_count(), 0u);
}

}  // namespace
}  // namespace transedge
