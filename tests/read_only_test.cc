// Read-only protocol tests: Algorithm 2 (dependency verification), the
// targeted second round, Merkle-authenticated responses, parked requests,
// and the two-round guarantee (Theorem 4.6).

#include <gtest/gtest.h>

#include <optional>

#include "core/system.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using txn::ComputeUnsatisfiedDependencies;
using txn::RoPartitionView;
using core::RoResult;
using core::RwResult;
using core::System;
using core::SystemConfig;

// --- Algorithm 2 at the unit level -------------------------------------------

txn::CdVector Cd(std::vector<BatchId> entries) {
  txn::CdVector v(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    v.Set(static_cast<PartitionId>(i), entries[i]);
  }
  return v;
}

TEST(Algorithm2Test, ConsistentSnapshotHasNoMissingDeps) {
  std::map<PartitionId, RoPartitionView> views;
  views[0] = {Cd({4, 2, kNoBatch}), 3};
  views[1] = {Cd({kNoBatch, 5, kNoBatch}), 2};
  views[2] = {Cd({kNoBatch, kNoBatch, 9}), 1};
  // 0 depends on 1 up to batch 2; 1's LCE is 2 -> satisfied.
  EXPECT_TRUE(ComputeUnsatisfiedDependencies(views).empty());
}

TEST(Algorithm2Test, DetectsTheFigure1Inconsistency) {
  // The paper's motivating example: t_r read X at batch 4 (which depends
  // on Y's prepare batch 4) but read Y at a state whose LCE is only 2.
  std::map<PartitionId, RoPartitionView> views;
  views[0] = {Cd({4, 4}), 2};       // X: CD says "Y up to 4".
  views[1] = {Cd({kNoBatch, 2}), 2};  // Y: LCE 2 < 4 -> unsatisfied.
  auto needed = ComputeUnsatisfiedDependencies(views);
  ASSERT_EQ(needed.size(), 1u);
  EXPECT_EQ(needed.begin()->first, 1u);
  EXPECT_EQ(needed.begin()->second, 4);
}

TEST(Algorithm2Test, TakesMaxOverDemandingPartitions) {
  std::map<PartitionId, RoPartitionView> views;
  views[0] = {Cd({0, 7, kNoBatch}), 10};
  views[1] = {Cd({kNoBatch, 1, kNoBatch}), 2};
  views[2] = {Cd({kNoBatch, 9, 0}), 10};
  auto needed = ComputeUnsatisfiedDependencies(views);
  ASSERT_EQ(needed.size(), 1u);
  EXPECT_EQ(needed[1], 9);  // max(7, 9)
}

TEST(Algorithm2Test, EqualLceSatisfiesDependency) {
  std::map<PartitionId, RoPartitionView> views;
  views[0] = {Cd({0, 6}), 0};
  views[1] = {Cd({kNoBatch, 6}), 6};  // LCE == dep -> satisfied.
  EXPECT_TRUE(ComputeUnsatisfiedDependencies(views).empty());
}

TEST(Algorithm2Test, NoDependencyEntriesMeanNoWork) {
  std::map<PartitionId, RoPartitionView> views;
  views[0] = {Cd({3, kNoBatch}), kNoBatch};
  views[1] = {Cd({kNoBatch, 5}), kNoBatch};
  EXPECT_TRUE(ComputeUnsatisfiedDependencies(views).empty());
}

// --- End-to-end ----------------------------------------------------------------

struct Fixture {
  SystemConfig config;
  sim::EnvironmentOptions env_opts;
  std::unique_ptr<System> system;
  std::vector<std::pair<Key, Value>> data;
  storage::PartitionMap pmap;

  explicit Fixture(uint64_t seed = 21,
                   sim::Time cross_latency = sim::Millis(1),
                   bool strict_ro = false)
      : pmap(3) {
    config.num_partitions = 3;
    config.f = 1;
    config.batch_interval = sim::Millis(5);
    config.merkle_depth = 8;
    config.strict_ro_rounds = strict_ro;
    env_opts.seed = seed;
    env_opts.inter_site_latency = cross_latency;
    system = std::make_unique<System>(config, env_opts);
    workload::WorkloadOptions wopts;
    wopts.num_keys = 300;
    wopts.value_size = 8;
    data = workload::KeySpace(wopts, 3).InitialData();
    system->Preload(data);
    system->Start();
  }

  Key KeyIn(PartitionId p, size_t skip = 0) {
    for (const auto& [key, value] : data) {
      if (pmap.OwnerOf(key) == p) {
        if (skip == 0) return key;
        --skip;
      }
    }
    ADD_FAILURE() << "no key in partition " << p;
    return "";
  }
};

TEST(ReadOnlyTest, PairedWritesAreNeverTornAcrossPartitions) {
  // The Figure 1 invariant, live: distributed transactions write matching
  // values to (x in X, y in Y); every read-only transaction must observe
  // x == y, whatever interleaving occurs. This is exactly the anomaly
  // Merkle trees alone cannot prevent and CD vectors do.
  Fixture fx(/*seed=*/31, /*cross_latency=*/sim::Millis(8));
  Key kx = fx.KeyIn(0), ky = fx.KeyIn(1);
  Client* writer = fx.system->AddClient();
  Client* reader = fx.system->AddClient();

  // Writer: continuous stream of paired writes v1, v2, ...
  int version = 0;
  std::function<void()> write_next = [&] {
    if (fx.system->env().now() > sim::Seconds(4)) return;
    ++version;
    std::string v = "v" + std::to_string(version);
    writer->ExecuteReadWrite(
        {}, {WriteOp{kx, ToBytes(v)}, WriteOp{ky, ToBytes(v)}},
        [&](RwResult) { write_next(); });
  };

  // Reader: continuous read-only transactions over {x, y}. Before the
  // first paired write commits, both keys still hold their (different)
  // preload values; the invariant applies once versioned values ("v...")
  // appear on either key.
  int reads = 0, two_rounds = 0;
  std::function<void()> read_next = [&] {
    if (fx.system->env().now() > sim::Seconds(4)) return;
    reader->ExecuteReadOnly({kx, ky}, [&](RoResult r) {
      ASSERT_TRUE(r.status.ok()) << r.status;
      ASSERT_TRUE(r.values[kx].has_value());
      ASSERT_TRUE(r.values[ky].has_value());
      std::string x = ToString(*r.values[kx]);
      std::string y = ToString(*r.values[ky]);
      if (x.starts_with("v") || y.starts_with("v")) {
        EXPECT_EQ(x, y) << "torn read at simulated time "
                        << fx.system->env().now();
      }
      EXPECT_FALSE(r.needed_third_round);
      ++reads;
      if (r.rounds > 1) ++two_rounds;
      read_next();
    });
  };

  fx.system->env().Schedule(sim::Millis(30), [&] {
    write_next();
    read_next();
  });
  fx.system->env().RunUntil(sim::Seconds(8));

  EXPECT_GT(version, 20);
  EXPECT_GT(reads, 20);
  // With 8 ms between clusters, the commit-record propagation window is
  // wide enough that some reads needed the second round.
  EXPECT_GT(two_rounds, 0) << "expected at least one two-round read";
}

TEST(ReadOnlyTest, SecondRoundRepliesAreFlaggedAndServeHistoricalState) {
  Fixture fx(/*seed=*/33, /*cross_latency=*/sim::Millis(8));
  Key kx = fx.KeyIn(0), ky = fx.KeyIn(1);
  Client* client = fx.system->AddClient();

  std::optional<RoResult> ro;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite(
        {}, {WriteOp{kx, ToBytes("n")}, WriteOp{ky, ToBytes("n")}},
        [&](RwResult r) {
          ASSERT_TRUE(r.committed);
          // Fire the read immediately: the coordinator committed but the
          // participant has not — prime round-2 territory.
          client->ExecuteReadOnly({kx, ky},
                                  [&](RoResult r2) { ro = std::move(r2); });
        });
  });
  fx.system->env().RunUntil(sim::Seconds(6));

  ASSERT_TRUE(ro.has_value());
  ASSERT_TRUE(ro->status.ok()) << ro->status;
  EXPECT_EQ(ToString(*ro->values[kx]), ToString(*ro->values[ky]));
  EXPECT_FALSE(ro->needed_third_round);
}

// Runs overlapping paired writers plus a multi-partition reader; returns
// (reads completed, reader stats).
int RunCrossGroupLoad(Fixture& fx, Client* reader, int* max_rounds) {
  std::vector<Client*> writers;
  for (int i = 0; i < 4; ++i) writers.push_back(fx.system->AddClient());

  // The `loops` vector owns the loop closures until RunUntil below
  // returns; the closures themselves hold only raw self-pointers (a
  // self-owning shared_ptr capture would be a leaked cycle).
  std::vector<std::shared_ptr<std::function<void()>>> loops;
  for (size_t w = 0; w < writers.size(); ++w) {
    auto loop = std::make_shared<std::function<void()>>();
    loops.push_back(loop);
    auto* loop_fn = loop.get();
    *loop = [&fx, w, loop_fn, writers] {
      if (fx.system->env().now() > sim::Seconds(4)) return;
      Key a = fx.KeyIn(static_cast<PartitionId>(w % 3), w);
      Key b = fx.KeyIn(static_cast<PartitionId>((w + 1) % 3), w);
      writers[w]->ExecuteReadWrite(
          {}, {WriteOp{a, ToBytes("x")}, WriteOp{b, ToBytes("x")}},
          [loop_fn](RwResult) { (*loop_fn)(); });
    };
    fx.system->env().Schedule(sim::Millis(30), *loop);
  }

  auto completed = std::make_shared<int>(0);
  auto read_loop = std::make_shared<std::function<void()>>();
  auto* read_fn = read_loop.get();
  *read_loop = [&fx, reader, completed, max_rounds, read_fn] {
    if (fx.system->env().now() > sim::Seconds(4)) return;
    std::vector<Key> keys{fx.KeyIn(0), fx.KeyIn(1), fx.KeyIn(2)};
    reader->ExecuteReadOnly(keys, [completed, max_rounds,
                                   read_fn](RoResult r) {
      ASSERT_TRUE(r.status.ok()) << r.status;
      *max_rounds = std::max(*max_rounds, r.rounds);
      ++*completed;
      (*read_fn)();
    });
  };
  fx.system->env().Schedule(sim::Millis(40), *read_loop);
  fx.system->env().RunUntil(sim::Seconds(8));
  return *completed;
}

TEST(ReadOnlyTest, PaperModeTerminatesAfterTwoRounds) {
  // The paper's protocol: at most two rounds, always (Theorem 4.6). The
  // residual-dependency diagnostic may fire under cross-group commits —
  // the corner DESIGN.md §4 documents — but must stay rare.
  Fixture fx(/*seed=*/35, /*cross_latency=*/sim::Millis(6));
  Client* reader = fx.system->AddClient();
  int max_rounds = 0;
  int completed = RunCrossGroupLoad(fx, reader, &max_rounds);

  EXPECT_GT(completed, 10);
  EXPECT_LE(max_rounds, 2);
  // The residual corner is rare: well under 10% of reads.
  EXPECT_LE(reader->stats().ro_third_round_would_be_needed,
            static_cast<uint64_t>(completed) / 10);
}

TEST(ReadOnlyTest, StrictModeSettlesToConsistency) {
  // Strict mode (an extension over the paper): keep issuing targeted
  // rounds until Algorithm 2 passes. Always settles within a few rounds
  // and never reports residual dependencies.
  Fixture fx(/*seed=*/35, /*cross_latency=*/sim::Millis(6),
             /*strict_ro=*/true);
  Client* reader = fx.system->AddClient();
  int max_rounds = 0;
  int completed = RunCrossGroupLoad(fx, reader, &max_rounds);

  EXPECT_GT(completed, 10);
  EXPECT_LE(max_rounds, fx.config.max_ro_rounds);
  EXPECT_EQ(reader->stats().ro_third_round_would_be_needed, 0u);
}

TEST(ReadOnlyTest, CommitFreedomOnlyLeadersAnswer) {
  // Commit-freedom: a read-only transaction touches one node per
  // accessed partition and runs no consensus. We check that serving a
  // read-only burst creates no new batches beyond background cadence.
  Fixture fx;
  Client* client = fx.system->AddClient();
  fx.system->env().RunUntil(sim::Millis(100));
  uint64_t batches_before = fx.system->TotalBatches();

  int completed = 0;
  fx.system->env().Schedule(sim::Millis(5), [&] {
    for (int i = 0; i < 50; ++i) {
      client->ExecuteReadOnly({fx.KeyIn(0), fx.KeyIn(1), fx.KeyIn(2)},
                              [&](RoResult r) {
                                ASSERT_TRUE(r.status.ok());
                                ++completed;
                              });
    }
  });
  fx.system->env().RunUntil(sim::Seconds(2));
  EXPECT_EQ(completed, 50);
  // No read-only transaction produced a batch: the log only advances if
  // read-write work arrives (it did not).
  EXPECT_EQ(fx.system->TotalBatches(), batches_before);
}

TEST(ReadOnlyTest, ValuesMatchVersionedStoreState) {
  Fixture fx;
  Client* client = fx.system->AddClient();
  Key k = fx.KeyIn(2);

  std::optional<RoResult> ro;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadOnly({k}, [&](RoResult r) { ro = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(2));
  ASSERT_TRUE(ro.has_value());
  ASSERT_TRUE(ro->status.ok());
  auto stored = fx.system->node(2, 0)->store().Get(k);
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*ro->values[k], stored->value);
}

TEST(ReadOnlyTest, AbsentKeyComesBackVerifiedAbsent) {
  Fixture fx;
  Client* client = fx.system->AddClient();

  std::optional<RoResult> ro;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadOnly({"never-written-key"},
                            [&](RoResult r) { ro = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(2));
  ASSERT_TRUE(ro.has_value());
  ASSERT_TRUE(ro->status.ok()) << ro->status;  // Absence proof verified.
  ASSERT_TRUE(ro->values.count("never-written-key") > 0);
  EXPECT_FALSE(ro->values["never-written-key"].has_value());
}

TEST(ReadOnlyTest, NonInterferenceWithWriters) {
  // TransEdge read-only transactions must not abort writers (Table 1's
  // TransEdge row is all zeros).
  Fixture fx;
  Client* reader = fx.system->AddClient();
  Client* writer = fx.system->AddClient();
  Key k = fx.KeyIn(0);

  int writes_committed = 0, writes_aborted = 0, reads_done = 0;
  // Both loop objects outlive the run; closures capture raw
  // self-pointers to avoid a leaked shared_ptr cycle.
  auto write_loop = std::make_shared<std::function<void()>>();
  auto* write_fn = write_loop.get();
  *write_loop = [&, write_fn] {
    if (fx.system->env().now() > sim::Seconds(3)) return;
    writer->ExecuteReadWrite({}, {WriteOp{k, ToBytes("w")}},
                             [&, write_fn](RwResult r) {
                               r.committed ? ++writes_committed
                                           : ++writes_aborted;
                               (*write_fn)();
                             });
  };
  auto read_loop = std::make_shared<std::function<void()>>();
  auto* read_fn = read_loop.get();
  *read_loop = [&, read_fn] {
    if (fx.system->env().now() > sim::Seconds(3)) return;
    reader->ExecuteReadOnly({k}, [&, read_fn](RoResult r) {
      ASSERT_TRUE(r.status.ok());
      ++reads_done;
      (*read_fn)();
    });
  };
  fx.system->env().Schedule(sim::Millis(30), [&] {
    (*write_loop)();
    (*read_loop)();
  });
  fx.system->env().RunUntil(sim::Seconds(6));

  EXPECT_GT(writes_committed, 50);
  EXPECT_GT(reads_done, 50);
  EXPECT_EQ(writes_aborted, 0);  // Reads never blocked or aborted writes.
  EXPECT_EQ(fx.system->TotalRwAbortedByRoLocks(), 0u);
}

// Property sweep over seeds: the paired-write invariant holds for any
// interleaving the simulator produces.
class RoConsistencySeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoConsistencySeedTest, PairedWritesConsistentUnderSeed) {
  Fixture fx(GetParam(), sim::Millis(4));
  Key kx = fx.KeyIn(0, 3), ky = fx.KeyIn(2, 3);
  Client* writer = fx.system->AddClient();
  Client* reader = fx.system->AddClient();

  int version = 0, reads = 0;
  // Raw self-pointers instead of self-owning captures (leak-free).
  auto write_loop = std::make_shared<std::function<void()>>();
  auto* write_fn = write_loop.get();
  *write_loop = [&, write_fn] {
    if (fx.system->env().now() > sim::Seconds(2)) return;
    std::string v = "v" + std::to_string(++version);
    writer->ExecuteReadWrite(
        {}, {WriteOp{kx, ToBytes(v)}, WriteOp{ky, ToBytes(v)}},
        [write_fn](RwResult) { (*write_fn)(); });
  };
  auto read_loop = std::make_shared<std::function<void()>>();
  auto* read_fn = read_loop.get();
  *read_loop = [&, read_fn] {
    if (fx.system->env().now() > sim::Seconds(2)) return;
    reader->ExecuteReadOnly({kx, ky}, [&, read_fn](RoResult r) {
      ASSERT_TRUE(r.status.ok());
      std::string x = ToString(*r.values[kx]);
      std::string y = ToString(*r.values[ky]);
      if (x.starts_with("v") || y.starts_with("v")) {
        EXPECT_EQ(x, y);
      }
      EXPECT_FALSE(r.needed_third_round);
      ++reads;
      (*read_loop)();
    });
  };
  fx.system->env().Schedule(sim::Millis(30), [&] {
    (*write_loop)();
    (*read_loop)();
  });
  fx.system->env().RunUntil(sim::Seconds(5));
  EXPECT_GT(reads, 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoConsistencySeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace transedge
