// Whole-stack smoke tests: build a full deployment, run transactions end
// to end through consensus, 2PC, and the read-only protocol.

#include <gtest/gtest.h>

#include <optional>

#include "core/system.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using core::RoResult;
using core::RwResult;
using core::System;
using core::SystemConfig;

SystemConfig SmallConfig() {
  SystemConfig config;
  config.num_partitions = 3;
  config.f = 1;  // 4 replicas per cluster.
  config.batch_interval = sim::Millis(5);
  config.merkle_depth = 10;
  return config;
}

sim::EnvironmentOptions FastEnv() {
  sim::EnvironmentOptions opts;
  opts.seed = 7;
  opts.inter_site_latency = sim::Millis(2);
  return opts;
}

std::vector<std::pair<Key, Value>> TestData(uint32_t partitions,
                                            uint64_t num_keys = 300) {
  workload::WorkloadOptions wopts;
  wopts.num_keys = num_keys;
  wopts.value_size = 16;
  workload::KeySpace keys(wopts, partitions);
  return keys.InitialData();
}

TEST(SystemSmokeTest, GenesisBatchesCertifyPreload) {
  SystemConfig config = SmallConfig();
  System system(config, FastEnv());
  system.Preload(TestData(config.num_partitions));
  system.Start();
  system.env().RunUntil(sim::Millis(200));

  for (PartitionId p = 0; p < config.num_partitions; ++p) {
    for (uint32_t i = 0; i < config.replicas_per_cluster(); ++i) {
      const auto& log = system.node(p, i)->log();
      ASSERT_GE(log.size(), 1u) << "partition " << p << " replica " << i;
      // Every replica of a cluster agrees on the genesis batch.
      EXPECT_EQ(log.Get(0).value()->batch.ro.merkle_root,
                system.node(p, 0)->log().Get(0).value()->batch.ro.merkle_root);
    }
  }
}

TEST(SystemSmokeTest, LocalTransactionCommits) {
  SystemConfig config = SmallConfig();
  System system(config, FastEnv());
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();
  Client* client = system.AddClient();

  // Pick two keys from partition 0.
  storage::PartitionMap pmap(config.num_partitions);
  std::vector<Key> part0_keys;
  for (const auto& [key, value] : data) {
    if (pmap.OwnerOf(key) == 0) part0_keys.push_back(key);
    if (part0_keys.size() == 2) break;
  }
  ASSERT_EQ(part0_keys.size(), 2u);

  std::optional<RwResult> result;
  system.env().Schedule(sim::Millis(50), [&] {
    client->ExecuteReadWrite(
        {part0_keys[0]}, {WriteOp{part0_keys[1], ToBytes("new-value")}},
        [&](RwResult r) { result = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(2));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;
  EXPECT_GT(result->latency, 0);

  // The write is visible on every replica of partition 0.
  for (uint32_t i = 0; i < config.replicas_per_cluster(); ++i) {
    auto value = system.node(0, i)->store().Get(part0_keys[1]);
    ASSERT_TRUE(value.ok());
    EXPECT_EQ(ToString(value->value), "new-value");
  }
}

TEST(SystemSmokeTest, DistributedTransactionCommitsAcrossClusters) {
  SystemConfig config = SmallConfig();
  System system(config, FastEnv());
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();
  Client* client = system.AddClient();

  storage::PartitionMap pmap(config.num_partitions);
  Key key_a, key_b;
  for (const auto& [key, value] : data) {
    if (key_a.empty() && pmap.OwnerOf(key) == 0) key_a = key;
    if (key_b.empty() && pmap.OwnerOf(key) == 1) key_b = key;
  }
  ASSERT_FALSE(key_a.empty());
  ASSERT_FALSE(key_b.empty());

  std::optional<RwResult> result;
  system.env().Schedule(sim::Millis(50), [&] {
    client->ExecuteReadWrite({key_a, key_b},
                             {WriteOp{key_a, ToBytes("va")},
                              WriteOp{key_b, ToBytes("vb")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(5));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;

  // Both partitions applied their half of the write set on all replicas.
  for (uint32_t i = 0; i < config.replicas_per_cluster(); ++i) {
    EXPECT_EQ(ToString(system.node(0, i)->store().Get(key_a)->value), "va");
    EXPECT_EQ(ToString(system.node(1, i)->store().Get(key_b)->value), "vb");
  }
}

TEST(SystemSmokeTest, ReadOnlyTransactionVerifiesAndReturnsValues) {
  SystemConfig config = SmallConfig();
  System system(config, FastEnv());
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();
  Client* client = system.AddClient();

  // One key per partition.
  storage::PartitionMap pmap(config.num_partitions);
  std::vector<Key> keys(config.num_partitions);
  std::vector<Value> expected(config.num_partitions);
  for (const auto& [key, value] : data) {
    PartitionId p = pmap.OwnerOf(key);
    if (keys[p].empty()) {
      keys[p] = key;
      expected[p] = value;
    }
  }

  std::optional<RoResult> result;
  system.env().Schedule(sim::Millis(50), [&] {
    client->ExecuteReadOnly({keys.begin(), keys.end()},
                            [&](RoResult r) { result = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(2));

  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->status.ok()) << result->status;
  EXPECT_FALSE(result->needed_third_round);
  EXPECT_LE(result->rounds, 2);
  for (PartitionId p = 0; p < config.num_partitions; ++p) {
    ASSERT_TRUE(result->values.count(keys[p]) > 0);
    ASSERT_TRUE(result->values[keys[p]].has_value());
    EXPECT_EQ(*result->values[keys[p]], expected[p]);
  }
}

TEST(SystemSmokeTest, ReadOnlySeesCommittedWrite) {
  SystemConfig config = SmallConfig();
  System system(config, FastEnv());
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();
  Client* client = system.AddClient();

  storage::PartitionMap pmap(config.num_partitions);
  Key key;
  for (const auto& [k, v] : data) {
    if (pmap.OwnerOf(k) == 1) {
      key = k;
      break;
    }
  }

  std::optional<RoResult> ro;
  system.env().Schedule(sim::Millis(50), [&] {
    client->ExecuteReadWrite({}, {WriteOp{key, ToBytes("fresh")}},
                             [&](RwResult r) {
                               ASSERT_TRUE(r.committed);
                               client->ExecuteReadOnly(
                                   {key}, [&](RoResult r2) {
                                     ro = std::move(r2);
                                   });
                             });
  });
  system.env().RunUntil(sim::Seconds(3));

  ASSERT_TRUE(ro.has_value());
  ASSERT_TRUE(ro->status.ok()) << ro->status;
  ASSERT_TRUE(ro->values[key].has_value());
  EXPECT_EQ(ToString(*ro->values[key]), "fresh");
}

}  // namespace
}  // namespace transedge
