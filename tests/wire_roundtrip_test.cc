// Wire-format re-serialization tests: for every message type that
// crosses the simulated network, serialize -> deserialize -> serialize
// again must be byte-identical, over randomized field values from the
// seeded common/rng.h generator. Byte identity is a stronger check than
// field-by-field equality: it catches codec asymmetries (a field read
// with a different width than it was written, order drift between the
// encode and decode paths) that happen to survive an == comparison.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "merkle/merkle_tree.h"
#include "wire/serialize.h"

namespace transedge::wire {
namespace {

Key RandKey(Rng& rng) {
  return "key-" + std::to_string(rng.NextBounded(10000));
}

Bytes RandBytes(Rng& rng) {
  Bytes b(rng.NextBounded(24));
  for (uint8_t& c : b) c = static_cast<uint8_t>(rng.Next());
  return b;
}

crypto::Digest RandDigest(Rng& rng) {
  return crypto::Sha256::Hash("digest-" + std::to_string(rng.Next()));
}

crypto::Signature RandSignature(Rng& rng) {
  return crypto::Signature{static_cast<crypto::NodeId>(rng.NextBounded(7)),
                           RandDigest(rng)};
}

crypto::SignatureSet RandSignatureSet(Rng& rng) {
  crypto::SignatureSet set;
  size_t n = rng.NextBounded(4);
  for (size_t i = 0; i < n; ++i) set.Add(RandSignature(rng));
  return set;
}

txn::CdVector RandCdVector(Rng& rng) {
  size_t parts = 1 + rng.NextBounded(5);
  txn::CdVector v(parts);
  for (PartitionId p = 0; p < static_cast<PartitionId>(parts); ++p) {
    if (rng.NextBounded(2) == 0) {
      v.Set(p, static_cast<BatchId>(rng.NextBounded(100)));
    }
  }
  return v;
}

Transaction RandTxn(Rng& rng) {
  Transaction txn;
  txn.id = MakeTxnId(static_cast<uint32_t>(rng.NextBounded(1000)),
                     static_cast<uint32_t>(rng.NextBounded(1000)));
  size_t reads = rng.NextBounded(4);
  for (size_t i = 0; i < reads; ++i) {
    txn.read_set.push_back(
        ReadOp{RandKey(rng), rng.NextInRange(-1, 100)});
  }
  size_t writes = rng.NextBounded(4);
  for (size_t i = 0; i < writes; ++i) {
    txn.write_set.push_back(WriteOp{RandKey(rng), RandBytes(rng)});
  }
  size_t parts = 1 + rng.NextBounded(3);
  for (PartitionId p = 0; p < static_cast<PartitionId>(parts); ++p) {
    txn.participants.push_back(p);
  }
  txn.coordinator = txn.participants[rng.NextBounded(parts)];
  return txn;
}

storage::PreparedInfo RandPreparedInfo(Rng& rng) {
  storage::PreparedInfo info;
  info.partition = static_cast<PartitionId>(rng.NextBounded(4));
  info.prepared_in_batch = static_cast<BatchId>(rng.NextBounded(50));
  info.vote = rng.NextBounded(2) == 0;
  info.cd_vector = RandCdVector(rng);
  return info;
}

storage::Batch RandBatch(Rng& rng) {
  storage::Batch batch;
  batch.partition = static_cast<PartitionId>(rng.NextBounded(4));
  batch.id = static_cast<BatchId>(rng.NextBounded(50));
  size_t local = rng.NextBounded(3);
  for (size_t i = 0; i < local; ++i) batch.local.push_back(RandTxn(rng));
  size_t prepared = rng.NextBounded(2);
  for (size_t i = 0; i < prepared; ++i) {
    batch.prepared.push_back(RandTxn(rng));
  }
  size_t committed = rng.NextBounded(2);
  for (size_t i = 0; i < committed; ++i) {
    storage::CommitRecord record;
    record.txn_id = MakeTxnId(static_cast<uint32_t>(rng.NextBounded(100)),
                              static_cast<uint32_t>(rng.NextBounded(100)));
    record.committed = rng.NextBounded(2) == 0;
    record.prepared_in_batch = static_cast<BatchId>(rng.NextBounded(50));
    size_t infos = rng.NextBounded(3);
    for (size_t j = 0; j < infos; ++j) {
      record.participant_info.push_back(RandPreparedInfo(rng));
    }
    batch.committed.push_back(std::move(record));
  }
  batch.ro.cd_vector = RandCdVector(rng);
  batch.ro.lce = static_cast<BatchId>(rng.NextBounded(50));
  batch.ro.merkle_root = RandDigest(rng);
  batch.ro.timestamp_us = rng.NextInRange(0, 1'000'000'000);
  return batch;
}

storage::BatchCertificate RandCert(Rng& rng) {
  storage::BatchCertificate cert;
  cert.partition = static_cast<PartitionId>(rng.NextBounded(4));
  cert.batch_id = static_cast<BatchId>(rng.NextBounded(50));
  cert.batch_digest = RandDigest(rng);
  cert.merkle_root = RandDigest(rng);
  cert.ro_digest = RandDigest(rng);
  cert.signatures = RandSignatureSet(rng);
  return cert;
}

/// A structurally real Merkle proof (random raw proofs would need to
/// know BucketEntry internals; proving against a real tree does not).
AuthenticatedRead RandAuthenticatedRead(Rng& rng) {
  merkle::MerkleTree tree(6);
  Key key = RandKey(rng);
  Bytes value = RandBytes(rng);
  BatchId version = static_cast<BatchId>(rng.NextBounded(50));
  tree.Put(key, value, version);
  for (size_t i = rng.NextBounded(3); i > 0; --i) {
    tree.Put(RandKey(rng), RandBytes(rng), version);
  }
  AuthenticatedRead read;
  read.key = key;
  read.found = true;
  read.value = value;
  read.version = version;
  read.proof = tree.Prove(key).value();
  return read;
}

/// serialize -> deserialize -> serialize again; the two encodings must
/// match byte for byte.
template <typename T>
void CheckRoundTrip(const T& msg) {
  Bytes first = EncodeMessage(msg);
  Result<sim::MessagePtr> decoded = DecodeMessage(first);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ((*decoded)->type(), msg.type());
  Bytes second = EncodeMessage(**decoded);
  EXPECT_EQ(first, second) << "re-serialization of " << MessageTypeName(T::kMessageType)
                           << " is not byte-identical";
}

class WireRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireRoundTripTest, ClientMessages) {
  Rng rng(GetParam());
  for (int i = 0; i < 20; ++i) {
    ClientReadRequest read;
    read.request_id = rng.Next();
    read.reply_to = static_cast<sim::ActorId>(rng.NextBounded(1 << 20));
    read.key = RandKey(rng);
    CheckRoundTrip(read);

    ClientReadReply reply;
    reply.request_id = rng.Next();
    reply.key = RandKey(rng);
    reply.found = rng.NextBounded(2) == 0;
    reply.value = RandBytes(rng);
    reply.version = static_cast<BatchId>(rng.NextBounded(100));
    CheckRoundTrip(reply);

    CommitRequest commit;
    commit.reply_to = static_cast<sim::ActorId>(rng.NextBounded(1 << 20));
    commit.txn = RandTxn(rng);
    CheckRoundTrip(commit);

    CommitReply commit_reply;
    commit_reply.txn_id = MakeTxnId(static_cast<uint32_t>(rng.Next()),
                                    static_cast<uint32_t>(rng.Next()));
    commit_reply.committed = rng.NextBounded(2) == 0;
    commit_reply.reason = "r" + std::to_string(rng.NextBounded(100));
    commit_reply.retryable = rng.NextBounded(2) == 0;
    CheckRoundTrip(commit_reply);
  }
}

TEST_P(WireRoundTripTest, ReadOnlyProtocolMessages) {
  Rng rng(GetParam() * 7 + 1);
  for (int i = 0; i < 10; ++i) {
    RoRequest req;
    req.request_id = rng.Next();
    req.reply_to = static_cast<sim::ActorId>(rng.NextBounded(1 << 20));
    for (size_t k = rng.NextBounded(4); k > 0; --k) {
      req.keys.push_back(RandKey(rng));
    }
    CheckRoundTrip(req);

    RoReply reply;
    reply.request_id = rng.Next();
    reply.partition = static_cast<PartitionId>(rng.NextBounded(4));
    reply.batch_id = static_cast<BatchId>(rng.NextBounded(50));
    for (size_t k = rng.NextBounded(3); k > 0; --k) {
      reply.entries.push_back(RandAuthenticatedRead(rng));
    }
    reply.certificate = RandCert(rng);
    reply.cd_vector = RandCdVector(rng);
    reply.lce = static_cast<BatchId>(rng.NextBounded(50));
    reply.timestamp_us = rng.NextInRange(0, 1'000'000'000);
    reply.second_round = rng.NextBounded(2) == 0;
    CheckRoundTrip(reply);

    RoBatchRequest batch_req;
    batch_req.request_id = rng.Next();
    batch_req.reply_to = static_cast<sim::ActorId>(rng.NextBounded(1 << 20));
    for (size_t k = rng.NextBounded(4); k > 0; --k) {
      batch_req.keys.push_back(RandKey(rng));
    }
    batch_req.min_lce = static_cast<BatchId>(rng.NextBounded(50));
    CheckRoundTrip(batch_req);
  }
}

TEST_P(WireRoundTripTest, PbftConsensusMessages) {
  Rng rng(GetParam() * 13 + 2);
  for (int i = 0; i < 10; ++i) {
    PrePrepareMsg pre;
    pre.view = rng.NextBounded(10);
    pre.batch = RandBatch(rng);
    pre.leader_signature = RandSignature(rng);
    pre.leader_cert_share = RandSignature(rng);
    CheckRoundTrip(pre);

    PrepareMsg prepare;
    prepare.view = rng.NextBounded(10);
    prepare.batch_id = static_cast<BatchId>(rng.NextBounded(50));
    prepare.batch_digest = RandDigest(rng);
    prepare.cert_share = RandSignature(rng);
    CheckRoundTrip(prepare);

    CommitMsg commit;
    commit.view = rng.NextBounded(10);
    commit.batch_id = static_cast<BatchId>(rng.NextBounded(50));
    commit.batch_digest = RandDigest(rng);
    CheckRoundTrip(commit);

    ViewChangeMsg vc;
    vc.new_view = rng.NextBounded(10);
    vc.last_committed = static_cast<BatchId>(rng.NextBounded(50));
    vc.signature = RandSignature(rng);
    CheckRoundTrip(vc);
  }
}

TEST_P(WireRoundTripTest, LinearVoteConsensusMessages) {
  Rng rng(GetParam() * 17 + 3);
  for (int i = 0; i < 10; ++i) {
    LinearProposeMsg propose;
    propose.view = rng.NextBounded(10);
    propose.batch = RandBatch(rng);
    propose.leader_signature = RandSignature(rng);
    propose.has_justify = rng.NextBounded(2) == 0;
    if (propose.has_justify) {
      propose.justify_view = rng.NextBounded(10);
      propose.justify_cert = RandCert(rng);
      propose.justify_view_sigs = RandSignatureSet(rng);
    }
    CheckRoundTrip(propose);

    LinearVoteMsg vote;
    vote.view = rng.NextBounded(10);
    vote.batch_id = static_cast<BatchId>(rng.NextBounded(50));
    vote.phase = rng.NextBounded(2) == 0 ? kLinearPhasePrepare
                                         : kLinearPhaseCommit;
    vote.batch_digest = RandDigest(rng);
    vote.share = RandSignature(rng);
    vote.view_share = RandSignature(rng);
    CheckRoundTrip(vote);

    LinearQcMsg qc;
    qc.view = rng.NextBounded(10);
    qc.phase = rng.NextBounded(2) == 0 ? kLinearPhasePrepare
                                       : kLinearPhaseCommit;
    qc.cert = RandCert(rng);
    qc.commit_sigs = RandSignatureSet(rng);
    qc.view_sigs = RandSignatureSet(rng);
    CheckRoundTrip(qc);

    LinearViewChangeMsg vc;
    vc.new_view = rng.NextBounded(10);
    vc.last_committed = static_cast<BatchId>(rng.NextBounded(50));
    vc.signature = RandSignature(rng);
    for (size_t k = rng.NextBounded(3); k > 0; --k) {
      LinearLockReport lock;
      lock.view = rng.NextBounded(10);
      lock.batch = RandBatch(rng);
      lock.cert = RandCert(rng);
      lock.view_sigs = RandSignatureSet(rng);
      vc.locks.push_back(std::move(lock));
    }
    CheckRoundTrip(vc);

    LinearNewViewMsg nv;
    nv.new_view = rng.NextBounded(10);
    nv.proof = RandSignatureSet(rng);
    CheckRoundTrip(nv);

    LinearCatchUpMsg cu;
    cu.batch = RandBatch(rng);
    cu.cert = RandCert(rng);
    cu.view = rng.NextBounded(10);
    cu.view_proof = RandSignatureSet(rng);
    cu.first_retained = static_cast<BatchId>(rng.NextBounded(512));
    CheckRoundTrip(cu);
  }
}

TEST_P(WireRoundTripTest, TwoPcMessages) {
  Rng rng(GetParam() * 19 + 4);
  for (int i = 0; i < 10; ++i) {
    CoordPrepareMsg coord;
    coord.txn = RandTxn(rng);
    coord.coordinator = static_cast<PartitionId>(rng.NextBounded(4));
    coord.proof = RandCert(rng);
    coord.resend = rng.NextBounded(2) == 1;
    CheckRoundTrip(coord);

    PreparedMsg prepared;
    prepared.txn_id = MakeTxnId(static_cast<uint32_t>(rng.Next()),
                                static_cast<uint32_t>(rng.Next()));
    prepared.info = RandPreparedInfo(rng);
    prepared.proof = RandCert(rng);
    CheckRoundTrip(prepared);

    CommitRecordMsg record;
    record.txn_id = MakeTxnId(static_cast<uint32_t>(rng.Next()),
                              static_cast<uint32_t>(rng.Next()));
    record.commit = rng.NextBounded(2) == 0;
    for (size_t k = rng.NextBounded(3); k > 0; --k) {
      record.participant_info.push_back(RandPreparedInfo(rng));
    }
    record.proof = RandCert(rng);
    CheckRoundTrip(record);
  }
}

TEST_P(WireRoundTripTest, AugustusMessages) {
  Rng rng(GetParam() * 23 + 5);
  for (int i = 0; i < 10; ++i) {
    AugustusRoRequest req;
    req.request_id = rng.Next();
    req.reply_to = static_cast<sim::ActorId>(rng.NextBounded(1 << 20));
    for (size_t k = rng.NextBounded(4); k > 0; --k) {
      req.keys.push_back(RandKey(rng));
    }
    CheckRoundTrip(req);

    AugustusVoteRequest vote_req;
    vote_req.request_id = rng.Next();
    for (size_t k = rng.NextBounded(4); k > 0; --k) {
      vote_req.keys.push_back(RandKey(rng));
    }
    vote_req.snapshot_batch = static_cast<BatchId>(rng.NextBounded(50));
    CheckRoundTrip(vote_req);

    AugustusVoteReply vote;
    vote.request_id = rng.Next();
    vote.vote = rng.NextBounded(2) == 0;
    vote.signature = RandSignature(rng);
    CheckRoundTrip(vote);

    AugustusRoReply reply;
    reply.request_id = rng.Next();
    reply.partition = static_cast<PartitionId>(rng.NextBounded(4));
    for (size_t k = rng.NextBounded(3); k > 0; --k) {
      reply.entries.push_back(RandAuthenticatedRead(rng));
    }
    reply.votes = static_cast<uint32_t>(rng.NextBounded(7));
    CheckRoundTrip(reply);

    AugustusRelease release;
    release.request_id = rng.Next();
    CheckRoundTrip(release);
  }
}

TEST_P(WireRoundTripTest, WatchMessages) {
  Rng rng(GetParam() * 29 + 6);
  for (int i = 0; i < 10; ++i) {
    WatchSubscribeRequest sub;
    sub.watch_id = rng.Next();
    sub.reply_to = static_cast<sim::ActorId>(rng.NextBounded(1 << 20));
    sub.range_lo = RandKey(rng);
    sub.range_hi = RandKey(rng);
    sub.resume_from =
        rng.NextBounded(2) == 0 ? kNoBatch
                                : static_cast<BatchId>(rng.NextBounded(50));
    CheckRoundTrip(sub);

    WatchSubscribeReply reply;
    reply.watch_id = rng.Next();
    reply.partition = static_cast<PartitionId>(rng.NextBounded(4));
    reply.epoch = rng.NextBounded(10) + 1;
    reply.batch_id = static_cast<BatchId>(rng.NextBounded(50));
    reply.resumed = rng.NextBounded(2) == 0;
    for (size_t k = rng.NextBounded(3); k > 0; --k) {
      reply.entries.push_back(RandAuthenticatedRead(rng));
    }
    reply.certificate = RandCert(rng);
    CheckRoundTrip(reply);

    WatchDeltaMsg delta;
    delta.watch_id = rng.Next();
    delta.partition = static_cast<PartitionId>(rng.NextBounded(4));
    delta.epoch = rng.NextBounded(10) + 1;
    delta.batch_id = static_cast<BatchId>(rng.NextBounded(50));
    delta.prev_batch_id = delta.batch_id - 1;
    for (size_t k = rng.NextBounded(3); k > 0; --k) {
      delta.entries.push_back(RandAuthenticatedRead(rng));
    }
    delta.certificate = RandCert(rng);
    CheckRoundTrip(delta);

    WatchUnsubscribe unsub;
    unsub.watch_id = rng.Next();
    unsub.reply_to = static_cast<sim::ActorId>(rng.NextBounded(1 << 20));
    CheckRoundTrip(unsub);

    WatchResubscribeRequired resub;
    resub.watch_id = rng.Next();
    resub.partition = static_cast<PartitionId>(rng.NextBounded(4));
    resub.epoch = rng.NextBounded(10) + 1;
    resub.horizon =
        rng.NextBounded(2) == 0 ? kNoBatch
                                : static_cast<BatchId>(rng.NextBounded(50));
    CheckRoundTrip(resub);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// NewViewMsg is the one deliberate exception: it never crosses the
// wire (EncodeMessage emits the bare discriminator, DecodeMessage
// rejects it) and message.h carries the matching struct-level
// check:allow(wire-parity) annotation.
TEST(WireRoundTripExceptionTest, NewViewMsgIsNotSerializable) {
  NewViewMsg msg;
  msg.new_view = 2;
  Bytes encoded = EncodeMessage(msg);
  EXPECT_FALSE(DecodeMessage(encoded).ok());
}

}  // namespace
}  // namespace transedge::wire
