#include "core/ro_lock_table.h"

#include <gtest/gtest.h>

#include "txn/types.h"

namespace transedge {
namespace {

Transaction WriterOf(std::vector<Key> keys) {
  Transaction txn;
  txn.id = 99;
  for (Key& k : keys) {
    WriteOp op;
    op.key = std::move(k);
    op.value = {0x02};
    txn.write_set.push_back(std::move(op));
  }
  return txn;
}

TEST(RoLockTableTest, EmptyTableBlocksNothing) {
  core::RoLockTable table;
  EXPECT_FALSE(table.BlocksWriter(WriterOf({"a", "b"})));
  EXPECT_EQ(table.locked_key_count(), 0u);
}

TEST(RoLockTableTest, LockedKeyBlocksWriter) {
  core::RoLockTable table;
  table.Lock(1, {"a", "b"});
  EXPECT_EQ(table.locked_key_count(), 2u);
  EXPECT_TRUE(table.BlocksWriter(WriterOf({"b"})));
  EXPECT_FALSE(table.BlocksWriter(WriterOf({"c"})));
}

TEST(RoLockTableTest, ReleaseUnblocksWriter) {
  core::RoLockTable table;
  table.Lock(1, {"a"});
  table.Release(1);
  EXPECT_EQ(table.locked_key_count(), 0u);
  EXPECT_FALSE(table.BlocksWriter(WriterOf({"a"})));
}

TEST(RoLockTableTest, SharedLocksRefcountAcrossRequests) {
  core::RoLockTable table;
  table.Lock(1, {"k"});
  table.Lock(2, {"k"});
  EXPECT_EQ(table.locked_key_count(), 1u);  // One key, two holders.
  table.Release(1);
  EXPECT_TRUE(table.BlocksWriter(WriterOf({"k"})));  // Request 2 still holds.
  table.Release(2);
  EXPECT_FALSE(table.BlocksWriter(WriterOf({"k"})));
}

TEST(RoLockTableTest, DuplicateReleaseIsHarmless) {
  core::RoLockTable table;
  table.Lock(1, {"k"});
  table.Release(1);
  table.Release(1);  // No-op.
  EXPECT_EQ(table.locked_key_count(), 0u);
  table.Lock(2, {"k"});
  EXPECT_TRUE(table.BlocksWriter(WriterOf({"k"})));
}

TEST(RoLockTableTest, ReleaseOfUnknownRequestIsHarmless) {
  core::RoLockTable table;
  table.Lock(1, {"k"});
  table.Release(42);
  EXPECT_TRUE(table.BlocksWriter(WriterOf({"k"})));
}

// Regression: a re-lock under the same request id (client retry or
// duplicate delivery) used to overwrite the request's key list while
// leaving the first call's shared counts behind, so a single Release
// could never drain them and writers stayed blocked forever.
TEST(RoLockTableTest, RelockUnderSameRequestIdRoundTrips) {
  core::RoLockTable table;
  table.Lock(1, {"a", "b"});
  table.Lock(1, {"a", "b"});  // Duplicate delivery of the same request.
  table.Release(1);
  EXPECT_EQ(table.locked_key_count(), 0u);
  EXPECT_FALSE(table.BlocksWriter(WriterOf({"a"})));
  EXPECT_FALSE(table.BlocksWriter(WriterOf({"b"})));
}

TEST(RoLockTableTest, RelockWithDifferentKeysReplacesTheOldEntry) {
  core::RoLockTable table;
  table.Lock(1, {"a"});
  table.Lock(1, {"b"});  // Retry with a different key set.
  EXPECT_FALSE(table.BlocksWriter(WriterOf({"a"})));  // Old count released.
  EXPECT_TRUE(table.BlocksWriter(WriterOf({"b"})));
  table.Release(1);
  EXPECT_EQ(table.locked_key_count(), 0u);
}

}  // namespace
}  // namespace transedge
