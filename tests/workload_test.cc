#include <gtest/gtest.h>

#include <set>

#include "storage/partition_map.h"
#include "workload/generator.h"
#include "workload/runner.h"
#include "workload/stats.h"

namespace transedge::workload {
namespace {

WorkloadOptions SmallOptions() {
  WorkloadOptions opts;
  opts.num_keys = 500;
  opts.value_size = 16;
  return opts;
}

TEST(KeySpaceTest, AllKeysMaterializedWithValues) {
  KeySpace keys(SmallOptions(), 5);
  auto data = keys.InitialData();
  EXPECT_EQ(data.size(), 500u);
  std::set<Key> distinct;
  for (const auto& [key, value] : data) {
    distinct.insert(key);
    EXPECT_EQ(value.size(), 16u);
  }
  EXPECT_EQ(distinct.size(), 500u);
}

TEST(KeySpaceTest, InitialDataIsDeterministic) {
  KeySpace a(SmallOptions(), 5);
  KeySpace b(SmallOptions(), 5);
  EXPECT_EQ(a.InitialData(), b.InitialData());
}

TEST(KeySpaceTest, RandomKeyInRespectsPartition) {
  KeySpace keys(SmallOptions(), 4);
  storage::PartitionMap pmap(4);
  Rng rng(1);
  for (PartitionId p = 0; p < 4; ++p) {
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(pmap.OwnerOf(keys.RandomKeyIn(p, &rng)), p);
    }
  }
}

TEST(PlanGeneratorTest, ReadWriteSpansRequestedClusters) {
  KeySpace keys(SmallOptions(), 5);
  PlanGenerator gen(&keys, 5);
  storage::PartitionMap pmap(5);
  Rng rng(9);
  for (int clusters = 1; clusters <= 5; ++clusters) {
    TxnPlan plan = gen.MakeReadWrite(5, 3, clusters, &rng);
    EXPECT_EQ(plan.read_keys.size(), 5u);
    EXPECT_EQ(plan.writes.size(), 3u);
    std::set<PartitionId> touched;
    for (const Key& k : plan.read_keys) touched.insert(pmap.OwnerOf(k));
    for (const WriteOp& w : plan.writes) touched.insert(pmap.OwnerOf(w.key));
    EXPECT_LE(touched.size(), static_cast<size_t>(clusters));
    if (clusters <= 5) {
      // 8 ops over `clusters` clusters round-robin touches all of them.
      EXPECT_EQ(touched.size(), static_cast<size_t>(clusters));
    }
  }
}

TEST(PlanGeneratorTest, LocalPlanTouchesOneCluster) {
  KeySpace keys(SmallOptions(), 5);
  PlanGenerator gen(&keys, 5);
  storage::PartitionMap pmap(5);
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    TxnPlan plan = gen.MakeLocalReadWrite(3, 2, &rng);
    std::set<PartitionId> touched;
    for (const Key& k : plan.read_keys) touched.insert(pmap.OwnerOf(k));
    for (const WriteOp& w : plan.writes) touched.insert(pmap.OwnerOf(w.key));
    EXPECT_EQ(touched.size(), 1u);
  }
}

TEST(PlanGeneratorTest, ReadOnlyKeysAreUniqueAndSpread) {
  KeySpace keys(SmallOptions(), 5);
  PlanGenerator gen(&keys, 5);
  storage::PartitionMap pmap(5);
  Rng rng(9);
  TxnPlan plan = gen.MakeReadOnly(5, 5, &rng);
  EXPECT_EQ(plan.kind, TxnPlan::Kind::kReadOnly);
  EXPECT_EQ(plan.read_keys.size(), 5u);
  std::set<Key> unique(plan.read_keys.begin(), plan.read_keys.end());
  EXPECT_EQ(unique.size(), 5u);
  std::set<PartitionId> touched;
  for (const Key& k : plan.read_keys) touched.insert(pmap.OwnerOf(k));
  EXPECT_EQ(touched.size(), 5u);  // 1 key per cluster.
}

TEST(PlanGeneratorTest, WriteOnlyHasNoReads) {
  KeySpace keys(SmallOptions(), 3);
  PlanGenerator gen(&keys, 3);
  Rng rng(5);
  TxnPlan plan = gen.MakeWriteOnly(3, &rng);
  EXPECT_TRUE(plan.read_keys.empty());
  EXPECT_EQ(plan.writes.size(), 3u);
}

// --- LatencyStats -------------------------------------------------------------

TEST(LatencyStatsTest, SummariesAreCorrect) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) stats.Record(sim::Millis(i));
  EXPECT_EQ(stats.count(), 100u);
  EXPECT_NEAR(stats.MeanMs(), 50.5, 0.01);
  EXPECT_NEAR(stats.P50Ms(), 50.5, 1.0);
  EXPECT_NEAR(stats.P99Ms(), 99.0, 1.1);
  EXPECT_NEAR(stats.MaxMs(), 100.0, 0.01);
}

TEST(LatencyStatsTest, RecordAfterQueryResorts) {
  LatencyStats stats;
  stats.Record(sim::Millis(10));
  EXPECT_NEAR(stats.MaxMs(), 10.0, 0.01);
  stats.Record(sim::Millis(50));
  EXPECT_NEAR(stats.MaxMs(), 50.0, 0.01);
}

TEST(LatencyStatsTest, EmptyIsZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.MeanMs(), 0.0);
  EXPECT_EQ(stats.P99Ms(), 0.0);
}

// --- Runner end-to-end ----------------------------------------------------------

TEST(RunnerTest, ClosedLoopDrivesThroughput) {
  core::SystemConfig config;
  config.num_partitions = 2;
  config.f = 1;
  config.batch_interval = sim::Millis(5);
  config.merkle_depth = 8;
  sim::EnvironmentOptions env_opts;
  env_opts.seed = 17;
  env_opts.inter_site_latency = sim::Millis(1);
  core::System system(config, env_opts);
  WorkloadOptions wopts = SmallOptions();
  KeySpace keys(wopts, 2);
  PlanGenerator plans(&keys, 2);
  system.Preload(keys.InitialData());
  system.Start();

  ClosedLoopRunner runner(
      &system, 10,
      [&](Rng* rng) { return plans.MakeLocalReadWrite(1, 1, rng); },
      RoMode::kTransEdge, 55);
  runner.Start(sim::Millis(200), sim::Seconds(3));
  runner.RunToCompletion();

  EXPECT_GT(runner.stats().rw_committed, 100u);
  EXPECT_GT(runner.ThroughputTps(), 100.0);
  EXPECT_EQ(runner.stats().timeouts, 0u);
  EXPECT_FALSE(runner.stats().rw_latency.empty());
}

TEST(RunnerTest, ReadOnlyModeCollectsRoStats) {
  core::SystemConfig config;
  config.num_partitions = 2;
  config.f = 1;
  config.batch_interval = sim::Millis(5);
  config.merkle_depth = 8;
  sim::EnvironmentOptions env_opts;
  env_opts.seed = 19;
  env_opts.inter_site_latency = sim::Millis(1);
  core::System system(config, env_opts);
  WorkloadOptions wopts = SmallOptions();
  KeySpace keys(wopts, 2);
  PlanGenerator plans(&keys, 2);
  system.Preload(keys.InitialData());
  system.Start();

  ClosedLoopRunner runner(
      &system, 5, [&](Rng* rng) { return plans.MakeReadOnly(2, 2, rng); },
      RoMode::kTransEdge, 55);
  runner.Start(sim::Millis(200), sim::Seconds(2));
  runner.RunToCompletion();

  EXPECT_GT(runner.stats().ro_completed, 50u);
  EXPECT_EQ(runner.stats().ro_failures, 0u);
  EXPECT_FALSE(runner.stats().ro_latency.empty());
  EXPECT_FALSE(runner.stats().ro_round1_latency.empty());
}

}  // namespace
}  // namespace transedge::workload
