#include <gtest/gtest.h>

#include "txn/occ_validator.h"
#include "txn/prepared_batches.h"
#include "txn/types.h"

namespace transedge {
namespace {

Transaction MakeTxn(TxnId id, std::vector<std::pair<Key, BatchId>> reads,
                    std::vector<Key> writes) {
  Transaction txn;
  txn.id = id;
  for (auto& [key, version] : reads) {
    txn.read_set.push_back(ReadOp{key, version});
  }
  for (auto& key : writes) {
    txn.write_set.push_back(WriteOp{key, ToBytes("v")});
  }
  txn.participants = {0};
  return txn;
}

// --- Conflicts ----------------------------------------------------------------

TEST(ConflictsTest, WriteWrite) {
  Transaction a = MakeTxn(1, {}, {"x"});
  Transaction b = MakeTxn(2, {}, {"x"});
  EXPECT_TRUE(Conflicts(a, b));
  EXPECT_TRUE(Conflicts(b, a));
}

TEST(ConflictsTest, ReadWrite) {
  Transaction a = MakeTxn(1, {{"x", 0}}, {});
  Transaction b = MakeTxn(2, {}, {"x"});
  EXPECT_TRUE(Conflicts(a, b));
  EXPECT_TRUE(Conflicts(b, a));
}

TEST(ConflictsTest, ReadReadIsNotAConflict) {
  Transaction a = MakeTxn(1, {{"x", 0}}, {});
  Transaction b = MakeTxn(2, {{"x", 0}}, {});
  EXPECT_FALSE(Conflicts(a, b));
}

TEST(ConflictsTest, DisjointFootprints) {
  Transaction a = MakeTxn(1, {{"x", 0}}, {"y"});
  Transaction b = MakeTxn(2, {{"p", 0}}, {"q"});
  EXPECT_FALSE(Conflicts(a, b));
}

// --- Transaction serialization -------------------------------------------------

TEST(TransactionTest, EncodeDecodeRoundTrip) {
  Transaction txn = MakeTxn(MakeTxnId(3, 77), {{"a", 5}, {"b", kNoBatch}},
                            {"c", "d"});
  txn.participants = {0, 2, 4};
  txn.coordinator = 2;
  Encoder enc;
  txn.EncodeTo(&enc);
  Decoder dec(enc.buffer());
  Transaction decoded = Transaction::DecodeFrom(&dec).value();
  EXPECT_EQ(decoded, txn);
}

TEST(TransactionTest, TxnIdPacksClientAndSeq) {
  TxnId id = MakeTxnId(0xdead, 0xbeef);
  EXPECT_EQ(TxnClient(id), 0xdeadu);
  EXPECT_EQ(TxnSeq(id), 0xbeefu);
}

TEST(TransactionTest, IsLocal) {
  Transaction txn = MakeTxn(1, {}, {"x"});
  txn.participants = {3};
  EXPECT_TRUE(txn.IsLocal());
  txn.participants = {1, 3};
  EXPECT_FALSE(txn.IsLocal());
}

// --- OccValidator (Definition 3.1) ---------------------------------------------

TEST(OccValidatorTest, Rule1FreshReadPasses) {
  storage::VersionedStore store;
  store.Put("x", ToBytes("v"), 4);
  txn::OccValidator validator(&store);
  Transaction txn = MakeTxn(1, {{"x", 4}}, {});
  EXPECT_TRUE(validator.CheckAgainstStore(txn).ok());
}

TEST(OccValidatorTest, Rule1StaleReadConflicts) {
  storage::VersionedStore store;
  store.Put("x", ToBytes("v"), 4);
  store.Put("x", ToBytes("v2"), 6);  // Overwritten after the read.
  txn::OccValidator validator(&store);
  Transaction txn = MakeTxn(1, {{"x", 4}}, {});
  EXPECT_TRUE(validator.CheckAgainstStore(txn).IsConflict());
}

TEST(OccValidatorTest, Rule1NeverWrittenKeyNeedsNoVersion) {
  storage::VersionedStore store;
  txn::OccValidator validator(&store);
  Transaction txn = MakeTxn(1, {{"ghost", kNoBatch}}, {});
  EXPECT_TRUE(validator.CheckAgainstStore(txn).ok());
  // But claiming a version for a missing key is a conflict.
  Transaction bad = MakeTxn(2, {{"ghost", 3}}, {});
  EXPECT_TRUE(validator.CheckAgainstStore(bad).IsConflict());
}

TEST(OccValidatorTest, Rules23RejectConflictingPeers) {
  storage::VersionedStore store;
  txn::OccValidator validator(&store);
  Transaction txn = MakeTxn(1, {{"x", kNoBatch}}, {"y"});
  Transaction writes_x = MakeTxn(2, {}, {"x"});
  Transaction reads_y = MakeTxn(3, {{"y", kNoBatch}}, {});
  Transaction unrelated = MakeTxn(4, {}, {"z"});

  std::vector<const Transaction*> in_progress{&unrelated};
  std::vector<const Transaction*> pending{&unrelated};
  EXPECT_TRUE(validator.Validate(txn, in_progress, pending).ok());

  in_progress.push_back(&writes_x);
  EXPECT_TRUE(validator.Validate(txn, in_progress, pending).IsConflict());

  in_progress.pop_back();
  pending.push_back(&reads_y);
  EXPECT_TRUE(validator.Validate(txn, in_progress, pending).IsConflict());
}

TEST(OccValidatorTest, SelfIsIgnored) {
  storage::VersionedStore store;
  txn::OccValidator validator(&store);
  Transaction txn = MakeTxn(1, {}, {"x"});
  std::vector<const Transaction*> peers{&txn};
  EXPECT_TRUE(validator.CheckAgainstTransactions(txn, peers).ok());
}

// --- PreparedBatches (prepare groups, Definition 4.1) ---------------------------

txn::PendingTxn Pending(TxnId id, std::vector<Key> writes) {
  txn::PendingTxn pending;
  pending.txn = MakeTxn(id, {}, std::move(writes));
  return pending;
}

TEST(PreparedBatchesTest, GroupLifecycle) {
  txn::PreparedBatches pb;
  EXPECT_FALSE(pb.OldestReady());

  std::vector<txn::PendingTxn> group;
  group.push_back(Pending(1, {"a"}));
  group.push_back(Pending(2, {"b"}));
  pb.AddGroup(3, std::move(group));
  EXPECT_EQ(pb.group_count(), 1u);
  EXPECT_EQ(pb.pending_txn_count(), 2u);
  EXPECT_FALSE(pb.OldestReady());

  EXPECT_TRUE(pb.RecordDecision(1, true, {}).ok());
  EXPECT_FALSE(pb.OldestReady());
  EXPECT_TRUE(pb.RecordDecision(2, false, {}).ok());
  EXPECT_TRUE(pb.OldestReady());

  txn::PrepareGroup popped = pb.PopOldestReady();
  EXPECT_EQ(popped.prepared_in_batch, 3);
  EXPECT_EQ(popped.txns[0].state, txn::PendingTxn::State::kCommitted);
  EXPECT_EQ(popped.txns[1].state, txn::PendingTxn::State::kAborted);
  EXPECT_EQ(pb.group_count(), 0u);
}

TEST(PreparedBatchesTest, OrderingConstraintBlocksNewerGroups) {
  // Definition 4.1: a fully decided *newer* group must wait for the
  // older group to be decided first.
  txn::PreparedBatches pb;
  std::vector<txn::PendingTxn> g1, g2;
  g1.push_back(Pending(1, {"a"}));
  g2.push_back(Pending(2, {"b"}));
  pb.AddGroup(3, std::move(g1));
  pb.AddGroup(4, std::move(g2));

  EXPECT_TRUE(pb.RecordDecision(2, true, {}).ok());  // Newer group ready.
  EXPECT_FALSE(pb.OldestReady());                    // Still blocked.
  EXPECT_TRUE(pb.ReadyPrefix().empty());

  EXPECT_TRUE(pb.RecordDecision(1, true, {}).ok());
  EXPECT_TRUE(pb.OldestReady());
  EXPECT_EQ(pb.ReadyPrefix().size(), 2u);  // Both commit, in order.
}

TEST(PreparedBatchesTest, DuplicateDecisionRejected) {
  txn::PreparedBatches pb;
  std::vector<txn::PendingTxn> group;
  group.push_back(Pending(1, {"a"}));
  pb.AddGroup(0, std::move(group));
  EXPECT_TRUE(pb.RecordDecision(1, true, {}).ok());
  EXPECT_EQ(pb.RecordDecision(1, true, {}).code(),
            StatusCode::kAlreadyExists);
}

TEST(PreparedBatchesTest, UnknownTxnIsNotFound) {
  txn::PreparedBatches pb;
  EXPECT_TRUE(pb.RecordDecision(42, true, {}).IsNotFound());
  EXPECT_FALSE(pb.Contains(42));
  EXPECT_EQ(pb.FindTxn(42), nullptr);
}

TEST(PreparedBatchesTest, PendingIterationSkipsDecided) {
  txn::PreparedBatches pb;
  std::vector<txn::PendingTxn> group;
  group.push_back(Pending(1, {"a"}));
  group.push_back(Pending(2, {"b"}));
  pb.AddGroup(0, std::move(group));
  EXPECT_TRUE(pb.RecordDecision(1, true, {}).ok());

  std::vector<TxnId> pending_ids;
  pb.ForEachPending(
      [&](const Transaction& t) { pending_ids.push_back(t.id); });
  ASSERT_EQ(pending_ids.size(), 1u);
  EXPECT_EQ(pending_ids[0], 2u);
  EXPECT_EQ(pb.PendingTransactions().size(), 1u);
}

TEST(PreparedBatchesTest, PopOldestIgnoresDecisionState) {
  txn::PreparedBatches pb;
  std::vector<txn::PendingTxn> group;
  group.push_back(Pending(1, {"a"}));
  pb.AddGroup(5, std::move(group));
  txn::PrepareGroup popped = pb.PopOldest();  // Replica-side apply path.
  EXPECT_EQ(popped.prepared_in_batch, 5);
  EXPECT_EQ(popped.txns[0].state, txn::PendingTxn::State::kWaiting);
}

TEST(PreparedBatchesTest, FindTxnReturnsStoredTransaction) {
  txn::PreparedBatches pb;
  std::vector<txn::PendingTxn> group;
  group.push_back(Pending(7, {"key7"}));
  pb.AddGroup(0, std::move(group));
  const Transaction* found = pb.FindTxn(7);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->write_set[0].key, "key7");
}

}  // namespace
}  // namespace transedge
