// Byzantine fault-injection tests: the client-side defenses (Merkle
// verification, certificates, freshness) and the cluster-side defenses
// (re-validation, equivocation resistance) against a malicious leader.

#include <gtest/gtest.h>

#include <optional>

#include "core/system.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using core::RoResult;
using core::RwResult;
using core::System;
using core::SystemConfig;

struct Fixture {
  SystemConfig config;
  std::unique_ptr<System> system;
  std::vector<std::pair<Key, Value>> data;
  storage::PartitionMap pmap;

  explicit Fixture(uint32_t partitions = 2, uint64_t seed = 77,
                   sim::Time freshness_window = sim::Seconds(30),
                   uint32_t f = 1)
      : pmap(partitions) {
    config.num_partitions = partitions;
    config.f = f;
    config.batch_interval = sim::Millis(5);
    config.view_change_timeout = sim::Millis(80);
    config.merkle_depth = 8;
    config.freshness_window = freshness_window;
    sim::EnvironmentOptions env_opts;
    env_opts.seed = seed;
    env_opts.inter_site_latency = sim::Millis(1);
    system = std::make_unique<System>(config, env_opts);
    workload::WorkloadOptions wopts;
    wopts.num_keys = 200;
    wopts.value_size = 8;
    data = workload::KeySpace(wopts, partitions).InitialData();
    system->Preload(data);
    system->Start();
  }

  Key KeyIn(PartitionId p) {
    for (const auto& [key, value] : data) {
      if (pmap.OwnerOf(key) == p) return key;
    }
    ADD_FAILURE();
    return "";
  }
};

TEST(ByzantineTest, TamperedReadValueIsDetectedByMerkleVerification) {
  Fixture fx;
  // The leader of partition 0 lies about values in read-only responses.
  fx.system->leader(0)->SetByzantineBehavior(
      core::ByzantineBehavior::kTamperReadValue);
  Client* client = fx.system->AddClient();

  std::optional<RoResult> ro;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadOnly({fx.KeyIn(0)},
                            [&](RoResult r) { ro = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(2));

  ASSERT_TRUE(ro.has_value());
  EXPECT_FALSE(ro->status.ok());
  EXPECT_TRUE(ro->status.IsVerificationFailed()) << ro->status;
  EXPECT_EQ(client->stats().ro_verification_failures, 1u);
}

TEST(ByzantineTest, HonestPartitionStillServesWhileAnotherLies) {
  Fixture fx;
  fx.system->leader(0)->SetByzantineBehavior(
      core::ByzantineBehavior::kTamperReadValue);
  Client* client = fx.system->AddClient();

  std::optional<RoResult> honest;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadOnly({fx.KeyIn(1)},  // Only the honest partition.
                            [&](RoResult r) { honest = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(2));
  ASSERT_TRUE(honest.has_value());
  EXPECT_TRUE(honest->status.ok()) << honest->status;
}

TEST(ByzantineTest, StaleSnapshotIsConsistentButFlaggedByFreshness) {
  // Tight 500 ms freshness window so a 64-batch-old snapshot (several
  // seconds of history) is flagged as stale by the client.
  Fixture fx(2, 77, sim::Millis(500));
  Client* client = fx.system->AddClient();
  client->set_check_freshness(true);
  Key k = fx.KeyIn(0);
  Client* writer = fx.system->AddClient();

  // Generate enough batches that "latest - 64" exists and is old.
  int committed = 0;
  // `write_loop` outlives the run, so closures hold a raw self-pointer
  // (a self-owning shared_ptr capture would be a leaked cycle).
  auto write_loop = std::make_shared<std::function<void()>>();
  auto* write_fn = write_loop.get();
  *write_loop = [&, write_fn] {
    if (committed >= 80) return;
    writer->ExecuteReadWrite({}, {WriteOp{k, ToBytes("w")}},
                             [&, write_fn](RwResult r) {
                               if (r.committed) ++committed;
                               (*write_fn)();
                             });
  };
  fx.system->env().Schedule(sim::Millis(30), *write_loop);
  fx.system->env().RunUntil(sim::Seconds(5));
  ASSERT_GE(committed, 80);

  fx.system->leader(0)->SetByzantineBehavior(
      core::ByzantineBehavior::kStaleSnapshot);
  std::optional<RoResult> ro;
  client->ExecuteReadOnly({k}, [&](RoResult r) { ro = std::move(r); });
  fx.system->env().RunUntil(fx.system->env().now() + sim::Seconds(2));

  ASSERT_TRUE(ro.has_value());
  // The stale response is *consistent* (it verifies — old but certified),
  // exactly as §4.4.2 describes...
  EXPECT_TRUE(ro->status.ok()) << ro->status;
  // ...but the freshness timestamp gives it away.
  EXPECT_FALSE(ro->fresh);
}

TEST(ByzantineTest, EquivocatingLeaderCannotCertifyAndIsReplaced) {
  // f = 2 (7 replicas): a half-split equivocation reaches at most
  // 1 + 3 = 4 matching votes < the 2f+1 = 5 quorum, so neither variant
  // certifies and the cluster must change views. (With f = 1, 4 replicas,
  // one variant can still legitimately reach quorum — and safety holds —
  // which is why this test uses the larger cluster.)
  Fixture fx(/*partitions=*/1, /*seed=*/77,
             /*freshness_window=*/sim::Seconds(30), /*f=*/2);
  fx.system->node(0, 0)->SetByzantineBehavior(
      core::ByzantineBehavior::kEquivocate);
  Client* client = fx.system->AddClient();

  std::optional<RwResult> result;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite({}, {WriteOp{fx.KeyIn(0), ToBytes("safe")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(30));

  // Safety: no two replicas ever certified different batches at the same
  // log position. (A replica stuck in a divergent view may lag — BFT
  // guarantees agreement for the 2f+1 quorum, and catch-up is state
  // transfer, which is out of scope — so compare common prefixes.)
  size_t longest = 0;
  for (uint32_t i = 1; i < fx.config.replicas_per_cluster(); ++i) {
    longest = std::max(longest, fx.system->node(0, i)->log().size());
  }
  EXPECT_GT(longest, 0u);
  size_t caught_up = 0;
  for (uint32_t i = 1; i < fx.config.replicas_per_cluster(); ++i) {
    if (fx.system->node(0, i)->log().size() == longest) ++caught_up;
  }
  EXPECT_GE(caught_up, fx.config.quorum_size() - 1);  // Leader is faulty.
  for (uint32_t i = 1; i < fx.config.replicas_per_cluster(); ++i) {
    for (uint32_t j = i + 1; j < fx.config.replicas_per_cluster(); ++j) {
      const auto& a = fx.system->node(0, i)->log();
      const auto& b = fx.system->node(0, j)->log();
      size_t common = std::min(a.size(), b.size());
      for (size_t k = 0; k < common; ++k) {
        EXPECT_EQ(a.Get(static_cast<BatchId>(k)).value()->batch
                      .ComputeDigest(),
                  b.Get(static_cast<BatchId>(k)).value()->batch
                      .ComputeDigest());
      }
    }
  }
  // The cluster moved to a new view and committed the client's write.
  bool view_advanced = false;
  for (uint32_t i = 1; i < fx.config.replicas_per_cluster(); ++i) {
    if (fx.system->node(0, i)->view() > 0) view_advanced = true;
  }
  EXPECT_TRUE(view_advanced);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;
}

TEST(ByzantineTest, CrashedFollowersDoNotBlockReadOnly) {
  Fixture fx;
  // Crash f followers in each cluster.
  fx.system->node(0, 3)->SetByzantineBehavior(
      core::ByzantineBehavior::kCrash);
  fx.system->node(1, 3)->SetByzantineBehavior(
      core::ByzantineBehavior::kCrash);
  Client* client = fx.system->AddClient();

  std::optional<RoResult> ro;
  fx.system->env().Schedule(sim::Millis(50), [&] {
    client->ExecuteReadOnly({fx.KeyIn(0), fx.KeyIn(1)},
                            [&](RoResult r) { ro = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(2));
  ASSERT_TRUE(ro.has_value());
  EXPECT_TRUE(ro->status.ok()) << ro->status;
}

TEST(ByzantineTest, ForgedCertificateRejectedByClientLogic) {
  // Unit-style check against the exact verification a client runs: a
  // byzantine node fabricates a batch and signs it only with itself.
  SystemConfig config;
  config.num_partitions = 1;
  config.f = 1;
  crypto::HmacSignatureScheme scheme(config.total_replicas() + 1, 9);

  storage::Batch fake;
  fake.partition = 0;
  fake.id = 3;
  fake.ro.cd_vector = txn::CdVector(1);
  fake.ro.lce = 2;
  fake.ro.merkle_root = crypto::Sha256::Hash(std::string_view("fake"));
  storage::BatchCertificate cert;
  cert.partition = 0;
  cert.batch_id = 3;
  cert.batch_digest = fake.ComputeDigest();
  cert.merkle_root = fake.ro.merkle_root;
  cert.ro_digest = fake.ro.ComputeDigest();
  // Only one signature — f+1 = 2 required.
  cert.signatures.Add(scheme.MakeSigner(0)->Sign(cert.SignedPayload()));
  Status s = cert.Verify(scheme.verifier(), config.certificate_size(),
                         config.ClusterMembers(0));
  EXPECT_TRUE(s.IsVerificationFailed());

  // Even duplicating its own signature does not help.
  cert.signatures.Add(scheme.MakeSigner(0)->Sign(cert.SignedPayload()));
  EXPECT_TRUE(cert.Verify(scheme.verifier(), config.certificate_size(),
                          config.ClusterMembers(0))
                  .IsVerificationFailed());
}

TEST(ByzantineTest, InvalidLeaderProposalIsNotCertified) {
  // A leader proposing a batch whose Merkle root does not match the
  // writes is silently rejected by honest replicas (validation failure),
  // so nothing commits until the view change replaces it. We emulate by
  // injecting a corrupted pre-prepare from the leader's id via the
  // network filter hook: simpler — tamper-read-value only affects RO
  // replies, so here we assert the validation path through equivocation
  // (different digests) which is the stronger variant, plus check that
  // no replica ever applied a batch whose recomputed digest mismatches
  // its certificate.
  Fixture fx(/*partitions=*/1);
  fx.system->node(0, 0)->SetByzantineBehavior(
      core::ByzantineBehavior::kEquivocate);
  fx.system->env().Schedule(sim::Millis(30), [&] {
    Client* client = fx.system->AddClient();
    client->ExecuteReadWrite({}, {WriteOp{fx.KeyIn(0), ToBytes("v")}},
                             [](RwResult) {});
  });
  fx.system->env().RunUntil(sim::Seconds(20));

  for (uint32_t i = 0; i < fx.config.replicas_per_cluster(); ++i) {
    const auto& log = fx.system->node(0, i)->log();
    for (BatchId b = 0; log.size() > 0 && b <= log.LastBatchId(); ++b) {
      const storage::LogEntry* entry = log.Get(b).value();
      EXPECT_EQ(entry->certificate.batch_digest,
                entry->batch.ComputeDigest());
      EXPECT_TRUE(entry->certificate
                      .Verify(fx.system->verifier(),
                              fx.config.certificate_size(),
                              fx.config.ClusterMembers(0))
                      .ok());
    }
  }
}

}  // namespace
}  // namespace transedge
