// Distributed (2PC-over-BFT) transaction tests: prepare/commit flow,
// conflict aborts, prepare-group ordering, and CD-vector bookkeeping.

#include <gtest/gtest.h>

#include <optional>

#include "core/system.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using core::RwResult;
using core::System;
using core::SystemConfig;

struct Fixture {
  SystemConfig config;
  std::unique_ptr<System> system;
  std::vector<std::pair<Key, Value>> data;
  storage::PartitionMap pmap;

  explicit Fixture(uint32_t partitions = 3, uint64_t seed = 5)
      : pmap(partitions) {
    config.num_partitions = partitions;
    config.f = 1;
    config.batch_interval = sim::Millis(5);
    config.merkle_depth = 8;
    sim::EnvironmentOptions env_opts;
    env_opts.seed = seed;
    env_opts.inter_site_latency = sim::Millis(1);
    system = std::make_unique<System>(config, env_opts);
    workload::WorkloadOptions wopts;
    wopts.num_keys = 200;
    wopts.value_size = 8;
    data = workload::KeySpace(wopts, partitions).InitialData();
    system->Preload(data);
    system->Start();
  }

  Key KeyIn(PartitionId p, size_t skip = 0) {
    for (const auto& [key, value] : data) {
      if (pmap.OwnerOf(key) == p) {
        if (skip == 0) return key;
        --skip;
      }
    }
    ADD_FAILURE() << "no key in partition " << p;
    return "";
  }
};

TEST(TwoPcTest, CommitSpanningAllClusters) {
  Fixture fx;
  Client* client = fx.system->AddClient();
  Key k0 = fx.KeyIn(0), k1 = fx.KeyIn(1), k2 = fx.KeyIn(2);

  std::optional<RwResult> result;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite(
        {k0, k1, k2},
        {WriteOp{k0, ToBytes("w0")}, WriteOp{k1, ToBytes("w1")},
         WriteOp{k2, ToBytes("w2")}},
        [&](RwResult r) { result = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(5));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;
  EXPECT_EQ(ToString(fx.system->node(0, 0)->store().Get(k0)->value), "w0");
  EXPECT_EQ(ToString(fx.system->node(1, 0)->store().Get(k1)->value), "w1");
  EXPECT_EQ(ToString(fx.system->node(2, 0)->store().Get(k2)->value), "w2");
}

TEST(TwoPcTest, StaleReadAbortsAtCoordinator) {
  Fixture fx;
  Client* client = fx.system->AddClient();
  Key k0 = fx.KeyIn(0), k1 = fx.KeyIn(1);

  std::optional<RwResult> first, second;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    // First transaction reads k0 and k1, then writes k0.
    client->ExecuteReadWrite({k0, k1}, {WriteOp{k0, ToBytes("first")}},
                             [&](RwResult r) {
                               first = std::move(r);
                               // Second transaction reads *its own stale
                               // snapshot* — we fake staleness by writing
                               // again with versions from before.
                             });
  });
  fx.system->env().RunUntil(sim::Seconds(3));
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(first->committed);

  // Craft a transaction with an outdated read version directly.
  Transaction txn;
  txn.id = MakeTxnId(9999, 1);
  txn.read_set.push_back(ReadOp{k0, 0});  // k0 was overwritten since v0.
  txn.write_set.push_back(WriteOp{k1, ToBytes("second")});
  txn.participants = fx.pmap.ParticipantsOf(txn.read_set, txn.write_set);
  txn.coordinator = fx.pmap.OwnerOf(k0);

  auto msg = std::make_shared<wire::CommitRequest>();
  msg->reply_to = client->id();
  msg->txn = txn;
  // Send straight to the coordinator's leader.
  fx.system->env().network().Send(
      client->id(), fx.config.LeaderOf(txn.coordinator, 0), msg);
  fx.system->env().RunUntil(sim::Seconds(6));

  // The stale transaction must not have applied its write.
  EXPECT_NE(ToString(fx.system->node(fx.pmap.OwnerOf(k1), 0)
                         ->store()
                         .Get(k1)
                         ->value),
            "second");
}

TEST(TwoPcTest, ConflictingConcurrentDistributedTxnsDoNotBothCommit) {
  Fixture fx;
  Client* c1 = fx.system->AddClient();
  Client* c2 = fx.system->AddClient();
  Key k0 = fx.KeyIn(0), k1 = fx.KeyIn(1);

  std::optional<RwResult> r1, r2;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    c1->ExecuteReadWrite({k0, k1}, {WriteOp{k0, ToBytes("c1")},
                                    WriteOp{k1, ToBytes("c1")}},
                         [&](RwResult r) { r1 = std::move(r); });
    c2->ExecuteReadWrite({k0, k1}, {WriteOp{k0, ToBytes("c2")},
                                    WriteOp{k1, ToBytes("c2")}},
                         [&](RwResult r) { r2 = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(5));

  ASSERT_TRUE(r1.has_value());
  ASSERT_TRUE(r2.has_value());
  // OCC admits at most one of two conflicting concurrent transactions.
  EXPECT_FALSE(r1->committed && r2->committed);
  EXPECT_TRUE(r1->committed || r2->committed);

  // Whichever committed is the value present on both partitions.
  std::string winner = r1->committed ? "c1" : "c2";
  EXPECT_EQ(ToString(fx.system->node(0, 0)->store().Get(k0)->value), winner);
  EXPECT_EQ(ToString(fx.system->node(1, 0)->store().Get(k1)->value), winner);
}

TEST(TwoPcTest, CommitRecordsCarryParticipantCdVectors) {
  Fixture fx;
  Client* client = fx.system->AddClient();
  Key k0 = fx.KeyIn(0), k1 = fx.KeyIn(1);

  std::optional<RwResult> result;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite({}, {WriteOp{k0, ToBytes("x")},
                                  WriteOp{k1, ToBytes("y")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(5));
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->committed);

  // Find the commit record for this transaction on partition 0's log.
  bool found = false;
  const auto& log = fx.system->node(0, 0)->log();
  for (BatchId b = 0; b <= log.LastBatchId(); ++b) {
    for (const storage::CommitRecord& rec :
         log.Get(b).value()->batch.committed) {
      if (rec.txn_id != result->txn_id) continue;
      found = true;
      EXPECT_TRUE(rec.committed);
      // Both participants reported their prepare batch + CD vector.
      EXPECT_EQ(rec.participant_info.size(), 2u);
      for (const storage::PreparedInfo& info : rec.participant_info) {
        EXPECT_TRUE(info.vote);
        EXPECT_GE(info.prepared_in_batch, 0);
        EXPECT_EQ(info.cd_vector.size(), fx.config.num_partitions);
      }
      // Algorithm 1: the committing batch's CD vector must point at the
      // partner's prepare batch.
      const storage::Batch& batch = log.Get(b).value()->batch;
      for (const storage::PreparedInfo& info : rec.participant_info) {
        if (info.partition == 0) continue;
        EXPECT_GE(batch.ro.cd_vector.Get(info.partition),
                  info.prepared_in_batch);
      }
      // The LCE equals the prepare batch at this partition.
      EXPECT_EQ(batch.ro.lce, rec.prepared_in_batch);
    }
  }
  EXPECT_TRUE(found) << "commit record not found in partition 0 log";
}

TEST(TwoPcTest, PrepareGroupsCommitInOrder) {
  // Definition 4.1: commit records appear in prepare-batch order in every
  // log, never interleaved out of order.
  Fixture fx(3, /*seed=*/11);
  std::vector<Client*> clients;
  for (int i = 0; i < 8; ++i) clients.push_back(fx.system->AddClient());

  int done = 0;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    for (size_t i = 0; i < clients.size(); ++i) {
      Key a = fx.KeyIn(0, i * 2);
      Key b = fx.KeyIn(1, i * 2);
      clients[i]->ExecuteReadWrite(
          {}, {WriteOp{a, ToBytes("a")}, WriteOp{b, ToBytes("b")}},
          [&](RwResult) { ++done; });
    }
  });
  fx.system->env().RunUntil(sim::Seconds(10));
  EXPECT_EQ(done, 8);

  for (PartitionId p = 0; p < fx.config.num_partitions; ++p) {
    const auto& log = fx.system->node(p, 0)->log();
    BatchId last_group = kNoBatch;
    for (BatchId b = 0; b <= log.LastBatchId(); ++b) {
      for (const storage::CommitRecord& rec :
           log.Get(b).value()->batch.committed) {
        EXPECT_GE(rec.prepared_in_batch, last_group)
            << "partition " << p << " batch " << b;
        last_group = rec.prepared_in_batch;
      }
    }
  }
}

TEST(TwoPcTest, LceIsMonotonicallyNonDecreasing) {
  Fixture fx(3, /*seed=*/13);
  std::vector<Client*> clients;
  for (int i = 0; i < 6; ++i) clients.push_back(fx.system->AddClient());
  fx.system->env().Schedule(sim::Millis(30), [&] {
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->ExecuteReadWrite(
          {}, {WriteOp{fx.KeyIn(0, i), ToBytes("a")},
               WriteOp{fx.KeyIn(2, i), ToBytes("c")}},
          [](RwResult) {});
    }
  });
  fx.system->env().RunUntil(sim::Seconds(8));

  for (PartitionId p = 0; p < fx.config.num_partitions; ++p) {
    const auto& log = fx.system->node(p, 0)->log();
    BatchId last_lce = kNoBatch;
    for (BatchId b = 0; b <= log.LastBatchId(); ++b) {
      BatchId lce = log.Get(b).value()->batch.ro.lce;
      EXPECT_GE(lce, last_lce) << "partition " << p << " batch " << b;
      last_lce = lce;
    }
  }
}

// ---------------------------------------------------------------------------
// Leader handover: stale coordinator groups (parameterized over engines)
// ---------------------------------------------------------------------------

// A view change must not strand a distributed transaction whose prepare
// the demoted leader already logged: the new leader *resumes* the
// inherited group — it rebuilds coordination state from the logged
// prepare batch, re-solicits the participant votes with a resend
// coordinator-prepare, and the participant re-votes yes from its own
// log. The transaction therefore commits (the old behavior unilaterally
// aborted it), and the stranded client — silently dropped by the demoted
// coordinator — is answered through its timeout retry, which reattaches
// to the resumed coordination entry. The scenario keeps the old leader
// alive (it merely stops being heard): its proposals are filtered once
// the prepare is logged, and the participant's Prepared votes to it are
// swallowed, so the decision can never be reached in the old view.
class StaleGroupHandoverTest
    : public ::testing::TestWithParam<core::ConsensusKind> {};

TEST_P(StaleGroupHandoverTest, NewLeaderResumesStrandedCoordinatorGroups) {
  SystemConfig config;
  config.num_partitions = 2;
  config.f = 1;
  config.consensus_kind = GetParam();
  config.batch_interval = sim::Millis(5);
  config.view_change_timeout = sim::Millis(150);
  config.merkle_depth = 8;
  sim::EnvironmentOptions env_opts;
  env_opts.seed = 11;
  env_opts.inter_site_latency = sim::Millis(1);
  System system(config, env_opts);
  workload::WorkloadOptions wopts;
  wopts.num_keys = 200;
  wopts.value_size = 8;
  auto data = workload::KeySpace(wopts, 2).InitialData();
  system.Preload(data);
  system.Start();

  storage::PartitionMap pmap(2);
  auto key_in = [&](PartitionId p, size_t skip) {
    for (const auto& [key, value] : data) {
      if (pmap.OwnerOf(key) == p && skip-- == 0) return key;
    }
    return Key();
  };
  Key k0 = key_in(0, 0), k1 = key_in(1, 0);

  // The stranded transaction is the client's first (txn seq 1, odd), so
  // it picks participants[1] — partition 1 — as coordinator.
  const crypto::NodeId old_leader = config.ReplicaNode(1, 0);
  // (1) Swallow the participant's Prepared votes to the old leader for
  // the whole run: the stranded transaction's decision can never form in
  // view 0. (2) After its prepare is logged, also swallow the old
  // leader's proposals: the cluster stops hearing it and elects a new
  // leader, while the old one stays up to be demoted — and to send its
  // waiting client the retryable abort.
  system.env().network().SetLinkFilter(
      [&, old_leader](sim::ActorId from, sim::ActorId to,
                      const sim::MessagePtr& msg) {
        auto type = static_cast<wire::MessageType>(msg->type());
        if (to == old_leader && type == wire::MessageType::kPrepared) {
          return false;
        }
        if (from == old_leader && system.env().now() >= sim::Millis(100) &&
            (type == wire::MessageType::kPrePrepare ||
             type == wire::MessageType::kLinearPropose)) {
          return false;
        }
        return true;
      });

  // The transaction that will strand: its prepare logs at ~45 ms, well
  // before the proposal filter engages.
  Client* stranded_client = system.AddClient();
  std::optional<RwResult> stranded;
  system.env().Schedule(sim::Millis(30), [&] {
    stranded_client->ExecuteReadWrite(
        {}, {WriteOp{k0, ToBytes("stranded")}, WriteOp{k1, ToBytes("str1")}},
        [&](RwResult r) { stranded = std::move(r); });
  });
  // Sanity: the prepare reached partition 0's log before the filter cut
  // the old leader off.
  system.env().Schedule(sim::Millis(100), [&] {
    const auto& log = system.node(1, 0)->log();
    bool prepared_logged = false;
    for (BatchId b = 0; b <= log.LastBatchId(); ++b) {
      if (!log.Get(b).value()->batch.prepared.empty()) prepared_logged = true;
    }
    ASSERT_TRUE(prepared_logged) << "prepare did not log in time";
  });

  // Local traffic whose client-timeout retries arm the progress timers
  // on the followers, driving the view change.
  Client* local_client = system.AddClient();
  std::optional<RwResult> local;
  system.env().Schedule(sim::Millis(150), [&] {
    local_client->ExecuteReadWrite(
        {}, {WriteOp{key_in(1, 5), ToBytes("local")}},
        [&](RwResult r) { local = std::move(r); });
  });

  // After the handover settles, a fresh distributed transaction across
  // the same clusters: it can only commit if the stranded group was
  // decided on *both* partitions (Definition 4.1 forces groups to commit
  // in prepare order).
  Client* later_client = system.AddClient();
  std::optional<RwResult> later;
  system.env().Schedule(sim::Seconds(15), [&] {
    later_client->ExecuteReadWrite(
        {}, {WriteOp{key_in(0, 6), ToBytes("post")},
             WriteOp{key_in(1, 6), ToBytes("post")}},
        [&](RwResult r) { later = std::move(r); });
  });

  system.env().RunUntil(sim::Seconds(40));

  // Partition 1 elected a new leader.
  bool view_advanced = false;
  for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
    if (system.node(1, i)->view() > 0) view_advanced = true;
  }
  ASSERT_TRUE(view_advanced) << "no view change happened";

  // The stranded client was answered through its timeout retry — and
  // with a COMMIT: the resumed group re-collected the participant's
  // yes-vote instead of aborting work both partitions already prepared.
  ASSERT_TRUE(stranded.has_value()) << "stranded client never answered";
  EXPECT_TRUE(stranded->committed)
      << "resumed group did not commit: " << stranded->reason;
  uint64_t dist_committed = 0;
  for (uint32_t i = 0; i < config.replicas_per_cluster(); ++i) {
    dist_committed += system.node(1, i)->stats().dist_committed;
  }
  EXPECT_GE(dist_committed, 1u) << "no coordinator counted the resumed commit";

  ASSERT_TRUE(local.has_value());
  EXPECT_TRUE(local->committed) << local->reason;
  ASSERT_TRUE(later.has_value()) << "post-handover distributed txn hung";
  EXPECT_TRUE(later->committed)
      << "stranded group still blocks 2PC: " << later->reason;
}

INSTANTIATE_TEST_SUITE_P(
    Engines, StaleGroupHandoverTest,
    ::testing::Values(core::ConsensusKind::kPbft,
                      core::ConsensusKind::kLinearVote),
    [](const ::testing::TestParamInfo<core::ConsensusKind>& info) {
      return std::string(core::ConsensusKindName(info.param));
    });

}  // namespace
}  // namespace transedge
