#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "merkle/merkle_tree.h"

namespace transedge::merkle {
namespace {

Bytes V(const std::string& s) { return ToBytes(s); }

TEST(MerkleTreeTest, EmptyTreeHasStableRoot) {
  MerkleTree a(8), b(8);
  EXPECT_EQ(a.RootDigest(), b.RootDigest());
  EXPECT_FALSE(a.RootDigest().IsZero());
}

TEST(MerkleTreeTest, RootChangesOnPut) {
  MerkleTree tree(8);
  crypto::Digest before = tree.RootDigest();
  tree.Put("k1", V("v1"), 0);
  EXPECT_NE(tree.RootDigest(), before);
}

TEST(MerkleTreeTest, SameContentSameRoot) {
  MerkleTree a(8), b(8);
  a.Put("k1", V("v1"), 0);
  a.Put("k2", V("v2"), 0);
  b.Put("k2", V("v2"), 0);  // Insertion order must not matter.
  b.Put("k1", V("v1"), 0);
  EXPECT_EQ(a.RootDigest(), b.RootDigest());
}

TEST(MerkleTreeTest, OverwriteChangesRootDeterministically) {
  MerkleTree a(8);
  a.Put("k", V("v1"), 0);
  crypto::Digest v1_root = a.RootDigest();
  a.Put("k", V("v2"), 1);
  EXPECT_NE(a.RootDigest(), v1_root);
  MerkleTree b(8);
  b.Put("k", V("v2"), 1);
  EXPECT_EQ(a.RootDigest(), b.RootDigest());
}

TEST(MerkleTreeTest, ProofVerifies) {
  MerkleTree tree(8);
  for (int i = 0; i < 50; ++i) {
    tree.Put("key" + std::to_string(i), V("value" + std::to_string(i)), i);
  }
  for (int i = 0; i < 50; ++i) {
    std::string key = "key" + std::to_string(i);
    Result<MerkleProof> proof = tree.Prove(key);
    ASSERT_TRUE(proof.ok()) << key;
    EXPECT_TRUE(MerkleTree::VerifyProof(*proof, key,
                                        V("value" + std::to_string(i)), i,
                                        tree.RootDigest())
                    .ok())
        << key;
  }
}

TEST(MerkleTreeTest, ProofRejectsWrongValue) {
  MerkleTree tree(8);
  tree.Put("k", V("genuine"), 3);
  MerkleProof proof = tree.Prove("k").value();
  Status s = MerkleTree::VerifyProof(proof, "k", V("forged"), 3,
                                     tree.RootDigest());
  EXPECT_TRUE(s.IsVerificationFailed());
}

TEST(MerkleTreeTest, ProofRejectsWrongVersion) {
  MerkleTree tree(8);
  tree.Put("k", V("v"), 3);
  MerkleProof proof = tree.Prove("k").value();
  EXPECT_TRUE(MerkleTree::VerifyProof(proof, "k", V("v"), 4,
                                      tree.RootDigest())
                  .IsVerificationFailed());
}

TEST(MerkleTreeTest, ProofRejectsWrongRoot) {
  MerkleTree tree(8);
  tree.Put("k", V("v"), 0);
  MerkleProof proof = tree.Prove("k").value();
  tree.Put("other", V("x"), 1);  // Root moves on.
  EXPECT_TRUE(MerkleTree::VerifyProof(proof, "k", V("v"), 0,
                                      tree.RootDigest())
                  .IsVerificationFailed());
}

TEST(MerkleTreeTest, ProofRejectsTamperedSibling) {
  MerkleTree tree(8);
  tree.Put("k1", V("v1"), 0);
  tree.Put("k2", V("v2"), 0);
  MerkleProof proof = tree.Prove("k1").value();
  ASSERT_FALSE(proof.siblings.empty());
  proof.siblings[0].bytes[0] ^= 1;
  EXPECT_TRUE(MerkleTree::VerifyProof(proof, "k1", V("v1"), 0,
                                      tree.RootDigest())
                  .IsVerificationFailed());
}

TEST(MerkleTreeTest, AbsenceProof) {
  MerkleTree tree(8);
  tree.Put("exists", V("v"), 0);
  MerkleProof proof = tree.Prove("missing").value();
  EXPECT_TRUE(
      MerkleTree::VerifyAbsence(proof, "missing", tree.RootDigest()).ok());
  // And an absence claim about a present key must fail.
  MerkleProof present = tree.Prove("exists").value();
  EXPECT_TRUE(MerkleTree::VerifyAbsence(present, "exists", tree.RootDigest())
                  .IsVerificationFailed());
}

TEST(MerkleTreeTest, SnapshotsServeHistoricalProofs) {
  MerkleTree tree(8);
  tree.Put("k", V("old"), 0);
  MerkleTree::Snapshot snap0 = tree.GetSnapshot();
  crypto::Digest root0 = tree.RootDigest();

  tree.Put("k", V("new"), 1);
  ASSERT_NE(tree.RootDigest(), root0);

  // The old version still proves against the old root.
  MerkleProof proof = MerkleTree::ProveAt(snap0, "k").value();
  EXPECT_TRUE(MerkleTree::VerifyProof(proof, "k", V("old"), 0, root0).ok());
  EXPECT_EQ(snap0.RootDigest(), root0);

  // And the new version against the new root.
  MerkleProof fresh = tree.Prove("k").value();
  EXPECT_TRUE(MerkleTree::VerifyProof(fresh, "k", V("new"), 1,
                                      tree.RootDigest())
                  .ok());
}

TEST(MerkleTreeTest, CloneSharesStateThenDiverges) {
  MerkleTree a(8);
  a.Put("k", V("v"), 0);
  MerkleTree b = a.Clone();
  EXPECT_EQ(a.RootDigest(), b.RootDigest());
  b.Put("k2", V("v2"), 1);
  EXPECT_NE(a.RootDigest(), b.RootDigest());
  // The original is untouched.
  EXPECT_TRUE(
      MerkleTree::VerifyAbsence(a.Prove("k2").value(), "k2", a.RootDigest())
          .ok());
}

TEST(MerkleTreeTest, BucketCollisionsKeepBothKeys) {
  // Depth 2 => 4 buckets; 40 keys force collisions in every bucket.
  MerkleTree tree(2);
  for (int i = 0; i < 40; ++i) {
    tree.Put("k" + std::to_string(i), V("v" + std::to_string(i)), i);
  }
  for (int i = 0; i < 40; ++i) {
    std::string key = "k" + std::to_string(i);
    MerkleProof proof = tree.Prove(key).value();
    EXPECT_TRUE(MerkleTree::VerifyProof(proof, key, V("v" + std::to_string(i)),
                                        i, tree.RootDigest())
                    .ok())
        << key;
  }
}

TEST(MerkleTreeTest, ProofEncodeDecodeRoundTrip) {
  MerkleTree tree(8);
  tree.Put("k1", V("v1"), 5);
  tree.Put("k2", V("v2"), 6);
  MerkleProof proof = tree.Prove("k1").value();

  Encoder enc;
  proof.EncodeTo(&enc);
  Decoder dec(enc.buffer());
  MerkleProof decoded = MerkleProof::DecodeFrom(&dec).value();
  EXPECT_EQ(decoded.leaf_index, proof.leaf_index);
  EXPECT_EQ(decoded.bucket, proof.bucket);
  EXPECT_EQ(decoded.siblings.size(), proof.siblings.size());
  EXPECT_TRUE(MerkleTree::VerifyProof(decoded, "k1", V("v1"), 5,
                                      tree.RootDigest())
                  .ok());
}

// Property sweep: proofs verify across tree depths and key counts.
class MerkleDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(MerkleDepthTest, AllProofsVerifyAtDepth) {
  int depth = GetParam();
  MerkleTree tree(depth);
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    tree.Put("key" + std::to_string(i), V(std::to_string(i * i)), i);
  }
  for (int i = 0; i < n; ++i) {
    std::string key = "key" + std::to_string(i);
    MerkleProof proof = tree.Prove(key).value();
    EXPECT_EQ(static_cast<int>(proof.siblings.size()), depth);
    EXPECT_TRUE(MerkleTree::VerifyProof(proof, key, V(std::to_string(i * i)),
                                        i, tree.RootDigest())
                    .ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, MerkleDepthTest,
                         ::testing::Values(1, 2, 4, 8, 12, 16, 20));

}  // namespace
}  // namespace transedge::merkle
