// Watch/subscription push-tier tests: certified seed + delta streams,
// the read-through edge cache, explicit resubscribe on view change and
// history truncation, and the read-path correctness fixes that ride
// along (configurable stale-snapshot clamp, parked round-2 flush).

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.h"
#include "wire/message.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using core::ConsensusKind;
using core::RoResult;
using core::RwResult;
using core::System;
using core::SystemConfig;
using core::WatchClient;

SystemConfig WatchConfig(ConsensusKind consensus) {
  SystemConfig config;
  config.num_partitions = 1;
  config.f = 1;  // 4 replicas.
  config.consensus_kind = consensus;
  config.batch_interval = sim::Millis(5);
  config.view_change_timeout = sim::Millis(80);
  config.merkle_depth = 8;
  // Doubles as the watch client's silence detector; keep recovery from
  // a dead stream fast.
  config.client_timeout = sim::Millis(100);
  return config;
}

std::vector<std::pair<Key, Value>> TestData(uint32_t partitions) {
  workload::WorkloadOptions wopts;
  wopts.num_keys = 100;
  wopts.value_size = 8;
  return workload::KeySpace(wopts, partitions).InitialData();
}

/// Repeatedly writes `value_prefix || i` to `key` until `*stop` is set;
/// counts commits in `*committed`. The returned owner must outlive the
/// run — scheduled callbacks hold a raw pointer into it.
std::shared_ptr<std::function<void()>> StartWriteLoop(
    System* system, Client* writer, Key key, const std::string& value_prefix,
    int* committed, const bool* stop) {
  auto write_loop = std::make_shared<std::function<void()>>();
  auto* write_fn = write_loop.get();
  *write_loop = [=] {
    if (*stop) return;
    writer->ExecuteReadWrite(
        {}, {WriteOp{key, ToBytes(value_prefix + std::to_string(*committed))}},
        [=](RwResult r) {
          if (r.committed) ++*committed;
          (*write_fn)();
        });
  };
  system->env().Schedule(sim::Millis(30), *write_loop);
  return write_loop;
}

/// The watcher's cache must agree with the (certified) store of
/// `replica` for every key in `[lo, hi]` — same values, and no extra
/// cached keys the store does not have. Pass a replica that is known to
/// be fully caught up (a stable leader, or any continuously-live node
/// after traffic has quiesced).
void ExpectCacheMatchesReplica(const core::TransEdgeNode* replica,
                               WatchClient* watcher, const Key& lo,
                               const Key& hi) {
  const storage::VersionedStore& store = replica->store();
  size_t in_range = 0;
  store.ForEachLatest([&](const Key& k, const Value& v, BatchId version) {
    if (k < lo || k > hi) return;
    ++in_range;
    auto it = watcher->cache().find(k);
    ASSERT_NE(it, watcher->cache().end()) << "missing cached key " << k;
    EXPECT_EQ(it->second.value, v) << "stale cache for " << k;
    EXPECT_EQ(it->second.version, version) << "stale version for " << k;
  });
  EXPECT_EQ(watcher->cache().size(), in_range);
}

class WatchEngineTest : public ::testing::TestWithParam<ConsensusKind> {};

TEST_P(WatchEngineTest, SeedAndDeltasMaintainCertifiedCache) {
  SystemConfig config = WatchConfig(GetParam());
  System system(config, {/*seed=*/21});
  auto data = TestData(1);
  system.Preload(data);
  system.Start();

  Client* writer = system.AddClient();
  WatchClient* watcher = system.AddWatchClient();
  const Key lo = "k";  // The whole generated keyspace.
  const Key hi = "k~";
  Key hot = data[0].first;

  int committed = 0;
  bool stop = false;
  auto loop = StartWriteLoop(&system, writer, hot, "v", &committed, &stop);
  system.env().Schedule(sim::Millis(60), [&] { watcher->Watch(lo, hi); });
  system.env().RunUntil(sim::Seconds(2));
  stop = true;
  system.env().RunUntil(sim::Seconds(3));

  ASSERT_GT(committed, 20);
  const WatchClient::Stats& stats = watcher->stats();
  EXPECT_GE(stats.seeds_applied, 1u);
  EXPECT_GT(stats.deltas_applied, 10u);
  // Every applied seed/delta passed certificate + Merkle verification.
  EXPECT_EQ(stats.verification_failures, 0u);
  EXPECT_EQ(stats.duplicates_dropped, 0u);
  EXPECT_EQ(stats.gaps_detected, 0u);
  ExpectCacheMatchesReplica(system.leader(0), watcher, lo, hi);

  // Server side: one live watch, pushing deltas.
  EXPECT_EQ(system.leader(0)->active_watches(), 1u);
  EXPECT_GT(system.leader(0)->stats().watch_deltas_pushed, 10u);

  // Unsubscribe deregisters server-side.
  watcher->Unwatch();
  system.env().RunUntil(system.env().now() + sim::Millis(100));
  EXPECT_EQ(system.leader(0)->active_watches(), 0u);
}

TEST_P(WatchEngineTest, WatcherSurvivesLeaderCrashWithoutGapOrDuplicate) {
  SystemConfig config = WatchConfig(GetParam());
  config.storage_kind = storage::StorageKind::kPaged;
  config.durability.checkpoint_interval = 8;
  System system(config, {/*seed=*/22});
  auto data = TestData(1);
  system.Preload(data);
  system.Start();

  Client* writer = system.AddClient();
  WatchClient* watcher = system.AddWatchClient();
  Key hot = data[0].first;
  const Key lo = "k";
  const Key hi = "k~";

  int committed = 0;
  bool stop = false;
  auto loop = StartWriteLoop(&system, writer, hot, "w", &committed, &stop);
  system.env().Schedule(sim::Millis(60), [&] { watcher->Watch(lo, hi); });

  // Crash the leader mid-stream; the cluster elects a successor and the
  // watcher's silence detector walks the subscription over to it.
  crypto::NodeId leader_id = system.leader(0)->id();
  system.env().Schedule(sim::Millis(400),
                        [&, leader_id] { system.CrashReplica(leader_id); });
  system.env().Schedule(sim::Seconds(2), [&, leader_id] {
    ASSERT_TRUE(system.RestartReplica(leader_id).ok());
  });
  system.env().RunUntil(sim::Seconds(4));
  stop = true;
  system.env().RunUntil(sim::Seconds(5));

  ASSERT_GT(committed, 30);
  const WatchClient::Stats& stats = watcher->stats();
  // The stream moved leaders at least once.
  EXPECT_GE(stats.resubscribes, 1u);
  // ...but never applied a duplicate, never left a gap unrecovered, and
  // never accepted an unverifiable delta.
  EXPECT_EQ(stats.duplicates_dropped, 0u);
  EXPECT_EQ(stats.verification_failures, 0u);
  // Compare against a replica that never went down: the restarted
  // ex-leader still believes in its pre-crash view and may lag behind
  // the cluster tip until traffic forces it to catch up.
  ExpectCacheMatchesReplica(system.node(0, 1), watcher, lo, hi);
}

INSTANTIATE_TEST_SUITE_P(Engines, WatchEngineTest,
                         ::testing::Values(ConsensusKind::kPbft,
                                           ConsensusKind::kLinearVote));

TEST(WatchServiceTest, TruncatedReplayWindowForcesFreshReseed) {
  SystemConfig config = WatchConfig(ConsensusKind::kPbft);
  config.snapshot_history = 48;  // Small replay window.
  System system(config, {/*seed=*/23});
  auto data = TestData(1);
  system.Preload(data);
  system.Start();

  Client* writer = system.AddClient();
  WatchClient* watcher = system.AddWatchClient();
  Key hot = data[0].first;
  const Key lo = "k";
  const Key hi = "k~";

  int committed = 0;
  bool stop = false;
  auto loop = StartWriteLoop(&system, writer, hot, "t", &committed, &stop);
  system.env().Schedule(sim::Millis(60), [&] { watcher->Watch(lo, hi); });

  // Partition the watcher away long enough for the replay window to
  // rotate past its resume position (>> 48 batches at 5 ms), then heal.
  system.env().Schedule(sim::Millis(300),
                        [&] { system.env().network().Disconnect(watcher->id()); });
  system.env().Schedule(sim::Millis(1500),
                        [&] { system.env().network().Reconnect(watcher->id()); });
  system.env().RunUntil(sim::Seconds(3));
  stop = true;
  system.env().RunUntil(sim::Seconds(4));

  ASSERT_GT(committed, 100);
  const WatchClient::Stats& stats = watcher->stats();
  // The stale resume was rejected with an explicit retryable error and
  // answered by a second certified seed — never a silent gap.
  EXPECT_GE(stats.seeds_applied, 2u);
  EXPECT_EQ(stats.verification_failures, 0u);
  EXPECT_GE(system.leader(0)->stats().watch_resubscribe_errors, 1u);
  ExpectCacheMatchesReplica(system.leader(0), watcher, lo, hi);
}

// ---------------------------------------------------------------------------
// Satellite regressions: read-path correctness fixes.
// ---------------------------------------------------------------------------

// The stale-snapshot fault clamp must derive its lag from the configured
// snapshot window. With a window much smaller than the historical
// hardcoded 64-batch lag, the stale-but-certified reply must still come
// from retained history and verify.
TEST(WatchServiceTest, StaleSnapshotClampRespectsSmallRetentionWindow) {
  SystemConfig config = WatchConfig(ConsensusKind::kPbft);
  config.snapshot_history = 16;  // Far below the 64-batch standard lag.
  config.client_timeout = sim::Seconds(2);
  System system(config, {/*seed=*/24});
  auto data = TestData(1);
  system.Preload(data);
  system.Start();

  Client* writer = system.AddClient();
  Client* reader = system.AddClient();
  Key hot = data[0].first;

  int committed = 0;
  bool stop = false;
  auto loop = StartWriteLoop(&system, writer, hot, "s", &committed, &stop);
  system.env().RunUntil(sim::Seconds(2));
  stop = true;
  system.env().RunUntil(sim::Seconds(3));
  ASSERT_GT(committed, 80);

  system.leader(0)->SetByzantineBehavior(
      core::ByzantineBehavior::kStaleSnapshot);
  std::optional<RoResult> ro;
  reader->ExecuteReadOnly({hot}, [&](RoResult r) { ro = std::move(r); });
  system.env().RunUntil(system.env().now() + sim::Seconds(2));

  ASSERT_TRUE(ro.has_value());
  // Old but certified (§4.4.2): the reply verifies; a clamp below the
  // retained window would instead bounce between unserviceable retries.
  EXPECT_TRUE(ro->status.ok()) << ro->status;
  ASSERT_EQ(ro->values.count(hot), 1u);
  EXPECT_TRUE(ro->values[hot].has_value());
}

/// Bare actor that fires one raw round-2 request and records replies —
/// lets the test park a request with an arbitrary dependency claim.
struct RoundTwoProbe : public sim::Actor {
  std::vector<wire::RoReply> replies;
  void OnStart() override {}
  void OnMessage(sim::ActorId from, const sim::MessagePtr& msg) override {
    (void)from;
    if (static_cast<wire::MessageType>(msg->type()) ==
        wire::MessageType::kRoReply) {
      replies.push_back(static_cast<const wire::RoReply&>(*msg));
    }
  }
};

// A round-2 request parked on a leader that is then demoted must be
// flushed with a retryable unserviceable reply, not stranded forever.
TEST(WatchServiceTest, ParkedRoundTwoIsFlushedRetryableOnViewChange) {
  // f = 2 so a half-split equivocation certifies nothing and forces a
  // view change while the (otherwise honest) leader keeps running — the
  // crash-stop path would never get to flush anything.
  SystemConfig config;
  config.num_partitions = 1;
  config.f = 2;  // 7 replicas.
  config.batch_interval = sim::Millis(5);
  config.view_change_timeout = sim::Millis(80);
  config.merkle_depth = 8;
  System system(config, {/*seed=*/25});
  auto data = TestData(1);
  system.Preload(data);
  system.Start();

  core::TransEdgeNode* old_leader = system.leader(0);
  old_leader->SetByzantineBehavior(core::ByzantineBehavior::kEquivocate);

  Client* writer = system.AddClient();
  RoundTwoProbe probe;
  crypto::NodeId probe_id = config.ClientNode(1);
  system.env().network().Register(probe_id, 0, &probe);

  // Traffic the equivocating leader cannot certify -> view change.
  system.env().Schedule(sim::Millis(30), [&] {
    writer->ExecuteReadWrite({}, {WriteOp{data[0].first, ToBytes("x")}},
                             [](RwResult) {});
  });
  // Park a round-2 request whose dependency is a full retention window
  // ahead — admissible (an honest round-1 reply could claim it), but
  // unsatisfiable before the view change hits.
  system.env().Schedule(sim::Millis(50), [&] {
    wire::RoBatchRequest req;
    req.request_id = 991;
    req.reply_to = probe_id;
    req.keys = {data[0].first};
    req.min_lce = old_leader->log().LastBatchId() +
                  static_cast<BatchId>(config.snapshot_history);
    system.env().network().Send(
        probe_id, old_leader->id(),
        std::make_shared<const wire::RoBatchRequest>(std::move(req)));
  });
  system.env().RunUntil(sim::Seconds(30));

  // The demoted leader flushed the parked request as retryable
  // (batch_id == kNoBatch) instead of leaking it.
  EXPECT_GE(old_leader->stats().ro_round2_aborted, 1u);
  bool flushed_retryable = false;
  for (const wire::RoReply& r : probe.replies) {
    if (r.request_id == 991 && r.batch_id == kNoBatch) {
      flushed_retryable = true;
    }
  }
  EXPECT_TRUE(flushed_retryable);
}

}  // namespace
}  // namespace transedge
