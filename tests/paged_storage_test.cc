// Backend-level durability tests for the paged storage engine: clean
// restart, group-commit loss windows, the crash-point sweep (every op
// count x crash mode must recover a consistent prefix), CRC-corruption
// and torn-write rejection, meta ping-pong fallback, history-horizon
// truncation, and in-memory/paged engine invariance.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "crypto/sha256.h"
#include "storage/paged/format.h"
#include "storage/paged/paged_backend.h"
#include "storage/paged/sim_disk.h"
#include "storage/storage_backend.h"

namespace transedge::storage::paged {
namespace {

crypto::Digest RootFor(BatchId id) {
  return crypto::Sha256::Hash("root-" + std::to_string(id));
}

StorageTuning SmallTuning() {
  StorageTuning tuning;
  tuning.page_size = 128;  // Small pages force multi-page bucket chains.
  tuning.num_buckets = 8;
  tuning.wal_group_commit = 1;
  tuning.checkpoint_interval = 4;
  tuning.num_partitions = 1;
  tuning.partition = 0;
  return tuning;
}

Batch MakeBatch(BatchId id, std::vector<WriteOp> writes) {
  Batch batch;
  batch.partition = 0;
  batch.id = id;
  Transaction txn;
  txn.id = MakeTxnId(7, static_cast<uint32_t>(id));
  txn.write_set = std::move(writes);
  txn.participants = {0};
  batch.local.push_back(std::move(txn));
  batch.ro.merkle_root = RootFor(id);
  batch.ro.lce = id;
  return batch;
}

BatchCertificate CertFor(const Batch& batch) {
  BatchCertificate cert;
  cert.partition = batch.partition;
  cert.batch_id = batch.id;
  cert.batch_digest = batch.ComputeDigest();
  cert.merkle_root = batch.ro.merkle_root;
  cert.ro_digest = batch.ro.ComputeDigest();
  return cert;
}

std::map<Key, Value> Contents(const VersionedStore& store) {
  std::map<Key, Value> out;
  store.ForEachLatest(
      [&](const Key& key, const Value& value, BatchId) { out[key] = value; });
  return out;
}

/// Drives a backend through the decide/apply cycle the node performs,
/// mirroring every applied batch into a plain map so any recovered
/// prefix can be checked against the state as of that batch.
class Driver {
 public:
  explicit Driver(const StorageTuning& tuning)
      : tuning_(tuning), backend_(tuning, &disk_) {}

  void Preload(const std::vector<std::pair<Key, Value>>& data) {
    VersionedStore store;
    for (const auto& [key, value] : data) {
      store.Put(key, value, 0);
      preload_state_[key] = value;
    }
    model_ = preload_state_;
    backend_.Preload(store, RootFor(kNoBatch));
  }

  void DecideAndApply(const Batch& batch) {
    ASSERT_TRUE(backend_.log().Append({batch, CertFor(batch)}).ok());
    backend_.OnDecided();
    for (const Transaction& txn : batch.local) {
      for (const WriteOp& w : txn.write_set) {
        backend_.store().Put(w.key, w.value, batch.id);
        model_[w.key] = w.value;
      }
    }
    backend_.OnApplied(batch.id, RootFor(batch.id));
    state_at_[batch.id] = model_;
  }

  /// The reference contents as of `id` (kNoBatch = preloaded state).
  const std::map<Key, Value>& StateAt(BatchId id) const {
    if (id == kNoBatch) return preload_state_;
    auto it = state_at_.find(id);
    EXPECT_TRUE(it != state_at_.end()) << "no reference state for " << id;
    return it->second;
  }

  SimDisk& disk() { return disk_; }
  PagedBackend& backend() { return backend_; }
  const StorageTuning& tuning() const { return tuning_; }

 private:
  StorageTuning tuning_;
  SimDisk disk_;
  PagedBackend backend_;
  std::map<Key, Value> preload_state_;
  std::map<Key, Value> model_;
  std::map<BatchId, std::map<Key, Value>> state_at_;
};

std::vector<std::pair<Key, Value>> SeedData() {
  std::vector<std::pair<Key, Value>> data;
  for (int i = 0; i < 6; ++i) {
    data.emplace_back("seed" + std::to_string(i),
                      ToBytes("v0-" + std::to_string(i)));
  }
  return data;
}

void RunBatches(Driver* driver, BatchId first, BatchId last) {
  for (BatchId id = first; id <= last; ++id) {
    driver->DecideAndApply(MakeBatch(
        id, {WriteOp{"seed" + std::to_string(id % 6),
                     ToBytes("b" + std::to_string(id))},
             WriteOp{"key" + std::to_string(id), ToBytes("new")}}));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PagedBackendTest, CleanRestartRecoversStoreLogAndCheckpoint) {
  Driver driver(SmallTuning());
  driver.Preload(SeedData());
  RunBatches(&driver, 0, 9);

  // group_commit=1 syncs every WAL append and checkpoints sync their own
  // pages, so a clean power loss loses nothing.
  driver.disk().Crash(driver.disk().op_count(), SimDisk::CrashMode::kNone);

  PagedBackend recovered(driver.tuning(), &driver.disk());
  Result<RecoveredState> rec = recovered.Recover({});
  ASSERT_TRUE(rec.ok()) << rec.status();

  // checkpoint_interval=4 over applies 0..9 checkpoints after 3 and 7.
  EXPECT_EQ(rec->checkpoint_applied, 7);
  EXPECT_TRUE(rec->checkpoint_root == RootFor(7));
  EXPECT_EQ(recovered.log().FirstBatchId(), 0);
  EXPECT_EQ(recovered.log().LastBatchId(), 9);
  EXPECT_EQ(Contents(recovered.store()), driver.StateAt(9));

  // The replayed log is the one that was written, entry for entry.
  for (BatchId id = 0; id <= 9; ++id) {
    Result<const LogEntry*> entry = recovered.log().Get(id);
    ASSERT_TRUE(entry.ok());
    EXPECT_TRUE(entry.value()->batch ==
                driver.backend().log().Get(id).value()->batch);
  }

  // Recovery charged its I/O: replayed WAL records and page reads.
  EXPECT_EQ(recovered.io_stats().wal_records_replayed, 10u);
  EXPECT_GT(recovered.io_stats().pages_read, 0u);
}

TEST(PagedBackendTest, GroupCommitCrashLosesOnlyTheUnsyncedTail) {
  StorageTuning tuning = SmallTuning();
  tuning.wal_group_commit = 4;
  tuning.checkpoint_interval = 1000;  // No checkpoint beyond preload.
  Driver driver(tuning);
  driver.Preload(SeedData());
  RunBatches(&driver, 0, 9);

  // Appends 0..9 sync after records 3 and 7; 8 and 9 are cache-only.
  driver.disk().Crash(driver.disk().op_count(), SimDisk::CrashMode::kNone);

  PagedBackend recovered(tuning, &driver.disk());
  Result<RecoveredState> rec = recovered.Recover({});
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->checkpoint_applied, kNoBatch);
  EXPECT_TRUE(rec->checkpoint_root == RootFor(kNoBatch));
  EXPECT_EQ(recovered.log().LastBatchId(), 7);
  EXPECT_EQ(Contents(recovered.store()), driver.StateAt(7));
}

TEST(PagedBackendTest, CrashPointSweepAlwaysRecoversAConsistentPrefix) {
  StorageTuning tuning = SmallTuning();
  tuning.wal_group_commit = 2;
  tuning.checkpoint_interval = 3;
  Driver driver(tuning);
  driver.Preload(SeedData());
  RunBatches(&driver, 0, 11);

  const uint64_t ops = driver.disk().op_count();
  ASSERT_GT(ops, 12u);  // WAL appends + checkpoint page/meta writes.
  const SimDisk::CrashMode kModes[] = {SimDisk::CrashMode::kNone,
                                       SimDisk::CrashMode::kPrefix,
                                       SimDisk::CrashMode::kTorn};
  for (uint64_t keep = 0; keep <= ops; ++keep) {
    for (SimDisk::CrashMode mode : kModes) {
      SimDisk crashed = driver.disk().Clone();
      crashed.Crash(keep, mode);
      PagedBackend recovered(tuning, &crashed);
      Result<RecoveredState> rec = recovered.Recover({});
      ASSERT_TRUE(rec.ok())
          << "crash at op " << keep << " mode " << static_cast<int>(mode)
          << ": " << rec.status();
      BatchId w = recovered.log().LastBatchId();
      EXPECT_GE(w, rec->checkpoint_applied);
      EXPECT_LE(w, 11);
      EXPECT_EQ(Contents(recovered.store()), driver.StateAt(w))
          << "crash at op " << keep << " mode " << static_cast<int>(mode)
          << " recovered watermark " << w;
    }
  }

  // Keeping the whole cache is equivalent to a clean shutdown.
  SimDisk intact = driver.disk().Clone();
  intact.Crash(ops, SimDisk::CrashMode::kPrefix);
  PagedBackend full(tuning, &intact);
  ASSERT_TRUE(full.Recover({}).ok());
  EXPECT_EQ(full.log().LastBatchId(), 11);
}

TEST(PagedBackendTest, CorruptedWalTailRecordIsDroppedBenignly) {
  StorageTuning tuning = SmallTuning();
  tuning.checkpoint_interval = 1000;
  Driver driver(tuning);
  driver.Preload(SeedData());
  RunBatches(&driver, 0, 4);
  driver.disk().SyncAll();

  // Flip a byte inside the last record: its CRC fails, the scan ends at
  // the record before it, and recovery serves batches 0..3.
  driver.disk().CorruptByte(kWalFileId,
                            driver.disk().DurableSize(kWalFileId) - 1);
  PagedBackend recovered(tuning, &driver.disk());
  Result<RecoveredState> rec = recovered.Recover({});
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(recovered.log().LastBatchId(), 3);
  EXPECT_EQ(Contents(recovered.store()), driver.StateAt(3));
}

TEST(PagedBackendTest, CorruptedWalRecordInTheMiddleIsAHole) {
  StorageTuning tuning = SmallTuning();
  tuning.checkpoint_interval = 1000;
  Driver driver(tuning);
  driver.Preload(SeedData());
  RunBatches(&driver, 0, 4);
  driver.disk().SyncAll();

  // A byte inside record 0's payload, with valid records after it: that
  // is a hole in the middle of the log, not a torn tail — recovery must
  // refuse rather than silently skip decided batches.
  driver.disk().CorruptByte(kWalFileId, kWalRecordHeaderSize + 2);
  PagedBackend recovered(tuning, &driver.disk());
  Result<RecoveredState> rec = recovered.Recover({});
  ASSERT_FALSE(rec.ok());
}

TEST(PagedBackendTest, CorruptedDataPageFailsRecovery) {
  StorageTuning tuning = SmallTuning();
  Driver driver(tuning);
  driver.Preload(SeedData());
  driver.disk().SyncAll();

  // The preload checkpoint references data pages from kFirstDataPage up;
  // flipping a durable byte in one must fail the chain CRC.
  driver.disk().CorruptByte(
      kPagesFileId, static_cast<uint64_t>(kFirstDataPage) * tuning.page_size +
                        kPageHeaderSize + 3);
  PagedBackend recovered(tuning, &driver.disk());
  EXPECT_FALSE(recovered.Recover({}).ok());
}

TEST(PagedBackendTest, MetaPingPongFallsBackToThePreviousCheckpoint) {
  StorageTuning tuning = SmallTuning();
  tuning.checkpoint_interval = 1000;  // Only explicit checkpoints.
  Driver driver(tuning);
  driver.Preload(SeedData());  // Generation 1, slot 1.
  RunBatches(&driver, 0, 5);
  ASSERT_TRUE(driver.backend().Checkpoint().ok());  // Generation 2, slot 0.
  driver.disk().SyncAll();

  // Wreck the newest meta slot (generation 2 lives in page 0). Recovery
  // falls back to generation 1 — the preload checkpoint — and the WAL,
  // which is never physically truncated, replays everything back.
  driver.disk().CorruptByte(kPagesFileId, 8);
  PagedBackend recovered(tuning, &driver.disk());
  Result<RecoveredState> rec = recovered.Recover({});
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->checkpoint_applied, kNoBatch);
  EXPECT_EQ(recovered.log().LastBatchId(), 5);
  EXPECT_EQ(Contents(recovered.store()), driver.StateAt(5));
}

TEST(PagedBackendTest, TruncateHistoryBoundsLogAndRecovery) {
  Driver driver(SmallTuning());
  driver.Preload(SeedData());
  RunBatches(&driver, 0, 9);
  driver.backend().TruncateHistory(6);
  ASSERT_TRUE(driver.backend().Checkpoint().ok());
  driver.disk().SyncAll();

  EXPECT_EQ(driver.backend().log().FirstBatchId(), 6);
  EXPECT_FALSE(driver.backend().log().Get(5).ok());

  // The checkpoint published log_start=6 and the matching WAL offset, so
  // a restart recovers exactly the retained suffix.
  PagedBackend recovered(driver.tuning(), &driver.disk());
  Result<RecoveredState> rec = recovered.Recover({});
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(recovered.log().FirstBatchId(), 6);
  EXPECT_EQ(recovered.log().LastBatchId(), 9);
  EXPECT_FALSE(recovered.log().Get(5).ok());
  EXPECT_EQ(Contents(recovered.store()), driver.StateAt(9));
}

TEST(PagedBackendTest, PagedAndInMemoryEnginesApplyIdentically) {
  Driver driver(SmallTuning());
  driver.Preload(SeedData());

  InMemoryBackend in_memory;
  {
    VersionedStore store;
    for (const auto& [key, value] : SeedData()) store.Put(key, value, 0);
    in_memory.Preload(store, RootFor(kNoBatch));
  }

  for (BatchId id = 0; id <= 9; ++id) {
    Batch batch = MakeBatch(
        id, {WriteOp{"seed" + std::to_string(id % 6),
                     ToBytes("b" + std::to_string(id))},
             WriteOp{"key" + std::to_string(id), ToBytes("new")}});
    driver.DecideAndApply(batch);
    ASSERT_TRUE(in_memory.log().Append({batch, CertFor(batch)}).ok());
    in_memory.OnDecided();
    for (const Transaction& txn : batch.local) {
      for (const WriteOp& w : txn.write_set) {
        in_memory.store().Put(w.key, w.value, batch.id);
      }
    }
    in_memory.OnApplied(batch.id, RootFor(batch.id));
  }

  EXPECT_EQ(Contents(in_memory.store()), Contents(driver.backend().store()));
  EXPECT_EQ(in_memory.log().LastBatchId(),
            driver.backend().log().LastBatchId());
  // The in-memory engine stays off the I/O meter entirely.
  EXPECT_EQ(in_memory.io_stats().wal_appends, 0u);
  EXPECT_EQ(in_memory.io_stats().wal_syncs, 0u);
  EXPECT_GT(driver.backend().io_stats().wal_appends, 0u);
}

}  // namespace
}  // namespace transedge::storage::paged
