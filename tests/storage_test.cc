#include <gtest/gtest.h>

#include "storage/batch.h"
#include "storage/partition_map.h"
#include "storage/smr_log.h"
#include "storage/versioned_store.h"

namespace transedge::storage {
namespace {

// --- VersionedStore ----------------------------------------------------------

TEST(VersionedStoreTest, GetLatest) {
  VersionedStore store;
  store.Put("k", ToBytes("v0"), 0);
  store.Put("k", ToBytes("v3"), 3);
  VersionedValue v = store.Get("k").value();
  EXPECT_EQ(ToString(v.value), "v3");
  EXPECT_EQ(v.version, 3);
}

TEST(VersionedStoreTest, MissingKeyIsNotFound) {
  VersionedStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  EXPECT_EQ(store.LatestVersion("nope"), kNoBatch);
}

TEST(VersionedStoreTest, GetAsOfPicksRightVersion) {
  VersionedStore store;
  store.Put("k", ToBytes("v0"), 0);
  store.Put("k", ToBytes("v5"), 5);
  store.Put("k", ToBytes("v9"), 9);

  EXPECT_EQ(ToString(store.GetAsOf("k", 0)->value), "v0");
  EXPECT_EQ(ToString(store.GetAsOf("k", 4)->value), "v0");
  EXPECT_EQ(ToString(store.GetAsOf("k", 5)->value), "v5");
  EXPECT_EQ(ToString(store.GetAsOf("k", 8)->value), "v5");
  EXPECT_EQ(ToString(store.GetAsOf("k", 100)->value), "v9");
}

TEST(VersionedStoreTest, GetAsOfBeforeFirstVersionIsNotFound) {
  VersionedStore store;
  store.Put("k", ToBytes("v5"), 5);
  EXPECT_TRUE(store.GetAsOf("k", 4).status().IsNotFound());
}

TEST(VersionedStoreTest, SameVersionOverwrites) {
  VersionedStore store;
  store.Put("k", ToBytes("a"), 2);
  store.Put("k", ToBytes("b"), 2);
  EXPECT_EQ(ToString(store.Get("k")->value), "b");
  EXPECT_EQ(store.total_versions(), 1u);
}

TEST(VersionedStoreTest, TruncateHistoryKeepsServingLatest) {
  VersionedStore store;
  for (BatchId v = 0; v < 10; ++v) {
    store.Put("k", ToBytes("v" + std::to_string(v)), v);
  }
  EXPECT_EQ(store.total_versions(), 10u);
  size_t dropped = store.TruncateHistory(7);
  EXPECT_EQ(dropped, 7u);  // Versions 0..6 dropped; 7, 8, 9 kept.
  EXPECT_EQ(ToString(store.GetAsOf("k", 7)->value), "v7");
  EXPECT_EQ(ToString(store.Get("k")->value), "v9");
  EXPECT_TRUE(store.GetAsOf("k", 5).status().IsNotFound());
}

// --- PartitionMap ------------------------------------------------------------

TEST(PartitionMapTest, OwnershipIsDeterministicAndInRange) {
  PartitionMap pmap(5);
  for (int i = 0; i < 200; ++i) {
    Key key = "key" + std::to_string(i);
    PartitionId p = pmap.OwnerOf(key);
    EXPECT_LT(p, 5u);
    EXPECT_EQ(p, pmap.OwnerOf(key));
  }
}

TEST(PartitionMapTest, KeysSpreadAcrossPartitions) {
  PartitionMap pmap(5);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 2000; ++i) {
    ++counts[pmap.OwnerOf("key" + std::to_string(i))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 200);  // Roughly uniform: each gets ~400 of 2000.
    EXPECT_LT(c, 700);
  }
}

TEST(PartitionMapTest, ParticipantsSortedDistinct) {
  PartitionMap pmap(5);
  std::vector<ReadOp> reads;
  std::vector<WriteOp> writes;
  for (int i = 0; i < 40; ++i) {
    reads.push_back(ReadOp{"r" + std::to_string(i), kNoBatch});
    writes.push_back(WriteOp{"w" + std::to_string(i), {}});
  }
  std::vector<PartitionId> parts = pmap.ParticipantsOf(reads, writes);
  EXPECT_FALSE(parts.empty());
  for (size_t i = 1; i < parts.size(); ++i) {
    EXPECT_LT(parts[i - 1], parts[i]);
  }
}

TEST(PartitionMapTest, RestrictionCoversAllOps) {
  PartitionMap pmap(3);
  Transaction txn;
  for (int i = 0; i < 30; ++i) {
    txn.read_set.push_back(ReadOp{"r" + std::to_string(i), kNoBatch});
    txn.write_set.push_back(WriteOp{"w" + std::to_string(i), {}});
  }
  size_t reads = 0, writes = 0;
  for (PartitionId p = 0; p < 3; ++p) {
    reads += pmap.ReadsFor(txn, p).size();
    writes += pmap.WritesFor(txn, p).size();
  }
  EXPECT_EQ(reads, txn.read_set.size());
  EXPECT_EQ(writes, txn.write_set.size());
}

// --- SmrLog ------------------------------------------------------------------

LogEntry MakeEntry(BatchId id) {
  LogEntry entry;
  entry.batch.id = id;
  entry.batch.partition = 0;
  return entry;
}

TEST(SmrLogTest, AppendsInOrder) {
  SmrLog log;
  EXPECT_EQ(log.LastBatchId(), kNoBatch);
  EXPECT_TRUE(log.Append(MakeEntry(0)).ok());
  EXPECT_TRUE(log.Append(MakeEntry(1)).ok());
  EXPECT_EQ(log.LastBatchId(), 1);
  EXPECT_EQ(log.Get(0).value()->batch.id, 0);
}

TEST(SmrLogTest, RejectsOutOfOrderAppend) {
  SmrLog log;
  EXPECT_TRUE(log.Append(MakeEntry(0)).ok());
  EXPECT_EQ(log.Append(MakeEntry(2)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(log.Append(MakeEntry(0)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SmrLogTest, GetOutOfRangeIsNotFound) {
  SmrLog log;
  EXPECT_TRUE(log.Get(0).status().IsNotFound());
  EXPECT_TRUE(log.Append(MakeEntry(0)).ok());
  EXPECT_TRUE(log.Get(1).status().IsNotFound());
  EXPECT_TRUE(log.Get(-1).status().IsNotFound());
}

// --- Batch serialization -----------------------------------------------------

Batch SampleBatch() {
  Batch batch;
  batch.partition = 2;
  batch.id = 7;
  Transaction t1;
  t1.id = MakeTxnId(9, 1);
  t1.read_set = {ReadOp{"a", 3}};
  t1.write_set = {WriteOp{"b", ToBytes("vb")}};
  t1.participants = {2};
  t1.coordinator = 2;
  batch.local.push_back(t1);

  Transaction t2 = t1;
  t2.id = MakeTxnId(9, 2);
  t2.participants = {1, 2};
  t2.coordinator = 1;
  batch.prepared.push_back(t2);

  CommitRecord rec;
  rec.txn_id = MakeTxnId(9, 3);
  rec.committed = true;
  rec.prepared_in_batch = 5;
  PreparedInfo info;
  info.partition = 1;
  info.prepared_in_batch = 4;
  info.vote = true;
  info.cd_vector = txn::CdVector(3);
  info.cd_vector.Set(1, 4);
  rec.participant_info.push_back(info);
  batch.committed.push_back(rec);

  batch.ro.cd_vector = txn::CdVector(3);
  batch.ro.cd_vector.Set(2, 7);
  batch.ro.cd_vector.Set(1, 4);
  batch.ro.lce = 5;
  batch.ro.merkle_root = crypto::Sha256::Hash(std::string_view("root"));
  batch.ro.timestamp_us = 123456;
  return batch;
}

TEST(BatchTest, EncodeDecodeRoundTrip) {
  Batch batch = SampleBatch();
  Encoder enc;
  batch.EncodeTo(&enc);
  Decoder dec(enc.buffer());
  Batch decoded = Batch::DecodeFrom(&dec).value();
  EXPECT_EQ(decoded, batch);
  EXPECT_TRUE(dec.exhausted());
}

TEST(BatchTest, DigestIsContentSensitive) {
  Batch a = SampleBatch();
  Batch b = SampleBatch();
  EXPECT_EQ(a.ComputeDigest(), b.ComputeDigest());
  b.ro.timestamp_us += 1;
  EXPECT_NE(a.ComputeDigest(), b.ComputeDigest());
}

TEST(BatchTest, TruncatedDecodeFails) {
  Batch batch = SampleBatch();
  Encoder enc;
  batch.EncodeTo(&enc);
  Bytes truncated(enc.buffer().begin(),
                  enc.buffer().begin() +
                      static_cast<long>(enc.buffer().size() / 2));
  Decoder dec(truncated);
  EXPECT_FALSE(Batch::DecodeFrom(&dec).ok());
}

TEST(BatchCertificateTest, SignAndVerifyQuorum) {
  crypto::HmacSignatureScheme scheme(7, 3);
  Batch batch = SampleBatch();
  BatchCertificate cert;
  cert.partition = batch.partition;
  cert.batch_id = batch.id;
  cert.batch_digest = batch.ComputeDigest();
  cert.merkle_root = batch.ro.merkle_root;
  cert.ro_digest = batch.ro.ComputeDigest();
  for (crypto::NodeId id : {0u, 1u, 2u}) {
    cert.signatures.Add(scheme.MakeSigner(id)->Sign(cert.SignedPayload()));
  }
  std::vector<crypto::NodeId> members{0, 1, 2, 3, 4, 5, 6};
  EXPECT_TRUE(cert.Verify(scheme.verifier(), 3, members).ok());
  EXPECT_FALSE(cert.Verify(scheme.verifier(), 4, members).ok());

  // Tampering with the read-only segment digest invalidates it.
  cert.ro_digest.bytes[0] ^= 1;
  EXPECT_FALSE(cert.Verify(scheme.verifier(), 3, members).ok());
}

TEST(BatchCertificateTest, EncodeDecodeRoundTrip) {
  crypto::HmacSignatureScheme scheme(7, 3);
  BatchCertificate cert;
  cert.partition = 1;
  cert.batch_id = 9;
  cert.batch_digest = crypto::Sha256::Hash(std::string_view("d"));
  cert.merkle_root = crypto::Sha256::Hash(std::string_view("r"));
  cert.ro_digest = crypto::Sha256::Hash(std::string_view("ro"));
  cert.signatures.Add(scheme.MakeSigner(0)->Sign(cert.SignedPayload()));

  Encoder enc;
  cert.EncodeTo(&enc);
  Decoder dec(enc.buffer());
  BatchCertificate decoded = BatchCertificate::DecodeFrom(&dec).value();
  EXPECT_EQ(decoded.partition, cert.partition);
  EXPECT_EQ(decoded.batch_id, cert.batch_id);
  EXPECT_EQ(decoded.batch_digest, cert.batch_digest);
  EXPECT_EQ(decoded.merkle_root, cert.merkle_root);
  EXPECT_EQ(decoded.ro_digest, cert.ro_digest);
  ASSERT_EQ(decoded.signatures.size(), 1u);
}

}  // namespace
}  // namespace transedge::storage
