// The Consensus interface seam: every engine behind
// SystemConfig::consensus_kind must produce the same committed store
// state for the same workload/seed, valid f+1 certificates, and live
// view changes. Also pins the message-complexity contrast the linear
// engine exists for (O(n) vs O(n²) per decided batch).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/system.h"
#include "storage/partition_map.h"
#include "wire/message.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using core::ConsensusKind;
using core::RwResult;
using core::System;
using core::SystemConfig;

SystemConfig BaseConfig(ConsensusKind kind, uint32_t partitions = 2,
                        uint32_t f = 1) {
  SystemConfig config;
  config.num_partitions = partitions;
  config.f = f;
  config.consensus_kind = kind;
  config.batch_interval = sim::Millis(5);
  config.view_change_timeout = sim::Millis(100);
  config.merkle_depth = 8;
  return config;
}

sim::EnvironmentOptions FastEnv(uint64_t seed = 7) {
  sim::EnvironmentOptions opts;
  opts.seed = seed;
  opts.inter_site_latency = sim::Millis(1);
  return opts;
}

std::vector<std::pair<Key, Value>> TestData(uint32_t partitions) {
  workload::WorkloadOptions wopts;
  wopts.num_keys = 200;
  wopts.value_size = 8;
  return workload::KeySpace(wopts, partitions).InitialData();
}

/// Runs the same mixed workload (independent local writes, a contended
/// read-modify-write chain, distributed cross-partition writes) under
/// `kind` and returns the final committed state of every touched key,
/// after asserting all replicas of the owning cluster agree on it.
std::map<Key, std::string> RunWorkload(ConsensusKind kind, uint64_t seed,
                                       uint32_t pipeline_depth = 1,
                                       bool async_apply = false,
                                       uint32_t apply_shards = 1) {
  SystemConfig config = BaseConfig(kind);
  config.pipeline_depth = pipeline_depth;
  config.async_apply = async_apply;
  config.apply_shards = apply_shards;
  System system(config, FastEnv(seed));
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();

  storage::PartitionMap pmap(config.num_partitions);
  std::vector<Key> part0_keys, part1_keys;
  for (const auto& [key, value] : data) {
    (pmap.OwnerOf(key) == 0 ? part0_keys : part1_keys).push_back(key);
  }

  std::vector<Key> touched;
  int pending = 0;
  auto done = [&](RwResult r) {
    EXPECT_TRUE(r.committed) << r.reason;
    --pending;
  };

  // (a) Independent local writers on each partition.
  for (int c = 0; c < 4; ++c) {
    Client* client = system.AddClient();
    Key k0 = part0_keys[static_cast<size_t>(c)];
    Key k1 = part1_keys[static_cast<size_t>(c)];
    touched.push_back(k0);
    touched.push_back(k1);
    system.env().Schedule(sim::Millis(20), [&, client, k0, k1, c] {
      pending += 2;
      client->ExecuteReadWrite(
          {}, {WriteOp{k0, ToBytes("l" + std::to_string(c))}}, done);
      client->ExecuteReadWrite(
          {}, {WriteOp{k1, ToBytes("l" + std::to_string(c))}}, done);
    });
  }

  // (b) A contended chain on one hot key: sequential read-modify-writes.
  // `chain` lives in this frame, which outlives every simulated event.
  std::function<void(int)> chain;
  {
    Client* client = system.AddClient();
    Key hot = part0_keys[10];
    touched.push_back(hot);
    chain = [&, client, hot](int step) {
      if (step >= 4) return;
      ++pending;
      client->ExecuteReadWrite(
          {hot}, {WriteOp{hot, ToBytes("chain" + std::to_string(step))}},
          [&, step](RwResult r) {
            EXPECT_TRUE(r.committed) << r.reason;
            --pending;
            chain(step + 1);
          });
    };
    system.env().Schedule(sim::Millis(20), [&chain] { chain(0); });
  }

  // (c) Distributed writers over disjoint cross-partition pairs.
  for (int c = 0; c < 3; ++c) {
    Client* client = system.AddClient();
    Key a = part0_keys[static_cast<size_t>(13 + c)];
    Key b = part1_keys[static_cast<size_t>(c + 5)];
    touched.push_back(a);
    touched.push_back(b);
    system.env().Schedule(sim::Millis(25), [&, client, a, b, c] {
      ++pending;
      client->ExecuteReadWrite(
          {}, {WriteOp{a, ToBytes("d" + std::to_string(c))},
               WriteOp{b, ToBytes("d" + std::to_string(c))}},
          done);
    });
  }

  system.env().RunUntil(sim::Seconds(5));
  EXPECT_EQ(pending, 0) << "workload did not drain under "
                        << core::ConsensusKindName(kind);

  std::map<Key, std::string> state;
  for (const Key& key : touched) {
    PartitionId p = pmap.OwnerOf(key);
    auto value = system.node(p, 0)->store().Get(key);
    EXPECT_TRUE(value.ok()) << key;
    if (!value.ok()) continue;
    state[key] = ToString(value->value);
    for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
      auto other = system.node(p, i)->store().Get(key);
      EXPECT_TRUE(other.ok()) << key;
      if (!other.ok()) continue;
      EXPECT_EQ(ToString(other->value), state[key])
          << "replica " << i << " diverges on " << key << " under "
          << core::ConsensusKindName(kind);
    }
  }
  return state;
}

// ---------------------------------------------------------------------------
// Engine invariance: identical committed state across engines
// ---------------------------------------------------------------------------

TEST(ConsensusInterfaceTest, CommittedStateIsIdenticalAcrossEngines) {
  for (uint64_t seed : {7u, 21u}) {
    std::map<Key, std::string> pbft = RunWorkload(ConsensusKind::kPbft, seed);
    ASSERT_FALSE(pbft.empty());
    std::map<Key, std::string> linear =
        RunWorkload(ConsensusKind::kLinearVote, seed);
    EXPECT_EQ(linear, pbft) << "engines diverged at seed " << seed;
  }
}

// Pipelining and asynchronous/sharded apply are pure scheduling changes:
// whatever combination of consensus_kind × pipeline_depth × apply mode
// runs the workload, the committed state must match the strictly
// sequential PBFT baseline.
TEST(ConsensusInterfaceTest, CommittedStateIsInvariantAcrossDepthsAndApplyModes) {
  const uint64_t seed = 7;
  std::map<Key, std::string> reference =
      RunWorkload(ConsensusKind::kPbft, seed);
  ASSERT_FALSE(reference.empty());

  struct Case {
    uint32_t depth;
    bool async;
    uint32_t shards;
  };
  for (const Case& c : {Case{1, false, 1}, Case{1, true, 1}, Case{2, true, 1},
                        Case{4, true, 1}, Case{4, true, 4}}) {
    std::map<Key, std::string> state = RunWorkload(
        ConsensusKind::kLinearVote, seed, c.depth, c.async, c.shards);
    EXPECT_EQ(state, reference)
        << "linear diverged at depth=" << c.depth << " async=" << c.async
        << " shards=" << c.shards;
  }

  // The PBFT engine pins MaxPipelineDepth at 1: a config asking for a
  // deep pipeline must degrade to the sequential schedule, not misbehave.
  EXPECT_EQ(RunWorkload(ConsensusKind::kPbft, seed, /*pipeline_depth=*/4,
                        /*async_apply=*/true),
            reference);
}

// ---------------------------------------------------------------------------
// Linear-vote engine basics
// ---------------------------------------------------------------------------

class LinearVoteTest : public ::testing::Test {};

TEST_F(LinearVoteTest, ReplicasConvergeOnIdenticalLogs) {
  SystemConfig config = BaseConfig(ConsensusKind::kLinearVote,
                                   /*partitions=*/1);
  System system(config, FastEnv());
  auto data = TestData(1);
  system.Preload(data);
  system.Start();
  Client* client = system.AddClient();

  int committed = 0;
  system.env().Schedule(sim::Millis(30), [&] {
    for (int i = 0; i < 20; ++i) {
      client->ExecuteReadWrite(
          {}, {WriteOp{data[static_cast<size_t>(i)].first, ToBytes("w")}},
          [&](RwResult r) {
            if (r.committed) ++committed;
          });
    }
  });
  system.env().RunUntil(sim::Seconds(2));
  EXPECT_EQ(committed, 20);

  const auto& reference = system.node(0, 0)->log();
  ASSERT_GT(reference.size(), 0u);
  for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
    const auto& log = system.node(0, i)->log();
    ASSERT_EQ(log.size(), reference.size()) << "replica " << i;
    for (BatchId b = 0; b <= reference.LastBatchId(); ++b) {
      EXPECT_EQ(log.Get(b).value()->batch.ComputeDigest(),
                reference.Get(b).value()->batch.ComputeDigest())
          << "batch " << b << " replica " << i;
    }
  }
}

TEST_F(LinearVoteTest, CertificatesCarryQuorumOfValidSignatures) {
  SystemConfig config = BaseConfig(ConsensusKind::kLinearVote,
                                   /*partitions=*/1);
  System system(config, FastEnv());
  system.Preload(TestData(1));
  system.Start();
  system.env().RunUntil(sim::Millis(100));

  const auto& log = system.node(0, 0)->log();
  ASSERT_GE(log.size(), 1u);
  const storage::LogEntry* genesis = log.Get(0).value();
  Status s = genesis->certificate.Verify(system.verifier(),
                                         config.certificate_size(),
                                         config.ClusterMembers(0));
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(genesis->certificate.batch_digest,
            genesis->batch.ComputeDigest());
  EXPECT_EQ(genesis->certificate.merkle_root, genesis->batch.ro.merkle_root);
  EXPECT_EQ(genesis->certificate.ro_digest, genesis->batch.ro.ComputeDigest());
  // Followers verify the same certificate object they logged.
  for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
    const auto& flog = system.node(0, i)->log();
    ASSERT_GE(flog.size(), 1u) << "replica " << i;
    EXPECT_TRUE(flog.Get(0)
                    .value()
                    ->certificate
                    .Verify(system.verifier(), config.certificate_size(),
                            config.ClusterMembers(0))
                    .ok())
        << "replica " << i;
  }
}

TEST_F(LinearVoteTest, ViewChangeElectsNewLeaderAfterLeaderCrash) {
  SystemConfig config = BaseConfig(ConsensusKind::kLinearVote,
                                   /*partitions=*/1);
  System system(config, FastEnv());
  auto data = TestData(1);
  system.Preload(data);
  system.Start();
  // Let genesis commit under the original leader first.
  system.env().RunUntil(sim::Millis(50));
  ASSERT_GE(system.node(0, 0)->log().size(), 1u);

  system.env().network().Disconnect(config.ReplicaNode(0, 0));
  system.node(0, 0)->SetByzantineBehavior(core::ByzantineBehavior::kCrash);

  Client* client = system.AddClient();
  std::optional<RwResult> result;
  system.env().Schedule(sim::Millis(100), [&] {
    client->ExecuteReadWrite({}, {WriteOp{data[0].first, ToBytes("post-vc")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(30));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;
  bool view_advanced = false;
  for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
    if (system.node(0, i)->view() > 0) view_advanced = true;
  }
  EXPECT_TRUE(view_advanced);
  for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
    auto v = system.node(0, i)->store().Get(data[0].first);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(ToString(v->value), "post-vc");
  }
}

TEST_F(LinearVoteTest, DelayedCommitQcDoesNotForkTheLog) {
  // Regression for the view-change safety hole: the view-0 leader
  // assembles the commit QC and decides locally, but the broadcast never
  // reaches the replicas before their progress timers fire. Without the
  // prepare-QC lock carried through the view change, the new leader
  // would propose a *different* batch at the same id and permanently
  // fork the old leader's log.
  SystemConfig config = BaseConfig(ConsensusKind::kLinearVote,
                                   /*partitions=*/1);
  System system(config, FastEnv());
  auto data = TestData(1);
  system.Preload(data);

  const crypto::NodeId first_leader = config.ReplicaNode(0, 0);
  system.env().network().SetLinkFilter(
      [first_leader](sim::ActorId from, sim::ActorId,
                     const sim::MessagePtr& msg) {
        if (from != first_leader) return true;
        if (static_cast<wire::MessageType>(msg->type()) !=
            wire::MessageType::kLinearQc) {
          return true;
        }
        return static_cast<const wire::LinearQcMsg&>(*msg).phase !=
               wire::kLinearPhaseCommit;
      });
  system.Start();

  Client* client = system.AddClient();
  std::optional<RwResult> result;
  system.env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite({}, {WriteOp{data[0].first, ToBytes("survive")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(30));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;

  // The old leader decided batches the others only saw after the view
  // change; every pair of logs must still agree on their common prefix
  // (in particular at id 0, which node 0 decided alone in view 0).
  const uint32_t n = config.replicas_per_cluster();
  bool view_advanced = false;
  for (uint32_t i = 0; i < n; ++i) {
    if (system.node(0, i)->view() > 0) view_advanced = true;
    ASSERT_GT(system.node(0, i)->log().size(), 0u) << "replica " << i;
  }
  EXPECT_TRUE(view_advanced);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      const auto& a = system.node(0, i)->log();
      const auto& b = system.node(0, j)->log();
      BatchId common = std::min(a.LastBatchId(), b.LastBatchId());
      for (BatchId id = 0; id <= common; ++id) {
        EXPECT_EQ(a.Get(id).value()->batch.ComputeDigest(),
                  b.Get(id).value()->batch.ComputeDigest())
            << "fork at batch " << id << " between replicas " << i << " and "
            << j;
      }
    }
  }
}

// The pipelined generalisation of DelayedCommitQcDoesNotForkTheLog: with
// depth k the view-0 leader may have decided *several* batches whose
// commit QCs never reached the replicas. The per-slot locks carried
// through the view change must make the new leader re-propose the whole
// in-flight prefix — any slot it fabricated instead would fork the old
// leader's log.
class PipelinedForkTest : public ::testing::TestWithParam<uint32_t> {};
INSTANTIATE_TEST_SUITE_P(Depths, PipelinedForkTest, ::testing::Values(2u, 4u));

TEST_P(PipelinedForkTest, DelayedCommitQcMidWindowDoesNotFork) {
  SystemConfig config = BaseConfig(ConsensusKind::kLinearVote,
                                   /*partitions=*/1);
  config.pipeline_depth = GetParam();
  config.async_apply = true;
  System system(config, FastEnv());
  auto data = TestData(1);
  system.Preload(data);

  const crypto::NodeId first_leader = config.ReplicaNode(0, 0);
  system.env().network().SetLinkFilter(
      [first_leader](sim::ActorId from, sim::ActorId,
                     const sim::MessagePtr& msg) {
        if (from != first_leader) return true;
        if (static_cast<wire::MessageType>(msg->type()) !=
            wire::MessageType::kLinearQc) {
          return true;
        }
        return static_cast<const wire::LinearQcMsg&>(*msg).phase !=
               wire::kLinearPhaseCommit;
      });
  system.Start();

  // Enough independent writers that the leader keeps the pipeline full
  // while the commit QCs silently vanish.
  Client* client = system.AddClient();
  int committed = 0;
  system.env().Schedule(sim::Millis(30), [&] {
    for (int i = 0; i < 8; ++i) {
      client->ExecuteReadWrite(
          {}, {WriteOp{data[static_cast<size_t>(i)].first, ToBytes("mw")}},
          [&](RwResult r) {
            if (r.committed) ++committed;
          });
    }
  });
  system.env().RunUntil(sim::Seconds(30));

  EXPECT_GT(committed, 0);
  const uint32_t n = config.replicas_per_cluster();
  bool view_advanced = false;
  for (uint32_t i = 0; i < n; ++i) {
    if (system.node(0, i)->view() > 0) view_advanced = true;
    ASSERT_GT(system.node(0, i)->log().size(), 0u) << "replica " << i;
  }
  EXPECT_TRUE(view_advanced);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      const auto& a = system.node(0, i)->log();
      const auto& b = system.node(0, j)->log();
      BatchId common = std::min(a.LastBatchId(), b.LastBatchId());
      for (BatchId id = 0; id <= common; ++id) {
        EXPECT_EQ(a.Get(id).value()->batch.ComputeDigest(),
                  b.Get(id).value()->batch.ComputeDigest())
            << "fork at batch " << id << " between replicas " << i << " and "
            << j << " at depth " << GetParam();
      }
    }
  }
}

// A byzantine replica reports its (real) locks with inflated view
// numbers during the view change, trying to outrank genuinely newer
// locks. The view-bind quorum embedded in each prepare QC certifies the
// true view, so the new leader drops the inflated reports and the
// cluster converges on the honestly locked batches.
TEST_F(LinearVoteTest, InflatedLockViewReportCannotHijackViewChange) {
  SystemConfig config = BaseConfig(ConsensusKind::kLinearVote,
                                   /*partitions=*/1);
  config.pipeline_depth = 2;
  System system(config, FastEnv());
  auto data = TestData(1);
  system.Preload(data);

  // Replicas lock (prepare QCs arrive) but never decide (commit QCs are
  // dropped), so the view change happens with live locks to report.
  const crypto::NodeId first_leader = config.ReplicaNode(0, 0);
  system.env().network().SetLinkFilter(
      [first_leader](sim::ActorId from, sim::ActorId,
                     const sim::MessagePtr& msg) {
        if (from != first_leader) return true;
        if (static_cast<wire::MessageType>(msg->type()) !=
            wire::MessageType::kLinearQc) {
          return true;
        }
        return static_cast<const wire::LinearQcMsg&>(*msg).phase !=
               wire::kLinearPhaseCommit;
      });
  system.Start();
  system.node(0, 2)->SetByzantineBehavior(
      core::ByzantineBehavior::kInflateLockView);

  Client* client = system.AddClient();
  std::optional<RwResult> result;
  system.env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite({}, {WriteOp{data[0].first, ToBytes("honest")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(30));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;
  const uint32_t n = config.replicas_per_cluster();
  bool view_advanced = false;
  for (uint32_t i = 0; i < n; ++i) {
    if (system.node(0, i)->view() > 0) view_advanced = true;
  }
  EXPECT_TRUE(view_advanced);
  // No fork, and every logged certificate still verifies at quorum size.
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      const auto& a = system.node(0, i)->log();
      const auto& b = system.node(0, j)->log();
      BatchId common = std::min(a.LastBatchId(), b.LastBatchId());
      for (BatchId id = 0; id <= common; ++id) {
        EXPECT_EQ(a.Get(id).value()->batch.ComputeDigest(),
                  b.Get(id).value()->batch.ComputeDigest())
            << "fork at batch " << id;
      }
    }
  }
  for (uint32_t i = 1; i < n; ++i) {
    const auto& log = system.node(0, i)->log();
    for (BatchId b = 0; b <= log.LastBatchId(); ++b) {
      EXPECT_TRUE(log.Get(b)
                      .value()
                      ->certificate
                      .Verify(system.verifier(), config.certificate_size(),
                              config.ClusterMembers(0))
                      .ok());
    }
  }
}

TEST_F(LinearVoteTest, LaggingReplicaCatchesUpWithoutViewChange) {
  SystemConfig config = BaseConfig(ConsensusKind::kLinearVote,
                                   /*partitions=*/1);
  System system(config, FastEnv());
  auto data = TestData(1);
  system.Preload(data);
  system.Start();
  system.env().RunUntil(sim::Millis(50));  // Genesis decided everywhere.

  const crypto::NodeId lagging = config.ReplicaNode(0, 2);
  system.env().network().Disconnect(lagging);

  Client* client = system.AddClient();
  int committed = 0;
  system.env().Schedule(sim::Millis(10), [&] {
    for (int i = 0; i < 5; ++i) {
      client->ExecuteReadWrite(
          {}, {WriteOp{data[static_cast<size_t>(i)].first, ToBytes("gap")}},
          [&](RwResult r) {
            if (r.committed) ++committed;
          });
    }
  });
  system.env().RunUntil(sim::Millis(400));
  EXPECT_EQ(committed, 5);
  EXPECT_LT(system.node(0, 2)->log().size(), system.node(0, 0)->log().size());

  system.env().network().Reconnect(lagging);
  // One more write makes the lagging replica see a proposal beyond its
  // log; its progress timer then requests a view change whose
  // last_committed triggers the catch-up transfer instead.
  system.env().Schedule(sim::Millis(10), [&] {
    client->ExecuteReadWrite({}, {WriteOp{data[10].first, ToBytes("after")}},
                             [&](RwResult r) {
                               if (r.committed) ++committed;
                             });
  });
  system.env().RunUntil(sim::Seconds(2));

  EXPECT_EQ(committed, 6);
  const auto& reference = system.node(0, 0)->log();
  const auto& lag_log = system.node(0, 2)->log();
  ASSERT_EQ(lag_log.size(), reference.size());
  for (BatchId id = 0; id <= reference.LastBatchId(); ++id) {
    EXPECT_EQ(lag_log.Get(id).value()->batch.ComputeDigest(),
              reference.Get(id).value()->batch.ComputeDigest())
        << "batch " << id;
  }
  // The transfer sufficed; nobody had to change views.
  for (uint32_t i = 0; i < config.replicas_per_cluster(); ++i) {
    EXPECT_EQ(system.node(0, i)->view(), 0u) << "replica " << i;
  }
  auto v = system.node(0, 2)->store().Get(data[10].first);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(ToString(v->value), "after");
}

TEST_F(LinearVoteTest, EquivocatingLeaderCannotCertifyEitherVariant) {
  SystemConfig config = BaseConfig(ConsensusKind::kLinearVote,
                                   /*partitions=*/1);
  System system(config, FastEnv());
  auto data = TestData(1);
  system.Preload(data);
  system.Start();
  // Equivocate from the start: not even genesis can gather a quorum of
  // matching votes, and the cluster elects an honest leader instead.
  system.node(0, 0)->SetByzantineBehavior(
      core::ByzantineBehavior::kEquivocate);

  Client* client = system.AddClient();
  std::optional<RwResult> result;
  system.env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite({}, {WriteOp{data[0].first, ToBytes("honest")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(30));

  // No batch proposed by the equivocator was certified on any honest
  // replica; once an honest leader takes over the write commits.
  for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
    const auto& log = system.node(0, i)->log();
    for (BatchId b = 0; b <= log.LastBatchId(); ++b) {
      EXPECT_TRUE(log.Get(b)
                      .value()
                      ->certificate
                      .Verify(system.verifier(), config.certificate_size(),
                              config.ClusterMembers(0))
                      .ok());
    }
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;
}

// ---------------------------------------------------------------------------
// Message complexity: the reason the linear engine exists
// ---------------------------------------------------------------------------

TEST(ConsensusInterfaceTest, LinearVoteSendsFewerMessagesPerBatch) {
  auto msgs_per_batch = [](ConsensusKind kind) {
    SystemConfig config = BaseConfig(kind, /*partitions=*/1, /*f=*/2);
    System system(config, FastEnv());
    auto data = TestData(1);
    system.Preload(data);
    system.Start();
    Client* client = system.AddClient();
    system.env().Schedule(sim::Millis(30), [&] {
      for (int i = 0; i < 30; ++i) {
        client->ExecuteReadWrite(
            {}, {WriteOp{data[static_cast<size_t>(i)].first, ToBytes("w")}},
            [](RwResult) {});
      }
    });
    system.env().RunUntil(sim::Seconds(2));

    uint64_t msgs = 0;
    uint64_t batches = system.node(0, 0)->stats().batches_decided;
    for (uint32_t i = 0; i < config.replicas_per_cluster(); ++i) {
      msgs += system.node(0, i)->stats().consensus_msgs_sent;
    }
    EXPECT_GT(batches, 0u);
    return static_cast<double>(msgs) / static_cast<double>(batches);
  };

  double pbft = msgs_per_batch(ConsensusKind::kPbft);
  double linear = msgs_per_batch(ConsensusKind::kLinearVote);
  // n = 7: PBFT ≈ n-1 + 2·n·(n-1) ≈ 90 per batch; linear ≈ 5·(n-1) = 30.
  EXPECT_LT(linear, pbft / 2.0)
      << "linear=" << linear << " pbft=" << pbft;
}

}  // namespace
}  // namespace transedge
