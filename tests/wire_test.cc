// Wire-format tests: round trips for every message type, plus decoder
// robustness (truncation and random-bytes fuzzing must yield clean
// errors, never crashes).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "wire/serialize.h"

namespace transedge::wire {
namespace {

crypto::Digest D(const std::string& s) { return crypto::Sha256::Hash(s); }

Transaction SampleTxn() {
  Transaction txn;
  txn.id = MakeTxnId(12, 34);
  txn.read_set = {ReadOp{"a", 3}, ReadOp{"b", kNoBatch}};
  txn.write_set = {WriteOp{"c", ToBytes("vc")}};
  txn.participants = {0, 2};
  txn.coordinator = 2;
  return txn;
}

storage::BatchCertificate SampleCert() {
  crypto::HmacSignatureScheme scheme(4, 1);
  storage::BatchCertificate cert;
  cert.partition = 1;
  cert.batch_id = 7;
  cert.batch_digest = D("batch");
  cert.merkle_root = D("root");
  cert.ro_digest = D("ro");
  cert.signatures.Add(scheme.MakeSigner(0)->Sign(cert.SignedPayload()));
  cert.signatures.Add(scheme.MakeSigner(1)->Sign(cert.SignedPayload()));
  return cert;
}

template <typename T>
std::shared_ptr<const T> RoundTrip(const T& msg) {
  Bytes encoded = EncodeMessage(msg);
  Result<sim::MessagePtr> decoded = DecodeMessage(encoded);
  EXPECT_TRUE(decoded.ok()) << decoded.status();
  if (!decoded.ok()) return nullptr;
  EXPECT_EQ((*decoded)->type(), msg.type());
  return std::static_pointer_cast<const T>(*decoded);
}

TEST(WireTest, ClientReadRequestRoundTrip) {
  ClientReadRequest msg;
  msg.request_id = 0xfeedULL << 32 | 7;
  msg.reply_to = 99;
  msg.key = "some-key";
  auto decoded = RoundTrip(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->request_id, msg.request_id);
  EXPECT_EQ(decoded->reply_to, msg.reply_to);
  EXPECT_EQ(decoded->key, msg.key);
}

TEST(WireTest, ClientReadReplyRoundTrip) {
  ClientReadReply msg;
  msg.request_id = 5;
  msg.key = "k";
  msg.found = true;
  msg.value = ToBytes("payload");
  msg.version = 42;
  auto decoded = RoundTrip(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->value, msg.value);
  EXPECT_EQ(decoded->version, msg.version);
}

TEST(WireTest, CommitRequestRoundTrip) {
  CommitRequest msg;
  msg.reply_to = 3;
  msg.txn = SampleTxn();
  auto decoded = RoundTrip(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->txn, msg.txn);
}

TEST(WireTest, CommitReplyRoundTrip) {
  CommitReply msg;
  msg.txn_id = 77;
  msg.committed = false;
  msg.reason = "conflict on key c";
  auto decoded = RoundTrip(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->reason, msg.reason);
}

TEST(WireTest, RoReplyRoundTripWithProofs) {
  merkle::MerkleTree tree(6);
  tree.Put("x", ToBytes("vx"), 4);
  tree.Put("y", ToBytes("vy"), 4);

  RoReply msg;
  msg.request_id = 9;
  msg.partition = 2;
  msg.batch_id = 4;
  AuthenticatedRead read;
  read.key = "x";
  read.found = true;
  read.value = ToBytes("vx");
  read.version = 4;
  read.proof = tree.Prove("x").value();
  msg.entries.push_back(read);
  msg.certificate = SampleCert();
  msg.cd_vector = txn::CdVector(3);
  msg.cd_vector.Set(0, 11);
  msg.lce = 2;
  msg.timestamp_us = 123456789;
  msg.second_round = true;

  auto decoded = RoundTrip(msg);
  ASSERT_NE(decoded, nullptr);
  ASSERT_EQ(decoded->entries.size(), 1u);
  EXPECT_EQ(decoded->entries[0].value, read.value);
  EXPECT_EQ(decoded->cd_vector, msg.cd_vector);
  EXPECT_EQ(decoded->lce, msg.lce);
  EXPECT_TRUE(decoded->second_round);
  // The decoded proof still verifies against the tree root.
  EXPECT_TRUE(merkle::MerkleTree::VerifyProof(decoded->entries[0].proof, "x",
                                              ToBytes("vx"), 4,
                                              tree.RootDigest())
                  .ok());
}

TEST(WireTest, PrePrepareRoundTrip) {
  PrePrepareMsg msg;
  msg.view = 3;
  msg.batch.partition = 1;
  msg.batch.id = 0;
  msg.batch.local.push_back(SampleTxn());
  msg.batch.ro.cd_vector = txn::CdVector(2);
  msg.leader_signature = crypto::Signature{1, D("sig")};
  msg.leader_cert_share = crypto::Signature{1, D("share")};
  auto decoded = RoundTrip(msg);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(decoded->batch, msg.batch);
  EXPECT_EQ(decoded->leader_signature, msg.leader_signature);
}

TEST(WireTest, TwoPcMessagesRoundTrip) {
  CoordPrepareMsg coord;
  coord.txn = SampleTxn();
  coord.coordinator = 2;
  coord.proof = SampleCert();
  auto coord_decoded = RoundTrip(coord);
  ASSERT_NE(coord_decoded, nullptr);
  EXPECT_EQ(coord_decoded->txn, coord.txn);

  PreparedMsg prepared;
  prepared.txn_id = 8;
  prepared.info.partition = 1;
  prepared.info.prepared_in_batch = 6;
  prepared.info.vote = true;
  prepared.info.cd_vector = txn::CdVector(3);
  prepared.proof = SampleCert();
  auto prepared_decoded = RoundTrip(prepared);
  ASSERT_NE(prepared_decoded, nullptr);
  EXPECT_EQ(prepared_decoded->info, prepared.info);

  CommitRecordMsg record;
  record.txn_id = 8;
  record.commit = true;
  record.participant_info.push_back(prepared.info);
  record.proof = SampleCert();
  auto record_decoded = RoundTrip(record);
  ASSERT_NE(record_decoded, nullptr);
  ASSERT_EQ(record_decoded->participant_info.size(), 1u);
  EXPECT_EQ(record_decoded->participant_info[0], prepared.info);
}

TEST(WireTest, ConsensusVotesRoundTrip) {
  PrepareMsg prepare;
  prepare.view = 1;
  prepare.batch_id = 5;
  prepare.batch_digest = D("d");
  prepare.cert_share = crypto::Signature{2, D("s")};
  auto p = RoundTrip(prepare);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->batch_digest, prepare.batch_digest);

  CommitMsg commit;
  commit.view = 1;
  commit.batch_id = 5;
  commit.batch_digest = D("d");
  auto c = RoundTrip(commit);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->batch_id, 5);

  ViewChangeMsg vc;
  vc.new_view = 2;
  vc.last_committed = 4;
  vc.signature = crypto::Signature{3, D("v")};
  auto v = RoundTrip(vc);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->new_view, 2u);
}

TEST(WireTest, LinearVoteMessagesRoundTrip) {
  LinearProposeMsg propose;
  propose.view = 3;
  propose.batch.partition = 1;
  propose.batch.id = 9;
  propose.batch.local = {SampleTxn()};
  propose.leader_signature = crypto::Signature{0, D("ls")};
  auto pr = RoundTrip(propose);
  ASSERT_NE(pr, nullptr);
  EXPECT_EQ(pr->view, 3u);
  EXPECT_EQ(pr->batch.id, 9);
  ASSERT_EQ(pr->batch.local.size(), 1u);
  EXPECT_EQ(pr->batch.local[0], propose.batch.local[0]);
  EXPECT_FALSE(pr->has_justify);
  // The simulation-only snapshot never travels.
  EXPECT_FALSE(pr->post_snapshot.valid());

  // A view-change re-proposal carries the justification QC.
  propose.has_justify = true;
  propose.justify_view = 2;
  propose.justify_cert = SampleCert();
  auto rp = RoundTrip(propose);
  ASSERT_NE(rp, nullptr);
  ASSERT_TRUE(rp->has_justify);
  EXPECT_EQ(rp->justify_view, 2u);
  EXPECT_EQ(rp->justify_cert.batch_id, propose.justify_cert.batch_id);
  EXPECT_EQ(rp->justify_cert.signatures.size(),
            propose.justify_cert.signatures.size());

  LinearVoteMsg vote;
  vote.view = 3;
  vote.batch_id = 9;
  vote.phase = kLinearPhaseCommit;
  vote.batch_digest = D("d");
  vote.share = crypto::Signature{2, D("s")};
  auto v = RoundTrip(vote);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->phase, kLinearPhaseCommit);
  EXPECT_EQ(v->batch_digest, vote.batch_digest);
  EXPECT_EQ(v->share, vote.share);

  LinearQcMsg qc;
  qc.view = 3;
  qc.phase = kLinearPhaseCommit;
  qc.cert = SampleCert();
  qc.commit_sigs.Add(crypto::Signature{1, D("c1")});
  qc.commit_sigs.Add(crypto::Signature{2, D("c2")});
  auto q = RoundTrip(qc);
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->cert.batch_id, qc.cert.batch_id);
  EXPECT_EQ(q->cert.signatures.size(), qc.cert.signatures.size());
  ASSERT_EQ(q->commit_sigs.size(), 2u);
  EXPECT_EQ(q->commit_sigs.signatures[1], qc.commit_sigs.signatures[1]);

  LinearViewChangeMsg vc;
  vc.new_view = 4;
  vc.last_committed = 8;
  vc.signature = crypto::Signature{3, D("v")};
  auto lvc = RoundTrip(vc);
  ASSERT_NE(lvc, nullptr);
  EXPECT_EQ(lvc->new_view, 4u);
  EXPECT_EQ(lvc->last_committed, 8);
  EXPECT_TRUE(lvc->locks.empty());

  // A locked replica reports its prepare QCs (one per in-flight slot)
  // with the view change, each carrying the QC's view-bind quorum.
  LinearLockReport report;
  report.view = 3;
  report.batch.partition = 1;
  report.batch.id = 9;
  report.batch.local = {SampleTxn()};
  report.cert = SampleCert();
  report.view_sigs.Add(crypto::Signature{1, D("vb1")});
  report.view_sigs.Add(crypto::Signature{2, D("vb2")});
  vc.locks.push_back(report);
  report.view = 4;
  report.batch.id = 10;
  vc.locks.push_back(report);
  auto locked = RoundTrip(vc);
  ASSERT_NE(locked, nullptr);
  ASSERT_EQ(locked->locks.size(), 2u);
  EXPECT_EQ(locked->locks[0].view, 3u);
  EXPECT_EQ(locked->locks[0].batch.id, 9);
  ASSERT_EQ(locked->locks[0].batch.local.size(), 1u);
  EXPECT_EQ(locked->locks[0].batch.local[0], vc.locks[0].batch.local[0]);
  EXPECT_EQ(locked->locks[0].cert.batch_id, vc.locks[0].cert.batch_id);
  ASSERT_EQ(locked->locks[0].view_sigs.size(), 2u);
  EXPECT_EQ(locked->locks[0].view_sigs.signatures[1],
            vc.locks[0].view_sigs.signatures[1]);
  EXPECT_EQ(locked->locks[1].view, 4u);
  EXPECT_EQ(locked->locks[1].batch.id, 10);

  LinearNewViewMsg nv;
  nv.new_view = 4;
  nv.proof.Add(crypto::Signature{0, D("p0")});
  nv.proof.Add(crypto::Signature{1, D("p1")});
  nv.proof.Add(crypto::Signature{2, D("p2")});
  auto n = RoundTrip(nv);
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->new_view, 4u);
  EXPECT_EQ(n->proof.size(), 3u);

  LinearCatchUpMsg cu;
  cu.batch.partition = 1;
  cu.batch.id = 7;
  cu.batch.local = {SampleTxn()};
  cu.cert = SampleCert();
  cu.view = 4;
  cu.view_proof.Add(crypto::Signature{0, D("p0")});
  auto c = RoundTrip(cu);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->batch.id, 7);
  ASSERT_EQ(c->batch.local.size(), 1u);
  EXPECT_EQ(c->batch.local[0], cu.batch.local[0]);
  EXPECT_EQ(c->cert.batch_id, cu.cert.batch_id);
  EXPECT_EQ(c->view, 4u);
  EXPECT_EQ(c->view_proof.size(), 1u);
}

TEST(WireTest, AugustusMessagesRoundTrip) {
  AugustusRoRequest req;
  req.request_id = 1;
  req.reply_to = 4;
  req.keys = {"a", "b"};
  ASSERT_NE(RoundTrip(req), nullptr);

  AugustusVoteRequest vote_req;
  vote_req.request_id = 1;
  vote_req.keys = {"a"};
  vote_req.snapshot_batch = 9;
  ASSERT_NE(RoundTrip(vote_req), nullptr);

  AugustusVoteReply vote;
  vote.request_id = 1;
  vote.vote = true;
  vote.signature = crypto::Signature{0, D("v")};
  ASSERT_NE(RoundTrip(vote), nullptr);

  AugustusRoReply reply;
  reply.request_id = 1;
  reply.partition = 0;
  reply.votes = 5;
  ASSERT_NE(RoundTrip(reply), nullptr);

  AugustusRelease release;
  release.request_id = 1;
  ASSERT_NE(RoundTrip(release), nullptr);
}

TEST(WireTest, TruncatedMessagesFailCleanly) {
  CommitRequest msg;
  msg.reply_to = 3;
  msg.txn = SampleTxn();
  Bytes encoded = EncodeMessage(msg);
  for (size_t cut = 0; cut < encoded.size(); cut += 3) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<long>(cut));
    Result<sim::MessagePtr> decoded = DecodeMessage(truncated);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(WireTest, TrailingGarbageRejected) {
  CommitReply msg;
  msg.txn_id = 1;
  Bytes encoded = EncodeMessage(msg);
  encoded.push_back(0xff);
  EXPECT_FALSE(DecodeMessage(encoded).ok());
}

// Fuzz: random byte strings must never crash the decoder.
class WireFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    size_t len = rng.NextBounded(200);
    Bytes garbage(len);
    for (uint8_t& b : garbage) b = static_cast<uint8_t>(rng.Next());
    Result<sim::MessagePtr> decoded = DecodeMessage(garbage);
    // Either a clean error or (rarely) a valid tiny message.
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.status().code(), StatusCode::kCorruption);
    }
  }
}

// Mutation fuzz: corrupt single bytes of valid encodings.
TEST_P(WireFuzzTest, MutatedValidMessagesNeverCrash) {
  RoReply msg;
  msg.request_id = 9;
  msg.partition = 2;
  msg.batch_id = 4;
  msg.certificate = SampleCert();
  msg.cd_vector = txn::CdVector(3);
  Bytes encoded = EncodeMessage(msg);

  Rng rng(GetParam() * 31);
  for (int i = 0; i < 2000; ++i) {
    Bytes mutated = encoded;
    size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    (void)DecodeMessage(mutated);  // Must not crash or hang.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace transedge::wire
