// Meta-test for tools/check: runs the static analysis suite against
// seeded-violation fixture trees so the rules themselves are
// regression-tested, and against the real repo so the tree stays at
// zero unsuppressed findings.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "check/check.h"
#include "check/report.h"

namespace transedge::check {
namespace {

std::map<std::string, int> CountByRule(const RunResult& result) {
  std::map<std::string, int> counts;
  for (const Finding& f : result.findings) ++counts[f.rule];
  return counts;
}

bool HasFinding(const RunResult& result, const std::string& file, int line,
                const std::string& rule) {
  return std::any_of(result.findings.begin(), result.findings.end(),
                     [&](const Finding& f) {
                       return f.file == file && f.line == line &&
                              f.rule == rule;
                     });
}

const std::string kFixtures = TRANSEDGE_CHECK_FIXTURES;

TEST(StaticCheckTest, ViolationsTreeCatchesEverySeededViolation) {
  RunResult result = RunChecksOnTree(kFixtures + "/violations");

  std::map<std::string, int> counts = CountByRule(result);
  EXPECT_EQ(counts["unordered-iter"], 3);
  EXPECT_EQ(counts["malformed-allow"], 1);
  EXPECT_EQ(counts["banned-call"], 3);
  EXPECT_EQ(counts["wire-parity"], 5);
  EXPECT_EQ(counts["page-format-parity"], 5);
  EXPECT_EQ(counts["layer-order"], 1);
  EXPECT_EQ(counts["engine-isolation"], 1);
  EXPECT_EQ(counts["consensus-seam"], 1);
  EXPECT_EQ(counts["external-include"], 2);
  EXPECT_EQ(counts["include-cycle"], 1);
  EXPECT_EQ(result.findings.size(), 23u);
}

TEST(StaticCheckTest, UnorderedIterationFlaggedAtExactSites) {
  RunResult result = RunChecksOnTree(kFixtures + "/violations");

  // Range-for and iterator loop over unordered members.
  EXPECT_TRUE(
      HasFinding(result, "src/core/vstate.cc", 9, "unordered-iter"));
  EXPECT_TRUE(
      HasFinding(result, "src/core/vstate.cc", 12, "unordered-iter"));
  // A reason-less annotation is malformed AND does not suppress.
  EXPECT_TRUE(
      HasFinding(result, "src/core/vstate.cc", 26, "malformed-allow"));
  EXPECT_TRUE(
      HasFinding(result, "src/core/vstate.cc", 27, "unordered-iter"));
}

TEST(StaticCheckTest, AllowAnnotationSuppressesWithReason) {
  RunResult result = RunChecksOnTree(kFixtures + "/violations");

  // The properly annotated loop in CountAllowed must be suppressed, not
  // flagged, and the report must carry the documented justification.
  EXPECT_FALSE(
      HasFinding(result, "src/core/vstate.cc", 20, "unordered-iter"));
  bool found = false;
  for (const RunResult::Suppressed& s : result.suppressed) {
    if (s.finding.file == "src/core/vstate.cc" && s.finding.line == 20) {
      found = true;
      EXPECT_EQ(s.reason, "pure accumulation; order-insensitive.");
    }
  }
  EXPECT_TRUE(found);
}

TEST(StaticCheckTest, BannedCallsFlaggedOutsideSimAndRng) {
  RunResult result = RunChecksOnTree(kFixtures + "/violations");

  EXPECT_TRUE(HasFinding(result, "src/core/clocky.cc", 7, "banned-call"));
  EXPECT_TRUE(HasFinding(result, "src/core/clocky.cc", 12, "banned-call"));
  EXPECT_TRUE(HasFinding(result, "src/core/clocky.cc", 14, "banned-call"));
  // The simulator may consult wall clocks: sim/ is exempt.
  for (const Finding& f : result.findings) {
    EXPECT_NE(f.file, "src/sim/jitter.cc") << f.message;
  }
}

TEST(StaticCheckTest, WireParityCatchesDriftInBothDirections) {
  RunResult result = RunChecksOnTree(kFixtures + "/violations");

  // DriftMsg: b serialized-only, c deserialized-only, d in neither.
  EXPECT_TRUE(HasFinding(result, "src/wire/message.h", 20, "wire-parity"));
  EXPECT_TRUE(HasFinding(result, "src/wire/message.h", 21, "wire-parity"));
  EXPECT_TRUE(HasFinding(result, "src/wire/message.h", 22, "wire-parity"));
  // OrphanMsg: missing EncodeBody and missing Decode, both reported at
  // the struct declaration.
  int orphan = 0;
  for (const Finding& f : result.findings) {
    if (f.file == "src/wire/message.h" && f.line == 30) ++orphan;
  }
  EXPECT_EQ(orphan, 2);
  // GhostMsg: struct-level allow exempts the whole message, visibly.
  bool ghost_suppressed = false;
  for (const RunResult::Suppressed& s : result.suppressed) {
    if (s.finding.file == "src/wire/message.h" && s.finding.line == 26) {
      ghost_suppressed = true;
    }
  }
  EXPECT_TRUE(ghost_suppressed);
}

TEST(StaticCheckTest, PageFormatParityCatchesDriftInBothDirections) {
  RunResult result = RunChecksOnTree(kFixtures + "/violations");

  // DriftHdr: b encoded-only, c decoded-only, pad in neither.
  EXPECT_TRUE(HasFinding(result, "src/storage/paged/format.h", 12,
                         "page-format-parity"));
  EXPECT_TRUE(HasFinding(result, "src/storage/paged/format.h", 13,
                         "page-format-parity"));
  EXPECT_TRUE(HasFinding(result, "src/storage/paged/format.h", 14,
                         "page-format-parity"));
  // OrphanHdr: missing EncodeTo and missing DecodeFrom definitions, both
  // reported at the struct declaration.
  int orphan = 0;
  for (const Finding& f : result.findings) {
    if (f.file == "src/storage/paged/format.h" && f.line == 27) ++orphan;
  }
  EXPECT_EQ(orphan, 2);
  // GhostHdr: struct-level allow exempts the whole record, visibly.
  bool ghost_suppressed = false;
  for (const RunResult::Suppressed& s : result.suppressed) {
    if (s.finding.file == "src/storage/paged/format.h" &&
        s.finding.line == 21) {
      ghost_suppressed = true;
    }
  }
  EXPECT_TRUE(ghost_suppressed);
  // RuntimeOnly declares no EncodeTo, so it is outside the contract.
  for (const Finding& f : result.findings) {
    EXPECT_FALSE(f.file == "src/storage/paged/format.h" && f.line >= 35)
        << f.message;
  }
}

TEST(StaticCheckTest, LayeringEdgesFlaggedAtIncludeSites) {
  RunResult result = RunChecksOnTree(kFixtures + "/violations");

  EXPECT_TRUE(
      HasFinding(result, "src/common/bad_layer.h", 6, "layer-order"));
  EXPECT_TRUE(HasFinding(result, "src/core/batch_pipeline.h", 5,
                         "engine-isolation"));
  EXPECT_TRUE(HasFinding(result, "src/core/consensus/rogue.cc", 3,
                         "consensus-seam"));
  EXPECT_TRUE(
      HasFinding(result, "src/core/evil.cc", 2, "external-include"));
  EXPECT_TRUE(
      HasFinding(result, "src/core/evil.cc", 3, "external-include"));
  EXPECT_TRUE(
      HasFinding(result, "src/core/cyc_b.h", 2, "include-cycle"));
}

TEST(StaticCheckTest, CleanTreeReportsNothing) {
  RunResult result = RunChecksOnTree(kFixtures + "/clean");
  for (const Finding& f : result.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
  // The annotated loop in state.cc is the one (visible) suppression.
  EXPECT_EQ(result.suppressed.size(), 1u);
  EXPECT_GT(result.files_scanned, 0);
}

TEST(StaticCheckTest, CheckerOutputIsDeterministic) {
  RunResult a = RunChecksOnTree(kFixtures + "/violations");
  RunResult b = RunChecksOnTree(kFixtures + "/violations");
  EXPECT_EQ(FormatJson(a), FormatJson(b));
  EXPECT_EQ(FormatText(a), FormatText(b));
}

TEST(StaticCheckTest, RealTreeHasZeroUnsuppressedFindings) {
  RunResult result = RunChecksOnTree(TRANSEDGE_CHECK_ROOT);
  for (const Finding& f : result.findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": " << f.rule << ": "
                  << f.message;
  }
  // Sanity: the walker really scanned the repo, and every suppression
  // carries a documented reason.
  EXPECT_GT(result.files_scanned, 40);
  for (const RunResult::Suppressed& s : result.suppressed) {
    EXPECT_FALSE(s.reason.empty())
        << s.finding.file << ":" << s.finding.line;
  }
}

}  // namespace
}  // namespace transedge::check
