// Regression tests for the admission-pipeline lifecycle bugs that PR 1's
// decomposition exposed: clients waiting on admissions abandoned by a
// view change used to hang until the 2 s client timeout; applied
// transactions never drained the leader's dedup set; and a round-2
// read-only request with an impossible dependency parked forever.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/system.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using core::RwResult;
using core::System;
using core::SystemConfig;

struct Fixture {
  SystemConfig config;
  std::unique_ptr<System> system;
  std::vector<std::pair<Key, Value>> data;
  storage::PartitionMap pmap;

  explicit Fixture(uint32_t partitions = 1, uint32_t f = 1,
                   uint32_t pipeline_shards = 1, uint64_t seed = 77,
                   sim::Time latency_jitter = sim::Micros(100))
      : pmap(partitions) {
    config.num_partitions = partitions;
    config.f = f;
    config.batch_interval = sim::Millis(5);
    config.view_change_timeout = sim::Millis(80);
    config.merkle_depth = 8;
    config.pipeline_shards = pipeline_shards;
    sim::EnvironmentOptions env_opts;
    env_opts.seed = seed;
    env_opts.inter_site_latency = sim::Millis(1);
    env_opts.latency_jitter = latency_jitter;
    system = std::make_unique<System>(config, env_opts);
    workload::WorkloadOptions wopts;
    wopts.num_keys = 200;
    wopts.value_size = 8;
    data = workload::KeySpace(wopts, partitions).InitialData();
    system->Preload(data);
    system->Start();
  }

  Key KeyIn(PartitionId p, size_t skip = 0) {
    for (const auto& [key, value] : data) {
      if (pmap.OwnerOf(key) == p && skip-- == 0) return key;
    }
    ADD_FAILURE();
    return "";
  }
};

class PipelineLifecycleTest : public ::testing::TestWithParam<uint32_t> {};
INSTANTIATE_TEST_SUITE_P(ShardCounts, PipelineLifecycleTest,
                         ::testing::Values(1u, 4u));

// A view change used to clear the in-progress queues but never answer
// local_waiting_clients_: the client sat out its full 2 s timeout before
// retrying. The leader now sends a retryable "view change" abort, so the
// client re-issues against the new leader immediately and commits well
// before the timeout could even fire once.
TEST_P(PipelineLifecycleTest, ViewChangeAbortsWaitingClientsWhoThenCommit) {
  // f = 2 so a half-split equivocation can never reach the 2f+1 quorum:
  // the genesis proposal stalls and the cluster must change views while
  // the client's admission is parked at the equivocator.
  Fixture fx(/*partitions=*/1, /*f=*/2, /*pipeline_shards=*/GetParam());
  fx.system->node(0, 0)->SetByzantineBehavior(
      core::ByzantineBehavior::kEquivocate);
  Client* client = fx.system->AddClient();

  std::optional<RwResult> result;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite({}, {WriteOp{fx.KeyIn(0), ToBytes("survives")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  fx.system->env().RunUntil(sim::Seconds(10));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;
  // The abort-and-retry path resolves in view-change time (~100 ms), not
  // client-timeout time (>= 2 s) — this is the regression assertion.
  EXPECT_LT(result->latency, sim::Millis(1500));
  EXPECT_EQ(client->stats().timeouts, 0u);
  // The demoted leader holds no orphaned admission state.
  EXPECT_EQ(fx.system->node(0, 0)->in_progress_size(), 0u);
  EXPECT_EQ(fx.system->node(0, 0)->seen_txn_count(), 0u);
}

// OnBatchApplied used to early-return on non-leaders and never erase
// applied transactions from seen_txns_, so the dedup set grew without
// bound on every replica that ever led. It must drain as batches apply.
TEST_P(PipelineLifecycleTest, DedupSetDrainsAsBatchesApply) {
  Fixture fx(/*partitions=*/1, /*f=*/1, /*pipeline_shards=*/GetParam());
  Client* client = fx.system->AddClient();

  int committed = 0;
  auto loop = std::make_shared<std::function<void()>>();
  auto* loop_fn = loop.get();
  *loop = [&, loop_fn] {
    if (committed >= 20) return;
    Key key = fx.KeyIn(0, static_cast<size_t>(committed % 5));
    client->ExecuteReadWrite({}, {WriteOp{key, ToBytes("w")}},
                             [&, loop_fn](RwResult r) {
                               ASSERT_TRUE(r.committed) << r.reason;
                               ++committed;
                               (*loop_fn)();
                             });
  };
  fx.system->env().Schedule(sim::Millis(30), *loop);
  fx.system->env().RunUntil(sim::Seconds(5));

  ASSERT_EQ(committed, 20);
  for (uint32_t i = 0; i < fx.config.replicas_per_cluster(); ++i) {
    EXPECT_EQ(fx.system->node(0, i)->seen_txn_count(), 0u)
        << "replica " << i << " retains dedup entries for applied txns";
    EXPECT_EQ(fx.system->node(0, i)->in_progress_size(), 0u);
  }
}

// Probe actor for hand-crafted wire traffic.
struct ReplyProbe : sim::Actor {
  std::vector<wire::RoReply> replies;
  void OnMessage(sim::ActorId, const sim::MessagePtr& msg) override {
    if (static_cast<wire::MessageType>(msg->type()) ==
        wire::MessageType::kRoReply) {
      replies.push_back(static_cast<const wire::RoReply&>(*msg));
    }
  }
};

// A round-2 request whose min_lce lies beyond anything this cluster
// could have certified used to park forever (and, had the log window
// moved, BuildRoReply would have dereferenced an error Result). It now
// draws an explicit unserviceable kNoBatch reply.
TEST(RoWindowTest, OutOfWindowRound2RequestGetsNoBatch) {
  Fixture fx(/*partitions=*/1, /*f=*/1);
  fx.system->env().RunUntil(sim::Millis(100));  // Genesis certified.

  ReplyProbe probe;
  sim::ActorId probe_id = fx.config.ClientNode(1000);
  fx.system->env().network().Register(probe_id, /*site=*/0, &probe);

  const core::TransEdgeNode* leader = fx.system->leader(0);
  wire::RoBatchRequest bogus;
  bogus.request_id = 0xdead;
  bogus.reply_to = probe_id;
  bogus.keys = {fx.KeyIn(0)};
  // Far beyond the log head + retained snapshot window.
  bogus.min_lce = leader->log().LastBatchId() +
                  static_cast<BatchId>(fx.config.snapshot_history) + 100;
  fx.system->env().network().Send(probe_id, leader->id(),
                                  core::ShareMsg(std::move(bogus)));
  fx.system->env().RunUntil(fx.system->env().now() + sim::Millis(200));

  ASSERT_EQ(probe.replies.size(), 1u);
  EXPECT_EQ(probe.replies[0].request_id, 0xdeadu);
  EXPECT_EQ(probe.replies[0].batch_id, kNoBatch);
  EXPECT_EQ(fx.system->leader(0)->stats().ro_round2_rejected, 1u);
  EXPECT_EQ(fx.system->leader(0)->stats().ro_round2_parked, 0u);
}

// A *satisfiable* future dependency must still park and then be served
// once the LCE advances — the horizon guard must not over-reject.
TEST(RoWindowTest, NearFutureDependencyStillParks) {
  Fixture fx(/*partitions=*/2, /*f=*/1);
  fx.system->env().RunUntil(sim::Millis(100));

  ReplyProbe probe;
  sim::ActorId probe_id = fx.config.ClientNode(1001);
  fx.system->env().network().Register(probe_id, /*site=*/0, &probe);

  const core::TransEdgeNode* leader = fx.system->leader(0);
  wire::RoBatchRequest req;
  req.request_id = 0xbeef;
  req.reply_to = probe_id;
  req.keys = {fx.KeyIn(0)};
  // One past the current LCE: parked until a distributed commit lands.
  req.min_lce = leader->log().back().batch.ro.lce + 1;
  fx.system->env().network().Send(probe_id, leader->id(),
                                  core::ShareMsg(std::move(req)));
  fx.system->env().RunUntil(fx.system->env().now() + sim::Millis(50));
  EXPECT_EQ(fx.system->leader(0)->stats().ro_round2_parked, 1u);
  EXPECT_TRUE(probe.replies.empty());

  // A distributed transaction commits, the LCE advances, the parked
  // request is served with a real batch.
  Client* client = fx.system->AddClient();
  std::optional<RwResult> rw;
  client->ExecuteReadWrite({}, {WriteOp{fx.KeyIn(0), ToBytes("x")},
                                WriteOp{fx.KeyIn(1), ToBytes("y")}},
                           [&](RwResult r) { rw = std::move(r); });
  fx.system->env().RunUntil(fx.system->env().now() + sim::Seconds(3));

  ASSERT_TRUE(rw.has_value());
  EXPECT_TRUE(rw->committed) << rw->reason;
  ASSERT_EQ(probe.replies.size(), 1u);
  EXPECT_NE(probe.replies[0].batch_id, kNoBatch);
  EXPECT_GE(probe.replies[0].lce, 0);
}

// ---------------------------------------------------------------------------
// Decided vs. applied: the async apply queue and its watermarks
// ---------------------------------------------------------------------------

struct AsyncApplyFixture {
  SystemConfig config;
  std::unique_ptr<System> system;
  std::vector<std::pair<Key, Value>> data;
  storage::PartitionMap pmap;

  explicit AsyncApplyFixture(uint32_t pipeline_depth, sim::Time apply_per_txn,
                             uint32_t apply_shards = 1)
      : pmap(1) {
    config.num_partitions = 1;
    config.f = 1;
    config.consensus_kind = core::ConsensusKind::kLinearVote;
    config.batch_interval = sim::Millis(5);
    config.view_change_timeout = sim::Millis(500);
    config.merkle_depth = 8;
    config.pipeline_depth = pipeline_depth;
    config.async_apply = true;
    config.apply_shards = apply_shards;
    config.cost.apply_per_txn = apply_per_txn;
    sim::EnvironmentOptions env_opts;
    env_opts.seed = 77;
    env_opts.inter_site_latency = sim::Millis(1);
    system = std::make_unique<System>(config, env_opts);
    workload::WorkloadOptions wopts;
    wopts.num_keys = 200;
    wopts.value_size = 8;
    data = workload::KeySpace(wopts, 1).InitialData();
    system->Preload(data);
    system->Start();
  }
};

// With apply cost inflated ~100× and a deep pipeline, the decided
// watermark (the log tail) runs ahead of last_applied while the apply
// worker grinds; read-only clients served from the applied snapshot
// window must still see committed data, and the watermarks must converge
// once the workload drains.
TEST(AsyncApplyTest, ReadsServeAppliedSnapshotWhileApplyLagsDecided) {
  AsyncApplyFixture fx(/*pipeline_depth=*/4,
                       /*apply_per_txn=*/sim::Micros(600));
  Client* client = fx.system->AddClient();

  int committed = 0;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    for (int i = 0; i < 24; ++i) {
      client->ExecuteReadWrite(
          {}, {WriteOp{fx.data[static_cast<size_t>(i)].first,
                       ToBytes("v" + std::to_string(i))}},
          [&](core::RwResult r) {
            EXPECT_TRUE(r.committed) << r.reason;
            ++committed;
          });
    }
  });

  // Sample the watermark gap while the run is hot. The probe reads both
  // watermarks off the leader; any positive gap proves the storage stack
  // left the decision critical path.
  BatchId max_lag = 0;
  std::function<void()> probe = [&] {
    const core::TransEdgeNode* node = fx.system->node(0, 0);
    BatchId decided = node->log().LastBatchId();
    BatchId applied = node->last_applied();
    if (decided != kNoBatch && decided > applied) {
      max_lag = std::max(max_lag, decided - applied);
    }
    if (fx.system->env().now() < sim::Seconds(2)) {
      fx.system->env().Schedule(sim::Millis(1), probe);
    }
  };
  fx.system->env().Schedule(sim::Millis(31), probe);

  fx.system->env().RunUntil(sim::Seconds(8));
  EXPECT_EQ(committed, 24);
  EXPECT_GT(max_lag, 0) << "apply never lagged decided: the queue is not "
                           "actually asynchronous";

  // Drained: the watermarks converge on every replica.
  for (uint32_t i = 0; i < fx.config.replicas_per_cluster(); ++i) {
    const core::TransEdgeNode* node = fx.system->node(0, i);
    EXPECT_EQ(node->last_applied(), node->log().LastBatchId())
        << "replica " << i;
  }

  // Authenticated reads over written keys verify and return the
  // committed values (served from the applied snapshot window).
  std::optional<core::RoResult> ro;
  client->ExecuteReadOnly({fx.data[0].first, fx.data[5].first},
                          [&](core::RoResult r) { ro = std::move(r); });
  fx.system->env().RunUntil(fx.system->env().now() + sim::Seconds(2));
  ASSERT_TRUE(ro.has_value());
  ASSERT_TRUE(ro->status.ok()) << ro->status;
  ASSERT_TRUE(ro->values.at(fx.data[0].first).has_value());
  EXPECT_EQ(ToString(*ro->values.at(fx.data[0].first)), "v0");
  ASSERT_TRUE(ro->values.at(fx.data[5].first).has_value());
  EXPECT_EQ(ToString(*ro->values.at(fx.data[5].first)), "v5");
}

// Sharded apply must produce the same state and the same convergence —
// only the charged cost differs (slowest shard + recombine, not the
// serial sum).
TEST(AsyncApplyTest, ShardedApplyConvergesToSameStateAsSerial) {
  auto run = [](uint32_t shards) {
    AsyncApplyFixture fx(/*pipeline_depth=*/2,
                         /*apply_per_txn=*/sim::Micros(120), shards);
    Client* client = fx.system->AddClient();
    int committed = 0;
    fx.system->env().Schedule(sim::Millis(30), [&] {
      for (int i = 0; i < 12; ++i) {
        client->ExecuteReadWrite(
            {}, {WriteOp{fx.data[static_cast<size_t>(i)].first,
                         ToBytes("s" + std::to_string(i))}},
            [&](core::RwResult r) {
              EXPECT_TRUE(r.committed) << r.reason;
              ++committed;
            });
      }
    });
    fx.system->env().RunUntil(sim::Seconds(8));
    EXPECT_EQ(committed, 12);
    std::map<Key, std::string> state;
    for (int i = 0; i < 12; ++i) {
      auto v = fx.system->node(0, 0)->store().Get(
          fx.data[static_cast<size_t>(i)].first);
      EXPECT_TRUE(v.ok());
      if (v.ok()) state[fx.data[static_cast<size_t>(i)].first] =
          ToString(v->value);
    }
    // Every replica agrees with replica 0 and finished applying.
    for (uint32_t r = 1; r < fx.config.replicas_per_cluster(); ++r) {
      const core::TransEdgeNode* node = fx.system->node(0, r);
      EXPECT_EQ(node->last_applied(), node->log().LastBatchId());
      for (const auto& [key, value] : state) {
        auto v = node->store().Get(key);
        EXPECT_TRUE(v.ok());
        if (v.ok()) {
          EXPECT_EQ(ToString(v->value), value) << "replica " << r;
        }
      }
    }
    return state;
  };

  std::map<Key, std::string> serial = run(1);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(8), serial);
}

// ---------------------------------------------------------------------------
// View-change abort drain: reply order must be deterministic
// ---------------------------------------------------------------------------

// Probe recording client-facing commit replies in arrival order.
struct CommitReplyProbe : sim::Actor {
  std::vector<wire::CommitReply> replies;
  void OnMessage(sim::ActorId, const sim::MessagePtr& msg) override {
    if (static_cast<wire::MessageType>(msg->type()) ==
        wire::MessageType::kCommitReply) {
      replies.push_back(static_cast<const wire::CommitReply&>(*msg));
    }
  }
};

// Parks `count` admissions (scrambled TxnIds) at a stalled leader, lets
// the view change abort them all, and returns the TxnIds in the order
// the abort replies arrived.
std::vector<TxnId> AbortDrainOrder(uint64_t seed, size_t count) {
  // Zero link jitter: all abort replies leave at the same instant, so
  // arrival order at the probe is exactly the leader's send order (the
  // event queue breaks timestamp ties by insertion) — the thing the
  // sorted drain must make deterministic.
  Fixture fx(/*partitions=*/1, /*f=*/2, /*pipeline_shards=*/1, seed,
             /*latency_jitter=*/0);
  fx.system->node(0, 0)->SetByzantineBehavior(
      core::ByzantineBehavior::kEquivocate);

  CommitReplyProbe probe;
  sim::ActorId probe_id = fx.config.ClientNode(1002);
  fx.system->env().network().Register(probe_id, /*site=*/0, &probe);

  fx.system->env().Schedule(sim::Millis(30), [&] {
    for (size_t i = 0; i < count; ++i) {
      // Scrambled submission order: (i * 5) mod count visits every
      // residue once for count coprime with 5.
      uint32_t k = static_cast<uint32_t>((i * 5) % count);
      wire::CommitRequest req;
      req.reply_to = probe_id;
      req.txn.id = MakeTxnId(2000 + k, 1);
      req.txn.write_set = {WriteOp{fx.KeyIn(0, k), ToBytes("w")}};
      req.txn.participants = {0};
      fx.system->env().network().Send(probe_id, fx.system->leader(0)->id(),
                                      core::ShareMsg(std::move(req)));
    }
  });
  fx.system->env().RunUntil(sim::Seconds(2));

  std::vector<TxnId> order;
  for (const wire::CommitReply& reply : probe.replies) {
    EXPECT_FALSE(reply.committed);
    EXPECT_TRUE(reply.retryable) << reply.reason;
    order.push_back(reply.txn_id);
  }
  return order;
}

// local_waiting_clients_ is an unordered_map; draining it directly on a
// view change would emit the abort replies — externally visible
// messages — in hash-table order, forking the downstream event schedule
// between hash implementations. The drain must sort by TxnId first, so
// the reply sequence is identical run to run and seed to seed.
TEST(ViewChangeAbortOrderTest, AbortRepliesDrainInTxnIdOrder) {
  std::vector<TxnId> order = AbortDrainOrder(/*seed=*/77, /*count=*/8);
  ASSERT_EQ(order.size(), 8u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));

  // Same seed: bit-identical replay.
  EXPECT_EQ(AbortDrainOrder(/*seed=*/77, /*count=*/8), order);
  // Different network seed: timing jitter differs, the drain order must
  // not (same scrambled ids, still TxnId-sorted).
  EXPECT_EQ(AbortDrainOrder(/*seed=*/1234, /*count=*/8), order);
}

}  // namespace
}  // namespace transedge
