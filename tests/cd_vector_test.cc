// Unit tests for the Conflict-Dependency vector — the core bookkeeping of
// TransEdge's read-only protocol (Algorithm 1's merge step and the
// dependency-coverage check used by Algorithm 2).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "txn/cd_vector.h"

namespace transedge::txn {
namespace {

TEST(CdVectorTest, StartsWithNoDependencies) {
  CdVector v(4);
  EXPECT_EQ(v.size(), 4u);
  for (PartitionId p = 0; p < 4; ++p) EXPECT_EQ(v.Get(p), kNoBatch);
}

TEST(CdVectorTest, SetGet) {
  CdVector v(3);
  v.Set(1, 42);
  EXPECT_EQ(v.Get(1), 42);
  EXPECT_EQ(v.Get(0), kNoBatch);
}

TEST(CdVectorTest, PairwiseMaxTakesEntryWiseMaximum) {
  CdVector a(3), b(3);
  a.Set(0, 5);
  a.Set(1, 2);
  b.Set(1, 7);
  b.Set(2, 1);
  a.PairwiseMax(b);
  EXPECT_EQ(a.Get(0), 5);
  EXPECT_EQ(a.Get(1), 7);
  EXPECT_EQ(a.Get(2), 1);
}

TEST(CdVectorTest, PairwiseMaxIsIdempotent) {
  CdVector a(3), b(3);
  a.Set(0, 5);
  b.Set(1, 7);
  a.PairwiseMax(b);
  CdVector once = a;
  a.PairwiseMax(b);
  EXPECT_EQ(a, once);
}

TEST(CdVectorTest, PairwiseMaxIsCommutativeInEffect) {
  CdVector a(4), b(4);
  a.Set(0, 3);
  a.Set(2, 9);
  b.Set(0, 5);
  b.Set(3, 1);
  CdVector ab = a;
  ab.PairwiseMax(b);
  CdVector ba = b;
  ba.PairwiseMax(a);
  EXPECT_EQ(ab, ba);
}

TEST(CdVectorTest, CoveredBy) {
  CdVector deps(3), lce(3);
  deps.Set(0, 4);
  deps.Set(1, 2);
  lce.Set(0, 4);
  lce.Set(1, 3);
  lce.Set(2, 10);
  EXPECT_TRUE(deps.CoveredBy(lce));   // Every entry <=.
  EXPECT_FALSE(lce.CoveredBy(deps));  // Not the other way.
  deps.Set(2, 11);
  EXPECT_FALSE(deps.CoveredBy(lce));
}

TEST(CdVectorTest, NoDependencyIsAlwaysCovered) {
  CdVector deps(2), other(2);
  EXPECT_TRUE(deps.CoveredBy(other));
}

TEST(CdVectorTest, EncodeDecodeRoundTrip) {
  CdVector v(5);
  v.Set(0, 0);
  v.Set(2, 123456789);
  v.Set(4, kNoBatch);
  Encoder enc;
  v.EncodeTo(&enc);
  Decoder dec(enc.buffer());
  CdVector decoded = CdVector::DecodeFrom(&dec).value();
  EXPECT_EQ(decoded, v);
}

TEST(CdVectorTest, ToStringFormat) {
  CdVector v(3);
  v.Set(0, 2);
  v.Set(2, 5);
  EXPECT_EQ(v.ToString(), "[2,-1,5]");
}

// Property sweep: the transitive-closure property Algorithm 1 relies on —
// folding reported vectors with PairwiseMax yields a vector that covers
// every input (Lemma 4.2/4.3's mechanical core).
class CdVectorFoldTest : public ::testing::TestWithParam<int> {};

TEST_P(CdVectorFoldTest, FoldCoversAllInputs) {
  int n = GetParam();
  Rng rng(static_cast<uint64_t>(n) * 31 + 7);
  std::vector<CdVector> reported;
  for (int i = 0; i < 10; ++i) {
    CdVector v(static_cast<size_t>(n));
    for (int p = 0; p < n; ++p) {
      if (rng.NextBernoulli(0.6)) {
        v.Set(static_cast<PartitionId>(p),
              static_cast<BatchId>(rng.NextBounded(100)));
      }
    }
    reported.push_back(std::move(v));
  }
  CdVector folded(static_cast<size_t>(n));
  for (const CdVector& v : reported) folded.PairwiseMax(v);
  for (const CdVector& v : reported) {
    EXPECT_TRUE(v.CoveredBy(folded));
  }
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, CdVectorFoldTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16));

}  // namespace
}  // namespace transedge::txn
