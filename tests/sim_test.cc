#include <gtest/gtest.h>

#include <vector>

#include "sim/environment.h"

namespace transedge::sim {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, TiesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, EventsScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) q.ScheduleAt(q.now() + 10, chain);
  };
  q.ScheduleAt(0, chain);
  q.RunUntilIdle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(q.now(), 40);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] { ++fired; });
  q.ScheduleAt(20, [&] { ++fired; });
  q.ScheduleAt(30, [&] { ++fired; });
  q.RunUntil(20);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, RunUntilAdvancesClockWhenIdle) {
  EventQueue q;
  q.RunUntil(100);
  EXPECT_EQ(q.now(), 100);
}

TEST(CpuMeterTest, SerializesWork) {
  CpuMeter cpu;
  EXPECT_EQ(cpu.Charge(0, 10), 10);
  EXPECT_EQ(cpu.Charge(0, 10), 20);   // Queued behind the first job.
  EXPECT_EQ(cpu.Charge(100, 5), 105);  // Idle gap skipped.
}

// --- Network -----------------------------------------------------------------

struct Probe : Actor {
  std::vector<std::pair<ActorId, uint32_t>> received;
  EventQueue* q = nullptr;
  std::vector<Time> arrival_times;

  void OnMessage(ActorId from, const MessagePtr& msg) override {
    received.emplace_back(from, msg->type());
    if (q != nullptr) arrival_times.push_back(q->now());
  }
};

struct TestMsg : Message {
  uint32_t type() const override { return 777; }
};

TEST(NetworkTest, DeliversWithIntraSiteLatency) {
  EventQueue q;
  Network net(&q, LatencyModel(Micros(100), Millis(5), 0), 1);
  Probe a, b;
  b.q = &q;
  net.Register(0, 0, &a);
  net.Register(1, 0, &b);
  net.Send(0, 1, std::make_shared<const TestMsg>());
  q.RunUntilIdle();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, 0u);
  EXPECT_EQ(b.arrival_times[0], Micros(100));
}

TEST(NetworkTest, InterSiteLatencyApplies) {
  EventQueue q;
  Network net(&q, LatencyModel(Micros(100), Millis(5), 0), 1);
  Probe a, b;
  b.q = &q;
  net.Register(0, 0, &a);
  net.Register(1, 3, &b);
  net.Send(0, 1, std::make_shared<const TestMsg>());
  q.RunUntilIdle();
  EXPECT_EQ(b.arrival_times[0], Millis(5));
}

TEST(NetworkTest, SitePairOverride) {
  EventQueue q;
  LatencyModel model(Micros(100), Millis(5), 0);
  model.SetSitePairLatency(0, 3, Millis(70));
  Network net(&q, model, 1);
  Probe a, b;
  b.q = &q;
  net.Register(0, 0, &a);
  net.Register(1, 3, &b);
  net.Send(0, 1, std::make_shared<const TestMsg>());
  q.RunUntilIdle();
  EXPECT_EQ(b.arrival_times[0], Millis(70));
}

TEST(NetworkTest, LinkFilterDropsMessages) {
  EventQueue q;
  Network net(&q, LatencyModel(1, 1, 0), 1);
  Probe a, b;
  net.Register(0, 0, &a);
  net.Register(1, 0, &b);
  net.SetLinkFilter([](ActorId from, ActorId, const MessagePtr&) {
    return from != 0;  // Drop everything node 0 sends.
  });
  net.Send(0, 1, std::make_shared<const TestMsg>());
  q.RunUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.messages_dropped(), 1u);

  net.SetLinkFilter(nullptr);
  net.Send(0, 1, std::make_shared<const TestMsg>());
  q.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, DisconnectSimulatesCrash) {
  EventQueue q;
  Network net(&q, LatencyModel(1, 1, 0), 1);
  Probe a, b;
  net.Register(0, 0, &a);
  net.Register(1, 0, &b);
  net.Disconnect(1);
  net.Send(0, 1, std::make_shared<const TestMsg>());
  net.Send(1, 0, std::make_shared<const TestMsg>());
  q.RunUntilIdle();
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());

  net.Reconnect(1);
  net.Send(0, 1, std::make_shared<const TestMsg>());
  q.RunUntilIdle();
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(NetworkTest, SendAtDefersDeparture) {
  EventQueue q;
  Network net(&q, LatencyModel(Micros(100), Micros(100), 0), 1);
  Probe a, b;
  b.q = &q;
  net.Register(0, 0, &a);
  net.Register(1, 0, &b);
  net.SendAt(Millis(3), 0, 1, std::make_shared<const TestMsg>());
  q.RunUntilIdle();
  EXPECT_EQ(b.arrival_times[0], Millis(3) + Micros(100));
}

TEST(EnvironmentTest, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    EnvironmentOptions opts;
    opts.seed = seed;
    opts.latency_jitter = Micros(500);
    Environment env(opts);
    Probe a, b;
    b.q = &env.queue();
    env.network().Register(0, 0, &a);
    env.network().Register(1, 1, &b);
    for (int i = 0; i < 20; ++i) {
      env.network().Send(0, 1, std::make_shared<const TestMsg>());
    }
    env.RunUntilIdle();
    return b.arrival_times;
  };
  EXPECT_EQ(run(11), run(11));
  EXPECT_NE(run(11), run(12));
}

TEST(EnvironmentTest, ScheduleRelativeDelay) {
  EnvironmentOptions opts;
  Environment env(opts);
  Time fired_at = -1;
  env.Schedule(Millis(7), [&] { fired_at = env.now(); });
  env.RunUntilIdle();
  EXPECT_EQ(fired_at, Millis(7));
}

}  // namespace
}  // namespace transedge::sim
