#include <gtest/gtest.h>

#include <set>

#include "common/bytes.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace transedge {
namespace {

// --- Status ------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Conflict("write-write clash");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsConflict());
  EXPECT_EQ(s.ToString(), "Conflict: write-write clash");
}

TEST(StatusTest, PredicatesMatchCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::VerificationFailed("x").IsVerificationFailed());
  EXPECT_FALSE(Status::Internal("x").IsConflict());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status {
    TE_RETURN_IF_ERROR(Status::Timeout("slow"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kTimeout);
  auto passes = []() -> Status {
    TE_RETURN_IF_ERROR(Status::OK());
    return Status::Internal("reached");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInternal);
}

// --- Result ------------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::Corruption("bad");
    return 7;
  };
  auto outer = [&](bool fail) -> Result<int> {
    TE_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(outer(false).value(), 14);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kCorruption);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> moved = std::move(r).value();
  EXPECT_EQ(*moved, 5);
}

// --- Hex ---------------------------------------------------------------------

TEST(HexTest, EncodeDecodeRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  EXPECT_EQ(HexDecode(hex).value(), data);
}

TEST(HexTest, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(HexTest, DecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
  EXPECT_TRUE(HexDecode("AbCd").ok());  // Upper case accepted.
}

// --- Encoder / Decoder -------------------------------------------------------

TEST(CodecTest, PrimitivesRoundTrip) {
  Encoder enc;
  enc.PutU8(0xab);
  enc.PutU16(0xbeef);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutI64(-12345);
  enc.PutBool(true);
  enc.PutString("hello");
  enc.PutBytes(Bytes{1, 2, 3});

  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetU8().value(), 0xab);
  EXPECT_EQ(dec.GetU16().value(), 0xbeef);
  EXPECT_EQ(dec.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(dec.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.GetI64().value(), -12345);
  EXPECT_EQ(dec.GetBool().value(), true);
  EXPECT_EQ(dec.GetString().value(), "hello");
  EXPECT_EQ(dec.GetBytes().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(dec.exhausted());
}

TEST(CodecTest, ReadPastEndIsCorruption) {
  Encoder enc;
  enc.PutU16(7);
  Decoder dec(enc.buffer());
  EXPECT_TRUE(dec.GetU16().ok());
  Result<uint32_t> r = dec.GetU32();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST(CodecTest, TruncatedLengthPrefixedBytesFail) {
  Encoder enc;
  enc.PutU32(100);  // Claims 100 bytes follow; none do.
  Decoder dec(enc.buffer());
  EXPECT_FALSE(dec.GetBytes().ok());
}

TEST(CodecTest, EmptyStringAndBytes) {
  Encoder enc;
  enc.PutString("");
  enc.PutBytes({});
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetString().value(), "");
  EXPECT_EQ(dec.GetBytes().value(), Bytes{});
}

TEST(CodecTest, RawBytesHaveNoPrefix) {
  Encoder enc;
  enc.PutRaw(Bytes{9, 9, 9});
  EXPECT_EQ(enc.size(), 3u);
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetRaw(3).value(), (Bytes{9, 9, 9}));
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(99);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // All values hit.
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfianTest, SkewPrefersSmallIndices) {
  Rng rng(11);
  ZipfianGenerator zipf(1000, 0.99);
  uint64_t low = 0, total = 20000;
  for (uint64_t i = 0; i < total; ++i) {
    uint64_t v = zipf.Next(&rng);
    ASSERT_LT(v, 1000u);
    if (v < 100) ++low;
  }
  // With theta=0.99, the hottest 10% of keys take well over half the
  // accesses.
  EXPECT_GT(low, total / 2);
}

}  // namespace
}  // namespace transedge
