#include "core/footprint_index.h"

#include <gtest/gtest.h>

#include "txn/types.h"

namespace transedge {
namespace {

Transaction MakeTxn(TxnId id, std::vector<Key> reads, std::vector<Key> writes) {
  Transaction txn;
  txn.id = id;
  for (Key& k : reads) {
    ReadOp op;
    op.key = std::move(k);
    txn.read_set.push_back(std::move(op));
  }
  for (Key& k : writes) {
    WriteOp op;
    op.key = std::move(k);
    op.value = {0x01};
    txn.write_set.push_back(std::move(op));
  }
  return txn;
}

TEST(FootprintIndexTest, EmptyIndexHasNoConflicts) {
  core::FootprintIndex index;
  EXPECT_FALSE(index.ConflictsWith(MakeTxn(1, {"a"}, {"b"})));
  EXPECT_EQ(index.indexed_reads(), 0u);
  EXPECT_EQ(index.indexed_writes(), 0u);
}

TEST(FootprintIndexTest, DetectsWriteWriteConflict) {
  core::FootprintIndex index;
  index.Add(MakeTxn(1, {}, {"k"}));
  EXPECT_TRUE(index.ConflictsWith(MakeTxn(2, {}, {"k"})));
  EXPECT_FALSE(index.ConflictsWith(MakeTxn(3, {}, {"other"})));
}

TEST(FootprintIndexTest, DetectsReadWriteConflictBothDirections) {
  core::FootprintIndex index;
  index.Add(MakeTxn(1, {"r"}, {"w"}));
  // New writer against an indexed reader (wr).
  EXPECT_TRUE(index.ConflictsWith(MakeTxn(2, {}, {"r"})));
  // New reader against an indexed writer (rw).
  EXPECT_TRUE(index.ConflictsWith(MakeTxn(3, {"w"}, {})));
  // Read-read never conflicts.
  EXPECT_FALSE(index.ConflictsWith(MakeTxn(4, {"r"}, {})));
}

TEST(FootprintIndexTest, RemoveReleasesFootprint) {
  core::FootprintIndex index;
  Transaction txn = MakeTxn(1, {"r"}, {"w"});
  index.Add(txn);
  EXPECT_EQ(index.indexed_reads(), 1u);
  EXPECT_EQ(index.indexed_writes(), 1u);
  index.Remove(txn);
  EXPECT_EQ(index.indexed_reads(), 0u);
  EXPECT_EQ(index.indexed_writes(), 0u);
  EXPECT_FALSE(index.ConflictsWith(MakeTxn(2, {"w"}, {"r"})));
}

TEST(FootprintIndexTest, RefcountsOverlappingFootprints) {
  core::FootprintIndex index;
  Transaction a = MakeTxn(1, {}, {"k"});
  Transaction b = MakeTxn(2, {}, {"k"});
  index.Add(a);
  index.Add(b);
  index.Remove(a);
  // b still holds the key.
  EXPECT_TRUE(index.ConflictsWith(MakeTxn(3, {"k"}, {})));
  index.Remove(b);
  EXPECT_FALSE(index.ConflictsWith(MakeTxn(3, {"k"}, {})));
}

TEST(FootprintIndexTest, RemoveOfUnknownTxnIsHarmless) {
  core::FootprintIndex index;
  index.Add(MakeTxn(1, {}, {"k"}));
  index.Remove(MakeTxn(2, {"x"}, {"y"}));  // Never added.
  EXPECT_TRUE(index.ConflictsWith(MakeTxn(3, {}, {"k"})));
}

}  // namespace
}  // namespace transedge
