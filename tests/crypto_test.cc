#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/hmac.h"
#include "crypto/key_store.h"
#include "crypto/sha256.h"
#include "crypto/signer.h"

namespace transedge::crypto {
namespace {

// --- SHA-256 against the NIST / de-facto standard test vectors -------------

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::Hash(std::string_view("")).ToHex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::Hash(std::string_view("abc")).ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::Hash(std::string_view(
                             "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmno"
                             "mnopnopq"))
                .ToHex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  EXPECT_EQ(h.Finish().ToHex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes == exactly one block; padding must spill into a second.
  std::string msg(64, 'x');
  Digest once = Sha256::Hash(msg);
  Sha256 h;
  h.Update(msg.substr(0, 31));
  h.Update(msg.substr(31));
  EXPECT_EQ(h.Finish(), once);
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.Update(msg.substr(0, split));
    h.Update(msg.substr(split));
    EXPECT_EQ(h.Finish(), Sha256::Hash(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, ResetReusesObject) {
  Sha256 h;
  h.Update(std::string_view("garbage"));
  h.Reset();
  h.Update(std::string_view("abc"));
  EXPECT_EQ(h.Finish().ToHex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, DigestHelpers) {
  Digest zero;
  EXPECT_TRUE(zero.IsZero());
  Digest d = Sha256::Hash(std::string_view("abc"));
  EXPECT_FALSE(d.IsZero());
  EXPECT_EQ(d.ShortHex(), "ba7816bf");
  EXPECT_NE(d, zero);
  EXPECT_EQ(d, Sha256::Hash(std::string_view("abc")));
}

TEST(Sha256Test, HashPairIsOrderSensitive) {
  Digest a = Sha256::Hash(std::string_view("a"));
  Digest b = Sha256::Hash(std::string_view("b"));
  EXPECT_NE(HashPair(a, b), HashPair(b, a));
}

// --- HMAC-SHA256 against RFC 4231 vectors -----------------------------------

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  Digest mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(mac.ToHex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  Bytes key = ToBytes("Jefe");
  Digest mac = HmacSha256(key, ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(mac.ToHex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  Digest mac = HmacSha256(key, data);
  EXPECT_EQ(mac.ToHex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  Bytes key(131, 0xaa);
  Digest mac = HmacSha256(
      key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(mac.ToHex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, ConstantTimeEquals) {
  Digest a = Sha256::Hash(std::string_view("x"));
  Digest b = a;
  EXPECT_TRUE(ConstantTimeEquals(a, b));
  b.bytes[31] ^= 1;
  EXPECT_FALSE(ConstantTimeEquals(a, b));
}

// --- KeyStore ---------------------------------------------------------------

TEST(KeyStoreTest, PairwiseKeysAreSymmetric) {
  KeyStore ks(10, 99);
  EXPECT_EQ(ks.PairwiseKey(2, 7).value(), ks.PairwiseKey(7, 2).value());
}

TEST(KeyStoreTest, DistinctPairsGetDistinctKeys) {
  KeyStore ks(10, 99);
  EXPECT_NE(ks.PairwiseKey(2, 7).value(), ks.PairwiseKey(2, 8).value());
  EXPECT_NE(ks.PairwiseKey(2, 7).value(), ks.PairwiseKey(3, 7).value());
}

TEST(KeyStoreTest, DifferentSeedsGiveDifferentKeys) {
  KeyStore a(10, 1);
  KeyStore b(10, 2);
  EXPECT_NE(a.PairwiseKey(0, 1).value(), b.PairwiseKey(0, 1).value());
}

TEST(KeyStoreTest, RestrictedViewDeniesForeignKeys) {
  KeyStore ks(10, 99);
  KeyStore restricted = ks.RestrictedTo(3);
  EXPECT_TRUE(restricted.PairwiseKey(3, 5).ok());
  EXPECT_TRUE(restricted.PairwiseKey(5, 3).ok());
  Result<Bytes> denied = restricted.PairwiseKey(4, 5);
  EXPECT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kFailedPrecondition);
}

TEST(KeyStoreTest, UnknownPrincipalRejected) {
  KeyStore ks(4, 99);
  EXPECT_FALSE(ks.PairwiseKey(0, 4).ok());
}

// --- Signer / Verifier / SignatureSet ---------------------------------------

TEST(SignerTest, SignVerifyRoundTrip) {
  HmacSignatureScheme scheme(8, 1234);
  auto signer = scheme.MakeSigner(3);
  Bytes msg = ToBytes("hello world");
  Signature sig = signer->Sign(msg);
  EXPECT_EQ(sig.signer, 3u);
  EXPECT_TRUE(scheme.verifier().Verify(msg, sig));
}

TEST(SignerTest, TamperedMessageFailsVerification) {
  HmacSignatureScheme scheme(8, 1234);
  auto signer = scheme.MakeSigner(3);
  Bytes msg = ToBytes("hello world");
  Signature sig = signer->Sign(msg);
  msg[0] ^= 1;
  EXPECT_FALSE(scheme.verifier().Verify(msg, sig));
}

TEST(SignerTest, CannotClaimAnotherSignerId) {
  HmacSignatureScheme scheme(8, 1234);
  auto signer = scheme.MakeSigner(3);
  Bytes msg = ToBytes("hello world");
  Signature sig = signer->Sign(msg);
  sig.signer = 4;  // Forged attribution.
  EXPECT_FALSE(scheme.verifier().Verify(msg, sig));
}

TEST(SignerTest, UnknownSignerRejected) {
  HmacSignatureScheme scheme(8, 1234);
  auto signer = scheme.MakeSigner(3);
  Signature sig = signer->Sign(ToBytes("m"));
  sig.signer = 99;
  EXPECT_FALSE(scheme.verifier().Verify(ToBytes("m"), sig));
}

TEST(SignatureSetTest, QuorumSatisfied) {
  HmacSignatureScheme scheme(8, 7);
  Bytes msg = ToBytes("batch digest");
  SignatureSet set;
  for (NodeId id : {0u, 1u, 2u}) {
    set.Add(scheme.MakeSigner(id)->Sign(msg));
  }
  std::vector<NodeId> members{0, 1, 2, 3, 4, 5, 6};
  EXPECT_TRUE(set.VerifyQuorum(scheme.verifier(), msg, 3, members).ok());
}

TEST(SignatureSetTest, DuplicateSignersDoNotCount) {
  HmacSignatureScheme scheme(8, 7);
  Bytes msg = ToBytes("batch digest");
  SignatureSet set;
  Signature sig = scheme.MakeSigner(0)->Sign(msg);
  set.Add(sig);
  set.Add(sig);
  set.Add(sig);
  std::vector<NodeId> members{0, 1, 2};
  EXPECT_FALSE(set.VerifyQuorum(scheme.verifier(), msg, 2, members).ok());
}

TEST(SignatureSetTest, NonMemberSignaturesIgnored) {
  HmacSignatureScheme scheme(8, 7);
  Bytes msg = ToBytes("batch digest");
  SignatureSet set;
  set.Add(scheme.MakeSigner(5)->Sign(msg));  // Not a member below.
  set.Add(scheme.MakeSigner(0)->Sign(msg));
  std::vector<NodeId> members{0, 1, 2};
  EXPECT_FALSE(set.VerifyQuorum(scheme.verifier(), msg, 2, members).ok());
  EXPECT_TRUE(set.VerifyQuorum(scheme.verifier(), msg, 1, members).ok());
}

TEST(SignatureSetTest, InvalidSignatureFailsWholeCertificate) {
  HmacSignatureScheme scheme(8, 7);
  Bytes msg = ToBytes("batch digest");
  SignatureSet set;
  set.Add(scheme.MakeSigner(0)->Sign(msg));
  Signature bad = scheme.MakeSigner(1)->Sign(ToBytes("other message"));
  set.Add(bad);
  std::vector<NodeId> members{0, 1, 2};
  Status s = set.VerifyQuorum(scheme.verifier(), msg, 1, members);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kVerificationFailed);
}

TEST(SignatureSetTest, EncodeDecodeRoundTrip) {
  HmacSignatureScheme scheme(8, 7);
  Bytes msg = ToBytes("payload");
  SignatureSet set;
  set.Add(scheme.MakeSigner(0)->Sign(msg));
  set.Add(scheme.MakeSigner(1)->Sign(msg));
  Encoder enc;
  set.EncodeTo(&enc);
  Decoder dec(enc.buffer());
  Result<SignatureSet> decoded = SignatureSet::DecodeFrom(&dec);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), 2u);
  EXPECT_EQ(decoded->signatures[0], set.signatures[0]);
  EXPECT_EQ(decoded->signatures[1], set.signatures[1]);
}

}  // namespace
}  // namespace transedge::crypto
