// Crash-recovery scenario family: a replica of a live deployment is
// crash-stopped, its simulated disk suffers a configurable power-loss
// fault, and a successor recovers from checkpoint + WAL and rejoins the
// cluster. Also pins engine invariance: the same workload commits to the
// same state under every storage_kind x consensus_kind combination.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/system.h"
#include "storage/paged/format.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using core::ConsensusKind;
using core::RwResult;
using core::System;
using core::SystemConfig;
using storage::StorageKind;
using storage::paged::SimDisk;

SystemConfig PagedConfig(ConsensusKind consensus) {
  SystemConfig config;
  config.num_partitions = 1;
  config.f = 1;  // 4 replicas.
  config.consensus_kind = consensus;
  config.storage_kind = StorageKind::kPaged;
  config.durability.checkpoint_interval = 8;
  config.batch_interval = sim::Millis(5);
  config.merkle_depth = 10;
  // No traffic flows while the replica is down; keep the idle cluster
  // from rotating leaders in the meantime.
  config.view_change_timeout = sim::Seconds(5);
  return config;
}

sim::EnvironmentOptions FastEnv() {
  sim::EnvironmentOptions opts;
  opts.seed = 7;
  opts.inter_site_latency = sim::Millis(2);
  return opts;
}

std::vector<std::pair<Key, Value>> TestData(uint32_t partitions) {
  workload::WorkloadOptions wopts;
  wopts.num_keys = 200;
  wopts.value_size = 16;
  workload::KeySpace keys(wopts, partitions);
  return keys.InitialData();
}

/// Issues one blind write per key at fixed times; the results land in
/// `out` (same order as `keys`).
void ScheduleWrites(System* system, Client* client,
                    const std::vector<Key>& keys, const std::string& prefix,
                    sim::Time first_at,
                    std::vector<std::optional<RwResult>>* out) {
  size_t base = out->size();
  out->resize(base + keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    Key key = keys[i];
    Value value = ToBytes(prefix + std::to_string(i));
    system->env().ScheduleAt(first_at + sim::Millis(20 * i), [=] {
      client->ExecuteReadWrite({}, {WriteOp{key, value}}, [out, base, i](
                                                              RwResult r) {
        (*out)[base + i] = std::move(r);
      });
    });
  }
}

/// The shared scenario: run traffic, crash replica (0, 3) with `fault`
/// applied to its disk, restart it, run more traffic, and require the
/// restarted replica to converge on the cluster's state.
void RunCrashRestartScenario(ConsensusKind consensus,
                             SimDisk::CrashMode mode, uint64_t keep_from_end) {
  SystemConfig config = PagedConfig(consensus);
  System system(config, FastEnv());
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();
  Client* client = system.AddClient();

  std::vector<Key> phase1, phase2;
  for (size_t i = 0; i < 5; ++i) phase1.push_back(data[i].first);
  for (size_t i = 5; i < 10; ++i) phase2.push_back(data[i].first);

  std::vector<std::optional<RwResult>> results;
  ScheduleWrites(&system, client, phase1, "p1-", sim::Millis(50), &results);
  system.env().RunUntil(sim::Millis(500));

  const crypto::NodeId victim = config.ReplicaNode(0, 3);
  system.CrashReplica(victim);
  SimDisk* disk = system.disk(victim);
  ASSERT_NE(disk, nullptr);
  ASSERT_GE(disk->op_count(), keep_from_end);
  disk->Crash(disk->op_count() - keep_from_end, mode);
  system.env().RunUntil(sim::Millis(600));

  Status restarted = system.RestartReplica(victim);
  ASSERT_TRUE(restarted.ok()) << restarted;

  ScheduleWrites(&system, client, phase2, "p2-", sim::Millis(700), &results);
  system.env().RunUntil(sim::Seconds(4));

  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].has_value()) << "write " << i << " never finished";
    EXPECT_TRUE(results[i]->committed) << "write " << i << ": "
                                       << results[i]->reason;
  }

  // The restarted replica holds every write — including the phase-2
  // batches decided after its recovery (and, under a torn tail, the
  // batch it lost and had to catch up on).
  const core::TransEdgeNode* revived = system.node(0, 3);
  for (size_t i = 0; i < phase1.size(); ++i) {
    auto value = revived->store().Get(phase1[i]);
    ASSERT_TRUE(value.ok()) << phase1[i];
    EXPECT_EQ(ToString(value->value), "p1-" + std::to_string(i));
  }
  for (size_t i = 0; i < phase2.size(); ++i) {
    auto value = revived->store().Get(phase2[i]);
    ASSERT_TRUE(value.ok()) << phase2[i];
    EXPECT_EQ(ToString(value->value), "p2-" + std::to_string(i));
  }

  // And it converged on the exact certified tip of the cluster.
  const auto& leader_log = system.node(0, 0)->log();
  const auto& revived_log = revived->log();
  EXPECT_EQ(revived_log.LastBatchId(), leader_log.LastBatchId());
  EXPECT_TRUE(revived_log.back().certificate.merkle_root ==
              leader_log.back().certificate.merkle_root);
}

TEST(RecoveryTest, CleanCrashRestartRejoinsUnderLinearVote) {
  RunCrashRestartScenario(ConsensusKind::kLinearVote,
                          SimDisk::CrashMode::kNone, 0);
}

TEST(RecoveryTest, CleanCrashRestartRejoinsUnderPbft) {
  RunCrashRestartScenario(ConsensusKind::kPbft, SimDisk::CrashMode::kNone, 0);
}

TEST(RecoveryTest, TornWalTailIsDroppedAndCaughtUp) {
  // Tear the final disk op in half: the WAL record it belonged to fails
  // its CRC, recovery comes up one batch short, and the replica closes
  // the gap through consensus catch-up.
  RunCrashRestartScenario(ConsensusKind::kLinearVote,
                          SimDisk::CrashMode::kTorn, 1);
}

TEST(RecoveryTest, CorruptedDiskKeepsReplicaDownButClusterLives) {
  SystemConfig config = PagedConfig(ConsensusKind::kLinearVote);
  System system(config, FastEnv());
  auto data = TestData(config.num_partitions);
  system.Preload(data);
  system.Start();
  Client* client = system.AddClient();

  std::vector<std::optional<RwResult>> results;
  ScheduleWrites(&system, client, {data[0].first, data[1].first}, "p1-",
                 sim::Millis(50), &results);
  system.env().RunUntil(sim::Millis(400));

  const crypto::NodeId victim = config.ReplicaNode(0, 3);
  system.CrashReplica(victim);
  SimDisk* disk = system.disk(victim);
  ASSERT_NE(disk, nullptr);
  disk->Crash(disk->op_count(), SimDisk::CrashMode::kNone);
  // Media corruption in a checkpoint data page: recovery must refuse.
  disk->CorruptByte(storage::paged::kPagesFileId,
                    static_cast<uint64_t>(storage::paged::kFirstDataPage) *
                            config.durability.page_size +
                        storage::paged::kPageHeaderSize + 3);
  EXPECT_FALSE(system.RestartReplica(victim).ok());

  // The remaining 3 of 4 replicas still form a quorum.
  ScheduleWrites(&system, client, {data[2].first, data[3].first}, "p2-",
                 sim::Millis(500), &results);
  system.env().RunUntil(sim::Seconds(3));
  for (const auto& r : results) {
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->committed) << r->reason;
  }
}

TEST(RecoveryTest, CommittedStateIsInvariantAcrossEngines) {
  // The same conflict-free workload must commit everywhere and leave the
  // same values under every storage x consensus combination; only
  // timing (I/O charges) may differ.
  struct Combo {
    StorageKind storage;
    ConsensusKind consensus;
  };
  const Combo kCombos[] = {
      {StorageKind::kInMemory, ConsensusKind::kPbft},
      {StorageKind::kInMemory, ConsensusKind::kLinearVote},
      {StorageKind::kPaged, ConsensusKind::kPbft},
      {StorageKind::kPaged, ConsensusKind::kLinearVote},
  };

  std::vector<Key> keys;
  std::vector<std::map<Key, std::string>> finals;
  for (const Combo& combo : kCombos) {
    SystemConfig config = PagedConfig(combo.consensus);
    config.storage_kind = combo.storage;
    System system(config, FastEnv());
    auto data = TestData(config.num_partitions);
    system.Preload(data);
    system.Start();
    Client* client = system.AddClient();

    if (keys.empty()) {
      for (size_t i = 0; i < 6; ++i) keys.push_back(data[i].first);
    }
    std::vector<std::optional<RwResult>> results;
    ScheduleWrites(&system, client, keys, "inv-", sim::Millis(50), &results);
    system.env().RunUntil(sim::Seconds(2));

    for (const auto& r : results) {
      ASSERT_TRUE(r.has_value());
      EXPECT_TRUE(r->committed) << r->reason;
    }
    std::map<Key, std::string> final_values;
    for (const Key& key : keys) {
      auto value = system.node(0, 0)->store().Get(key);
      ASSERT_TRUE(value.ok());
      final_values[key] = ToString(value->value);
    }
    finals.push_back(std::move(final_values));

    // The disk accessor mirrors the engine choice.
    if (combo.storage == StorageKind::kPaged) {
      EXPECT_NE(system.disk(0), nullptr);
    } else {
      EXPECT_EQ(system.disk(0), nullptr);
    }
  }
  for (size_t i = 1; i < finals.size(); ++i) {
    EXPECT_EQ(finals[i], finals[0]) << "combo " << i;
  }
}

}  // namespace
}  // namespace transedge
