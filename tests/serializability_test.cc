// System-wide serializability properties (§3.6, §4.4): replica state
// convergence, the Figure-1 invariant under mixed load, monotonic reads,
// and OCC behaviour under contention.

#include <gtest/gtest.h>

#include <map>

#include "core/system.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace transedge {
namespace {

using core::Client;
using core::RoResult;
using core::RwResult;
using core::System;
using core::SystemConfig;

struct Fixture {
  SystemConfig config;
  std::unique_ptr<System> system;
  std::unique_ptr<workload::KeySpace> keys;
  std::unique_ptr<workload::PlanGenerator> plans;

  explicit Fixture(uint64_t seed, uint32_t partitions = 3,
                   uint64_t num_keys = 400) {
    config.num_partitions = partitions;
    config.f = 1;
    config.batch_interval = sim::Millis(5);
    config.merkle_depth = 9;
    sim::EnvironmentOptions env_opts;
    env_opts.seed = seed;
    env_opts.inter_site_latency = sim::Millis(2);
    system = std::make_unique<System>(config, env_opts);
    workload::WorkloadOptions wopts;
    wopts.num_keys = num_keys;
    wopts.value_size = 8;
    wopts.seed = seed;
    keys = std::make_unique<workload::KeySpace>(wopts, partitions);
    plans = std::make_unique<workload::PlanGenerator>(keys.get(), partitions);
    system->Preload(keys->InitialData());
    system->Start();
  }
};

TEST(SerializabilityTest, ReplicasConvergeUnderMixedLoad) {
  Fixture fx(101);
  workload::ClosedLoopRunner runner(
      fx.system.get(), 12,
      [&](Rng* rng) {
        // Mixed: local, distributed, and write-only transactions.
        switch (rng->NextBounded(3)) {
          case 0:
            return fx.plans->MakeLocalReadWrite(2, 2, rng);
          case 1:
            return fx.plans->MakeReadWrite(3, 2, 3, rng);
          default:
            return fx.plans->MakeWriteOnly(3, rng);
        }
      },
      workload::RoMode::kTransEdge, 999);
  runner.Start(sim::Millis(100), sim::Seconds(4));
  runner.RunToCompletion(sim::Seconds(5));

  EXPECT_GT(runner.stats().rw_committed, 100u);

  // Every replica of every partition holds an identical log and an
  // identical Merkle root (the persistent ADS agrees bit for bit).
  for (PartitionId p = 0; p < fx.config.num_partitions; ++p) {
    const auto& ref_log = fx.system->node(p, 0)->log();
    ASSERT_GT(ref_log.size(), 0u);
    for (uint32_t i = 1; i < fx.config.replicas_per_cluster(); ++i) {
      const auto& log = fx.system->node(p, i)->log();
      ASSERT_EQ(log.size(), ref_log.size())
          << "partition " << p << " replica " << i;
      EXPECT_EQ(fx.system->node(p, i)->tree().RootDigest(),
                fx.system->node(p, 0)->tree().RootDigest());
    }
  }
}

TEST(SerializabilityTest, CommittedWritesAreExactlyTheStoreContents) {
  // Track every committed write client-side; at quiescence the winning
  // (latest) value of each key in the store must be one the client
  // actually wrote, and replicas agree on which.
  Fixture fx(103);
  Client* client = fx.system->AddClient();
  std::map<Key, std::vector<std::string>> committed_values;

  int inflight = 0;
  Rng rng(7);
  fx.system->env().Schedule(sim::Millis(30), [&] {
    for (int i = 0; i < 60; ++i) {
      Key k = fx.keys->RandomKey(&rng);
      std::string v = "val" + std::to_string(i);
      ++inflight;
      client->ExecuteReadWrite(
          {}, {WriteOp{k, ToBytes(v)}}, [&, k, v](RwResult r) {
            --inflight;
            if (r.committed) committed_values[k].push_back(v);
          });
    }
  });
  fx.system->env().RunUntil(sim::Seconds(5));
  ASSERT_EQ(inflight, 0);

  for (const auto& [key, values] : committed_values) {
    PartitionId p = storage::PartitionMap(fx.config.num_partitions)
                        .OwnerOf(key);
    auto stored = fx.system->node(p, 0)->store().Get(key);
    ASSERT_TRUE(stored.ok());
    std::string latest = ToString(stored->value);
    EXPECT_NE(std::find(values.begin(), values.end(), latest), values.end())
        << "store holds a value nobody committed for " << key;
    for (uint32_t i = 1; i < fx.config.replicas_per_cluster(); ++i) {
      EXPECT_EQ(ToString(fx.system->node(p, i)->store().Get(key)->value),
                latest);
    }
  }
}

TEST(SerializabilityTest, MonotonicSnapshotReads) {
  // Successive read-only transactions from one client observe
  // non-decreasing versions of a counter-like key pair.
  Fixture fx(107);
  storage::PartitionMap pmap(fx.config.num_partitions);
  Key kx, ky;
  {
    Rng rng(3);
    while (kx.empty() || ky.empty()) {
      const Key& k = fx.keys->RandomKey(&rng);
      if (pmap.OwnerOf(k) == 0 && kx.empty()) kx = k;
      if (pmap.OwnerOf(k) == 1 && ky.empty()) ky = k;
    }
  }
  Client* writer = fx.system->AddClient();
  Client* reader = fx.system->AddClient();

  int version = 0;
  // Raw self-pointers instead of self-owning captures (leak-free); the
  // shared_ptr owners outlive the RunUntil below.
  auto write_loop = std::make_shared<std::function<void()>>();
  auto* write_fn = write_loop.get();
  *write_loop = [&, write_fn] {
    if (version >= 40) return;
    std::string v = std::to_string(++version);
    // Pad so lexicographic == numeric order.
    v = std::string(6 - v.size(), '0') + v;
    writer->ExecuteReadWrite({}, {WriteOp{kx, ToBytes(v)},
                                  WriteOp{ky, ToBytes(v)}},
                             [write_fn](RwResult) { (*write_fn)(); });
  };

  std::string last_seen = "000000";
  int reads = 0;
  auto read_loop = std::make_shared<std::function<void()>>();
  auto* read_fn = read_loop.get();
  *read_loop = [&, read_fn] {
    if (fx.system->env().now() > sim::Seconds(4)) return;
    reader->ExecuteReadOnly({kx, ky}, [&, read_fn](RoResult r) {
      ASSERT_TRUE(r.status.ok());
      ASSERT_TRUE(r.values[kx].has_value());
      std::string x = ToString(*r.values[kx]);
      std::string y = ToString(*r.values[ky]);
      // Before the first paired write commits, the keys hold unrelated
      // preload values; the invariants apply to counter values (exactly
      // six digits).
      auto is_counter = [](const std::string& s) {
        return s.size() == 6 && std::all_of(s.begin(), s.end(), [](char c) {
                 return c >= '0' && c <= '9';
               });
      };
      if (is_counter(x) || is_counter(y)) {
        EXPECT_EQ(x, y);
        EXPECT_GE(x, last_seen) << "snapshot went backwards";
        last_seen = x;
      }
      ++reads;
      (*read_loop)();
    });
  };
  fx.system->env().Schedule(sim::Millis(30), [&] {
    (*write_loop)();
    (*read_loop)();
  });
  fx.system->env().RunUntil(sim::Seconds(6));
  EXPECT_EQ(version, 40);
  EXPECT_GT(reads, 10);
}

TEST(SerializabilityTest, HighContentionNeverDoubleCommits) {
  // Many clients race blind writes to a tiny hot set; OCC must abort
  // the losers, and the final state must be some committed value.
  Fixture fx(109, /*partitions=*/2, /*num_keys=*/50);
  std::vector<Client*> clients;
  for (int i = 0; i < 8; ++i) clients.push_back(fx.system->AddClient());

  storage::PartitionMap pmap(2);
  Key hot;
  {
    Rng rng(1);
    hot = fx.keys->RandomKey(&rng);
  }
  int committed = 0, aborted = 0;
  fx.system->env().Schedule(sim::Millis(30), [&] {
    for (size_t i = 0; i < clients.size(); ++i) {
      clients[i]->ExecuteReadWrite(
          {hot}, {WriteOp{hot, ToBytes("c" + std::to_string(i))}},
          [&](RwResult r) { r.committed ? ++committed : ++aborted; });
    }
  });
  fx.system->env().RunUntil(sim::Seconds(5));

  // All raced on the same read version: exactly one can win that round.
  EXPECT_EQ(committed, 1);
  EXPECT_EQ(aborted, 7);
}

// Seed sweep of the convergence property.
class ConvergenceSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConvergenceSeedTest, LogsIdenticalAcrossReplicas) {
  Fixture fx(GetParam());
  workload::ClosedLoopRunner runner(
      fx.system.get(), 8,
      [&](Rng* rng) { return fx.plans->MakeReadWrite(2, 2, 2, rng); },
      workload::RoMode::kTransEdge, GetParam() * 13);
  runner.Start(sim::Millis(100), sim::Seconds(2));
  runner.RunToCompletion(sim::Seconds(5));
  EXPECT_GT(runner.stats().rw_committed, 20u);

  for (PartitionId p = 0; p < fx.config.num_partitions; ++p) {
    const auto& ref = fx.system->node(p, 0)->log();
    for (uint32_t i = 1; i < fx.config.replicas_per_cluster(); ++i) {
      const auto& log = fx.system->node(p, i)->log();
      ASSERT_EQ(log.size(), ref.size());
      if (ref.size() > 0) {
        EXPECT_EQ(log.back().batch.ComputeDigest(),
                  ref.back().batch.ComputeDigest());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvergenceSeedTest,
                         ::testing::Values(211, 223, 227, 229, 233));

}  // namespace
}  // namespace transedge
