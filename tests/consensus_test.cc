// Intra-cluster consensus tests: batch certification, quorum behaviour
// under crash faults, certificates, and view changes.

#include <gtest/gtest.h>

#include <optional>

#include "core/system.h"
#include "workload/generator.h"

namespace transedge {
namespace {

using core::Client;
using core::RwResult;
using core::System;
using core::SystemConfig;

SystemConfig OneClusterConfig(uint32_t f = 1) {
  SystemConfig config;
  config.num_partitions = 1;
  config.f = f;
  config.batch_interval = sim::Millis(5);
  config.view_change_timeout = sim::Millis(100);
  config.merkle_depth = 8;
  return config;
}

sim::EnvironmentOptions FastEnv(uint64_t seed = 3) {
  sim::EnvironmentOptions opts;
  opts.seed = seed;
  opts.inter_site_latency = sim::Millis(1);
  return opts;
}

std::vector<std::pair<Key, Value>> SomeData(uint32_t partitions) {
  workload::WorkloadOptions wopts;
  wopts.num_keys = 100;
  wopts.value_size = 8;
  return workload::KeySpace(wopts, partitions).InitialData();
}

TEST(ConsensusTest, AllReplicasConvergeOnIdenticalLogs) {
  SystemConfig config = OneClusterConfig();
  System system(config, FastEnv());
  auto data = SomeData(1);
  system.Preload(data);
  system.Start();
  Client* client = system.AddClient();

  int committed = 0;
  system.env().Schedule(sim::Millis(30), [&] {
    for (int i = 0; i < 20; ++i) {
      client->ExecuteReadWrite(
          {}, {WriteOp{data[static_cast<size_t>(i)].first, ToBytes("w")}},
          [&](RwResult r) {
            if (r.committed) ++committed;
          });
    }
  });
  system.env().RunUntil(sim::Seconds(2));
  EXPECT_EQ(committed, 20);

  const auto& reference = system.node(0, 0)->log();
  ASSERT_GT(reference.size(), 0u);
  for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
    const auto& log = system.node(0, i)->log();
    ASSERT_EQ(log.size(), reference.size()) << "replica " << i;
    for (BatchId b = 0; b <= reference.LastBatchId(); ++b) {
      EXPECT_EQ(log.Get(b).value()->batch.ComputeDigest(),
                reference.Get(b).value()->batch.ComputeDigest())
          << "batch " << b << " replica " << i;
    }
  }
}

TEST(ConsensusTest, CertificatesCarryQuorumOfValidSignatures) {
  SystemConfig config = OneClusterConfig();
  System system(config, FastEnv());
  system.Preload(SomeData(1));
  system.Start();
  system.env().RunUntil(sim::Millis(100));

  const auto& log = system.node(0, 0)->log();
  ASSERT_GE(log.size(), 1u);
  const storage::LogEntry* genesis = log.Get(0).value();
  Status s = genesis->certificate.Verify(system.verifier(),
                                         config.certificate_size(),
                                         config.ClusterMembers(0));
  EXPECT_TRUE(s.ok()) << s;
  // The certificate must commit to the batch's actual contents.
  EXPECT_EQ(genesis->certificate.batch_digest,
            genesis->batch.ComputeDigest());
  EXPECT_EQ(genesis->certificate.merkle_root, genesis->batch.ro.merkle_root);
  EXPECT_EQ(genesis->certificate.ro_digest, genesis->batch.ro.ComputeDigest());
}

TEST(ConsensusTest, ProgressWithFCrashedFollowers) {
  SystemConfig config = OneClusterConfig(/*f=*/2);  // 7 replicas.
  System system(config, FastEnv());
  auto data = SomeData(1);
  system.Preload(data);
  system.Start();
  // Crash f followers (not the leader).
  system.node(0, 5)->SetByzantineBehavior(core::ByzantineBehavior::kCrash);
  system.node(0, 6)->SetByzantineBehavior(core::ByzantineBehavior::kCrash);

  Client* client = system.AddClient();
  int committed = 0;
  system.env().Schedule(sim::Millis(30), [&] {
    for (int i = 0; i < 10; ++i) {
      client->ExecuteReadWrite(
          {}, {WriteOp{data[static_cast<size_t>(i)].first, ToBytes("w")}},
          [&](RwResult r) {
            if (r.committed) ++committed;
          });
    }
  });
  system.env().RunUntil(sim::Seconds(2));
  EXPECT_EQ(committed, 10);
}

TEST(ConsensusTest, NoProgressBeyondFCrashes) {
  SystemConfig config = OneClusterConfig(/*f=*/1);  // 4 replicas, quorum 3.
  System system(config, FastEnv());
  auto data = SomeData(1);
  system.Preload(data);
  system.Start();
  // Crash 2 > f followers: quorum is unreachable, nothing commits.
  system.node(0, 2)->SetByzantineBehavior(core::ByzantineBehavior::kCrash);
  system.node(0, 3)->SetByzantineBehavior(core::ByzantineBehavior::kCrash);

  Client* client = system.AddClient();
  std::optional<RwResult> result;
  system.env().Schedule(sim::Millis(30), [&] {
    client->ExecuteReadWrite({}, {WriteOp{data[0].first, ToBytes("w")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(10));
  // The client request eventually fails; no batch beyond (possibly) none
  // was certified.
  if (result.has_value()) {
    EXPECT_FALSE(result->committed);
  }
  EXPECT_EQ(system.node(0, 0)->log().size(), 0u);
}

TEST(ConsensusTest, ViewChangeElectsNewLeaderAfterLeaderCrash) {
  SystemConfig config = OneClusterConfig(/*f=*/1);
  System system(config, FastEnv());
  auto data = SomeData(1);
  system.Preload(data);
  system.Start();
  // Let genesis commit under the original leader first.
  system.env().RunUntil(sim::Millis(50));
  ASSERT_GE(system.node(0, 0)->log().size(), 1u);

  // Crash the leader, then submit a transaction. A follower receiving the
  // forwarded request cannot decide; timers fire; a new leader takes over
  // and the client's retry succeeds.
  system.env().network().Disconnect(config.ReplicaNode(0, 0));
  system.node(0, 0)->SetByzantineBehavior(core::ByzantineBehavior::kCrash);

  Client* client = system.AddClient();
  std::optional<RwResult> result;
  system.env().Schedule(sim::Millis(100), [&] {
    client->ExecuteReadWrite({}, {WriteOp{data[0].first, ToBytes("post-vc")}},
                             [&](RwResult r) { result = std::move(r); });
  });
  system.env().RunUntil(sim::Seconds(30));

  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->committed) << result->reason;
  // Some replica observed a view change and a non-zero view is active.
  bool view_advanced = false;
  for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
    if (system.node(0, i)->view() > 0) view_advanced = true;
  }
  EXPECT_TRUE(view_advanced);
  // The write survived on the remaining replicas.
  for (uint32_t i = 1; i < config.replicas_per_cluster(); ++i) {
    auto v = system.node(0, i)->store().Get(data[0].first);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(ToString(v->value), "post-vc");
  }
}

TEST(ConsensusTest, BatchesRespectSizeTrigger) {
  SystemConfig config = OneClusterConfig();
  config.max_batch_size = 5;
  config.batch_interval = sim::Millis(50);  // Timer slow; size triggers.
  System system(config, FastEnv());
  auto data = SomeData(1);
  system.Preload(data);
  system.Start();
  Client* client = system.AddClient();

  int committed = 0;
  system.env().Schedule(sim::Millis(60), [&] {
    for (int i = 0; i < 12; ++i) {
      client->ExecuteReadWrite(
          {}, {WriteOp{data[static_cast<size_t>(i)].first, ToBytes("w")}},
          [&](RwResult r) {
            if (r.committed) ++committed;
          });
    }
  });
  system.env().RunUntil(sim::Seconds(2));
  EXPECT_EQ(committed, 12);

  // At least one batch was closed by the size trigger (5 txns).
  const auto& log = system.node(0, 0)->log();
  bool size_triggered = false;
  for (BatchId b = 0; b <= log.LastBatchId(); ++b) {
    if (log.Get(b).value()->batch.local.size() == 5) size_triggered = true;
  }
  EXPECT_TRUE(size_triggered);
}

}  // namespace
}  // namespace transedge
