// Serializability-graph test (§3.6): reconstructs the global conflict
// graph of every *committed* transaction from the replicated logs —
// write-read, write-write, and read-write edges derived from per-key
// version orders — and asserts it is acyclic. This is the SG test the
// paper's correctness argument (Theorem 3.4) is stated in terms of,
// executed against real histories produced by the full system.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "core/system.h"
#include "workload/generator.h"
#include "workload/runner.h"

namespace transedge {
namespace {

struct CommittedTxn {
  Transaction txn;
  /// Owner-partition commit batch per written key.
  std::map<Key, BatchId> write_versions;
};

/// Collects every committed transaction and the per-key version order
/// from the logs of all partitions.
struct History {
  std::map<TxnId, CommittedTxn> txns;
  /// key -> ordered (version, writer txn) pairs.
  std::map<Key, std::vector<std::pair<BatchId, TxnId>>> versions;
};

History CollectHistory(core::System* system, const core::SystemConfig& config) {
  History history;
  storage::PartitionMap pmap(config.num_partitions);

  for (PartitionId p = 0; p < config.num_partitions; ++p) {
    const storage::SmrLog& log = system->node(p, 0)->log();
    // Prepared-segment bodies, for resolving commit records.
    std::map<TxnId, const Transaction*> prepared_bodies;
    for (BatchId b = 0; log.size() > 0 && b <= log.LastBatchId(); ++b) {
      const storage::Batch& batch = log.Get(b).value()->batch;
      for (const Transaction& t : batch.prepared) {
        prepared_bodies[t.id] = &t;
      }

      auto apply_writes = [&](const Transaction& t) {
        CommittedTxn& committed = history.txns[t.id];
        committed.txn = t;
        for (const WriteOp& w : t.write_set) {
          if (pmap.OwnerOf(w.key) != p) continue;
          committed.write_versions[w.key] = b;
          history.versions[w.key].emplace_back(b, t.id);
        }
      };

      for (const Transaction& t : batch.local) apply_writes(t);
      for (const storage::CommitRecord& rec : batch.committed) {
        if (!rec.committed) continue;
        auto it = prepared_bodies.find(rec.txn_id);
        if (it == prepared_bodies.end()) {
          ADD_FAILURE() << "commit record without prepared body";
          continue;
        }
        apply_writes(*it->second);
      }
    }
  }
  for (auto& [key, writers] : history.versions) {
    std::sort(writers.begin(), writers.end());
  }
  return history;
}

/// Builds the SG edges and returns true iff the graph is acyclic.
bool SerializabilityGraphIsAcyclic(const History& history) {
  std::map<TxnId, std::set<TxnId>> edges;
  auto add_edge = [&](TxnId from, TxnId to) {
    if (from != to) edges[from].insert(to);
  };

  // ww edges: per-key version order.
  for (const auto& [key, writers] : history.versions) {
    for (size_t i = 0; i + 1 < writers.size(); ++i) {
      add_edge(writers[i].second, writers[i + 1].second);
    }
  }

  // wr and rw edges from every committed transaction's read set.
  for (const auto& [id, committed] : history.txns) {
    for (const ReadOp& r : committed.txn.read_set) {
      auto vit = history.versions.find(r.key);
      if (vit == history.versions.end()) continue;  // Never written.
      const auto& writers = vit->second;
      // wr: the writer of the exact version this transaction observed.
      // rw: the writer of the first later version.
      for (size_t i = 0; i < writers.size(); ++i) {
        if (writers[i].first == r.version) add_edge(writers[i].second, id);
        if (writers[i].first > r.version) {
          add_edge(id, writers[i].second);
          break;
        }
      }
    }
  }

  // Iterative three-color DFS for cycle detection.
  std::map<TxnId, int> color;  // 0 = white, 1 = gray, 2 = black.
  for (const auto& [start, unused] : edges) {
    if (color[start] != 0) continue;
    std::vector<std::pair<TxnId, bool>> stack{{start, false}};
    while (!stack.empty()) {
      auto [node, processed] = stack.back();
      stack.pop_back();
      if (processed) {
        color[node] = 2;
        continue;
      }
      if (color[node] == 1) continue;
      color[node] = 1;
      stack.emplace_back(node, true);
      auto eit = edges.find(node);
      if (eit == edges.end()) continue;
      for (TxnId next : eit->second) {
        if (color[next] == 1) return false;  // Back edge: cycle.
        if (color[next] == 0) stack.emplace_back(next, false);
      }
    }
  }
  return true;
}

class SgSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SgSeedTest, CommittedHistoryIsConflictSerializable) {
  core::SystemConfig config;
  config.num_partitions = 3;
  config.f = 1;
  config.batch_interval = sim::Millis(5);
  config.merkle_depth = 9;
  sim::EnvironmentOptions env_opts;
  env_opts.seed = GetParam();
  env_opts.inter_site_latency = sim::Millis(2);
  core::System system(config, env_opts);

  // A small, contended key space so the history has real conflicts.
  workload::WorkloadOptions wopts;
  wopts.num_keys = 120;
  wopts.value_size = 8;
  wopts.seed = GetParam();
  workload::KeySpace keys(wopts, config.num_partitions);
  workload::PlanGenerator plans(&keys, config.num_partitions);
  system.Preload(keys.InitialData());
  system.Start();

  workload::ClosedLoopRunner runner(
      &system, 10,
      [&](Rng* rng) {
        return rng->NextBernoulli(0.5)
                   ? plans.MakeReadWrite(3, 2, 2, rng)
                   : plans.MakeLocalReadWrite(2, 2, rng);
      },
      workload::RoMode::kTransEdge, GetParam() * 7);
  runner.Start(sim::Millis(100), sim::Seconds(3));
  runner.RunToCompletion(sim::Seconds(4));

  // The run must have committed and aborted transactions (real
  // contention), and the committed history must be acyclic.
  EXPECT_GT(runner.stats().rw_committed, 50u);
  EXPECT_GT(runner.stats().rw_aborted, 0u)
      << "key space too large to exercise conflicts";

  History history = CollectHistory(&system, config);
  ASSERT_FALSE(history.txns.empty());
  EXPECT_TRUE(SerializabilityGraphIsAcyclic(history))
      << "conflict cycle among committed transactions";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SgSeedTest,
                         ::testing::Values(301, 302, 303, 304, 305, 306));

}  // namespace
}  // namespace transedge
