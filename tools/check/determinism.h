#ifndef TRANSEDGE_TOOLS_CHECK_DETERMINISM_H_
#define TRANSEDGE_TOOLS_CHECK_DETERMINISM_H_

#include <map>
#include <string>

#include "check/report.h"
#include "check/source.h"

namespace transedge::check {

/// Determinism lint over the replica code (`src/`).
///
/// Rule `unordered-iter`: flags range-for and `.begin()` iterator loops
/// over `std::unordered_map` / `std::unordered_set` variables. Replicas
/// must emit identical message sequences for identical inputs; iterating
/// a hash container in a path that sends messages, mutates ordered
/// state, or builds a batch makes the schedule hash-implementation-
/// dependent. Sites that are genuinely order-insensitive carry a
/// `// check:allow(unordered-iter): <why>` annotation.
///
/// Rule `banned-call`: flags wall-clock and ambient-randomness calls
/// (`system_clock`, `steady_clock`, `rand()`, `std::random_device`,
/// `time()`, ...) outside `src/common/rng.*` and `src/sim/`. All time
/// comes from the simulated clock and all randomness from seeded
/// `common/rng.h` generators.
///
/// `files` maps repo-relative path -> lexed file for every file under
/// scan; the lint resolves a `.cc` file's companion header from it.
void CheckDeterminism(const std::map<std::string, SourceFile>& files,
                      RunResult* result);

}  // namespace transedge::check

#endif  // TRANSEDGE_TOOLS_CHECK_DETERMINISM_H_
