// Fixture: a consensus engine must reach core/ only through the
// Consensus/NodeContext seams — including the node is a violation.
#include "core/node.h"  // consensus-seam violation
