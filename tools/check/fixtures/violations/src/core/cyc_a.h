// Fixture: include cycle (with cyc_b.h).
#include "core/cyc_b.h"
