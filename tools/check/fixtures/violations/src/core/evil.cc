// Fixture: the library must never include the test or bench layers.
#include "../tests/util.h"       // external-include violation
#include "bench/bench_common.h"  // external-include violation
