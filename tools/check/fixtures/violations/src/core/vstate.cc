// Fixture: order-sensitive iteration over unordered members. The first
// two loops must be flagged; the annotated one must be suppressed; the
// reason-less annotation must be flagged as malformed.
#include "core/vstate.h"

void Emit(int, int);

void DrainBad(VState* s) {
  for (const auto& [id, v] : s->waiting_) {  // line 9: unordered-iter
    Emit(id, v);
  }
  for (auto it = s->seen_.begin(); it != s->seen_.end(); ++it) {  // line 12
    Emit(*it, 0);
  }
}

int CountAllowed(const VState& s) {
  int total = 0;
  // check:allow(unordered-iter): pure accumulation; order-insensitive.
  for (const auto& [id, v] : s.waiting_) total += v;
  return total;
}

int CountMalformed(const VState& s) {
  int total = 0;
  // check:allow(unordered-iter)
  for (const auto& [id, v] : s.waiting_) total += v;
  return total;
}
