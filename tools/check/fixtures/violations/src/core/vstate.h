// Fixture: replica-state struct with unordered members.
#ifndef FIXTURE_VSTATE_H_
#define FIXTURE_VSTATE_H_

#include <unordered_map>
#include <unordered_set>

struct VState {
  std::unordered_map<int, int> waiting_;
  std::unordered_set<int> seen_;
};

#endif  // FIXTURE_VSTATE_H_
