// Fixture: include cycle (with cyc_a.h).
#include "core/cyc_a.h"
