// Fixture: one engine including another engine's header.
#ifndef FIXTURE_BATCH_PIPELINE_H_
#define FIXTURE_BATCH_PIPELINE_H_

#include "core/read_only_service.h"  // engine-isolation violation

#endif  // FIXTURE_BATCH_PIPELINE_H_
