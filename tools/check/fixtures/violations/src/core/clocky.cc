// Fixture: wall-clock and ambient-randomness calls in replica code.
#include <chrono>
#include <cstdlib>
#include <random>

long Now() {
  auto t = std::chrono::steady_clock::now();  // banned-call
  return t.time_since_epoch().count();
}

int Roll() {
  std::random_device rd;  // banned-call
  (void)rd;
  return rand() % 6;  // banned-call
}
