// Fixture: sim/ owns virtual time — clock use here is exempt from the
// banned-call rule and must produce no finding.
#include <chrono>

long HostNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
