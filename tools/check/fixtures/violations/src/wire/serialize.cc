// Fixture: codec with drifted fields (see message.h).
#include "wire/message.h"

struct Encoder;
struct Decoder;

void EncodeBody(const DriftMsg& msg, Encoder* enc) {
  enc->PutU64(msg.a);
  enc->PutU64(msg.b);
}

void DecodeAll(Decoder* dec) {
  Decode<DriftMsg>(dec, [](auto* m, Decoder* d) {
    TE_ASSIGN_OR_RETURN(m->a, d->GetU64());
    TE_ASSIGN_OR_RETURN(m->c, d->GetU64());
    return Status::OK();
  });
}
