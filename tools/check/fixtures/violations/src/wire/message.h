// Fixture: wire-field drift in both directions.
#ifndef FIXTURE_WIRE_MESSAGE_H_
#define FIXTURE_WIRE_MESSAGE_H_

#include <cstdint>

enum class MessageType : uint32_t {
  kDrift = 1,
  kGhost = 2,
  kOrphan = 3,
};

template <MessageType kType>
struct TypedMessage {
  uint32_t type() const { return static_cast<uint32_t>(kType); }
};

struct DriftMsg : TypedMessage<MessageType::kDrift> {
  uint64_t a = 0;
  uint64_t b = 0;  // Serialized, never deserialized.
  uint64_t c = 0;  // Deserialized, never serialized.
  uint64_t pad = 0;  // Missing from both paths.
};

// check:allow(wire-parity): fixture: never crosses the wire.
struct GhostMsg : TypedMessage<MessageType::kGhost> {
  uint64_t x = 0;
};

struct OrphanMsg : TypedMessage<MessageType::kOrphan> {
  uint64_t y = 0;  // No codec at all: both directions must fail.
};

#endif  // FIXTURE_WIRE_MESSAGE_H_
