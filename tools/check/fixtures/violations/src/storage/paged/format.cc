// Fixture: codec with drifted fields (see format.h).
#include "storage/paged/format.h"

void DriftHdr::EncodeTo(Encoder* enc) const {
  enc->PutU32(a);
  enc->PutU32(b);
}

DriftHdr DriftHdr::DecodeFrom(Decoder* dec) {
  DriftHdr h;
  h.a = dec->GetU32();
  h.c = dec->GetU32();
  return h;
}
