// Fixture: on-disk field drift in both directions.
#ifndef FIXTURE_STORAGE_PAGED_FORMAT_H_
#define FIXTURE_STORAGE_PAGED_FORMAT_H_

#include <cstdint>

struct Encoder;
struct Decoder;

struct DriftHdr {
  uint32_t a = 0;
  uint32_t b = 0;  // Encoded, never decoded.
  uint32_t c = 0;  // Decoded, never encoded.
  uint32_t pad = 0;  // Missing from both paths.

  void EncodeTo(Encoder* enc) const;
  static DriftHdr DecodeFrom(Decoder* dec);
};

// check:allow(page-format-parity): fixture: in-memory scratch header.
struct GhostHdr {
  uint32_t x = 0;

  void EncodeTo(Encoder* enc) const;
};

struct OrphanHdr {
  uint32_t y = 0;  // No codec definitions: both directions must fail.

  void EncodeTo(Encoder* enc) const;
  static OrphanHdr DecodeFrom(Decoder* dec);
};

// A struct without EncodeTo is outside the on-disk contract.
struct RuntimeOnly {
  uint32_t z = 0;
};

#endif  // FIXTURE_STORAGE_PAGED_FORMAT_H_
