// Fixture: common/ is the bottom band — reaching up into core/ breaks
// the layer order.
#ifndef FIXTURE_BAD_LAYER_H_
#define FIXTURE_BAD_LAYER_H_

#include "core/config.h"  // layer-order violation

#endif  // FIXTURE_BAD_LAYER_H_
