// Fixture: an on-disk record whose codec paths are in parity.
#ifndef FIXTURE_CLEAN_STORAGE_PAGED_FORMAT_H_
#define FIXTURE_CLEAN_STORAGE_PAGED_FORMAT_H_

#include <cstdint>

struct Encoder;
struct Decoder;

struct RecHdr {
  uint32_t magic = 0;
  uint32_t crc = 0;

  void EncodeTo(Encoder* enc) const;
  static RecHdr DecodeFrom(Decoder* dec);
};

#endif  // FIXTURE_CLEAN_STORAGE_PAGED_FORMAT_H_
