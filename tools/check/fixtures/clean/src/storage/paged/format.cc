// Fixture: codec in parity with format.h.
#include "storage/paged/format.h"

void RecHdr::EncodeTo(Encoder* enc) const {
  enc->PutU32(magic);
  enc->PutU32(crc);
}

RecHdr RecHdr::DecodeFrom(Decoder* dec) {
  RecHdr h;
  h.magic = dec->GetU32();
  h.crc = dec->GetU32();
  return h;
}
