// Fixture: unordered members are fine as long as iteration is ordered
// or annotated.
#ifndef FIXTURE_CLEAN_STATE_H_
#define FIXTURE_CLEAN_STATE_H_

#include <unordered_map>

#include "common/util.h"

struct State {
  std::unordered_map<int, int> table_;
};

#endif  // FIXTURE_CLEAN_STATE_H_
