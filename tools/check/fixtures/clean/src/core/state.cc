// Fixture: annotated iteration and point lookups only — no findings.
#include "core/state.h"

int Sum(const State& s) {
  int total = 0;
  // check:allow(unordered-iter): commutative sum; order-insensitive.
  for (const auto& [k, v] : s.table_) total += v;
  return total;
}

int Lookup(const State& s, int k) {
  auto it = s.table_.find(k);
  return it == s.table_.end() ? 0 : it->second;
}
