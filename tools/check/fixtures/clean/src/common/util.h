// Fixture: leaf-layer helper, no findings expected.
#ifndef FIXTURE_CLEAN_UTIL_H_
#define FIXTURE_CLEAN_UTIL_H_

inline int Twice(int x) { return x + x; }

#endif  // FIXTURE_CLEAN_UTIL_H_
