// Fixture: message whose codec is complete in both directions.
#ifndef FIXTURE_CLEAN_MESSAGE_H_
#define FIXTURE_CLEAN_MESSAGE_H_

#include <cstdint>

enum class MessageType : uint32_t {
  kPing = 1,
};

template <MessageType kType>
struct TypedMessage {
  uint32_t type() const { return static_cast<uint32_t>(kType); }
};

struct PingMsg : TypedMessage<MessageType::kPing> {
  uint64_t seq = 0;
  uint32_t hop = 0;
};

#endif  // FIXTURE_CLEAN_MESSAGE_H_
