// Fixture: codec matching message.h field for field.
#include "wire/message.h"

struct Encoder;
struct Decoder;

void EncodeBody(const PingMsg& msg, Encoder* enc) {
  enc->PutU64(msg.seq);
  enc->PutU32(msg.hop);
}

void DecodeAll(Decoder* dec) {
  Decode<PingMsg>(dec, [](auto* m, Decoder* d) {
    TE_ASSIGN_OR_RETURN(m->seq, d->GetU64());
    TE_ASSIGN_OR_RETURN(m->hop, d->GetU32());
    return Status::OK();
  });
}
