// Fixture: the simulator itself may consult wall clocks.
#include <chrono>

long WallNow() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
