#include "check/layering.h"

#include <set>
#include <vector>

namespace transedge::check {

namespace {

/// Band rank per top-level src/ directory. A file may include only
/// headers of equal or lower rank. -1 = unknown directory (unranked).
int BandOf(const std::string& dir) {
  if (dir == "common") return 0;
  if (dir == "crypto" || dir == "txn" || dir == "storage" || dir == "merkle") {
    return 1;
  }
  if (dir == "sim") return 2;
  if (dir == "wire") return 3;
  if (dir == "core") return 4;
  if (dir == "workload") return 5;
  return -1;
}

/// First path component of an src-relative include target
/// ("core/consensus/consensus.h" -> "core").
std::string TopDir(const std::string& path) {
  size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Engine group of an src-relative path, or "" for non-engine files.
/// Sharded and per-shard pipeline are one engine family.
std::string EngineGroupOf(const std::string& path) {
  if (path.rfind("core/consensus/", 0) == 0) return "consensus";
  if (path.rfind("core/batch_pipeline.", 0) == 0 ||
      path.rfind("core/sharded_pipeline.", 0) == 0) {
    return "pipeline";
  }
  if (path.rfind("core/two_pc_coordinator.", 0) == 0) return "two-pc";
  if (path.rfind("core/read_only_service.", 0) == 0) return "read-only";
  if (path.rfind("core/augustus_baseline.", 0) == 0) return "augustus";
  if (path.rfind("core/watch_service.", 0) == 0) return "watch";
  return "";
}

/// core/ headers a core/consensus/ file may include: the NodeContext
/// seam and the engine-independent shared pieces.
bool ConsensusSeamAllowed(const std::string& target) {
  static const std::set<std::string> kAllowed = {
      "core/node_context.h",
      "core/config.h",
      "core/batch_apply.h",
      "core/footprint_index.h",
  };
  return target.rfind("core/consensus/", 0) == 0 || kAllowed.count(target) > 0;
}

void Report(const SourceFile& file, const std::string& rule, int line,
            std::string message, RunResult* result) {
  Finding f{file.rel_path(), line, rule, std::move(message)};
  if (file.IsAllowed(rule, line)) {
    std::string reason = "annotated";
    for (const AllowAnnotation& a : file.allows()) {
      if (a.rule == rule && a.line <= line && line - a.line <= 8) {
        reason = a.reason;
      }
    }
    result->AddSuppressed(std::move(f), reason);
  } else {
    result->Add(std::move(f));
  }
}

}  // namespace

void CheckLayering(const std::map<std::string, SourceFile>& files,
                   RunResult* result) {
  // src-relative path ("core/node.h") -> repo-relative key in `files`.
  std::map<std::string, std::string> src_files;
  for (const auto& [rel, file] : files) {
    if (rel.rfind("src/", 0) == 0) src_files[rel.substr(4)] = rel;
  }

  // Edge rules.
  for (const auto& [src_rel, repo_rel] : src_files) {
    const SourceFile& file = files.at(repo_rel);
    const std::string src_dir = TopDir(src_rel);
    const int src_band = BandOf(src_dir);
    const std::string src_engine = EngineGroupOf(src_rel);

    for (const auto& [target, line] : file.quoted_includes()) {
      if (target.rfind("../", 0) == 0 || target.rfind("bench/", 0) == 0 ||
          target.rfind("tests/", 0) == 0 || target.rfind("examples/", 0) == 0) {
        Report(file, "external-include", line,
               "src/ must not include '" + target +
                   "': bench/, tests/, and examples/ sit above the library",
               result);
        continue;
      }
      const std::string tgt_dir = TopDir(target);
      const int tgt_band = BandOf(tgt_dir);
      if (src_band >= 0 && tgt_band >= 0 && tgt_band > src_band) {
        Report(file, "layer-order", line,
               src_dir + "/ (band " + std::to_string(src_band) +
                   ") must not include '" + target + "' (band " +
                   std::to_string(tgt_band) +
                   "): lower layers stay independent of upper layers",
               result);
      }
      const std::string tgt_engine = EngineGroupOf(target);
      if (!src_engine.empty() && !tgt_engine.empty() &&
          src_engine != tgt_engine) {
        Report(file, "engine-isolation", line,
               "engine '" + src_engine + "' must not include '" + target +
                   "' (engine '" + tgt_engine +
                   "'): engines meet only through NodeContext and the "
                   "node's hooks",
               result);
      }
      if (src_engine == "consensus" && tgt_dir == "core" &&
          !ConsensusSeamAllowed(target)) {
        Report(file, "consensus-seam", line,
               "core/consensus/ may only reach the Consensus/NodeContext "
               "seams and shared pieces, not '" +
                   target + "'",
               result);
      }
    }
  }

  // Cycle detection over src/ files (3-color DFS, deterministic order).
  std::map<std::string, int> color;  // 0 = white, 1 = gray, 2 = black.
  std::vector<std::string> stack;
  struct Dfs {
    const std::map<std::string, std::string>& src_files;
    const std::map<std::string, SourceFile>& files;
    std::map<std::string, int>& color;
    std::vector<std::string>& stack;
    RunResult* result;

    void Visit(const std::string& node) {
      color[node] = 1;
      stack.push_back(node);
      const SourceFile& file = files.at(src_files.at(node));
      for (const auto& [target, line] : file.quoted_includes()) {
        auto it = src_files.find(target);
        if (it == src_files.end()) continue;
        int c = color.count(target) ? color[target] : 0;
        if (c == 1) {
          // Found a back edge: report the cycle path once.
          std::string path;
          bool in_cycle = false;
          for (const std::string& n : stack) {
            if (n == target) in_cycle = true;
            if (in_cycle) path += n + " -> ";
          }
          path += target;
          result->Add(Finding{file.rel_path(), line, "include-cycle",
                              "include cycle: " + path});
        } else if (c == 0) {
          Visit(target);
        }
      }
      stack.pop_back();
      color[node] = 2;
    }
  } dfs{src_files, files, color, stack, result};
  for (const auto& [src_rel, repo_rel] : src_files) {
    if (!color.count(src_rel)) dfs.Visit(src_rel);
  }
}

}  // namespace transedge::check
