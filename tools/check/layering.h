#ifndef TRANSEDGE_TOOLS_CHECK_LAYERING_H_
#define TRANSEDGE_TOOLS_CHECK_LAYERING_H_

#include <map>
#include <string>

#include "check/report.h"
#include "check/source.h"

namespace transedge::check {

/// Layering enforcement over the `#include` graph of `src/`, pinning the
/// ARCHITECTURE.md contract:
///
/// - `layer-order`: directories form bands — common < {crypto, txn,
///   storage, merkle} < sim < wire < core < workload — and a file may
///   only include its own band or below. `wire/` and `common/` staying
///   leaf-ward of `core/` falls out of this rule.
/// - `engine-isolation`: the five replica engines (consensus,
///   batch/sharded pipeline, 2PC coordinator, read-only service,
///   Augustus baseline) never include each other; they meet only
///   through `NodeContext` and the node's hooks.
/// - `consensus-seam`: files under `core/consensus/` reach only the
///   seam headers (`node_context.h`, `config.h`) and the shared pieces
///   (`batch_apply.h`, `footprint_index.h`) from `core/` — never the
///   node, system, client, or another engine.
/// - `external-include`: nothing in `src/` includes `bench/`, `tests/`,
///   `examples/`, or any `../` path.
/// - `include-cycle`: the file-level include graph must be acyclic.
void CheckLayering(const std::map<std::string, SourceFile>& files,
                   RunResult* result);

}  // namespace transedge::check

#endif  // TRANSEDGE_TOOLS_CHECK_LAYERING_H_
