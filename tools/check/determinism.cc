#include "check/determinism.h"

#include <set>
#include <vector>

namespace transedge::check {

namespace {

constexpr const char* kUnorderedIter = "unordered-iter";
constexpr const char* kBannedCall = "banned-call";

/// Identifiers that are nondeterministic (wall clock / ambient
/// randomness) wherever they appear.
const std::set<std::string>& BannedIdentifiers() {
  static const std::set<std::string> kBanned = {
      "system_clock",         "steady_clock", "high_resolution_clock",
      "random_device",        "mt19937",      "mt19937_64",
      "default_random_engine", "drand48",     "clock_gettime",
      "gettimeofday",
  };
  return kBanned;
}

/// Identifiers banned only as direct calls (`rand()`, `time(nullptr)`),
/// so field/member names like `timestamp_us` or `.time()` accessors on
/// simulated objects never trip the rule.
const std::set<std::string>& BannedCalls() {
  static const std::set<std::string> kBannedCalls = {"rand", "srand", "time",
                                                     "clock"};
  return kBannedCalls;
}

bool PathExemptFromBannedCalls(const std::string& rel_path) {
  // The seeded generator implementation and the simulator own all
  // randomness/virtual time.
  if (rel_path.rfind("src/common/rng.", 0) == 0) return true;
  if (rel_path.rfind("src/sim/", 0) == 0) return true;
  return false;
}

/// Collects names declared with an unordered container type in `file`:
/// members, locals, and parameters alike. The next identifier after the
/// balanced `unordered_map<...>` / `unordered_set<...>` template
/// argument list (skipping `&`, `*`, `const`) is the declared name.
void CollectUnorderedNames(const SourceFile& file,
                           std::set<std::string>* names) {
  const std::vector<Token>& toks = file.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t != "unordered_map" && t != "unordered_set" &&
        t != "unordered_multimap" && t != "unordered_multiset") {
      continue;
    }
    size_t j = i + 1;
    if (j >= toks.size() || toks[j].text != "<") continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "<") ++depth;
      if (toks[j].text == ">") {
        if (--depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < toks.size() &&
           (toks[j].text == "&" || toks[j].text == "*" ||
            toks[j].text == "const")) {
      ++j;
    }
    if (j < toks.size() && !toks[j].text.empty() &&
        (std::isalpha(static_cast<unsigned char>(toks[j].text[0])) ||
         toks[j].text[0] == '_')) {
      names->insert(toks[j].text);
    }
  }
}

void Report(const SourceFile& file, const std::string& rule, int line,
            std::string message, RunResult* result) {
  Finding f{file.rel_path(), line, rule, std::move(message)};
  if (file.IsAllowed(rule, line)) {
    // Surface the documented justification in the report.
    std::string reason = "annotated";
    for (const AllowAnnotation& a : file.allows()) {
      if (a.rule == rule &&
          (a.line == line || (a.line < line && line - a.line <= 8))) {
        reason = a.reason;
      }
    }
    result->AddSuppressed(std::move(f), reason);
  } else {
    result->Add(std::move(f));
  }
}

/// Scans one file for iteration over unordered containers. `names` is
/// the set of unordered-typed variable names in scope for this file
/// (its own declarations plus its companion header's).
void CheckUnorderedIteration(const SourceFile& file,
                             const std::set<std::string>& names,
                             RunResult* result) {
  const std::vector<Token>& toks = file.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "for" || i + 1 >= toks.size() ||
        toks[i + 1].text != "(") {
      continue;
    }
    // Find the matching close paren of the for-header.
    size_t open = i + 1;
    int depth = 0;
    size_t close = open;
    for (size_t j = open; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) {
        close = j;
        break;
      }
    }
    if (close == open) continue;

    // Range-for: a single `:` at paren depth 1.
    size_t colon = 0;
    depth = 0;
    for (size_t j = open; j < close; ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")") --depth;
      if (toks[j].text == ":" && depth == 1) {
        colon = j;
        break;
      }
    }
    if (colon != 0) {
      for (size_t j = colon + 1; j < close; ++j) {
        if (names.count(toks[j].text) > 0) {
          Report(file, kUnorderedIter, toks[j].line,
                 "range-for over unordered container '" + toks[j].text +
                     "': iteration order is hash-implementation-dependent; "
                     "drain in sorted order, use an ordered container, or "
                     "annotate check:allow(unordered-iter) with a "
                     "justification",
                 result);
          break;
        }
      }
      continue;
    }

    // Iterator loop: `name.begin()` / `name.cbegin()` in the for-header.
    for (size_t j = open + 1; j + 2 < close; ++j) {
      if (names.count(toks[j].text) > 0 &&
          (toks[j + 1].text == "." || toks[j + 1].text == "->") &&
          (toks[j + 2].text == "begin" || toks[j + 2].text == "cbegin" ||
           toks[j + 2].text == "rbegin")) {
        Report(file, kUnorderedIter, toks[j].line,
               "iterator loop over unordered container '" + toks[j].text +
                   "': iteration order is hash-implementation-dependent; "
                   "drain in sorted order, use an ordered container, or "
                   "annotate check:allow(unordered-iter) with a "
                   "justification",
               result);
        break;
      }
    }
  }
}

void CheckBannedCalls(const SourceFile& file, RunResult* result) {
  if (PathExemptFromBannedCalls(file.rel_path())) return;
  const std::vector<Token>& toks = file.tokens();
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (BannedIdentifiers().count(t) > 0) {
      Report(file, kBannedCall, toks[i].line,
             "'" + t +
                 "' is nondeterministic across runs/machines; use the "
                 "simulated clock (sim/time.h) or a seeded common/rng.h "
                 "generator",
             result);
      continue;
    }
    if (BannedCalls().count(t) > 0 && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      // Only direct calls: `.time()` accessors and member functions on
      // simulated objects are fine.
      if (i > 0 && (toks[i - 1].text == "." || toks[i - 1].text == "->")) {
        continue;
      }
      Report(file, kBannedCall, toks[i].line,
             "call to '" + t +
                 "()' is nondeterministic; use the simulated clock "
                 "(sim/time.h) or a seeded common/rng.h generator",
             result);
    }
  }
}

}  // namespace

void CheckDeterminism(const std::map<std::string, SourceFile>& files,
                      RunResult* result) {
  for (const auto& [rel_path, file] : files) {
    if (rel_path.rfind("src/", 0) != 0) continue;

    std::set<std::string> names;
    CollectUnorderedNames(file, &names);
    // A .cc file sees the members its companion header declares.
    size_t dot = rel_path.rfind(".cc");
    if (dot != std::string::npos && dot == rel_path.size() - 3) {
      auto companion = files.find(rel_path.substr(0, dot) + ".h");
      if (companion != files.end()) {
        CollectUnorderedNames(companion->second, &names);
      }
    }

    CheckUnorderedIteration(file, names, result);
    CheckBannedCalls(file, result);

    for (int line : file.malformed_allows()) {
      result->Add(Finding{rel_path, line, "malformed-allow",
                          "check:allow annotation must be "
                          "'check:allow(<rule>): <reason>' — the reason is "
                          "mandatory"});
    }
  }
}

}  // namespace transedge::check
