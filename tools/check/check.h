#ifndef TRANSEDGE_TOOLS_CHECK_CHECK_H_
#define TRANSEDGE_TOOLS_CHECK_CHECK_H_

#include <map>
#include <string>

#include "check/report.h"
#include "check/source.h"

namespace transedge::check {

/// Loads and lexes every `.h`/`.cc` file under `root`/src, keyed by
/// repo-relative path in deterministic (sorted) order.
std::map<std::string, SourceFile> LoadTree(const std::string& root);

/// Runs all three check families (determinism lint, wire parity,
/// layering) over a loaded tree and returns the canonicalized result.
RunResult RunChecks(const std::map<std::string, SourceFile>& files);

/// Convenience: LoadTree + RunChecks.
RunResult RunChecksOnTree(const std::string& root);

}  // namespace transedge::check

#endif  // TRANSEDGE_TOOLS_CHECK_CHECK_H_
