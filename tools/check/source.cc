#include "check/source.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace transedge::check {

namespace {

/// Splits raw file text into SourceLines, blanking string/char literals
/// and routing comment text into `comment`. A tiny state machine is all
/// the codebase's subset of C++ needs (no raw strings, no trigraphs).
std::vector<SourceLine> StripLines(const std::string& text) {
  std::vector<SourceLine> lines;
  SourceLine cur;
  bool in_block_comment = false;
  bool in_string = false;
  bool in_char = false;
  bool in_line_comment = false;
  std::string cur_literal;

  auto flush = [&] {
    size_t i = cur.code.find_first_not_of(" \t");
    cur.preprocessor = i != std::string::npos && cur.code[i] == '#';
    lines.push_back(cur);
    cur = SourceLine{};
    in_line_comment = false;
    in_string = false;  // Unterminated literal: fail soft at line end.
    in_char = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      flush();
      continue;
    }
    if (in_line_comment) {
      cur.comment.push_back(c);
      continue;
    }
    if (in_block_comment) {
      if (c == '*' && next == '/') {
        in_block_comment = false;
        ++i;
      } else {
        cur.comment.push_back(c);
      }
      continue;
    }
    if (in_string || in_char) {
      char close = in_string ? '"' : '\'';
      if (c == '\\') {
        if (in_string && next != '\0' && next != '\n') {
          cur_literal.push_back(next);
        }
        ++i;  // Skip the escaped character.
      } else if (c == close) {
        if (in_string) cur.strings.push_back(cur_literal);
        in_string = in_char = false;
        cur.code.push_back(close);
      } else if (in_string) {
        cur_literal.push_back(c);
      }
      continue;
    }
    if (c == '/' && next == '/') {
      in_line_comment = true;
      ++i;
      continue;
    }
    if (c == '/' && next == '*') {
      in_block_comment = true;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      cur_literal.clear();
      cur.code.push_back(c);
      continue;
    }
    if (c == '\'') {
      // Digit separators (1'000) never appear after a digit boundary in
      // this codebase's style, but guard anyway: only open a char
      // literal when not directly preceded by an alphanumeric.
      if (!cur.code.empty() &&
          (std::isalnum(static_cast<unsigned char>(cur.code.back())) ||
           cur.code.back() == '_')) {
        cur.code.push_back(c);
        continue;
      }
      in_char = true;
      cur.code.push_back(c);
      continue;
    }
    cur.code.push_back(c);
  }
  if (!cur.code.empty() || !cur.comment.empty()) flush();
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool SourceFile::Load(const std::string& abs_path,
                      const std::string& rel_path) {
  std::ifstream in(abs_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  rel_path_ = rel_path;
  lines_ = StripLines(buf.str());
  Lex();
  return true;
}

void SourceFile::Lex() {
  tokens_.clear();
  allows_.clear();
  malformed_allows_.clear();
  quoted_includes_.clear();
  allowed_lines_.clear();

  for (size_t li = 0; li < lines_.size(); ++li) {
    const int line_no = static_cast<int>(li) + 1;
    const std::string& code = lines_[li].code;

    // Quoted includes (preprocessor lines only). The target text lives
    // in the line's string literal, not in the blanked code.
    if (lines_[li].preprocessor && code.find("include") != std::string::npos &&
        !lines_[li].strings.empty() && !lines_[li].strings.front().empty()) {
      quoted_includes_.emplace_back(lines_[li].strings.front(), line_no);
    }

    // Tokens (skip preprocessor lines: `#include <unordered_map>` must
    // not read as an unordered_map declaration).
    if (!lines_[li].preprocessor) {
      size_t i = 0;
      while (i < code.size()) {
        char c = code[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
          ++i;
          continue;
        }
        if (IsIdentChar(c)) {
          size_t j = i;
          while (j < code.size() && IsIdentChar(code[j])) ++j;
          tokens_.push_back(Token{code.substr(i, j - i), line_no});
          i = j;
          continue;
        }
        // Two-character punctuators the checkers care about.
        if (i + 1 < code.size()) {
          char n = code[i + 1];
          if ((c == ':' && n == ':') || (c == '-' && n == '>')) {
            tokens_.push_back(Token{std::string{c, n}, line_no});
            i += 2;
            continue;
          }
        }
        tokens_.push_back(Token{std::string(1, c), line_no});
        ++i;
      }
    }

    // Allow annotations live in comment text.
    const std::string& comment = lines_[li].comment;
    size_t pos = comment.find("check:allow(");
    if (pos != std::string::npos) {
      size_t open = pos + std::string("check:allow(").size();
      size_t close = comment.find(')', open);
      if (close == std::string::npos) {
        malformed_allows_.push_back(line_no);
      } else {
        std::string rule = comment.substr(open, close - open);
        // The reason after "): " is mandatory: the annotation exists to
        // document *why* the site is order-insensitive or exempt.
        size_t colon = comment.find(':', close);
        std::string reason;
        if (colon != std::string::npos) {
          reason = comment.substr(colon + 1);
          size_t first = reason.find_first_not_of(" \t");
          reason = first == std::string::npos ? "" : reason.substr(first);
        }
        if (rule.empty() || reason.empty()) {
          malformed_allows_.push_back(line_no);
        } else {
          allows_.push_back(AllowAnnotation{line_no, rule, reason});
        }
      }
    }
  }

  // An annotation covers its own line and the next line that has code
  // after it (comment-only lines in between are skipped, so a multi-line
  // justification above the statement works).
  for (const AllowAnnotation& a : allows_) {
    std::set<int>& covered = allowed_lines_[a.rule];
    covered.insert(a.line);
    for (size_t li = static_cast<size_t>(a.line); li < lines_.size(); ++li) {
      bool has_code =
          lines_[li].code.find_first_not_of(" \t") != std::string::npos;
      if (has_code) {
        covered.insert(static_cast<int>(li) + 1);
        break;
      }
    }
  }
}

bool SourceFile::IsAllowed(const std::string& rule, int line) const {
  auto it = allowed_lines_.find(rule);
  return it != allowed_lines_.end() && it->second.count(line) > 0;
}

}  // namespace transedge::check
