#include "check/wire_parity.h"

#include <set>
#include <vector>

namespace transedge::check {

namespace {

constexpr const char* kRule = "wire-parity";

struct Field {
  std::string name;
  int line = 0;
};

struct MessageStruct {
  std::string name;
  int line = 0;  // Line of the `struct` keyword.
  std::vector<Field> fields;
};

/// Parses `struct X : TypedMessage<...> { fields... };` declarations.
std::vector<MessageStruct> ParseMessageStructs(const SourceFile& header) {
  std::vector<MessageStruct> out;
  const std::vector<Token>& toks = header.tokens();
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text != "struct") continue;
    if (toks[i + 2].text != ":" || toks[i + 3].text != "TypedMessage") {
      continue;
    }
    MessageStruct msg;
    msg.name = toks[i + 1].text;
    msg.line = toks[i].line;

    // Skip to the opening brace of the struct body.
    size_t j = i + 4;
    while (j < toks.size() && toks[j].text != "{") ++j;
    if (j >= toks.size()) continue;
    size_t body_start = ++j;
    int depth = 1;
    size_t body_end = body_start;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) {
        body_end = j;
        break;
      }
    }

    // Fields: depth-1 statements `Type name;` / `Type name = init;`.
    std::vector<Token> stmt;
    depth = 1;
    for (size_t k = body_start; k < body_end; ++k) {
      if (toks[k].text == "{") ++depth;
      if (toks[k].text == "}") --depth;
      if (depth > 1) continue;
      if (toks[k].text == ";") {
        // The declared name is the last identifier before `=` (or the
        // `;`). Statements containing parens are member functions or
        // using-declarations — TypedMessage structs are plain data, so
        // skip those.
        bool has_paren = false;
        size_t eq = stmt.size();
        for (size_t s = 0; s < stmt.size(); ++s) {
          if (stmt[s].text == "(") has_paren = true;
          if (stmt[s].text == "=" && eq == stmt.size()) eq = s;
        }
        if (!has_paren && !stmt.empty()) {
          for (size_t s = eq; s-- > 0;) {
            char c0 = stmt[s].text[0];
            if (std::isalpha(static_cast<unsigned char>(c0)) || c0 == '_') {
              msg.fields.push_back(Field{stmt[s].text, stmt[s].line});
              break;
            }
          }
        }
        stmt.clear();
      } else {
        stmt.push_back(toks[k]);
      }
    }
    out.push_back(std::move(msg));
    i = body_end;
  }
  return out;
}

/// Identifiers appearing in `EncodeBody(const Name& ...)`'s body, or an
/// empty set and found=false when no such overload exists.
std::set<std::string> EncodeBodyIdents(const SourceFile& ser,
                                       const std::string& name, bool* found) {
  *found = false;
  const std::vector<Token>& toks = ser.tokens();
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text != "EncodeBody" || toks[i + 1].text != "(" ||
        toks[i + 2].text != "const" || toks[i + 3].text != name) {
      continue;
    }
    // Skip to the body's opening brace (a declaration without a body
    // would hit `;` first).
    size_t j = i + 4;
    while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") ++j;
    if (j >= toks.size() || toks[j].text == ";") continue;
    *found = true;
    std::set<std::string> idents;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "{") ++depth;
      if (toks[j].text == "}" && --depth == 0) break;
      idents.insert(toks[j].text);
    }
    return idents;
  }
  return {};
}

/// Identifiers appearing in the `Decode<Name>(...)` call (the fill
/// lambda lives in the argument list).
std::set<std::string> DecodeBodyIdents(const SourceFile& ser,
                                       const std::string& name, bool* found) {
  *found = false;
  const std::vector<Token>& toks = ser.tokens();
  for (size_t i = 0; i + 3 < toks.size(); ++i) {
    if (toks[i].text != "Decode" || toks[i + 1].text != "<" ||
        toks[i + 2].text != name || toks[i + 3].text != ">") {
      continue;
    }
    size_t j = i + 4;
    while (j < toks.size() && toks[j].text != "(") ++j;
    if (j >= toks.size()) continue;
    *found = true;
    std::set<std::string> idents;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")" && --depth == 0) break;
      idents.insert(toks[j].text);
    }
    return idents;
  }
  return {};
}

void Report(const SourceFile& header, int line, std::string message,
            RunResult* result) {
  Finding f{header.rel_path(), line, kRule, std::move(message)};
  if (header.IsAllowed(kRule, line)) {
    std::string reason = "annotated";
    for (const AllowAnnotation& a : header.allows()) {
      if (a.rule == kRule && a.line <= line && line - a.line <= 8) {
        reason = a.reason;
      }
    }
    result->AddSuppressed(std::move(f), reason);
  } else {
    result->Add(std::move(f));
  }
}

}  // namespace

void CheckWireParity(const std::map<std::string, SourceFile>& files,
                     RunResult* result) {
  auto header_it = files.find("src/wire/message.h");
  auto ser_it = files.find("src/wire/serialize.cc");
  if (header_it == files.end() || ser_it == files.end()) return;
  const SourceFile& header = header_it->second;
  const SourceFile& ser = ser_it->second;

  for (const MessageStruct& msg : ParseMessageStructs(header)) {
    // A struct annotated at its declaration never crosses the wire.
    if (header.IsAllowed(kRule, msg.line)) {
      Report(header, msg.line, msg.name + " exempt from wire parity",
             result);
      continue;
    }
    bool has_enc = false;
    bool has_dec = false;
    std::set<std::string> enc = EncodeBodyIdents(ser, msg.name, &has_enc);
    std::set<std::string> dec = DecodeBodyIdents(ser, msg.name, &has_dec);
    if (!has_enc) {
      Report(header, msg.line,
             msg.name + " has no EncodeBody(const " + msg.name +
                 "&, Encoder*) in wire/serialize.cc",
             result);
    }
    if (!has_dec) {
      Report(header, msg.line,
             msg.name + " has no Decode<" + msg.name +
                 "> case in wire/serialize.cc",
             result);
    }
    if (!has_enc || !has_dec) continue;

    for (const Field& field : msg.fields) {
      bool in_enc = enc.count(field.name) > 0;
      bool in_dec = dec.count(field.name) > 0;
      if (in_enc && in_dec) continue;
      std::string where = !in_enc && !in_dec
                              ? "missing from both the serialize and "
                                "deserialize paths"
                          : !in_enc ? "deserialized but never serialized"
                                    : "serialized but never deserialized";
      Report(header, field.line,
             "field '" + field.name + "' of " + msg.name + " is " + where +
                 " (wire/serialize.cc)",
             result);
    }
  }
}

}  // namespace transedge::check
