#ifndef TRANSEDGE_TOOLS_CHECK_SOURCE_H_
#define TRANSEDGE_TOOLS_CHECK_SOURCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace transedge::check {

/// One physical source line, split into the code text (string literals
/// blanked, comments removed) and the comment text (everything that was
/// inside `//` or `/* */` on that line).
struct SourceLine {
  std::string code;
  std::string comment;
  /// Contents of each string literal on the line, in order. The code
  /// text blanks them (so tokens never come from inside a literal), but
  /// include targets live in literals and are needed verbatim.
  std::vector<std::string> strings;
  bool preprocessor = false;  // Line is a preprocessor directive.
};

/// A `// check:allow(<rule>): <reason>` annotation. It suppresses
/// findings of `rule` on the annotation line itself and on the next line
/// that carries code (so a comment block above the flagged statement
/// works naturally).
struct AllowAnnotation {
  int line = 0;  // 1-based line of the annotation.
  std::string rule;
  std::string reason;
};

/// One token of code text: an identifier/number, or a single punctuation
/// character (with `::`, `->`, `//`-free guarantees since comments are
/// already stripped). `line` is 1-based.
struct Token {
  std::string text;
  int line = 0;
};

/// A lexed source file.
class SourceFile {
 public:
  /// Reads and lexes `abs_path`. `rel_path` is the repo-relative path
  /// used in findings. Returns false when the file cannot be read.
  bool Load(const std::string& abs_path, const std::string& rel_path);

  const std::string& rel_path() const { return rel_path_; }
  const std::vector<SourceLine>& lines() const { return lines_; }
  const std::vector<Token>& tokens() const { return tokens_; }
  const std::vector<AllowAnnotation>& allows() const { return allows_; }

  /// True when a `check:allow(rule)` annotation covers `line`.
  bool IsAllowed(const std::string& rule, int line) const;

  /// Allow annotations missing the mandatory `: <reason>` suffix.
  const std::vector<int>& malformed_allows() const {
    return malformed_allows_;
  }

  /// Quoted `#include "..."` targets, with the 1-based line of each.
  const std::vector<std::pair<std::string, int>>& quoted_includes() const {
    return quoted_includes_;
  }

 private:
  void Lex();

  std::string rel_path_;
  std::vector<SourceLine> lines_;
  std::vector<Token> tokens_;
  std::vector<AllowAnnotation> allows_;
  std::vector<int> malformed_allows_;
  std::vector<std::pair<std::string, int>> quoted_includes_;
  /// rule -> lines covered by an allow annotation.
  std::map<std::string, std::set<int>> allowed_lines_;
};

}  // namespace transedge::check

#endif  // TRANSEDGE_TOOLS_CHECK_SOURCE_H_
